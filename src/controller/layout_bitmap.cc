#include "controller/layout_bitmap.hh"

#include <bit>

namespace dtsim {

LayoutBitmap::LayoutBitmap(std::uint64_t total_blocks)
    : totalBlocks_(total_blocks),
      words_((total_blocks + 63) / 64, 0)
{
}

void
LayoutBitmap::set(BlockNum block, bool continuation)
{
    if (block >= totalBlocks_)
        return;
    const std::uint64_t mask = 1ULL << (block % 64);
    if (continuation)
        words_[block / 64] |= mask;
    else
        words_[block / 64] &= ~mask;
}

bool
LayoutBitmap::get(BlockNum block) const
{
    if (block >= totalBlocks_)
        return false;
    return (words_[block / 64] >> (block % 64)) & 1ULL;
}

std::uint64_t
LayoutBitmap::countRun(BlockNum block, std::uint64_t max_count) const
{
    std::uint64_t n = 0;
    while (n < max_count && get(block + n))
        ++n;
    return n;
}

std::uint64_t
LayoutBitmap::popcount() const
{
    std::uint64_t n = 0;
    for (std::uint64_t w : words_)
        n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
}

} // namespace dtsim
