#include "controller/scheduler.hh"

#include "sim/logging.hh"

namespace dtsim {

void
FcfsScheduler::doPush(std::unique_ptr<MediaJob> job)
{
    queue_.push_back(std::move(job));
}

std::unique_ptr<MediaJob>
FcfsScheduler::doPop(std::uint32_t)
{
    if (queue_.empty())
        return nullptr;
    auto job = std::move(queue_.front());
    queue_.pop_front();
    return job;
}

void
SweepScheduler::doPush(std::unique_ptr<MediaJob> job)
{
    const std::uint32_t cyl = job->cylinder;
    byCylinder_.emplace(cyl, std::move(job));
    ++count_;
}

const char*
SweepScheduler::name() const
{
    switch (kind_) {
      case Kind::LOOK: return "LOOK";
      case Kind::CLOOK: return "C-LOOK";
      case Kind::SSTF: return "SSTF";
    }
    return "?";
}

std::unique_ptr<MediaJob>
SweepScheduler::doPop(std::uint32_t cylinder)
{
    if (byCylinder_.empty())
        return nullptr;

    Map::iterator pick;

    switch (kind_) {
      case Kind::LOOK: {
        if (goingUp_) {
            pick = byCylinder_.lower_bound(cylinder);
            if (pick == byCylinder_.end()) {
                goingUp_ = false;
                pick = std::prev(byCylinder_.end());
            }
        } else {
            // Find the largest key <= cylinder.
            auto it = byCylinder_.upper_bound(cylinder);
            if (it == byCylinder_.begin()) {
                goingUp_ = true;
                pick = byCylinder_.begin();
            } else {
                pick = std::prev(it);
            }
        }
        break;
      }
      case Kind::CLOOK: {
        pick = byCylinder_.lower_bound(cylinder);
        if (pick == byCylinder_.end())
            pick = byCylinder_.begin();    // Wrap to the lowest.
        break;
      }
      case Kind::SSTF: {
        auto up = byCylinder_.lower_bound(cylinder);
        if (up == byCylinder_.end()) {
            pick = std::prev(byCylinder_.end());
        } else if (up == byCylinder_.begin()) {
            pick = up;
        } else {
            auto down = std::prev(up);
            const std::uint32_t d_up = up->first - cylinder;
            const std::uint32_t d_down = cylinder - down->first;
            pick = d_down <= d_up ? down : up;
        }
        break;
      }
      default:
        panic("SweepScheduler: bad kind");
    }

    auto job = std::move(pick->second);
    byCylinder_.erase(pick);
    --count_;
    return job;
}

const char*
schedulerKindName(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::FCFS: return "FCFS";
      case SchedulerKind::LOOK: return "LOOK";
      case SchedulerKind::CLOOK: return "C-LOOK";
      case SchedulerKind::SSTF: return "SSTF";
    }
    return "?";
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::FCFS:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::LOOK:
        return std::make_unique<SweepScheduler>(
            SweepScheduler::Kind::LOOK);
      case SchedulerKind::CLOOK:
        return std::make_unique<SweepScheduler>(
            SweepScheduler::Kind::CLOOK);
      case SchedulerKind::SSTF:
        return std::make_unique<SweepScheduler>(
            SweepScheduler::Kind::SSTF);
    }
    panic("makeScheduler: bad kind");
}

} // namespace dtsim
