#include "controller/scheduler.hh"

#include <bit>
#include <cassert>

#include "sim/logging.hh"

namespace dtsim {

void
FcfsScheduler::doPush(std::unique_ptr<MediaJob> job)
{
    queue_.push_back(std::move(job));
}

std::unique_ptr<MediaJob>
FcfsScheduler::doPop(std::uint32_t)
{
    if (queue_.empty())
        return nullptr;
    auto job = std::move(queue_.front());
    queue_.pop_front();
    return job;
}

const char*
SweepScheduler::name() const
{
    switch (kind_) {
      case Kind::LOOK: return "LOOK";
      case Kind::CLOOK: return "C-LOOK";
      case Kind::SSTF: return "SSTF";
    }
    return "?";
}

void
SweepScheduler::ensureCylinder(std::uint32_t cyl)
{
    if (cyl < buckets_.size())
        return;
    // Grow geometrically; cylinder counts are bounded by the drive
    // geometry, so this settles after the first few pushes.
    std::size_t n = buckets_.empty() ? 64 : buckets_.size();
    while (n <= cyl)
        n *= 2;
    buckets_.resize(n);
    bits_.resize((n + 63) / 64, 0);
    summary_.resize((bits_.size() + 63) / 64, 0);
}

void
SweepScheduler::setBit(std::uint32_t cyl)
{
    const std::size_t w = cyl >> 6;
    bits_[w] |= std::uint64_t{1} << (cyl & 63);
    summary_[w >> 6] |= std::uint64_t{1} << (w & 63);
}

void
SweepScheduler::clearBit(std::uint32_t cyl)
{
    const std::size_t w = cyl >> 6;
    bits_[w] &= ~(std::uint64_t{1} << (cyl & 63));
    if (bits_[w] == 0)
        summary_[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
}

bool
SweepScheduler::findAtOrAbove(std::uint32_t c, std::uint32_t* out) const
{
    if (c >= buckets_.size())
        return false;
    std::size_t w = c >> 6;
    std::uint64_t word = bits_[w] & (~std::uint64_t{0} << (c & 63));
    if (!word) {
        // Scan the summary for the next non-empty word after w.
        std::size_t sw = w >> 6;
        std::uint64_t s = (w & 63) == 63
            ? 0
            : summary_[sw] & (~std::uint64_t{0} << ((w & 63) + 1));
        for (;;) {
            if (s) {
                w = (sw << 6) +
                    static_cast<std::size_t>(std::countr_zero(s));
                word = bits_[w];
                break;
            }
            if (++sw >= summary_.size())
                return false;
            s = summary_[sw];
        }
    }
    *out = static_cast<std::uint32_t>(
        (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
    return true;
}

bool
SweepScheduler::findAtOrBelow(std::uint32_t c, std::uint32_t* out) const
{
    if (buckets_.empty())
        return false;
    if (c >= buckets_.size())
        c = static_cast<std::uint32_t>(buckets_.size() - 1);
    std::size_t w = c >> 6;
    std::uint64_t word = bits_[w] &
        ((c & 63) == 63 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << ((c & 63) + 1)) - 1);
    if (!word) {
        // Scan the summary for the last non-empty word before w.
        std::size_t sw = w >> 6;
        std::uint64_t s = (w & 63) == 0
            ? 0
            : summary_[sw] & ((std::uint64_t{1} << (w & 63)) - 1);
        for (;;) {
            if (s) {
                w = (sw << 6) + 63 -
                    static_cast<std::size_t>(std::countl_zero(s));
                word = bits_[w];
                break;
            }
            if (sw == 0)
                return false;
            s = summary_[--sw];
        }
    }
    *out = static_cast<std::uint32_t>(
        (w << 6) + 63 -
        static_cast<std::size_t>(std::countl_zero(word)));
    return true;
}

void
SweepScheduler::doPush(std::unique_ptr<MediaJob> job)
{
    const std::uint32_t cyl = job->cylinder;
    ensureCylinder(cyl);

    std::uint32_t n;
    if (freeHead_ != kNull) {
        n = freeHead_;
        freeHead_ = slots_[n].next;
    } else {
        n = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    JobSlot& slot = slots_[n];
    slot.job = std::move(job);
    slot.next = kNull;

    Bucket& b = buckets_[cyl];
    slot.prev = b.tail;
    if (b.tail != kNull) {
        slots_[b.tail].next = n;
    } else {
        b.head = n;
        setBit(cyl);
    }
    b.tail = n;
    ++count_;
}

std::unique_ptr<MediaJob>
SweepScheduler::takeSlot(std::uint32_t cyl, std::uint32_t n)
{
    JobSlot& slot = slots_[n];
    Bucket& b = buckets_[cyl];
    if (slot.prev != kNull)
        slots_[slot.prev].next = slot.next;
    else
        b.head = slot.next;
    if (slot.next != kNull)
        slots_[slot.next].prev = slot.prev;
    else
        b.tail = slot.prev;
    if (b.head == kNull)
        clearBit(cyl);

    auto job = std::move(slot.job);
    slot.next = freeHead_;
    freeHead_ = n;
    --count_;
    return job;
}

std::unique_ptr<MediaJob>
SweepScheduler::popFront(std::uint32_t cyl)
{
    assert(buckets_[cyl].head != kNull);
    return takeSlot(cyl, buckets_[cyl].head);
}

std::unique_ptr<MediaJob>
SweepScheduler::popBack(std::uint32_t cyl)
{
    assert(buckets_[cyl].tail != kNull);
    return takeSlot(cyl, buckets_[cyl].tail);
}

std::unique_ptr<MediaJob>
SweepScheduler::doPop(std::uint32_t cylinder)
{
    if (count_ == 0)
        return nullptr;

    // Pop order mirrors the multimap implementation this replaced:
    // a lower_bound-style pick is the oldest job of its cylinder
    // (front), a prev(upper_bound)/prev(end) pick the newest (back).
    std::uint32_t c;
    switch (kind_) {
      case Kind::LOOK: {
        if (goingUp_) {
            if (findAtOrAbove(cylinder, &c))
                return popFront(c);
            goingUp_ = false;
            findAtOrBelow(cylinder, &c);
            return popBack(c);
        }
        if (findAtOrBelow(cylinder, &c))
            return popBack(c);
        goingUp_ = true;
        findAtOrAbove(0, &c);
        return popFront(c);
      }
      case Kind::CLOOK: {
        if (!findAtOrAbove(cylinder, &c))
            findAtOrAbove(0, &c);    // Wrap to the lowest.
        return popFront(c);
      }
      case Kind::SSTF: {
        std::uint32_t up;
        const bool has_up = findAtOrAbove(cylinder, &up);
        std::uint32_t down;
        const bool has_down =
            cylinder > 0 && findAtOrBelow(cylinder - 1, &down);
        if (!has_up)
            return popBack(down);
        if (!has_down)
            return popFront(up);
        const std::uint32_t d_up = up - cylinder;
        const std::uint32_t d_down = cylinder - down;
        return d_down <= d_up ? popBack(down) : popFront(up);
      }
    }
    panic("SweepScheduler: bad kind");
}

const char*
schedulerKindName(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::FCFS: return "FCFS";
      case SchedulerKind::LOOK: return "LOOK";
      case SchedulerKind::CLOOK: return "C-LOOK";
      case SchedulerKind::SSTF: return "SSTF";
    }
    return "?";
}

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::FCFS:
        return std::make_unique<FcfsScheduler>();
      case SchedulerKind::LOOK:
        return std::make_unique<SweepScheduler>(
            SweepScheduler::Kind::LOOK);
      case SchedulerKind::CLOOK:
        return std::make_unique<SweepScheduler>(
            SweepScheduler::Kind::CLOOK);
      case SchedulerKind::SSTF:
        return std::make_unique<SweepScheduler>(
            SweepScheduler::Kind::SSTF);
    }
    panic("makeScheduler: bad kind");
}

} // namespace dtsim
