/**
 * @file
 * The request type exchanged between the host and a disk controller.
 */

#ifndef DTSIM_CONTROLLER_IO_REQUEST_HH
#define DTSIM_CONTROLLER_IO_REQUEST_HH

#include <cstdint>
#include <functional>

#include "disk/geometry.hh"
#include "sim/ticks.hh"

namespace dtsim {

/** How a completed request was served. */
enum class ServiceClass
{
    CacheHit,   ///< Entirely from the read-ahead cache and/or HDC.
    HdcHit,     ///< Entirely from the HDC pinned store.
    Media,      ///< Needed a media access.
};

/** One request from the host to one disk controller. */
struct IoRequest
{
    /** Completion callback: (request, completion time). */
    using Callback = std::function<void(const IoRequest&, Tick)>;

    std::uint64_t id = 0;
    unsigned diskId = 0;

    /** First 4 KB block, local to the target disk. */
    BlockNum start = 0;

    /** Number of blocks. */
    std::uint64_t count = 1;

    bool isWrite = false;

    /** Host issue time. */
    Tick issued = 0;

    /** How the request was ultimately served (set at completion). */
    ServiceClass served = ServiceClass::Media;

    Callback onComplete;
};

} // namespace dtsim

#endif // DTSIM_CONTROLLER_IO_REQUEST_HH
