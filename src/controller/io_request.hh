/**
 * @file
 * The request type exchanged between the host and a disk controller.
 */

#ifndef DTSIM_CONTROLLER_IO_REQUEST_HH
#define DTSIM_CONTROLLER_IO_REQUEST_HH

#include <cstdint>

#include "sim/small_function.hh"

#include "disk/geometry.hh"
#include "sim/ticks.hh"

namespace dtsim {

/** How a completed request was served. */
enum class ServiceClass
{
    CacheHit,   ///< Entirely from the read-ahead cache and/or HDC.
    HdcHit,     ///< Entirely from the HDC pinned store.
    Media,      ///< Needed a media access.
};

/**
 * Where a request's service time went, in ticks. Filled in as the
 * request moves through the controller; all zero for pure cache hits.
 */
struct ServiceBreakdown
{
    Tick queue = 0;     ///< wait in the scheduler queue
    Tick seek = 0;      ///< seek + settle
    Tick rotation = 0;  ///< rotational positioning
    Tick transfer = 0;  ///< media transfer
    Tick bus = 0;       ///< SCSI bus transfer
};

/** One request from the host to one disk controller. */
struct IoRequest
{
    /** Completion callback: (request, completion time). */
    using Callback = SmallFunction<void(const IoRequest&, Tick), 32>;

    std::uint64_t id = 0;
    unsigned diskId = 0;

    /** First 4 KB block, local to the target disk. */
    BlockNum start = 0;

    /** Number of blocks. */
    std::uint64_t count = 1;

    bool isWrite = false;

    /** Host issue time. */
    Tick issued = 0;

    /** How the request was ultimately served (set at completion). */
    ServiceClass served = ServiceClass::Media;

    /** Service-time breakdown (set as the request is serviced). */
    ServiceBreakdown timing;

    /** Media-error attempts that failed while serving this request. */
    std::uint32_t faults = 0;

    /** Media retries performed while serving this request. */
    std::uint32_t retries = 0;

    /** True when the read was re-routed off a dead mirror replica. */
    bool degraded = false;

    Callback onComplete;
};

} // namespace dtsim

#endif // DTSIM_CONTROLLER_IO_REQUEST_HH
