/**
 * @file
 * The FOR layout bitmap (Section 4).
 *
 * One bit per disk block: bit b is 1 iff block b is the logical
 * continuation, within a file, of block b-1 on the same disk. The
 * controller counts consecutive 1-bits after a request to bound its
 * read-ahead at the end of the file's physically-contiguous extent.
 * For the default 18 GB drive with 4 KB blocks the bitmap occupies
 * 546 KB of controller memory (0.003% of disk space).
 */

#ifndef DTSIM_CONTROLLER_LAYOUT_BITMAP_HH
#define DTSIM_CONTROLLER_LAYOUT_BITMAP_HH

#include <cstdint>
#include <vector>

#include "disk/geometry.hh"

namespace dtsim {

/** Per-disk file-layout continuation bitmap. */
class LayoutBitmap
{
  public:
    /** All bits start 0 (no continuations). */
    explicit LayoutBitmap(std::uint64_t total_blocks);

    /** Set/clear the continuation bit of a block. */
    void set(BlockNum block, bool continuation);

    /** Continuation bit of a block; out-of-range reads are 0. */
    bool get(BlockNum block) const;

    /**
     * Count consecutive continuation bits starting at `block`:
     * the number of blocks at and after `block` that a FOR read-ahead
     * beginning there may fetch, capped at `max_count`.
     */
    std::uint64_t countRun(BlockNum block,
                           std::uint64_t max_count) const;

    std::uint64_t totalBlocks() const { return totalBlocks_; }

    /** Memory footprint of the bitmap in bytes. */
    std::uint64_t
    sizeBytes() const
    {
        return (totalBlocks_ + 7) / 8;
    }

    /** Number of set bits (for tests and reporting). */
    std::uint64_t popcount() const;

  private:
    std::uint64_t totalBlocks_;
    std::vector<std::uint64_t> words_;
};

} // namespace dtsim

#endif // DTSIM_CONTROLLER_LAYOUT_BITMAP_HH
