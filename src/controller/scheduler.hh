/**
 * @file
 * Media-request scheduling inside a disk controller.
 *
 * The paper's controllers use the LOOK (elevator) algorithm; FCFS,
 * C-LOOK, and SSTF are provided for the scheduling ablation.
 *
 * The sweep schedulers used to keep jobs in a std::multimap keyed by
 * cylinder (a red-black tree: one heap allocation per push, pointer
 * chases per pick). They now use per-cylinder FIFO queues threaded
 * through a slab of reusable job slots, with a two-level occupancy
 * bitmap for the next/previous-occupied-cylinder scans every policy
 * is built from. Pop order is identical to the multimap by
 * construction: equal-cylinder jobs keep insertion order, a
 * lower_bound-style pick takes the bucket front, a prev(upper_bound)-
 * style pick takes the bucket back (tests/test_container_equiv.cc
 * drives both implementations against each other).
 */

#ifndef DTSIM_CONTROLLER_SCHEDULER_HH
#define DTSIM_CONTROLLER_SCHEDULER_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "controller/io_request.hh"
#include "disk/geometry.hh"

namespace dtsim {

/** One queued media operation (host request plus its media range). */
struct MediaJob
{
    IoRequest req;

    /** First block the media access must cover. */
    BlockNum mediaStart = 0;

    /** Blocks the media access must cover (missing suffix). */
    std::uint64_t mediaCount = 0;

    /** Target cylinder (precomputed for scheduling). */
    std::uint32_t cylinder = 0;

    /** Arrival order for FCFS/tie-breaking. */
    std::uint64_t seq = 0;

    /** True for host-invisible work (e.g. HDC flush writes). */
    bool background = false;

    /** True for mirror-rebuild traffic (subset of background). */
    bool rebuild = false;

    /** Tick the job entered the scheduler queue. */
    Tick enqueuedAt = 0;
};

/** Queue-depth accounting common to every scheduler policy. */
struct SchedulerStats
{
    std::uint64_t pushes = 0;    ///< jobs ever enqueued
    std::uint64_t pops = 0;      ///< jobs ever dequeued
    std::uint64_t depthSum = 0;  ///< sum of depth-after-push samples
    std::uint64_t depthMax = 0;  ///< largest depth ever seen

    /** Mean queue depth observed at enqueue time. */
    double
    meanDepth() const
    {
        return pushes ? static_cast<double>(depthSum) /
                            static_cast<double>(pushes)
                      : 0.0;
    }
};

/** Queue + policy for picking the next media access. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Enqueue a job (records queue-depth stats). */
    void
    push(std::unique_ptr<MediaJob> job)
    {
        doPush(std::move(job));
        ++stats_.pushes;
        const std::uint64_t depth = size();
        stats_.depthSum += depth;
        stats_.depthMax = std::max(stats_.depthMax, depth);
    }

    /**
     * Remove and return the next job to service given the arm's
     * current cylinder; nullptr if the queue is empty.
     */
    std::unique_ptr<MediaJob>
    pop(std::uint32_t cylinder)
    {
        auto job = doPop(cylinder);
        if (job)
            ++stats_.pops;
        return job;
    }

    virtual std::size_t size() const = 0;

    bool empty() const { return size() == 0; }

    virtual const char* name() const = 0;

    const SchedulerStats& schedStats() const { return stats_; }

  protected:
    virtual void doPush(std::unique_ptr<MediaJob> job) = 0;
    virtual std::unique_ptr<MediaJob> doPop(std::uint32_t cylinder) = 0;

  private:
    SchedulerStats stats_;
};

/** First-come first-served. */
class FcfsScheduler : public Scheduler
{
  public:
    std::size_t size() const override { return queue_.size(); }
    const char* name() const override { return "FCFS"; }

  protected:
    void doPush(std::unique_ptr<MediaJob> job) override;
    std::unique_ptr<MediaJob> doPop(std::uint32_t cylinder) override;

  private:
    std::deque<std::unique_ptr<MediaJob>> queue_;
};

/**
 * Cylinder-ordered scheduler base: jobs keyed by target cylinder.
 * LOOK sweeps alternately up and down; C-LOOK sweeps up only and
 * wraps; SSTF always takes the nearest cylinder.
 */
class SweepScheduler : public Scheduler
{
  public:
    enum class Kind { LOOK, CLOOK, SSTF };

    explicit SweepScheduler(Kind kind) : kind_(kind) {}

    std::size_t size() const override { return count_; }
    const char* name() const override;

  protected:
    void doPush(std::unique_ptr<MediaJob> job) override;
    std::unique_ptr<MediaJob> doPop(std::uint32_t cylinder) override;

  private:
    static constexpr std::uint32_t kNull = 0xffffffffu;

    /** One queued job threaded into its cylinder's FIFO. */
    struct JobSlot
    {
        std::unique_ptr<MediaJob> job;
        std::uint32_t prev = kNull;
        std::uint32_t next = kNull;
    };

    /** Per-cylinder queue ends (insertion order front to back). */
    struct Bucket
    {
        std::uint32_t head = kNull;
        std::uint32_t tail = kNull;
    };

    /** Grow the bucket/bitmap arrays to cover cylinder `cyl`. */
    void ensureCylinder(std::uint32_t cyl);

    void setBit(std::uint32_t cyl);
    void clearBit(std::uint32_t cyl);

    /** Smallest occupied cylinder >= c (false if none). */
    bool findAtOrAbove(std::uint32_t c, std::uint32_t* out) const;

    /** Largest occupied cylinder <= c (false if none). */
    bool findAtOrBelow(std::uint32_t c, std::uint32_t* out) const;

    /** Dequeue the oldest / newest job of an occupied cylinder. */
    std::unique_ptr<MediaJob> popFront(std::uint32_t cyl);
    std::unique_ptr<MediaJob> popBack(std::uint32_t cyl);

    std::unique_ptr<MediaJob> takeSlot(std::uint32_t cyl,
                                       std::uint32_t n);

    Kind kind_;

    /** Job slots, reused through a freelist (steady state: no alloc). */
    std::vector<JobSlot> slots_;
    std::uint32_t freeHead_ = kNull;

    std::vector<Bucket> buckets_;       ///< indexed by cylinder
    std::vector<std::uint64_t> bits_;   ///< occupancy, bit/cylinder
    std::vector<std::uint64_t> summary_;///< bit per bits_ word
    std::size_t count_ = 0;
    bool goingUp_ = true;
};

/** Scheduler kinds for configuration. */
enum class SchedulerKind { FCFS, LOOK, CLOOK, SSTF };

const char* schedulerKindName(SchedulerKind k);

/** Factory. */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind);

} // namespace dtsim

#endif // DTSIM_CONTROLLER_SCHEDULER_HH
