#include "controller/disk_controller.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/shard_link.hh"

namespace dtsim {

const char*
cacheOrgName(CacheOrg o)
{
    switch (o) {
      case CacheOrg::Segment: return "Segment";
      case CacheOrg::Block: return "Block";
    }
    return "?";
}

const char*
readAheadModeName(ReadAheadMode m)
{
    switch (m) {
      case ReadAheadMode::None: return "None";
      case ReadAheadMode::Blind: return "Blind";
      case ReadAheadMode::FOR: return "FOR";
    }
    return "?";
}

DiskController::DiskController(EventQueue& eq, ScsiBus& bus,
                               const DiskParams& params,
                               const ControllerConfig& cfg,
                               unsigned disk_id)
    : eq_(eq), bus_(bus), params_(params), cfg_(cfg), diskId_(disk_id),
      geom_(params_), mech_(params_, geom_),
      sched_(makeScheduler(cfg.scheduler))
{
    if (params_.recordingZones > 0) {
        zoned_ = std::make_unique<ZonedGeometry>(
            ZonedGeometry::makeDefault(params_,
                                       params_.recordingZones));
        mech_.setZonedGeometry(zoned_.get());
    }

    // Carve the controller memory: HDC region and (for FOR) the
    // layout bitmap come out of the read-ahead cache budget.
    std::uint64_t ra_bytes = params_.usableCacheBytes();
    if (cfg_.hdcBytes > 0) {
        if (cfg_.hdcBytes >= ra_bytes)
            fatal("DiskController: HDC budget exceeds cache memory");
        ra_bytes -= cfg_.hdcBytes;
        hdc_ = std::make_unique<HdcStore>(
            cfg_.hdcBytes / params_.blockSize);
    }
    if (cfg_.readAhead == ReadAheadMode::FOR) {
        const std::uint64_t bm = params_.bitmapBytes();
        if (bm >= ra_bytes)
            fatal("DiskController: no memory left for the FOR bitmap");
        ra_bytes -= bm;
    }

    maxReadBlocks_ =
        std::max<std::uint64_t>(1, params_.segmentBlocks());

    if (cfg_.org == CacheOrg::Segment) {
        const std::uint64_t nseg =
            std::max<std::uint64_t>(1, ra_bytes / params_.segmentBytes);
        raCache_ = std::make_unique<SegmentCache>(
            nseg, params_.segmentBlocks(), cfg_.segmentPolicy,
            cfg_.seed + disk_id);
    } else {
        const std::uint64_t nblk =
            std::max<std::uint64_t>(8, ra_bytes / params_.blockSize);
        raCache_ = std::make_unique<BlockCache>(nblk, cfg_.blockPolicy);
    }
}

std::uint64_t
DiskController::raCacheBlocks() const
{
    return raCache_->capacityBlocks();
}

std::uint64_t
DiskController::hdcCapacityBlocks() const
{
    return hdc_ ? hdc_->capacityBlocks() : 0;
}

std::uint64_t
DiskController::hdcPinnedBlocks() const
{
    return hdc_ ? hdc_->pinnedBlocks() : 0;
}

double
DiskController::utilization() const
{
    const Tick now = eq_.now();
    if (now == 0)
        return 0.0;
    return static_cast<double>(stats_.mediaBusy) /
           static_cast<double>(now);
}

std::unique_ptr<MediaJob>
DiskController::allocJob()
{
    if (jobPool_.empty())
        return std::make_unique<MediaJob>();
    std::unique_ptr<MediaJob> job = std::move(jobPool_.back());
    jobPool_.pop_back();
    *job = MediaJob{};
    return job;
}

void
DiskController::recycleJob(std::unique_ptr<MediaJob> job)
{
    jobPool_.push_back(std::move(job));
}

void
DiskController::submit(IoRequest req)
{
    if (req.count == 0)
        fatal("DiskController: zero-length request");
    if (req.start + req.count > params_.totalBlocks())
        fatal("DiskController: request past end of disk %u", diskId_);
    if (cfg_.readAhead == ReadAheadMode::FOR && bitmap_ == nullptr)
        fatal("DiskController: FOR requires a layout bitmap");

    ++outstanding_;

    Tick overhead = params_.requestOverhead;
    if (hdc_)
        overhead += params_.hdcLookupOverhead;
    if (cfg_.readAhead == ReadAheadMode::FOR && !req.isWrite)
        overhead += params_.bitmapLookupOverhead;

    if (link_ && !link_->quiesced()) {
        // Sharded: submit() runs in host context. The request crosses
        // to this disk's shard as an arrival at the same absolute
        // tick the serial kernel would process it.
        req.issued = link_->hostNow();
        link_->postToShard(
            diskId_, req.issued + overhead,
            [this, r = std::move(req)]() mutable {
                process(std::move(r));
            });
        return;
    }

    req.issued = eq_.now();
    eq_.scheduleAfter(overhead, [this, r = std::move(req)]() mutable {
        process(std::move(r));
    });
}

DiskController::PrefixHit
DiskController::cachedPrefix(BlockNum start, std::uint64_t count)
{
    // Per-block semantics: each block checks the HDC store first,
    // then the read-ahead cache. The cache probe can still batch
    // consecutive blocks because the two stores are disjoint by
    // construction (insertIntoCache() skips pinned blocks; pinBlock()
    // invalidates the cached copy), so no block inside a cache-hit
    // prefix could have hit the HDC check instead.
    PrefixHit hit;
    while (hit.blocks < count) {
        const BlockNum b = start + hit.blocks;
        if (hdc_ && hdc_->contains(b)) {
            ++hit.blocks;
            ++hit.hdcBlocks;
            continue;
        }
        const std::uint64_t n =
            raCache_->lookupPrefixBlockwise(b, count - hit.blocks);
        if (n == 0)
            break;
        hit.blocks += n;
    }
    return hit;
}

void
DiskController::process(IoRequest req)
{
    if (req.isWrite)
        handleWrite(std::move(req));
    else
        handleRead(std::move(req));
}

void
DiskController::handleRead(IoRequest req)
{
    ++stats_.reads;
    stats_.readBlocks += req.count;

    const PrefixHit hit = cachedPrefix(req.start, req.count);
    stats_.hdcHitBlocks += hit.hdcBlocks;
    stats_.raHitBlocks += hit.blocks - hit.hdcBlocks;

    // Cached blocks at the tail of the request need not be read from
    // the media either; the single media access covers only
    // [first missing, last missing].
    std::uint64_t suffix = 0;
    std::uint64_t suffix_hdc = 0;
    while (hit.blocks + suffix < req.count) {
        const BlockNum b = req.start + req.count - 1 - suffix;
        if (hdc_ && hdc_->contains(b)) {
            ++suffix;
            ++suffix_hdc;
            continue;
        }
        if (raCache_->contains(b)) {
            ++suffix;
            continue;
        }
        break;
    }
    stats_.hdcHitBlocks += suffix_hdc;
    stats_.raHitBlocks += suffix - suffix_hdc;

    if (hit.blocks + suffix >= req.count) {
        ++stats_.cacheHitRequests;
        if (hit.hdcBlocks + suffix_hdc == req.count) {
            ++stats_.hdcHitRequests;
            req.served = ServiceClass::HdcHit;
        } else {
            req.served = ServiceClass::CacheHit;
        }
        respond(std::move(req), eq_.now());
        return;
    }

    auto job = allocJob();
    job->mediaStart = req.start + hit.blocks;
    job->mediaCount = req.count - hit.blocks - suffix;
    job->cylinder = geom_.blockToCylinder(job->mediaStart);
    job->seq = seq_++;
    job->req = std::move(req);
    job->req.served = ServiceClass::Media;
    enqueueMedia(std::move(job));
}

void
DiskController::handleWrite(IoRequest req)
{
    ++stats_.writes;
    stats_.writeBlocks += req.count;

    if (hdc_ && hdc_->allPinned(req.start, req.count)) {
        // The HDC store absorbs the whole write; dirty blocks reach
        // the media only on flush_hdc().
        for (std::uint64_t i = 0; i < req.count; ++i)
            hdc_->absorbWrite(req.start + i);
        stats_.hdcHitBlocks += req.count;
        ++stats_.hdcHitRequests;
        ++stats_.cacheHitRequests;
        req.served = ServiceClass::HdcHit;
        respond(std::move(req), eq_.now());
        return;
    }

    // Write-through: cached read-ahead copies become stale.
    raCache_->invalidateRange(req.start, req.count);

    auto job = allocJob();
    job->mediaStart = req.start;
    job->mediaCount = req.count;
    job->cylinder = geom_.blockToCylinder(req.start);
    job->seq = seq_++;
    job->req = std::move(req);
    job->req.served = ServiceClass::Media;
    enqueueMedia(std::move(job));
}

void
DiskController::enqueueMedia(std::unique_ptr<MediaJob> job)
{
    job->enqueuedAt = eq_.now();
    sched_->push(std::move(job));
    if (svc_) {
        // The depth distribution is order-sensitive (streaming
        // accumulator), so sharded runs route the sample through the
        // host merge to reproduce the serial sampling order.
        const double depth = static_cast<double>(sched_->size());
        if (link_ && !link_->quiesced()) {
            link_->emitToHost(diskId_, eq_.now(), [this, depth]() {
                svc_->queueDepth.sample(depth);
            });
        } else {
            svc_->queueDepth.sample(depth);
        }
    }
    tryStartMedia();
}

void
DiskController::tryStartMedia()
{
    if (mediaBusy_ || stallPending_ || sched_->empty())
        return;
    if (faults_) {
        const Tick delay = faults_->dispatchDelay(eq_.now());
        if (delay > 0) {
            // Transient bus/controller stall: hold every dispatch
            // until the delay (scripted window or timeout backoff)
            // expires, then try again.
            stallPending_ = true;
            eq_.scheduleAfter(delay, [this]() {
                stallPending_ = false;
                tryStartMedia();
            });
            return;
        }
    }
    auto job = sched_->pop(mech_.currentCylinder());
    startMedia(std::move(job));
}

std::uint64_t
DiskController::readAheadBlocks(BlockNum media_start,
                                std::uint64_t media_count) const
{
    std::uint64_t ra = 0;
    const std::uint64_t budget =
        media_count < maxReadBlocks_ ? maxReadBlocks_ - media_count : 0;

    switch (cfg_.readAhead) {
      case ReadAheadMode::None:
        break;
      case ReadAheadMode::Blind:
        ra = budget;
        break;
      case ReadAheadMode::FOR:
        // Read ahead only while the bitmap marks blocks as the
        // logical continuation of their physical predecessor.
        ra = bitmap_->countRun(media_start + media_count, budget);
        break;
    }

    const std::uint64_t end = media_start + media_count;
    const std::uint64_t total = params_.totalBlocks();
    if (end + ra > total)
        ra = total - end;
    return ra;
}

void
DiskController::startMedia(std::unique_ptr<MediaJob> job)
{
    mediaBusy_ = true;

    std::uint64_t ra = 0;
    if (!job->req.isWrite && !job->rebuild)
        ra = readAheadBlocks(job->mediaStart, job->mediaCount);

    MediaAccess acc;
    acc.startSector = geom_.blockToSector(job->mediaStart);
    acc.sectorCount =
        (job->mediaCount + ra) * geom_.sectorsPerBlock();
    acc.isWrite = job->req.isWrite;

    const ServiceTiming t = mech_.service(acc, eq_.now());
    Tick seek = t.seek + t.settle;
    Tick rot = t.rotational;
    Tick xfer = t.transfer;
    Tick total = t.total();

    if (faults_) {
        FaultCounters& fc = faults_->counters();
        const std::uint64_t span = job->mediaCount + ra;
        if (faults_->touchesRemapped(job->mediaStart, span)) {
            // Permanently remapped blocks live in the spare region:
            // every access pays an extra positioning trip.
            const Tick penalty = faults_->remapPenalty();
            seek += penalty;
            total += penalty;
            ++fc.remappedAccesses;
        }
        unsigned attempt = 0;
        while (faults_->attemptFails(job->mediaStart, span)) {
            ++job->req.faults;
            ++fc.mediaErrors;
            if (attempt >= faults_->maxRetries()) {
                // Retry budget exhausted: remap the failing blocks
                // to spares. The final transfer from the spare
                // region is charged as the remap penalty.
                const Tick penalty = faults_->remapPenalty();
                fc.remappedBlocks +=
                    faults_->remapRange(job->mediaStart, span);
                ++fc.remapEvents;
                seek += penalty;
                total += penalty;
                break;
            }
            // Retry: the mechanism re-services the access from
            // wherever the previous attempt left the arm, at the
            // time the previous attempt ends.
            ++attempt;
            ++job->req.retries;
            ++fc.retries;
            const ServiceTiming rt =
                mech_.service(acc, eq_.now() + total);
            seek += rt.seek + rt.settle;
            rot += rt.rotational;
            xfer += rt.transfer;
            total += rt.total();
            fc.retryTicks += rt.total();
        }
    }

    ++stats_.mediaAccesses;
    if (job->rebuild) {
        FaultCounters& fc = faults_->counters();
        ++fc.rebuildJobs;
        if (job->req.isWrite)
            fc.rebuildBlocks += job->mediaCount;
    } else if (job->background) {
        stats_.flushBlocks += job->mediaCount;
    } else {
        stats_.mediaBlocks += job->mediaCount;
    }
    stats_.readAheadBlocks += ra;
    stats_.seekTime += seek;
    stats_.rotTime += rot;
    stats_.xferTime += xfer;
    stats_.mediaBusy += total;

    job->req.timing.queue = eq_.now() - job->enqueuedAt;
    job->req.timing.seek = seek;
    job->req.timing.rotation = rot;
    job->req.timing.transfer = xfer;

    MediaJob* raw = job.release();
    eq_.scheduleAfter(total, [this, raw, ra]() {
        onMediaDone(std::unique_ptr<MediaJob>(raw), ra);
    });
}

void
DiskController::insertIntoCache(BlockNum start, std::uint64_t count,
                                std::uint64_t spec_offset)
{
    if (!hdc_) {
        raCache_->insertRun(start, count, spec_offset);
        return;
    }
    // Skip pinned blocks: they live in the HDC region already.
    std::uint64_t i = 0;
    while (i < count) {
        if (hdc_->contains(start + i)) {
            ++i;
            continue;
        }
        std::uint64_t j = i + 1;
        while (j < count && !hdc_->contains(start + j))
            ++j;
        // The speculative suffix of the whole run maps onto this
        // piece: everything at or beyond spec_offset is speculative.
        const std::uint64_t spec_in_piece =
            spec_offset > i ? std::min(spec_offset - i, j - i) : 0;
        raCache_->insertRun(start + i, j - i, spec_in_piece);
        i = j;
    }
}

void
DiskController::onMediaDone(std::unique_ptr<MediaJob> job,
                            std::uint64_t ra_blocks)
{
    mediaBusy_ = false;

    if (!job->req.isWrite && !job->rebuild) {
        insertIntoCache(job->mediaStart, job->mediaCount + ra_blocks,
                        job->mediaCount);
        // The demanded blocks are consumed by the host now; mark them
        // used so MRU replacement sees them as dead.
        raCache_->lookupPrefix(job->mediaStart, job->mediaCount);
    }

    if (job->rebuild) {
        // Rebuild traffic bypasses the host bus, but the completion
        // chain runs host-side (the array submits the paired write or
        // the next chunk from it), so it crosses back as an emission
        // in canonical merged order.
        if (job->req.onComplete) {
            if (link_ && !link_->quiesced()) {
                link_->emitToHost(
                    diskId_, eq_.now(),
                    [cb = std::move(job->req.onComplete),
                     start = job->req.start, count = job->req.count,
                     is_write = job->req.isWrite,
                     when = eq_.now()]() mutable {
                        IoRequest r;
                        r.start = start;
                        r.count = count;
                        r.isWrite = is_write;
                        cb(r, when);
                    });
            } else {
                job->req.onComplete(job->req, eq_.now());
            }
        }
    } else if (job->background) {
        ++stats_.flushWrites;
    } else {
        respond(std::move(job->req), eq_.now());
    }
    recycleJob(std::move(job));

    tryStartMedia();
}

void
DiskController::respond(IoRequest req, Tick ready)
{
    if (link_ && !link_->quiesced()) {
        // Sharded: the bus reservation must happen in global tick
        // order, so it crosses back to the coordinator as an
        // emission instead of running in shard context.
        link_->emitToHost(
            diskId_, ready,
            [this, r = std::move(req), ready]() mutable {
                finishOverBus(std::move(r), ready);
            });
        return;
    }
    finishOverBus(std::move(req), ready);
}

void
DiskController::finishOverBus(IoRequest req, Tick ready)
{
    const Tick done =
        bus_.transfer(ready, req.count * params_.blockSize);
    req.timing.bus = done - ready;
    EventQueue& hq = link_ ? link_->hostQueue() : eq_;
    hq.scheduleAt(done, [this, r = std::move(req), done]() {
        --outstanding_;
        noteComplete(r, done);
        if (r.onComplete)
            r.onComplete(r, done);
    });
}

void
DiskController::noteComplete(const IoRequest& req, Tick done)
{
    stats_.queueTime += req.timing.queue;
    stats_.busTime += req.timing.bus;
    const Tick latency = done - req.issued;
    stats_.latencySum += latency;
    stats_.latencyMax = std::max(stats_.latencyMax, latency);

    if (svc_) {
        svc_->latencyMs.sample(toMillis(latency));
        svc_->queueMs.sample(toMillis(req.timing.queue));
        svc_->seekMs.sample(toMillis(req.timing.seek));
        svc_->rotationMs.sample(toMillis(req.timing.rotation));
        svc_->transferMs.sample(toMillis(req.timing.transfer));
        svc_->busMs.sample(toMillis(req.timing.bus));
    }

    // shouldRecord() runs the per-request sampling draw; the event is
    // only assembled for accepted requests. Completions reach this
    // point in canonical host order under both kernels, so the draw
    // sequence -- and therefore the sampled set -- is deterministic.
    if (tracer_ && tracer_->shouldRecord()) {
        RequestTraceEvent ev;
        ev.completed = done;
        ev.disk = diskId_;
        ev.lba = req.start;
        ev.blocks = static_cast<std::uint32_t>(req.count);
        ev.isWrite = req.isWrite;
        switch (req.served) {
          case ServiceClass::CacheHit:
            ev.outcome = TraceOutcome::Cache;
            break;
          case ServiceClass::HdcHit:
            ev.outcome = TraceOutcome::Hdc;
            break;
          case ServiceClass::Media:
            ev.outcome = TraceOutcome::Media;
            break;
        }
        ev.queue = req.timing.queue;
        ev.seek = req.timing.seek;
        ev.rotation = req.timing.rotation;
        ev.transfer = req.timing.transfer;
        ev.bus = req.timing.bus;
        ev.latency = latency;
        ev.faults = req.faults;
        ev.retries = req.retries;
        ev.degraded = req.degraded;
        tracer_->record(ev);
    }
}

bool
DiskController::pinBlock(BlockNum block)
{
    if (!hdc_)
        return false;
    if (block >= params_.totalBlocks())
        fatal("DiskController: pin past end of disk");
    if (!hdc_->pin(block))
        return false;
    // The block now lives in the pinned region; drop any read-ahead
    // copy so the space accounting stays honest.
    raCache_->invalidateRange(block, 1);
    return true;
}

bool
DiskController::unpinBlock(BlockNum block)
{
    if (!hdc_)
        return false;
    bool dirty = false;
    if (!hdc_->unpin(block, &dirty))
        return false;
    if (dirty) {
        // The released block's data must reach the media.
        auto job = allocJob();
        job->mediaStart = block;
        job->mediaCount = 1;
        job->cylinder = geom_.blockToCylinder(block);
        job->seq = seq_++;
        job->background = true;
        job->req.isWrite = true;
        job->req.start = block;
        job->req.count = 1;
        enqueueMedia(std::move(job));
    }
    return true;
}

void
DiskController::exportStats(stats::StatGroup& parent) const
{
    using stats::Scalar;
    using stats::StatGroup;

    StatGroup& g = parent.makeGroup(strfmt("disk%u", diskId_));
    auto add = [](StatGroup& grp, const char* name, const char* desc,
                  double v) {
        grp.make<Scalar>(name, desc).set(v);
    };
    auto addU = [&add](StatGroup& grp, const char* name,
                       const char* desc, std::uint64_t v) {
        add(grp, name, desc, static_cast<double>(v));
    };

    addU(g, "reads", "host read requests", stats_.reads);
    addU(g, "writes", "host write requests", stats_.writes);
    addU(g, "read_blocks", "blocks read by the host",
         stats_.readBlocks);
    addU(g, "write_blocks", "blocks written by the host",
         stats_.writeBlocks);
    addU(g, "cache_hit_requests",
         "requests served without a media access",
         stats_.cacheHitRequests);
    addU(g, "hdc_hit_requests",
         "requests served entirely by the HDC store",
         stats_.hdcHitRequests);
    addU(g, "hdc_hit_blocks", "blocks served from the HDC store",
         stats_.hdcHitBlocks);
    addU(g, "ra_hit_blocks", "blocks served from the read-ahead cache",
         stats_.raHitBlocks);
    addU(g, "media_accesses", "media accesses issued",
         stats_.mediaAccesses);
    addU(g, "media_blocks", "demanded blocks read/written on media",
         stats_.mediaBlocks);
    addU(g, "read_ahead_blocks", "speculative blocks read from media",
         stats_.readAheadBlocks);
    addU(g, "flush_writes", "HDC flush media jobs", stats_.flushWrites);
    addU(g, "flush_blocks", "blocks written by HDC flush jobs",
         stats_.flushBlocks);
    add(g, "seek_ms", "total seek + settle time",
        toMillis(stats_.seekTime));
    add(g, "rotation_ms", "total rotational delay",
        toMillis(stats_.rotTime));
    add(g, "transfer_ms", "total media transfer time",
        toMillis(stats_.xferTime));
    add(g, "media_busy_ms", "total mechanism busy time",
        toMillis(stats_.mediaBusy));
    add(g, "queue_ms", "total scheduler queue wait of host requests",
        toMillis(stats_.queueTime));
    add(g, "bus_ms", "total bus transfer time of host requests",
        toMillis(stats_.busTime));
    add(g, "latency_sum_ms", "summed host request latency",
        toMillis(stats_.latencySum));
    add(g, "latency_max_ms", "largest host request latency",
        toMillis(stats_.latencyMax));

    StatGroup& cache = g.makeGroup("cache");
    addU(cache, "capacity_blocks", "read-ahead cache capacity",
         raCache_->capacityBlocks());
    addU(cache, "used_blocks", "read-ahead cache blocks held",
         raCache_->usedBlocks());

    const RaCounters& ra = raCache_->raCounters();
    StatGroup& rag = g.makeGroup("read_ahead");
    addU(rag, "spec_inserted", "speculative blocks cached",
         ra.specInserted);
    addU(rag, "spec_used", "speculative blocks later consumed",
         ra.specUsed);
    addU(rag, "spec_wasted", "speculative blocks dropped unconsumed",
         ra.specWasted);
    add(rag, "accuracy", "spec_used / spec_inserted", ra.accuracy());

    const SchedulerStats& ss = sched_->schedStats();
    StatGroup& sg = g.makeGroup("sched");
    addU(sg, "pushes", "media jobs enqueued", ss.pushes);
    addU(sg, "pops", "media jobs dequeued", ss.pops);
    add(sg, "depth_mean", "mean queue depth after enqueue",
        ss.meanDepth());
    addU(sg, "depth_max", "largest queue depth seen", ss.depthMax);

    const MechCounters& mc = mech_.counters();
    StatGroup& mg = g.makeGroup("mech");
    addU(mg, "accesses", "media accesses serviced", mc.accesses);
    addU(mg, "sectors", "sectors transferred", mc.sectors);
    addU(mg, "seeks", "accesses that moved the arm", mc.seeks);
    addU(mg, "seek_cylinders", "total cylinders travelled",
         mc.seekCylinders);
    addU(mg, "head_switches", "same-cylinder head changes",
         mc.headSwitches);
    addU(mg, "track_crossings", "track boundaries crossed mid-transfer",
         mc.trackCrossings);

    if (hdc_) {
        const HdcCounters& hc = hdc_->counters();
        StatGroup& hg = g.makeGroup("hdc");
        addU(hg, "capacity_blocks", "pinned-region capacity",
             hdc_->capacityBlocks());
        addU(hg, "pinned_blocks", "blocks currently pinned",
             hdc_->pinnedBlocks());
        addU(hg, "dirty_blocks", "pinned blocks with absorbed writes",
             hdc_->dirtyBlocks());
        addU(hg, "pins", "successful pin_blk calls", hc.pins);
        addU(hg, "pin_failures", "rejected pin_blk calls",
             hc.pinFailures);
        addU(hg, "unpins", "successful unpin_blk calls", hc.unpins);
        addU(hg, "dirty_unpins", "unpins that released dirty data",
             hc.dirtyUnpins);
        addU(hg, "absorbed_writes", "writes absorbed by pinned blocks",
             hc.absorbedWrites);
        addU(hg, "flush_calls", "flush_hdc invocations", hc.flushCalls);
        addU(hg, "flushed_blocks", "dirty blocks handed to flush",
             hc.flushedBlocks);
    }
}

std::uint64_t
DiskController::flushHdc()
{
    if (!hdc_)
        return 0;
    std::vector<BlockNum> dirty = hdc_->flush();
    if (dirty.empty())
        return 0;
    std::sort(dirty.begin(), dirty.end());

    // Coalesce contiguous runs into single media writes.
    std::uint64_t jobs = 0;
    std::size_t i = 0;
    while (i < dirty.size()) {
        std::size_t j = i + 1;
        while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1)
            ++j;
        auto job = allocJob();
        job->mediaStart = dirty[i];
        job->mediaCount = j - i;
        job->cylinder = geom_.blockToCylinder(dirty[i]);
        job->seq = seq_++;
        job->background = true;
        job->req.isWrite = true;
        job->req.start = dirty[i];
        job->req.count = j - i;
        enqueueMedia(std::move(job));
        ++jobs;
        i = j;
    }
    return jobs;
}

void
DiskController::submitRebuild(BlockNum start, std::uint64_t count,
                              bool is_write,
                              IoRequest::Callback done)
{
    if (link_ && !link_->quiesced()) {
        // Host context: the command crosses to this disk's timeline
        // like any other submission. The job itself is built
        // shard-side — the job pool is shard state.
        link_->postToShard(
            diskId_, link_->hostNow() + commandLatency(),
            [this, start, count, is_write,
             d = std::move(done)]() mutable {
                enqueueRebuild(start, count, is_write, std::move(d));
            });
        return;
    }
    enqueueRebuild(start, count, is_write, std::move(done));
}

void
DiskController::enqueueRebuild(BlockNum start, std::uint64_t count,
                               bool is_write,
                               IoRequest::Callback done)
{
    auto job = allocJob();
    job->mediaStart = start;
    job->mediaCount = count;
    job->cylinder = geom_.blockToCylinder(start);
    job->seq = seq_++;
    job->background = true;
    job->rebuild = true;
    job->req.isWrite = is_write;
    job->req.start = start;
    job->req.count = count;
    job->req.onComplete = std::move(done);
    enqueueMedia(std::move(job));
}

} // namespace dtsim
