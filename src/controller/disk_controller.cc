#include "controller/disk_controller.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

const char*
cacheOrgName(CacheOrg o)
{
    switch (o) {
      case CacheOrg::Segment: return "Segment";
      case CacheOrg::Block: return "Block";
    }
    return "?";
}

const char*
readAheadModeName(ReadAheadMode m)
{
    switch (m) {
      case ReadAheadMode::None: return "None";
      case ReadAheadMode::Blind: return "Blind";
      case ReadAheadMode::FOR: return "FOR";
    }
    return "?";
}

DiskController::DiskController(EventQueue& eq, ScsiBus& bus,
                               const DiskParams& params,
                               const ControllerConfig& cfg,
                               unsigned disk_id)
    : eq_(eq), bus_(bus), params_(params), cfg_(cfg), diskId_(disk_id),
      geom_(params_), mech_(params_, geom_),
      sched_(makeScheduler(cfg.scheduler))
{
    if (params_.recordingZones > 0) {
        zoned_ = std::make_unique<ZonedGeometry>(
            ZonedGeometry::makeDefault(params_,
                                       params_.recordingZones));
        mech_.setZonedGeometry(zoned_.get());
    }

    // Carve the controller memory: HDC region and (for FOR) the
    // layout bitmap come out of the read-ahead cache budget.
    std::uint64_t ra_bytes = params_.usableCacheBytes();
    if (cfg_.hdcBytes > 0) {
        if (cfg_.hdcBytes >= ra_bytes)
            fatal("DiskController: HDC budget exceeds cache memory");
        ra_bytes -= cfg_.hdcBytes;
        hdc_ = std::make_unique<HdcStore>(
            cfg_.hdcBytes / params_.blockSize);
    }
    if (cfg_.readAhead == ReadAheadMode::FOR) {
        const std::uint64_t bm = params_.bitmapBytes();
        if (bm >= ra_bytes)
            fatal("DiskController: no memory left for the FOR bitmap");
        ra_bytes -= bm;
    }

    maxReadBlocks_ =
        std::max<std::uint64_t>(1, params_.segmentBlocks());

    if (cfg_.org == CacheOrg::Segment) {
        const std::uint64_t nseg =
            std::max<std::uint64_t>(1, ra_bytes / params_.segmentBytes);
        raCache_ = std::make_unique<SegmentCache>(
            nseg, params_.segmentBlocks(), cfg_.segmentPolicy,
            cfg_.seed + disk_id);
    } else {
        const std::uint64_t nblk =
            std::max<std::uint64_t>(8, ra_bytes / params_.blockSize);
        raCache_ = std::make_unique<BlockCache>(nblk, cfg_.blockPolicy);
    }
}

std::uint64_t
DiskController::raCacheBlocks() const
{
    return raCache_->capacityBlocks();
}

std::uint64_t
DiskController::hdcCapacityBlocks() const
{
    return hdc_ ? hdc_->capacityBlocks() : 0;
}

std::uint64_t
DiskController::hdcPinnedBlocks() const
{
    return hdc_ ? hdc_->pinnedBlocks() : 0;
}

double
DiskController::utilization() const
{
    const Tick now = eq_.now();
    if (now == 0)
        return 0.0;
    return static_cast<double>(stats_.mediaBusy) /
           static_cast<double>(now);
}

void
DiskController::submit(IoRequest req)
{
    if (req.count == 0)
        fatal("DiskController: zero-length request");
    if (req.start + req.count > params_.totalBlocks())
        fatal("DiskController: request past end of disk %u", diskId_);
    if (cfg_.readAhead == ReadAheadMode::FOR && bitmap_ == nullptr)
        fatal("DiskController: FOR requires a layout bitmap");

    ++outstanding_;
    req.issued = eq_.now();

    Tick overhead = params_.requestOverhead;
    if (hdc_)
        overhead += params_.hdcLookupOverhead;
    if (cfg_.readAhead == ReadAheadMode::FOR && !req.isWrite)
        overhead += params_.bitmapLookupOverhead;

    eq_.scheduleAfter(overhead, [this, r = std::move(req)]() mutable {
        process(std::move(r));
    });
}

DiskController::PrefixHit
DiskController::cachedPrefix(BlockNum start, std::uint64_t count)
{
    PrefixHit hit;
    while (hit.blocks < count) {
        const BlockNum b = start + hit.blocks;
        if (hdc_ && hdc_->contains(b)) {
            ++hit.blocks;
            ++hit.hdcBlocks;
            continue;
        }
        if (raCache_->lookupPrefix(b, 1) == 1) {
            ++hit.blocks;
            continue;
        }
        break;
    }
    return hit;
}

void
DiskController::process(IoRequest req)
{
    if (req.isWrite)
        handleWrite(std::move(req));
    else
        handleRead(std::move(req));
}

void
DiskController::handleRead(IoRequest req)
{
    ++stats_.reads;
    stats_.readBlocks += req.count;

    const PrefixHit hit = cachedPrefix(req.start, req.count);
    stats_.hdcHitBlocks += hit.hdcBlocks;
    stats_.raHitBlocks += hit.blocks - hit.hdcBlocks;

    // Cached blocks at the tail of the request need not be read from
    // the media either; the single media access covers only
    // [first missing, last missing].
    std::uint64_t suffix = 0;
    std::uint64_t suffix_hdc = 0;
    while (hit.blocks + suffix < req.count) {
        const BlockNum b = req.start + req.count - 1 - suffix;
        if (hdc_ && hdc_->contains(b)) {
            ++suffix;
            ++suffix_hdc;
            continue;
        }
        if (raCache_->contains(b)) {
            ++suffix;
            continue;
        }
        break;
    }
    stats_.hdcHitBlocks += suffix_hdc;
    stats_.raHitBlocks += suffix - suffix_hdc;

    if (hit.blocks + suffix >= req.count) {
        ++stats_.cacheHitRequests;
        if (hit.hdcBlocks + suffix_hdc == req.count) {
            ++stats_.hdcHitRequests;
            req.served = ServiceClass::HdcHit;
        } else {
            req.served = ServiceClass::CacheHit;
        }
        respond(std::move(req), eq_.now());
        return;
    }

    auto job = std::make_unique<MediaJob>();
    job->mediaStart = req.start + hit.blocks;
    job->mediaCount = req.count - hit.blocks - suffix;
    job->cylinder = geom_.blockToCylinder(job->mediaStart);
    job->seq = seq_++;
    job->req = std::move(req);
    job->req.served = ServiceClass::Media;
    enqueueMedia(std::move(job));
}

void
DiskController::handleWrite(IoRequest req)
{
    ++stats_.writes;
    stats_.writeBlocks += req.count;

    if (hdc_ && hdc_->allPinned(req.start, req.count)) {
        // The HDC store absorbs the whole write; dirty blocks reach
        // the media only on flush_hdc().
        for (std::uint64_t i = 0; i < req.count; ++i)
            hdc_->absorbWrite(req.start + i);
        stats_.hdcHitBlocks += req.count;
        ++stats_.hdcHitRequests;
        ++stats_.cacheHitRequests;
        req.served = ServiceClass::HdcHit;
        respond(std::move(req), eq_.now());
        return;
    }

    // Write-through: cached read-ahead copies become stale.
    raCache_->invalidateRange(req.start, req.count);

    auto job = std::make_unique<MediaJob>();
    job->mediaStart = req.start;
    job->mediaCount = req.count;
    job->cylinder = geom_.blockToCylinder(req.start);
    job->seq = seq_++;
    job->req = std::move(req);
    job->req.served = ServiceClass::Media;
    enqueueMedia(std::move(job));
}

void
DiskController::enqueueMedia(std::unique_ptr<MediaJob> job)
{
    sched_->push(std::move(job));
    tryStartMedia();
}

void
DiskController::tryStartMedia()
{
    if (mediaBusy_ || sched_->empty())
        return;
    auto job = sched_->pop(mech_.currentCylinder());
    startMedia(std::move(job));
}

std::uint64_t
DiskController::readAheadBlocks(BlockNum media_start,
                                std::uint64_t media_count) const
{
    std::uint64_t ra = 0;
    const std::uint64_t budget =
        media_count < maxReadBlocks_ ? maxReadBlocks_ - media_count : 0;

    switch (cfg_.readAhead) {
      case ReadAheadMode::None:
        break;
      case ReadAheadMode::Blind:
        ra = budget;
        break;
      case ReadAheadMode::FOR:
        // Read ahead only while the bitmap marks blocks as the
        // logical continuation of their physical predecessor.
        ra = bitmap_->countRun(media_start + media_count, budget);
        break;
    }

    const std::uint64_t end = media_start + media_count;
    const std::uint64_t total = params_.totalBlocks();
    if (end + ra > total)
        ra = total - end;
    return ra;
}

void
DiskController::startMedia(std::unique_ptr<MediaJob> job)
{
    mediaBusy_ = true;

    std::uint64_t ra = 0;
    if (!job->req.isWrite)
        ra = readAheadBlocks(job->mediaStart, job->mediaCount);

    MediaAccess acc;
    acc.startSector = geom_.blockToSector(job->mediaStart);
    acc.sectorCount =
        (job->mediaCount + ra) * geom_.sectorsPerBlock();
    acc.isWrite = job->req.isWrite;

    const ServiceTiming t = mech_.service(acc, eq_.now());

    ++stats_.mediaAccesses;
    if (job->background)
        stats_.flushBlocks += job->mediaCount;
    else
        stats_.mediaBlocks += job->mediaCount;
    stats_.readAheadBlocks += ra;
    stats_.seekTime += t.seek + t.settle;
    stats_.rotTime += t.rotational;
    stats_.xferTime += t.transfer;
    stats_.mediaBusy += t.total();

    MediaJob* raw = job.release();
    eq_.scheduleAfter(t.total(), [this, raw, ra]() {
        onMediaDone(std::unique_ptr<MediaJob>(raw), ra);
    });
}

void
DiskController::insertIntoCache(BlockNum start, std::uint64_t count)
{
    if (!hdc_) {
        raCache_->insertRun(start, count);
        return;
    }
    // Skip pinned blocks: they live in the HDC region already.
    std::uint64_t i = 0;
    while (i < count) {
        if (hdc_->contains(start + i)) {
            ++i;
            continue;
        }
        std::uint64_t j = i + 1;
        while (j < count && !hdc_->contains(start + j))
            ++j;
        raCache_->insertRun(start + i, j - i);
        i = j;
    }
}

void
DiskController::onMediaDone(std::unique_ptr<MediaJob> job,
                            std::uint64_t ra_blocks)
{
    mediaBusy_ = false;

    if (!job->req.isWrite) {
        insertIntoCache(job->mediaStart, job->mediaCount + ra_blocks);
        // The demanded blocks are consumed by the host now; mark them
        // used so MRU replacement sees them as dead.
        raCache_->lookupPrefix(job->mediaStart, job->mediaCount);
    }

    if (job->background) {
        ++stats_.flushWrites;
    } else {
        respond(std::move(job->req), eq_.now());
    }

    tryStartMedia();
}

void
DiskController::respond(IoRequest req, Tick ready)
{
    const Tick done =
        bus_.transfer(ready, req.count * params_.blockSize);
    eq_.scheduleAt(done, [this, r = std::move(req), done]() {
        --outstanding_;
        if (r.onComplete)
            r.onComplete(r, done);
    });
}

bool
DiskController::pinBlock(BlockNum block)
{
    if (!hdc_)
        return false;
    if (block >= params_.totalBlocks())
        fatal("DiskController: pin past end of disk");
    if (!hdc_->pin(block))
        return false;
    // The block now lives in the pinned region; drop any read-ahead
    // copy so the space accounting stays honest.
    raCache_->invalidateRange(block, 1);
    return true;
}

bool
DiskController::unpinBlock(BlockNum block)
{
    if (!hdc_)
        return false;
    bool dirty = false;
    if (!hdc_->unpin(block, &dirty))
        return false;
    if (dirty) {
        // The released block's data must reach the media.
        auto job = std::make_unique<MediaJob>();
        job->mediaStart = block;
        job->mediaCount = 1;
        job->cylinder = geom_.blockToCylinder(block);
        job->seq = seq_++;
        job->background = true;
        job->req.isWrite = true;
        job->req.start = block;
        job->req.count = 1;
        enqueueMedia(std::move(job));
    }
    return true;
}

std::uint64_t
DiskController::flushHdc()
{
    if (!hdc_)
        return 0;
    std::vector<BlockNum> dirty = hdc_->flush();
    if (dirty.empty())
        return 0;
    std::sort(dirty.begin(), dirty.end());

    // Coalesce contiguous runs into single media writes.
    std::uint64_t jobs = 0;
    std::size_t i = 0;
    while (i < dirty.size()) {
        std::size_t j = i + 1;
        while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1)
            ++j;
        auto job = std::make_unique<MediaJob>();
        job->mediaStart = dirty[i];
        job->mediaCount = j - i;
        job->cylinder = geom_.blockToCylinder(dirty[i]);
        job->seq = seq_++;
        job->background = true;
        job->req.isWrite = true;
        job->req.start = dirty[i];
        job->req.count = j - i;
        enqueueMedia(std::move(job));
        ++jobs;
        i = j;
    }
    return jobs;
}

} // namespace dtsim
