/**
 * @file
 * The disk controller: request queue, cache management, read-ahead,
 * HDC commands, and the interface between the host bus and the disk
 * mechanism.
 *
 * The controller implements the paper's three read-ahead modes
 * (none, blind segment-filling, FOR) over either cache organization
 * (segment-based or block-based), plus the HDC pinned store with the
 * pin_blk()/unpin_blk()/flush_hdc() host commands. Cache memory is a
 * single budget: the HDC region and (for FOR) the layout bitmap are
 * carved out of the read-ahead cache, exactly as in Section 6.
 */

#ifndef DTSIM_CONTROLLER_DISK_CONTROLLER_HH
#define DTSIM_CONTROLLER_DISK_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "bus/scsi_bus.hh"
#include "cache/block_cache.hh"
#include "cache/controller_cache.hh"
#include "cache/hdc_store.hh"
#include "cache/segment_cache.hh"
#include "controller/io_request.hh"
#include "controller/layout_bitmap.hh"
#include "controller/scheduler.hh"
#include "disk/disk_params.hh"
#include "disk/geometry.hh"
#include "disk/mechanism.hh"
#include "fault/fault_model.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"
#include "stats/service_stats.hh"
#include "stats/trace.hh"

namespace dtsim {

class ShardLink;

/** Read-ahead cache organization. */
enum class CacheOrg { Segment, Block };

/** Read-ahead policy. */
enum class ReadAheadMode { None, Blind, FOR };

const char* cacheOrgName(CacheOrg o);
const char* readAheadModeName(ReadAheadMode m);

/** Per-controller configuration. */
struct ControllerConfig
{
    CacheOrg org = CacheOrg::Segment;
    SegmentPolicy segmentPolicy = SegmentPolicy::LRU;
    BlockPolicy blockPolicy = BlockPolicy::MRU;
    ReadAheadMode readAhead = ReadAheadMode::Blind;
    SchedulerKind scheduler = SchedulerKind::LOOK;

    /** Bytes of controller memory given to the HDC pinned region. */
    std::uint64_t hdcBytes = 0;

    /** RNG seed for randomized replacement policies. */
    std::uint64_t seed = 1;
};

/** Counters exported by one controller. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readBlocks = 0;
    std::uint64_t writeBlocks = 0;

    /** Requests served entirely without a media access. */
    std::uint64_t cacheHitRequests = 0;

    /** Requests served entirely from the HDC pinned store. */
    std::uint64_t hdcHitRequests = 0;

    /** Individual blocks served from the HDC store. */
    std::uint64_t hdcHitBlocks = 0;

    /** Individual blocks served from the read-ahead cache. */
    std::uint64_t raHitBlocks = 0;

    std::uint64_t mediaAccesses = 0;
    std::uint64_t mediaBlocks = 0;         ///< Demanded blocks.
    std::uint64_t readAheadBlocks = 0;     ///< Speculative blocks.
    std::uint64_t flushWrites = 0;         ///< HDC flush media jobs.
    std::uint64_t flushBlocks = 0;         ///< Blocks they wrote.

    Tick seekTime = 0;
    Tick rotTime = 0;
    Tick xferTime = 0;
    Tick mediaBusy = 0;

    /** Summed per-request scheduler queue wait (host requests). */
    Tick queueTime = 0;

    /** Summed per-request bus transfer time (host requests). */
    Tick busTime = 0;

    /** Summed submit-to-complete latency (host requests). */
    Tick latencySum = 0;

    /** Largest single-request latency. */
    Tick latencyMax = 0;
};

/**
 * One disk drive's controller plus mechanism.
 */
class DiskController
{
  public:
    /**
     * @param eq Global event queue.
     * @param bus Shared host bus.
     * @param params Drive parameters (copied).
     * @param cfg Controller configuration.
     * @param disk_id Array position, for reporting.
     */
    DiskController(EventQueue& eq, ScsiBus& bus,
                   const DiskParams& params,
                   const ControllerConfig& cfg, unsigned disk_id);

    DiskController(const DiskController&) = delete;
    DiskController& operator=(const DiskController&) = delete;

    /**
     * Attach the FOR layout bitmap. Required when the read-ahead mode
     * is FOR; the bitmap is produced by the file-system model (or by
     * controller-resident routines in a real deployment).
     */
    void setBitmap(const LayoutBitmap* bitmap) { bitmap_ = bitmap; }

    /** Submit a host request; the callback fires on completion. */
    void submit(IoRequest req);

    /**
     * Attach the cross-timeline link (null = raw direct scheduling,
     * for directly-constructed controllers in unit tests). Under the
     * sharded kernel, `eq` passed at construction must be the
     * kernel's shard queue for this disk: submissions arrive as
     * cross-shard messages and completions are emitted back to the
     * kernel's host timeline instead of being scheduled directly.
     * Host-owned state (outstanding count, latency stats, histograms,
     * tracer) is then touched only from host context, disk-owned
     * state (mechanism, caches, scheduler) only from this shard's
     * context. Under the serial merge link the split is the same but
     * everything runs on one queue; either way, same-tick cross-disk
     * emissions execute in the canonical (disk, FIFO) order.
     */
    void setShardLink(ShardLink* link) { link_ = link; }

    /**
     * Attach this disk's fault-injection state (null = faults off;
     * the default). With faults attached, media accesses consult the
     * per-disk error model (retries, remaps) and dispatches consult
     * the stall model. Owned by the DiskArray's FaultModel.
     */
    void setFaults(DiskFaults* faults) { faults_ = faults; }

    /**
     * Enqueue one mirror-rebuild media job over
     * [start, start+count). Rebuild traffic competes with foreground
     * I/O in the scheduler but bypasses the caches and the host bus;
     * `done` fires when the media access completes, in host context
     * (the completion crosses back over the link, merged in canonical
     * order). Host context; the command reaches this disk's timeline
     * after commandLatency() ticks.
     */
    void submitRebuild(BlockNum start, std::uint64_t count,
                       bool is_write, IoRequest::Callback done);

    /**
     * Modeled latency of a host->controller command (rebuild
     * submission, mid-run HDC pin/unpin): the per-request overhead
     * plus the HDC lookup charge when an HDC region exists. Equals
     * the sharded kernel's lookahead floor, so a command issued from
     * a host event at tick t lands at t + commandLatency() — a legal
     * cross-shard arrival.
     */
    Tick
    commandLatency() const
    {
        Tick l = params_.requestOverhead;
        if (hdc_)
            l += params_.hdcLookupOverhead;
        return l;
    }

    /**
     * pin_blk(): pin a block into the HDC region. This warm-start
     * variant is untimed (the paper loads HDC contents at the start of
     * each period, outside the measured window).
     *
     * @return false if no HDC region exists or it is full.
     */
    bool pinBlock(BlockNum block);

    /** unpin_blk(): release a pinned block. Untimed. */
    bool unpinBlock(BlockNum block);

    /**
     * flush_hdc(): enqueue background media writes for every dirty
     * pinned block (contiguous runs are coalesced). The writes compete
     * for the mechanism with regular traffic.
     *
     * @return Number of media write jobs enqueued.
     */
    std::uint64_t flushHdc();

    const ControllerStats& stats() const { return stats_; }
    const DiskParams& params() const { return params_; }
    unsigned diskId() const { return diskId_; }

    /** Read-ahead accuracy counters of the controller cache. */
    const RaCounters& raCounters() const
    {
        return raCache_->raCounters();
    }

    /** Scheduler queue-depth counters. */
    const SchedulerStats& schedStats() const
    {
        return sched_->schedStats();
    }

    /**
     * Attach the shared per-request histogram bundle. Optional; when
     * unset, only the scalar counters are maintained.
     */
    void setServiceStats(stats::ServiceStats* svc) { svc_ = svc; }

    /**
     * Attach the request tracer. Optional; the tracer's own enabled
     * check keeps the completion path allocation-free when tracing is
     * off.
     */
    void setTracer(RequestTracer* tracer) { tracer_ = tracer; }

    /**
     * Export a snapshot of every per-component counter as an owned
     * "disk<N>" child group of `parent` (see docs/METRICS.md).
     */
    void exportStats(stats::StatGroup& parent) const;

    /** Read-ahead cache capacity in blocks after HDC/bitmap carving. */
    std::uint64_t raCacheBlocks() const;

    /** HDC region capacity in blocks (0 when HDC is off). */
    std::uint64_t hdcCapacityBlocks() const;

    /** Pinned blocks currently resident. */
    std::uint64_t hdcPinnedBlocks() const;

    /** Outstanding requests (queued or in flight). */
    std::uint64_t outstanding() const { return outstanding_; }

    /** Drive utilization: media busy time / elapsed time. */
    double utilization() const;

  private:
    /** Cached-prefix probe across HDC and the read-ahead cache. */
    struct PrefixHit
    {
        std::uint64_t blocks = 0;     ///< Total cached prefix length.
        std::uint64_t hdcBlocks = 0;  ///< Of which from HDC.
    };

    PrefixHit cachedPrefix(BlockNum start, std::uint64_t count);

    void process(IoRequest req);
    void handleRead(IoRequest req);
    void handleWrite(IoRequest req);

    /** Queue a media job and start the mechanism if idle. */
    void enqueueMedia(std::unique_ptr<MediaJob> job);

    /** Shard-side half of submitRebuild(): build + enqueue the job. */
    void enqueueRebuild(BlockNum start, std::uint64_t count,
                        bool is_write, IoRequest::Callback done);

    void tryStartMedia();
    void startMedia(std::unique_ptr<MediaJob> job);
    void onMediaDone(std::unique_ptr<MediaJob> job,
                     std::uint64_t ra_blocks);

    /** Blocks of speculative read-ahead to append to a media read. */
    std::uint64_t readAheadBlocks(BlockNum media_start,
                                  std::uint64_t media_count) const;

    /** Finish a request: bus transfer then completion callback. */
    void respond(IoRequest req, Tick ready);

    /**
     * Host-side half of respond(): reserve the bus and schedule the
     * completion on the host timeline. In serial mode this runs
     * inline; in sharded mode it runs as an emission consumed by the
     * coordinator in merged tick order (the bus reservation order is
     * the array's serialization surface).
     */
    void finishOverBus(IoRequest req, Tick ready);

    /** Fold a completed host request into stats/histograms/trace. */
    void noteComplete(const IoRequest& req, Tick done);

    /**
     * Insert freshly read blocks, skipping pinned ones. Blocks at
     * offset >= `spec_offset` were read ahead speculatively.
     */
    void insertIntoCache(BlockNum start, std::uint64_t count,
                         std::uint64_t spec_offset);

    /** Default-state MediaJob, recycled through jobPool_. */
    std::unique_ptr<MediaJob> allocJob();

    /** Return a finished job to the pool. */
    void recycleJob(std::unique_ptr<MediaJob> job);

    EventQueue& eq_;
    ScsiBus& bus_;
    DiskParams params_;
    ControllerConfig cfg_;
    unsigned diskId_;

    DiskGeometry geom_;
    std::unique_ptr<ZonedGeometry> zoned_;
    DiskMechanism mech_;
    std::unique_ptr<Scheduler> sched_;
    std::unique_ptr<ControllerCache> raCache_;
    std::unique_ptr<HdcStore> hdc_;
    const LayoutBitmap* bitmap_ = nullptr;

    std::uint64_t maxReadBlocks_;   ///< Segment-size read budget.

    /**
     * Free list of MediaJob allocations: jobs cycle
     * handleRead/handleWrite -> scheduler -> onMediaDone entirely
     * within one controller, so recycling them removes a per-media-job
     * heap round trip.
     */
    std::vector<std::unique_ptr<MediaJob>> jobPool_;

    bool mediaBusy_ = false;

    /** A fault-model stall delay is pending before the next dispatch. */
    bool stallPending_ = false;

    DiskFaults* faults_ = nullptr;
    ShardLink* link_ = nullptr;
    std::uint64_t seq_ = 0;
    std::uint64_t outstanding_ = 0;
    ControllerStats stats_;
    stats::ServiceStats* svc_ = nullptr;
    RequestTracer* tracer_ = nullptr;
};

} // namespace dtsim

#endif // DTSIM_CONTROLLER_DISK_CONTROLLER_HH
