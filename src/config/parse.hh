/**
 * @file
 * Checked scalar parsing for configuration values.
 *
 * Every parser consumes the whole token or fails with a precise,
 * user-facing reason: trailing junk, overflow, a sign on an unsigned
 * field, or an unknown enum token all produce an error message instead
 * of the silent zero that std::atoi would return. The formatters are
 * the inverse: formatValue(parseValue(s)) round-trips every value the
 * registry can hold (doubles use max_digits10 precision).
 */

#ifndef DTSIM_CONFIG_PARSE_HH
#define DTSIM_CONFIG_PARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dtsim {
namespace config {

/**
 * Parse `text` into `out`. On failure, returns false and sets `err`
 * to a human-readable reason (without the parameter name; callers
 * prepend it).
 */
bool parseValue(const std::string& text, std::uint64_t& out,
                std::string& err);
bool parseValue(const std::string& text, unsigned& out,
                std::string& err);
bool parseValue(const std::string& text, double& out,
                std::string& err);
bool parseValue(const std::string& text, bool& out, std::string& err);
bool parseValue(const std::string& text, std::string& out,
                std::string& err);

/** Canonical formatting; formatValue/parseValue round-trip exactly. */
std::string formatValue(std::uint64_t v);
std::string formatValue(unsigned v);
std::string formatValue(double v);
std::string formatValue(bool v);
std::string formatValue(const std::string& v);

/**
 * A token <-> value table for one enum type. Tables are the single
 * source of parse/format truth for every registered enum parameter.
 */
template <typename E>
struct EnumTable
{
    struct Item
    {
        const char* token;
        E value;
    };
    std::vector<Item> items;

    /** "a|b|c", for type columns and error messages. */
    std::string
    tokens() const
    {
        std::string s;
        for (const Item& it : items) {
            if (!s.empty())
                s += '|';
            s += it.token;
        }
        return s;
    }

    bool
    parse(const std::string& text, E& out, std::string& err) const
    {
        for (const Item& it : items) {
            if (text == it.token) {
                out = it.value;
                return true;
            }
        }
        err = "unknown value '" + text + "' (expected " + tokens() +
              ")";
        return false;
    }

    std::string
    format(E v) const
    {
        for (const Item& it : items) {
            if (it.value == v)
                return it.token;
        }
        return "?";
    }
};

} // namespace config
} // namespace dtsim

#endif // DTSIM_CONFIG_PARSE_HH
