/**
 * @file
 * Config-file loading: plain "key = value" files plus the embedded
 * "#conf" form that makes every stats dump and trace file reloadable.
 *
 * Plain form: one `key = value` assignment per line; blank lines and
 * `#` comments are ignored; unknown keys and malformed values are
 * errors with file:line positions.
 *
 * Embedded form: if any line starts with "#conf ", the file is
 * treated as a result file carrying its effective-config header --
 * only the "#conf" lines are parsed and everything else (stats lines,
 * JSONL trace records) is ignored. `--config results.stats` therefore
 * reproduces the run that wrote the file.
 */

#ifndef DTSIM_CONFIG_CONFIG_FILE_HH
#define DTSIM_CONFIG_CONFIG_FILE_HH

#include <string>

#include "config/param_registry.hh"

namespace dtsim {
namespace config {

/**
 * Split one `key = value` assignment (also `key=value`). Returns
 * false with `err` set when there is no '=' or the key is empty.
 * Surrounding whitespace is trimmed from both parts.
 */
bool splitAssignment(const std::string& line, std::string& key,
                     std::string& value, std::string& err);

/**
 * Apply the config text in `text` to `reg`. `origin` names the
 * source in error messages ("file.conf" or "--set"). Returns false
 * and sets `err` (with origin:line prefix) on the first error.
 */
bool loadConfigText(const std::string& text,
                    const std::string& origin, ParamRegistry& reg,
                    std::string& err);

/** Load `path` and apply it to `reg`; see loadConfigText. */
bool loadConfigFile(const std::string& path, ParamRegistry& reg,
                    std::string& err);

} // namespace config
} // namespace dtsim

#endif // DTSIM_CONFIG_CONFIG_FILE_HH
