#include "config/parse.hh"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace dtsim {
namespace config {

namespace {

/** Reject empty input and anything a strict number must not start
 *  with; strtoull/strtod would silently skip whitespace and accept
 *  signs we do not want on unsigned fields. */
bool
checkNumericStart(const std::string& text, bool allow_minus,
                  std::string& err)
{
    if (text.empty()) {
        err = "empty value";
        return false;
    }
    const char c = text.front();
    if (std::isspace(static_cast<unsigned char>(c))) {
        err = "leading whitespace";
        return false;
    }
    if (c == '-' && !allow_minus) {
        err = "negative value for an unsigned parameter";
        return false;
    }
    return true;
}

bool
checkEnd(const std::string& text, const char* end, std::string& err)
{
    if (end == text.c_str()) {
        err = "not a number: '" + text + "'";
        return false;
    }
    if (*end != '\0') {
        err = "trailing junk after number: '" + text + "'";
        return false;
    }
    return true;
}

} // namespace

bool
parseValue(const std::string& text, std::uint64_t& out,
           std::string& err)
{
    if (!checkNumericStart(text, false, err))
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (!checkEnd(text, end, err))
        return false;
    if (errno == ERANGE) {
        err = "out of range for a 64-bit unsigned value: '" + text +
              "'";
        return false;
    }
    out = static_cast<std::uint64_t>(v);
    return true;
}

namespace {

/** Parse into u64, then range-check into a narrower unsigned type. */
template <typename T>
bool
parseNarrow(const std::string& text, T& out, std::string& err)
{
    std::uint64_t v = 0;
    if (!parseValue(text, v, err))
        return false;
    if (v > std::numeric_limits<T>::max()) {
        err = "out of range (max " +
              formatValue(static_cast<std::uint64_t>(
                  std::numeric_limits<T>::max())) +
              "): '" + text + "'";
        return false;
    }
    out = static_cast<T>(v);
    return true;
}

} // namespace

bool
parseValue(const std::string& text, unsigned& out, std::string& err)
{
    return parseNarrow(text, out, err);
}

bool
parseValue(const std::string& text, double& out, std::string& err)
{
    if (!checkNumericStart(text, true, err))
        return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (!checkEnd(text, end, err))
        return false;
    if (errno == ERANGE || !std::isfinite(v)) {
        err = "out of range for a double: '" + text + "'";
        return false;
    }
    out = v;
    return true;
}

bool
parseValue(const std::string& text, bool& out, std::string& err)
{
    if (text == "true" || text == "1" || text == "on" ||
        text == "yes") {
        out = true;
        return true;
    }
    if (text == "false" || text == "0" || text == "off" ||
        text == "no") {
        out = false;
        return true;
    }
    err = "not a boolean (expected true|false|1|0|on|off|yes|no): '" +
          text + "'";
    return false;
}

bool
parseValue(const std::string& text, std::string& out, std::string&)
{
    out = text;
    return true;
}

std::string
formatValue(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
formatValue(unsigned v)
{
    return formatValue(static_cast<std::uint64_t>(v));
}

std::string
formatValue(double v)
{
    // Shortest representation that parses back to the same bits:
    // try increasing precision until the round trip is exact.
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
formatValue(bool v)
{
    return v ? "true" : "false";
}

std::string
formatValue(const std::string& v)
{
    return v;
}

} // namespace config
} // namespace dtsim
