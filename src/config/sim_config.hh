/**
 * @file
 * The unified simulation configuration: one aggregate over every
 * configurable struct in the stack (workload choice, SystemConfig
 * with its DiskParams, SyntheticParams, output options), bound to a
 * ParamRegistry so each field is declared once with name, type,
 * default, and doc.
 *
 * docs/CONFIG.md is the generated reference for every key; regenerate
 * it with `dtsim_cli --param-docs-md`.
 */

#ifndef DTSIM_CONFIG_SIM_CONFIG_HH
#define DTSIM_CONFIG_SIM_CONFIG_HH

#include <string>
#include <vector>

#include "config/param_registry.hh"
#include "core/system.hh"
#include "stats/stats_sink.hh"
#include "stats/trace.hh"
#include "workload/synthetic.hh"

namespace dtsim {

/** Which workload generator drives the run. */
enum class WorkloadKind { Synthetic, Web, Proxy, File };

/** Output options of a run (the file-backed subset of RunOptions). */
struct OutputConfig
{
    /** Stats-dump path ("" = off); see docs/METRICS.md. */
    std::string statsOut;

    /** Sampled per-request trace path ("" = off). */
    std::string trace;

    /** Sampling/format knobs of the trace (the trace.* group). */
    TraceConfig traceCfg;

    /** Live stat streaming (the stats.* group). */
    StatsStreamConfig stream;

    /** Periodic snapshot interval in ticks (0 = final dump only). */
    Tick statsIntervalTicks = 0;

    /**
     * Intra-run kernel worker threads (1 = serial kernel, the
     * default; 0 = DTSIM_JOBS_INTRA or the hardware thread count).
     * Execution-only: results are tick-identical at any setting, so
     * the key never appears in dumps or config headers.
     */
    unsigned jobsIntra = 1;
};

/** Everything one run or sweep point is configured by. */
struct SimulationConfig
{
    WorkloadKind workload = WorkloadKind::Synthetic;

    /** Server-model request scale (web/proxy/file workloads). */
    double scale = 0.05;

    SystemConfig system;
    SyntheticParams synthetic;
    OutputConfig output;
};

/** Token tables shared by the registry, the CLI, and the loader. */
const config::EnumTable<WorkloadKind>& workloadKindTokens();
const config::EnumTable<SystemKind>& systemKindTokens();
const config::EnumTable<HdcPolicy>& hdcPolicyTokens();
const config::EnumTable<SchedulerKind>& schedulerKindTokens();
const config::EnumTable<SegmentPolicy>& segmentPolicyTokens();
const config::EnumTable<BlockPolicy>& blockPolicyTokens();
const config::EnumTable<TraceFormat>& traceFormatTokens();

/**
 * Declare every parameter of `sim` on `reg` (group prefixes:
 * workload., system., disk., synthetic., run., trace., stats.,
 * fault.). `sim` must outlive
 * the registry. Field values at bind time become the documented
 * defaults, so bind default-constructed configs for canonical docs.
 */
void bindParams(config::ParamRegistry& reg, SimulationConfig& sim);

/**
 * Cross-parameter validation, replacing scattered construction-time
 * asserts with precise, early errors. Returns every violated rule
 * (empty = valid). The deep fatal() checks remain as backstops for
 * code that bypasses the config layer.
 */
std::vector<std::string> validateConfig(const SimulationConfig& sim);

/**
 * The canonical effective-config dump: every registered parameter as
 * a "#conf key = value" line, ending with a separator comment. This
 * header starts every stats dump and trace file, making results
 * self-describing; feeding such a file to --config (or the loader)
 * reproduces the run. `groups`, when non-empty, restricts the dump
 * to keys under the given prefixes (e.g. {"system.", "disk."}).
 */
std::string
renderConfigHeader(const SimulationConfig& sim,
                   const std::vector<std::string>& groups = {});

/** Dump as a plain "key = value" config file (no prefix). */
void dumpEffectiveConfig(std::ostream& os,
                         const SimulationConfig& sim);

} // namespace dtsim

#endif // DTSIM_CONFIG_SIM_CONFIG_HH
