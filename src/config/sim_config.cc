#include "config/sim_config.hh"

#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace dtsim {

using config::EnumTable;
using config::ParamRegistry;

const EnumTable<WorkloadKind>&
workloadKindTokens()
{
    static const EnumTable<WorkloadKind> t{{
        {"synthetic", WorkloadKind::Synthetic},
        {"web", WorkloadKind::Web},
        {"proxy", WorkloadKind::Proxy},
        {"file", WorkloadKind::File},
    }};
    return t;
}

const EnumTable<SystemKind>&
systemKindTokens()
{
    static const EnumTable<SystemKind> t{{
        {"segm", SystemKind::Segm},
        {"block", SystemKind::Block},
        {"nora", SystemKind::NoRA},
        {"for", SystemKind::FOR},
    }};
    return t;
}

const EnumTable<HdcPolicy>&
hdcPolicyTokens()
{
    static const EnumTable<HdcPolicy> t{{
        {"pinned", HdcPolicy::Pinned},
        {"victim", HdcPolicy::VictimCache},
    }};
    return t;
}

const EnumTable<SchedulerKind>&
schedulerKindTokens()
{
    static const EnumTable<SchedulerKind> t{{
        {"fcfs", SchedulerKind::FCFS},
        {"look", SchedulerKind::LOOK},
        {"clook", SchedulerKind::CLOOK},
        {"sstf", SchedulerKind::SSTF},
    }};
    return t;
}

const EnumTable<SegmentPolicy>&
segmentPolicyTokens()
{
    static const EnumTable<SegmentPolicy> t{{
        {"lru", SegmentPolicy::LRU},
        {"fifo", SegmentPolicy::FIFO},
        {"random", SegmentPolicy::Random},
        {"rr", SegmentPolicy::RoundRobin},
    }};
    return t;
}

const EnumTable<BlockPolicy>&
blockPolicyTokens()
{
    static const EnumTable<BlockPolicy> t{{
        {"mru", BlockPolicy::MRU},
        {"lru", BlockPolicy::LRU},
    }};
    return t;
}

const EnumTable<TraceFormat>&
traceFormatTokens()
{
    static const EnumTable<TraceFormat> t{{
        {"binary", TraceFormat::Binary},
        {"jsonl", TraceFormat::Jsonl},
    }};
    return t;
}

void
bindParams(ParamRegistry& reg, SimulationConfig& sim)
{
    // workload.* -- which generator drives the run.
    reg.addEnum("workload.kind", sim.workload, workloadKindTokens(),
                "workload generator (synthetic = Section 6.2; "
                "web/proxy/file = the Section 6.3 server models)");
    reg.add("workload.scale", sim.scale,
            "server-model request scale (1.0 = the paper's trace "
            "length; synthetic ignores this)");

    // system.* -- the array-level system under test.
    SystemConfig& sys = sim.system;
    reg.addEnum("system.kind", sys.kind, systemKindTokens(),
                "controller design: segment cache + blind read-ahead "
                "(segm), block cache + blind (block), no read-ahead "
                "(nora), or file-oriented read-ahead (for)");
    reg.add("system.hdc_bytes_per_disk", sys.hdcBytesPerDisk,
            "HDC pinned-region budget per controller in bytes "
            "(0 = HDC off; the paper's figures use 2 MiB)");
    reg.addEnum("system.hdc_policy", sys.hdcPolicy,
                hdcPolicyTokens(),
                "host policy driving the HDC region: pin the "
                "most-missed blocks up front (pinned) or run it as an "
                "array-wide victim cache (victim)");
    reg.add("system.victim_ghost_blocks", sys.victimGhostBlocks,
            "mirrored host-cache size for the victim HDC policy");
    reg.add("system.disks", sys.disks, "disks in the array");
    reg.add("system.stripe_unit_bytes", sys.stripeUnitBytes,
            "striping unit in bytes (must be a multiple of "
            "disk.block_bytes)");
    reg.add("system.mirrored", sys.mirrored,
            "RAID-10 mirroring (halves the logical capacity; needs "
            "an even disk count)");
    reg.add("system.streams", sys.streams,
            "concurrent I/O streams during replay (server workloads "
            "override this with the model's concurrency)");
    reg.add("system.workers", sys.workers,
            "server I/O thread-pool size: records in flight at once "
            "(0 = one worker per stream)");
    reg.addEnum("system.scheduler", sys.scheduler,
                schedulerKindTokens(),
                "media request scheduler (the paper uses LOOK)");
    reg.addEnum("system.segment_policy", sys.segmentPolicy,
                segmentPolicyTokens(),
                "segment-cache replacement policy");
    reg.addEnum("system.block_policy", sys.blockPolicy,
                blockPolicyTokens(),
                "block-cache replacement policy (MRU per the paper)");
    reg.add("system.flush_hdc_at_end", sys.flushHdcAtEnd,
            "issue flush_hdc() after the trace drains");
    reg.add("system.seed", sys.seed,
            "RNG seed of randomized cache policies");

    // disk.* -- the drive model (defaults: IBM Ultrastar 36Z15,
    // Table 1 of the paper).
    DiskParams& d = sys.disk;
    reg.add("disk.capacity_bytes", d.capacityBytes,
            "formatted capacity in bytes (vendor gigabytes)");
    reg.add("disk.sector_bytes", d.sectorSize,
            "bytes per physical sector");
    reg.add("disk.block_bytes", d.blockSize,
            "bytes per logical (file-system) block");
    reg.add("disk.rpm", d.rpm, "spindle speed in revolutions/minute");
    reg.add("disk.sectors_per_track", d.sectorsPerTrack,
            "sectors per track in the flat (unzoned) model");
    reg.add("disk.recording_zones", d.recordingZones,
            "recording zones grading 440 to 340 sectors/track "
            "(0 = flat single-rate model)");
    reg.add("disk.heads", d.heads,
            "read/write heads (tracks per cylinder)");
    reg.add("disk.seek_alpha_ms", d.seekAlphaMs,
            "seek-curve sqrt-region offset in ms");
    reg.add("disk.seek_beta_ms", d.seekBetaMs,
            "seek-curve sqrt-region slope in ms");
    reg.add("disk.seek_gamma_ms", d.seekGammaMs,
            "seek-curve linear-region offset in ms");
    reg.add("disk.seek_delta_ms", d.seekDeltaMs,
            "seek-curve linear-region slope in ms/cylinder");
    reg.add("disk.seek_theta_cyls", d.seekThetaCyls,
            "seek-curve crossover distance in cylinders");
    reg.add("disk.head_switch_ticks", d.headSwitch,
            "head-switch time in ticks (ns)");
    reg.add("disk.write_settle_ticks", d.writeSettle,
            "extra settle time for writes after a seek, in ticks");
    reg.add("disk.xfer_bytes_per_sec", d.xferRateBytesPerSec,
            "media transfer rate in bytes/second");
    reg.add("disk.cache_bytes", d.cacheBytes,
            "controller cache memory in bytes");
    reg.add("disk.cache_reserved_bytes", d.cacheReservedBytes,
            "controller memory reserved for firmware, not caching");
    reg.add("disk.segment_bytes", d.segmentBytes,
            "segment size of the segment-based organization");
    reg.add("disk.request_overhead_ticks", d.requestOverhead,
            "fixed controller overhead charged per request, in ticks");
    reg.add("disk.bitmap_lookup_overhead_ticks",
            d.bitmapLookupOverhead,
            "extra controller time per FOR bitmap consultation");
    reg.add("disk.hdc_lookup_overhead_ticks", d.hdcLookupOverhead,
            "extra controller time per HDC consultation");

    // synthetic.* -- the Section 6.2 synthetic workload.
    SyntheticParams& sp = sim.synthetic;
    reg.add("synthetic.num_files", sp.numFiles,
            "file population size");
    reg.add("synthetic.file_bytes", sp.fileSizeBytes,
            "size of every file in bytes");
    reg.add("synthetic.requests", sp.numRequests,
            "trace requests (complete-file accesses)");
    reg.add("synthetic.zipf_alpha", sp.zipfAlpha,
            "Bradford-Zipf coefficient over file popularity");
    reg.add("synthetic.write_prob", sp.writeProb,
            "probability that a request writes its file [0,1]");
    reg.add("synthetic.coalesce_prob", sp.coalesceProb,
            "per-boundary request coalescing probability [0,1]");
    reg.add("synthetic.fragmentation", sp.fragmentation,
            "intra-file layout fragmentation degree [0,1]");
    reg.add("synthetic.dir_files", sp.dirFiles,
            "files per directory (explicit-grouping comparison)");
    reg.add("synthetic.dir_access_prob", sp.dirAccessProb,
            "probability of a whole-directory access [0,1]");
    reg.add("synthetic.grouped_layout", sp.groupedLayout,
            "allocate directory members contiguously "
            "(Ganger & Kaashoek layout)");
    reg.add("synthetic.block_bytes", sp.blockSize,
            "workload block size (must equal disk.block_bytes)");
    reg.add("synthetic.seed", sp.seed, "workload RNG seed");

    // run.* -- observability outputs (docs/METRICS.md).
    OutputConfig& out = sim.output;
    reg.add("run.stats_out", out.statsOut,
            "write the full stats dump to this file (empty = off)");
    reg.add("run.trace", out.trace,
            "write one sampled record per completed request to this "
            "file, in the trace.format encoding (empty = off; "
            "docs/OBSERVABILITY.md)");
    reg.add("run.stats_interval_ticks", out.statsIntervalTicks,
            "also snapshot stats every this many simulated ticks "
            "(0 = final dump only)");
    reg.add("run.jobs_intra", out.jobsIntra,
            "intra-run kernel worker threads sharding the simulation "
            "per disk (1 = serial kernel; 0 = DTSIM_JOBS_INTRA or the "
            "hardware thread count); results are tick-identical at "
            "any setting");
    reg.markExecutionOnly("run.jobs_intra");

    // trace.* -- sampled-tracing knobs (docs/OBSERVABILITY.md). The
    // defaults record everything in binary, and the whole group is
    // elided from effective-config headers when untouched so
    // pre-sampling headers stay byte-identical.
    TraceConfig& tc = out.traceCfg;
    reg.add("trace.sample", tc.sample,
            "probability that a completed request is recorded, drawn "
            "per request from a dedicated RNG stream (1 = full "
            "trace, 0 = none)");
    reg.add("trace.seed", tc.seed,
            "seed of the sampling RNG stream; the same seed on the "
            "same run reproduces the sampled set exactly");
    reg.addEnum("trace.format", tc.format, traceFormatTokens(),
                "on-disk trace encoding: binary = 64-byte fixed "
                "records (compact, the default), jsonl = one JSON "
                "object per line");
    reg.add("trace.buffer_records", tc.bufferRecords,
            "ring capacity in records between the simulation thread "
            "and the background trace writer (rounded up to a power "
            "of two); overflow drops records rather than blocking");
    reg.markExecutionOnly("trace.buffer_records");

    // stats.* -- live stat streaming (docs/OBSERVABILITY.md).
    // Volatile output: elided from headers when streaming is off.
    StatsStreamConfig& st = out.stream;
    reg.add("stats.stream", st.path,
            "append framed incremental stat snapshots to this "
            "file/FIFO for live tailing (empty = off)");
    reg.add("stats.stream_interval_ticks", st.intervalTicks,
            "simulated ticks between stream frames (0 = inherit "
            "run.stats_interval_ticks)");

    // fault.* -- deterministic fault injection (docs/FAULTS.md).
    // Defaults mean "off"; runs with everything at the default are
    // byte-identical to a build without the fault layer, and the
    // whole group is elided from effective-config headers.
    FaultConfig& f = sys.fault;
    reg.add("fault.media_error_rate", f.mediaErrorRate,
            "per-attempt probability that a media access fails [0,1]");
    reg.add("fault.bad_blocks", f.badBlocks,
            "scripted always-failing blocks, 'disk:block,...' "
            "(empty = none)");
    reg.add("fault.max_retries", f.maxRetries,
            "failed-attempt retries before the sector is remapped");
    reg.add("fault.remap_penalty_ms", f.remapPenaltyMs,
            "extra seek per access touching a remapped sector");
    reg.add("fault.timeout_rate", f.timeoutRate,
            "per-dispatch probability of a transient controller "
            "timeout [0,1]");
    reg.add("fault.stall_windows", f.stallWindows,
            "scripted controller stalls, 'startTick:durationTicks,"
            "...' (empty = none)");
    reg.add("fault.backoff_us", f.backoffUs,
            "initial exponential backoff after a timeout, in us");
    reg.add("fault.backoff_max_us", f.backoffMaxUs,
            "upper bound on the timeout backoff, in us");
    reg.add("fault.kill_at_ticks", f.killAtTicks,
            "tick at which fault.kill_disk dies (0 = never)");
    reg.add("fault.kill_disk", f.killDisk,
            "physical disk killed at fault.kill_at_ticks");
    reg.add("fault.repair_at_ticks", f.repairAtTicks,
            "tick at which the killed disk is repaired and rebuilt "
            "(0 = never)");
    reg.add("fault.rebuild_blocks", f.rebuildBlocks,
            "blocks copied back by the post-repair rebuild "
            "(0 = the whole disk)");
    reg.add("fault.rebuild_chunk_blocks", f.rebuildChunkBlocks,
            "blocks per rebuild media job");
    reg.add("fault.seed", f.seed,
            "seed of the dedicated fault RNG streams");
}

namespace {

void
check(std::vector<std::string>& errs, bool ok, std::string msg)
{
    if (!ok)
        errs.push_back(std::move(msg));
}

std::string
u64s(std::uint64_t v)
{
    return config::formatValue(v);
}

} // namespace

std::vector<std::string>
validateConfig(const SimulationConfig& sim)
{
    std::vector<std::string> errs;
    const SystemConfig& sys = sim.system;
    const DiskParams& d = sys.disk;

    check(errs, sys.disks >= 1, "system.disks must be at least 1");
    check(errs, !sys.mirrored || sys.disks % 2 == 0,
          "system.mirrored needs an even system.disks (got " +
              u64s(sys.disks) + ")");
    check(errs, sys.streams >= 1, "system.streams must be at least 1");

    check(errs, d.sectorSize > 0, "disk.sector_bytes must be > 0");
    check(errs,
          d.blockSize > 0 &&
              (d.sectorSize == 0 || d.blockSize % d.sectorSize == 0),
          "disk.block_bytes (" + u64s(d.blockSize) +
              ") must be a nonzero multiple of disk.sector_bytes (" +
              u64s(d.sectorSize) + ")");
    check(errs, d.blockSize == 0 || d.capacityBytes >= d.blockSize,
          "disk.capacity_bytes must hold at least one block");
    check(errs, d.rpm > 0, "disk.rpm must be > 0");
    check(errs, d.sectorsPerTrack > 0,
          "disk.sectors_per_track must be > 0");
    check(errs, d.heads > 0, "disk.heads must be > 0");
    check(errs, d.xferRateBytesPerSec > 0,
          "disk.xfer_bytes_per_sec must be > 0");

    check(errs,
          sys.stripeUnitBytes > 0 &&
              (d.blockSize == 0 ||
               sys.stripeUnitBytes % d.blockSize == 0),
          "system.stripe_unit_bytes (" + u64s(sys.stripeUnitBytes) +
              ") must be a nonzero multiple of disk.block_bytes (" +
              u64s(d.blockSize) + ")");

    check(errs,
          d.blockSize == 0 ||
              (d.segmentBytes >= d.blockSize &&
               d.segmentBytes % d.blockSize == 0),
          "disk.segment_bytes (" + u64s(d.segmentBytes) +
              ") must be a multiple of disk.block_bytes of at least "
              "one block");
    check(errs, d.usableCacheBytes() > 0,
          "disk.cache_bytes (" + u64s(d.cacheBytes) +
              ") must exceed disk.cache_reserved_bytes (" +
              u64s(d.cacheReservedBytes) + ")");

    // Controller memory carving: the HDC region and (for FOR) the
    // layout bitmap come out of the read-ahead cache budget and must
    // leave room for it (DiskController fatals on the same rules;
    // these produce the error before any thread starts running).
    std::uint64_t carved = sys.hdcBytesPerDisk;
    std::string carve_what =
        "system.hdc_bytes_per_disk (" + u64s(sys.hdcBytesPerDisk) +
        ")";
    if (sys.kind == SystemKind::FOR) {
        carved += d.bitmapBytes();
        carve_what += " plus the FOR layout bitmap (" +
                      u64s(d.bitmapBytes()) + ")";
    }
    check(errs, carved < d.usableCacheBytes(),
          carve_what + " must leave read-ahead cache memory out of "
          "the usable " + u64s(d.usableCacheBytes()) + " bytes");

    check(errs,
          sys.hdcBytesPerDisk == 0 ||
              sys.hdcPolicy != HdcPolicy::VictimCache ||
              sys.victimGhostBlocks >= 1,
          "system.victim_ghost_blocks must be at least 1 under the "
          "victim HDC policy");

    const bool server = sim.workload != WorkloadKind::Synthetic;
    check(errs, !server || sim.scale > 0,
          "workload.scale must be > 0 for server workloads");

    const OutputConfig& out = sim.output;
    check(errs,
          out.traceCfg.sample >= 0.0 && out.traceCfg.sample <= 1.0,
          "trace.sample must be in [0, 1]");
    check(errs, out.traceCfg.sample >= 1.0 || !out.trace.empty(),
          "trace.sample < 1 has no effect without run.trace");
    check(errs,
          !out.stream.enabled() || out.stream.intervalTicks > 0 ||
              out.statsIntervalTicks > 0,
          "stats.stream needs a frame cadence: set "
          "stats.stream_interval_ticks (or run.stats_interval_ticks) "
          "> 0");

    const FaultConfig& f = sys.fault;
    check(errs, f.mediaErrorRate >= 0 && f.mediaErrorRate <= 1,
          "fault.media_error_rate must be in [0,1]");
    check(errs, f.timeoutRate >= 0 && f.timeoutRate <= 1,
          "fault.timeout_rate must be in [0,1]");
    check(errs, f.backoffUs >= 0, "fault.backoff_us must be >= 0");
    check(errs, f.backoffMaxUs >= f.backoffUs,
          "fault.backoff_max_us must be at least fault.backoff_us");
    check(errs, f.remapPenaltyMs >= 0,
          "fault.remap_penalty_ms must be >= 0");
    check(errs, f.rebuildChunkBlocks >= 1,
          "fault.rebuild_chunk_blocks must be at least 1");
    check(errs, f.killAtTicks == 0 || f.killDisk < sys.disks,
          "fault.kill_disk (" + u64s(f.killDisk) +
              ") must name one of the " + u64s(sys.disks) +
              " system.disks");
    check(errs, f.killAtTicks == 0 || sys.mirrored,
          "fault.kill_at_ticks needs system.mirrored: an unmirrored "
          "array has no redundancy to survive a disk failure");
    check(errs,
          f.repairAtTicks == 0 || f.repairAtTicks > f.killAtTicks,
          "fault.repair_at_ticks must be after fault.kill_at_ticks");
    {
        std::vector<BadBlockSpec> bb;
        std::string err;
        if (!fault::parseBadBlocks(f.badBlocks, bb, err)) {
            errs.push_back("fault.bad_blocks: " + err);
        } else {
            for (const BadBlockSpec& s : bb)
                check(errs, s.disk < sys.disks,
                      "fault.bad_blocks names disk " + u64s(s.disk) +
                          " beyond system.disks (" + u64s(sys.disks) +
                          ")");
        }
        std::vector<StallWindow> sw;
        if (!fault::parseStallWindows(f.stallWindows, sw, err))
            errs.push_back("fault.stall_windows: " + err);
    }

    if (sim.workload == WorkloadKind::Synthetic) {
        const SyntheticParams& sp = sim.synthetic;
        check(errs, sp.numFiles >= 1,
              "synthetic.num_files must be at least 1");
        check(errs, sp.fileSizeBytes > 0,
              "synthetic.file_bytes must be > 0");
        check(errs, sp.numRequests >= 1,
              "synthetic.requests must be at least 1");
        check(errs, sp.zipfAlpha >= 0,
              "synthetic.zipf_alpha must be >= 0");
        check(errs, sp.writeProb >= 0 && sp.writeProb <= 1,
              "synthetic.write_prob must be in [0,1]");
        check(errs, sp.coalesceProb >= 0 && sp.coalesceProb <= 1,
              "synthetic.coalesce_prob must be in [0,1]");
        check(errs, sp.fragmentation >= 0 && sp.fragmentation <= 1,
              "synthetic.fragmentation must be in [0,1]");
        check(errs, sp.dirAccessProb >= 0 && sp.dirAccessProb <= 1,
              "synthetic.dir_access_prob must be in [0,1]");
        check(errs, sp.dirFiles >= 1,
              "synthetic.dir_files must be at least 1");
        check(errs, sp.blockSize == d.blockSize,
              "synthetic.block_bytes (" + u64s(sp.blockSize) +
                  ") must equal disk.block_bytes (" +
                  u64s(d.blockSize) + ")");
    }

    return errs;
}

std::string
renderConfigHeader(const SimulationConfig& sim,
                   const std::vector<std::string>& groups)
{
    // Bind a copy so rendering works on const configs.
    SimulationConfig copy = sim;
    ParamRegistry reg;
    bindParams(reg, copy);

    std::ostringstream os;
    os << "# dtsim effective config -- self-describing result "
          "header;\n"
       << "# reload with `dtsim_cli --config <this file>` "
          "(docs/CONFIG.md)\n";
    for (const config::ParamEntry& e : reg.entries()) {
        if (e.execOnly)
            continue;
        if (!groups.empty()) {
            bool match = false;
            for (const std::string& g : groups)
                match = match || e.name.compare(0, g.size(), g) == 0;
            if (!match)
                continue;
        }
        // With every fault switched off the group is pure noise (and
        // pre-fault headers must stay byte-identical): elide it.
        if (!sim.system.fault.enabled() &&
            e.name.compare(0, 6, "fault.") == 0)
            continue;
        // Same contract for the sampled-tracing and live-streaming
        // groups: headers only mention them when a knob was touched,
        // so pre-sampling dumps stay byte-identical.
        if (!sim.output.traceCfg.nonDefault() &&
            e.name.compare(0, 6, "trace.") == 0)
            continue;
        if (!sim.output.stream.enabled() &&
            sim.output.stream.intervalTicks == 0 &&
            e.name.compare(0, 6, "stats.") == 0)
            continue;
        os << "#conf " << e.name << " = " << e.get() << "\n";
    }
    os << "# end of effective config\n";
    return os.str();
}

void
dumpEffectiveConfig(std::ostream& os, const SimulationConfig& sim)
{
    SimulationConfig copy = sim;
    ParamRegistry reg;
    bindParams(reg, copy);
    reg.dump(os);
}

} // namespace dtsim
