#include "config/sweep_spec.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "config/config_file.hh"
#include "sim/logging.hh"

namespace dtsim {

namespace {

/** Grids beyond this are almost certainly a typo in an axis list. */
constexpr std::size_t kMaxPoints = 100000;

std::string
trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitList(const std::string& text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

std::size_t
SweepSpec::points() const
{
    std::size_t n = 1;
    for (const SweepAxis& a : axes)
        n *= a.values.size();
    return n;
}

bool
loadSweepText(const std::string& text, const std::string& origin,
              SweepSpec& spec, std::string& err)
{
    // Scratch registry for checking axis keys/values with line
    // numbers; base assignments apply to the real base.
    SimulationConfig scratch = spec.base;
    config::ParamRegistry scratch_reg;
    bindParams(scratch_reg, scratch);

    config::ParamRegistry base_reg;
    bindParams(base_reg, spec.base);

    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string body = trim(line);
        if (body.empty() || body.front() == '#')
            continue;

        const auto fail = [&](const std::string& why) {
            err = origin + ":" + std::to_string(lineno) + ": " + why;
            return false;
        };

        if (body.compare(0, 6, "sweep ") == 0) {
            SweepAxis axis;
            std::string values, why;
            if (!config::splitAssignment(body.substr(6), axis.key,
                                         values, why))
                return fail(why);
            for (const SweepAxis& prev : spec.axes) {
                if (prev.key == axis.key)
                    return fail("duplicate sweep axis '" + axis.key +
                                "'");
            }
            axis.values = splitList(values);
            if (axis.values.empty())
                return fail("sweep axis '" + axis.key +
                            "' has no values");
            for (const std::string& v : axis.values) {
                if (!scratch_reg.set(axis.key, v, why))
                    return fail(why);
            }
            spec.axes.push_back(std::move(axis));
            continue;
        }

        std::string key, value, why;
        if (!config::splitAssignment(body, key, value, why) ||
            !base_reg.set(key, value, why))
            return fail(why);
    }

    if (spec.points() > kMaxPoints) {
        err = origin + ": sweep grid has " +
              std::to_string(spec.points()) + " points (limit " +
              std::to_string(kMaxPoints) + ")";
        return false;
    }
    return true;
}

bool
loadSweepFile(const std::string& path, SweepSpec& spec,
              std::string& err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open sweep file '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return loadSweepText(text.str(), path, spec, err);
}

std::vector<SweepPoint>
expandSweep(const SweepSpec& spec, std::string& err)
{
    std::vector<SweepPoint> points;
    const std::size_t total = spec.points();
    if (total > kMaxPoints) {
        err = "sweep grid has " + std::to_string(total) +
              " points (limit " + std::to_string(kMaxPoints) + ")";
        return points;
    }
    points.reserve(total);

    for (std::size_t idx = 0; idx < total; ++idx) {
        SweepPoint p;
        p.cfg = spec.base;
        config::ParamRegistry reg;
        bindParams(reg, p.cfg);

        // Mixed-radix decomposition of idx: first axis slowest.
        std::size_t rest = idx;
        std::size_t stride = total;
        for (const SweepAxis& axis : spec.axes) {
            stride /= axis.values.size();
            const std::size_t vi = rest / stride;
            rest %= stride;
            const std::string& value = axis.values[vi];
            std::string why;
            if (!reg.set(axis.key, value, why)) {
                err = why;
                return {};
            }
            p.coords.emplace_back(axis.key, value);
        }

        const std::vector<std::string> errs = validateConfig(p.cfg);
        if (!errs.empty()) {
            p.feasible = false;
            p.whyNot = errs.front();
        }
        points.push_back(std::move(p));
    }
    return points;
}

} // namespace dtsim
