#include "config/config_file.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace dtsim {
namespace config {

namespace {

const char kEmbeddedPrefix[] = "#conf ";

std::string
trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string& s, const char* prefix)
{
    return s.compare(0, std::char_traits<char>::length(prefix),
                     prefix) == 0;
}

} // namespace

bool
splitAssignment(const std::string& line, std::string& key,
                std::string& value, std::string& err)
{
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
        err = "expected 'key = value', got '" + trim(line) + "'";
        return false;
    }
    key = trim(line.substr(0, eq));
    value = trim(line.substr(eq + 1));
    if (key.empty()) {
        err = "missing parameter name before '='";
        return false;
    }
    return true;
}

bool
loadConfigText(const std::string& text, const std::string& origin,
               ParamRegistry& reg, std::string& err)
{
    // First pass: does the text carry an embedded config header?
    bool embedded = false;
    {
        std::istringstream scan(text);
        std::string line;
        while (std::getline(scan, line)) {
            if (startsWith(line, kEmbeddedPrefix)) {
                embedded = true;
                break;
            }
        }
    }

    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string body;
        if (embedded) {
            // Result-file mode: only "#conf" lines are config.
            if (!startsWith(line, kEmbeddedPrefix))
                continue;
            body = line.substr(sizeof(kEmbeddedPrefix) - 1);
        } else {
            body = trim(line);
            if (body.empty() || body.front() == '#')
                continue;
        }

        std::string key, value, why;
        if (!splitAssignment(body, key, value, why) ||
            !reg.set(key, value, why)) {
            err = origin + ":" + std::to_string(lineno) + ": " + why;
            return false;
        }
    }
    return true;
}

bool
loadConfigFile(const std::string& path, ParamRegistry& reg,
               std::string& err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open config file '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return loadConfigText(text.str(), path, reg, err);
}

} // namespace config
} // namespace dtsim
