/**
 * @file
 * Data-driven parameter sweeps: a grid of registered-parameter values
 * parsed from a config file, expanded into one SimulationConfig per
 * grid point. New parameter studies need a .conf file, not new C++ --
 * the fig07-fig12 figure sweeps ship as .conf files under examples/
 * and the figure benches build the same specs programmatically.
 *
 * Sweep-file syntax is the plain config-file syntax plus axis lines:
 *
 *     workload.kind = web             # base assignment
 *     sweep system.stripe_unit_bytes = 4096, 8192, 16384
 *     sweep system.kind = segm, for   # axes multiply (grid)
 *
 * Axes expand as a cartesian product in file order, first axis
 * slowest (the fig07 tables read: first axis = rows, later axes =
 * columns). Grid points that fail cross-parameter validation are
 * marked infeasible rather than aborting the sweep -- the paper's
 * FOR+HDC curves stop early for exactly this reason.
 */

#ifndef DTSIM_CONFIG_SWEEP_SPEC_HH
#define DTSIM_CONFIG_SWEEP_SPEC_HH

#include <string>
#include <utility>
#include <vector>

#include "config/sim_config.hh"

namespace dtsim {

/** One swept parameter and its values (canonical text form). */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** A sweep: a base configuration plus the axes varied over it. */
struct SweepSpec
{
    SimulationConfig base;
    std::vector<SweepAxis> axes;

    /** Grid size (product of axis lengths; 1 with no axes). */
    std::size_t points() const;
};

/** One expanded grid point. */
struct SweepPoint
{
    SimulationConfig cfg;

    /** The (key, value) coordinates of this point, in axis order. */
    std::vector<std::pair<std::string, std::string>> coords;

    /** False when the combination fails validateConfig(). */
    bool feasible = true;

    /** First validation error when infeasible. */
    std::string whyNot;
};

/**
 * Parse the sweep file at `path` on top of `spec->base` (callers
 * prefill it; assignments in the file override it). Axis keys and
 * every axis value are checked against the registry immediately, so
 * errors carry file:line positions. Returns false + `err` on the
 * first error.
 */
bool loadSweepFile(const std::string& path, SweepSpec& spec,
                   std::string& err);

/** Same, from in-memory text (`origin` names it in errors). */
bool loadSweepText(const std::string& text,
                   const std::string& origin, SweepSpec& spec,
                   std::string& err);

/**
 * Expand the grid: one SweepPoint per combination, first axis
 * slowest. Combinations failing cross-validation come back with
 * feasible = false. Returns an empty vector with `err` set when an
 * axis names an unknown key or a value fails to parse (only possible
 * for hand-built specs; loadSweepFile pre-checks).
 */
std::vector<SweepPoint> expandSweep(const SweepSpec& spec,
                                    std::string& err);

} // namespace dtsim

#endif // DTSIM_CONFIG_SWEEP_SPEC_HH
