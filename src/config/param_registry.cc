#include "config/param_registry.hh"

#include <ostream>

#include "sim/logging.hh"

namespace dtsim {
namespace config {

void
ParamRegistry::insert(ParamEntry e)
{
    if (index_.count(e.name))
        panic("ParamRegistry: duplicate parameter '%s'",
              e.name.c_str());
    index_.emplace(e.name, entries_.size());
    entries_.push_back(std::move(e));
}

bool
ParamRegistry::has(const std::string& name) const
{
    return index_.count(name) != 0;
}

bool
ParamRegistry::set(const std::string& name, const std::string& text,
                   std::string& err)
{
    const auto it = index_.find(name);
    if (it == index_.end()) {
        err = "unknown parameter '" + name +
              "' (dtsim_cli --list-params shows every key)";
        return false;
    }
    std::string why;
    if (!entries_[it->second].set(text, why)) {
        err = name + ": " + why;
        return false;
    }
    return true;
}

std::string
ParamRegistry::get(const std::string& name) const
{
    const auto it = index_.find(name);
    if (it == index_.end())
        panic("ParamRegistry::get: unknown parameter '%s'",
              name.c_str());
    return entries_[it->second].get();
}

void
ParamRegistry::markExecutionOnly(const std::string& name)
{
    const auto it = index_.find(name);
    if (it == index_.end())
        panic("ParamRegistry::markExecutionOnly: unknown parameter "
              "'%s'",
              name.c_str());
    entries_[it->second].execOnly = true;
}

void
ParamRegistry::dump(std::ostream& os,
                    const std::string& line_prefix) const
{
    for (const ParamEntry& e : entries_) {
        if (e.execOnly)
            continue;
        os << line_prefix << e.name << " = " << e.get() << "\n";
    }
}

} // namespace config
} // namespace dtsim
