/**
 * @file
 * A gem5-style typed parameter registry.
 *
 * Every configurable field of the simulator is declared once -- name,
 * type, default, and one-line doc -- bound to the live struct field it
 * controls. The registry is then the single surface for:
 *
 *  - checked parsing with precise errors (config/parse.hh),
 *  - config-file loading and --set overrides (config/config_file.hh),
 *  - the canonical effective-config dump that makes every stats dump
 *    and trace file self-describing and round-trippable,
 *  - generated --help / --list-params / reference documentation.
 *
 * A registry does not own the structs it binds; bind it to structs
 * that outlive it (see config/sim_config.hh for the standard set).
 */

#ifndef DTSIM_CONFIG_PARAM_REGISTRY_HH
#define DTSIM_CONFIG_PARAM_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/parse.hh"

namespace dtsim {
namespace config {

/** One registered parameter. */
struct ParamEntry
{
    std::string name;  ///< Full dotted key, e.g. "system.disks".
    std::string type;  ///< "u64", "double", "bool", "string", or
                       ///< the token list of an enum ("segm|block|...").
    std::string doc;   ///< One-line description.

    /** The bound field's value at registration time, formatted. */
    std::string defaultValue;

    /** Read the bound field, canonically formatted. */
    std::function<std::string()> get;

    /** Parse `text` into the bound field; false + err on failure. */
    std::function<bool(const std::string& text, std::string& err)>
        set;

    /**
     * Execution-only: the parameter tunes how a run executes (e.g.
     * run.jobs_intra) without affecting results, so dump() and the
     * effective-config headers skip it — otherwise byte-comparing
     * outputs across execution modes would spuriously differ.
     */
    bool execOnly = false;
};

class ParamRegistry
{
  public:
    /**
     * Register a scalar parameter bound to `field`. The field's
     * current value is captured as the documented default. Duplicate
     * names panic (a registration bug, not a user error).
     */
    template <typename T>
    void
    add(const std::string& name, T& field, const std::string& doc)
    {
        ParamEntry e;
        e.name = name;
        e.type = typeName(field);
        e.doc = doc;
        e.defaultValue = formatValue(field);
        e.get = [&field]() { return formatValue(field); };
        e.set = [&field](const std::string& text, std::string& err) {
            return parseValue(text, field, err);
        };
        insert(std::move(e));
    }

    /** Register an enum parameter parsed/formatted via `table`. */
    template <typename E>
    void
    addEnum(const std::string& name, E& field,
            const EnumTable<E>& table, const std::string& doc)
    {
        ParamEntry e;
        e.name = name;
        e.type = table.tokens();
        e.doc = doc;
        e.defaultValue = table.format(field);
        e.get = [&field, &table]() { return table.format(field); };
        e.set = [&field, &table](const std::string& text,
                                 std::string& err) {
            return table.parse(text, field, err);
        };
        insert(std::move(e));
    }

    /** Whether `name` is a registered parameter. */
    bool has(const std::string& name) const;

    /**
     * Set parameter `name` from `text`. Returns false and fills
     * `err` (including the parameter name) on an unknown name or a
     * value that fails to parse.
     */
    bool set(const std::string& name, const std::string& text,
             std::string& err);

    /**
     * Current value of `name`, canonically formatted. panic() on an
     * unknown name (a caller bug; user input goes through set/has).
     */
    std::string get(const std::string& name) const;

    /**
     * Mark a registered parameter execution-only (excluded from
     * dump() and config headers). panic() on an unknown name.
     */
    void markExecutionOnly(const std::string& name);

    /** All entries, in registration order (= dump order). */
    const std::vector<ParamEntry>& entries() const
    {
        return entries_;
    }

    /**
     * Write every parameter as a "key = value" line, each prefixed
     * with `line_prefix`. With the "#conf " prefix this is the
     * effective-config header embedded in stats dumps and traces;
     * with an empty prefix it is a plain config file. Both reload
     * through config/config_file.hh.
     */
    void dump(std::ostream& os,
              const std::string& line_prefix = "") const;

  private:
    static std::string typeName(const std::uint64_t&) { return "u64"; }
    static std::string typeName(const unsigned&) { return "u32"; }
    static std::string typeName(const double&) { return "double"; }
    static std::string typeName(const bool&) { return "bool"; }
    static std::string typeName(const std::string&)
    {
        return "string";
    }

    void insert(ParamEntry e);

    std::vector<ParamEntry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace config
} // namespace dtsim

#endif // DTSIM_CONFIG_PARAM_REGISTRY_HH
