#include "fs/buffer_cache.hh"

#include "sim/logging.hh"

namespace dtsim {

BufferCache::BufferCache(std::uint64_t capacity_blocks)
    : capacity_(capacity_blocks)
{
    if (capacity_blocks == 0)
        fatal("BufferCache: capacity must be > 0");
}

void
BufferCache::touch(List::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

bool
BufferCache::readHit(ArrayBlock block)
{
    ++stats_.readLookups;
    auto it = map_.find(block);
    if (it == map_.end()) {
        ++stats_.readMisses;
        return false;
    }
    touch(it->second);
    return true;
}

void
BufferCache::evictOne(std::vector<ArrayBlock>& writebacks)
{
    const Node victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim.block);
    ++stats_.evictions;
    if (victim.dirty) {
        writebacks.push_back(victim.block);
        ++stats_.dirtyWritebacks;
    }
}

void
BufferCache::install(ArrayBlock block,
                     std::vector<ArrayBlock>& writebacks)
{
    auto it = map_.find(block);
    if (it != map_.end()) {
        touch(it->second);
        return;
    }
    if (map_.size() >= capacity_)
        evictOne(writebacks);
    lru_.push_front(Node{block, false});
    map_.emplace(block, lru_.begin());
}

bool
BufferCache::write(ArrayBlock block,
                   std::vector<ArrayBlock>& writebacks)
{
    ++stats_.writeLookups;
    auto it = map_.find(block);
    if (it != map_.end()) {
        if (it->second->dirty)
            ++stats_.writeMerges;
        it->second->dirty = true;
        touch(it->second);
        return true;
    }
    if (map_.size() >= capacity_)
        evictOne(writebacks);
    lru_.push_front(Node{block, true});
    map_.emplace(block, lru_.begin());
    return false;
}

std::vector<ArrayBlock>
BufferCache::sync()
{
    std::vector<ArrayBlock> dirty;
    for (Node& n : lru_) {
        if (n.dirty) {
            dirty.push_back(n.block);
            n.dirty = false;
        }
    }
    return dirty;
}

std::vector<ArrayBlock>
BufferCache::dropAll()
{
    std::vector<ArrayBlock> dirty = sync();
    lru_.clear();
    map_.clear();
    return dirty;
}

bool
BufferCache::contains(ArrayBlock block) const
{
    return map_.count(block) != 0;
}

} // namespace dtsim
