#include "fs/buffer_cache.hh"

#include "sim/logging.hh"

namespace dtsim {

BufferCache::BufferCache(std::uint64_t capacity_blocks)
    : capacity_(capacity_blocks),
      slab_(static_cast<std::uint32_t>(capacity_blocks)),
      map_(capacity_blocks)
{
    if (capacity_blocks == 0)
        fatal("BufferCache: capacity must be > 0");
    if (capacity_blocks >= kNullSlot)
        fatal("BufferCache: capacity %llu exceeds the slab slot space",
              static_cast<unsigned long long>(capacity_blocks));
}

bool
BufferCache::readHit(ArrayBlock block)
{
    ++stats_.readLookups;
    const std::uint32_t* slot = map_.find(block);
    if (!slot) {
        ++stats_.readMisses;
        return false;
    }
    Ops::moveToFront(slab_, lru_, *slot);
    return true;
}

void
BufferCache::evictOne(std::vector<ArrayBlock>& writebacks)
{
    const std::uint32_t n = lru_.tail;
    const Entry victim = slab_[n];
    Ops::unlink(slab_, lru_, n);
    slab_.release(n);
    map_.erase(victim.block);
    ++stats_.evictions;
    if (victim.dirty) {
        --dirty_;
        writebacks.push_back(victim.block);
        ++stats_.dirtyWritebacks;
    }
}

void
BufferCache::install(ArrayBlock block,
                     std::vector<ArrayBlock>& writebacks)
{
    const std::uint32_t* slot = map_.find(block);
    if (slot) {
        Ops::moveToFront(slab_, lru_, *slot);
        return;
    }
    if (map_.size() >= capacity_)
        evictOne(writebacks);
    const std::uint32_t n = slab_.allocate();
    slab_[n] = Entry{block, false};
    Ops::pushFront(slab_, lru_, n);
    map_.insert(block, n);
    checkInvariants();
}

bool
BufferCache::write(ArrayBlock block,
                   std::vector<ArrayBlock>& writebacks)
{
    ++stats_.writeLookups;
    const std::uint32_t* slot = map_.find(block);
    if (slot) {
        Entry& e = slab_[*slot];
        if (e.dirty)
            ++stats_.writeMerges;
        else
            ++dirty_;
        e.dirty = true;
        Ops::moveToFront(slab_, lru_, *slot);
        return true;
    }
    if (map_.size() >= capacity_)
        evictOne(writebacks);
    const std::uint32_t n = slab_.allocate();
    slab_[n] = Entry{block, true};
    ++dirty_;
    Ops::pushFront(slab_, lru_, n);
    map_.insert(block, n);
    checkInvariants();
    return false;
}

std::vector<ArrayBlock>
BufferCache::sync()
{
    std::vector<ArrayBlock> dirty;
    dirty.reserve(dirty_);
    // Walk MRU -> LRU, stopping once every dirty entry is collected:
    // the order matches the full walk, and in steady state the dirty
    // set is tiny relative to the list.
    for (std::uint32_t n = lru_.head;
         dirty_ != 0 && n != kNullSlot; n = slab_.nextOf(n)) {
        Entry& e = slab_[n];
        if (e.dirty) {
            dirty.push_back(e.block);
            e.dirty = false;
            --dirty_;
        }
    }
    return dirty;
}

std::vector<ArrayBlock>
BufferCache::dropAll()
{
    std::vector<ArrayBlock> dirty = sync();
    while (lru_.head != kNullSlot) {
        const std::uint32_t n = lru_.head;
        Ops::unlink(slab_, lru_, n);
        slab_.release(n);
    }
    map_.clear();
    checkInvariants();
    return dirty;
}

bool
BufferCache::contains(ArrayBlock block) const
{
    return map_.contains(block);
}

} // namespace dtsim
