/**
 * @file
 * The operating system's sequential prefetching model (Section 2.3).
 *
 * UNIX-like sequential prefetch: each file tracks its last accessed
 * block; sequential accesses grow the prefetch window (doubling from
 * one block) up to a maximum (64 KB in Linux); a non-sequential access
 * collapses it to zero. A "perfect" mode prefetches to the end of the
 * file, which is what Section 6.2's synthetic experiments assume.
 */

#ifndef DTSIM_FS_PREFETCHER_HH
#define DTSIM_FS_PREFETCHER_HH

#include <cstdint>

#include "sim/flat_table.hh"

namespace dtsim {

/** Prefetcher operating mode. */
enum class PrefetchMode
{
    None,       ///< No OS prefetching.
    Sequential, ///< Adaptive window, UNIX-style.
    Perfect,    ///< Prefetch to end of file (Section 6.2).
};

/** Per-file sequential prefetch planner. */
class Prefetcher
{
  public:
    /**
     * @param mode Operating mode.
     * @param max_blocks Window cap in blocks (16 = 64 KB default).
     */
    explicit Prefetcher(PrefetchMode mode = PrefetchMode::Sequential,
                        std::uint32_t max_blocks = 16);

    /**
     * Plan the prefetch for an access to file `file` covering file
     * blocks [start, start+count), where the file has `file_blocks`
     * blocks total.
     *
     * @return Number of file blocks to read beyond the access.
     */
    std::uint64_t plan(std::uint32_t file, std::uint64_t start,
                       std::uint64_t count,
                       std::uint64_t file_blocks);

    /** Drop all per-file history. */
    void reset() { state_.clear(); }

  private:
    struct FileState
    {
        std::uint64_t nextExpected = 0;
        std::uint32_t window = 0;
    };

    PrefetchMode mode_;
    std::uint32_t maxBlocks_;

    /**
     * file -> window state, probed once per generated access.
     * Open-addressing keeps the probe allocation-free; the table
     * grows with the file population (workload-bounded).
     */
    FlatTable<FileState> state_;
};

} // namespace dtsim

#endif // DTSIM_FS_PREFETCHER_HH
