/**
 * @file
 * The host's file-system buffer cache, used to turn file-level server
 * workloads into the disk-level miss traces the controller study
 * consumes (Section 6.3's instrumented-kernel methodology).
 *
 * The cache is an LRU over logical array blocks. Reads miss or hit;
 * writes are absorbed dirty (write-back) and reach the disk when a
 * dirty block is evicted or at the periodic sync, merging repeated
 * writes to the same block exactly as the paper observes (34% write
 * requests becoming 20% write accesses for the file server).
 *
 * The LRU is a pre-allocated slot slab plus an open-addressing
 * block->slot table (capacity is fixed at construction), so the
 * per-access path -- millions of lookups per generated server trace --
 * performs no heap allocation. Decisions are tick-identical to the
 * previous std::list + std::unordered_map implementation.
 */

#ifndef DTSIM_FS_BUFFER_CACHE_HH
#define DTSIM_FS_BUFFER_CACHE_HH

#include <cstdint>
#include <vector>

#include "array/striping.hh"
#include "sim/flat_table.hh"
#include "sim/slab_list.hh"

namespace dtsim {

/** Statistics of a buffer cache instance. */
struct BufferCacheStats
{
    std::uint64_t readLookups = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeLookups = 0;
    std::uint64_t writeMerges = 0;   ///< Writes absorbed into dirty blocks.
    std::uint64_t evictions = 0;
    std::uint64_t dirtyWritebacks = 0;

    /** Fraction of read lookups that hit. */
    double
    readHitRate() const
    {
        return readLookups
                   ? 1.0 - static_cast<double>(readMisses) /
                               static_cast<double>(readLookups)
                   : 0.0;
    }

    /** Fraction of write lookups absorbed into already-dirty blocks. */
    double
    writeMergeRate() const
    {
        return writeLookups ? static_cast<double>(writeMerges) /
                                  static_cast<double>(writeLookups)
                            : 0.0;
    }
};

/** Host buffer cache (LRU, write-back). */
class BufferCache
{
  public:
    /** @param capacity_blocks Cache size in 4 KB blocks. */
    explicit BufferCache(std::uint64_t capacity_blocks);

    /**
     * Look up a block for reading and update recency.
     * @return true on hit.
     */
    bool readHit(ArrayBlock block);

    /**
     * Install a block just read from disk (also used for read-ahead
     * installs). May evict; a dirty eviction is appended to
     * `writebacks`.
     */
    void install(ArrayBlock block, std::vector<ArrayBlock>& writebacks);

    /**
     * Write a block: installs it dirty (write-back).
     * @return true if the block was already cached (write merged).
     */
    bool write(ArrayBlock block, std::vector<ArrayBlock>& writebacks);

    /**
     * Collect and clean all dirty blocks (periodic sync).
     */
    std::vector<ArrayBlock> sync();

    /**
     * Drop the entire cache contents (e.g. nightly batch jobs
     * evicting the day's working set).
     *
     * @return The dirty blocks that must reach the disk.
     */
    std::vector<ArrayBlock> dropAll();

    bool contains(ArrayBlock block) const;
    std::uint64_t size() const { return map_.size(); }
    std::uint64_t capacity() const { return capacity_; }
    const BufferCacheStats& stats() const { return stats_; }

  private:
    struct Entry
    {
        ArrayBlock block = 0;
        bool dirty = false;
    };

    using Ops = SlabListOps<Entry>;

    void evictOne(std::vector<ArrayBlock>& writebacks);

    /** Debug-build slab/map accounting invariants (see BlockCache). */
    void
    checkInvariants() const
    {
#ifndef NDEBUG
        assert(slab_.freeCount() + lru_.size == slab_.capacity());
        assert(map_.size() == lru_.size);
#endif
    }

    std::uint64_t capacity_;
    Slab<Entry> slab_;
    SlabList lru_;  ///< Front = most recently used.
    FlatTable<std::uint32_t> map_;  ///< block -> slab slot
    std::uint64_t dirty_ = 0;  ///< dirty entries (sync early-exit)
    BufferCacheStats stats_;
};

} // namespace dtsim

#endif // DTSIM_FS_BUFFER_CACHE_HH
