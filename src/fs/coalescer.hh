/**
 * @file
 * Request coalescing model (Sections 2.3 and 6.2).
 *
 * When the OS or device driver issues requests for consecutive blocks
 * close together in time, they merge into one larger disk request.
 * The synthetic experiments model this with a per-boundary coalescing
 * probability (87% measured on the paper's real workloads).
 */

#ifndef DTSIM_FS_COALESCER_HH
#define DTSIM_FS_COALESCER_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace dtsim {

/**
 * Split a run of `count` consecutive blocks into request sizes, where
 * each of the count-1 internal boundaries merges with probability
 * `coalesce_prob`.
 *
 * @return The sizes of the resulting requests (sums to count).
 */
std::vector<std::uint64_t>
coalesceRun(std::uint64_t count, double coalesce_prob, Rng& rng);

} // namespace dtsim

#endif // DTSIM_FS_COALESCER_HH
