#include "fs/file_layout.hh"

#include "sim/logging.hh"

namespace dtsim {

std::uint64_t
FileLayout::blocks() const
{
    std::uint64_t n = 0;
    for (const FileExtent& e : extents)
        n += e.count;
    return n;
}

ArrayBlock
FileLayout::blockAt(std::uint64_t idx) const
{
    for (const FileExtent& e : extents) {
        if (idx < e.count)
            return e.start + idx;
        idx -= e.count;
    }
    panic("FileLayout: block index out of range");
}

FileSystemImage::FileSystemImage(
    const std::vector<std::uint64_t>& file_sizes_bytes,
    const LayoutParams& params, std::uint64_t total_blocks)
    : params_(params)
{
    Rng rng(params.seed);
    files_.reserve(file_sizes_bytes.size());

    for (std::uint64_t size : file_sizes_bytes) {
        FileLayout f;
        f.sizeBytes = size;
        const std::uint64_t nblocks = size == 0
            ? 1
            : (size + params.blockSize - 1) / params.blockSize;

        FileExtent cur{nextFree_, 0};
        for (std::uint64_t i = 0; i < nblocks; ++i) {
            if (i > 0 && rng.chance(params.fragmentation)) {
                // Break contiguity: leave a hole and start a new
                // extent.
                f.extents.push_back(cur);
                nextFree_ += params.gapBlocks;
                cur = FileExtent{nextFree_, 0};
            }
            ++cur.count;
            ++nextFree_;
        }
        f.extents.push_back(cur);
        dataBlocks_ += nblocks;
        files_.push_back(std::move(f));
    }

    if (nextFree_ > total_blocks)
        fatal("FileSystemImage: files (%llu blocks) exceed capacity "
              "(%llu blocks)",
              static_cast<unsigned long long>(nextFree_),
              static_cast<unsigned long long>(total_blocks));
}

std::vector<LayoutBitmap>
FileSystemImage::buildBitmaps(const StripingMap& striping) const
{
    const std::uint64_t per_disk =
        striping.totalBlocks() / striping.disks();
    std::vector<LayoutBitmap> maps;
    maps.reserve(striping.disks());
    for (unsigned d = 0; d < striping.disks(); ++d)
        maps.emplace_back(per_disk);

    for (const FileLayout& f : files_) {
        const std::uint64_t n = f.blocks();
        PhysicalLoc prev{};
        for (std::uint64_t i = 0; i < n; ++i) {
            const PhysicalLoc loc =
                striping.toPhysical(f.blockAt(i));
            if (i > 0 && loc.disk == prev.disk &&
                loc.block == prev.block + 1) {
                maps[loc.disk].set(loc.block, true);
            }
            prev = loc;
        }
    }
    return maps;
}

double
FileSystemImage::averageSequentialRun(
    const StripingMap& striping) const
{
    std::uint64_t blocks = 0;
    std::uint64_t runs = 0;
    for (const FileLayout& f : files_) {
        const std::uint64_t n = f.blocks();
        if (n == 0)
            continue;
        blocks += n;
        ++runs;     // A file always starts a run.
        PhysicalLoc prev = striping.toPhysical(f.blockAt(0));
        for (std::uint64_t i = 1; i < n; ++i) {
            const PhysicalLoc loc =
                striping.toPhysical(f.blockAt(i));
            if (!(loc.disk == prev.disk &&
                  loc.block == prev.block + 1)) {
                ++runs;
            }
            prev = loc;
        }
    }
    return runs == 0
        ? 0.0
        : static_cast<double>(blocks) / static_cast<double>(runs);
}

} // namespace dtsim
