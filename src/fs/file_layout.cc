#include "fs/file_layout.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

void
FileLayout::finalize()
{
    extentEnds.resize(extents.size());
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < extents.size(); ++i) {
        n += extents[i].count;
        extentEnds[i] = n;
    }
    blockCount = n;
}

ArrayBlock
FileLayout::blockAt(std::uint64_t idx) const
{
    if (extentEnds.size() == extents.size()) {
        const auto it = std::upper_bound(extentEnds.begin(),
                                         extentEnds.end(), idx);
        if (it == extentEnds.end())
            panic("FileLayout: block index out of range");
        const std::size_t e =
            static_cast<std::size_t>(it - extentEnds.begin());
        const std::uint64_t base = e == 0 ? 0 : extentEnds[e - 1];
        return extents[e].start + (idx - base);
    }
    for (const FileExtent& e : extents) {
        if (idx < e.count)
            return e.start + idx;
        idx -= e.count;
    }
    panic("FileLayout: block index out of range");
}

std::uint64_t
FileLayout::contiguousRun(std::uint64_t idx,
                          std::uint64_t max_count) const
{
    if (max_count == 0)
        return 0;
    if (extentEnds.size() != extents.size()) {
        // No index built: fall back to the block-by-block probe.
        const ArrayBlock lb = blockAt(idx);
        std::uint64_t run = 1;
        while (run < max_count && blockAt(idx + run) == lb + run)
            ++run;
        return run;
    }
    const auto it = std::upper_bound(extentEnds.begin(),
                                     extentEnds.end(), idx);
    if (it == extentEnds.end())
        panic("FileLayout: block index out of range");
    std::size_t e = static_cast<std::size_t>(it - extentEnds.begin());
    std::uint64_t run = extentEnds[e] - idx;
    // Merge extents that happen to abut physically (gap of zero).
    while (run < max_count && e + 1 < extents.size() &&
           extents[e + 1].start == extents[e].start + extents[e].count) {
        ++e;
        run += extents[e].count;
    }
    return std::min(run, max_count);
}

FileSystemImage::FileSystemImage(
    const std::vector<std::uint64_t>& file_sizes_bytes,
    const LayoutParams& params, std::uint64_t total_blocks)
    : params_(params)
{
    Rng rng(params.seed);
    files_.reserve(file_sizes_bytes.size());

    for (std::uint64_t size : file_sizes_bytes) {
        FileLayout f;
        f.sizeBytes = size;
        const std::uint64_t nblocks = size == 0
            ? 1
            : (size + params.blockSize - 1) / params.blockSize;

        FileExtent cur{nextFree_, 0};
        for (std::uint64_t i = 0; i < nblocks; ++i) {
            if (i > 0 && rng.chance(params.fragmentation)) {
                // Break contiguity: leave a hole and start a new
                // extent.
                f.extents.push_back(cur);
                nextFree_ += params.gapBlocks;
                cur = FileExtent{nextFree_, 0};
            }
            ++cur.count;
            ++nextFree_;
        }
        f.extents.push_back(cur);
        f.finalize();
        dataBlocks_ += nblocks;
        files_.push_back(std::move(f));
    }

    if (nextFree_ > total_blocks)
        fatal("FileSystemImage: files (%llu blocks) exceed capacity "
              "(%llu blocks)",
              static_cast<unsigned long long>(nextFree_),
              static_cast<unsigned long long>(total_blocks));
}

std::vector<LayoutBitmap>
FileSystemImage::buildBitmaps(const StripingMap& striping) const
{
    const std::uint64_t per_disk =
        striping.totalBlocks() / striping.disks();
    std::vector<LayoutBitmap> maps;
    maps.reserve(striping.disks());
    for (unsigned d = 0; d < striping.disks(); ++d)
        maps.emplace_back(per_disk);

    for (const FileLayout& f : files_) {
        PhysicalLoc prev{};
        std::uint64_t i = 0;
        for (const FileExtent& e : f.extents) {
            for (std::uint64_t off = 0; off < e.count; ++off, ++i) {
                const PhysicalLoc loc =
                    striping.toPhysical(e.start + off);
                if (i > 0 && loc.disk == prev.disk &&
                    loc.block == prev.block + 1) {
                    maps[loc.disk].set(loc.block, true);
                }
                prev = loc;
            }
        }
    }
    return maps;
}

double
FileSystemImage::averageSequentialRun(
    const StripingMap& striping) const
{
    std::uint64_t blocks = 0;
    std::uint64_t runs = 0;
    for (const FileLayout& f : files_) {
        const std::uint64_t n = f.blocks();
        if (n == 0)
            continue;
        blocks += n;
        ++runs;     // A file always starts a run.
        PhysicalLoc prev{};
        std::uint64_t i = 0;
        for (const FileExtent& e : f.extents) {
            for (std::uint64_t off = 0; off < e.count; ++off, ++i) {
                const PhysicalLoc loc =
                    striping.toPhysical(e.start + off);
                if (i > 0 && !(loc.disk == prev.disk &&
                               loc.block == prev.block + 1)) {
                    ++runs;
                }
                prev = loc;
            }
        }
    }
    return runs == 0
        ? 0.0
        : static_cast<double>(blocks) / static_cast<double>(runs);
}

} // namespace dtsim
