#include "fs/prefetcher.hh"

#include <algorithm>

namespace dtsim {

Prefetcher::Prefetcher(PrefetchMode mode, std::uint32_t max_blocks)
    : mode_(mode), maxBlocks_(max_blocks)
{
}

std::uint64_t
Prefetcher::plan(std::uint32_t file, std::uint64_t start,
                 std::uint64_t count, std::uint64_t file_blocks)
{
    const std::uint64_t end = start + count;
    const std::uint64_t left = end < file_blocks ? file_blocks - end : 0;

    switch (mode_) {
      case PrefetchMode::None:
        return 0;
      case PrefetchMode::Perfect:
        return left;
      case PrefetchMode::Sequential:
        break;
    }

    FileState& st = *state_.insert(file, FileState{}).first;
    if (start == 0 || start == st.nextExpected) {
        // Sequential: grow the window (doubling from one block).
        st.window = st.window == 0
            ? 1
            : std::min<std::uint32_t>(maxBlocks_, st.window * 2);
    } else {
        // Random access: collapse.
        st.window = 0;
    }
    const std::uint64_t pf =
        std::min<std::uint64_t>(st.window, left);
    // The prefetched blocks are consumed before the next read
    // reaches the disk, so the sequential pattern continues there.
    st.nextExpected = end + pf;
    return pf;
}

} // namespace dtsim
