#include "fs/coalescer.hh"

namespace dtsim {

std::vector<std::uint64_t>
coalesceRun(std::uint64_t count, double coalesce_prob, Rng& rng)
{
    std::vector<std::uint64_t> sizes;
    if (count == 0)
        return sizes;
    std::uint64_t cur = 1;
    for (std::uint64_t b = 1; b < count; ++b) {
        if (rng.chance(coalesce_prob)) {
            ++cur;
        } else {
            sizes.push_back(cur);
            cur = 1;
        }
    }
    sizes.push_back(cur);
    return sizes;
}

} // namespace dtsim
