/**
 * @file
 * The host file system's on-disk layout model.
 *
 * Files are allocated in the array's logical block space by a
 * sequential extent allocator with a tunable fragmentation degree: at
 * each intra-file block boundary the next block is displaced with the
 * given probability, breaking physical contiguity (Section 4,
 * Figure 1). The image also produces the per-disk FOR layout bitmaps,
 * which is exactly the file-system information the paper's controller
 * consumes.
 */

#ifndef DTSIM_FS_FILE_LAYOUT_HH
#define DTSIM_FS_FILE_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "array/striping.hh"
#include "controller/layout_bitmap.hh"
#include "sim/rng.hh"

namespace dtsim {

/** Index of a file in the image. */
using FileId = std::uint32_t;

/** One physically contiguous piece of a file (logical blocks). */
struct FileExtent
{
    ArrayBlock start;
    std::uint64_t count;
};

/** A file's size and placement. */
struct FileLayout
{
    std::uint64_t sizeBytes = 0;
    std::vector<FileExtent> extents;

    /**
     * Cumulative block count through each extent, maintained by
     * finalize(). Lets blocks() read the total and blockAt() binary
     * search instead of walking the extent list; both fall back to
     * the walk when the index is absent or stale.
     */
    std::vector<std::uint64_t> extentEnds;

    /** Total block count, cached by finalize() (0 until then). */
    std::uint64_t blockCount = 0;

    /** (Re)build extentEnds/blockCount after extents change. */
    void finalize();

    /** File length in blocks (hot: once per generated access). */
    std::uint64_t
    blocks() const
    {
        if (extentEnds.size() == extents.size())
            return blockCount;
        std::uint64_t n = 0;
        for (const FileExtent& e : extents)
            n += e.count;
        return n;
    }

    /** Logical array block holding file block `idx`. */
    ArrayBlock blockAt(std::uint64_t idx) const;

    /**
     * Length of the longest physically contiguous run of file blocks
     * starting at `idx`, capped at `max_count`. Equivalent to probing
     * blockAt(idx + k) == blockAt(idx) + k block by block (adjacent
     * extents that happen to abut are merged), but O(extents spanned).
     */
    std::uint64_t contiguousRun(std::uint64_t idx,
                                std::uint64_t max_count) const;
};

/** Parameters of an image build. */
struct LayoutParams
{
    std::uint32_t blockSize = 4096;

    /**
     * Probability that an intra-file block boundary breaks physical
     * contiguity (0 = perfectly sequential layout).
     */
    double fragmentation = 0.0;

    /** Blocks skipped at each break (holes stay unused). */
    std::uint64_t gapBlocks = 1;

    std::uint64_t seed = 42;
};

/**
 * The set of files laid out on the array.
 */
class FileSystemImage
{
  public:
    /**
     * Allocate the given files.
     *
     * @param file_sizes_bytes Size of each file (rounded up to
     *        blocks; zero-byte files occupy one block).
     * @param params Allocator knobs.
     * @param total_blocks Logical capacity; allocation past it fails.
     */
    FileSystemImage(const std::vector<std::uint64_t>& file_sizes_bytes,
                    const LayoutParams& params,
                    std::uint64_t total_blocks);

    std::size_t fileCount() const { return files_.size(); }
    const FileLayout& file(FileId f) const { return files_.at(f); }
    std::uint32_t blockSize() const { return params_.blockSize; }

    /** Blocks consumed including fragmentation holes. */
    std::uint64_t allocatedBlocks() const { return nextFree_; }

    /** Blocks actually holding file data. */
    std::uint64_t dataBlocks() const { return dataBlocks_; }

    /**
     * Build the per-disk FOR bitmaps for a striping layout: bit b of
     * disk d is 1 iff local block b on d holds the file block that
     * logically continues the file block held by local block b-1.
     */
    std::vector<LayoutBitmap>
    buildBitmaps(const StripingMap& striping) const;

    /**
     * Mean physical run length (in blocks) across all files under the
     * given striping: the "average sequential read" of Figure 1. A run
     * is a maximal sequence of file blocks that are physically
     * consecutive on one disk.
     */
    double averageSequentialRun(const StripingMap& striping) const;

  private:
    LayoutParams params_;
    std::vector<FileLayout> files_;
    std::uint64_t nextFree_ = 0;
    std::uint64_t dataBlocks_ = 0;
};

} // namespace dtsim

#endif // DTSIM_FS_FILE_LAYOUT_HH
