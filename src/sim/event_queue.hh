/**
 * @file
 * The discrete-event simulation kernel.
 *
 * DTSim is an event-driven simulator in the style of the MINT-based
 * simulator used by the paper: every modeled component schedules
 * callbacks on a single global-order event queue. Events at the same
 * tick fire in scheduling order, which keeps runs deterministic.
 */

#ifndef DTSIM_SIM_EVENT_QUEUE_HH
#define DTSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/ticks.hh"

namespace dtsim {

/**
 * A single-threaded discrete-event queue.
 *
 * Components schedule std::function callbacks at absolute or relative
 * ticks; run() pops events in (tick, insertion-order) order until the
 * queue drains or a limit is reached.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Opaque handle identifying a scheduled event (for cancellation). */
    using EventId = std::uint64_t;

    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute fire time; must be >= now().
     * @param cb Callback to invoke.
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule a callback `delay` ticks from now. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return size_; }

    /** True when no events are pending. */
    bool empty() const { return size_ == 0; }

    /**
     * Run until the queue drains or `max_events` fire.
     *
     * @return Number of events fired.
     */
    std::uint64_t run(std::uint64_t max_events = ~std::uint64_t(0));

    /**
     * Run until simulated time would exceed `until` (events at exactly
     * `until` still fire). Time advances to `until` if the queue drains
     * earlier.
     *
     * @return Number of events fired.
     */
    std::uint64_t runUntil(Tick until);

    /** Fire exactly one event, if any. @return true if one fired. */
    bool step();

    /** Total events fired over the queue's lifetime. */
    std::uint64_t fired() const { return fired_; }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /**
     * Drop cancelled entries off the heap front.
     * @return true if a live event remains at the front.
     */
    bool skipCancelled();

    /** Pop and fire the front event. Requires a live front event. */
    void fireNext();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;
    std::unordered_set<EventId> cancelled_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::size_t size_ = 0;
    std::uint64_t fired_ = 0;
};

} // namespace dtsim

#endif // DTSIM_SIM_EVENT_QUEUE_HH
