/**
 * @file
 * The discrete-event simulation kernel.
 *
 * DTSim is an event-driven simulator in the style of the MINT-based
 * simulator used by the paper: every modeled component schedules
 * callbacks on a single global-order event queue. Events at the same
 * tick fire in scheduling order, which keeps runs deterministic.
 */

#ifndef DTSIM_SIM_EVENT_QUEUE_HH
#define DTSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/small_function.hh"
#include "sim/ticks.hh"

namespace dtsim {

/**
 * A single-threaded discrete-event queue.
 *
 * Components schedule std::function callbacks at absolute or relative
 * ticks; run() pops events in (tick, insertion-order) order until the
 * queue drains or a limit is reached.
 *
 * Internals (see DESIGN.md, "Event kernel"): scheduled callbacks live
 * in a pooled slot array that is reused across events, so steady-state
 * scheduling performs no per-event container allocation. The ready
 * order is kept in a 4-ary array heap of plain (tick, seq, slot)
 * nodes — callbacks are never moved during sift operations. An
 * EventId encodes (generation << 32) | slot; cancel() is an O(1)
 * tombstone flag validated against the slot's current generation, and
 * tombstoned nodes are dropped lazily when they reach the heap front.
 */
class EventQueue
{
  public:
    /**
     * Scheduled callback. The inline buffer is sized for the largest
     * hot capture (a completion lambda carrying its IoRequest), so
     * steady-state scheduling allocates nothing; larger captures
     * spill to the heap transparently.
     */
    using Callback = SmallFunction<void(), 192>;

    /**
     * Opaque handle identifying a scheduled event (for cancellation).
     * Encodes a pool slot plus a generation tag so a handle from a
     * fired or cancelled event can never alias a later event that
     * reuses the same slot.
     */
    using EventId = std::uint64_t;

    EventQueue() = default;

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute fire time; must be >= now().
     * @param cb Callback to invoke.
     * @return Handle usable with cancel().
     */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule a callback `delay` ticks from now. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Schedule a callback at an absolute tick, ahead of every normal
     * event at that tick. Front events fire in their own FIFO order
     * before any scheduleAt()/scheduleAfter() event with the same
     * `when`, regardless of scheduling order. Used for window-barrier
     * housekeeping (periodic snapshots, stream frames) that must
     * observe the state *before* the tick's simulation work runs —
     * the sharded kernel reaches the same pre-tick state at a window
     * barrier, so front events are the one placement where both
     * kernels read identical counters.
     */
    EventId scheduleAtFront(Tick when, Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled;
     *         false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return size_; }

    /** True when no events are pending. */
    bool empty() const { return size_ == 0; }

    /**
     * Run until the queue drains or `max_events` fire.
     *
     * @return Number of events fired.
     */
    std::uint64_t run(std::uint64_t max_events = ~std::uint64_t(0));

    /**
     * Run until simulated time would exceed `until` (events at exactly
     * `until` still fire). Time advances to `until` if the queue drains
     * earlier.
     *
     * @return Number of events fired.
     */
    std::uint64_t runUntil(Tick until);

    /** Fire exactly one event, if any. @return true if one fired. */
    bool step();

    /**
     * Fire events strictly before `bound` (events at exactly `bound`
     * stay pending). Unlike runUntil(), time is left at the last
     * fired event, not advanced to the bound — the sharded kernel
     * uses the per-queue position to compute the next safe window.
     *
     * @return Number of events fired.
     */
    std::uint64_t runBefore(Tick bound);

    /**
     * Tick of the next live event, or kTickMax when the queue is
     * empty. Lazily drops tombstoned (cancelled) front entries, hence
     * non-const.
     */
    Tick nextTime();

    /**
     * Advance the clock to `t` without firing anything (no-op when
     * `t` <= now()). Only valid when no pending event is earlier
     * than `t`; used to align shard clocks at synchronization points.
     */
    void advanceTo(Tick t);

    /** Total events fired over the queue's lifetime. */
    std::uint64_t fired() const { return fired_; }

  private:
    /** Pooled storage for one scheduled callback. */
    struct Slot
    {
        Callback cb;

        /** Bumped on release; stale EventIds fail the tag check. */
        std::uint32_t gen = 0;

        bool live = false;
        bool cancelled = false;
    };

    /** One heap node: plain data, cheap to move during sifts. */
    struct Node
    {
        Tick when;

        /**
         * Tie-break at equal `when`. Normal events carry bit 63 set
         * over a global schedule counter; front events carry a
         * separate low counter with bit 63 clear, so every front
         * event sorts before every normal event at the same tick
         * while each class stays FIFO within itself.
         */
        std::uint64_t seq;

        std::uint32_t slot;
    };

    /** Seq-space tag separating normal events from front events. */
    static constexpr std::uint64_t kNormalSeqBit = 1ull << 63;

    static bool
    before(const Node& a, const Node& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    EventId scheduleImpl(Tick when, Callback&& cb, bool front);

    std::uint32_t allocSlot(Callback&& cb);
    void releaseSlot(std::uint32_t index);

    void heapPush(Node node);
    void heapPopFront();

    /**
     * Drop cancelled entries off the heap front.
     * @return true if a live event remains at the front.
     */
    bool skipCancelled();

    /** Pop and fire the front event. Requires a live front event. */
    void fireNext();

    /** 4-ary min-heap ordered by (when, seq). */
    std::vector<Node> heap_;

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t nextFrontSeq_ = 1;
    std::size_t size_ = 0;
    std::uint64_t fired_ = 0;
};

} // namespace dtsim

#endif // DTSIM_SIM_EVENT_QUEUE_HH
