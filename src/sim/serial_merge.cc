#include "sim/serial_merge.hh"

#include <algorithm>
#include <cassert>

namespace dtsim {

void
SerialMergeLink::emitToHost(unsigned s, Tick when, HostFn fn)
{
    // Emissions always carry the emitting event's own tick; one
    // flusher per tick drains them all (nothing can join the current
    // tick after the flusher, see the file comment).
    assert(when == q_.now());
    (void)when;
    if (!flushScheduled_) {
        flushScheduled_ = true;
        q_.scheduleAt(q_.now(), [this]() { flush(); });
    }
    pending_.push_back(Pending{s, std::move(fn)});
}

void
SerialMergeLink::flush()
{
    flushScheduled_ = false;
    batch_.clear();
    batch_.swap(pending_);
    // Canonical cross-disk order at a tick: lowest merge rank first,
    // FIFO within a disk -- exactly ShardedKernel::runHostMerged().
    std::stable_sort(batch_.begin(), batch_.end(),
                     [this](const Pending& a, const Pending& b) {
                         return mergeRank(a.disk) < mergeRank(b.disk);
                     });
    for (Pending& p : batch_)
        p.fn();
}

} // namespace dtsim
