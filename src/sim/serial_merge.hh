/**
 * @file
 * Serial implementation of the ShardLink messaging interface.
 *
 * On a single EventQueue, host-side actions produced by disk-side
 * events (bus reservations, order-sensitive stat samples) would
 * naturally execute in global event insertion order. That order is an
 * accident of scheduling history and cannot be reproduced by the
 * sharded kernel, whose per-disk timelines never observe it. The
 * serial link therefore defers every emission to the end of its tick
 * and replays the batch in the kernel's canonical (disk, FIFO) order,
 * making serial runs byte-identical to sharded ones.
 *
 * The deferral is safe because every modeled delay is positive: no
 * event can be scheduled at the current tick during the current tick,
 * so a flusher event scheduled at `now` is guaranteed to run after
 * every other event of that tick, and emissions themselves only
 * schedule strictly-future work (a bus grant always has a positive
 * transfer time). Deferring an emission past same-tick disk-side work
 * is equally safe: emissions touch only host-owned state (the bus,
 * host distributions), disk-side events only disk-owned state.
 */

#ifndef DTSIM_SIM_SERIAL_MERGE_HH
#define DTSIM_SIM_SERIAL_MERGE_HH

#include <vector>

#include "sim/shard_link.hh"

namespace dtsim {

class SerialMergeLink final : public ShardLink
{
  public:
    explicit SerialMergeLink(EventQueue& q) : q_(q) {}

    Tick hostNow() const override { return q_.now(); }

    EventQueue& hostQueue() override { return q_; }

    bool quiesced() const override { return false; }

    /** Arrivals schedule directly: one queue, same (when, seq). */
    void
    postToShard(unsigned, Tick when, EventQueue::Callback fn) override
    {
        q_.scheduleAt(when, std::move(fn));
    }

    void emitToHost(unsigned s, Tick when, HostFn fn) override;

  private:
    void flush();

    struct Pending
    {
        unsigned disk;
        HostFn fn;
    };

    EventQueue& q_;

    /** Emissions of the current tick, in emission order. */
    std::vector<Pending> pending_;

    /** Reused flush scratch (swap keeps pending_ reentrant). */
    std::vector<Pending> batch_;

    bool flushScheduled_ = false;
};

} // namespace dtsim

#endif // DTSIM_SIM_SERIAL_MERGE_HH
