/**
 * @file
 * Cross-timeline messaging interface between host-side code (the
 * array fan-out, replay engine, SCSI bus) and per-disk timelines.
 *
 * Two implementations exist:
 *  - ShardedKernel (sim/sharded_kernel.hh): true parallel execution,
 *    one EventQueue per disk advancing under a conservative lookahead
 *    window; messages are double-buffered at round boundaries.
 *  - SerialMergeLink (sim/serial_merge.hh): everything on one
 *    EventQueue, but host-side actions produced by disk-side events
 *    at the same tick are re-ordered into the kernel's canonical
 *    (tick, disk, FIFO) merge order.
 *
 * Both orders are identical by construction: same-tick cross-disk
 * actions execute in canonical merge-rank order (the identity — the
 * physical disk index — unless the array installs another), preserving
 * each disk's FIFO order, with plain host events winning ties. That
 * shared discipline is what makes sharded runs byte-identical to
 * serial ones -- the serial kernel does not get to use its
 * (thread-unreproducible) global event insertion order as a tie-break
 * across disks. Mirrored arrays install a (logical disk, replica)
 * rank so replica pairs merge in logical order regardless of how the
 * replicas are numbered physically.
 */

#ifndef DTSIM_SIM_SHARD_LINK_HH
#define DTSIM_SIM_SHARD_LINK_HH

#include <vector>

#include "sim/event_queue.hh"
#include "sim/small_function.hh"
#include "sim/ticks.hh"

namespace dtsim {

class ShardLink
{
  public:
    /** Host-side action produced by a shard (sized like Callback). */
    using HostFn = SmallFunction<void(), 192>;

    virtual ~ShardLink() = default;

    /**
     * Install the canonical same-tick merge order: ranks[s] is disk
     * timeline s's position in cross-disk tie-breaks (lower runs
     * first). Defaults to the identity. Must be set before the run
     * starts; both link implementations honour it identically.
     */
    void setMergeRanks(std::vector<unsigned> ranks)
    {
        mergeRanks_ = std::move(ranks);
    }

    /** Current host time (valid from host context). */
    virtual Tick hostNow() const = 0;

    /** The coordinator timeline completions are scheduled on. */
    virtual EventQueue& hostQueue() = 0;

    /**
     * True once the run has drained and cross-timeline messaging has
     * collapsed to direct execution (see ShardedKernel::quiesced()).
     * Always false for the serial link.
     */
    virtual bool quiesced() const = 0;

    /**
     * Post an arrival onto disk timeline `s` at absolute tick `when`.
     * Host context only; `when` must respect the lookahead contract.
     */
    virtual void postToShard(unsigned s, Tick when,
                             EventQueue::Callback fn) = 0;

    /**
     * Emit a host-side action from disk timeline `s` at tick `when`
     * (the timeline's current time). Executed merged with host events
     * in canonical (tick, disk, FIFO) order, host events first.
     */
    virtual void emitToHost(unsigned s, Tick when, HostFn fn) = 0;

  protected:
    /** Merge rank of disk timeline `s` (identity when unset). */
    unsigned
    mergeRank(unsigned s) const
    {
        return s < mergeRanks_.size() ? mergeRanks_[s] : s;
    }

  private:
    std::vector<unsigned> mergeRanks_;
};

} // namespace dtsim

#endif // DTSIM_SIM_SHARD_LINK_HH
