/**
 * @file
 * Deterministic pseudo-random number generation and the samplers used
 * throughout DTSim.
 *
 * The generator is a 64-bit SplitMix-seeded xoshiro256** instance; it is
 * small, fast, and fully reproducible from a single 64-bit seed, which
 * keeps every experiment in the paper reproduction deterministic.
 */

#ifndef DTSIM_SIM_RNG_HH
#define DTSIM_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace dtsim {

/**
 * Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; the same seed replays the stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /**
     * Log-normally distributed value parameterized by the desired
     * mean and sigma (shape) of the resulting distribution.
     */
    double logNormalMean(double mean, double sigma);

    /** Standard normal deviate (Box-Muller). */
    double gaussian();

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Generalized (Bradford-)Zipf sampler over ranks 1..n with exponent
 * alpha: P(rank i) proportional to 1 / i^alpha.
 *
 * alpha = 0 degenerates to the uniform distribution; alpha = 1 is the
 * classic Zipf law. A full CDF table is precomputed so sampling is a
 * binary search (O(log n)) and exact.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items (ranks 1..n); must be >= 1.
     * @param alpha Zipf exponent, >= 0.
     */
    ZipfSampler(std::size_t n, double alpha);

    /** Sample a 0-based item index in [0, n). */
    std::size_t sample(Rng& rng) const;

    /** Probability mass of 0-based item i. */
    double pmf(std::size_t i) const;

    /** Accumulated probability of the top-k most popular items. */
    double topMass(std::size_t k) const;

    std::size_t size() const { return cdf_.size(); }
    double alpha() const { return alpha_; }

  private:
    std::vector<double> cdf_;
    double alpha_;
};

} // namespace dtsim

#endif // DTSIM_SIM_RNG_HH
