#include "sim/rng.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dtsim {

namespace {

std::uint64_t
splitMix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitMix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias: reject the lowest
    // (2^64 mod n) values so the remaining range is a multiple of n.
    const std::uint64_t threshold = (std::uint64_t(0) - n) % n;
    std::uint64_t v;
    do {
        v = next64();
    } while (v < threshold);
    return v % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    assert(mean > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::logNormalMean(double mean, double sigma)
{
    assert(mean > 0.0);
    // Choose mu so that E[X] = exp(mu + sigma^2/2) equals `mean`.
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(mu + sigma * gaussian());
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
    : alpha_(alpha)
{
    if (n == 0)
        throw std::invalid_argument("ZipfSampler: n must be >= 1");
    if (alpha < 0.0)
        throw std::invalid_argument("ZipfSampler: alpha must be >= 0");

    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = acc;
    }
    const double total = acc;
    for (auto& c : cdf_)
        c /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng& rng) const
{
    const double u = rng.uniform();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

double
ZipfSampler::pmf(std::size_t i) const
{
    assert(i < cdf_.size());
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

double
ZipfSampler::topMass(std::size_t k) const
{
    if (k == 0)
        return 0.0;
    if (k >= cdf_.size())
        return 1.0;
    return cdf_[k - 1];
}

} // namespace dtsim
