/**
 * @file
 * Open-addressing hash table for the model hot paths.
 *
 * The per-access model containers (block cache, buffer cache, HDC
 * store, prefetcher) used to hash-probe through std::unordered_map,
 * which costs a heap-allocated node per entry and a pointer chase per
 * probe. FlatTable stores keys and values in flat arrays with linear
 * probing over a power-of-two slot count, so a lookup is one multiply
 * (Fibonacci hashing) and a short contiguous scan, and steady-state
 * operation allocates nothing.
 *
 * Deletion uses backward-shift compaction instead of tombstones, so
 * probe distances stay short no matter how many erase/insert cycles a
 * workload performs (caches churn entries continuously). Iteration
 * order is unspecified, exactly like unordered_map; callers that need
 * an order sort (e.g. HdcStore::flush -> DiskController sorts the
 * dirty set before building media jobs).
 */

#ifndef DTSIM_SIM_FLAT_TABLE_HH
#define DTSIM_SIM_FLAT_TABLE_HH

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace dtsim {

/**
 * Open-addressing map from a 64-bit key to a small value type.
 *
 * @tparam V Mapped type; moved on rehash and backward shift, so keep
 *         it cheap (the model containers store slot indices or flag
 *         bytes).
 */
template <typename V>
class FlatTable
{
  public:
    /** @param expected Entries to size the table for up front. */
    explicit FlatTable(std::size_t expected = 0)
    {
        rehash(slotsFor(expected));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Grow the slot array so `n` entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        const std::size_t want = slotsFor(n);
        if (want > slots())
            rehash(want);
    }

    /** Pointer to the value mapped to `key`, or nullptr. */
    V*
    find(std::uint64_t key)
    {
        const std::size_t i = probe(key);
        return i != kNone ? &vals_[i] : nullptr;
    }

    const V*
    find(std::uint64_t key) const
    {
        const std::size_t i = probe(key);
        return i != kNone ? &vals_[i] : nullptr;
    }

    bool contains(std::uint64_t key) const { return probe(key) != kNone; }

    /**
     * Insert `key` -> `val` if absent.
     * @return The mapped value slot and whether it was inserted.
     */
    std::pair<V*, bool>
    insert(std::uint64_t key, V val)
    {
        if ((size_ + 1) * 8 > slots() * 7)
            rehash(slots() * 2);
        std::size_t i = home(key);
        while (used_[i]) {
            if (keys_[i] == key)
                return {&vals_[i], false};
            i = next(i);
        }
        used_[i] = 1;
        keys_[i] = key;
        vals_[i] = std::move(val);
        ++size_;
        return {&vals_[i], true};
    }

    /** @return true if `key` was present and removed. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = probe(key);
        if (i == kNone)
            return false;
        // Backward-shift: pull displaced entries over the hole so the
        // probe sequences they belong to stay contiguous.
        std::size_t j = i;
        for (;;) {
            j = next(j);
            if (!used_[j])
                break;
            const std::size_t h = home(keys_[j]);
            // The entry at j may fill the hole at i only if its home
            // slot lies cyclically at or before i.
            if (((j - h) & mask_) >= ((j - i) & mask_)) {
                keys_[i] = keys_[j];
                vals_[i] = std::move(vals_[j]);
                i = j;
            }
        }
        used_[i] = 0;
        --size_;
        return true;
    }

    /** Drop every entry (keeps the slot array). */
    void
    clear()
    {
        std::fill(used_.begin(), used_.end(), std::uint8_t{0});
        size_ = 0;
    }

    /** Visit every entry as fn(key, value&); order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn&& fn)
    {
        for (std::size_t i = 0; i < used_.size(); ++i)
            if (used_[i])
                fn(keys_[i], vals_[i]);
    }

    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        for (std::size_t i = 0; i < used_.size(); ++i)
            if (used_[i])
                fn(keys_[i], vals_[i]);
    }

  private:
    static constexpr std::size_t kNone = ~std::size_t{0};
    static constexpr std::size_t kMinSlots = 16;

    std::size_t slots() const { return mask_ + 1; }

    /** Smallest power-of-two slot count keeping load below 7/8. */
    static std::size_t
    slotsFor(std::size_t entries)
    {
        std::size_t n = kMinSlots;
        while (entries * 8 > n * 7)
            n *= 2;
        return n;
    }

    std::size_t
    home(std::uint64_t key) const
    {
        // Fibonacci hashing: spreads consecutive block numbers (the
        // common key pattern) across the table.
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ULL) >> shift_) &
               mask_;
    }

    std::size_t next(std::size_t i) const { return (i + 1) & mask_; }

    /** Slot holding `key`, or kNone. */
    std::size_t
    probe(std::uint64_t key) const
    {
        std::size_t i = home(key);
        while (used_[i]) {
            if (keys_[i] == key)
                return i;
            i = next(i);
        }
        return kNone;
    }

    void
    rehash(std::size_t new_slots)
    {
        assert((new_slots & (new_slots - 1)) == 0);
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        std::vector<std::uint8_t> old_used = std::move(used_);

        keys_.assign(new_slots, 0);
        vals_.assign(new_slots, V{});
        used_.assign(new_slots, 0);
        mask_ = new_slots - 1;
        shift_ = 64;
        for (std::size_t n = new_slots; n > 1; n /= 2)
            --shift_;

        for (std::size_t i = 0; i < old_used.size(); ++i) {
            if (!old_used[i])
                continue;
            std::size_t j = home(old_keys[i]);
            while (used_[j])
                j = next(j);
            used_[j] = 1;
            keys_[j] = old_keys[i];
            vals_[j] = std::move(old_vals[i]);
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> vals_;
    std::vector<std::uint8_t> used_;
    std::size_t mask_ = 0;
    unsigned shift_ = 64;
    std::size_t size_ = 0;
};

} // namespace dtsim

#endif // DTSIM_SIM_FLAT_TABLE_HH
