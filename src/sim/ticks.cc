#include "sim/ticks.hh"

#include <cstdio>

namespace dtsim {

std::string
formatTicks(Tick t)
{
    char buf[64];
    if (t >= kSec) {
        std::snprintf(buf, sizeof(buf), "%.3f s", toSeconds(t));
    } else if (t >= kMsec) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", toMillis(t));
    } else if (t >= kUsec) {
        std::snprintf(buf, sizeof(buf), "%.3f us", toMicros(t));
    } else {
        std::snprintf(buf, sizeof(buf), "%llu ns",
                      static_cast<unsigned long long>(t));
    }
    return buf;
}

} // namespace dtsim
