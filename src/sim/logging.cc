#include "sim/logging.hh"

#include <cctype>
#include <vector>

namespace dtsim {

namespace {

LogLevel g_level = LogLevel::Warn;

std::string
vstrfmt(const char* fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

bool
parseLogLevel(const char* name, LogLevel& out)
{
    if (!name)
        return false;
    std::string s;
    for (const char* p = name; *p; ++p)
        s += static_cast<char>(std::tolower(
            static_cast<unsigned char>(*p)));
    if (s == "quiet")
        out = LogLevel::Quiet;
    else if (s == "warn")
        out = LogLevel::Warn;
    else if (s == "inform" || s == "info")
        out = LogLevel::Inform;
    else if (s == "debug")
        out = LogLevel::Debug;
    else
        return false;
    return true;
}

void
initLogLevelFromEnv()
{
    const char* env = std::getenv("DTSIM_LOG");
    if (!env)
        return;
    LogLevel level;
    if (parseLogLevel(env, level))
        g_level = level;
    else
        warn("DTSIM_LOG: unknown level '%s' (expected quiet, warn,"
             " inform, or debug)", env);
}

std::string
strfmt(const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
panic(const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
warn(const char* fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char* fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

} // namespace dtsim
