/**
 * @file
 * Simulated-time definitions.
 *
 * All simulated time in DTSim is expressed in integer ticks, where one
 * tick is one nanosecond. Using integers keeps event ordering exact and
 * the simulation deterministic across platforms.
 */

#ifndef DTSIM_SIM_TICKS_HH
#define DTSIM_SIM_TICKS_HH

#include <cstdint>
#include <string>

namespace dtsim {

/** Simulated time, in nanoseconds. */
using Tick = std::uint64_t;

/** One nanosecond. */
constexpr Tick kNsec = 1;
/** One microsecond. */
constexpr Tick kUsec = 1000 * kNsec;
/** One millisecond. */
constexpr Tick kMsec = 1000 * kUsec;
/** One second. */
constexpr Tick kSec = 1000 * kMsec;

/** The largest representable tick; used as "never". */
constexpr Tick kTickMax = ~Tick(0);

/** Convert a tick count to (floating-point) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert a tick count to (floating-point) milliseconds. */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMsec);
}

/** Convert a tick count to (floating-point) microseconds. */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kUsec);
}

/**
 * Convert floating-point seconds to ticks (rounded to nearest).
 * Negative inputs clamp to zero.
 */
constexpr Tick
fromSeconds(double s)
{
    if (s <= 0.0)
        return 0;
    return static_cast<Tick>(s * static_cast<double>(kSec) + 0.5);
}

/**
 * Convert floating-point milliseconds to ticks (rounded to nearest).
 * Negative inputs clamp to zero.
 */
constexpr Tick
fromMillis(double ms)
{
    if (ms <= 0.0)
        return 0;
    return static_cast<Tick>(ms * static_cast<double>(kMsec) + 0.5);
}

/**
 * Convert floating-point microseconds to ticks (rounded to nearest).
 * Negative inputs clamp to zero.
 */
constexpr Tick
fromMicros(double us)
{
    if (us <= 0.0)
        return 0;
    return static_cast<Tick>(us * static_cast<double>(kUsec) + 0.5);
}

/** Render a tick count as a human-readable string, e.g. "3.400 ms". */
std::string formatTicks(Tick t);

} // namespace dtsim

#endif // DTSIM_SIM_TICKS_HH
