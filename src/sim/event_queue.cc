#include "sim/event_queue.hh"

#include <cassert>
#include <stdexcept>
#include <utility>

#ifdef DTSIM_DEBUG_PAST_SCHEDULE
#include <cstdio>
#include <execinfo.h>
#endif

namespace dtsim {

namespace {

/** 4-ary heap index arithmetic. */
constexpr std::size_t kHeapArity = 4;

constexpr std::size_t
heapParent(std::size_t i)
{
    return (i - 1) / kHeapArity;
}

constexpr std::size_t
heapFirstChild(std::size_t i)
{
    return kHeapArity * i + 1;
}

constexpr std::uint64_t
makeEventId(std::uint32_t gen, std::uint32_t slot)
{
    return (static_cast<std::uint64_t>(gen) << 32) | slot;
}

} // namespace

std::uint32_t
EventQueue::allocSlot(Callback&& cb)
{
    std::uint32_t index;
    if (!freeSlots_.empty()) {
        index = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        index = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot& s = slots_[index];
    s.cb = std::move(cb);
    s.live = true;
    s.cancelled = false;
    return index;
}

void
EventQueue::releaseSlot(std::uint32_t index)
{
    Slot& s = slots_[index];
    s.cb = nullptr;
    s.live = false;
    s.cancelled = false;
    ++s.gen;
    freeSlots_.push_back(index);
}

void
EventQueue::heapPush(Node node)
{
    heap_.push_back(node);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = heapParent(i);
        if (!before(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::heapPopFront()
{
    assert(!heap_.empty());
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.empty())
        return;

    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = heapFirstChild(i);
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kHeapArity, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(heap_[c], heap_[best]))
                best = c;
        }
        if (!before(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

EventQueue::EventId
EventQueue::scheduleImpl(Tick when, Callback&& cb, bool front)
{
    if (when < now_) {
#ifdef DTSIM_DEBUG_PAST_SCHEDULE
        std::fprintf(stderr,
                     "PAST SCHEDULE: when=%llu now=%llu queue=%p\n",
                     (unsigned long long)when, (unsigned long long)now_,
                     (void*)this);
        void* frames[32];
        const int n = backtrace(frames, 32);
        backtrace_symbols_fd(frames, n, 2);
#endif
        throw std::logic_error("EventQueue: scheduling in the past");
    }
    const std::uint32_t slot = allocSlot(std::move(cb));
    const std::uint64_t seq =
        front ? nextFrontSeq_++ : (kNormalSeqBit | nextSeq_++);
    heapPush(Node{when, seq, slot});
    ++size_;
    return makeEventId(slots_[slot].gen, slot);
}

EventQueue::EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    return scheduleImpl(when, std::move(cb), false);
}

EventQueue::EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return scheduleImpl(now_ + delay, std::move(cb), false);
}

EventQueue::EventId
EventQueue::scheduleAtFront(Tick when, Callback cb)
{
    return scheduleImpl(when, std::move(cb), true);
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size())
        return false;
    Slot& s = slots_[slot];
    if (s.gen != gen || !s.live || s.cancelled)
        return false;
    s.cancelled = true;
    // Drop the callback now so captured resources are released at
    // cancel time, not when the tombstone reaches the heap front.
    s.cb = nullptr;
    --size_;
    return true;
}

bool
EventQueue::skipCancelled()
{
    while (!heap_.empty()) {
        const std::uint32_t slot = heap_.front().slot;
        if (!slots_[slot].cancelled)
            return true;
        releaseSlot(slot);
        heapPopFront();
    }
    return false;
}

bool
EventQueue::step()
{
    if (!skipCancelled())
        return false;
    fireNext();
    return true;
}

void
EventQueue::fireNext()
{
    const Node front = heap_.front();
    assert(front.when >= now_);
    now_ = front.when;
    Callback cb = std::move(slots_[front.slot].cb);
    releaseSlot(front.slot);
    heapPopFront();
    --size_;
    ++fired_;
    cb();
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runBefore(Tick bound)
{
    std::uint64_t n = 0;
    while (skipCancelled() && heap_.front().when < bound) {
        fireNext();
        ++n;
    }
    return n;
}

Tick
EventQueue::nextTime()
{
    return skipCancelled() ? heap_.front().when : kTickMax;
}

void
EventQueue::advanceTo(Tick t)
{
    if (t <= now_)
        return;
    assert(!skipCancelled() || heap_.front().when >= t);
    now_ = t;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (skipCancelled() && heap_.front().when <= until) {
        fireNext();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

} // namespace dtsim
