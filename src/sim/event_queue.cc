#include "sim/event_queue.hh"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace dtsim {

EventQueue::EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling in the past");
    const EventId id = nextId_++;
    heap_.push(Entry{when, id, std::move(cb)});
    pending_.insert(id);
    ++size_;
    return id;
}

EventQueue::EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return scheduleAt(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return false;
    pending_.erase(it);
    cancelled_.insert(id);
    --size_;
    return true;
}

bool
EventQueue::skipCancelled()
{
    while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
        cancelled_.erase(heap_.top().id);
        heap_.pop();
    }
    return !heap_.empty();
}

bool
EventQueue::step()
{
    if (!skipCancelled())
        return false;
    fireNext();
    return true;
}

void
EventQueue::fireNext()
{
    // const_cast is safe: the entry is popped immediately and the heap
    // ordering does not depend on the callback.
    Entry& top = const_cast<Entry&>(heap_.top());
    assert(top.when >= now_);
    now_ = top.when;
    Callback cb = std::move(top.cb);
    pending_.erase(top.id);
    heap_.pop();
    --size_;
    ++fired_;
    cb();
}

std::uint64_t
EventQueue::run(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t n = 0;
    while (skipCancelled() && heap_.top().when <= until) {
        fireNext();
        ++n;
    }
    if (now_ < until)
        now_ = until;
    return n;
}

} // namespace dtsim
