/**
 * @file
 * Minimal status/error reporting in the gem5 style.
 *
 * fatal() is for user errors (bad configuration); panic() is for
 * internal invariant violations. warn()/inform() report conditions
 * without stopping the simulation.
 */

#ifndef DTSIM_SIM_LOGGING_HH
#define DTSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dtsim {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Get/set the global log level (default Warn). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** printf-style formatting into a std::string. */
std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error and exit(1). Use for invalid
 * configurations and arguments, not for simulator bugs.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort(). Use only for
 * conditions that indicate a bug in DTSim itself.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dtsim

#endif // DTSIM_SIM_LOGGING_HH
