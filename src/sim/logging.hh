/**
 * @file
 * Minimal status/error reporting in the gem5 style.
 *
 * fatal() is for user errors (bad configuration); panic() is for
 * internal invariant violations. warn()/inform() report conditions
 * without stopping the simulation.
 */

#ifndef DTSIM_SIM_LOGGING_HH
#define DTSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dtsim {

/**
 * Verbosity levels for status messages. A message prints when the
 * global level is at or above the level of the emitting call:
 *
 * - Quiet: nothing but fatal()/panic(), which always print (and
 *   terminate). Use for batch sweeps whose stdout is parsed.
 * - Warn (default): warn() messages -- suspicious-but-survivable
 *   conditions such as a malformed trace line or an ignored option.
 * - Inform: adds inform() -- normal operating status (progress of a
 *   bench sweep, files written, configuration echoes).
 * - Debug: everything; reserved for verbose diagnostic output.
 *
 * All messages go to stderr so stdout stays machine-readable.
 */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Get/set the global log level (default Warn). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Parse a level name ("quiet", "warn", "inform"/"info", "debug",
 * case-insensitive). @return true and set `out` on success.
 */
bool parseLogLevel(const char* name, LogLevel& out);

/**
 * Initialize the global level from the DTSIM_LOG environment
 * variable, if set; unknown values produce a warn(). Called by the
 * CLI and bench front-ends at startup.
 */
void initLogLevelFromEnv();

/** printf-style formatting into a std::string. */
std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error and exit(1). Use for invalid
 * configurations and arguments, not for simulator bugs.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort(). Use only for
 * conditions that indicate a bug in DTSim itself.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dtsim

#endif // DTSIM_SIM_LOGGING_HH
