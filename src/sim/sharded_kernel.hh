/**
 * @file
 * Conservative parallel event kernel: per-shard EventQueues advancing
 * under a lookahead window, plus a coordinator timeline.
 *
 * The kernel implements synchronous-window conservative parallel DES
 * (CMB/YAWNS style). One "host" queue runs on the coordinator thread;
 * N shard queues are partitioned round-robin over worker threads.
 * Each round the coordinator computes a safe bound for every timeline
 * from the queues' next-event times and the configured lookahead,
 * releases the workers to run their shards up to the shard bound,
 * concurrently runs the host below the (tighter) host bound, and then
 * barriers before the next round.
 *
 * Cross-timeline traffic is message-passing only:
 *  - host -> shard "arrivals" (postToShard) buffer in a per-shard
 *    inbox and are delivered into the shard queue at the next round
 *    boundary. Safety: an arrival scheduled from a host event at tick
 *    t lands at >= t + lookahead, beyond any shard's current bound.
 *  - shard -> host "emissions" (emitToHost) buffer in a per-shard
 *    outbox, are staged at the round boundary, and are consumed by
 *    the coordinator merged with the host queue in deterministic
 *    (tick, shard, FIFO) order, host events winning ties. An emission
 *    produced during round R carries a tick at or beyond that round's
 *    host bound, so double-buffering it into round R+1 never reorders
 *    it with host work.
 *
 * Determinism: the merge order depends only on ticks, shard indices
 * and per-shard FIFO order — never on thread timing or worker count —
 * so a given configuration produces identical results for any number
 * of workers, and (when the modeled overheads respect the lookahead
 * contract, see DESIGN.md "Parallel simulation") identical results to
 * the serial kernel.
 */

#ifndef DTSIM_SIM_SHARDED_KERNEL_HH
#define DTSIM_SIM_SHARDED_KERNEL_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard_link.hh"
#include "sim/small_function.hh"
#include "sim/ticks.hh"

namespace dtsim {

class ShardedKernel final : public ShardLink
{
  public:
    /** Host-side action produced by a shard (sized like Callback). */
    using HostFn = ShardLink::HostFn;

    /**
     * @param host The coordinator timeline (completions, bus, array).
     * @param shards Number of worker timelines (one per disk).
     * @param jobs Worker thread count; clamped to [1, shards].
     * @param lookahead Minimum cross-timeline latency in ticks: any
     *        host event at tick t may only post arrivals at
     *        >= t + lookahead. Zero degrades to near-serial stepping.
     */
    ShardedKernel(EventQueue& host, unsigned shards, unsigned jobs,
                  Tick lookahead);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel&) = delete;
    ShardedKernel& operator=(const ShardedKernel&) = delete;

    unsigned shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    unsigned workers() const { return workerCount_; }

    Tick lookahead() const { return lookahead_; }

    /** Timeline shard `s` schedules its private events on. */
    EventQueue& shardQueue(unsigned s) { return shards_[s]->q; }

    /** The coordinator timeline. */
    EventQueue& hostQueue() override { return host_; }

    /** Current host time (valid from host context). */
    Tick hostNow() const override { return host_.now(); }

    /**
     * Post an arrival onto shard `s` at absolute tick `when`. Host
     * context only. `when` must be >= hostNow() + lookahead(); the
     * arrival is delivered at the next round boundary. Deliveries
     * into one shard preserve (when, post-order).
     */
    void postToShard(unsigned s, Tick when,
                     EventQueue::Callback fn) override;

    /**
     * Emit a host-side action from shard `s` at tick `when` (the
     * shard's current time). Only from shard `s`'s own execution
     * context during run(), or from the host thread once quiesced —
     * then it executes immediately.
     */
    void emitToHost(unsigned s, Tick when, HostFn fn) override;

    /**
     * True once run() has drained everything: cross-timeline buffers
     * are gone and shard components may touch host state directly.
     */
    bool quiesced() const override { return quiesced_; }

    /**
     * Run the windowed rounds until the host queue, every shard
     * queue, and all message buffers drain. Call at most once.
     */
    void run();

    /**
     * Drain shard queues and the host queue on the calling thread
     * (no windowing). Used for the post-run flush phase, where shard
     * timelines no longer interact.
     */
    void drainSerial();

    /** Largest current time across the host and all shards. */
    Tick maxNow() const;

    /** Advance every timeline's clock to `t` (see EventQueue). */
    void alignNow(Tick t);

    /** Events fired across the host and all shard queues. */
    std::uint64_t totalFired() const;

    /** Synchronization rounds executed by run(). */
    std::uint64_t rounds() const { return rounds_; }

    /**
     * Request a coherent read point at absolute tick `at`: no shard
     * advances to or past `at` until every timeline's work before
     * `at` has completed, so a host event scheduled at `at` with
     * EventQueue::scheduleAtFront() executes with all workers parked
     * and all earlier state settled — the one placement where host
     * code may read shard-side counters race-free mid-run. Host
     * context only (between rounds, or from a host event at tick t
     * with `at` >= t + lookahead(), which the current round's shard
     * bound cannot reach). Used for periodic snapshots, stream
     * frames, and fault-event reporting.
     */
    void requestSyncAt(Tick at) { syncAt_.push(at); }

    /**
     * Pending items across every timeline and message buffer. From a
     * sync-tick front event this equals what the serial kernel's
     * single queue would report, so housekeeping chains can make
     * identical re-arm decisions on both kernels. Host context only,
     * with workers parked.
     */
    std::size_t pendingAll() const;

  private:
    struct Emission
    {
        Tick when;
        HostFn fn;
    };

    struct Arrival
    {
        Tick when;
        std::uint64_t seq;
        EventQueue::Callback fn;
    };

    struct Shard
    {
        EventQueue q;

        /** Host-posted arrivals; drained at round boundaries. */
        std::vector<Arrival> inbox;

        /** Worker-produced emissions for the *next* round. */
        std::vector<Emission> outbox;

        /** Coordinator-consumed emissions (FIFO via stagedHead). */
        std::vector<Emission> staged;
        std::size_t stagedHead = 0;
    };

    /** Deliver inboxes into shard queues, stage outboxes. */
    void stageMessages();

    bool allDrained() const;

    /** Earliest staged emission; returns shard index or shards(). */
    unsigned earliestStaged(Tick& when) const;

    /** Run host events and staged emissions below `bound`, merged. */
    void runHostMerged(Tick bound);

    /** Execute the single globally-minimal item (lookahead 0 path). */
    void forcedStep();

    void workerLoop(unsigned worker);

    EventQueue& host_;
    std::vector<std::unique_ptr<Shard>> shards_;
    Tick lookahead_;
    unsigned workerCount_ = 1;
    std::uint64_t nextArrivalSeq_ = 0;
    std::uint64_t rounds_ = 0;

    /** Outstanding sync-tick requests (coordinator-only). */
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>>
        syncAt_;
    bool quiesced_ = false;

    // Round barrier. The coordinator publishes a new round_ with a
    // per-round shard bound; workers run their shards up to it and
    // report back via running_. The mutex hand-off orders all inbox/
    // outbox/queue access between threads.
    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cvGo_;
    std::condition_variable cvDone_;
    std::uint64_t round_ = 0;
    Tick roundBound_ = 0;
    unsigned running_ = 0;
    bool stop_ = false;
};

} // namespace dtsim

#endif // DTSIM_SIM_SHARDED_KERNEL_HH
