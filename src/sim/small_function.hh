/**
 * @file
 * A std::function replacement with a tunable inline capture buffer.
 *
 * libstdc++'s std::function only stores captures up to 16 bytes
 * inline; the simulator's hot callbacks (a completion lambda carrying
 * its IoRequest, an event carrying a shared completion state) are
 * bigger, so every schedule/complete pair costs a heap allocation --
 * tens of millions per run. SmallFunction<Sig, N> stores captures up
 * to N bytes in place and only falls back to the heap beyond that,
 * so sizing N to the largest hot capture makes the per-event path
 * allocation-free.
 *
 * Supported surface (deliberately minimal): construct from any
 * callable, copy/move, assign nullptr, operator bool, invoke.
 * Copying a SmallFunction holding a move-only callable panics.
 */

#ifndef DTSIM_SIM_SMALL_FUNCTION_HH
#define DTSIM_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace dtsim {

template <typename Sig, std::size_t N>
class SmallFunction;

template <typename R, typename... Args, std::size_t N>
class SmallFunction<R(Args...), N>
{
  public:
    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {}

    template <typename F,
              typename Fn = std::decay_t<F>,
              std::enable_if_t<
                  !std::is_same_v<Fn, SmallFunction> &&
                      std::is_invocable_r_v<R, Fn&, Args...>,
                  int> = 0>
    SmallFunction(F&& f)
    {
        using Decayed = std::decay_t<F>;
        if constexpr (fitsInline<Decayed>()) {
            ::new (static_cast<void*>(buf_))
                Decayed(std::forward<F>(f));
            vt_ = &kInlineVt<Decayed>;
        } else {
            ptr() = new Decayed(std::forward<F>(f));
            vt_ = &kHeapVt<Decayed>;
        }
    }

    SmallFunction(SmallFunction&& other) noexcept { moveFrom(other); }

    SmallFunction(const SmallFunction& other) { copyFrom(other); }

    SmallFunction&
    operator=(SmallFunction&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction&
    operator=(const SmallFunction& other)
    {
        if (this != &other) {
            reset();
            copyFrom(other);
        }
        return *this;
    }

    SmallFunction&
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    ~SmallFunction() { reset(); }

    explicit operator bool() const { return vt_ != nullptr; }

    R
    operator()(Args... args) const
    {
        return vt_->invoke(const_cast<unsigned char*>(buf_),
                           std::forward<Args>(args)...);
    }

  private:
    struct VTable
    {
        R (*invoke)(void* obj, Args&&... args);

        /** Move-construct dst's storage from src's; destroy src's. */
        void (*relocate)(void* src, void* dst);

        /** Copy-construct dst's storage from src's (null if F is
         *  move-only; copying then panics). */
        void (*copy)(const void* src, void* dst);

        void (*destroy)(void* obj);
    };

    template <typename F>
    static constexpr bool
    fitsInline()
    {
        return sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t);
    }

    // --- inline-stored callables -------------------------------------
    template <typename F>
    static R
    invokeInline(void* o, Args&&... args)
    {
        return (*static_cast<F*>(o))(std::forward<Args>(args)...);
    }

    template <typename F>
    static void
    relocateInline(void* src, void* dst)
    {
        F* s = static_cast<F*>(src);
        ::new (dst) F(std::move(*s));
        s->~F();
    }

    template <typename F>
    static void
    copyInline(const void* src, void* dst)
    {
        ::new (dst) F(*static_cast<const F*>(src));
    }

    template <typename F>
    static void
    destroyInline(void* o)
    {
        static_cast<F*>(o)->~F();
    }

    // --- heap-stored callables (buffer holds a void* to the F) --------
    template <typename F>
    static F*
    heapObj(const void* buf)
    {
        return static_cast<F*>(*static_cast<void* const*>(buf));
    }

    template <typename F>
    static R
    invokeHeap(void* o, Args&&... args)
    {
        return (*heapObj<F>(o))(std::forward<Args>(args)...);
    }

    template <typename F>
    static void
    relocateHeap(void* src, void* dst)
    {
        *static_cast<void**>(dst) = *static_cast<void**>(src);
    }

    template <typename F>
    static void
    copyHeap(const void* src, void* dst)
    {
        *static_cast<void**>(dst) = new F(*heapObj<F>(src));
    }

    template <typename F>
    static void
    destroyHeap(void* o)
    {
        delete heapObj<F>(o);
    }

    template <typename F>
    static constexpr VTable kInlineVt{
        &invokeInline<F>, &relocateInline<F>,
        std::is_copy_constructible_v<F> ? &copyInline<F> : nullptr,
        &destroyInline<F>};

    template <typename F>
    static constexpr VTable kHeapVt{
        &invokeHeap<F>, &relocateHeap<F>,
        std::is_copy_constructible_v<F> ? &copyHeap<F> : nullptr,
        &destroyHeap<F>};

    void
    reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

    void
    moveFrom(SmallFunction& other) noexcept
    {
        vt_ = other.vt_;
        if (vt_) {
            vt_->relocate(other.buf_, buf_);
            other.vt_ = nullptr;
        }
    }

    void
    copyFrom(const SmallFunction& other)
    {
        vt_ = other.vt_;
        if (vt_) {
            if (!vt_->copy)
                panic("SmallFunction: copying a move-only callable");
            vt_->copy(other.buf_, buf_);
        }
    }

    void*&
    ptr()
    {
        return *reinterpret_cast<void**>(buf_);
    }

    static_assert(N >= sizeof(void*),
                  "buffer must at least hold the heap pointer");

    alignas(std::max_align_t) unsigned char buf_[N];
    const VTable* vt_ = nullptr;
};

} // namespace dtsim

#endif // DTSIM_SIM_SMALL_FUNCTION_HH
