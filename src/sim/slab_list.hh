/**
 * @file
 * Intrusive slab-backed doubly-linked lists.
 *
 * The model caches keep recency state in linked lists whose length is
 * bounded by the cache capacity, which is fixed at construction. A
 * Slab pre-allocates every node once (payload plus prev/next slot
 * indices, free slots threaded through a freelist), so list churn --
 * the per-access splice/evict/insert pattern -- performs zero heap
 * allocation and touches 32-bit indices instead of 64-bit pointers.
 *
 * A SlabList is just a head/tail/size view; several lists can share
 * one slab (the block cache runs its used and unused lists over a
 * single pool of capacity slots).
 */

#ifndef DTSIM_SIM_SLAB_LIST_HH
#define DTSIM_SIM_SLAB_LIST_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace dtsim {

/** Sentinel slot index ("null pointer"). */
constexpr std::uint32_t kNullSlot = 0xffffffffu;

/** Fixed pool of list nodes carrying a T payload each. */
template <typename T>
class Slab
{
  public:
    explicit Slab(std::uint32_t capacity)
        : nodes_(capacity), freeCount_(capacity)
    {
        // Thread the freelist through next so allocation is O(1).
        for (std::uint32_t i = 0; i < capacity; ++i)
            nodes_[i].next = i + 1 < capacity ? i + 1 : kNullSlot;
        freeHead_ = capacity > 0 ? 0 : kNullSlot;
    }

    std::uint32_t
    capacity() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    std::uint32_t freeCount() const { return freeCount_; }

    /** Pop a free slot; the caller links it into a list. */
    std::uint32_t
    allocate()
    {
        assert(freeHead_ != kNullSlot && "slab exhausted");
        const std::uint32_t n = freeHead_;
        freeHead_ = nodes_[n].next;
        --freeCount_;
        return n;
    }

    /** Return an unlinked slot to the freelist. */
    void
    release(std::uint32_t n)
    {
        nodes_[n].next = freeHead_;
        freeHead_ = n;
        ++freeCount_;
    }

    T& operator[](std::uint32_t n) { return nodes_[n].data; }
    const T& operator[](std::uint32_t n) const { return nodes_[n].data; }

    std::uint32_t nextOf(std::uint32_t n) const { return nodes_[n].next; }
    std::uint32_t prevOf(std::uint32_t n) const { return nodes_[n].prev; }

  private:
    template <typename U>
    friend class SlabListOps;

    struct Node
    {
        std::uint32_t prev = kNullSlot;
        std::uint32_t next = kNullSlot;
        T data{};
    };

    std::vector<Node> nodes_;
    std::uint32_t freeHead_;
    std::uint32_t freeCount_;
};

/** Head/tail/size of one list whose nodes live in a shared Slab. */
struct SlabList
{
    std::uint32_t head = kNullSlot;
    std::uint32_t tail = kNullSlot;
    std::uint64_t size = 0;

    bool empty() const { return size == 0; }
};

/** The link/unlink operations of SlabLists over a Slab<T>. */
template <typename T>
class SlabListOps
{
  public:
    static void
    pushFront(Slab<T>& s, SlabList& l, std::uint32_t n)
    {
        s.nodes_[n].prev = kNullSlot;
        s.nodes_[n].next = l.head;
        if (l.head != kNullSlot)
            s.nodes_[l.head].prev = n;
        else
            l.tail = n;
        l.head = n;
        ++l.size;
    }

    static void
    pushBack(Slab<T>& s, SlabList& l, std::uint32_t n)
    {
        s.nodes_[n].next = kNullSlot;
        s.nodes_[n].prev = l.tail;
        if (l.tail != kNullSlot)
            s.nodes_[l.tail].next = n;
        else
            l.head = n;
        l.tail = n;
        ++l.size;
    }

    /** Unlink `n` from `l` (does not release the slot). */
    static void
    unlink(Slab<T>& s, SlabList& l, std::uint32_t n)
    {
        auto& node = s.nodes_[n];
        if (node.prev != kNullSlot)
            s.nodes_[node.prev].next = node.next;
        else
            l.head = node.next;
        if (node.next != kNullSlot)
            s.nodes_[node.next].prev = node.prev;
        else
            l.tail = node.prev;
        assert(l.size > 0);
        --l.size;
    }

    /** Splice `n` to the front of `l` (the LRU/MRU touch). */
    static void
    moveToFront(Slab<T>& s, SlabList& l, std::uint32_t n)
    {
        if (l.head == n)
            return;
        unlink(s, l, n);
        pushFront(s, l, n);
    }
};

} // namespace dtsim

#endif // DTSIM_SIM_SLAB_LIST_HH
