#include "sim/sharded_kernel.hh"

#include <algorithm>
#include <cassert>

namespace dtsim {

namespace {

constexpr Tick
satAdd(Tick a, Tick b)
{
    return a > kTickMax - b ? kTickMax : a + b;
}

} // namespace

ShardedKernel::ShardedKernel(EventQueue& host, unsigned shards,
                             unsigned jobs, Tick lookahead)
    : host_(host), lookahead_(lookahead)
{
    shards_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        shards_.push_back(std::make_unique<Shard>());

    workerCount_ = std::max(1u, std::min(jobs, shards));
    threads_.reserve(workerCount_);
    for (unsigned w = 0; w < workerCount_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ShardedKernel::~ShardedKernel()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    cvGo_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

void
ShardedKernel::postToShard(unsigned s, Tick when,
                           EventQueue::Callback fn)
{
    Shard& sh = *shards_[s];
    if (quiesced_) {
        sh.q.scheduleAt(when, std::move(fn));
        return;
    }
    sh.inbox.push_back(Arrival{when, nextArrivalSeq_++, std::move(fn)});
}

void
ShardedKernel::emitToHost(unsigned s, Tick when, HostFn fn)
{
    if (quiesced_) {
        fn();
        return;
    }
    shards_[s]->outbox.push_back(Emission{when, std::move(fn)});
}

void
ShardedKernel::stageMessages()
{
    for (std::unique_ptr<Shard>& p : shards_) {
        Shard& sh = *p;
        if (!sh.inbox.empty()) {
            // Appended in post order (seq ascending); a stable sort
            // by tick reproduces the serial schedule order of
            // same-tick arrivals.
            std::stable_sort(sh.inbox.begin(), sh.inbox.end(),
                             [](const Arrival& a, const Arrival& b) {
                                 return a.when < b.when;
                             });
            for (Arrival& a : sh.inbox)
                sh.q.scheduleAt(a.when, std::move(a.fn));
            sh.inbox.clear();
        }
        if (sh.stagedHead > 0) {
            sh.staged.erase(sh.staged.begin(),
                            sh.staged.begin() +
                                static_cast<std::ptrdiff_t>(
                                    sh.stagedHead));
            sh.stagedHead = 0;
        }
        if (!sh.outbox.empty()) {
            for (Emission& e : sh.outbox)
                sh.staged.push_back(std::move(e));
            sh.outbox.clear();
        }
    }
}

bool
ShardedKernel::allDrained() const
{
    if (!host_.empty())
        return false;
    for (const std::unique_ptr<Shard>& p : shards_) {
        const Shard& sh = *p;
        if (!sh.q.empty() || !sh.inbox.empty() || !sh.outbox.empty() ||
            sh.stagedHead < sh.staged.size())
            return false;
    }
    return true;
}

unsigned
ShardedKernel::earliestStaged(Tick& when) const
{
    unsigned best = static_cast<unsigned>(shards_.size());
    unsigned best_rank = 0;
    Tick best_when = kTickMax;
    for (unsigned s = 0; s < shards_.size(); ++s) {
        const Shard& sh = *shards_[s];
        if (sh.stagedHead >= sh.staged.size())
            continue;
        const Tick w = sh.staged[sh.stagedHead].when;
        const unsigned r = mergeRank(s);
        if (w < best_when || (w == best_when && r < best_rank)) {
            best_when = w;
            best_rank = r;
            best = s;
        }
    }
    when = best_when;
    return best;
}

std::size_t
ShardedKernel::pendingAll() const
{
    std::size_t n = host_.pending();
    for (const std::unique_ptr<Shard>& p : shards_) {
        const Shard& sh = *p;
        n += sh.q.pending() + sh.inbox.size() + sh.outbox.size() +
             (sh.staged.size() - sh.stagedHead);
    }
    return n;
}

void
ShardedKernel::runHostMerged(Tick bound)
{
    // Host events and staged shard emissions, merged in (tick, host
    // first, then shard index) order. Consuming either side may
    // schedule new host events, so both horizons are re-read each
    // iteration.
    for (;;) {
        const Tick he = host_.nextTime();
        Tick ew = kTickMax;
        const unsigned es = earliestStaged(ew);
        if (std::min(he, ew) >= bound)
            return;
        if (he <= ew) {
            host_.step();
            continue;
        }
        Shard& sh = *shards_[es];
        Emission e = std::move(sh.staged[sh.stagedHead++]);
        // The host clock must read the emission's tick while the
        // callback runs: callbacks that re-submit (rebuild chunk
        // chains) compute crossing ticks from hostNow(), exactly as
        // the serial flusher runs them with q.now() at the emission
        // tick.
        host_.advanceTo(e.when);
        e.fn();
    }
}

void
ShardedKernel::forcedStep()
{
    // Zero-lookahead safety net: execute the single globally minimal
    // item on the coordinator thread (workers are parked), with the
    // same tie priority the merged loop uses.
    const Tick he = host_.nextTime();
    Tick ew = kTickMax;
    const unsigned es = earliestStaged(ew);
    Tick emin = kTickMax;
    unsigned smin = 0;
    unsigned smin_rank = 0;
    for (unsigned s = 0; s < shards_.size(); ++s) {
        const Tick t = shards_[s]->q.nextTime();
        const unsigned r = mergeRank(s);
        if (t < emin || (t == emin && t != kTickMax && r < smin_rank)) {
            emin = t;
            smin = s;
            smin_rank = r;
        }
    }
    if (he <= ew && he <= emin) {
        host_.step();
    } else if (ew <= emin) {
        Shard& sh = *shards_[es];
        Emission e = std::move(sh.staged[sh.stagedHead++]);
        host_.advanceTo(e.when); // see runHostMerged
        e.fn();
    } else {
        shards_[smin]->q.step();
    }
}

void
ShardedKernel::run()
{
    assert(!quiesced_);
    for (;;) {
        stageMessages();
        if (allDrained())
            break;

        const Tick host_next = host_.nextTime();
        Tick staged_next = kTickMax;
        earliestStaged(staged_next);
        Tick emin = kTickMax;
        for (std::unique_ptr<Shard>& p : shards_)
            emin = std::min(emin, p->q.nextTime());

        // The lookahead origin is the earliest pending work anywhere:
        // host events, staged emissions, or shard events. A shard
        // event at emin can emit host work at emin, which in turn can
        // post new arrivals -- so even with an idle host, no shard may
        // run past emin + lookahead. The origin is nondecreasing
        // across rounds (new work is always scheduled at or after its
        // scheduler's own tick), so every future arrival lands at or
        // beyond the current shard bound. The host in turn may not
        // run past the earliest shard event, whose emissions it must
        // merge in tick order.
        const Tick h = std::min(host_next, staged_next);
        const Tick origin = std::min(h, emin);

        // Sync-tick caps: a requested tick S holds every shard below
        // S until the work before S drains; the host front event at S
        // then executes via forcedStep with workers parked (host wins
        // ties). A request is spent once the origin moves past it —
        // the origin is nondecreasing, so nothing can land before it
        // again.
        while (!syncAt_.empty() && syncAt_.top() < origin)
            syncAt_.pop();
        const Tick sync = syncAt_.empty() ? kTickMax : syncAt_.top();

        const Tick shard_bound =
            std::min(satAdd(origin, lookahead_), sync);
        const Tick host_bound = std::min(emin, shard_bound);

        const bool shard_work = emin < shard_bound;
        const bool host_work = h < host_bound;
        if (!shard_work && !host_work) {
            forcedStep();
            continue;
        }

        ++rounds_;
        if (shard_work) {
            {
                std::lock_guard<std::mutex> lock(m_);
                roundBound_ = shard_bound;
                running_ = workers();
                ++round_;
            }
            cvGo_.notify_all();
        }
        if (host_work)
            runHostMerged(host_bound);
        if (shard_work) {
            std::unique_lock<std::mutex> lock(m_);
            cvDone_.wait(lock, [this] { return running_ == 0; });
        }
    }
    quiesced_ = true;
}

void
ShardedKernel::drainSerial()
{
    quiesced_ = true;
    for (;;) {
        bool fired = false;
        for (std::unique_ptr<Shard>& p : shards_) {
            if (p->q.run() > 0)
                fired = true;
        }
        if (host_.run() > 0)
            fired = true;
        if (!fired)
            return;
    }
}

Tick
ShardedKernel::maxNow() const
{
    Tick t = host_.now();
    for (const std::unique_ptr<Shard>& p : shards_)
        t = std::max(t, p->q.now());
    return t;
}

void
ShardedKernel::alignNow(Tick t)
{
    host_.advanceTo(t);
    for (std::unique_ptr<Shard>& p : shards_)
        p->q.advanceTo(t);
}

std::uint64_t
ShardedKernel::totalFired() const
{
    std::uint64_t n = host_.fired();
    for (const std::unique_ptr<Shard>& p : shards_)
        n += p->q.fired();
    return n;
}

void
ShardedKernel::workerLoop(unsigned worker)
{
    std::uint64_t seen = 0;
    const unsigned stride = workerCount_;
    for (;;) {
        Tick bound;
        {
            std::unique_lock<std::mutex> lock(m_);
            cvGo_.wait(lock,
                       [&] { return stop_ || round_ != seen; });
            if (stop_)
                return;
            seen = round_;
            bound = roundBound_;
        }
        for (unsigned s = worker; s < shards_.size(); s += stride)
            shards_[s]->q.runBefore(bound);
        {
            std::lock_guard<std::mutex> lock(m_);
            --running_;
            if (running_ == 0)
                cvDone_.notify_one();
        }
    }
}

} // namespace dtsim
