#include "workload/synthetic.hh"

#include "fs/coalescer.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dtsim {

SyntheticWorkload
makeSynthetic(const SyntheticParams& params, std::uint64_t total_blocks)
{
    if (params.numFiles == 0 || params.fileSizeBytes == 0)
        fatal("makeSynthetic: need files with nonzero size");

    SyntheticWorkload w;
    w.params = params;

    std::vector<std::uint64_t> sizes(params.numFiles,
                                     params.fileSizeBytes);
    LayoutParams lp;
    lp.blockSize = params.blockSize;
    lp.fragmentation = params.fragmentation;
    lp.seed = params.seed ^ 0xf11eULL;
    w.image = std::make_unique<FileSystemImage>(sizes, lp,
                                                total_blocks);

    Rng rng(params.seed);
    ZipfSampler zipf(params.numFiles, params.zipfAlpha);

    // Popularity must not correlate with disk placement: permute the
    // rank -> file mapping. With groupedLayout, a directory's
    // members stay contiguous on disk (explicit grouping) and whole
    // directories are shuffled; otherwise individual files are.
    const std::uint64_t dir =
        std::max<std::uint64_t>(1, params.dirFiles);
    std::vector<FileId> perm(params.numFiles);
    for (std::uint64_t i = 0; i < params.numFiles; ++i)
        perm[i] = static_cast<FileId>(i);
    if (params.groupedLayout && dir > 1) {
        const std::uint64_t groups = params.numFiles / dir;
        for (std::uint64_t g = groups - 1; g > 0; --g) {
            const std::uint64_t o = rng.below(g + 1);
            for (std::uint64_t k = 0; k < dir; ++k)
                std::swap(perm[g * dir + k], perm[o * dir + k]);
        }
    } else {
        for (std::uint64_t i = params.numFiles - 1; i > 0; --i)
            std::swap(perm[i], perm[rng.below(i + 1)]);
    }

    // Emit one file's blocks as coalesced records.
    auto emit_file = [&](FileId file, bool is_write,
                         std::uint32_t job) {
        const FileLayout& f = w.image->file(file);
        // Perfect prefetching requests the whole file; each extent
        // is a run of consecutive logical blocks, split into
        // requests by the coalescing model.
        for (const FileExtent& e : f.extents) {
            ArrayBlock pos = e.start;
            for (std::uint64_t sz :
                 coalesceRun(e.count, params.coalesceProb, rng)) {
                TraceRecord rec;
                rec.start = pos;
                rec.count = static_cast<std::uint32_t>(sz);
                rec.isWrite = is_write;
                rec.job = job;
                w.trace.push_back(rec);
                pos += sz;
            }
        }
    };

    w.trace.reserve(params.numRequests * 2);
    for (std::uint64_t r = 0; r < params.numRequests; ++r) {
        const std::uint64_t rank = zipf.sample(rng);
        const bool is_write = rng.chance(params.writeProb);
        const auto job = static_cast<std::uint32_t>(r);

        if (dir > 1 && rng.chance(params.dirAccessProb)) {
            // Whole-directory access: every member file in order.
            const std::uint64_t first = rank / dir * dir;
            for (std::uint64_t k = 0;
                 k < dir && first + k < params.numFiles; ++k)
                emit_file(perm[first + k], is_write, job);
        } else {
            emit_file(perm[rank], is_write, job);
        }
    }
    return w;
}

} // namespace dtsim
