/**
 * @file
 * Models of the paper's three real server workloads (Section 6.3).
 *
 * The paper drives its simulator with disk-access logs collected from
 * an instrumented Linux kernel while real traces (Rutgers Web, AT&T
 * Hummingbird proxy, HP Labs file server) ran against real servers.
 * We do not have those proprietary traces, so each model synthesizes
 * a file-level request stream calibrated to every statistic the paper
 * reports (file population, sizes, footprint, request count, write
 * mix, concurrency) and pushes it through a simulated buffer-cache
 * hierarchy; the emitted miss trace plays the role of the kernel log.
 * The controller techniques under study see only this disk-level
 * stream, so matching its sequentiality, popularity profile, write
 * fraction, and concurrency preserves the behavior that matters.
 */

#ifndef DTSIM_WORKLOAD_SERVER_MODELS_HH
#define DTSIM_WORKLOAD_SERVER_MODELS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "fs/buffer_cache.hh"
#include "fs/file_layout.hh"
#include "fs/prefetcher.hh"
#include "workload/trace.hh"

namespace dtsim {

/** Knobs of one server workload model. */
struct ServerModelParams
{
    std::string name = "server";

    /** File population. */
    std::uint64_t numFiles = 70000;

    /** Mean file size in bytes (log-normal, sigma below). */
    double avgFileBytes = 21.5 * 1024;
    double fileSizeSigma = 1.2;

    /** Minimum/maximum file size in bytes. */
    std::uint64_t minFileBytes = 1024;
    std::uint64_t maxFileBytes = 4 * kMiB;

    /** File-level requests to generate (the recorded period). */
    std::uint64_t numRequests = 340000;

    /**
     * Requests run through the cache hierarchy before recording
     * starts. Section 5 divides the server's life into periods and
     * manages HDC from the history of previous periods; the recorded
     * trace is therefore a steady-state period, not a cold start.
     */
    std::uint64_t warmupRequests = 340000;

    /** Zipf coefficient of file popularity. */
    double zipfAlpha = 0.8;

    /**
     * Diurnal working-set alternation: every `phaseShiftEvery`
     * requests the popularity ranking rotates by `phaseOffsetFiles`
     * (and back), so the previous phase's hot set cools, is evicted,
     * and re-misses when its phase returns. This reproduces the
     * repeated buffer-cache misses of genuinely popular blocks that
     * the paper's real traces exhibit (most-missed block: 88/78/90
     * accesses) and that a stationary Zipf + LRU cannot produce.
     * 0 disables alternation.
     */
    std::uint64_t phaseShiftEvery = 0;
    std::uint64_t phaseOffsetFiles = 0;

    /**
     * Probability that a request writes its file (Web/file server);
     * for the proxy model this is the proxy miss rate: a missed URL
     * is fetched and written to disk.
     */
    double writeRequestProb = 0.02;

    /**
     * When true, requests access a random fraction of the file
     * (file-server behavior) instead of the whole file.
     */
    bool partialAccess = false;

    /** Mean access size for partial accesses. */
    double avgAccessBytes = 3.1 * 1024;

    /** Host buffer cache in blocks (~400 MB on the 512 MB machine). */
    std::uint64_t bufferCacheBlocks = 100000;

    /** OS prefetching model. */
    PrefetchMode prefetch = PrefetchMode::Sequential;
    std::uint32_t prefetchMaxBlocks = 16;

    /** Periodic sync interval, in requests (0 = only at the end). */
    std::uint64_t syncEveryRequests = 20000;

    /**
     * Requests per simulated "day". At each day boundary the buffer
     * cache is dropped, modeling nightly batch activity (backups,
     * log processing) evicting the working set -- the mechanism that
     * makes genuinely popular blocks miss repeatedly in multi-week
     * server traces (the paper's most-missed blocks see 78-90
     * accesses, about one per day of trace). 0 disables day cycles.
     */
    std::uint64_t dayEveryRequests = 0;

    /** Layout fragmentation degree. */
    double fragmentation = 0.02;

    /**
     * Popularity-placement clustering: files of similar popularity
     * rank are laid out together in groups of this many files
     * (files of one site section are uploaded together and end up
     * adjacent on disk). Groups are shuffled across the disk. This
     * is what makes large striping units suffer load imbalance
     * (Figures 7/9/11's right side). 1 = fully random placement.
     */
    std::uint64_t placementClusterFiles = 512;

    /** Maximum concurrent I/O streams of the server. */
    unsigned streams = 16;

    std::uint32_t blockSize = 4096;
    std::uint64_t seed = 17;
};

/** A built server workload. */
struct ServerWorkload
{
    ServerModelParams params;
    std::unique_ptr<FileSystemImage> image;
    Trace trace;

    /** Buffer-cache statistics of the generating run. */
    BufferCacheStats bufferCache;
};

/**
 * Generate a server workload: build the image, run the file-level
 * request stream through the buffer-cache hierarchy, and record the
 * misses and write-backs as the disk trace.
 */
ServerWorkload makeServerWorkload(const ServerModelParams& params,
                                  std::uint64_t total_blocks);

/**
 * Parameter presets calibrated to the paper's three workloads.
 * `scale` scales the request count (1.0 = the paper's size); the
 * benches use smaller scales to keep runtimes reasonable.
 */
ServerModelParams webServerParams(double scale = 1.0);
ServerModelParams proxyServerParams(double scale = 1.0);
ServerModelParams fileServerParams(double scale = 1.0);

} // namespace dtsim

#endif // DTSIM_WORKLOAD_SERVER_MODELS_HH
