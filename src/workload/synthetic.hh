/**
 * @file
 * The synthetic workload of Section 6.2.
 *
 * A population of equal-size files is laid out on the array; each of
 * the 10000 trace requests accesses one complete file chosen by a
 * Bradford-Zipf distribution. Perfect OS prefetching is assumed (the
 * whole file is requested at once) with an 87% per-boundary request
 * coalescing probability, and a configurable fraction of the requests
 * are writes.
 */

#ifndef DTSIM_WORKLOAD_SYNTHETIC_HH
#define DTSIM_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <memory>

#include "fs/file_layout.hh"
#include "workload/trace.hh"

namespace dtsim {

/** Knobs of the Section 6.2 synthetic workload. */
struct SyntheticParams
{
    /** File population (sized so replacement effects are visible). */
    std::uint64_t numFiles = 200000;

    /** Every request accesses one complete file of this size. */
    std::uint64_t fileSizeBytes = 16 * kKiB;

    /** Trace requests (complete-file accesses). */
    std::uint64_t numRequests = 10000;

    /** Bradford-Zipf coefficient over file popularity. */
    double zipfAlpha = 0.4;

    /** Probability that a request writes its file. */
    double writeProb = 0.0;

    /** Per-boundary request coalescing probability. */
    double coalesceProb = 0.87;

    /** Intra-file layout fragmentation degree. */
    double fragmentation = 0.0;

    /**
     * Directory model (for the explicit-grouping comparison of
     * Section 3): files belong to directories of `dirFiles` members;
     * with probability `dirAccessProb` a request reads the whole
     * directory (member files in order) instead of a single file.
     */
    std::uint64_t dirFiles = 1;
    double dirAccessProb = 0.0;

    /**
     * Explicit grouping: when true, a directory's members are
     * allocated contiguously on disk (Ganger & Kaashoek's layout),
     * so blind read-ahead crossing a file boundary still fetches
     * useful data. When false, members are scattered.
     */
    bool groupedLayout = false;

    std::uint32_t blockSize = 4096;
    std::uint64_t seed = 7;
};

/** A built synthetic workload: the disk image plus its trace. */
struct SyntheticWorkload
{
    SyntheticParams params;
    std::unique_ptr<FileSystemImage> image;
    Trace trace;
};

/**
 * Build the Section 6.2 workload.
 *
 * @param params Workload knobs.
 * @param total_blocks Logical capacity of the target array.
 */
SyntheticWorkload makeSynthetic(const SyntheticParams& params,
                                std::uint64_t total_blocks);

} // namespace dtsim

#endif // DTSIM_WORKLOAD_SYNTHETIC_HH
