#include "workload/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "sim/logging.hh"

namespace dtsim {

TraceStats
computeStats(const Trace& trace)
{
    TraceStats s;
    s.records = trace.size();
    std::unordered_map<ArrayBlock, std::uint64_t> counts;
    std::unordered_set<std::uint32_t> jobs;
    for (const TraceRecord& r : trace) {
        s.blocks += r.count;
        if (r.isWrite) {
            ++s.writeRecords;
            s.writeBlocks += r.count;
        }
        jobs.insert(r.job);
        for (std::uint32_t i = 0; i < r.count; ++i)
            ++counts[r.start + i];
    }
    s.jobs = jobs.size();
    s.distinctBlocks = counts.size();
    for (const auto& [block, n] : counts)
        s.maxBlockAccesses = std::max(s.maxBlockAccesses, n);
    if (s.records > 0) {
        s.writeRecordFraction =
            static_cast<double>(s.writeRecords) /
            static_cast<double>(s.records);
        s.meanRecordBlocks =
            static_cast<double>(s.blocks) /
            static_cast<double>(s.records);
    }
    return s;
}

std::vector<std::uint64_t>
accessCountsSorted(const Trace& trace, std::size_t top)
{
    std::unordered_map<ArrayBlock, std::uint64_t> counts;
    for (const TraceRecord& r : trace)
        for (std::uint32_t i = 0; i < r.count; ++i)
            ++counts[r.start + i];

    std::vector<std::uint64_t> out;
    out.reserve(counts.size());
    for (const auto& [block, n] : counts)
        out.push_back(n);
    std::sort(out.begin(), out.end(), std::greater<>());
    if (top != 0 && out.size() > top)
        out.resize(top);
    return out;
}

void
saveTrace(const Trace& trace, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("saveTrace: cannot open %s", path.c_str());
    std::fprintf(f, "# dtsim-trace v1: start count write job\n");
    for (const TraceRecord& r : trace) {
        std::fprintf(f, "%" PRIu64 " %u %u %u\n", r.start, r.count,
                     r.isWrite ? 1u : 0u, r.job);
    }
    std::fclose(f);
}

Trace
loadTrace(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f)
        throw std::runtime_error("loadTrace: cannot open " + path);
    Trace trace;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (line[0] == '#' || line[0] == '\n')
            continue;
        TraceRecord r;
        unsigned w = 0;
        if (std::sscanf(line, "%" SCNu64 " %u %u %u", &r.start,
                        &r.count, &w, &r.job) != 4) {
            std::fclose(f);
            throw std::runtime_error("loadTrace: bad line in " + path);
        }
        r.isWrite = w != 0;
        trace.push_back(r);
    }
    std::fclose(f);
    return trace;
}

} // namespace dtsim
