#include "workload/server_models.hh"

#include <algorithm>

#include "fs/buffer_cache.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace dtsim {

namespace {

/** Emit a batch of dirty blocks as coalesced write records. */
void
emitWritebacks(std::vector<ArrayBlock>& blocks, std::uint32_t job,
               Trace& trace)
{
    if (blocks.empty())
        return;
    std::sort(blocks.begin(), blocks.end());
    std::size_t i = 0;
    while (i < blocks.size()) {
        std::size_t j = i + 1;
        while (j < blocks.size() && blocks[j] == blocks[j - 1] + 1)
            ++j;
        TraceRecord rec;
        rec.start = blocks[i];
        rec.count = static_cast<std::uint32_t>(j - i);
        rec.isWrite = true;
        rec.job = job;
        trace.push_back(rec);
        i = j;
    }
    blocks.clear();
}

/**
 * Emit a read of file blocks [start, start+count) as disk records,
 * splitting at extent boundaries (they are not logically contiguous
 * on the media).
 */
void
emitFileRead(const FileLayout& f, std::uint64_t start,
             std::uint64_t count, std::uint32_t job, Trace& trace)
{
    std::uint64_t i = start;
    const std::uint64_t end = start + count;
    while (i < end) {
        const ArrayBlock lb = f.blockAt(i);
        const std::uint64_t run = f.contiguousRun(i, end - i);
        TraceRecord rec;
        rec.start = lb;
        rec.count = static_cast<std::uint32_t>(run);
        rec.isWrite = false;
        rec.job = job;
        trace.push_back(rec);
        i += run;
    }
}

} // namespace

ServerWorkload
makeServerWorkload(const ServerModelParams& params,
                   std::uint64_t total_blocks)
{
    ServerWorkload w;
    w.params = params;

    Rng rng(params.seed);

    // File population with log-normal sizes.
    std::vector<std::uint64_t> sizes;
    sizes.reserve(params.numFiles);
    for (std::uint64_t i = 0; i < params.numFiles; ++i) {
        double b = rng.logNormalMean(params.avgFileBytes,
                                     params.fileSizeSigma);
        b = std::clamp(b, static_cast<double>(params.minFileBytes),
                       static_cast<double>(params.maxFileBytes));
        sizes.push_back(static_cast<std::uint64_t>(b));
    }

    LayoutParams lp;
    lp.blockSize = params.blockSize;
    lp.fragmentation = params.fragmentation;
    lp.seed = params.seed ^ 0xf11eULL;
    w.image = std::make_unique<FileSystemImage>(sizes, lp,
                                                total_blocks);

    ZipfSampler zipf(params.numFiles, params.zipfAlpha);
    BufferCache cache(params.bufferCacheBlocks);
    Prefetcher prefetcher(params.prefetch, params.prefetchMaxBlocks);

    // Map popularity ranks to on-disk files: clusters of adjacent
    // ranks stay adjacent on disk (creation-time clustering), while
    // the clusters themselves are shuffled across the disk.
    const std::uint64_t cluster =
        std::max<std::uint64_t>(1, params.placementClusterFiles);
    const std::uint64_t groups =
        (params.numFiles + cluster - 1) / cluster;
    std::vector<std::uint64_t> group_perm(groups);
    for (std::uint64_t g = 0; g < groups; ++g)
        group_perm[g] = g;
    for (std::uint64_t g = groups - 1; g > 0; --g)
        std::swap(group_perm[g], group_perm[rng.below(g + 1)]);
    std::vector<FileId> perm(params.numFiles);
    {
        // Assign each rank-group a contiguous id range; the last
        // (short) group maps to the leftover ids.
        std::vector<std::uint64_t> base(groups);
        std::uint64_t next = 0;
        for (std::uint64_t g = 0; g < groups; ++g) {
            base[group_perm[g]] = next;
            const std::uint64_t size = std::min(
                cluster, params.numFiles - group_perm[g] * cluster);
            next += size;
        }
        for (std::uint64_t r = 0; r < params.numFiles; ++r) {
            const std::uint64_t g = r / cluster;
            perm[r] =
                static_cast<FileId>(base[g] + (r % cluster));
        }
    }

    std::vector<ArrayBlock> writebacks;
    Trace job_records;  // Reused per request (cleared each read).
    std::uint32_t job = 0;

    const std::uint64_t total_requests =
        params.warmupRequests + params.numRequests;
    for (std::uint64_t r = 0; r < total_requests; ++r) {
        const bool recording = r >= params.warmupRequests;
        std::uint64_t rank = zipf.sample(rng);
        if (params.phaseShiftEvery > 0 &&
            (r / params.phaseShiftEvery) % 2 == 1) {
            // Alternate phase: rotated popularity ranking.
            rank = (rank + params.phaseOffsetFiles) % params.numFiles;
        }
        const FileId file = perm[rank];
        const FileLayout& f = w.image->file(file);
        const std::uint64_t fblocks = f.blocks();

        // Pick the accessed range.
        std::uint64_t start = 0;
        std::uint64_t count = fblocks;
        if (params.partialAccess) {
            const double bytes = std::max(
                1.0, rng.exponential(params.avgAccessBytes));
            count = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       bytes / params.blockSize + 0.5));
            count = std::min(count, fblocks);
            start = fblocks > count
                ? rng.below(fblocks - count + 1)
                : 0;
        }

        const bool is_write = rng.chance(params.writeRequestProb);
        const std::uint32_t this_job = job++;

        if (is_write) {
            // Dirty the blocks in the buffer cache (write-back),
            // walking physically contiguous pieces to keep the
            // per-block address computation O(1).
            for (std::uint64_t i = start; i < start + count;) {
                const ArrayBlock lb = f.blockAt(i);
                const std::uint64_t seg =
                    f.contiguousRun(i, start + count - i);
                for (std::uint64_t m = 0; m < seg; ++m)
                    cache.write(lb + m, writebacks);
                i += seg;
            }
            if (recording)
                emitWritebacks(writebacks, this_job, w.trace);
            writebacks.clear();
        } else {
            // Read through the cache; a miss triggers a disk read of
            // the missing block plus the OS prefetch. Records of one
            // job are emitted through a coalescing buffer: the
            // paper's logs merge accesses to consecutive blocks
            // issued within 2 ms, which covers a thread's
            // back-to-back prefetch ramp-up reads.
            job_records.clear();
            std::uint64_t i = start;
            // Cursor over the file's physically contiguous pieces so
            // the per-block address is one add instead of an extent
            // lookup.
            ArrayBlock seg_lb = 0;
            std::uint64_t seg_start = 0;
            std::uint64_t seg_end = 0;
            while (i < start + count) {
                if (i >= seg_end) {
                    seg_lb = f.blockAt(i);
                    seg_start = i;
                    seg_end =
                        i + f.contiguousRun(i, start + count - i);
                }
                if (cache.readHit(seg_lb + (i - seg_start))) {
                    ++i;
                    continue;
                }
                const std::uint64_t pf = prefetcher.plan(
                    file, i, 1, fblocks);
                const std::uint64_t run =
                    std::min(1 + pf, fblocks - i);
                if (recording)
                    emitFileRead(f, i, run, this_job, job_records);
                for (std::uint64_t k = 0; k < run;) {
                    const ArrayBlock lb = f.blockAt(i + k);
                    const std::uint64_t seg =
                        f.contiguousRun(i + k, run - k);
                    for (std::uint64_t m = 0; m < seg; ++m)
                        cache.install(lb + m, writebacks);
                    k += seg;
                }
                if (recording)
                    emitWritebacks(writebacks, this_job, job_records);
                writebacks.clear();
                i += run;
            }
            // Driver-level coalescing of adjacent same-type records.
            for (const TraceRecord& rec : job_records) {
                if (!w.trace.empty()) {
                    TraceRecord& prev = w.trace.back();
                    if (prev.job == rec.job &&
                        prev.isWrite == rec.isWrite &&
                        prev.start + prev.count == rec.start) {
                        prev.count += rec.count;
                        continue;
                    }
                }
                w.trace.push_back(rec);
            }
        }

        if (params.syncEveryRequests > 0 &&
            (r + 1) % params.syncEveryRequests == 0) {
            std::vector<ArrayBlock> dirty = cache.sync();
            if (recording)
                emitWritebacks(dirty, job, w.trace);
            ++job;
        }

        if (params.dayEveryRequests > 0 &&
            (r + 1) % params.dayEveryRequests == 0) {
            // Nightly batch activity: the working set is evicted;
            // dirty data reaches the disk.
            std::vector<ArrayBlock> dirty = cache.dropAll();
            if (recording)
                emitWritebacks(dirty, job, w.trace);
            ++job;
            prefetcher.reset();
        }
    }

    // Final sync.
    std::vector<ArrayBlock> dirty = cache.sync();
    emitWritebacks(dirty, job++, w.trace);

    w.bufferCache = cache.stats();
    return w;
}

ServerModelParams
webServerParams(double scale)
{
    ServerModelParams p;
    p.name = "web";
    p.numFiles = 70000;
    p.avgFileBytes = 21.5 * 1024;
    p.fileSizeSigma = 1.2;
    p.numRequests =
        static_cast<std::uint64_t>(1700000.0 * scale);
    p.warmupRequests = 150000;
    p.zipfAlpha = 1.0;                  // Origin-server popularity.
    p.writeRequestProb = 0.02;
    p.partialAccess = false;
    p.bufferCacheBlocks = 100000;       // ~400 MB of 512 MB RAM.
    p.prefetch = PrefetchMode::Sequential;
    p.syncEveryRequests = 20000;
    p.dayEveryRequests = 24000;         // ~70 "days" at full scale.
    p.fragmentation = 0.02;
    p.streams = 16;                      // PRESS helper threads.
    p.seed = 0xbeef;
    return p;
}

ServerModelParams
proxyServerParams(double scale)
{
    ServerModelParams p;
    p.name = "proxy";
    p.numFiles = 440000;
    p.avgFileBytes = 8.3 * 1024;
    p.fileSizeSigma = 1.0;
    p.numRequests =
        static_cast<std::uint64_t>(750000.0 * scale);
    p.warmupRequests = 150000;
    p.zipfAlpha = 0.75;                 // Proxy-trace popularity.
    // Proxy misses (43%) fetch the object and write it to disk.
    p.writeRequestProb = 0.43;
    p.partialAccess = false;
    p.bufferCacheBlocks = 100000;
    p.prefetch = PrefetchMode::Sequential;
    p.syncEveryRequests = 10000;
    p.dayEveryRequests = 11000;         // ~70 "days" at full scale.
    p.fragmentation = 0.03;
    p.streams = 128;
    p.seed = 0x9c0;
    return p;
}

ServerModelParams
fileServerParams(double scale)
{
    ServerModelParams p;
    p.name = "file";
    p.numFiles = 30000;
    p.avgFileBytes = 16.0 * 1024 * 1024 * 1024 / 30000.0; // 16 GB.
    p.fileSizeSigma = 1.5;
    p.minFileBytes = 4096;
    p.maxFileBytes = 64 * kMiB;
    p.numRequests =
        static_cast<std::uint64_t>(9500000.0 * scale);
    p.warmupRequests = 250000;
    p.zipfAlpha = 0.55;
    p.writeRequestProb = 0.34;
    p.partialAccess = true;
    p.avgAccessBytes = 3.1 * 1024;
    p.bufferCacheBlocks = 100000;
    p.prefetch = PrefetchMode::Sequential;
    p.syncEveryRequests = 50000;
    p.dayEveryRequests = 200000;        // ~48 "days" at full scale.
    p.fragmentation = 0.05;
    p.streams = 128;
    p.seed = 0xf11e5;
    return p;
}

} // namespace dtsim
