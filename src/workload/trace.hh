/**
 * @file
 * Disk-access traces: the records the host replays against the array.
 *
 * A trace is the stream of block requests that missed in the host's
 * application/buffer caches, in issue order. Records carry a job id:
 * records of one job (e.g. one file access) are issued sequentially by
 * one server thread, while different jobs run concurrently across
 * threads.
 */

#ifndef DTSIM_WORKLOAD_TRACE_HH
#define DTSIM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "array/striping.hh"

namespace dtsim {

/** One disk access (post host-cache). */
struct TraceRecord
{
    ArrayBlock start = 0;
    std::uint32_t count = 1;
    bool isWrite = false;

    /** Job (file-access) this record belongs to. */
    std::uint32_t job = 0;
};

/** A whole workload's disk accesses. */
using Trace = std::vector<TraceRecord>;

/** Summary statistics of a trace. */
struct TraceStats
{
    std::uint64_t records = 0;
    std::uint64_t writeRecords = 0;
    std::uint64_t blocks = 0;
    std::uint64_t writeBlocks = 0;
    std::uint64_t jobs = 0;
    std::uint64_t distinctBlocks = 0;
    std::uint64_t maxBlockAccesses = 0;
    double writeRecordFraction = 0.0;
    double meanRecordBlocks = 0.0;
};

/** Compute summary statistics. */
TraceStats computeStats(const Trace& trace);

/**
 * Per-block access counts, sorted descending: the series plotted in
 * Figure 2. Only the `top` most-accessed blocks are returned (0 = all).
 */
std::vector<std::uint64_t> accessCountsSorted(const Trace& trace,
                                              std::size_t top = 0);

/** Save a trace as a text file (one record per line). */
void saveTrace(const Trace& trace, const std::string& path);

/** Load a trace saved by saveTrace(). Throws on parse errors. */
Trace loadTrace(const std::string& path);

} // namespace dtsim

#endif // DTSIM_WORKLOAD_TRACE_HH
