#include "stats/trace.hh"

#include <cctype>
#include <cinttypes>
#include <cstring>
#include <fstream>

#include "sim/logging.hh"

namespace dtsim {

const char*
traceOutcomeName(TraceOutcome o)
{
    switch (o) {
      case TraceOutcome::Media: return "media";
      case TraceOutcome::Cache: return "cache";
      case TraceOutcome::Hdc: return "hdc";
    }
    panic("traceOutcomeName: bad outcome %d", static_cast<int>(o));
}

void
RequestTracer::open(const std::string& path)
{
    if (!compiledIn())
        fatal("tracing requested but DTSIM_TRACE was OFF at build time");
    close();
    out_ = std::fopen(path.c_str(), "w");
    if (!out_)
        fatal("cannot open trace file %s for writing", path.c_str());
    records_ = 0;
}

void
RequestTracer::close()
{
    if (out_) {
        std::fclose(out_);
        out_ = nullptr;
    }
}

void
RequestTracer::writePreamble(const std::string& text)
{
    if (!out_ || text.empty())
        return;
    if (text.front() != '#')
        panic("trace preamble must be '#' comment lines");
    std::fwrite(text.data(), 1, text.size(), out_);
    if (text.back() != '\n')
        std::fputc('\n', out_);
}

void
RequestTracer::writeRecord(const RequestTraceEvent& ev)
{
    // One record is far below 320 bytes even with every field at its
    // maximum width; snprintf into the stack keeps the hot path free
    // of allocation.
    char buf[320];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "{\"t\":%" PRIu64 ",\"disk\":%" PRIu32 ",\"lba\":%" PRIu64
        ",\"n\":%" PRIu32 ",\"w\":%d,\"how\":\"%s\",\"q\":%" PRIu64
        ",\"seek\":%" PRIu64 ",\"rot\":%" PRIu64 ",\"xfer\":%" PRIu64
        ",\"bus\":%" PRIu64 ",\"lat\":%" PRIu64 ",\"faults\":%" PRIu32
        ",\"retries\":%" PRIu32 ",\"degraded\":%d}\n",
        ev.completed, ev.disk, ev.lba, ev.blocks, ev.isWrite ? 1 : 0,
        traceOutcomeName(ev.outcome), ev.queue, ev.seek, ev.rotation,
        ev.transfer, ev.bus, ev.latency, ev.faults, ev.retries,
        ev.degraded ? 1 : 0);
    if (n <= 0 || static_cast<std::size_t>(n) >= sizeof(buf))
        panic("trace record formatting overflowed");
    std::fwrite(buf, 1, static_cast<std::size_t>(n), out_);
    ++records_;
}

namespace {

/**
 * Find `"key":` in `line` and parse the unsigned integer after it.
 * Returns false if the key is absent or not followed by digits.
 */
bool
parseU64Field(const std::string& line, const char* key,
              std::uint64_t& value)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t i = pos + needle.size();
    if (i >= line.size() || !std::isdigit(static_cast<unsigned char>(line[i])))
        return false;
    std::uint64_t v = 0;
    for (; i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i])); ++i)
        v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    value = v;
    return true;
}

/** Parse the quoted string value of `"key":"..."`. */
bool
parseStringField(const std::string& line, const char* key,
                 std::string& value)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const std::size_t start = pos + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    value = line.substr(start, end - start);
    return true;
}

} // namespace

bool
parseTraceLine(const std::string& line, RequestTraceEvent& ev)
{
    std::uint64_t t, disk, lba, n, w, q, seek, rot, xfer, bus, lat;
    std::string how;
    if (!parseU64Field(line, "t", t) ||
        !parseU64Field(line, "disk", disk) ||
        !parseU64Field(line, "lba", lba) ||
        !parseU64Field(line, "n", n) ||
        !parseU64Field(line, "w", w) ||
        !parseStringField(line, "how", how) ||
        !parseU64Field(line, "q", q) ||
        !parseU64Field(line, "seek", seek) ||
        !parseU64Field(line, "rot", rot) ||
        !parseU64Field(line, "xfer", xfer) ||
        !parseU64Field(line, "bus", bus) ||
        !parseU64Field(line, "lat", lat)) {
        return false;
    }
    if (w > 1)
        return false;
    if (how == "media")
        ev.outcome = TraceOutcome::Media;
    else if (how == "cache")
        ev.outcome = TraceOutcome::Cache;
    else if (how == "hdc")
        ev.outcome = TraceOutcome::Hdc;
    else
        return false;
    ev.completed = t;
    ev.disk = static_cast<std::uint32_t>(disk);
    ev.lba = lba;
    ev.blocks = static_cast<std::uint32_t>(n);
    ev.isWrite = w != 0;
    ev.queue = q;
    ev.seek = seek;
    ev.rotation = rot;
    ev.transfer = xfer;
    ev.bus = bus;
    ev.latency = lat;
    // Fault fields were added later; old traces simply lack them.
    std::uint64_t faults = 0, retries = 0, degraded = 0;
    parseU64Field(line, "faults", faults);
    parseU64Field(line, "retries", retries);
    if (parseU64Field(line, "degraded", degraded) && degraded > 1)
        return false;
    ev.faults = static_cast<std::uint32_t>(faults);
    ev.retries = static_cast<std::uint32_t>(retries);
    ev.degraded = degraded != 0;
    return true;
}

bool
readTraceFile(const std::string& path,
              std::vector<RequestTraceEvent>& out)
{
    std::ifstream in(path);
    if (!in) {
        warn("cannot open trace file %s", path.c_str());
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // '#' lines are the effective-config preamble and comments.
        if (line.empty() || line.front() == '#')
            continue;
        RequestTraceEvent ev;
        if (!parseTraceLine(line, ev)) {
            warn("%s:%zu: unparsable trace record", path.c_str(),
                 lineno);
            return false;
        }
        out.push_back(ev);
    }
    return true;
}

} // namespace dtsim
