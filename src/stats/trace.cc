#include "stats/trace.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <limits>

#include "sim/logging.hh"

namespace dtsim {

const char kBinaryTraceMarker[] = "#dtsim-binary-trace v1 record=64";

const char*
traceOutcomeName(TraceOutcome o)
{
    switch (o) {
      case TraceOutcome::Media: return "media";
      case TraceOutcome::Cache: return "cache";
      case TraceOutcome::Hdc: return "hdc";
    }
    panic("traceOutcomeName: bad outcome %d", static_cast<int>(o));
}

namespace {

std::uint32_t
sat32(std::uint64_t v)
{
    return v > std::numeric_limits<std::uint32_t>::max()
        ? std::numeric_limits<std::uint32_t>::max()
        : static_cast<std::uint32_t>(v);
}

std::uint16_t
sat16(std::uint64_t v)
{
    return v > std::numeric_limits<std::uint16_t>::max()
        ? std::numeric_limits<std::uint16_t>::max()
        : static_cast<std::uint16_t>(v);
}

/**
 * Format one record into `buf` in the JSONL trace format. Field
 * order, separators, and integer rendering are the stable schema
 * documented in docs/METRICS.md; jsonl-format traces are byte
 * identical to what DTSim wrote before sampled tracing existed.
 */
int
formatJsonl(const BinaryTraceRecord& rec, char* buf, std::size_t size)
{
    return std::snprintf(
        buf, size,
        "{\"t\":%" PRIu64 ",\"disk\":%" PRIu32 ",\"lba\":%" PRIu64
        ",\"n\":%" PRIu32 ",\"w\":%d,\"how\":\"%s\",\"q\":%" PRIu64
        ",\"seek\":%" PRIu64 ",\"rot\":%" PRIu64 ",\"xfer\":%" PRIu64
        ",\"bus\":%" PRIu64 ",\"lat\":%" PRIu64 ",\"faults\":%" PRIu32
        ",\"retries\":%" PRIu32 ",\"degraded\":%d}\n",
        rec.completed, static_cast<std::uint32_t>(rec.disk), rec.lba,
        rec.blocks, (rec.flags & kTraceFlagWrite) ? 1 : 0,
        traceOutcomeName(static_cast<TraceOutcome>(rec.outcome)),
        rec.queue, static_cast<std::uint64_t>(rec.seek),
        static_cast<std::uint64_t>(rec.rotation),
        static_cast<std::uint64_t>(rec.transfer),
        static_cast<std::uint64_t>(rec.bus), rec.latency,
        static_cast<std::uint32_t>(rec.faults),
        static_cast<std::uint32_t>(rec.retries),
        (rec.flags & kTraceFlagDegraded) ? 1 : 0);
}

} // namespace

BinaryTraceRecord
packTraceRecord(const RequestTraceEvent& ev)
{
    BinaryTraceRecord rec{};
    rec.completed = ev.completed;
    rec.lba = ev.lba;
    rec.latency = ev.latency;
    rec.queue = ev.queue;
    rec.seek = sat32(ev.seek);
    rec.rotation = sat32(ev.rotation);
    rec.transfer = sat32(ev.transfer);
    rec.bus = sat32(ev.bus);
    rec.blocks = ev.blocks;
    rec.disk = sat16(ev.disk);
    rec.flags = static_cast<std::uint8_t>(
        (ev.isWrite ? kTraceFlagWrite : 0) |
        (ev.degraded ? kTraceFlagDegraded : 0));
    rec.outcome = static_cast<std::uint8_t>(ev.outcome);
    rec.faults = sat16(ev.faults);
    rec.retries = sat16(ev.retries);
    rec.reserved = 0;
    return rec;
}

RequestTraceEvent
unpackTraceRecord(const BinaryTraceRecord& rec)
{
    RequestTraceEvent ev;
    ev.completed = rec.completed;
    ev.disk = rec.disk;
    ev.lba = rec.lba;
    ev.blocks = rec.blocks;
    ev.isWrite = (rec.flags & kTraceFlagWrite) != 0;
    ev.outcome = static_cast<TraceOutcome>(rec.outcome);
    ev.queue = rec.queue;
    ev.seek = rec.seek;
    ev.rotation = rec.rotation;
    ev.transfer = rec.transfer;
    ev.bus = rec.bus;
    ev.latency = rec.latency;
    ev.faults = rec.faults;
    ev.retries = rec.retries;
    ev.degraded = (rec.flags & kTraceFlagDegraded) != 0;
    return ev;
}

std::string
traceRecordToJsonl(const BinaryTraceRecord& rec)
{
    char buf[320];
    const int n = formatJsonl(rec, buf, sizeof(buf));
    if (n <= 0 || static_cast<std::size_t>(n) >= sizeof(buf))
        panic("trace record formatting overflowed");
    return std::string(buf, static_cast<std::size_t>(n));
}

void
RequestTracer::open(const std::string& path, const TraceConfig& cfg)
{
    if (!compiledIn())
        fatal("tracing requested but DTSIM_TRACE was OFF at build time");
    if (cfg.sample < 0.0 || cfg.sample > 1.0)
        fatal("trace.sample must be in [0, 1], got %g", cfg.sample);
    close();
    out_ = std::fopen(path.c_str(), "wb");
    if (!out_)
        fatal("cannot open trace file %s for writing", path.c_str());
    cfg_ = cfg;
    sampleAll_ = cfg.sample >= 1.0;
    sampleNone_ = cfg.sample <= 0.0;
    rng_ = Rng(cfg.seed);
    records_ = 0;
    sampledOut_ = 0;
    droppedFinal_ = 0;
    markerWritten_ = false;
    const std::uint64_t capacity =
        cfg.bufferRecords ? cfg.bufferRecords : 65536;
    ring_ = std::make_unique<TraceRing>(
        static_cast<std::size_t>(capacity));
    // Wake the parked writer once this many records are queued: a
    // write batch when the ring is big enough, half the ring when it
    // is not (so small test rings still drain before they overflow).
    wakeBatch_ = std::min<std::size_t>(256, ring_->capacity() / 2);
    if (wakeBatch_ == 0)
        wakeBatch_ = 1;
    stop_.store(false, std::memory_order_relaxed);
    parked_.store(false, std::memory_order_relaxed);
    writer_ = std::thread([this] { writerLoop(); });
}

void
RequestTracer::close()
{
    if (!out_)
        return;
    stop_.store(true, std::memory_order_release);
    // The writer may be parked with sub-batch records still queued:
    // wake it unconditionally so it sees stop_, drains, and exits.
    parked_.store(false, std::memory_order_release);
    parked_.notify_one();
    writer_.join();
    // An empty binary trace still needs its marker so readers can
    // identify the format.
    if (cfg_.format == TraceFormat::Binary && !markerWritten_)
        writeBinaryMarker();
    droppedFinal_ = ring_->dropped();
    ring_.reset();
    std::fclose(out_);
    out_ = nullptr;
}

std::uint64_t
RequestTracer::dropped() const
{
    // Before close() the producer-owned ring counter may lag; after
    // close() the captured value is exact.
    return ring_ ? ring_->dropped() : droppedFinal_;
}

void
RequestTracer::writePreamble(const std::string& text)
{
    if (!out_ || text.empty())
        return;
    if (text.front() != '#')
        panic("trace preamble must be '#' comment lines");
    std::fwrite(text.data(), 1, text.size(), out_);
    if (text.back() != '\n')
        std::fputc('\n', out_);
}

void
RequestTracer::enqueueRecord(const RequestTraceEvent& ev)
{
    // push() never blocks: a full ring drops the record (counted by
    // the ring) instead of stalling the simulation thread.
    if (ring_->push(packTraceRecord(ev)))
        ++records_;
    // The fence pairs with the one the writer issues between setting
    // parked_ and rechecking the ring (Dekker pattern): either we see
    // parked_ == true here, or the writer sees this push in its
    // recheck — a record can never be stranded behind a parked
    // writer. Waking only at wakeBatch_ keeps wakeups (and their
    // context switches) amortized over whole write batches.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_relaxed) &&
        ring_->size() >= wakeBatch_)
        wakeWriter();
}

void
RequestTracer::wakeWriter()
{
    parked_.store(false, std::memory_order_release);
    parked_.notify_one();
}

void
RequestTracer::writeBinaryMarker()
{
    std::fwrite(kBinaryTraceMarker, 1, std::strlen(kBinaryTraceMarker),
                out_);
    std::fputc('\n', out_);
    markerWritten_ = true;
}

void
RequestTracer::writeBatch(const BinaryTraceRecord* recs, std::size_t n)
{
    if (cfg_.format == TraceFormat::Binary) {
        if (!markerWritten_)
            writeBinaryMarker();
        std::fwrite(recs, sizeof(BinaryTraceRecord), n, out_);
        return;
    }
    char buf[320];
    for (std::size_t i = 0; i < n; ++i) {
        const int len = formatJsonl(recs[i], buf, sizeof(buf));
        if (len <= 0 || static_cast<std::size_t>(len) >= sizeof(buf))
            panic("trace record formatting overflowed");
        std::fwrite(buf, 1, static_cast<std::size_t>(len), out_);
    }
}

void
RequestTracer::writerLoop()
{
    BinaryTraceRecord batch[256];
    constexpr std::size_t kBatch = sizeof(batch) / sizeof(batch[0]);
    for (;;) {
        const std::size_t n = ring_->pop(batch, kBatch);
        if (n) {
            writeBatch(batch, n);
            continue;
        }
        if (stop_.load(std::memory_order_acquire)) {
            // The acquire synchronizes with the producer's release
            // store in close(), so every record pushed before the
            // stop request is now visible: drain and exit.
            std::size_t m;
            while ((m = ring_->pop(batch, kBatch)) != 0)
                writeBatch(batch, m);
            return;
        }
        // Ring drained: park until the producer accumulates a wake
        // batch or close() raises stop_. The fence mirrors the
        // producer's (enqueueRecord) so a push between our park and
        // the recheck below is always caught by one side. wait() can
        // return spuriously with parked_ still true; the loop simply
        // comes back around, re-parks, and waits again.
        parked_.store(true, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (ring_->size() != 0 ||
            stop_.load(std::memory_order_acquire)) {
            parked_.store(false, std::memory_order_relaxed);
            continue;
        }
        parked_.wait(true, std::memory_order_acquire);
    }
}

namespace {

/**
 * Find `"key":` in `line` and parse the unsigned integer after it.
 * Returns false if the key is absent or not followed by digits.
 */
bool
parseU64Field(const std::string& line, const char* key,
              std::uint64_t& value)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t i = pos + needle.size();
    if (i >= line.size() || !std::isdigit(static_cast<unsigned char>(line[i])))
        return false;
    std::uint64_t v = 0;
    for (; i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i])); ++i)
        v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    value = v;
    return true;
}

/** Parse the quoted string value of `"key":"..."`. */
bool
parseStringField(const std::string& line, const char* key,
                 std::string& value)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const std::size_t start = pos + needle.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    value = line.substr(start, end - start);
    return true;
}

} // namespace

bool
parseTraceLine(const std::string& line, RequestTraceEvent& ev)
{
    std::uint64_t t, disk, lba, n, w, q, seek, rot, xfer, bus, lat;
    std::string how;
    if (!parseU64Field(line, "t", t) ||
        !parseU64Field(line, "disk", disk) ||
        !parseU64Field(line, "lba", lba) ||
        !parseU64Field(line, "n", n) ||
        !parseU64Field(line, "w", w) ||
        !parseStringField(line, "how", how) ||
        !parseU64Field(line, "q", q) ||
        !parseU64Field(line, "seek", seek) ||
        !parseU64Field(line, "rot", rot) ||
        !parseU64Field(line, "xfer", xfer) ||
        !parseU64Field(line, "bus", bus) ||
        !parseU64Field(line, "lat", lat)) {
        return false;
    }
    if (w > 1)
        return false;
    if (how == "media")
        ev.outcome = TraceOutcome::Media;
    else if (how == "cache")
        ev.outcome = TraceOutcome::Cache;
    else if (how == "hdc")
        ev.outcome = TraceOutcome::Hdc;
    else
        return false;
    ev.completed = t;
    ev.disk = static_cast<std::uint32_t>(disk);
    ev.lba = lba;
    ev.blocks = static_cast<std::uint32_t>(n);
    ev.isWrite = w != 0;
    ev.queue = q;
    ev.seek = seek;
    ev.rotation = rot;
    ev.transfer = xfer;
    ev.bus = bus;
    ev.latency = lat;
    // Fault fields were added later; old traces simply lack them.
    std::uint64_t faults = 0, retries = 0, degraded = 0;
    parseU64Field(line, "faults", faults);
    parseU64Field(line, "retries", retries);
    if (parseU64Field(line, "degraded", degraded) && degraded > 1)
        return false;
    ev.faults = static_cast<std::uint32_t>(faults);
    ev.retries = static_cast<std::uint32_t>(retries);
    ev.degraded = degraded != 0;
    return true;
}

bool
readTraceFile(const std::string& path,
              std::vector<RequestTraceEvent>& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("cannot open trace file %s", path.c_str());
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line == kBinaryTraceMarker) {
            // Everything after the marker line is raw 64-byte
            // records; the stream is positioned right past its '\n'.
            BinaryTraceRecord rec;
            while (in.read(reinterpret_cast<char*>(&rec), sizeof(rec))) {
                if (rec.outcome >
                    static_cast<std::uint8_t>(TraceOutcome::Hdc)) {
                    warn("%s: bad outcome %u in binary record %zu",
                         path.c_str(),
                         static_cast<unsigned>(rec.outcome),
                         out.size());
                    return false;
                }
                out.push_back(unpackTraceRecord(rec));
            }
            if (in.gcount() != 0) {
                warn("%s: truncated binary trace record at the end "
                     "(%zd bytes)", path.c_str(),
                     static_cast<std::ptrdiff_t>(in.gcount()));
                return false;
            }
            return true;
        }
        // '#' lines are the effective-config preamble and comments.
        if (line.empty() || line.front() == '#')
            continue;
        RequestTraceEvent ev;
        if (!parseTraceLine(line, ev)) {
            warn("%s:%zu: unparsable trace record", path.c_str(),
                 lineno);
            return false;
        }
        out.push_back(ev);
    }
    return true;
}

} // namespace dtsim
