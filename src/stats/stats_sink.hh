/**
 * @file
 * StatsSink: one destination descriptor for every stats text output.
 *
 * Runner options used to carry a file path *and* an optional ostream
 * pointer, and every writer (final dump, periodic snapshots, fault
 * snapshots, tests) special-cased the pair. A StatsSink is a small
 * copyable value naming exactly one destination -- a file, a borrowed
 * ostream, or nothing -- and open() hands back the single Writer all
 * of them share.
 */

#ifndef DTSIM_STATS_STATS_SINK_HH
#define DTSIM_STATS_STATS_SINK_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "sim/ticks.hh"

namespace dtsim {

/** Where stats text goes: a file, a borrowed stream, or nowhere. */
class StatsSink
{
  public:
    /** Disabled sink: open() yields a Writer that tests false. */
    StatsSink() = default;

    /**
     * Sink writing to `path`; an empty path means disabled, so
     * config fields can be forwarded unconditionally.
     */
    static StatsSink
    file(std::string path)
    {
        StatsSink s;
        s.path_ = std::move(path);
        return s;
    }

    /** Sink borrowing `os`; the stream must outlive every Writer. */
    static StatsSink
    stream(std::ostream& os)
    {
        StatsSink s;
        s.os_ = &os;
        return s;
    }

    /** True when output is wanted (file path set or stream bound). */
    bool
    enabled() const
    {
        return os_ != nullptr || !path_.empty();
    }

    /** The file path ("" for stream/null sinks); for reporting. */
    const std::string&
    path() const
    {
        return path_;
    }

    /**
     * An open destination. Move-only: owns the ofstream for file
     * sinks, borrows the stream otherwise. All writers obtained from
     * one sink append to the same logical output; open a file sink
     * once per run and reuse the Writer for every section.
     */
    class Writer
    {
      public:
        Writer() = default;
        Writer(Writer&&) = default;
        Writer& operator=(Writer&&) = default;

        /** False for a disabled sink: skip the output section. */
        explicit operator bool() const { return os_ != nullptr; }

        /** The destination; only valid when the Writer tests true. */
        std::ostream&
        os()
        {
            return *os_;
        }

      private:
        friend class StatsSink;
        std::unique_ptr<std::ofstream> owned_;
        std::ostream* os_ = nullptr;
    };

    /**
     * Open the destination. `what` names the output in the fatal()
     * raised when a file sink cannot be created.
     */
    Writer open(const char* what) const;

  private:
    std::string path_;
    std::ostream* os_ = nullptr;
};

/**
 * Live stat streaming knobs (the stats.* config group): periodically
 * append a framed incremental StatGroup snapshot to a file or FIFO so
 * a running simulation can be watched with `tail -f`. Frames are
 * emitted from the simulation timeline in serial runs and at window
 * barriers in sharded runs; the stream is volatile output (frame
 * cadence may differ between kernels) and never part of the
 * deterministic dump surface. See docs/OBSERVABILITY.md for the frame
 * format.
 */
struct StatsStreamConfig
{
    /** Destination file/FIFO ("" = streaming off). */
    std::string path;

    /**
     * Ticks of simulated time between frames. 0 inherits
     * run.stats_interval_ticks; one of the two must be set when a
     * stream path is configured.
     */
    Tick intervalTicks = 0;

    bool operator==(const StatsStreamConfig&) const = default;

    bool enabled() const { return !path.empty(); }
};

} // namespace dtsim

#endif // DTSIM_STATS_STATS_SINK_HH
