#include "stats/stats.hh"

#include <cmath>
#include <iomanip>

#include "sim/logging.hh"

namespace dtsim {
namespace stats {

StatBase::StatBase(StatGroup& parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    parent.addStat(this);
}

void
Scalar::print(std::ostream& os, const std::string& prefix) const
{
    os << prefix << name() << " " << value_
       << " # " << desc() << "\n";
}

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    const double delta = v - meanAcc_;
    meanAcc_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - meanAcc_);
}

double
Distribution::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    meanAcc_ = 0.0;
    m2_ = 0.0;
}

void
Distribution::print(std::ostream& os, const std::string& prefix) const
{
    os << prefix << name() << ".count " << count_
       << " # " << desc() << "\n";
    os << prefix << name() << ".mean " << mean() << "\n";
    os << prefix << name() << ".min " << minValue() << "\n";
    os << prefix << name() << ".max " << maxValue() << "\n";
    os << prefix << name() << ".stddev " << stddev() << "\n";
}

Histogram::Histogram(StatGroup& parent, std::string name,
                     std::string desc, double lo, double hi,
                     std::size_t buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    if (!(lo < hi) || buckets == 0)
        fatal("Histogram %s: invalid range or bucket count",
              this->name().c_str());
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    count_ += weight;
    if (v < lo_) {
        underflow_ += weight;
        return;
    }
    if (v >= hi_) {
        overflow_ += weight;
        return;
    }
    const double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(buckets_.size()));
    idx = std::min(idx, buckets_.size() - 1);
    buckets_[idx] += weight;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
}

void
Histogram::print(std::ostream& os, const std::string& prefix) const
{
    os << prefix << name() << ".count " << count_
       << " # " << desc() << "\n";
    const double width =
        (hi_ - lo_) / static_cast<double>(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << prefix << name() << ".bucket["
           << lo_ + width * static_cast<double>(i) << ","
           << lo_ + width * static_cast<double>(i + 1) << ") "
           << buckets_[i] << "\n";
    }
    if (underflow_)
        os << prefix << name() << ".underflow " << underflow_ << "\n";
    if (overflow_)
        os << prefix << name() << ".overflow " << overflow_ << "\n";
}

StatGroup::StatGroup(std::string name)
    : name_(std::move(name))
{
}

StatGroup::StatGroup(StatGroup& parent, std::string name)
    : name_(std::move(name))
{
    parent.addChild(this);
}

StatGroup&
StatGroup::makeGroup(std::string name)
{
    auto group = std::make_unique<StatGroup>(*this, std::move(name));
    StatGroup& ref = *group;
    ownedChildren_.push_back(std::move(group));
    return ref;
}

void
StatGroup::resetAll()
{
    for (StatBase* s : stats_)
        s->reset();
    for (StatGroup* g : children_)
        g->resetAll();
}

void
StatGroup::print(std::ostream& os, const std::string& prefix) const
{
    const std::string p =
        prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const StatBase* s : stats_)
        s->print(os, p);
    for (const StatGroup* g : children_)
        g->print(os, p);
}

} // namespace stats
} // namespace dtsim
