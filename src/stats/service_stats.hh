/**
 * @file
 * Per-request service-time histograms.
 *
 * One ServiceStats instance is shared by every disk controller of a
 * simulated system: each completed host request contributes one sample
 * per component (queue, seek, rotation, transfer, bus) plus its
 * end-to-end latency, and each media enqueue samples the scheduler
 * queue depth. The owner (core/runner) dumps the group as part of
 * --stats-out.
 */

#ifndef DTSIM_STATS_SERVICE_STATS_HH
#define DTSIM_STATS_SERVICE_STATS_HH

#include "stats/stats.hh"

namespace dtsim {
namespace stats {

/** Histogram bundle for the per-request service-time breakdown. */
class ServiceStats
{
  public:
    /** Creates a "service" child group under `parent`. */
    explicit ServiceStats(StatGroup& parent);

    StatGroup group;

    Histogram latencyMs;   ///< submit-to-complete latency
    Histogram queueMs;     ///< scheduler queue wait
    Histogram seekMs;      ///< seek + settle
    Histogram rotationMs;  ///< rotational positioning
    Histogram transferMs;  ///< media transfer
    Histogram busMs;       ///< SCSI bus transfer

    Distribution queueDepth;  ///< depth seen at each media enqueue
};

} // namespace stats
} // namespace dtsim

#endif // DTSIM_STATS_SERVICE_STATS_HH
