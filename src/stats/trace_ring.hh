/**
 * @file
 * Fixed-size binary trace records and the single-producer /
 * single-consumer ring that carries them off the simulation thread.
 *
 * The sampled tracer (stats/trace.hh) packs each accepted
 * RequestTraceEvent into a 64-byte BinaryTraceRecord and push()es it
 * into a TraceRing; a background writer thread pop()s batches and
 * serializes them (raw records or JSONL) so no file I/O ever happens
 * on the simulation thread. push() never blocks: when the consumer
 * falls behind and the ring fills, the record is counted as dropped
 * and the simulation proceeds at full speed.
 *
 * Concurrency contract: exactly one producer thread (the simulation
 * host context) and one consumer thread (the tracer's writer). The
 * ring is a power-of-two slot array indexed by free-running head/tail
 * counters; the producer releases a slot by storing tail_, the
 * consumer acquires it by loading tail_, and vice versa for head_ —
 * the classic SPSC protocol, no locks, no CAS.
 */

#ifndef DTSIM_STATS_TRACE_RING_HH
#define DTSIM_STATS_TRACE_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtsim {

/**
 * One traced request as stored on disk in binary format: 64 bytes,
 * little-endian, field order below (see docs/OBSERVABILITY.md for the
 * authoritative field table). Tick-valued fields that can exceed 4.29
 * seconds (completion tick, latency, queue wait) are 64-bit; the
 * per-component service times (seek, rotation, transfer, bus) are
 * 32-bit — they are bounded by single-access mechanics, orders of
 * magnitude under the 4.29 s limit — and saturate rather than wrap if
 * an exotic configuration ever exceeds them.
 */
struct BinaryTraceRecord
{
    std::uint64_t completed;   ///< completion tick ("t")
    std::uint64_t lba;         ///< first block number
    std::uint64_t latency;     ///< submit-to-complete ticks
    std::uint64_t queue;       ///< scheduler queue wait ticks
    std::uint32_t seek;        ///< seek + settle ticks (saturating)
    std::uint32_t rotation;    ///< rotational delay ticks (saturating)
    std::uint32_t transfer;    ///< media transfer ticks (saturating)
    std::uint32_t bus;         ///< SCSI bus ticks (saturating)
    std::uint32_t blocks;      ///< request length in blocks
    std::uint16_t disk;        ///< physical disk id
    std::uint8_t flags;        ///< bit 0 = write, bit 1 = degraded
    std::uint8_t outcome;      ///< TraceOutcome as an integer
    std::uint16_t faults;      ///< failed media attempts (saturating)
    std::uint16_t retries;     ///< media retries (saturating)
    std::uint32_t reserved;    ///< zero; room for future fields
};

static_assert(sizeof(BinaryTraceRecord) == 64,
              "binary trace records are a stable 64-byte format");

/** BinaryTraceRecord::flags bits. */
enum : std::uint8_t {
    kTraceFlagWrite = 1u << 0,
    kTraceFlagDegraded = 1u << 1,
};

/**
 * Lock-free SPSC ring of BinaryTraceRecords. Capacity is rounded up
 * to a power of two. The producer-side drop counter is plain (only
 * the producer writes it); read it after the producer is done, or
 * accept a possibly-stale value.
 */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    TraceRing(const TraceRing&) = delete;
    TraceRing& operator=(const TraceRing&) = delete;

    std::size_t capacity() const { return buf_.size(); }

    /**
     * Producer: enqueue one record. Returns false — and counts the
     * record as dropped — when the ring is full. Never blocks.
     */
    bool
    push(const BinaryTraceRecord& rec)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head >= buf_.size()) {
            ++dropped_;
            return false;
        }
        buf_[tail & mask_] = rec;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer: dequeue up to `max` records into `out`. Returns the
     * number actually copied (0 when the ring is empty).
     */
    std::size_t
    pop(BinaryTraceRecord* out, std::size_t max)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        std::size_t n = tail - head;
        if (n > max)
            n = max;
        for (std::size_t i = 0; i < n; ++i)
            out[i] = buf_[(head + i) & mask_];
        head_.store(head + n, std::memory_order_release);
        return n;
    }

    /**
     * Records currently queued. Exact from the producer thread;
     * from any other thread a snapshot that may lag either cursor.
     */
    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire);
    }

    /** Records rejected by push() because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

  private:
    std::vector<BinaryTraceRecord> buf_;
    std::size_t mask_ = 0;
    std::atomic<std::size_t> head_{0};  ///< consumer cursor
    std::atomic<std::size_t> tail_{0};  ///< producer cursor
    std::uint64_t dropped_ = 0;         ///< producer-owned
};

} // namespace dtsim

#endif // DTSIM_STATS_TRACE_RING_HH
