#include "stats/stats_sink.hh"

#include "sim/logging.hh"

namespace dtsim {

StatsSink::Writer
StatsSink::open(const char* what) const
{
    Writer w;
    if (os_) {
        w.os_ = os_;
        return w;
    }
    if (path_.empty())
        return w;
    w.owned_ = std::make_unique<std::ofstream>(path_);
    if (!*w.owned_)
        fatal("%s: cannot write stats file '%s'", what,
              path_.c_str());
    w.os_ = w.owned_.get();
    return w;
}

} // namespace dtsim
