/**
 * @file
 * A small statistics package in the spirit of gem5's stats.
 *
 * Stats register themselves with a StatGroup; groups can be nested and
 * dumped as aligned text or CSV. Only the stat kinds the simulator
 * needs are provided: scalar counters, averaged distributions, and
 * fixed-bucket histograms.
 */

#ifndef DTSIM_STATS_STATS_HH
#define DTSIM_STATS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dtsim {
namespace stats {

class StatGroup;

/** Base class for all statistics; carries name and description. */
class StatBase
{
  public:
    StatBase(StatGroup& parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase&) = delete;
    StatBase& operator=(const StatBase&) = delete;

    const std::string& name() const { return name_; }
    const std::string& desc() const { return desc_; }

    /** Reset the stat to its initial state. */
    virtual void reset() = 0;

    /** Print "name value # desc" lines under the given prefix. */
    virtual void print(std::ostream& os,
                       const std::string& prefix) const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically updated scalar (counter or gauge). */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup& parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    Scalar& operator++() { ++value_; return *this; }
    Scalar& operator+=(double v) { value_ += v; return *this; }
    Scalar& operator-=(double v) { value_ -= v; return *this; }
    void set(double v) { value_ = v; }

    double value() const { return value_; }

    void reset() override { value_ = 0.0; }
    void print(std::ostream& os,
               const std::string& prefix) const override;

  private:
    double value_ = 0.0;
};

/**
 * Running distribution: tracks count, sum, min, max, and variance
 * (Welford's algorithm) of sampled values.
 */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup& parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;

    void reset() override;
    void print(std::ostream& os,
               const std::string& prefix) const override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double meanAcc_ = 0.0;
    double m2_ = 0.0;
};

/** Fixed-width-bucket histogram over [lo, hi) with under/overflow. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup& parent, std::string name, std::string desc,
              double lo, double hi, std::size_t buckets);

    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset() override;
    void print(std::ostream& os,
               const std::string& prefix) const override;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * A named collection of stats and child groups. The root group of a
 * simulation owns the full hierarchy for reporting.
 */
class StatGroup
{
  public:
    /** Construct a root group. */
    explicit StatGroup(std::string name);

    /** Construct a child group attached to `parent`. */
    StatGroup(StatGroup& parent, std::string name);

    StatGroup(const StatGroup&) = delete;
    StatGroup& operator=(const StatGroup&) = delete;

    const std::string& name() const { return name_; }

    /** Reset every stat in this group and all children. */
    void resetAll();

    /** Dump "prefix.name value # desc" lines for the whole subtree. */
    void print(std::ostream& os, const std::string& prefix = "") const;

    /**
     * Construct a stat of type T owned by this group. Useful when a
     * stat tree is assembled dynamically (e.g. a snapshot report built
     * per disk): the group keeps the object alive until it is
     * destroyed, so callers need no separate storage.
     */
    template <typename T, typename... Args>
    T&
    make(Args&&... args)
    {
        auto stat = std::make_unique<T>(*this,
                                        std::forward<Args>(args)...);
        T& ref = *stat;
        owned_.push_back(std::move(stat));
        return ref;
    }

    /** Construct a child group owned by this group. */
    StatGroup& makeGroup(std::string name);

  private:
    friend class StatBase;

    void addStat(StatBase* s) { stats_.push_back(s); }
    void addChild(StatGroup* g) { children_.push_back(g); }

    std::string name_;
    std::vector<StatBase*> stats_;
    std::vector<StatGroup*> children_;
    std::vector<std::unique_ptr<StatBase>> owned_;
    std::vector<std::unique_ptr<StatGroup>> ownedChildren_;
};

} // namespace stats
} // namespace dtsim

#endif // DTSIM_STATS_STATS_HH
