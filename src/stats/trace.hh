/**
 * @file
 * Per-request JSONL tracing.
 *
 * RequestTracer emits one JSON record per completed disk-level I/O:
 * completion tick, disk, starting LBA, block count, direction, how the
 * request was served (media / controller cache / HDC), and the service
 * time breakdown (queue, seek, rotation, transfer, bus, total latency),
 * all in ticks (nanoseconds).
 *
 * The fast path is built for near-zero overhead when tracing is off:
 * record() is an inline null check (and compiles away entirely when the
 * CMake option DTSIM_TRACE is OFF, which defines DTSIM_TRACE_ENABLED=0),
 * and an enabled tracer formats into a stack buffer so no allocation
 * happens per record.
 *
 * The reader side (parseTraceLine / readTraceFile) is always compiled
 * so tools and tests can consume traces regardless of the toggle.
 */

#ifndef DTSIM_STATS_TRACE_HH
#define DTSIM_STATS_TRACE_HH

// Set by CMake from the DTSIM_TRACE option; default on for plain
// inclusion outside the build system.
#ifndef DTSIM_TRACE_ENABLED
#define DTSIM_TRACE_ENABLED 1
#endif

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dtsim {

/** How a traced request was ultimately served. */
enum class TraceOutcome : std::uint8_t {
    Media,  ///< at least one block required a media access
    Cache,  ///< served entirely from the controller read cache
    Hdc,    ///< served/absorbed entirely by the hot-data cache
};

/** JSON value of the "how" field for an outcome. */
const char* traceOutcomeName(TraceOutcome o);

/** One completed request, as written to / parsed from a trace. */
struct RequestTraceEvent
{
    Tick completed = 0;          ///< completion tick ("t")
    std::uint32_t disk = 0;      ///< physical disk id ("disk")
    std::uint64_t lba = 0;       ///< first block number ("lba")
    std::uint32_t blocks = 0;    ///< request length in blocks ("n")
    bool isWrite = false;        ///< direction ("w": 0/1)
    TraceOutcome outcome = TraceOutcome::Media; ///< ("how")
    Tick queue = 0;              ///< scheduler queue wait ("q")
    Tick seek = 0;               ///< seek + settle time ("seek")
    Tick rotation = 0;           ///< rotational delay ("rot")
    Tick transfer = 0;           ///< media transfer time ("xfer")
    Tick bus = 0;                ///< SCSI bus transfer time ("bus")
    Tick latency = 0;            ///< submit-to-complete time ("lat")
    std::uint32_t faults = 0;    ///< failed media attempts ("faults")
    std::uint32_t retries = 0;   ///< media retries ("retries")
    bool degraded = false;       ///< served off a dead replica's
                                 ///< mirror ("degraded": 0/1)
};

/**
 * Writes request records to a JSONL file. A default-constructed tracer
 * is disabled; open() arms it. Not thread-safe: each simulated system
 * owns its own tracer (sweep jobs each run in one thread).
 */
class RequestTracer
{
  public:
    RequestTracer() = default;
    ~RequestTracer() { close(); }

    RequestTracer(const RequestTracer&) = delete;
    RequestTracer& operator=(const RequestTracer&) = delete;

    /** Whether tracing support was compiled in (DTSIM_TRACE). */
    static constexpr bool compiledIn() { return DTSIM_TRACE_ENABLED != 0; }

    /**
     * Start writing to `path` (truncates). fatal() if tracing was
     * compiled out or the file cannot be opened.
     */
    void open(const std::string& path);

    /** Flush and close the output file; the tracer becomes disabled. */
    void close();

    /**
     * Write preamble text (e.g. the effective-config header) ahead of
     * the records. Every line must start with '#'; the reader side
     * and trace_summary skip such lines. No-op when disabled.
     */
    void writePreamble(const std::string& text);

    /** True when records are being written. */
    bool
    enabled() const
    {
#if DTSIM_TRACE_ENABLED
        return out_ != nullptr;
#else
        return false;
#endif
    }

    /** Record one completed request; no-op when disabled. */
    void
    record(const RequestTraceEvent& ev)
    {
#if DTSIM_TRACE_ENABLED
        if (out_)
            writeRecord(ev);
#else
        (void)ev;
#endif
    }

    /** Number of records written since open(). */
    std::uint64_t records() const { return records_; }

  private:
    void writeRecord(const RequestTraceEvent& ev);

    std::FILE* out_ = nullptr;
    std::uint64_t records_ = 0;
};

/**
 * Parse one JSONL trace line into `ev`. Returns false (leaving `ev`
 * unspecified) if any required field is missing or malformed.
 */
bool parseTraceLine(const std::string& line, RequestTraceEvent& ev);

/**
 * Read a whole trace file. Returns false and warns on open failure or
 * on the first unparsable line. Blank lines are ignored.
 */
bool readTraceFile(const std::string& path,
                   std::vector<RequestTraceEvent>& out);

} // namespace dtsim

#endif // DTSIM_STATS_TRACE_HH
