/**
 * @file
 * Runtime-sampled per-request tracing.
 *
 * RequestTracer emits one record per sampled completed disk-level I/O:
 * completion tick, disk, starting LBA, block count, direction, how the
 * request was served (media / controller cache / HDC), and the service
 * time breakdown (queue, seek, rotation, transfer, bus, total latency),
 * all in ticks (nanoseconds). Two on-disk formats share one preamble
 * convention ('#' comment lines carrying the effective config):
 *
 *  * binary (the default): fixed 64-byte little-endian records
 *    (stats/trace_ring.hh) after a "#dtsim-binary-trace" marker line —
 *    compact and cheap enough to leave on in production runs;
 *  * jsonl: the original one-JSON-object-per-line text format, byte
 *    identical to what pre-sampling DTSim wrote.
 *
 * The hot path is built to be left on: shouldRecord() runs the
 * per-request Bernoulli draw (`trace.sample`) against a dedicated
 * deterministic RNG stream (`trace.seed`), so the simulation RNGs are
 * never perturbed and the sampled set is reproducible — including
 * across serial and sharded kernels, because records are drawn in the
 * canonical host-context completion order. Accepted records are packed
 * into 64-byte BinaryTraceRecords and pushed through a lock-free SPSC
 * ring drained by a background writer thread; when the writer falls
 * behind and the ring fills, records are dropped and counted
 * (dropped()) rather than ever blocking the simulation thread. The
 * writer never polls — it parks in a futex-backed atomic wait and the
 * producer wakes it only when a batch of records has accumulated — so
 * an armed tracer costs the simulation nothing while idle, even on a
 * single-CPU host where the two threads share one core. With
 * the CMake option DTSIM_TRACE OFF (DTSIM_TRACE_ENABLED=0) the whole
 * facility still compiles away to nothing.
 *
 * The reader side (parseTraceLine / readTraceFile) is always compiled
 * so tools and tests can consume traces regardless of the toggle;
 * readTraceFile auto-detects the format from the marker line.
 */

#ifndef DTSIM_STATS_TRACE_HH
#define DTSIM_STATS_TRACE_HH

// Set by CMake from the DTSIM_TRACE option; default on for plain
// inclusion outside the build system.
#ifndef DTSIM_TRACE_ENABLED
#define DTSIM_TRACE_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/rng.hh"
#include "sim/ticks.hh"
#include "stats/trace_ring.hh"

namespace dtsim {

/** How a traced request was ultimately served. */
enum class TraceOutcome : std::uint8_t {
    Media,  ///< at least one block required a media access
    Cache,  ///< served entirely from the controller read cache
    Hdc,    ///< served/absorbed entirely by the hot-data cache
};

/** JSON value of the "how" field for an outcome. */
const char* traceOutcomeName(TraceOutcome o);

/** On-disk trace encoding (trace.format). */
enum class TraceFormat : std::uint8_t {
    Binary,  ///< 64-byte fixed records after a marker line
    Jsonl,   ///< one JSON object per line (the pre-sampling format)
};

/**
 * Runtime tracing knobs (the trace.* config group). The defaults
 * reproduce a full trace, so a bare `--trace FILE` records every
 * request exactly as before sampling existed.
 */
struct TraceConfig
{
    /**
     * Probability that a completed request is recorded, drawn per
     * request from a dedicated RNG stream. 1 = record everything
     * (and skip the draw entirely); 0 = record nothing.
     */
    double sample = 1.0;

    /** Seed of the sampling RNG stream (independent of run seeds). */
    std::uint64_t seed = 1;

    /** On-disk encoding of the records. */
    TraceFormat format = TraceFormat::Binary;

    /**
     * Ring capacity in records between the simulation thread and the
     * background writer (rounded up to a power of two). Larger rings
     * absorb longer writer stalls before dropping records.
     * Execution-only: never part of the effective-config header.
     */
    std::uint64_t bufferRecords = 65536;

    bool operator==(const TraceConfig&) const = default;

    /** True when any header-visible knob differs from its default
     * (bufferRecords is execution-only and deliberately excluded). */
    bool
    nonDefault() const
    {
        return sample != 1.0 || seed != 1 ||
            format != TraceFormat::Binary;
    }
};

/** One completed request, as written to / parsed from a trace. */
struct RequestTraceEvent
{
    Tick completed = 0;          ///< completion tick ("t")
    std::uint32_t disk = 0;      ///< physical disk id ("disk")
    std::uint64_t lba = 0;       ///< first block number ("lba")
    std::uint32_t blocks = 0;    ///< request length in blocks ("n")
    bool isWrite = false;        ///< direction ("w": 0/1)
    TraceOutcome outcome = TraceOutcome::Media; ///< ("how")
    Tick queue = 0;              ///< scheduler queue wait ("q")
    Tick seek = 0;               ///< seek + settle time ("seek")
    Tick rotation = 0;           ///< rotational delay ("rot")
    Tick transfer = 0;           ///< media transfer time ("xfer")
    Tick bus = 0;                ///< SCSI bus transfer time ("bus")
    Tick latency = 0;            ///< submit-to-complete time ("lat")
    std::uint32_t faults = 0;    ///< failed media attempts ("faults")
    std::uint32_t retries = 0;   ///< media retries ("retries")
    bool degraded = false;       ///< served off a dead replica's
                                 ///< mirror ("degraded": 0/1)
};

/** Pack an event into the 64-byte on-disk record (saturating the
 * narrow component fields). */
BinaryTraceRecord packTraceRecord(const RequestTraceEvent& ev);

/** Expand a 64-byte record back into an event. */
RequestTraceEvent unpackTraceRecord(const BinaryTraceRecord& rec);

/** Format one record as a JSONL line (exactly the bytes the jsonl
 * format writes, including the trailing newline). */
std::string traceRecordToJsonl(const BinaryTraceRecord& rec);

/**
 * Writes sampled request records to a trace file through a background
 * writer thread. A default-constructed tracer is disabled; open()
 * arms it and starts the writer. The recording side (shouldRecord /
 * record) must be driven by exactly one thread — the simulation host
 * context; sweep jobs each own their own tracer.
 */
class RequestTracer
{
  public:
    RequestTracer() = default;
    ~RequestTracer() { close(); }

    RequestTracer(const RequestTracer&) = delete;
    RequestTracer& operator=(const RequestTracer&) = delete;

    /** Whether tracing support was compiled in (DTSIM_TRACE). */
    static constexpr bool compiledIn() { return DTSIM_TRACE_ENABLED != 0; }

    /**
     * Start writing to `path` (truncates) with the given sampling /
     * format configuration, and start the background writer thread.
     * fatal() if tracing was compiled out or the file cannot be
     * opened.
     */
    void open(const std::string& path, const TraceConfig& cfg = {});

    /**
     * Stop the writer thread (draining every queued record), flush
     * and close the output file; the tracer becomes disabled. The
     * records()/sampledOut()/dropped() counters survive close() and
     * report the finished run.
     */
    void close();

    /**
     * Write preamble text (e.g. the effective-config header) ahead of
     * the records. Every line must start with '#'; the reader side
     * and trace_summary skip such lines. Must precede the first
     * record. No-op when disabled.
     */
    void writePreamble(const std::string& text);

    /** True when the tracer is armed (even at trace.sample = 0). */
    bool
    enabled() const
    {
#if DTSIM_TRACE_ENABLED
        return out_ != nullptr;
#else
        return false;
#endif
    }

    /**
     * Run the sampling draw for one completed request: true when the
     * caller should build the event and record() it. Call exactly
     * once per candidate — the draw advances the sampling stream, so
     * the call sequence defines the (reproducible) sampled set.
     * Always false when disabled.
     */
    bool
    shouldRecord()
    {
#if DTSIM_TRACE_ENABLED
        if (!out_)
            return false;
        if (sampleAll_)
            return true;
        // sample = 0 records nothing and, like sample = 1, leaves
        // the RNG stream untouched.
        if (sampleNone_ || !rng_.chance(cfg_.sample)) {
            ++sampledOut_;
            return false;
        }
        return true;
#else
        return false;
#endif
    }

    /**
     * Queue one request record for the writer thread; no-op when
     * disabled. Does not itself sample — pair with shouldRecord().
     */
    void
    record(const RequestTraceEvent& ev)
    {
#if DTSIM_TRACE_ENABLED
        if (out_)
            enqueueRecord(ev);
#else
        (void)ev;
#endif
    }

    /** Records accepted for writing since open() (every one of these
     * reaches the file; ring overflow is counted in dropped()). */
    std::uint64_t records() const { return records_; }

    /** Sampling candidates skipped by the trace.sample draw. */
    std::uint64_t sampledOut() const { return sampledOut_; }

    /** Records lost to ring overflow (writer thread fell behind).
     * Final after close(); timing-dependent, never deterministic. */
    std::uint64_t dropped() const;

  private:
    void enqueueRecord(const RequestTraceEvent& ev);
    void wakeWriter();
    void writerLoop();
    void writeBatch(const BinaryTraceRecord* recs, std::size_t n);
    void writeBinaryMarker();

    std::FILE* out_ = nullptr;
    TraceConfig cfg_;
    Rng rng_;                    ///< dedicated sampling stream
    bool sampleAll_ = true;      ///< sample >= 1: skip the draw
    bool sampleNone_ = false;    ///< sample <= 0: skip the draw
    std::uint64_t records_ = 0;
    std::uint64_t sampledOut_ = 0;
    std::uint64_t droppedFinal_ = 0;  ///< captured at close()
    std::unique_ptr<TraceRing> ring_;
    std::thread writer_;
    std::atomic<bool> stop_{false};

    /**
     * True while the writer thread is blocked in an atomic wait. The
     * writer never polls: once the ring drains it parks here and the
     * producer wakes it (wakeWriter) only when wakeBatch_ records
     * have accumulated, so an idle or lightly-sampled trace costs
     * zero context switches — essential on single-CPU hosts, where a
     * periodically polling writer steals timeslices from the
     * simulation thread itself. Records below the threshold sit in
     * the ring until the batch fills or close() drains everything.
     */
    std::atomic<bool> parked_{false};
    std::size_t wakeBatch_ = 1;  ///< ring fill that triggers a wake
    bool markerWritten_ = false; ///< writer thread / close() only
};

/**
 * The line that separates the '#' preamble from raw binary records in
 * a binary trace file (written with a trailing newline; the records
 * start at the byte after it).
 */
extern const char kBinaryTraceMarker[];

/**
 * Parse one JSONL trace line into `ev`. Returns false (leaving `ev`
 * unspecified) if any required field is missing or malformed.
 */
bool parseTraceLine(const std::string& line, RequestTraceEvent& ev);

/**
 * Read a whole trace file, auto-detecting binary vs JSONL from the
 * marker line. Returns false and warns on open failure, on the first
 * unparsable line, or on a truncated binary record. Blank lines are
 * ignored.
 */
bool readTraceFile(const std::string& path,
                   std::vector<RequestTraceEvent>& out);

} // namespace dtsim

#endif // DTSIM_STATS_TRACE_HH
