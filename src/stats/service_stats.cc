#include "stats/service_stats.hh"

namespace dtsim {
namespace stats {

ServiceStats::ServiceStats(StatGroup& parent)
    : group(parent, "service"),
      latencyMs(group, "latency_ms",
                "per-request completion latency (ms)", 0.0, 200.0, 40),
      queueMs(group, "queue_ms",
              "per-request scheduler queue wait (ms)", 0.0, 100.0, 40),
      seekMs(group, "seek_ms",
             "per-request seek + settle time (ms)", 0.0, 20.0, 40),
      rotationMs(group, "rotation_ms",
                 "per-request rotational delay (ms)", 0.0, 12.0, 40),
      transferMs(group, "transfer_ms",
                 "per-request media transfer time (ms)", 0.0, 20.0, 40),
      busMs(group, "bus_ms",
            "per-request SCSI bus transfer time (ms)", 0.0, 5.0, 40),
      queueDepth(group, "queue_depth",
                 "scheduler queue depth at each media enqueue")
{
}

} // namespace stats
} // namespace dtsim
