#include "cache/hdc_store.hh"

namespace dtsim {

HdcStore::HdcStore(std::uint64_t capacity_blocks)
    : capacity_(capacity_blocks)
{
}

bool
HdcStore::pin(BlockNum block)
{
    if (blocks_.size() >= capacity_) {
        ++counters_.pinFailures;
        return false;
    }
    if (!blocks_.emplace(block, false).second) {
        ++counters_.pinFailures;
        return false;
    }
    ++counters_.pins;
    return true;
}

bool
HdcStore::unpin(BlockNum block, bool* was_dirty)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return false;
    if (was_dirty)
        *was_dirty = it->second;
    if (it->second) {
        --dirty_;
        ++counters_.dirtyUnpins;
    }
    ++counters_.unpins;
    blocks_.erase(it);
    return true;
}

bool
HdcStore::contains(BlockNum block) const
{
    return blocks_.count(block) != 0;
}

std::uint64_t
HdcStore::prefixPinned(BlockNum start, std::uint64_t count) const
{
    std::uint64_t n = 0;
    while (n < count && contains(start + n))
        ++n;
    return n;
}

bool
HdcStore::allPinned(BlockNum start, std::uint64_t count) const
{
    return prefixPinned(start, count) == count;
}

bool
HdcStore::absorbWrite(BlockNum block)
{
    auto it = blocks_.find(block);
    if (it == blocks_.end())
        return false;
    if (!it->second) {
        it->second = true;
        ++dirty_;
    }
    ++counters_.absorbedWrites;
    return true;
}

std::vector<BlockNum>
HdcStore::flush()
{
    ++counters_.flushCalls;
    counters_.flushedBlocks += dirty_;
    std::vector<BlockNum> out;
    out.reserve(dirty_);
    for (auto& [block, is_dirty] : blocks_) {
        if (is_dirty) {
            out.push_back(block);
            is_dirty = false;
        }
    }
    dirty_ = 0;
    return out;
}

} // namespace dtsim
