#include "cache/hdc_store.hh"

namespace dtsim {

HdcStore::HdcStore(std::uint64_t capacity_blocks)
    : capacity_(capacity_blocks), blocks_(capacity_blocks)
{
}

bool
HdcStore::pin(BlockNum block)
{
    if (blocks_.size() >= capacity_) {
        ++counters_.pinFailures;
        return false;
    }
    if (!blocks_.insert(block, 0).second) {
        ++counters_.pinFailures;
        return false;
    }
    ++counters_.pins;
    return true;
}

bool
HdcStore::unpin(BlockNum block, bool* was_dirty)
{
    const std::uint8_t* d = blocks_.find(block);
    if (!d)
        return false;
    if (was_dirty)
        *was_dirty = *d != 0;
    if (*d) {
        --dirty_;
        ++counters_.dirtyUnpins;
    }
    ++counters_.unpins;
    blocks_.erase(block);
    return true;
}

bool
HdcStore::contains(BlockNum block) const
{
    return blocks_.contains(block);
}

std::uint64_t
HdcStore::prefixPinned(BlockNum start, std::uint64_t count) const
{
    std::uint64_t n = 0;
    while (n < count && contains(start + n))
        ++n;
    return n;
}

bool
HdcStore::allPinned(BlockNum start, std::uint64_t count) const
{
    return prefixPinned(start, count) == count;
}

bool
HdcStore::absorbWrite(BlockNum block)
{
    std::uint8_t* d = blocks_.find(block);
    if (!d)
        return false;
    if (!*d) {
        *d = 1;
        ++dirty_;
    }
    ++counters_.absorbedWrites;
    return true;
}

std::vector<BlockNum>
HdcStore::flush()
{
    ++counters_.flushCalls;
    counters_.flushedBlocks += dirty_;
    std::vector<BlockNum> out;
    out.reserve(dirty_);
    blocks_.forEach([&](std::uint64_t block, std::uint8_t& is_dirty) {
        if (is_dirty) {
            out.push_back(block);
            is_dirty = 0;
        }
    });
    dirty_ = 0;
    return out;
}

} // namespace dtsim
