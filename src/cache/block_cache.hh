/**
 * @file
 * The block-based controller cache organization introduced for FOR
 * (Section 4).
 *
 * Blocks are assigned to streams on demand from a pool of free 4 KB
 * blocks, so streams effectively get variable-size segments with
 * simple management. When the pool is exhausted, the paper's policy
 * replaces blocks MRU-first: controller caches have almost no temporal
 * locality, so a block the host has just consumed is the least likely
 * to be needed again. Blocks that were read ahead but not yet consumed
 * are protected until no consumed block remains (they then fall back
 * to FIFO order). A plain LRU mode is provided for ablation.
 *
 * Residency state lives in a pre-allocated slot slab (prev/next
 * indices + freelist) with an open-addressing block->slot table, so
 * the per-access path performs no heap allocation; the replacement
 * decisions are tick-identical to the previous std::list +
 * std::unordered_map implementation (tests/test_container_equiv.cc
 * drives both against each other).
 */

#ifndef DTSIM_CACHE_BLOCK_CACHE_HH
#define DTSIM_CACHE_BLOCK_CACHE_HH

#include <cstdint>

#include "cache/controller_cache.hh"
#include "sim/flat_table.hh"
#include "sim/slab_list.hh"

namespace dtsim {

/** Replacement policy for the block pool. */
enum class BlockPolicy { MRU, LRU };

const char* blockPolicyName(BlockPolicy p);

/** Block-pool controller cache. */
class BlockCache : public ControllerCache
{
  public:
    /**
     * @param capacity_blocks Pool size in 4 KB blocks.
     * @param policy Replacement policy (MRU per the paper).
     */
    explicit BlockCache(std::uint64_t capacity_blocks,
                        BlockPolicy policy = BlockPolicy::MRU);

    std::uint64_t lookupPrefix(BlockNum start,
                               std::uint64_t count) override;

    /**
     * Bulk lookupPrefix performs the per-block operation sequence
     * verbatim, so the blockwise probe is the same call.
     */
    std::uint64_t
    lookupPrefixBlockwise(BlockNum start, std::uint64_t count) override
    {
        return lookupPrefix(start, count);
    }

    bool contains(BlockNum block) const override;
    using ControllerCache::insertRun;
    void insertRun(BlockNum start, std::uint64_t count,
                   std::uint64_t spec_offset) override;
    void invalidateRange(BlockNum start, std::uint64_t count) override;

    std::uint64_t
    capacityBlocks() const override
    {
        return capacity_;
    }

    std::uint64_t
    usedBlocks() const override
    {
        return map_.size();
    }

    /** Single-block evictions performed so far. */
    std::uint64_t evictions() const { return evictions_; }

  private:
    /**
     * One resident block. `used` is true once the host has consumed
     * the block (it then lives on the used list, most recently
     * consumed at the front); unconsumed blocks live on the unused
     * list, oldest insertion at the front.
     */
    struct Entry
    {
        BlockNum block = 0;
        bool used = false;
        bool spec = false;  ///< read ahead speculatively, not consumed
    };

    using Ops = SlabListOps<Entry>;

    /** Evict one block according to the policy. */
    void evictOne();

    void eraseBlock(BlockNum block);

    /**
     * Debug-build structural invariants: every slot is either free or
     * on exactly one list, and the map indexes exactly the resident
     * set. Compiled out under NDEBUG.
     */
    void
    checkInvariants() const
    {
#ifndef NDEBUG
        // Free slots plus resident slots account for every slab slot,
        // so the container swap cannot silently leak capacity.
        assert(slab_.freeCount() + used_.size + unused_.size ==
               slab_.capacity());
        // The map indexes exactly the resident set.
        assert(map_.size() == used_.size + unused_.size);
#endif
    }

    std::uint64_t capacity_;
    BlockPolicy policy_;
    Slab<Entry> slab_;
    SlabList used_;     ///< Front = most recently consumed.
    SlabList unused_;   ///< Front = oldest insertion.
    FlatTable<std::uint32_t> map_;  ///< block -> slab slot
    std::uint64_t evictions_ = 0;
};

} // namespace dtsim

#endif // DTSIM_CACHE_BLOCK_CACHE_HH
