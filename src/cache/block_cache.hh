/**
 * @file
 * The block-based controller cache organization introduced for FOR
 * (Section 4).
 *
 * Blocks are assigned to streams on demand from a pool of free 4 KB
 * blocks, so streams effectively get variable-size segments with
 * simple management. When the pool is exhausted, the paper's policy
 * replaces blocks MRU-first: controller caches have almost no temporal
 * locality, so a block the host has just consumed is the least likely
 * to be needed again. Blocks that were read ahead but not yet consumed
 * are protected until no consumed block remains (they then fall back
 * to FIFO order). A plain LRU mode is provided for ablation.
 */

#ifndef DTSIM_CACHE_BLOCK_CACHE_HH
#define DTSIM_CACHE_BLOCK_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/controller_cache.hh"

namespace dtsim {

/** Replacement policy for the block pool. */
enum class BlockPolicy { MRU, LRU };

const char* blockPolicyName(BlockPolicy p);

/** Block-pool controller cache. */
class BlockCache : public ControllerCache
{
  public:
    /**
     * @param capacity_blocks Pool size in 4 KB blocks.
     * @param policy Replacement policy (MRU per the paper).
     */
    explicit BlockCache(std::uint64_t capacity_blocks,
                        BlockPolicy policy = BlockPolicy::MRU);

    std::uint64_t lookupPrefix(BlockNum start,
                               std::uint64_t count) override;
    bool contains(BlockNum block) const override;
    using ControllerCache::insertRun;
    void insertRun(BlockNum start, std::uint64_t count,
                   std::uint64_t spec_offset) override;
    void invalidateRange(BlockNum start, std::uint64_t count) override;

    std::uint64_t
    capacityBlocks() const override
    {
        return capacity_;
    }

    std::uint64_t
    usedBlocks() const override
    {
        return map_.size();
    }

    /** Single-block evictions performed so far. */
    std::uint64_t evictions() const { return evictions_; }

  private:
    /**
     * Residency lists. `used_` holds blocks the host has consumed,
     * most recently consumed at the front; `unused_` holds read-ahead
     * blocks not yet consumed, oldest at the front.
     */
    struct Node
    {
        BlockNum block;
        bool used;
        bool spec;  ///< read ahead speculatively, not yet consumed
    };

    using List = std::list<Node>;

    struct Where
    {
        List::iterator it;
        bool inUsed;
    };

    /** Evict one block according to the policy. */
    void evictOne();

    void eraseBlock(BlockNum block);

    std::uint64_t capacity_;
    BlockPolicy policy_;
    List used_;     ///< Front = most recently consumed.
    List unused_;   ///< Front = oldest insertion.
    std::unordered_map<BlockNum, Where> map_;
    std::uint64_t evictions_ = 0;
};

} // namespace dtsim

#endif // DTSIM_CACHE_BLOCK_CACHE_HH
