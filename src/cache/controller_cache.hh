/**
 * @file
 * Abstract interface of the read-ahead part of a disk controller
 * cache.
 *
 * Two concrete organizations exist: the conventional segment-based
 * cache (SegmentCache) and the block-based pool the paper introduces
 * for FOR (BlockCache). Both operate on 4 KB block numbers local to
 * one disk.
 */

#ifndef DTSIM_CACHE_CONTROLLER_CACHE_HH
#define DTSIM_CACHE_CONTROLLER_CACHE_HH

#include <cstdint>

#include "disk/geometry.hh"

namespace dtsim {

/**
 * Read-ahead accuracy accounting, maintained by every controller
 * cache. A block inserted beyond the demand portion of a media access
 * is *speculative*; it counts as used the first time the host consumes
 * it and as wasted if it is evicted or invalidated while still
 * unconsumed. used/inserted is the paper's read-ahead accuracy.
 */
struct RaCounters
{
    std::uint64_t specInserted = 0;  ///< speculative blocks cached
    std::uint64_t specUsed = 0;      ///< later consumed by the host
    std::uint64_t specWasted = 0;    ///< dropped without being used

    /** Fraction of speculative blocks the host eventually consumed. */
    double
    accuracy() const
    {
        return specInserted ? static_cast<double>(specUsed) /
                                  static_cast<double>(specInserted)
                            : 0.0;
    }
};

/**
 * Read-ahead cache interface.
 *
 * The controller looks up the *prefix* of a request that is cached
 * (sequential streams hit on read-ahead data in order), inserts the
 * contiguous runs it reads from the media, and invalidates or updates
 * ranges on writes.
 */
class ControllerCache
{
  public:
    virtual ~ControllerCache() = default;

    /**
     * Count how many leading blocks of [start, start+count) are
     * cached, marking them as used (served to the host).
     *
     * @return Length of the cached prefix, in blocks.
     */
    virtual std::uint64_t lookupPrefix(BlockNum start,
                                       std::uint64_t count) = 0;

    /**
     * Exactly equivalent to calling lookupPrefix(start + k, 1) for
     * k = 0, 1, ... while each call hits, but a single virtual call.
     * Caches whose bulk lookupPrefix already replays the per-block
     * operation sequence (BlockCache) override this with it; others
     * (SegmentCache, whose bulk path ticks the recency clock once
     * instead of per block) keep the loop.
     */
    virtual std::uint64_t
    lookupPrefixBlockwise(BlockNum start, std::uint64_t count)
    {
        std::uint64_t hits = 0;
        while (hits < count && lookupPrefix(start + hits, 1) == 1)
            ++hits;
        return hits;
    }

    /** True if a single block is present (no recency update). */
    virtual bool contains(BlockNum block) const = 0;

    /**
     * Insert a contiguous run just read from the media. Blocks at
     * offset >= `spec_offset` from `start` were read ahead
     * speculatively (not demanded by the host) and feed the
     * read-ahead accuracy counters.
     */
    virtual void insertRun(BlockNum start, std::uint64_t count,
                           std::uint64_t spec_offset) = 0;

    /** Insert a run that is entirely demand-fetched. */
    void insertRun(BlockNum start, std::uint64_t count)
    {
        insertRun(start, count, count);
    }

    /**
     * Drop any cached copies of [start, start+count); used when the
     * host overwrites blocks on the media.
     */
    virtual void invalidateRange(BlockNum start,
                                 std::uint64_t count) = 0;

    /** Capacity in blocks. */
    virtual std::uint64_t capacityBlocks() const = 0;

    /** Blocks currently held. */
    virtual std::uint64_t usedBlocks() const = 0;

    /** Read-ahead accuracy counters. */
    const RaCounters& raCounters() const { return ra_; }

  protected:
    RaCounters ra_;
};

} // namespace dtsim

#endif // DTSIM_CACHE_CONTROLLER_CACHE_HH
