/**
 * @file
 * Abstract interface of the read-ahead part of a disk controller
 * cache.
 *
 * Two concrete organizations exist: the conventional segment-based
 * cache (SegmentCache) and the block-based pool the paper introduces
 * for FOR (BlockCache). Both operate on 4 KB block numbers local to
 * one disk.
 */

#ifndef DTSIM_CACHE_CONTROLLER_CACHE_HH
#define DTSIM_CACHE_CONTROLLER_CACHE_HH

#include <cstdint>

#include "disk/geometry.hh"

namespace dtsim {

/**
 * Read-ahead cache interface.
 *
 * The controller looks up the *prefix* of a request that is cached
 * (sequential streams hit on read-ahead data in order), inserts the
 * contiguous runs it reads from the media, and invalidates or updates
 * ranges on writes.
 */
class ControllerCache
{
  public:
    virtual ~ControllerCache() = default;

    /**
     * Count how many leading blocks of [start, start+count) are
     * cached, marking them as used (served to the host).
     *
     * @return Length of the cached prefix, in blocks.
     */
    virtual std::uint64_t lookupPrefix(BlockNum start,
                                       std::uint64_t count) = 0;

    /** True if a single block is present (no recency update). */
    virtual bool contains(BlockNum block) const = 0;

    /** Insert a contiguous run just read from the media. */
    virtual void insertRun(BlockNum start, std::uint64_t count) = 0;

    /**
     * Drop any cached copies of [start, start+count); used when the
     * host overwrites blocks on the media.
     */
    virtual void invalidateRange(BlockNum start,
                                 std::uint64_t count) = 0;

    /** Capacity in blocks. */
    virtual std::uint64_t capacityBlocks() const = 0;

    /** Blocks currently held. */
    virtual std::uint64_t usedBlocks() const = 0;
};

} // namespace dtsim

#endif // DTSIM_CACHE_CONTROLLER_CACHE_HH
