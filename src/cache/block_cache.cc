#include "cache/block_cache.hh"

#include <cassert>

#include "sim/logging.hh"

namespace dtsim {

const char*
blockPolicyName(BlockPolicy p)
{
    switch (p) {
      case BlockPolicy::MRU: return "MRU";
      case BlockPolicy::LRU: return "LRU";
    }
    return "?";
}

BlockCache::BlockCache(std::uint64_t capacity_blocks, BlockPolicy policy)
    : capacity_(capacity_blocks), policy_(policy),
      slab_(static_cast<std::uint32_t>(capacity_blocks)),
      map_(capacity_blocks)
{
    if (capacity_blocks == 0)
        fatal("BlockCache: capacity must be > 0");
    if (capacity_blocks >= kNullSlot)
        fatal("BlockCache: capacity %llu exceeds the slab slot space",
              static_cast<unsigned long long>(capacity_blocks));
}

bool
BlockCache::contains(BlockNum block) const
{
    return map_.contains(block);
}

std::uint64_t
BlockCache::lookupPrefix(BlockNum start, std::uint64_t count)
{
    std::uint64_t hits = 0;
    while (hits < count) {
        const std::uint32_t* slot = map_.find(start + hits);
        if (!slot)
            break;
        // Mark as consumed: move to the front of the used list.
        const std::uint32_t n = *slot;
        Entry& e = slab_[n];
        if (e.spec) {
            e.spec = false;
            ++ra_.specUsed;
        }
        if (e.used) {
            Ops::moveToFront(slab_, used_, n);
        } else {
            Ops::unlink(slab_, unused_, n);
            e.used = true;
            Ops::pushFront(slab_, used_, n);
        }
        ++hits;
    }
    checkInvariants();
    return hits;
}

void
BlockCache::evictOne()
{
    ++evictions_;
    if (policy_ == BlockPolicy::MRU) {
        // Most recently consumed block first; if nothing has been
        // consumed yet, fall back to the oldest read-ahead block.
        if (!used_.empty()) {
            const std::uint32_t n = used_.head;
            Ops::unlink(slab_, used_, n);
            map_.erase(slab_[n].block);
            slab_.release(n);
            return;
        }
        const std::uint32_t n = unused_.head;
        if (slab_[n].spec)
            ++ra_.specWasted;
        Ops::unlink(slab_, unused_, n);
        map_.erase(slab_[n].block);
        slab_.release(n);
        return;
    }
    // LRU: the least recently consumed block; unconsumed read-ahead
    // blocks are newer than any consumed block by definition of use,
    // so prefer the oldest consumed, then the oldest unconsumed.
    if (!used_.empty()) {
        const std::uint32_t n = used_.tail;
        Ops::unlink(slab_, used_, n);
        map_.erase(slab_[n].block);
        slab_.release(n);
        return;
    }
    const std::uint32_t n = unused_.head;
    if (slab_[n].spec)
        ++ra_.specWasted;
    Ops::unlink(slab_, unused_, n);
    map_.erase(slab_[n].block);
    slab_.release(n);
}

void
BlockCache::insertRun(BlockNum start, std::uint64_t count,
                      std::uint64_t spec_offset)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const BlockNum b = start + i;
        if (map_.contains(b))
            continue;   // Already cached; keep its state.
        if (map_.size() >= capacity_)
            evictOne();
        const bool spec = i >= spec_offset;
        if (spec)
            ++ra_.specInserted;
        const std::uint32_t n = slab_.allocate();
        slab_[n] = Entry{b, false, spec};
        Ops::pushBack(slab_, unused_, n);
        map_.insert(b, n);
    }
    checkInvariants();
}

void
BlockCache::eraseBlock(BlockNum block)
{
    const std::uint32_t* slot = map_.find(block);
    if (!slot)
        return;
    const std::uint32_t n = *slot;
    Entry& e = slab_[n];
    if (e.spec)
        ++ra_.specWasted;
    if (e.used)
        Ops::unlink(slab_, used_, n);
    else
        Ops::unlink(slab_, unused_, n);
    slab_.release(n);
    map_.erase(block);
}

void
BlockCache::invalidateRange(BlockNum start, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        eraseBlock(start + i);
    checkInvariants();
}

} // namespace dtsim
