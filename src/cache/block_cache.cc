#include "cache/block_cache.hh"

#include "sim/logging.hh"

namespace dtsim {

const char*
blockPolicyName(BlockPolicy p)
{
    switch (p) {
      case BlockPolicy::MRU: return "MRU";
      case BlockPolicy::LRU: return "LRU";
    }
    return "?";
}

BlockCache::BlockCache(std::uint64_t capacity_blocks, BlockPolicy policy)
    : capacity_(capacity_blocks), policy_(policy)
{
    if (capacity_blocks == 0)
        fatal("BlockCache: capacity must be > 0");
}

bool
BlockCache::contains(BlockNum block) const
{
    return map_.count(block) != 0;
}

std::uint64_t
BlockCache::lookupPrefix(BlockNum start, std::uint64_t count)
{
    std::uint64_t hits = 0;
    while (hits < count) {
        auto it = map_.find(start + hits);
        if (it == map_.end())
            break;
        // Mark as consumed: move to the front of the used list.
        Where& w = it->second;
        if (w.it->spec) {
            w.it->spec = false;
            ++ra_.specUsed;
        }
        if (w.inUsed) {
            used_.splice(used_.begin(), used_, w.it);
        } else {
            const BlockNum b = w.it->block;
            unused_.erase(w.it);
            used_.push_front(Node{b, true, false});
            w.it = used_.begin();
            w.inUsed = true;
        }
        ++hits;
    }
    return hits;
}

void
BlockCache::evictOne()
{
    ++evictions_;
    if (policy_ == BlockPolicy::MRU) {
        // Most recently consumed block first; if nothing has been
        // consumed yet, fall back to the oldest read-ahead block.
        if (!used_.empty()) {
            const BlockNum b = used_.front().block;
            used_.pop_front();
            map_.erase(b);
            return;
        }
        if (unused_.front().spec)
            ++ra_.specWasted;
        const BlockNum b = unused_.front().block;
        unused_.pop_front();
        map_.erase(b);
        return;
    }
    // LRU: the least recently consumed block; unconsumed read-ahead
    // blocks are newer than any consumed block by definition of use,
    // so prefer the oldest consumed, then the oldest unconsumed.
    if (!used_.empty()) {
        const BlockNum b = used_.back().block;
        used_.pop_back();
        map_.erase(b);
        return;
    }
    if (unused_.front().spec)
        ++ra_.specWasted;
    const BlockNum b = unused_.front().block;
    unused_.pop_front();
    map_.erase(b);
}

void
BlockCache::insertRun(BlockNum start, std::uint64_t count,
                      std::uint64_t spec_offset)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const BlockNum b = start + i;
        auto it = map_.find(b);
        if (it != map_.end())
            continue;   // Already cached; keep its state.
        if (map_.size() >= capacity_)
            evictOne();
        const bool spec = i >= spec_offset;
        if (spec)
            ++ra_.specInserted;
        unused_.push_back(Node{b, false, spec});
        auto nit = unused_.end();
        --nit;
        map_.emplace(b, Where{nit, false});
    }
}

void
BlockCache::eraseBlock(BlockNum block)
{
    auto it = map_.find(block);
    if (it == map_.end())
        return;
    Where& w = it->second;
    if (w.it->spec)
        ++ra_.specWasted;
    if (w.inUsed)
        used_.erase(w.it);
    else
        unused_.erase(w.it);
    map_.erase(it);
}

void
BlockCache::invalidateRange(BlockNum start, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        eraseBlock(start + i);
}

} // namespace dtsim
