/**
 * @file
 * The host-managed (pinned) region of a disk controller cache
 * (Section 5).
 *
 * The store holds blocks the host has pinned with pin_blk(). Pinned
 * blocks are never replaced; writes to pinned blocks are absorbed and
 * marked dirty, and are written to the media only when the host issues
 * flush_hdc(). unpin_blk() releases a block for normal management.
 */

#ifndef DTSIM_CACHE_HDC_STORE_HH
#define DTSIM_CACHE_HDC_STORE_HH

#include <cstdint>
#include <vector>

#include "disk/geometry.hh"
#include "sim/flat_table.hh"

namespace dtsim {

/** Activity counters for the pinned region. */
struct HdcCounters
{
    std::uint64_t pins = 0;           ///< successful pin_blk calls
    std::uint64_t pinFailures = 0;    ///< rejected (full / duplicate)
    std::uint64_t unpins = 0;         ///< successful unpin_blk calls
    std::uint64_t dirtyUnpins = 0;    ///< unpins that released dirty data
    std::uint64_t absorbedWrites = 0; ///< writes absorbed by pinned blocks
    std::uint64_t flushCalls = 0;     ///< flush_hdc invocations
    std::uint64_t flushedBlocks = 0;  ///< dirty blocks handed to flush
};

/** Host-guided device cache region of one controller. */
class HdcStore
{
  public:
    /** @param capacity_blocks Pinned-region size in 4 KB blocks. */
    explicit HdcStore(std::uint64_t capacity_blocks);

    /**
     * Pin a block (pin_blk). The caller is responsible for having
     * read the block's data from the media first.
     *
     * @return false if the region is full or the block already pinned.
     */
    bool pin(BlockNum block);

    /**
     * Unpin a block (unpin_blk).
     *
     * @param[out] was_dirty Set to true if the block had absorbed
     *             writes that must now reach the media.
     * @return false if the block was not pinned.
     */
    bool unpin(BlockNum block, bool* was_dirty = nullptr);

    /** True if the block is pinned here. */
    bool contains(BlockNum block) const;

    /** Count of the leading blocks of a run that are pinned. */
    std::uint64_t prefixPinned(BlockNum start,
                               std::uint64_t count) const;

    /** True if all blocks of the run are pinned. */
    bool allPinned(BlockNum start, std::uint64_t count) const;

    /**
     * Absorb a write to a pinned block, marking it dirty.
     * @return false if the block is not pinned (caller must write
     *         to the media instead).
     */
    bool absorbWrite(BlockNum block);

    /**
     * Collect all dirty blocks and mark them clean (flush_hdc). The
     * caller issues the media writes.
     */
    std::vector<BlockNum> flush();

    std::uint64_t capacityBlocks() const { return capacity_; }
    std::uint64_t pinnedBlocks() const { return blocks_.size(); }
    std::uint64_t dirtyBlocks() const { return dirty_; }

    /** Lifetime activity counters. */
    const HdcCounters& counters() const { return counters_; }

  private:
    std::uint64_t capacity_;

    /**
     * block -> dirty flag. Open-addressing instead of unordered_map:
     * pin/unpin/absorb/contains are on the per-access controller
     * path. flush() iteration order is unspecified either way; the
     * controller sorts the returned set before building media jobs.
     */
    FlatTable<std::uint8_t> blocks_;
    std::uint64_t dirty_ = 0;
    HdcCounters counters_;
};

} // namespace dtsim

#endif // DTSIM_CACHE_HDC_STORE_HH
