#include "cache/segment_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

const char*
segmentPolicyName(SegmentPolicy p)
{
    switch (p) {
      case SegmentPolicy::LRU: return "LRU";
      case SegmentPolicy::FIFO: return "FIFO";
      case SegmentPolicy::Random: return "Random";
      case SegmentPolicy::RoundRobin: return "RoundRobin";
    }
    return "?";
}

SegmentCache::SegmentCache(std::uint64_t num_segments,
                           std::uint64_t segment_blocks,
                           SegmentPolicy policy, std::uint64_t seed)
    : segments_(num_segments), segmentBlocks_(segment_blocks),
      policy_(policy), rng_(seed)
{
    if (num_segments == 0 || segment_blocks == 0)
        fatal("SegmentCache: segments and segment size must be > 0");
}

int
SegmentCache::findSegment(BlockNum block) const
{
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const Segment& s = segments_[i];
        if (s.valid && block >= s.start && block < s.end)
            return static_cast<int>(i);
    }
    return -1;
}

int
SegmentCache::findAppendable(BlockNum block) const
{
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const Segment& s = segments_[i];
        if (s.valid && s.end == block)
            return static_cast<int>(i);
    }
    return -1;
}

std::uint64_t
SegmentCache::specBlocks(const Segment& s) const
{
    if (!s.valid)
        return 0;
    const BlockNum lo = std::max(s.start, s.specFrom);
    return lo < s.end ? s.end - lo : 0;
}

void
SegmentCache::consumeSpec(Segment& s, BlockNum c_lo, BlockNum c_hi)
{
    const BlockNum spec_lo = std::max(s.start, s.specFrom);
    if (spec_lo >= s.end || c_hi <= spec_lo)
        return;
    const BlockNum hi = std::min(c_hi, s.end);
    // Blocks [spec_lo, hi) leave the speculative state: those at or
    // after c_lo were consumed, those before were skipped over by a
    // non-sequential access and will not hit sequentially again.
    ra_.specUsed += hi - std::max(c_lo, spec_lo);
    if (c_lo > spec_lo)
        ra_.specWasted += c_lo - spec_lo;
    s.specFrom = std::max(s.specFrom, hi);
}

std::uint64_t
SegmentCache::lookupPrefix(BlockNum start, std::uint64_t count)
{
    ++clock_;
    const int idx = findSegment(start);
    if (idx < 0)
        return 0;
    Segment& s = segments_[static_cast<std::size_t>(idx)];
    s.lastUse = clock_;
    const std::uint64_t in_seg = s.end - start;
    std::uint64_t hits = std::min(count, in_seg);
    consumeSpec(s, start, start + hits);
    // The run may continue in an adjacent segment (stream split after
    // a very large read); follow it.
    while (hits < count) {
        const int nxt = findSegment(start + hits);
        if (nxt < 0)
            break;
        Segment& n = segments_[static_cast<std::size_t>(nxt)];
        n.lastUse = clock_;
        const std::uint64_t more =
            std::min(count - hits, n.end - (start + hits));
        consumeSpec(n, start + hits, start + hits + more);
        hits += more;
    }
    return hits;
}

bool
SegmentCache::contains(BlockNum block) const
{
    return findSegment(block) >= 0;
}

std::size_t
SegmentCache::pickVictim()
{
    // Prefer an unused segment (skip the scan when all are valid).
    if (validCount_ < segments_.size())
        for (std::size_t i = 0; i < segments_.size(); ++i)
            if (!segments_[i].valid)
                return i;

    ++replacements_;
    switch (policy_) {
      case SegmentPolicy::LRU: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < segments_.size(); ++i)
            if (segments_[i].lastUse < segments_[best].lastUse)
                best = i;
        return best;
      }
      case SegmentPolicy::FIFO: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < segments_.size(); ++i)
            if (segments_[i].created < segments_[best].created)
                best = i;
        return best;
      }
      case SegmentPolicy::Random:
        return static_cast<std::size_t>(rng_.below(segments_.size()));
      case SegmentPolicy::RoundRobin: {
        const std::size_t v = rrCursor_;
        rrCursor_ = (rrCursor_ + 1) % segments_.size();
        return v;
      }
    }
    return 0;
}

void
SegmentCache::insertRun(BlockNum start, std::uint64_t count,
                        std::uint64_t spec_offset)
{
    if (count == 0)
        return;
    ++clock_;

    const BlockNum run_end = start + count;
    const BlockNum run_spec_lo = start + std::min(spec_offset, count);

    // Stream continuation: extend the segment that ends where this run
    // starts (the segment keeps only its most recent segmentBlocks_),
    // or fall back to a segment already containing the run start
    // (re-read). One scan finds both candidates; appendable wins,
    // matching the findAppendable-then-findSegment pair it replaces.
    int idx = -1;
    int containing = -1;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const Segment& s = segments_[i];
        if (!s.valid)
            continue;
        if (s.end == start) {
            idx = static_cast<int>(i);
            break;
        }
        if (containing < 0 && start >= s.start && start < s.end)
            containing = static_cast<int>(i);
    }
    if (idx < 0)
        idx = containing;
    if (idx >= 0) {
        Segment& s = segments_[static_cast<std::size_t>(idx)];
        // Retire any old unconsumed read-ahead the demand portion
        // overlaps or skips: blocks the host demanded count as used,
        // blocks jumped over count as wasted.
        const BlockNum spec_lo = std::max(s.start, s.specFrom);
        if (spec_lo < s.end && run_spec_lo > spec_lo) {
            const BlockNum hi = std::min(run_spec_lo, s.end);
            ra_.specUsed += hi - std::max(start, spec_lo);
            if (start > spec_lo)
                ra_.specWasted += std::min(start, hi) - spec_lo;
        }
        const BlockNum old_end = s.end;
        s.end = std::max(s.end, run_end);
        if (s.end > old_end) {
            const BlockNum new_lo = std::max(old_end, run_spec_lo);
            if (s.end > new_lo)
                ra_.specInserted += s.end - new_lo;
        }
        s.specFrom = std::max(s.specFrom, run_spec_lo);
        if (s.end - s.start > segmentBlocks_) {
            const BlockNum new_start = s.end - segmentBlocks_;
            const BlockNum trim_spec =
                std::max(s.start, s.specFrom);
            if (trim_spec < new_start)
                ra_.specWasted += new_start - trim_spec;
            s.start = new_start;
            s.specFrom = std::max(s.specFrom, new_start);
        }
        s.lastUse = clock_;
        return;
    }

    // New stream: take a whole victim segment.
    const std::size_t v = pickVictim();
    Segment& s = segments_[v];
    if (s.valid)
        ra_.specWasted += specBlocks(s);
    else
        ++validCount_;
    s.valid = true;
    s.end = run_end;
    s.start = count > segmentBlocks_ ? s.end - segmentBlocks_ : start;
    s.specFrom = std::max(run_spec_lo, s.start);
    if (s.end > s.specFrom)
        ra_.specInserted += s.end - s.specFrom;
    s.lastUse = clock_;
    s.created = clock_;
}

void
SegmentCache::invalidateRange(BlockNum start, std::uint64_t count)
{
    const BlockNum lo = start;
    const BlockNum hi = start + count;
    for (Segment& s : segments_) {
        if (!s.valid || hi <= s.start || lo >= s.end)
            continue;
        // Unconsumed read-ahead dropped by the invalidation is wasted.
        const BlockNum spec_lo = std::max(s.start, s.specFrom);
        if (lo <= s.start && hi >= s.end) {
            ra_.specWasted += specBlocks(s);
            s.valid = false;            // Fully covered.
            --validCount_;
        } else if (lo <= s.start) {
            if (spec_lo < hi && spec_lo < s.end)
                ra_.specWasted += std::min(hi, s.end) - spec_lo;
            s.start = hi;               // Head overlap.
            s.specFrom = std::max(s.specFrom, hi);
        } else {
            if (std::max(spec_lo, lo) < s.end)
                ra_.specWasted += s.end - std::max(spec_lo, lo);
            s.end = lo;                 // Tail (or middle) overlap:
        }                               // drop everything from lo on.
        if (s.valid && s.start >= s.end) {
            s.valid = false;
            --validCount_;
        }
    }
}

std::uint64_t
SegmentCache::usedBlocks() const
{
    std::uint64_t used = 0;
    for (const Segment& s : segments_)
        if (s.valid)
            used += s.end - s.start;
    return used;
}

std::uint64_t
SegmentCache::activeSegments() const
{
    std::uint64_t n = 0;
    for (const Segment& s : segments_)
        if (s.valid)
            ++n;
    return n;
}

} // namespace dtsim
