/**
 * @file
 * The conventional segment-based controller cache (Section 2.1).
 *
 * The cache memory is divided into a fixed number of equal-size
 * segments, each holding one sequential stream's most recent blocks as
 * a contiguous run. The whole victim segment is replaced when a new
 * stream needs space; the victim policy is configurable (LRU default;
 * FIFO, Random, and RoundRobin per the literature the paper cites).
 */

#ifndef DTSIM_CACHE_SEGMENT_CACHE_HH
#define DTSIM_CACHE_SEGMENT_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/controller_cache.hh"
#include "sim/rng.hh"

namespace dtsim {

/** Victim-selection policy for segment replacement. */
enum class SegmentPolicy { LRU, FIFO, Random, RoundRobin };

const char* segmentPolicyName(SegmentPolicy p);

/** Segment-organized controller cache. */
class SegmentCache : public ControllerCache
{
  public:
    /**
     * @param num_segments Number of segments (e.g. 27).
     * @param segment_blocks Blocks per segment (e.g. 32 for 128 KB).
     * @param policy Victim-selection policy.
     * @param seed RNG seed (used by the Random policy only).
     */
    SegmentCache(std::uint64_t num_segments,
                 std::uint64_t segment_blocks,
                 SegmentPolicy policy = SegmentPolicy::LRU,
                 std::uint64_t seed = 1);

    std::uint64_t lookupPrefix(BlockNum start,
                               std::uint64_t count) override;
    bool contains(BlockNum block) const override;
    using ControllerCache::insertRun;
    void insertRun(BlockNum start, std::uint64_t count,
                   std::uint64_t spec_offset) override;
    void invalidateRange(BlockNum start, std::uint64_t count) override;

    std::uint64_t
    capacityBlocks() const override
    {
        return segments_.size() * segmentBlocks_;
    }

    std::uint64_t usedBlocks() const override;

    /** Number of segments currently holding data. */
    std::uint64_t activeSegments() const;

    /** Whole-segment replacements performed so far. */
    std::uint64_t replacements() const { return replacements_; }

  private:
    struct Segment
    {
        bool valid = false;
        BlockNum start = 0;     ///< First cached block of the run.
        BlockNum end = 0;       ///< One past the last cached block.
        std::uint64_t lastUse = 0;
        std::uint64_t created = 0;

        /**
         * Blocks in [max(start, specFrom), end) were read ahead
         * speculatively and not yet consumed. A run is a contiguous
         * range, so the unconsumed speculative part is always a
         * suffix.
         */
        BlockNum specFrom = 0;
    };

    /** Unconsumed speculative blocks in a segment. */
    std::uint64_t specBlocks(const Segment& s) const;

    /**
     * Account for the host consuming [c_lo, c_hi) inside segment `s`:
     * speculative blocks consumed count as used, speculative blocks
     * skipped over count as wasted.
     */
    void consumeSpec(Segment& s, BlockNum c_lo, BlockNum c_hi);

    /** Index of the segment containing `block`, or -1. */
    int findSegment(BlockNum block) const;

    /** Index of the segment whose run ends exactly at `block`, or -1. */
    int findAppendable(BlockNum block) const;

    /** Pick a victim segment index (an invalid one if any). */
    std::size_t pickVictim();

    std::vector<Segment> segments_;
    std::size_t validCount_ = 0;  ///< pickVictim scan fast path
    std::uint64_t segmentBlocks_;
    SegmentPolicy policy_;
    Rng rng_;
    std::uint64_t clock_ = 0;
    std::uint64_t replacements_ = 0;
    std::size_t rrCursor_ = 0;
};

} // namespace dtsim

#endif // DTSIM_CACHE_SEGMENT_CACHE_HH
