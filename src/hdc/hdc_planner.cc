#include "hdc/hdc_planner.hh"

#include <algorithm>

namespace dtsim {

void
MissCounter::addTrace(const Trace& trace)
{
    for (const TraceRecord& r : trace)
        for (std::uint32_t i = 0; i < r.count; ++i)
            add(r.start + i);
}

void
MissCounter::add(ArrayBlock block, std::uint64_t count)
{
    *counts_.insert(block, 0).first += count;
}

std::uint64_t
MissCounter::count(ArrayBlock block) const
{
    const std::uint64_t* n = counts_.find(block);
    return n ? *n : 0;
}

std::vector<std::pair<ArrayBlock, std::uint64_t>>
MissCounter::sorted() const
{
    std::vector<std::pair<ArrayBlock, std::uint64_t>> v;
    v.reserve(counts_.size());
    counts_.forEach([&](std::uint64_t block, const std::uint64_t& n) {
        v.emplace_back(block, n);
    });
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    return v;
}

std::vector<ArrayBlock>
MissCounter::topBlocks(std::size_t k) const
{
    auto v = sorted();
    if (v.size() > k)
        v.resize(k);
    std::vector<ArrayBlock> out;
    out.reserve(v.size());
    for (const auto& [block, n] : v)
        out.push_back(block);
    return out;
}

std::vector<ArrayBlock>
selectPinnedBlocks(const Trace& trace, const StripingMap& striping,
                   std::uint64_t per_disk_budget_blocks)
{
    MissCounter counter;
    counter.addTrace(trace);

    std::vector<std::uint64_t> budget(striping.disks(),
                                      per_disk_budget_blocks);
    std::uint64_t left = per_disk_budget_blocks * striping.disks();

    // Heap-select instead of fully sorting the (distinct blocks)-size
    // count table: the pin set is bounded by the HDC budgets, which
    // are tiny next to the trace's block population. Popping a
    // max-heap ordered by (count desc, block asc) visits blocks in
    // exactly sorted() order, so the picks are identical.
    std::vector<std::pair<ArrayBlock, std::uint64_t>> v;
    v.reserve(counter.distinctBlocks());
    counter.forEachCount(
        [&](ArrayBlock block, std::uint64_t n) { v.emplace_back(block, n); });
    const auto worse = [](const auto& a, const auto& b) {
        if (a.second != b.second)
            return a.second < b.second;
        return a.first > b.first;
    };
    std::make_heap(v.begin(), v.end(), worse);

    std::vector<ArrayBlock> pinned;
    auto end = v.end();
    while (left != 0 && end != v.begin()) {
        std::pop_heap(v.begin(), end, worse);
        const auto& [block, n] = *--end;
        const PhysicalLoc loc = striping.toPhysical(block);
        if (budget[loc.disk] == 0)
            continue;
        --budget[loc.disk];
        --left;
        pinned.push_back(block);
    }
    return pinned;
}

} // namespace dtsim
