#include "hdc/hdc_planner.hh"

#include <algorithm>

namespace dtsim {

void
MissCounter::addTrace(const Trace& trace)
{
    for (const TraceRecord& r : trace)
        for (std::uint32_t i = 0; i < r.count; ++i)
            add(r.start + i);
}

void
MissCounter::add(ArrayBlock block, std::uint64_t count)
{
    counts_[block] += count;
}

std::uint64_t
MissCounter::count(ArrayBlock block) const
{
    auto it = counts_.find(block);
    return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<ArrayBlock, std::uint64_t>>
MissCounter::sorted() const
{
    std::vector<std::pair<ArrayBlock, std::uint64_t>> v(
        counts_.begin(), counts_.end());
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    return v;
}

std::vector<ArrayBlock>
MissCounter::topBlocks(std::size_t k) const
{
    auto v = sorted();
    if (v.size() > k)
        v.resize(k);
    std::vector<ArrayBlock> out;
    out.reserve(v.size());
    for (const auto& [block, n] : v)
        out.push_back(block);
    return out;
}

std::vector<ArrayBlock>
selectPinnedBlocks(const Trace& trace, const StripingMap& striping,
                   std::uint64_t per_disk_budget_blocks)
{
    MissCounter counter;
    counter.addTrace(trace);

    std::vector<std::uint64_t> budget(striping.disks(),
                                      per_disk_budget_blocks);
    std::vector<ArrayBlock> pinned;
    for (const auto& [block, n] : counter.sorted()) {
        const PhysicalLoc loc = striping.toPhysical(block);
        if (budget[loc.disk] == 0)
            continue;
        --budget[loc.disk];
        pinned.push_back(block);
    }
    return pinned;
}

} // namespace dtsim
