/**
 * @file
 * Host-side HDC policy (Section 5).
 *
 * The host divides the server's execution into periods and pins, for
 * each disk, the blocks of that disk that caused the most buffer
 * cache misses in the previous period(s). The paper's evaluation
 * assumes perfect knowledge of the future: the pin set is computed
 * from the same trace that is replayed. Both modes are provided here:
 * plan from a history trace, or from the trace to be replayed.
 */

#ifndef DTSIM_HDC_HDC_PLANNER_HH
#define DTSIM_HDC_HDC_PLANNER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "array/striping.hh"
#include "sim/flat_table.hh"
#include "workload/trace.hh"

namespace dtsim {

/** Per-block miss counting over a disk trace. */
class MissCounter
{
  public:
    /** Accumulate one trace (every record is a host-cache miss). */
    void addTrace(const Trace& trace);

    /** Accumulate one access. */
    void add(ArrayBlock block, std::uint64_t count = 1);

    /** Access count of one block. */
    std::uint64_t count(ArrayBlock block) const;

    /** Distinct blocks seen. */
    std::size_t distinctBlocks() const { return counts_.size(); }

    /**
     * The blocks causing the most misses, most-missed first. Ties
     * break toward lower block numbers for determinism.
     */
    std::vector<ArrayBlock> topBlocks(std::size_t k) const;

    /** All (block, count) pairs, most-missed first. */
    std::vector<std::pair<ArrayBlock, std::uint64_t>> sorted() const;

    /** Visit every (block, count) pair in unspecified order. */
    template <typename Fn>
    void
    forEachCount(Fn&& fn) const
    {
        counts_.forEach([&](std::uint64_t block, const std::uint64_t& n) {
            fn(static_cast<ArrayBlock>(block), n);
        });
    }

  private:
    /**
     * block -> miss count. Open addressing: planning scans multi-
     * million-record traces, and the probe-per-access dominates the
     * plan cost. sorted() orders by (count desc, block asc), so the
     * table's iteration order never reaches the output.
     */
    FlatTable<std::uint64_t> counts_;
};

/**
 * Select the pin set for an array: for each disk, the blocks stored
 * on that disk with the highest miss counts, up to the per-disk
 * budget.
 *
 * @param trace History (or oracle) trace.
 * @param striping The array's striping map.
 * @param per_disk_budget_blocks HDC capacity of each controller.
 * @return Logical block numbers to pin (pass to
 *         DiskArray::pinLogicalBlock).
 */
std::vector<ArrayBlock>
selectPinnedBlocks(const Trace& trace, const StripingMap& striping,
                   std::uint64_t per_disk_budget_blocks);

} // namespace dtsim

#endif // DTSIM_HDC_HDC_PLANNER_HH
