#include "hdc/victim_cache.hh"

#include "sim/logging.hh"

namespace dtsim {

VictimHdcManager::VictimHdcManager(DiskArray& array,
                                   std::uint64_t ghost_blocks)
    : array_(array), ghostCapacity_(ghost_blocks)
{
    if (ghost_blocks == 0)
        fatal("VictimHdcManager: ghost cache must be > 0 blocks");
}

void
VictimHdcManager::pinVictim(ArrayBlock block)
{
    if (pinnedSet_.count(block))
        return;
    // Make room: retire the oldest victims until a pin succeeds.
    while (!array_.pinLogicalBlock(block)) {
        // Skip stale FIFO entries (already unpinned on re-access).
        while (!pinFifo_.empty() &&
               !pinnedSet_.count(pinFifo_.front()))
            pinFifo_.pop_front();
        if (pinFifo_.empty())
            return;   // No capacity at all (budget zero).
        const ArrayBlock old = pinFifo_.front();
        pinFifo_.pop_front();
        pinnedSet_.erase(old);
        --fifoSize_;
        array_.unpinLogicalBlock(old);
        ++unpins_;
    }
    pinFifo_.push_back(block);
    pinnedSet_.insert(block);
    ++fifoSize_;
    ++pins_;
}

void
VictimHdcManager::ghostInsert(ArrayBlock block)
{
    auto it = ghostMap_.find(block);
    if (it != ghostMap_.end()) {
        ghostLru_.splice(ghostLru_.begin(), ghostLru_, it->second);
        return;
    }
    if (ghostMap_.size() >= ghostCapacity_) {
        const ArrayBlock victim = ghostLru_.back();
        ghostLru_.pop_back();
        ghostMap_.erase(victim);
        pinVictim(victim);
    }
    ghostLru_.push_front(block);
    ghostMap_.emplace(block, ghostLru_.begin());
}

void
VictimHdcManager::onAccess(ArrayBlock start, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const ArrayBlock b = start + i;
        // A re-read victim moves back into the host cache; release
        // the controller copy (lazy removal from the FIFO).
        auto pin_it = pinnedSet_.find(b);
        if (pin_it != pinnedSet_.end()) {
            pinnedSet_.erase(pin_it);
            --fifoSize_;
            array_.unpinLogicalBlock(b);
            ++unpins_;
        }
        ghostInsert(b);
    }
}

} // namespace dtsim
