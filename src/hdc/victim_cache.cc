#include "hdc/victim_cache.hh"

#include "sim/logging.hh"

namespace dtsim {

VictimHdcManager::VictimHdcManager(DiskArray& array,
                                   std::uint64_t ghost_blocks)
    : array_(array), ghostCapacity_(ghost_blocks),
      capacityBlocks_(array.controller(0).hdcCapacityBlocks()),
      pinnedPerDisk_(array.striping().disks(), 0)
{
    if (ghost_blocks == 0)
        fatal("VictimHdcManager: ghost cache must be > 0 blocks");
}

unsigned
VictimHdcManager::diskOf(ArrayBlock block) const
{
    return array_.striping().toPhysical(block).disk;
}

void
VictimHdcManager::retireOldest()
{
    const ArrayBlock old = pinFifo_.front();
    pinFifo_.pop_front();
    pinnedSet_.erase(old);
    --pinnedPerDisk_[diskOf(old)];
    --fifoSize_;
    array_.unpinLogicalBlockDeferred(old);
    ++unpins_;
}

void
VictimHdcManager::pinVictim(ArrayBlock block)
{
    if (pinnedSet_.count(block))
        return;
    if (capacityBlocks_ == 0)
        return;   // No HDC budget: nothing ever pins.
    const unsigned disk = diskOf(block);
    // Make room: retire the globally oldest victims until the owning
    // disk's region has a free slot. (The oldest victim may live on
    // another disk — that matches the synchronous retry loop this
    // replaced, which also evicted global-FIFO order.)
    while (pinnedPerDisk_[disk] >= capacityBlocks_) {
        // Skip stale FIFO entries (already unpinned on re-access).
        while (!pinFifo_.empty() &&
               !pinnedSet_.count(pinFifo_.front()))
            pinFifo_.pop_front();
        // A full disk always has a live pinned entry in the FIFO.
        retireOldest();
    }
    array_.pinLogicalBlockDeferred(block);
    pinFifo_.push_back(block);
    pinnedSet_.insert(block);
    ++pinnedPerDisk_[disk];
    ++fifoSize_;
    ++pins_;
}

void
VictimHdcManager::ghostInsert(ArrayBlock block)
{
    auto it = ghostMap_.find(block);
    if (it != ghostMap_.end()) {
        ghostLru_.splice(ghostLru_.begin(), ghostLru_, it->second);
        return;
    }
    if (ghostMap_.size() >= ghostCapacity_) {
        const ArrayBlock victim = ghostLru_.back();
        ghostLru_.pop_back();
        ghostMap_.erase(victim);
        pinVictim(victim);
    }
    ghostLru_.push_front(block);
    ghostMap_.emplace(block, ghostLru_.begin());
}

void
VictimHdcManager::onAccess(ArrayBlock start, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const ArrayBlock b = start + i;
        // A re-read victim moves back into the host cache; release
        // the controller copy (lazy removal from the FIFO).
        auto pin_it = pinnedSet_.find(b);
        if (pin_it != pinnedSet_.end()) {
            pinnedSet_.erase(pin_it);
            --pinnedPerDisk_[diskOf(b)];
            --fifoSize_;
            array_.unpinLogicalBlockDeferred(b);
            ++unpins_;
        }
        ghostInsert(b);
    }
}

} // namespace dtsim
