/**
 * @file
 * The other HDC use the paper proposes (Section 5): "the host file
 * system can use part of the disk controller caches as an array-wide
 * victim cache for its buffer cache".
 *
 * The manager mirrors the host buffer cache with a ghost LRU: when a
 * block falls out of the host cache, pin_blk() parks it in the
 * owning controller's HDC region (unpinning the oldest victim when
 * the region is full); when the host re-reads a pinned block, the
 * controller serves it (a victim hit) and the host unpins it, since
 * the block now lives in the buffer cache again.
 *
 * The manager runs host-side and its pin/unpin commands cross to the
 * disk timelines as deferred messages (DiskArray::*Deferred), so it
 * cannot observe a pin's success synchronously. Instead it models
 * each disk's HDC capacity itself: a per-logical-disk pinned count
 * against the (uniform) controller capacity reproduces, step for
 * step, the retire-oldest-until-the-pin-sticks loop the synchronous
 * API allowed — the command stream and every counter are unchanged,
 * only the controller-side application of each command now lands
 * commandLatency() ticks later, identically under both kernels.
 */

#ifndef DTSIM_HDC_VICTIM_CACHE_HH
#define DTSIM_HDC_VICTIM_CACHE_HH

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "array/disk_array.hh"

namespace dtsim {

/** Host-side driver of the victim-cache HDC policy. */
class VictimHdcManager
{
  public:
    /**
     * @param array Target array (its controllers need an HDC
     *        budget).
     * @param ghost_blocks Size of the mirrored host buffer cache.
     */
    VictimHdcManager(DiskArray& array, std::uint64_t ghost_blocks);

    /**
     * Observe a completed host access (call once per trace record).
     * Updates the ghost cache and issues pin/unpin commands.
     */
    void onAccess(ArrayBlock start, std::uint64_t count);

    std::uint64_t pins() const { return pins_; }
    std::uint64_t unpins() const { return unpins_; }
    std::uint64_t pinnedNow() const { return fifoSize_; }

  private:
    /** Insert one block into the ghost LRU, evicting as needed. */
    void ghostInsert(ArrayBlock block);

    /** Park an evicted block in its controller's HDC region. */
    void pinVictim(ArrayBlock block);

    /** Logical disk owning `block` (replicas pin in lockstep). */
    unsigned diskOf(ArrayBlock block) const;

    /** Drop the oldest live victim and issue its deferred unpin. */
    void retireOldest();

    DiskArray& array_;
    std::uint64_t ghostCapacity_;

    /** Per-disk HDC region capacity (uniform controllers). */
    std::uint64_t capacityBlocks_;

    /** Host-side model of each logical disk's pinned population. */
    std::vector<std::uint64_t> pinnedPerDisk_;

    std::list<ArrayBlock> ghostLru_;   ///< Front = most recent.
    std::unordered_map<ArrayBlock, std::list<ArrayBlock>::iterator>
        ghostMap_;

    /** Pinned victims in pin order (oldest first). */
    std::deque<ArrayBlock> pinFifo_;
    std::unordered_set<ArrayBlock> pinnedSet_;
    std::uint64_t fifoSize_ = 0;

    std::uint64_t pins_ = 0;
    std::uint64_t unpins_ = 0;
};

} // namespace dtsim

#endif // DTSIM_HDC_VICTIM_CACHE_HH
