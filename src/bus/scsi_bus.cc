#include "bus/scsi_bus.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

ScsiBus::ScsiBus(double bytes_per_sec, Tick arbitration)
    : rate_(bytes_per_sec), arbitration_(arbitration)
{
    if (bytes_per_sec <= 0.0)
        fatal("ScsiBus: rate must be positive");
}

Tick
ScsiBus::transferTime(std::uint64_t bytes) const
{
    return arbitration_ +
           fromSeconds(static_cast<double>(bytes) / rate_);
}

Tick
ScsiBus::transfer(Tick earliest, std::uint64_t bytes)
{
    const Tick start = std::max(earliest, busyUntil_);
    const Tick dur = transferTime(bytes);
    busyUntil_ = start + dur;
    busyTime_ += dur;
    ++tenures_;
    bytes_ += bytes;
    return busyUntil_;
}

double
ScsiBus::utilization(Tick now) const
{
    if (now == 0)
        return 0.0;
    return static_cast<double>(std::min(busyTime_, now)) /
           static_cast<double>(now);
}

} // namespace dtsim
