/**
 * @file
 * A shared parallel-SCSI bus (Ultra160 by default).
 *
 * The bus is a single serially-reusable resource: data transfers and
 * command frames from all attached controllers are serialized in FIFO
 * order at the bus's byte rate plus a fixed arbitration/overhead cost
 * per tenure.
 */

#ifndef DTSIM_BUS_SCSI_BUS_HH
#define DTSIM_BUS_SCSI_BUS_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace dtsim {

/** Shared host-adapter bus. */
class ScsiBus
{
  public:
    /**
     * @param bytes_per_sec Peak transfer rate (160 MB/s for Ultra160).
     * @param arbitration Fixed per-tenure overhead.
     */
    explicit ScsiBus(double bytes_per_sec = 160.0e6,
                     Tick arbitration = fromMicros(2));

    /**
     * Reserve the bus for a transfer of `bytes`, starting no earlier
     * than `earliest`. The bus is held from max(earliest, free time)
     * until the returned tick.
     *
     * @return Completion time of the transfer.
     */
    Tick transfer(Tick earliest, std::uint64_t bytes);

    /** Pure transfer duration for `bytes` (no queuing). */
    Tick transferTime(std::uint64_t bytes) const;

    /** Earliest time the bus is free. */
    Tick freeAt() const { return busyUntil_; }

    /** Accumulated busy time. */
    Tick busyTime() const { return busyTime_; }

    /** Fraction of [0, now] the bus was busy. */
    double utilization(Tick now) const;

    /** Completed tenures. */
    std::uint64_t tenures() const { return tenures_; }

    /** Total payload bytes moved across the bus. */
    std::uint64_t bytesTransferred() const { return bytes_; }

  private:
    double rate_;
    Tick arbitration_;
    Tick busyUntil_ = 0;
    Tick busyTime_ = 0;
    std::uint64_t tenures_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace dtsim

#endif // DTSIM_BUS_SCSI_BUS_HH
