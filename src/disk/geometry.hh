/**
 * @file
 * Logical-to-physical address translation for one disk.
 *
 * The mapping is the classic linear one: sectors fill a track, tracks
 * fill a cylinder (one per head), cylinders fill the disk. Zoned
 * recording and sparing are not modeled; the paper's drive model does
 * not depend on them.
 */

#ifndef DTSIM_DISK_GEOMETRY_HH
#define DTSIM_DISK_GEOMETRY_HH

#include <cstdint>

#include "disk/disk_params.hh"

namespace dtsim {

/** Sector number local to one disk. */
using SectorNum = std::uint64_t;

/** 4 KB block number local to one disk. */
using BlockNum = std::uint64_t;

/** A physical disk position. */
struct Chs
{
    std::uint32_t cylinder;
    std::uint32_t head;
    std::uint32_t sector;

    bool
    operator==(const Chs& o) const
    {
        return cylinder == o.cylinder && head == o.head &&
               sector == o.sector;
    }
};

/**
 * Address translation and physical layout queries for one disk.
 */
class DiskGeometry
{
  public:
    explicit DiskGeometry(const DiskParams& params);

    /** Cylinders on the disk (derived from capacity). */
    std::uint32_t cylinders() const { return cylinders_; }

    std::uint32_t heads() const { return heads_; }
    std::uint32_t sectorsPerTrack() const { return spt_; }
    std::uint32_t sectorsPerCylinder() const { return spc_; }

    /** Total addressable sectors (full blocks only). */
    SectorNum totalSectors() const { return totalSectors_; }

    /** Decompose a sector number into cylinder/head/sector. */
    Chs sectorToChs(SectorNum s) const;

    /** Compose a sector number from a physical position. */
    SectorNum chsToSector(const Chs& chs) const;

    /** Cylinder holding a sector. */
    std::uint32_t
    sectorToCylinder(SectorNum s) const
    {
        return static_cast<std::uint32_t>(s / spc_);
    }

    /** First sector of a block. */
    SectorNum
    blockToSector(BlockNum b) const
    {
        return b * sectorsPerBlock_;
    }

    /** Cylinder holding the first sector of a block. */
    std::uint32_t
    blockToCylinder(BlockNum b) const
    {
        return sectorToCylinder(blockToSector(b));
    }

    std::uint32_t sectorsPerBlock() const { return sectorsPerBlock_; }

  private:
    std::uint32_t spt_;
    std::uint32_t heads_;
    std::uint32_t spc_;
    std::uint32_t sectorsPerBlock_;
    std::uint32_t cylinders_;
    SectorNum totalSectors_;
};

} // namespace dtsim

#endif // DTSIM_DISK_GEOMETRY_HH
