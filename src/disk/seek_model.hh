/**
 * @file
 * The paper's three-piece seek-time model (Section 2.1):
 *
 *   seek(n) = 0                      if n == 0
 *           = alpha + beta * sqrt(n) if 0 < n <= theta
 *           = gamma + delta * n      if n > theta
 *
 * with n the cylinder distance. The default coefficients reproduce the
 * IBM Ultrastar 36Z15 nominal values used in Section 6.1.
 */

#ifndef DTSIM_DISK_SEEK_MODEL_HH
#define DTSIM_DISK_SEEK_MODEL_HH

#include <cstdint>

#include "disk/disk_params.hh"
#include "sim/ticks.hh"

namespace dtsim {

/** Seek-time calculator for one drive. */
class SeekModel
{
  public:
    explicit SeekModel(const DiskParams& params)
        : alphaMs_(params.seekAlphaMs), betaMs_(params.seekBetaMs),
          gammaMs_(params.seekGammaMs), deltaMs_(params.seekDeltaMs),
          theta_(params.seekThetaCyls)
    {}

    /** Seek time for a move of `distance` cylinders. */
    Tick seekTime(std::uint32_t distance) const;

    /** Seek time in milliseconds (for analytic use). */
    double seekTimeMs(std::uint32_t distance) const;

    /**
     * Average seek time over all equally likely (from, to) cylinder
     * pairs of a disk with `cylinders` cylinders; the mean distance of
     * that distribution is cylinders/3.
     */
    double averageSeekMs(std::uint32_t cylinders) const;

  private:
    double alphaMs_;
    double betaMs_;
    double gammaMs_;
    double deltaMs_;
    std::uint32_t theta_;
};

} // namespace dtsim

#endif // DTSIM_DISK_SEEK_MODEL_HH
