/**
 * @file
 * Zoned (multi-rate) recording for the disk model.
 *
 * Real drives record more sectors on the longer outer tracks; the
 * Ultrastar 36Z15's media rate varies roughly 340-440 sectors/track
 * across the surface. The flat DiskGeometry uses a single average
 * (422, matching Table 1's 54 MB/s raw rate); ZonedGeometry models a
 * configurable zone table so outer-zone transfers run faster and
 * inner-zone ones slower. Table-driven sector<->position translation
 * keeps lookups O(log zones).
 */

#ifndef DTSIM_DISK_ZONES_HH
#define DTSIM_DISK_ZONES_HH

#include <cstdint>
#include <vector>

#include "disk/disk_params.hh"
#include "disk/geometry.hh"

namespace dtsim {

/** One recording zone: a cylinder range with one track capacity. */
struct Zone
{
    std::uint32_t firstCylinder;
    std::uint32_t cylinders;
    std::uint32_t sectorsPerTrack;

    /** First sector of the zone (filled in by ZonedGeometry). */
    SectorNum firstSector = 0;
};

/**
 * Zoned logical-to-physical translation. Cylinders are numbered from
 * the outer edge (zone 0 is the fastest), matching how drives number
 * them and how file systems place hot data low.
 */
class ZonedGeometry
{
  public:
    /**
     * Build from an explicit zone table.
     *
     * @param params Drive parameters (heads, sector size).
     * @param zones Zone table ordered by firstCylinder; zones must
     *        tile the cylinder space without gaps.
     */
    ZonedGeometry(const DiskParams& params, std::vector<Zone> zones);

    /**
     * Build a default table for the modeled drive: `num_zones` zones
     * grading linearly from `outer_spt` to `inner_spt`, sized so the
     * drive's capacity matches `params.capacityBytes`.
     */
    static ZonedGeometry makeDefault(const DiskParams& params,
                                     unsigned num_zones = 8,
                                     std::uint32_t outer_spt = 440,
                                     std::uint32_t inner_spt = 340);

    std::uint32_t heads() const { return heads_; }
    std::uint32_t cylinders() const { return cylinders_; }
    SectorNum totalSectors() const { return totalSectors_; }
    const std::vector<Zone>& zones() const { return zones_; }

    /** Zone index holding a sector. */
    std::size_t sectorToZone(SectorNum s) const;

    /** Zone index holding a cylinder. */
    std::size_t cylinderToZone(std::uint32_t cylinder) const;

    /** Decompose a sector number into cylinder/head/sector. */
    Chs sectorToChs(SectorNum s) const;

    /** Compose a sector number from a physical position. */
    SectorNum chsToSector(const Chs& chs) const;

    /** Cylinder holding a sector (for scheduling). */
    std::uint32_t
    sectorToCylinder(SectorNum s) const
    {
        return sectorToChs(s).cylinder;
    }

    /** Sectors per track at a given sector's zone. */
    std::uint32_t
    sectorsPerTrackAt(SectorNum s) const
    {
        return zones_[sectorToZone(s)].sectorsPerTrack;
    }

    /**
     * Media transfer time for `count` sectors starting at `start`:
     * rotation-locked within each zone, so outer zones move more
     * bytes per revolution.
     */
    Tick transferTime(SectorNum start, std::uint64_t count,
                      Tick rev_time) const;

  private:
    std::vector<Zone> zones_;
    std::uint32_t heads_;
    std::uint32_t cylinders_ = 0;
    SectorNum totalSectors_ = 0;
};

} // namespace dtsim

#endif // DTSIM_DISK_ZONES_HH
