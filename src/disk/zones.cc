#include "disk/zones.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

ZonedGeometry::ZonedGeometry(const DiskParams& params,
                             std::vector<Zone> zones)
    : zones_(std::move(zones)), heads_(params.heads)
{
    if (zones_.empty())
        fatal("ZonedGeometry: need at least one zone");
    SectorNum sector = 0;
    std::uint32_t cyl = 0;
    for (Zone& z : zones_) {
        if (z.firstCylinder != cyl)
            fatal("ZonedGeometry: zones must tile the cylinder "
                  "space (gap at cylinder %u)", cyl);
        if (z.cylinders == 0 || z.sectorsPerTrack == 0)
            fatal("ZonedGeometry: empty zone");
        z.firstSector = sector;
        sector += static_cast<SectorNum>(z.cylinders) * heads_ *
                  z.sectorsPerTrack;
        cyl += z.cylinders;
    }
    cylinders_ = cyl;
    totalSectors_ = sector;
}

ZonedGeometry
ZonedGeometry::makeDefault(const DiskParams& params,
                           unsigned num_zones,
                           std::uint32_t outer_spt,
                           std::uint32_t inner_spt)
{
    if (num_zones == 0)
        fatal("ZonedGeometry: need at least one zone");

    // Average sectors/track over the graded zones.
    double avg_spt = 0.0;
    std::vector<std::uint32_t> spts(num_zones);
    for (unsigned z = 0; z < num_zones; ++z) {
        const double f = num_zones == 1
            ? 0.0
            : static_cast<double>(z) / (num_zones - 1);
        spts[z] = static_cast<std::uint32_t>(
            outer_spt - f * (outer_spt - inner_spt) + 0.5);
        avg_spt += spts[z];
    }
    avg_spt /= num_zones;

    // Total cylinders needed for the drive's capacity at the
    // average density, split evenly across zones.
    const double total_sectors =
        static_cast<double>(params.totalSectors());
    const auto cylinders = static_cast<std::uint32_t>(
        total_sectors / (avg_spt * params.heads) + 1);
    const std::uint32_t per_zone =
        std::max<std::uint32_t>(1, cylinders / num_zones);

    std::vector<Zone> zones;
    std::uint32_t cyl = 0;
    for (unsigned z = 0; z < num_zones; ++z) {
        Zone zn;
        zn.firstCylinder = cyl;
        zn.cylinders = z + 1 == num_zones
            ? cylinders - cyl
            : per_zone;
        zn.sectorsPerTrack = spts[z];
        zones.push_back(zn);
        cyl += zn.cylinders;
    }
    return ZonedGeometry(params, std::move(zones));
}

std::size_t
ZonedGeometry::sectorToZone(SectorNum s) const
{
    if (s >= totalSectors_)
        panic("ZonedGeometry: sector out of range");
    // Binary search over zone start sectors.
    std::size_t lo = 0;
    std::size_t hi = zones_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi + 1) / 2;
        if (zones_[mid].firstSector <= s)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

std::size_t
ZonedGeometry::cylinderToZone(std::uint32_t cylinder) const
{
    if (cylinder >= cylinders_)
        panic("ZonedGeometry: cylinder out of range");
    std::size_t lo = 0;
    std::size_t hi = zones_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi + 1) / 2;
        if (zones_[mid].firstCylinder <= cylinder)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

Chs
ZonedGeometry::sectorToChs(SectorNum s) const
{
    const Zone& z = zones_[sectorToZone(s)];
    const SectorNum in_zone = s - z.firstSector;
    const std::uint64_t spc =
        static_cast<std::uint64_t>(z.sectorsPerTrack) * heads_;
    Chs chs;
    chs.cylinder =
        z.firstCylinder + static_cast<std::uint32_t>(in_zone / spc);
    const auto in_cyl = static_cast<std::uint32_t>(in_zone % spc);
    chs.head = in_cyl / z.sectorsPerTrack;
    chs.sector = in_cyl % z.sectorsPerTrack;
    return chs;
}

SectorNum
ZonedGeometry::chsToSector(const Chs& chs) const
{
    const Zone& z = zones_[cylinderToZone(chs.cylinder)];
    const std::uint64_t spc =
        static_cast<std::uint64_t>(z.sectorsPerTrack) * heads_;
    return z.firstSector +
           static_cast<SectorNum>(chs.cylinder - z.firstCylinder) *
               spc +
           static_cast<SectorNum>(chs.head) * z.sectorsPerTrack +
           chs.sector;
}

Tick
ZonedGeometry::transferTime(SectorNum start, std::uint64_t count,
                            Tick rev_time) const
{
    double revs = 0.0;
    SectorNum pos = start;
    std::uint64_t left = count;
    while (left > 0) {
        const std::size_t zi = sectorToZone(pos);
        const Zone& z = zones_[zi];
        const SectorNum zone_end = zi + 1 < zones_.size()
            ? zones_[zi + 1].firstSector
            : totalSectors_;
        const std::uint64_t in_zone =
            std::min<std::uint64_t>(left, zone_end - pos);
        revs += static_cast<double>(in_zone) /
                static_cast<double>(z.sectorsPerTrack);
        pos += in_zone;
        left -= in_zone;
    }
    return static_cast<Tick>(revs * static_cast<double>(rev_time) +
                             0.5);
}

} // namespace dtsim
