/**
 * @file
 * Physical and controller parameters of a simulated disk drive.
 *
 * Defaults model the IBM Ultrastar 36Z15 exactly as in Table 1 of the
 * paper: 18 GB, 15000 rpm, ~440 sectors/track, 3.4 ms average seek,
 * 2.0 ms average rotational latency, 54 MB/s media rate, Ultra160
 * interface, 4 MB controller cache, 4 KB blocks, and the published
 * three-piece seek-curve coefficients.
 */

#ifndef DTSIM_DISK_DISK_PARAMS_HH
#define DTSIM_DISK_DISK_PARAMS_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace dtsim {

/** Bytes in one kibibyte/mebibyte, for readability. */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

/** Drive-level parameters (mechanism + controller memory). */
struct DiskParams
{
    /// Formatted capacity in bytes (vendor gigabytes).
    std::uint64_t capacityBytes = 18ULL * 1000 * 1000 * 1000;

    /// Bytes per physical sector.
    std::uint32_t sectorSize = 512;

    /// Bytes per logical disk block (file-system block).
    std::uint32_t blockSize = 4 * kKiB;

    /// Spindle speed in revolutions per minute.
    std::uint32_t rpm = 15000;

    /// Sectors on each track. The drive is zoned (~340-440 sectors);
    /// 422 makes the media rate exactly the 54 MB/s raw transfer
    /// rate of Table 1 (422 * 512 B * 250 rev/s).
    std::uint32_t sectorsPerTrack = 422;

    /// Zoned recording: number of recording zones grading from 440
    /// (outer) to 340 (inner) sectors/track. 0 keeps the flat
    /// single-rate model; the zoned model only changes media
    /// transfer rates (outer zones faster), not positioning.
    unsigned recordingZones = 0;

    /// Read/write heads (tracks per cylinder).
    std::uint32_t heads = 8;

    /// Seek-curve coefficients (milliseconds; distance in cylinders):
    /// seek(n) = 0                      if n == 0
    ///         = alpha + beta * sqrt(n) if 0 < n <= theta
    ///         = gamma + delta * n      if n > theta
    double seekAlphaMs = 0.9336;
    double seekBetaMs = 0.0364;
    double seekGammaMs = 1.5503;
    double seekDeltaMs = 0.00054;
    std::uint32_t seekThetaCyls = 1150;

    /// Time to switch the active head within a cylinder.
    Tick headSwitch = fromMillis(0.6);

    /// Extra settle time applied to writes after a seek.
    Tick writeSettle = fromMillis(0.2);

    /// Media transfer rate in bytes per second (raw rate in Table 1).
    double xferRateBytesPerSec = 54.0e6;

    /// Controller cache memory in bytes.
    std::uint64_t cacheBytes = 4 * kMiB;

    /// Controller memory reserved for firmware/scratch, not caching.
    /// 576 KiB calibrates the segment counts to Table 1 of the paper
    /// (27, 13, and 6 segments at 128, 256, and 512 KB).
    std::uint64_t cacheReservedBytes = 576 * kKiB;

    /// Default segment size for the segment-based organization.
    std::uint64_t segmentBytes = 128 * kKiB;

    /// Fixed controller overhead charged to every request.
    Tick requestOverhead = fromMicros(50);

    /// Extra controller time for a FOR bitmap consultation.
    Tick bitmapLookupOverhead = fromMicros(2);

    /// Extra controller time for an HDC (pinned-store) consultation.
    Tick hdcLookupOverhead = fromMicros(1);

    /** Blocks on the disk. */
    std::uint64_t
    totalBlocks() const
    {
        return capacityBytes / blockSize;
    }

    /** Sectors per 4 KB block. */
    std::uint32_t
    sectorsPerBlock() const
    {
        return blockSize / sectorSize;
    }

    /** Total sectors on the disk (rounded down to full blocks). */
    std::uint64_t
    totalSectors() const
    {
        return totalBlocks() * sectorsPerBlock();
    }

    /** One full revolution. */
    Tick
    revolutionTime() const
    {
        return fromSeconds(60.0 / static_cast<double>(rpm));
    }

    /** Cache memory available for caching (after the reservation). */
    std::uint64_t
    usableCacheBytes() const
    {
        return cacheBytes > cacheReservedBytes
            ? cacheBytes - cacheReservedBytes
            : 0;
    }

    /** Usable controller cache capacity in blocks. */
    std::uint64_t
    cacheBlocks() const
    {
        return usableCacheBytes() / blockSize;
    }

    /** Segment capacity in blocks. */
    std::uint64_t
    segmentBlocks() const
    {
        return segmentBytes / blockSize;
    }

    /** Number of segments the cache supports at the segment size. */
    std::uint64_t
    numSegments() const
    {
        return usableCacheBytes() / segmentBytes;
    }

    /**
     * Size of the FOR layout bitmap for this disk, in bytes
     * (one bit per block; 546 KB for the default drive).
     */
    std::uint64_t
    bitmapBytes() const
    {
        return (totalBlocks() + 7) / 8;
    }
};

} // namespace dtsim

#endif // DTSIM_DISK_DISK_PARAMS_HH
