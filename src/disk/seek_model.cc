#include "disk/seek_model.hh"

#include <cmath>

namespace dtsim {

double
SeekModel::seekTimeMs(std::uint32_t distance) const
{
    if (distance == 0)
        return 0.0;
    if (distance <= theta_)
        return alphaMs_ + betaMs_ * std::sqrt(
            static_cast<double>(distance));
    return gammaMs_ + deltaMs_ * static_cast<double>(distance);
}

Tick
SeekModel::seekTime(std::uint32_t distance) const
{
    return fromMillis(seekTimeMs(distance));
}

double
SeekModel::averageSeekMs(std::uint32_t cylinders) const
{
    if (cylinders < 2)
        return 0.0;
    // Exact expectation of seek over the distance distribution of two
    // independent uniform cylinders: P(d) = 2(C - d) / C^2 for d >= 1.
    const double c = static_cast<double>(cylinders);
    double acc = 0.0;
    for (std::uint32_t d = 1; d < cylinders; ++d) {
        const double p = 2.0 * (c - static_cast<double>(d)) / (c * c);
        acc += p * seekTimeMs(d);
    }
    return acc;
}

} // namespace dtsim
