#include "disk/geometry.hh"

#include "sim/logging.hh"

namespace dtsim {

DiskGeometry::DiskGeometry(const DiskParams& params)
    : spt_(params.sectorsPerTrack),
      heads_(params.heads),
      spc_(params.sectorsPerTrack * params.heads),
      sectorsPerBlock_(params.sectorsPerBlock()),
      totalSectors_(params.totalSectors())
{
    if (spt_ == 0 || heads_ == 0)
        fatal("DiskGeometry: sectorsPerTrack and heads must be > 0");
    if (params.blockSize % params.sectorSize != 0)
        fatal("DiskGeometry: block size must be a sector multiple");
    cylinders_ =
        static_cast<std::uint32_t>((totalSectors_ + spc_ - 1) / spc_);
}

Chs
DiskGeometry::sectorToChs(SectorNum s) const
{
    Chs chs;
    chs.cylinder = static_cast<std::uint32_t>(s / spc_);
    const auto in_cyl = static_cast<std::uint32_t>(s % spc_);
    chs.head = in_cyl / spt_;
    chs.sector = in_cyl % spt_;
    return chs;
}

SectorNum
DiskGeometry::chsToSector(const Chs& chs) const
{
    return static_cast<SectorNum>(chs.cylinder) * spc_ +
           static_cast<SectorNum>(chs.head) * spt_ + chs.sector;
}

} // namespace dtsim
