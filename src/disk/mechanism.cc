#include "disk/mechanism.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace dtsim {

DiskMechanism::DiskMechanism(const DiskParams& params,
                             const DiskGeometry& geom)
    : params_(params), geom_(geom), seek_(params),
      revTime_(params.revolutionTime())
{
}

double
DiskMechanism::angleAt(Tick t) const
{
    return static_cast<double>(t % revTime_) /
           static_cast<double>(revTime_);
}

Tick
DiskMechanism::transferTime(std::uint64_t sectors) const
{
    // The media transfer is rotation-locked: a sector passes under
    // the head in exactly 1/spt of a revolution, so sequential
    // accesses continue seamlessly where the previous one ended.
    const double revs = static_cast<double>(sectors) /
                        static_cast<double>(geom_.sectorsPerTrack());
    return static_cast<Tick>(
        revs * static_cast<double>(revTime_) + 0.5);
}

Tick
DiskMechanism::minServiceFloor(std::uint64_t sectors) const
{
    std::uint32_t fastest_spt = geom_.sectorsPerTrack();
    if (zoned_) {
        for (const Zone& z : zoned_->zones())
            fastest_spt = std::max(fastest_spt, z.sectorsPerTrack);
    }
    const double revs = static_cast<double>(sectors) /
                        static_cast<double>(fastest_spt);
    return static_cast<Tick>(revs * static_cast<double>(revTime_));
}

ServiceTiming
DiskMechanism::service(const MediaAccess& access, Tick now)
{
    if (access.sectorCount == 0)
        panic("DiskMechanism: zero-length media access");
    if (access.startSector + access.sectorCount > geom_.totalSectors())
        panic("DiskMechanism: access past end of disk");

    ServiceTiming t;

    const Chs target = geom_.sectorToChs(access.startSector);

    // Arm movement.
    const std::uint32_t dist = target.cylinder > cylinder_
        ? target.cylinder - cylinder_
        : cylinder_ - target.cylinder;
    t.seek = seek_.seekTime(dist);
    if (dist == 0 && target.head != head_)
        t.seek += params_.headSwitch;
    if (access.isWrite && dist > 0)
        t.settle = params_.writeSettle;

    // Rotational positioning: wait for the target sector's leading
    // edge to pass under the head.
    const Tick arrive = now + t.seek + t.settle;
    const double target_angle =
        static_cast<double>(target.sector) /
        static_cast<double>(geom_.sectorsPerTrack());
    const double here = angleAt(arrive);
    double wait = target_angle - here;
    if (wait < 0.0)
        wait += 1.0;
    // A sequential continuation lands exactly on the target sector;
    // floating-point jitter must not turn that into a full
    // revolution. Treat anything within half a sector gap of a whole
    // turn as aligned.
    const double half_sector =
        0.5 / static_cast<double>(geom_.sectorsPerTrack());
    if (wait > 1.0 - half_sector)
        wait = 0.0;
    t.rotational =
        static_cast<Tick>(wait * static_cast<double>(revTime_));

    // Media transfer, with a head-switch penalty at each track
    // boundary crossed (skew hides the rotational component).
    t.transfer = zoned_
        ? zoned_->transferTime(access.startSector,
                               access.sectorCount, revTime_)
        : transferTime(access.sectorCount);
    const std::uint64_t first_track =
        access.startSector / geom_.sectorsPerTrack();
    const std::uint64_t last_track =
        (access.startSector + access.sectorCount - 1) /
        geom_.sectorsPerTrack();
    t.transfer += (last_track - first_track) * params_.headSwitch;

    ++counters_.accesses;
    counters_.sectors += access.sectorCount;
    if (dist > 0) {
        ++counters_.seeks;
        counters_.seekCylinders += dist;
    } else if (target.head != head_) {
        ++counters_.headSwitches;
    }
    counters_.trackCrossings += last_track - first_track;

    // Advance head state to the end of the access.
    const SectorNum end = access.startSector + access.sectorCount - 1;
    const Chs end_chs = geom_.sectorToChs(end);
    cylinder_ = end_chs.cylinder;
    head_ = end_chs.head;

    return t;
}

} // namespace dtsim
