/**
 * @file
 * The disk mechanism: head position, platter rotation, and media
 * access timing.
 *
 * Seek time follows the three-piece model; rotational delay is
 * positional (the platter angle is a pure function of absolute
 * simulated time, so the wait for a target sector is computed exactly
 * rather than drawn at random); the media transfer proceeds at the raw
 * transfer rate with a head-switch penalty per track crossing (track
 * skew is assumed to hide the rotational component of a switch, as on
 * the real drive).
 */

#ifndef DTSIM_DISK_MECHANISM_HH
#define DTSIM_DISK_MECHANISM_HH

#include <cstdint>

#include "disk/disk_params.hh"
#include "disk/geometry.hh"
#include "disk/seek_model.hh"
#include "disk/zones.hh"
#include "sim/ticks.hh"

namespace dtsim {

/** One contiguous media access (in sectors). */
struct MediaAccess
{
    SectorNum startSector;
    std::uint64_t sectorCount;
    bool isWrite = false;
};

/** Mechanical activity counters for one drive. */
struct MechCounters
{
    std::uint64_t accesses = 0;       ///< media accesses serviced
    std::uint64_t sectors = 0;        ///< sectors transferred
    std::uint64_t seeks = 0;          ///< accesses that moved the arm
    std::uint64_t seekCylinders = 0;  ///< total cylinders travelled
    std::uint64_t headSwitches = 0;   ///< same-cylinder head changes
    std::uint64_t trackCrossings = 0; ///< boundaries crossed mid-transfer
};

/** Timing breakdown of one serviced media access. */
struct ServiceTiming
{
    Tick seek = 0;
    Tick settle = 0;
    Tick rotational = 0;
    Tick transfer = 0;

    Tick
    total() const
    {
        return seek + settle + rotational + transfer;
    }
};

/**
 * The electromechanical part of one drive. Stateful: tracks the arm's
 * cylinder and active head across accesses; the rotational position is
 * derived from absolute time.
 */
class DiskMechanism
{
  public:
    DiskMechanism(const DiskParams& params, const DiskGeometry& geom);

    /**
     * Compute the service timing of an access starting at `now` and
     * advance the head state. The caller advances simulated time by
     * the returned total.
     *
     * @param access The contiguous sector run to read or write.
     * @param now Absolute start time of the media operation.
     * @return Component breakdown; total() is the service time.
     */
    ServiceTiming service(const MediaAccess& access, Tick now);

    /** Arm's current cylinder. */
    std::uint32_t currentCylinder() const { return cylinder_; }

    /** Active head. */
    std::uint32_t currentHead() const { return head_; }

    /** The platter angle at time `t`, in [0, 1). */
    double angleAt(Tick t) const;

    /** Transfer time for `sectors` contiguous sectors (media rate). */
    Tick transferTime(std::uint64_t sectors) const;

    /**
     * Lower bound on the total service time of any media access of at
     * least `sectors` sectors: seek, settle, and rotational wait can
     * all be zero, so the floor is the transfer time at the drive's
     * fastest recording zone, rounded down. The sharded kernel's
     * conservative window relies on this bound: no media completion
     * can land closer to its enqueue than the floor.
     */
    Tick minServiceFloor(std::uint64_t sectors) const;

    /**
     * Attach a zoned-recording model: media transfers then run at
     * the zone's rate (positioning stays on the flat geometry). The
     * geometry must outlive the mechanism.
     */
    void setZonedGeometry(const ZonedGeometry* zoned)
    {
        zoned_ = zoned;
    }

    /** Lifetime mechanical activity counters. */
    const MechCounters& counters() const { return counters_; }

  private:
    MechCounters counters_;
    const DiskParams& params_;
    const DiskGeometry& geom_;
    const ZonedGeometry* zoned_ = nullptr;
    SeekModel seek_;
    Tick revTime_;
    std::uint32_t cylinder_ = 0;
    std::uint32_t head_ = 0;
};

} // namespace dtsim

#endif // DTSIM_DISK_MECHANISM_HH
