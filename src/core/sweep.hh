/**
 * @file
 * Parallel sweep runner: execute a batch of independent runTrace()
 * experiments across a thread pool.
 *
 * Every paper figure is a sweep of runs that differ only in their
 * SystemConfig (striping unit, HDC budget, system kind, ...). Each
 * run owns its own EventQueue and DiskArray and only reads the shared
 * Trace/bitmap/pin inputs, so running jobs concurrently is safe and
 * the results are bit-identical to executing them one by one.
 */

#ifndef DTSIM_CORE_SWEEP_HH
#define DTSIM_CORE_SWEEP_HH

#include <vector>

#include "core/runner.hh"

namespace dtsim {

/** One independent experiment in a sweep. */
struct SweepJob
{
    SystemConfig cfg;

    /** Trace to replay; must outlive runSweep(). */
    const Trace* trace = nullptr;

    /**
     * Per-disk FOR bitmaps (required when cfg.kind is FOR, ignored
     * otherwise); must outlive runSweep().
     */
    const std::vector<LayoutBitmap>* bitmaps = nullptr;

    /** HDC warm-start pin set; must outlive runSweep(). */
    const std::vector<ArrayBlock>* pinned = nullptr;

    /**
     * Observability options of this job. Each job writes its own
     * stats/trace files, so give distinct paths when enabling output
     * on more than one job; a stream-backed StatsSink, if set, must
     * be safe to write from the worker thread running the job (jobs
     * never share a stream unless the caller points them at the same
     * one).
     */
    RunOptions opts;
};

/**
 * The sweep thread count: DTSIM_JOBS when set to a positive integer,
 * otherwise std::thread::hardware_concurrency() (minimum 1).
 */
unsigned sweepJobs();

/**
 * Run every job and return results in job order.
 *
 * Jobs are dispatched to a pool of `threads` worker threads (0 means
 * sweepJobs()). Each job is fully independent, so results are
 * bit-identical regardless of the thread count; with one thread the
 * jobs run inline on the calling thread.
 *
 * If a job throws (e.g. a misconfigured system), the first exception
 * in job order is rethrown on the calling thread after all workers
 * finish.
 */
std::vector<RunResult> runSweep(const std::vector<SweepJob>& jobs,
                                unsigned threads = 0);

/**
 * Sum the raw controller counters of a sweep's results. Each job's
 * counters were aggregated inside its own run, so this total is
 * independent of the thread count the sweep ran with.
 */
ControllerStats aggregateSweepStats(const std::vector<RunResult>& results);

/** Sum the read-ahead accuracy counters of a sweep's results. */
RaCounters aggregateSweepRa(const std::vector<RunResult>& results);

} // namespace dtsim

#endif // DTSIM_CORE_SWEEP_HH
