#include "core/replay.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

ReplayEngine::ReplayEngine(EventQueue& eq, DiskArray& array,
                           const Trace& trace, unsigned streams,
                           unsigned workers)
    : eq_(eq), array_(array), trace_(trace),
      streams_(std::max(1u, streams)),
      workers_(workers == 0 ? std::max(1u, streams) : workers)
{
    // Pre-compute job boundaries: consecutive records sharing a job
    // id form one job.
    std::size_t i = 0;
    while (i < trace_.size()) {
        std::size_t j = i + 1;
        while (j < trace_.size() && trace_[j].job == trace_[i].job)
            ++j;
        jobs_.push_back(JobRange{i, j});
        i = j;
    }
}

void
ReplayEngine::claimNext()
{
    if (nextJob_ >= jobs_.size())
        return;
    const JobRange jr = jobs_[nextJob_++];
    ++active_;
    enqueueReady(jr.begin, jr.end);
}

void
ReplayEngine::enqueueReady(std::size_t idx, std::size_t end)
{
    ready_.emplace_back(idx, end);
    dispatch();
}

void
ReplayEngine::dispatch()
{
    while (busyWorkers_ < workers_ && !ready_.empty()) {
        const auto [idx, end] = ready_.front();
        ready_.pop_front();
        ++busyWorkers_;
        issue(idx, end);
    }
}

void
ReplayEngine::issue(std::size_t idx, std::size_t end)
{
    const TraceRecord& rec = trace_[idx];

    ArrayRequest req;
    req.id = nextReqId_++;
    req.start = rec.start;
    req.count = rec.count;
    req.isWrite = rec.isWrite;
    req.onComplete = [this, idx, end](const ArrayRequest& done,
                                      Tick when) {
        ++metrics_.requests;
        metrics_.blocks += done.count;
        const Tick lat = when - done.issued;
        metrics_.sumLatency += lat;
        metrics_.maxLatency = std::max(metrics_.maxLatency, lat);
        lastDone_ = std::max(lastDone_, when);

        if (observer_)
            observer_(trace_[idx], when);

        // The worker is released; the job's next record (if any)
        // re-queues at the back of the ready FIFO, behind the other
        // connections waiting for a worker.
        --busyWorkers_;
        if (idx + 1 < end) {
            enqueueReady(idx + 1, end);
        } else {
            ++metrics_.jobs;
            --active_;
            claimNext();
            dispatch();
        }
    };
    array_.submit(std::move(req));
}

Tick
ReplayEngine::run()
{
    if (!start())
        return eq_.now();
    eq_.run();
    return finish();
}

bool
ReplayEngine::start()
{
    if (jobs_.empty())
        return false;
    for (unsigned s = 0; s < streams_ && nextJob_ < jobs_.size(); ++s)
        claimNext();
    return true;
}

Tick
ReplayEngine::finish() const
{
    if (active_ != 0 || nextJob_ != jobs_.size() || !ready_.empty())
        panic("ReplayEngine: replay stalled (%u active, %zu/%zu jobs)",
              active_, nextJob_, jobs_.size());
    return lastDone_;
}

} // namespace dtsim
