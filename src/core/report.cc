#include "core/report.hh"

#include "stats/stats.hh"

namespace dtsim {

void
printReport(std::ostream& os, const SystemConfig& cfg,
            const RunResult& r)
{
    stats::StatGroup root("sim");

    stats::Scalar io_time(root, "io_time_ms",
                          "total I/O time (makespan)");
    io_time.set(toMillis(r.ioTime));
    stats::Scalar flush(root, "hdc_flush_ms",
                        "extra time flushing dirty HDC blocks");
    flush.set(toMillis(r.flushTime));
    stats::Scalar reqs(root, "requests",
                       "disk requests completed");
    reqs.set(static_cast<double>(r.requests));
    stats::Scalar blocks(root, "blocks", "blocks transferred");
    blocks.set(static_cast<double>(r.blocks));
    stats::Scalar tput(root, "throughput_mbps",
                       "delivered throughput");
    tput.set(r.throughputMBps);
    stats::Scalar lat(root, "mean_latency_ms",
                      "mean request latency");
    lat.set(r.meanLatencyMs);
    stats::Scalar util(root, "disk_utilization",
                       "mean media busy fraction");
    util.set(r.diskUtilization);

    stats::StatGroup cache(root, "cache");
    stats::Scalar hit(cache, "hit_rate",
                      "requests served without media access");
    hit.set(r.cacheHitRate);
    stats::Scalar hdc_hit(cache, "hdc_hit_rate",
                          "requests served by the HDC store");
    hdc_hit.set(r.hdcHitRate);
    stats::Scalar ra_blocks(cache, "read_ahead_blocks",
                            "speculative blocks fetched");
    ra_blocks.set(static_cast<double>(r.agg.readAheadBlocks));
    stats::Scalar ra_hits(cache, "ra_hit_blocks",
                          "blocks served from the read-ahead cache");
    ra_hits.set(static_cast<double>(r.agg.raHitBlocks));
    stats::Scalar hdc_blocks(cache, "hdc_hit_blocks",
                             "blocks served from the HDC store");
    hdc_blocks.set(static_cast<double>(r.agg.hdcHitBlocks));
    stats::Scalar vpins(cache, "victim_pins",
                        "victim-policy pin commands issued");
    vpins.set(static_cast<double>(r.victimPins));

    stats::StatGroup media(root, "media");
    stats::Scalar accesses(media, "accesses", "media accesses");
    accesses.set(static_cast<double>(r.agg.mediaAccesses));
    stats::Scalar mblocks(media, "demand_blocks",
                          "demanded blocks read/written");
    mblocks.set(static_cast<double>(r.agg.mediaBlocks));
    stats::Scalar seek(media, "seek_ms", "total seek time");
    seek.set(toMillis(r.agg.seekTime));
    stats::Scalar rot(media, "rotation_ms",
                      "total rotational delay");
    rot.set(toMillis(r.agg.rotTime));
    stats::Scalar xfer(media, "transfer_ms",
                       "total media transfer time");
    xfer.set(toMillis(r.agg.xferTime));
    stats::Scalar flushes(media, "hdc_flush_writes",
                          "background HDC flush media jobs");
    flushes.set(static_cast<double>(r.agg.flushWrites));

    os << "system: " << cfg.label() << "  disks=" << cfg.disks
       << "  unit=" << cfg.stripeUnitBytes / 1024 << "KB"
       << "  streams=" << cfg.streams << "\n";
    root.print(os);
}

} // namespace dtsim
