#include "core/report.hh"

#include "array/disk_array.hh"
#include "stats/stats.hh"

namespace dtsim {

namespace {

/**
 * The single-run kernel throughput line. Wall-clock readings (and the
 * event count, which differs slightly between the serial and sharded
 * kernels' bookkeeping) are not simulation results, so both printers
 * emit them as a comment-style line that byte-comparisons strip.
 */
void
printRuntimeLine(std::ostream& os, const RunResult& r)
{
    os << "# runtime: events=" << r.eventsFired
       << " wall_ms=" << r.wallSeconds * 1.0e3
       << " events_per_sec=" << r.eventsPerSec()
       << " jobs_intra=" << r.jobsIntra << " (volatile; excluded from"
       << " determinism comparisons)\n";
}

/**
 * The sampled-tracing accounting line. The dropped count depends on
 * writer-thread timing (ring overflow), so the whole line is comment
 * style and stripped from byte comparisons alongside "# runtime:".
 */
void
printTraceLine(std::ostream& os, const RunResult& r)
{
    if (r.traceRecords == 0 && r.traceSampledOut == 0 &&
        r.traceDropped == 0)
        return;
    os << "# trace: records=" << r.traceRecords
       << " sampled_out=" << r.traceSampledOut
       << " dropped=" << r.traceDropped
       << " (volatile; excluded from determinism comparisons)\n";
}

/** Add an owned scalar to `g` and set it. */
void
addScalar(stats::StatGroup& g, const char* name, const char* desc,
          double v)
{
    g.make<stats::Scalar>(name, desc).set(v);
}

void
addScalarU(stats::StatGroup& g, const char* name, const char* desc,
           std::uint64_t v)
{
    addScalar(g, name, desc, static_cast<double>(v));
}

/** Fill a group with the run-level results of `r`. */
void
fillRunGroup(stats::StatGroup& root, const RunResult& r)
{
    addScalar(root, "io_time_ms", "total I/O time (makespan)",
              toMillis(r.ioTime));
    addScalar(root, "hdc_flush_ms",
              "extra time flushing dirty HDC blocks",
              toMillis(r.flushTime));
    addScalar(root, "elapsed_ms", "io_time_ms + hdc_flush_ms",
              toMillis(r.elapsed));
    addScalarU(root, "requests", "disk requests completed",
               r.requests);
    addScalarU(root, "blocks", "blocks transferred", r.blocks);
    addScalar(root, "throughput_mbps",
              "delivered throughput over io_time",
              r.throughputMBps);
    addScalar(root, "throughput_elapsed_mbps",
              "delivered throughput over elapsed time",
              r.throughputElapsedMBps);
    addScalar(root, "mean_latency_ms", "mean request latency",
              r.meanLatencyMs);
    addScalar(root, "latency_max_ms", "maximum request latency",
              toMillis(r.agg.latencyMax));
    addScalar(root, "disk_utilization", "mean media busy fraction",
              r.diskUtilization);

    stats::StatGroup& cache = root.makeGroup("cache");
    addScalar(cache, "hit_rate",
              "requests served without media access", r.cacheHitRate);
    addScalar(cache, "hdc_hit_rate",
              "requests served by the HDC store", r.hdcHitRate);
    addScalarU(cache, "read_ahead_blocks",
               "speculative blocks fetched", r.agg.readAheadBlocks);
    addScalarU(cache, "ra_hit_blocks",
               "blocks served from the read-ahead cache",
               r.agg.raHitBlocks);
    addScalarU(cache, "hdc_hit_blocks",
               "blocks served from the HDC store",
               r.agg.hdcHitBlocks);
    addScalarU(cache, "victim_pins",
               "victim-policy pin commands issued", r.victimPins);

    stats::StatGroup& ra = root.makeGroup("read_ahead");
    addScalarU(ra, "spec_inserted",
               "speculative blocks inserted into the cache",
               r.ra.specInserted);
    addScalarU(ra, "spec_used",
               "speculative blocks later demanded (useful)",
               r.ra.specUsed);
    addScalarU(ra, "spec_wasted",
               "speculative blocks evicted or invalidated unused",
               r.ra.specWasted);
    addScalar(ra, "accuracy", "spec_used / spec_inserted",
              r.ra.accuracy());

    stats::StatGroup& media = root.makeGroup("media");
    addScalarU(media, "accesses", "media accesses",
               r.agg.mediaAccesses);
    addScalarU(media, "demand_blocks", "demanded blocks read/written",
               r.agg.mediaBlocks);
    addScalar(media, "seek_ms", "total seek time",
              toMillis(r.agg.seekTime));
    addScalar(media, "rotation_ms", "total rotational delay",
              toMillis(r.agg.rotTime));
    addScalar(media, "transfer_ms", "total media transfer time",
              toMillis(r.agg.xferTime));
    addScalar(media, "queue_ms", "total scheduler queue wait",
              toMillis(r.agg.queueTime));
    addScalar(media, "bus_ms", "total SCSI bus transfer time",
              toMillis(r.agg.busTime));
    addScalarU(media, "hdc_flush_writes",
               "background HDC flush media jobs", r.agg.flushWrites);
}

} // namespace

void
printReport(std::ostream& os, const SystemConfig& cfg,
            const RunResult& r)
{
    stats::StatGroup root("sim");
    fillRunGroup(root, r);

    os << "system: " << cfg.label() << "  disks=" << cfg.disks
       << "  unit=" << cfg.stripeUnitBytes / 1024 << "KB"
       << "  streams=" << cfg.streams << "\n";
    printRuntimeLine(os, r);
    printTraceLine(os, r);
    if (r.faults.any())
        os << "faults: media-errors=" << r.faults.mediaErrors
           << "  retries=" << r.faults.retries
           << "  remaps=" << r.faults.remapEvents
           << "  stalls=" << r.faults.stalls
           << "  disk-failures=" << r.faults.diskFailures
           << "  degraded-reads=" << r.faults.degradedReads
           << "  rebuilt-blocks=" << r.faults.rebuildBlocks << "\n";
    root.print(os);
}

void
writeStatsDump(std::ostream& os, const SystemConfig& cfg,
               const RunResult& r, const DiskArray& array,
               const stats::ServiceStats* svc,
               const BufferCacheStats* fs_stats)
{
    os << "# dtsim stats dump -- every name is documented in"
          " docs/METRICS.md\n";
    printRuntimeLine(os, r);
    printTraceLine(os, r);
    os << "system: " << cfg.label() << "  disks=" << cfg.disks
       << "  unit=" << cfg.stripeUnitBytes / 1024 << "KB"
       << "  streams=" << cfg.streams << "\n";

    stats::StatGroup root("sim");
    fillRunGroup(root, r);

    stats::StatGroup& conf = root.makeGroup("config");
    addScalarU(conf, "disks", "disks in the array", cfg.disks);
    addScalarU(conf, "stripe_unit_kb", "striping unit",
               cfg.stripeUnitBytes / 1024);
    addScalarU(conf, "streams", "concurrent I/O streams",
               cfg.streams);
    addScalarU(conf, "workers", "replay worker threads (0 = one per"
               " stream)", cfg.workers);
    addScalarU(conf, "hdc_kb_per_disk", "HDC budget per disk",
               cfg.hdcBytesPerDisk / 1024);
    addScalarU(conf, "seed", "workload/layout RNG seed", cfg.seed);

    if (fs_stats) {
        stats::StatGroup& fs = root.makeGroup("fs");
        addScalarU(fs, "read_lookups",
                   "buffer-cache read lookups (trace generation)",
                   fs_stats->readLookups);
        addScalarU(fs, "read_misses",
                   "read lookups that missed to disk",
                   fs_stats->readMisses);
        addScalar(fs, "read_hit_rate", "1 - read_misses/read_lookups",
                  fs_stats->readHitRate());
        addScalarU(fs, "write_lookups", "buffer-cache write lookups",
                   fs_stats->writeLookups);
        addScalarU(fs, "write_merges",
                   "writes absorbed into already-dirty blocks",
                   fs_stats->writeMerges);
        addScalarU(fs, "evictions", "buffer-cache evictions",
                   fs_stats->evictions);
        addScalarU(fs, "dirty_writebacks",
                   "dirty blocks written back to disk",
                   fs_stats->dirtyWritebacks);
    }

    // Component counters (per-disk + bus) join the same tree so one
    // print covers everything under the "sim." prefix. Clock-derived
    // ratios are pinned to the run's elapsed time, which a trailing
    // snapshot/stream event may have advanced the queue clock past.
    array.exportStats(root, r.elapsed);
    root.print(os);

    // The service histograms live in the runner's own group; print
    // them under the same prefix so the dump reads as one namespace.
    if (svc)
        svc->group.print(os, "sim.");
}

void
writeStatsSnapshot(std::ostream& os, const DiskArray& array,
                   const stats::ServiceStats* svc, Tick now)
{
    os << "# snapshot @" << now << " (" << toMillis(now) << " ms)\n";
    stats::StatGroup root("sim");
    // Pin clock-derived ratios to the snapshot tick: under the
    // sharded kernel the shard clocks sit just below the sync tick
    // when a snapshot front event runs, so reading a live clock here
    // would not reproduce the serial kernel's view.
    array.exportStats(root, now);
    root.print(os);
    if (svc)
        svc->group.print(os, "sim.");
}

void
writeStatsFrame(std::ostream& os, const DiskArray& array,
                const stats::ServiceStats* svc, Tick now,
                std::uint64_t seq, bool final_frame)
{
    // Both delimiters carry the sequence number so a tail reader can
    // match them up and detect torn frames; the body is the same
    // incremental counter tree a snapshot prints.
    os << "==> dtsim stats seq=" << seq << " tick=" << now << " ("
       << toMillis(now) << " ms)" << (final_frame ? " final" : "")
       << " <==\n";
    stats::StatGroup root("sim");
    array.exportStats(root, now);
    root.print(os);
    if (svc)
        svc->group.print(os, "sim.");
    os << "==> end seq=" << seq << " <==\n";
    // A frame is only useful if the tail reader sees it while the
    // run is still going.
    os.flush();
}

} // namespace dtsim
