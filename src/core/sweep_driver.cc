#include "core/sweep_driver.hh"

#include <utility>

#include "array/striping.hh"
#include "core/experiment.hh"
#include "hdc/hdc_planner.hh"
#include "sim/logging.hh"
#include "workload/server_models.hh"
#include "workload/synthetic.hh"

namespace dtsim {

namespace {

/** The server-model preset for a workload kind at `scale`. */
ServerModelParams
serverPreset(WorkloadKind kind, double scale)
{
    switch (kind) {
      case WorkloadKind::Web: return webServerParams(scale);
      case WorkloadKind::Proxy: return proxyServerParams(scale);
      case WorkloadKind::File: return fileServerParams(scale);
      case WorkloadKind::Synthetic: break;
    }
    panic("serverPreset: not a server workload");
}

std::uint64_t
arrayCapacityBlocks(const SimulationConfig& sim)
{
    // Mirroring halves the addressable capacity: logical blocks live
    // on the striped half, the other half replicates them.
    return logicalDisks(sim.system) * sim.system.disk.totalBlocks();
}

} // namespace

BuiltWorkload
buildWorkload(const SimulationConfig& sim)
{
    BuiltWorkload out;
    const std::uint64_t capacity = arrayCapacityBlocks(sim);
    if (sim.workload == WorkloadKind::Synthetic) {
        SyntheticWorkload w = makeSynthetic(sim.synthetic, capacity);
        out.trace = std::move(w.trace);
        out.image = std::move(w.image);
    } else {
        const ServerModelParams p =
            serverPreset(sim.workload, sim.scale);
        out.modelStreams = p.streams;
        ServerWorkload w = makeServerWorkload(p, capacity);
        out.trace = std::move(w.trace);
        out.image = std::move(w.image);
        out.fsStats = w.bufferCache;
        out.hasFsStats = true;
    }
    return out;
}

void
applyModelStreams(SimulationConfig& sim)
{
    if (sim.workload != WorkloadKind::Synthetic)
        sim.system.streams =
            serverPreset(sim.workload, sim.scale).streams;
}

std::string
SweepCache::workloadKey(const SimulationConfig& sim)
{
    // The workload build depends on the generator parameters and the
    // target capacity; the header renderer gives a canonical, stable
    // serialization of the former.
    return renderConfigHeader(sim, {"workload.", "synthetic."}) +
           "capacity=" + std::to_string(arrayCapacityBlocks(sim));
}

BuiltWorkload&
SweepCache::workload(const SimulationConfig& sim)
{
    const std::string key = workloadKey(sim);
    auto it = workloads_.find(key);
    if (it == workloads_.end()) {
        it = workloads_
                 .emplace(key, std::make_unique<BuiltWorkload>(
                                   buildWorkload(sim)))
                 .first;
    }
    return *it->second;
}

const std::vector<LayoutBitmap>&
SweepCache::bitmaps(const SimulationConfig& sim)
{
    const SystemConfig& sys = sim.system;
    const std::string key =
        workloadKey(sim) +
        "|disks=" + std::to_string(logicalDisks(sys)) +
        "|unit=" + std::to_string(sys.stripeUnitBytes);
    auto it = bitmaps_.find(key);
    if (it == bitmaps_.end()) {
        BuiltWorkload& w = workload(sim);
        auto built = std::make_unique<std::vector<LayoutBitmap>>();
        if (w.image) {
            StripingMap striping(
                logicalDisks(sys),
                sys.stripeUnitBytes / sys.disk.blockSize,
                sys.disk.totalBlocks());
            *built = w.image->buildBitmaps(striping);
        }
        it = bitmaps_.emplace(key, std::move(built)).first;
    }
    return *it->second;
}

const std::vector<ArrayBlock>&
SweepCache::pins(const SimulationConfig& sim)
{
    const SystemConfig& sys = sim.system;
    const std::string key =
        workloadKey(sim) +
        "|disks=" + std::to_string(logicalDisks(sys)) +
        "|unit=" + std::to_string(sys.stripeUnitBytes) + "|hdcblk=" +
        std::to_string(hdcBlocksPerDisk(sys));
    auto it = pins_.find(key);
    if (it == pins_.end()) {
        BuiltWorkload& w = workload(sim);
        StripingMap striping(
            logicalDisks(sys),
            sys.stripeUnitBytes / sys.disk.blockSize,
            sys.disk.totalBlocks());
        auto built = std::make_unique<std::vector<ArrayBlock>>(
            selectPinnedBlocks(w.trace, striping,
                               hdcBlocksPerDisk(sys)));
        it = pins_.emplace(key, std::move(built)).first;
    }
    return *it->second;
}

std::vector<RunResult>
runSweepPoints(std::vector<SweepPoint>& points, SweepCache& cache,
               unsigned jobs)
{
    std::vector<Experiment> batch;
    std::vector<std::size_t> batch_point;
    batch.reserve(points.size());

    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepPoint& p = points[i];
        if (!p.feasible) {
            warn("sweep point %zu skipped: %s", i,
                 p.whyNot.c_str());
            continue;
        }
        applyModelStreams(p.cfg);

        BuiltWorkload& w = cache.workload(p.cfg);

        Experiment e(p.cfg);
        e.replay(w.trace);
        if (p.cfg.system.kind == SystemKind::FOR) {
            const std::vector<LayoutBitmap>& bm = cache.bitmaps(p.cfg);
            if (bm.empty()) {
                p.feasible = false;
                p.whyNot = "FOR needs a file-system image for its "
                           "layout bitmaps";
                warn("sweep point %zu skipped: %s", i,
                     p.whyNot.c_str());
                continue;
            }
            e.bitmaps(bm);
        }
        if (p.cfg.system.hdcBytesPerDisk > 0 &&
            p.cfg.system.hdcPolicy == HdcPolicy::Pinned) {
            e.pins(cache.pins(p.cfg));
        }
        if (w.hasFsStats)
            e.fsStats(w.fsStats);
        e.header(renderConfigHeader(p.cfg));

        batch_point.push_back(i);
        batch.push_back(std::move(e));
    }

    const std::vector<RunResult> ran =
        Experiment::runAll(batch, jobs);

    std::vector<RunResult> results(points.size());
    for (std::size_t j = 0; j < ran.size(); ++j)
        results[batch_point[j]] = ran[j];
    return results;
}

std::vector<RunResult>
runSweepPoints(std::vector<SweepPoint>& points, unsigned jobs)
{
    SweepCache cache;
    return runSweepPoints(points, cache, jobs);
}

} // namespace dtsim
