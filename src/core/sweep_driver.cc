#include "core/sweep_driver.hh"

#include <sstream>
#include <utility>

#include "array/striping.hh"
#include "hdc/hdc_planner.hh"
#include "sim/logging.hh"
#include "workload/server_models.hh"
#include "workload/synthetic.hh"

namespace dtsim {

namespace {

/** The server-model preset for a workload kind at `scale`. */
ServerModelParams
serverPreset(WorkloadKind kind, double scale)
{
    switch (kind) {
      case WorkloadKind::Web: return webServerParams(scale);
      case WorkloadKind::Proxy: return proxyServerParams(scale);
      case WorkloadKind::File: return fileServerParams(scale);
      case WorkloadKind::Synthetic: break;
    }
    panic("serverPreset: not a server workload");
}

std::uint64_t
arrayCapacityBlocks(const SimulationConfig& sim)
{
    return sim.system.disks * sim.system.disk.totalBlocks();
}

} // namespace

BuiltWorkload
buildWorkload(const SimulationConfig& sim)
{
    BuiltWorkload out;
    const std::uint64_t capacity = arrayCapacityBlocks(sim);
    if (sim.workload == WorkloadKind::Synthetic) {
        SyntheticWorkload w = makeSynthetic(sim.synthetic, capacity);
        out.trace = std::move(w.trace);
        out.image = std::move(w.image);
    } else {
        const ServerModelParams p =
            serverPreset(sim.workload, sim.scale);
        out.modelStreams = p.streams;
        ServerWorkload w = makeServerWorkload(p, capacity);
        out.trace = std::move(w.trace);
        out.image = std::move(w.image);
        out.fsStats = w.bufferCache;
        out.hasFsStats = true;
    }
    return out;
}

void
applyModelStreams(SimulationConfig& sim)
{
    if (sim.workload != WorkloadKind::Synthetic)
        sim.system.streams =
            serverPreset(sim.workload, sim.scale).streams;
}

std::string
SweepCache::workloadKey(const SimulationConfig& sim)
{
    // The workload build depends on the generator parameters and the
    // target capacity; the header renderer gives a canonical, stable
    // serialization of the former.
    return renderConfigHeader(sim, {"workload.", "synthetic."}) +
           "capacity=" + std::to_string(arrayCapacityBlocks(sim));
}

BuiltWorkload&
SweepCache::workload(const SimulationConfig& sim)
{
    const std::string key = workloadKey(sim);
    auto it = workloads_.find(key);
    if (it == workloads_.end()) {
        it = workloads_
                 .emplace(key, std::make_unique<BuiltWorkload>(
                                   buildWorkload(sim)))
                 .first;
    }
    return *it->second;
}

const std::vector<LayoutBitmap>&
SweepCache::bitmaps(const SimulationConfig& sim)
{
    const SystemConfig& sys = sim.system;
    const std::string key =
        workloadKey(sim) + "|disks=" + std::to_string(sys.disks) +
        "|unit=" + std::to_string(sys.stripeUnitBytes);
    auto it = bitmaps_.find(key);
    if (it == bitmaps_.end()) {
        BuiltWorkload& w = workload(sim);
        auto built = std::make_unique<std::vector<LayoutBitmap>>();
        if (w.image) {
            StripingMap striping(
                sys.disks, sys.stripeUnitBytes / sys.disk.blockSize,
                sys.disk.totalBlocks());
            *built = w.image->buildBitmaps(striping);
        }
        it = bitmaps_.emplace(key, std::move(built)).first;
    }
    return *it->second;
}

const std::vector<ArrayBlock>&
SweepCache::pins(const SimulationConfig& sim)
{
    const SystemConfig& sys = sim.system;
    const std::string key =
        workloadKey(sim) + "|disks=" + std::to_string(sys.disks) +
        "|unit=" + std::to_string(sys.stripeUnitBytes) + "|hdcblk=" +
        std::to_string(hdcBlocksPerDisk(sys));
    auto it = pins_.find(key);
    if (it == pins_.end()) {
        BuiltWorkload& w = workload(sim);
        StripingMap striping(
            sys.disks, sys.stripeUnitBytes / sys.disk.blockSize,
            sys.disk.totalBlocks());
        auto built = std::make_unique<std::vector<ArrayBlock>>(
            selectPinnedBlocks(w.trace, striping,
                               hdcBlocksPerDisk(sys)));
        it = pins_.emplace(key, std::move(built)).first;
    }
    return *it->second;
}

std::vector<RunResult>
runSweepPoints(std::vector<SweepPoint>& points, SweepCache& cache,
               unsigned jobs)
{
    std::vector<SweepJob> sweep;
    std::vector<std::size_t> job_point;
    sweep.reserve(points.size());

    for (std::size_t i = 0; i < points.size(); ++i) {
        SweepPoint& p = points[i];
        if (!p.feasible) {
            warn("sweep point %zu skipped: %s", i,
                 p.whyNot.c_str());
            continue;
        }
        applyModelStreams(p.cfg);

        BuiltWorkload& w = cache.workload(p.cfg);

        SweepJob job;
        job.cfg = p.cfg.system;
        job.trace = &w.trace;
        if (p.cfg.system.kind == SystemKind::FOR) {
            const std::vector<LayoutBitmap>& bm = cache.bitmaps(p.cfg);
            if (bm.empty()) {
                p.feasible = false;
                p.whyNot = "FOR needs a file-system image for its "
                           "layout bitmaps";
                warn("sweep point %zu skipped: %s", i,
                     p.whyNot.c_str());
                continue;
            }
            job.bitmaps = &bm;
        }
        if (p.cfg.system.hdcBytesPerDisk > 0 &&
            p.cfg.system.hdcPolicy == HdcPolicy::Pinned) {
            job.pinned = &cache.pins(p.cfg);
        }
        job.opts.statsOutPath = p.cfg.output.statsOut;
        job.opts.tracePath = p.cfg.output.trace;
        job.opts.statsIntervalTicks = p.cfg.output.statsIntervalTicks;
        if (w.hasFsStats)
            job.opts.fsStats = &w.fsStats;
        job.opts.configHeader = renderConfigHeader(p.cfg);

        job_point.push_back(i);
        sweep.push_back(std::move(job));
    }

    const std::vector<RunResult> ran = runSweep(sweep, jobs);

    std::vector<RunResult> results(points.size());
    for (std::size_t j = 0; j < ran.size(); ++j)
        results[job_point[j]] = ran[j];
    return results;
}

std::vector<RunResult>
runSweepPoints(std::vector<SweepPoint>& points, unsigned jobs)
{
    SweepCache cache;
    return runSweepPoints(points, cache, jobs);
}

RunResult
PreparedRun::run() const
{
    RunOptions o = opts;
    if (workload.hasFsStats)
        o.fsStats = &workload.fsStats;
    return runTrace(cfg.system, workload.trace, o,
                    bitmaps.empty() ? nullptr : &bitmaps,
                    pinned.empty() ? nullptr : &pinned);
}

PreparedRun
prepareRun(const SimulationConfig& sim)
{
    PreparedRun r;
    r.cfg = sim;
    applyModelStreams(r.cfg);

    const std::vector<std::string> errs = validateConfig(r.cfg);
    if (!errs.empty()) {
        std::ostringstream os;
        for (const std::string& e : errs)
            os << "\n  " << e;
        fatal("invalid configuration:%s", os.str().c_str());
    }

    r.workload = buildWorkload(r.cfg);

    const SystemConfig& sys = r.cfg.system;
    if (r.workload.image) {
        StripingMap striping(
            sys.disks, sys.stripeUnitBytes / sys.disk.blockSize,
            sys.disk.totalBlocks());
        r.bitmaps = r.workload.image->buildBitmaps(striping);
    }
    if (sys.hdcBytesPerDisk > 0 &&
        sys.hdcPolicy == HdcPolicy::Pinned) {
        StripingMap striping(
            sys.disks, sys.stripeUnitBytes / sys.disk.blockSize,
            sys.disk.totalBlocks());
        r.pinned = selectPinnedBlocks(r.workload.trace, striping,
                                      hdcBlocksPerDisk(sys));
    }

    r.opts.statsOutPath = r.cfg.output.statsOut;
    r.opts.tracePath = r.cfg.output.trace;
    r.opts.statsIntervalTicks = r.cfg.output.statsIntervalTicks;
    r.opts.configHeader = renderConfigHeader(r.cfg);
    return r;
}

} // namespace dtsim
