/**
 * @file
 * gem5-style statistics reporting for simulation results: fills a
 * stats::StatGroup hierarchy from a RunResult and prints it as
 * aligned `name value # description` lines.
 */

#ifndef DTSIM_CORE_REPORT_HH
#define DTSIM_CORE_REPORT_HH

#include <ostream>

#include "core/runner.hh"
#include "core/system.hh"

namespace dtsim {

/**
 * Print a full statistics report for one run.
 *
 * @param os Output stream.
 * @param cfg The system that ran.
 * @param result Its results.
 */
void printReport(std::ostream& os, const SystemConfig& cfg,
                 const RunResult& result);

} // namespace dtsim

#endif // DTSIM_CORE_REPORT_HH
