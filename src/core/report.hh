/**
 * @file
 * gem5-style statistics reporting for simulation results: fills a
 * stats::StatGroup hierarchy from a RunResult and prints it as
 * aligned `name value # description` lines.
 */

#ifndef DTSIM_CORE_REPORT_HH
#define DTSIM_CORE_REPORT_HH

#include <ostream>

#include "core/runner.hh"
#include "core/system.hh"
#include "stats/service_stats.hh"

namespace dtsim {

/**
 * Print a full statistics report for one run.
 *
 * @param os Output stream.
 * @param cfg The system that ran.
 * @param result Its results.
 */
void printReport(std::ostream& os, const SystemConfig& cfg,
                 const RunResult& result);

/**
 * Write the full --stats-out dump: run-level results, configuration,
 * per-request service histograms, per-disk component counters, bus
 * counters, and (when given) the workload generator's buffer-cache
 * stats. Every line is documented in docs/METRICS.md.
 *
 * @param os Output stream.
 * @param cfg The system that ran.
 * @param result Its results.
 * @param array The array that ran (component counter source).
 * @param svc Per-request histograms (nullptr = omit).
 * @param fs_stats Workload buffer-cache stats (nullptr = omit).
 */
void writeStatsDump(std::ostream& os, const SystemConfig& cfg,
                    const RunResult& result, const DiskArray& array,
                    const stats::ServiceStats* svc,
                    const BufferCacheStats* fs_stats);

/**
 * Write a mid-run snapshot (used by --stats-interval): the current
 * tick plus component and histogram counters, delimited by a
 * "# snapshot @tick" header line.
 */
void writeStatsSnapshot(std::ostream& os, const DiskArray& array,
                        const stats::ServiceStats* svc, Tick now);

/**
 * Write one live-streaming frame (used by stats.stream): the
 * snapshot counter tree bracketed by "==> dtsim stats seq=N ... <=="
 * / "==> end seq=N <==" delimiter lines and flushed, so a `tail -f`
 * reader can consume whole frames as the run progresses. See
 * docs/OBSERVABILITY.md for the frame grammar.
 */
void writeStatsFrame(std::ostream& os, const DiskArray& array,
                     const stats::ServiceStats* svc, Tick now,
                     std::uint64_t seq, bool final_frame);

} // namespace dtsim

#endif // DTSIM_CORE_REPORT_HH
