#include "core/runner.hh"

#include <algorithm>
#include <fstream>
#include <functional>
#include <memory>

#include "config/sim_config.hh"
#include "core/report.hh"
#include "hdc/victim_cache.hh"
#include "sim/logging.hh"
#include "stats/service_stats.hh"
#include "stats/trace.hh"

namespace dtsim {

std::uint64_t
hdcBlocksPerDisk(const SystemConfig& cfg)
{
    return cfg.hdcBytesPerDisk / cfg.disk.blockSize;
}

RunResult
runTrace(const SystemConfig& cfg, const Trace& trace,
         const std::vector<LayoutBitmap>* bitmaps,
         const std::vector<ArrayBlock>* pinned)
{
    return runTrace(cfg, trace, RunOptions{}, bitmaps, pinned);
}

RunResult
runTrace(const SystemConfig& cfg, const Trace& trace,
         const RunOptions& opts,
         const std::vector<LayoutBitmap>* bitmaps,
         const std::vector<ArrayBlock>* pinned)
{
    EventQueue eq;
    DiskArray array(eq, cfg.arrayConfig());

    if (cfg.kind == SystemKind::FOR) {
        if (!bitmaps)
            fatal("runTrace: FOR systems need layout bitmaps");
        array.setBitmaps(bitmaps);
    }

    if (cfg.hdcBytesPerDisk > 0 &&
        cfg.hdcPolicy == HdcPolicy::Pinned && pinned) {
        for (ArrayBlock lb : *pinned)
            array.pinLogicalBlock(lb);
    }

    // Observability wiring. The service histograms are only attached
    // when a stats destination is configured, so plain runs pay
    // nothing; the tracer's fast-path guard is an inline null check.
    // Every output begins with the effective-config header; callers
    // that built the run from a full SimulationConfig pass theirs,
    // direct runTrace() calls get a system/disk-level one.
    std::string config_header = opts.configHeader;
    if (config_header.empty() &&
        (opts.wantsStats() || !opts.tracePath.empty())) {
        SimulationConfig sim;
        sim.system = cfg;
        config_header =
            renderConfigHeader(sim, {"system.", "disk.", "fault."});
    }

    StatsSink::Writer stats_out = opts.stats.open("runTrace");
    if (stats_out)
        stats_out.os() << config_header;

    stats::StatGroup live_root("sim");
    std::unique_ptr<stats::ServiceStats> svc;
    if (opts.wantsStats()) {
        svc = std::make_unique<stats::ServiceStats>(live_root);
        array.setServiceStats(svc.get());
    }

    // Stamp scripted fault events (disk kill/repair/rebuild-done)
    // into the stats output as annotated snapshots, so a degraded
    // window can be located in the dump without the JSONL trace.
    if (array.faultsEnabled() && stats_out) {
        array.setFaultEventHook(
            [&stats_out, &array, &svc](const char* event,
                                       unsigned disk, Tick now) {
                stats_out.os() << "# fault event @" << now << ": "
                               << event << " disk " << disk << "\n";
                writeStatsSnapshot(stats_out.os(), array, svc.get(),
                                   now);
            });
    }

    RequestTracer tracer;
    if (!opts.tracePath.empty()) {
        tracer.open(opts.tracePath);
        tracer.writePreamble(config_header);
        array.setTracer(&tracer);
    }

    ReplayEngine engine(eq, array, trace, cfg.streams, cfg.workers);

    std::unique_ptr<VictimHdcManager> victim;
    if (cfg.hdcBytesPerDisk > 0 &&
        cfg.hdcPolicy == HdcPolicy::VictimCache) {
        victim = std::make_unique<VictimHdcManager>(
            array, cfg.victimGhostBlocks);
        engine.setObserver(
            [&victim](const TraceRecord& rec, Tick) {
                victim->onAccess(rec.start, rec.count);
            });
    }

    // Periodic snapshots ride the simulation event queue; the chain
    // stops re-arming once no other work is pending so it never keeps
    // the queue alive by itself.
    std::function<void()> snapshot;
    if (opts.statsIntervalTicks > 0 && opts.wantsStats()) {
        snapshot = [&]() {
            if (stats_out)
                writeStatsSnapshot(stats_out.os(), array, svc.get(),
                                   eq.now());
            if (!eq.empty())
                eq.scheduleAfter(opts.statsIntervalTicks, snapshot);
        };
        eq.scheduleAfter(opts.statsIntervalTicks, snapshot);
    }

    const Tick io_time = engine.run();
    const Tick post_drain = eq.now();

    Tick flush_time = 0;
    if (cfg.hdcBytesPerDisk > 0 && cfg.flushHdcAtEnd) {
        array.flushAllHdc();
        eq.run();
        // A trailing snapshot event may have advanced the clock past
        // the last completion before the flush began; charge the
        // flush window from there so it is not inflated (with
        // snapshots off, base == io_time and the result is identical
        // to a run without observability).
        const Tick base = opts.statsIntervalTicks > 0
                              ? std::max(io_time, post_drain)
                              : io_time;
        flush_time = eq.now() > base ? eq.now() - base : 0;
    }

    RunResult res;
    res.ioTime = io_time;
    res.flushTime = flush_time;
    res.elapsed = io_time + flush_time;
    res.requests = engine.metrics().requests;
    res.blocks = engine.metrics().blocks;
    res.meanLatencyMs = engine.metrics().meanLatencyMs();
    if (victim) {
        res.victimPins = victim->pins();
        res.victimUnpins = victim->unpins();
    }
    res.agg = array.aggregateStats();
    res.ra = array.aggregateRaCounters();
    res.traceRecords = tracer.records();
    res.faults = array.faultCounters();

    const std::uint64_t accesses = res.agg.reads + res.agg.writes;
    if (accesses > 0) {
        res.hdcHitRate =
            static_cast<double>(res.agg.hdcHitRequests) /
            static_cast<double>(accesses);
        res.cacheHitRate =
            static_cast<double>(res.agg.cacheHitRequests) /
            static_cast<double>(accesses);
    }

    if (io_time > 0) {
        // The busy time may include end-of-run HDC flush work, so
        // utilization is taken over the full elapsed time (see the
        // RunResult field docs for the denominator conventions).
        double util = 0.0;
        for (unsigned d = 0; d < array.disks(); ++d) {
            util += static_cast<double>(
                        array.controller(d).stats().mediaBusy) /
                    static_cast<double>(res.elapsed);
        }
        res.diskUtilization = util / array.disks();

        const double bytes = static_cast<double>(res.blocks) *
                             cfg.disk.blockSize;
        res.throughputMBps = bytes / toSeconds(io_time) / 1.0e6;
        res.throughputElapsedMBps =
            bytes / toSeconds(res.elapsed) / 1.0e6;
    }

    tracer.close();

    if (stats_out)
        writeStatsDump(stats_out.os(), cfg, res, array, svc.get(),
                       opts.fsStats);

    return res;
}

} // namespace dtsim
