#include "core/runner.hh"

#include <memory>

#include "hdc/victim_cache.hh"
#include "sim/logging.hh"

namespace dtsim {

std::uint64_t
hdcBlocksPerDisk(const SystemConfig& cfg)
{
    return cfg.hdcBytesPerDisk / cfg.disk.blockSize;
}

RunResult
runTrace(const SystemConfig& cfg, const Trace& trace,
         const std::vector<LayoutBitmap>* bitmaps,
         const std::vector<ArrayBlock>* pinned)
{
    EventQueue eq;
    DiskArray array(eq, cfg.arrayConfig());

    if (cfg.kind == SystemKind::FOR) {
        if (!bitmaps)
            fatal("runTrace: FOR systems need layout bitmaps");
        array.setBitmaps(bitmaps);
    }

    if (cfg.hdcBytesPerDisk > 0 &&
        cfg.hdcPolicy == HdcPolicy::Pinned && pinned) {
        for (ArrayBlock lb : *pinned)
            array.pinLogicalBlock(lb);
    }

    ReplayEngine engine(eq, array, trace, cfg.streams, cfg.workers);

    std::unique_ptr<VictimHdcManager> victim;
    if (cfg.hdcBytesPerDisk > 0 &&
        cfg.hdcPolicy == HdcPolicy::VictimCache) {
        victim = std::make_unique<VictimHdcManager>(
            array, cfg.victimGhostBlocks);
        engine.setObserver(
            [&victim](const TraceRecord& rec, Tick) {
                victim->onAccess(rec.start, rec.count);
            });
    }

    const Tick io_time = engine.run();

    Tick flush_time = 0;
    if (cfg.hdcBytesPerDisk > 0 && cfg.flushHdcAtEnd) {
        array.flushAllHdc();
        eq.run();
        flush_time = eq.now() > io_time ? eq.now() - io_time : 0;
    }

    RunResult res;
    res.ioTime = io_time;
    res.flushTime = flush_time;
    res.elapsed = io_time + flush_time;
    res.requests = engine.metrics().requests;
    res.blocks = engine.metrics().blocks;
    res.meanLatencyMs = engine.metrics().meanLatencyMs();
    if (victim) {
        res.victimPins = victim->pins();
        res.victimUnpins = victim->unpins();
    }
    res.agg = array.aggregateStats();

    const std::uint64_t accesses = res.agg.reads + res.agg.writes;
    if (accesses > 0) {
        res.hdcHitRate =
            static_cast<double>(res.agg.hdcHitRequests) /
            static_cast<double>(accesses);
        res.cacheHitRate =
            static_cast<double>(res.agg.cacheHitRequests) /
            static_cast<double>(accesses);
    }

    if (io_time > 0) {
        // The busy time may include end-of-run HDC flush work, so
        // utilization is taken over the full elapsed time (see the
        // RunResult field docs for the denominator conventions).
        double util = 0.0;
        for (unsigned d = 0; d < array.disks(); ++d) {
            util += static_cast<double>(
                        array.controller(d).stats().mediaBusy) /
                    static_cast<double>(res.elapsed);
        }
        res.diskUtilization = util / array.disks();

        const double bytes = static_cast<double>(res.blocks) *
                             cfg.disk.blockSize;
        res.throughputMBps = bytes / toSeconds(io_time) / 1.0e6;
        res.throughputElapsedMBps =
            bytes / toSeconds(res.elapsed) / 1.0e6;
    }

    return res;
}

} // namespace dtsim
