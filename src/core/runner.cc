#include "core/run_impl.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>

#include "config/sim_config.hh"
#include "core/report.hh"
#include "hdc/victim_cache.hh"
#include "sim/logging.hh"
#include "sim/sharded_kernel.hh"
#include "stats/service_stats.hh"
#include "stats/trace.hh"

namespace dtsim {

namespace {

/**
 * Resolve the requested intra-run worker count: 0 = DTSIM_JOBS_INTRA
 * or, failing that, the hardware thread count (mirroring how the
 * sweep pool resolves --jobs 0).
 */
unsigned
resolveIntraJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    if (const char* env = std::getenv("DTSIM_JOBS_INTRA"))
        requested = static_cast<unsigned>(std::atoi(env));
    if (requested == 0)
        requested = std::thread::hardware_concurrency();
    return requested == 0 ? 1 : requested;
}

/**
 * Why this configuration cannot run on the sharded kernel -- every
 * blocking reason at once, "; "-joined -- or empty when it can. This
 * list is the single source of truth for DESIGN.md's fallback table.
 *
 * The sharded kernel requires all cross-disk coupling to flow through
 * the ShardLink message discipline. Everything that once fell back --
 * fault injection, mirroring, the victim-cache HDC policy, periodic
 * snapshots -- now rides that discipline (per-disk fault counters,
 * canonical replica merge ranks, deferred pin/unpin commands, and
 * sync-tick front events respectively), so the only remaining blocker
 * is an array too small to split.
 */
std::string
shardedUnsupported(const SystemConfig& cfg, const RunOptions&)
{
    std::vector<const char*> reasons;
    if (cfg.disks < 2)
        reasons.push_back("a single-disk array has nothing to shard");

    std::string all;
    for (const char* r : reasons) {
        if (!all.empty())
            all += "; ";
        all += r;
    }
    return all;
}

/**
 * The conservative lookahead: a lower bound on the host-to-disk
 * submit overhead, i.e. on how far ahead of the host any shard may
 * safely run. The FOR bitmap lookup only adds to this, so it is
 * excluded from the bound.
 */
Tick
shardLookahead(const SystemConfig& cfg)
{
    Tick l = cfg.disk.requestOverhead;
    if (cfg.hdcBytesPerDisk > 0)
        l += cfg.disk.hdcLookupOverhead;
    return l;
}

/**
 * Validate the lookahead against the minimum media service floor
 * (see DESIGN.md, "Parallel simulation"): when the floor covers the
 * submit overhead, no media completion can tie with a later
 * submission's arrival, and the sharded merge order provably equals
 * the serial order. The check builds a scratch mechanism because the
 * controllers' own mechanisms are shard-private.
 */
void
checkLookaheadFloor(const SystemConfig& cfg, Tick lookahead)
{
    const DiskGeometry geom(cfg.disk);
    DiskMechanism mech(cfg.disk, geom);
    std::unique_ptr<ZonedGeometry> zoned;
    if (cfg.disk.recordingZones > 0) {
        zoned = std::make_unique<ZonedGeometry>(
            ZonedGeometry::makeDefault(cfg.disk,
                                       cfg.disk.recordingZones));
        mech.setZonedGeometry(zoned.get());
    }
    const Tick floor = mech.minServiceFloor(geom.sectorsPerBlock());
    if (floor < lookahead) {
        warn("sharded kernel: minimum media service floor (%s) is "
             "below the submit overhead (%s); same-tick collisions "
             "between a media completion and a later arrival cannot "
             "be ruled out for this parameter set",
             formatTicks(floor).c_str(),
             formatTicks(lookahead).c_str());
    }
}

} // namespace

std::uint64_t
hdcBlocksPerDisk(const SystemConfig& cfg)
{
    return cfg.hdcBytesPerDisk / cfg.disk.blockSize;
}

RunResult
runTrace(const SystemConfig& cfg, const Trace& trace,
         const RunOptions& opts,
         const std::vector<LayoutBitmap>* bitmaps,
         const std::vector<ArrayBlock>* pinned)
{
    unsigned jobs_intra = resolveIntraJobs(opts.jobsIntra);
    bool sharded = false;
    if (jobs_intra > 1) {
        const std::string why = shardedUnsupported(cfg, opts);
        if (!why.empty()) {
            warn("jobs-intra %u requested but %s; running the serial "
                 "kernel",
                 jobs_intra, why.c_str());
            jobs_intra = 1;
        } else {
            sharded = true;
        }
    }

    EventQueue eq;
    std::unique_ptr<ShardedKernel> kernel;
    if (sharded) {
        const Tick lookahead = shardLookahead(cfg);
        checkLookaheadFloor(cfg, lookahead);
        kernel = std::make_unique<ShardedKernel>(
            eq, cfg.disks, jobs_intra, lookahead);
    }
    DiskArray array(eq, cfg.arrayConfig(), kernel.get());

    if (cfg.kind == SystemKind::FOR) {
        if (!bitmaps)
            fatal("runTrace: FOR systems need layout bitmaps");
        array.setBitmaps(bitmaps);
    }

    if (cfg.hdcBytesPerDisk > 0 &&
        cfg.hdcPolicy == HdcPolicy::Pinned && pinned) {
        for (ArrayBlock lb : *pinned)
            array.pinLogicalBlock(lb);
    }

    // Observability wiring. The service histograms are only attached
    // when a stats destination is configured, so plain runs pay
    // nothing; the tracer's fast-path guard is an inline null check.
    // Every output begins with the effective-config header; callers
    // that built the run from a full SimulationConfig pass theirs,
    // direct runTrace() calls get a system/disk-level one.
    std::string config_header = opts.configHeader;
    if (config_header.empty() &&
        (opts.wantsStats() || !opts.tracePath.empty() ||
         opts.statsStream.enabled())) {
        SimulationConfig sim;
        sim.system = cfg;
        sim.output.traceCfg = opts.trace;
        config_header = renderConfigHeader(
            sim, {"system.", "disk.", "trace.", "fault."});
    }

    StatsSink::Writer stats_out = opts.stats.open("runTrace");
    if (stats_out)
        stats_out.os() << config_header;

    stats::StatGroup live_root("sim");
    std::unique_ptr<stats::ServiceStats> svc;
    if (opts.wantsStats() || opts.statsStream.enabled()) {
        svc = std::make_unique<stats::ServiceStats>(live_root);
        array.setServiceStats(svc.get());
    }

    // Live stat streaming (stats.stream): framed snapshots appended
    // to a file/FIFO as simulated time passes. The stream is volatile
    // output -- serial runs emit frames from the event queue, sharded
    // runs at window barriers -- so, unlike dump snapshots, it never
    // forces the serial kernel.
    StatsSink::Writer stream_out;
    Tick stream_interval = 0;
    std::uint64_t stream_seq = 0;
    if (opts.statsStream.enabled()) {
        stream_interval = opts.statsStream.intervalTicks > 0
                              ? opts.statsStream.intervalTicks
                              : opts.statsIntervalTicks;
        if (stream_interval == 0)
            fatal("stats.stream needs stats.stream_interval_ticks "
                  "(or run.stats_interval_ticks) > 0");
        stream_out =
            StatsSink::file(opts.statsStream.path).open("stats stream");
        if (!config_header.empty())
            stream_out.os() << config_header;
        stream_out.os().flush();
    }

    // Stamp scripted fault events (disk kill/repair/rebuild-done)
    // into the stats output as annotated snapshots, so a degraded
    // window can be located in the dump without the JSONL trace.
    //
    // The hook fires in host context, but the snapshot reads
    // disk-side counters, which a sharded run's workers may still be
    // mutating. The annotated snapshot is therefore deferred one
    // command latency into a front event: the delay satisfies the
    // lookahead contract for requestSyncAt(), and at the sync tick
    // the workers are parked with every earlier message delivered.
    // Serial runs take the identical deferral so the two kernels stay
    // byte-identical.
    if (array.faultsEnabled() && stats_out) {
        const Tick cmd_latency = array.commandLatency();
        array.setFaultEventHook(
            [&, cmd_latency](const char* event, unsigned disk,
                             Tick now) {
                const Tick at = now + cmd_latency;
                if (kernel)
                    kernel->requestSyncAt(at);
                eq.scheduleAtFront(at, [&, event, disk, now]() {
                    stats_out.os() << "# fault event @" << now << ": "
                                   << event << " disk " << disk
                                   << "\n";
                    writeStatsSnapshot(stats_out.os(), array,
                                       svc.get(), eq.now());
                });
            });
    }

    RequestTracer tracer;
    if (!opts.tracePath.empty()) {
        tracer.open(opts.tracePath, opts.trace);
        tracer.writePreamble(config_header);
        array.setTracer(&tracer);
    }

    ReplayEngine engine(eq, array, trace, cfg.streams, cfg.workers);

    std::unique_ptr<VictimHdcManager> victim;
    if (cfg.hdcBytesPerDisk > 0 &&
        cfg.hdcPolicy == HdcPolicy::VictimCache) {
        victim = std::make_unique<VictimHdcManager>(
            array, cfg.victimGhostBlocks);
        engine.setObserver(
            [&victim](const TraceRecord& rec, Tick) {
                victim->onAccess(rec.start, rec.count);
            });
    }

    // Periodic snapshots and stream frames ride the simulation event
    // queue as front events at absolute ticks: a front event at tick
    // S runs before every normal tick-S event under both kernels, and
    // a sharded run additionally requests a sync tick at S, which
    // caps the lookahead window so the front event executes with the
    // workers parked and every message below S delivered -- the exact
    // state the serial kernel sees. One chain, both kernels, and the
    // outputs byte-compare.
    //
    // Each chain stops re-arming once no work other than housekeeping
    // is pending, so the chains never keep the queue alive by
    // themselves -- or, crucially, each other (two chains that each
    // re-armed on `!empty()` would sustain one another forever once
    // the real workload drained). Under the sharded kernel "pending"
    // must count every timeline, not just the host queue, hence
    // pendingAll().
    std::size_t housekeeping = 0;
    const auto pendingWork = [&]() -> std::size_t {
        return sharded ? kernel->pendingAll() : eq.pending();
    };
    const auto armAt = [&](Tick at, const std::function<void()>& fn) {
        if (kernel)
            kernel->requestSyncAt(at);
        eq.scheduleAtFront(at, fn);
    };
    std::function<void()> snapshot;
    if (opts.statsIntervalTicks > 0 && opts.wantsStats()) {
        snapshot = [&]() {
            --housekeeping;
            if (stats_out)
                writeStatsSnapshot(stats_out.os(), array, svc.get(),
                                   eq.now());
            if (pendingWork() > housekeeping) {
                ++housekeeping;
                armAt(eq.now() + opts.statsIntervalTicks, snapshot);
            }
        };
        ++housekeeping;
        armAt(opts.statsIntervalTicks, snapshot);
    }

    // Stream frames chain exactly like snapshots; with both kernels
    // emitting at the same sync ticks the frame sequence is itself
    // deterministic (only the "# runtime:"-style trailer diverges).
    std::function<void()> stream_tick;
    bool stream_chained = false;
    if (stream_out) {
        stream_chained = true;
        stream_tick = [&]() {
            --housekeeping;
            writeStatsFrame(stream_out.os(), array, svc.get(),
                            eq.now(), stream_seq++, false);
            if (pendingWork() > housekeeping) {
                ++housekeeping;
                armAt(eq.now() + stream_interval, stream_tick);
            }
        };
        ++housekeeping;
        armAt(stream_interval, stream_tick);
    }

    const auto wall_begin = std::chrono::steady_clock::now();

    Tick io_time;
    Tick post_drain;
    if (sharded) {
        if (engine.start())
            kernel->run();
        io_time = engine.finish();
        post_drain = kernel->maxNow();
    } else {
        io_time = engine.run();
        post_drain = eq.now();
    }

    Tick flush_time = 0;
    if (cfg.hdcBytesPerDisk > 0 && cfg.flushHdcAtEnd) {
        Tick end;
        if (sharded) {
            // Align every shard clock to the drained end first so the
            // flush jobs see the same start time (and thus platter
            // angle) as under the serial kernel, whose single clock
            // sits at post_drain when the flush begins; the flush
            // itself has no cross-disk interaction, so a plain drain
            // suffices.
            kernel->alignNow(post_drain);
            array.flushAllHdc();
            kernel->drainSerial();
            end = kernel->maxNow();
        } else {
            array.flushAllHdc();
            eq.run();
            end = eq.now();
        }
        // A trailing snapshot or stream-frame event may have advanced
        // the clock past the last completion before the flush began;
        // charge the flush window from there so it is not inflated
        // (with both off, base == io_time and the result is identical
        // to a run without observability).
        const Tick base =
            (opts.statsIntervalTicks > 0 || stream_chained)
                ? std::max(io_time, post_drain)
                : io_time;
        flush_time = end > base ? end - base : 0;
    }
    if (sharded) {
        // Bring every timeline to the common end so any clock-derived
        // metric (utilization denominators) matches the serial run.
        kernel->alignNow(std::max(kernel->maxNow(), io_time));
    }

    const auto wall_end = std::chrono::steady_clock::now();

    RunResult res;
    res.ioTime = io_time;
    res.flushTime = flush_time;
    res.elapsed = io_time + flush_time;
    res.requests = engine.metrics().requests;
    res.blocks = engine.metrics().blocks;
    res.meanLatencyMs = engine.metrics().meanLatencyMs();
    res.eventsFired = sharded ? kernel->totalFired() : eq.fired();
    res.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_begin).count();
    res.jobsIntra = sharded ? kernel->workers() : 1;
    if (victim) {
        res.victimPins = victim->pins();
        res.victimUnpins = victim->unpins();
    }
    res.agg = array.aggregateStats();
    res.ra = array.aggregateRaCounters();
    res.faults = array.faultCounters();

    const std::uint64_t accesses = res.agg.reads + res.agg.writes;
    if (accesses > 0) {
        res.hdcHitRate =
            static_cast<double>(res.agg.hdcHitRequests) /
            static_cast<double>(accesses);
        res.cacheHitRate =
            static_cast<double>(res.agg.cacheHitRequests) /
            static_cast<double>(accesses);
    }

    if (io_time > 0) {
        // The busy time may include end-of-run HDC flush work, so
        // utilization is taken over the full elapsed time (see the
        // RunResult field docs for the denominator conventions).
        double util = 0.0;
        for (unsigned d = 0; d < array.disks(); ++d) {
            util += static_cast<double>(
                        array.controller(d).stats().mediaBusy) /
                    static_cast<double>(res.elapsed);
        }
        res.diskUtilization = util / array.disks();

        const double bytes = static_cast<double>(res.blocks) *
                             cfg.disk.blockSize;
        res.throughputMBps = bytes / toSeconds(io_time) / 1.0e6;
        res.throughputElapsedMBps =
            bytes / toSeconds(res.elapsed) / 1.0e6;
    }

    // close() joins the writer thread, so the drop counter is final
    // and every accepted record has reached the file.
    tracer.close();
    res.traceRecords = tracer.records();
    res.traceSampledOut = tracer.sampledOut();
    res.traceDropped = tracer.dropped();

    if (stream_out) {
        writeStatsFrame(stream_out.os(), array, svc.get(),
                        res.elapsed, stream_seq++, true);
        res.streamFrames = stream_seq;
    }

    if (stats_out)
        writeStatsDump(stats_out.os(), cfg, res, array, svc.get(),
                       opts.fsStats);

    return res;
}

} // namespace dtsim
