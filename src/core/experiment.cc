#include "core/experiment.hh"

#include <sstream>
#include <utility>

#include "array/striping.hh"
#include "core/run_impl.hh"
#include "hdc/hdc_planner.hh"
#include "sim/logging.hh"

namespace dtsim {

Experiment::Experiment(SimulationConfig sim) : cfg_(std::move(sim)) {}

Experiment::Experiment(const SystemConfig& sys)
{
    cfg_.system = sys;
}

Experiment&
Experiment::kind(SystemKind k)
{
    cfg_.system.kind = k;
    return *this;
}

Experiment&
Experiment::hdcBytesPerDisk(std::uint64_t bytes)
{
    cfg_.system.hdcBytesPerDisk = bytes;
    return *this;
}

Experiment&
Experiment::mirrored(bool on)
{
    cfg_.system.mirrored = on;
    return *this;
}

Experiment&
Experiment::faults(const FaultConfig& f)
{
    cfg_.system.fault = f;
    return *this;
}

Experiment&
Experiment::replay(const Trace& t)
{
    extTrace_ = &t;
    return *this;
}

Experiment&
Experiment::bitmaps(const std::vector<LayoutBitmap>& bm)
{
    extBitmaps_ = &bm;
    return *this;
}

Experiment&
Experiment::pins(const std::vector<ArrayBlock>& p)
{
    extPins_ = &p;
    return *this;
}

Experiment&
Experiment::fsStats(const BufferCacheStats& stats)
{
    opts_.fsStats = &stats;
    return *this;
}

Experiment&
Experiment::statsTo(StatsSink sink)
{
    opts_.stats = std::move(sink);
    return *this;
}

Experiment&
Experiment::traceTo(std::string path)
{
    opts_.tracePath = std::move(path);
    return *this;
}

Experiment&
Experiment::traceWith(TraceConfig cfg)
{
    opts_.trace = cfg;
    return *this;
}

Experiment&
Experiment::traceSample(double probability)
{
    opts_.trace.sample = probability;
    return *this;
}

Experiment&
Experiment::streamTo(std::string path, Tick interval)
{
    opts_.statsStream.path = std::move(path);
    opts_.statsStream.intervalTicks = interval;
    return *this;
}

Experiment&
Experiment::statsEvery(Tick interval)
{
    opts_.statsIntervalTicks = interval;
    return *this;
}

Experiment&
Experiment::jobsIntra(unsigned n)
{
    opts_.jobsIntra = n;
    return *this;
}

Experiment&
Experiment::header(std::string text)
{
    opts_.configHeader = std::move(text);
    return *this;
}

Experiment&
Experiment::options(const RunOptions& opts)
{
    opts_ = opts;
    return *this;
}

const Trace&
Experiment::theTrace() const
{
    return extTrace_ ? *extTrace_ : workload_.trace;
}

StripingMap
Experiment::striping() const
{
    const SystemConfig& sys = cfg_.system;
    return StripingMap(logicalDisks(sys),
                       sys.stripeUnitBytes / sys.disk.blockSize,
                       sys.disk.totalBlocks());
}

void
Experiment::prepare()
{
    if (prepared_)
        return;
    prepared_ = true;

    if (!extTrace_) {
        applyModelStreams(cfg_);
        const std::vector<std::string> errs = validateConfig(cfg_);
        if (!errs.empty()) {
            std::ostringstream os;
            for (const std::string& e : errs)
                os << "\n  " << e;
            fatal("invalid configuration:%s", os.str().c_str());
        }
        workload_ = buildWorkload(cfg_);
    }

    const SystemConfig& sys = cfg_.system;
    if (!extBitmaps_ && sys.kind == SystemKind::FOR &&
        workload_.image) {
        ownBitmaps_ = workload_.image->buildBitmaps(striping());
    }
    if (!extPins_ && sys.hdcBytesPerDisk > 0 &&
        sys.hdcPolicy == HdcPolicy::Pinned) {
        ownPins_ = selectPinnedBlocks(theTrace(), striping(),
                                      hdcBlocksPerDisk(sys));
    }

    // Output destinations the caller did not set fluently come from
    // the configuration's run.* group, like the CLI always honoured.
    if (!opts_.stats.enabled() && !cfg_.output.statsOut.empty())
        opts_.stats = StatsSink::file(cfg_.output.statsOut);
    if (opts_.tracePath.empty())
        opts_.tracePath = cfg_.output.trace;
    if (opts_.trace == TraceConfig{})
        opts_.trace = cfg_.output.traceCfg;
    if (opts_.statsStream == StatsStreamConfig{})
        opts_.statsStream = cfg_.output.stream;
    if (opts_.statsIntervalTicks == 0)
        opts_.statsIntervalTicks = cfg_.output.statsIntervalTicks;
    if (opts_.jobsIntra == 1)
        opts_.jobsIntra = cfg_.output.jobsIntra;

    // Built mode knows the full configuration, so outputs get the
    // complete self-describing header; replay mode leaves synthesis
    // of a system/disk-level one to runTrace().
    if (opts_.configHeader.empty() && !extTrace_ &&
        (opts_.wantsStats() || !opts_.tracePath.empty()))
        opts_.configHeader = renderConfigHeader(cfg_);
}

const Trace&
Experiment::trace()
{
    prepare();
    return theTrace();
}

const std::vector<LayoutBitmap>&
Experiment::layoutBitmaps()
{
    prepare();
    if (extBitmaps_)
        return *extBitmaps_;
    if (ownBitmaps_.empty() && workload_.image)
        ownBitmaps_ = workload_.image->buildBitmaps(striping());
    return ownBitmaps_;
}

SweepJob
Experiment::job()
{
    SweepJob j;
    j.cfg = cfg_.system;
    j.trace = &theTrace();
    const std::vector<LayoutBitmap>& bm =
        extBitmaps_ ? *extBitmaps_ : ownBitmaps_;
    if (!bm.empty())
        j.bitmaps = &bm;
    const std::vector<ArrayBlock>& p = extPins_ ? *extPins_ : ownPins_;
    if (!p.empty())
        j.pinned = &p;
    j.opts = opts_;
    // The fs-stats pointer is resolved late so opts_ never holds a
    // pointer into this Experiment (which would dangle on move).
    if (!j.opts.fsStats && workload_.hasFsStats)
        j.opts.fsStats = &workload_.fsStats;
    return j;
}

RunResult
Experiment::run()
{
    prepare();
    const SweepJob j = job();
    return runTrace(j.cfg, *j.trace, j.opts, j.bitmaps, j.pinned);
}

std::vector<RunResult>
Experiment::runAll(std::vector<Experiment>& batch, unsigned threads)
{
    // Prepare first, build jobs second: jobs hold pointers into the
    // Experiments, which must not move once referenced.
    std::vector<SweepJob> jobs;
    jobs.reserve(batch.size());
    for (Experiment& e : batch)
        e.prepare();
    for (Experiment& e : batch)
        jobs.push_back(e.job());
    return runSweep(jobs, threads);
}

} // namespace dtsim
