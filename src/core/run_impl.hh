/**
 * @file
 * The internal run engine behind the Experiment facade.
 *
 * Not part of the public surface: only experiment.cc and the sweep
 * worker pool (sweep.cc) may call runTrace() directly. Everything
 * else -- CLI, benches, tests, examples -- goes through Experiment
 * (core/experiment.hh), which owns the setup ritual and forwards
 * here.
 */

#ifndef DTSIM_CORE_RUN_IMPL_HH
#define DTSIM_CORE_RUN_IMPL_HH

#include <vector>

#include "controller/layout_bitmap.hh"
#include "core/runner.hh"

namespace dtsim {

/**
 * Run one experiment: build the system, replay the trace, and
 * collect results. Dispatches to the sharded kernel when
 * opts.jobsIntra asks for it and the configuration supports
 * deterministic sharding; otherwise runs the serial kernel.
 *
 * @param cfg System under test.
 * @param trace Disk trace to replay.
 * @param opts Observability and execution options.
 * @param bitmaps Per-disk FOR bitmaps; required when cfg.kind is FOR,
 *        ignored otherwise. Must match cfg's disk count and striping.
 * @param pinned Logical blocks to pin before replay (HDC warm start);
 *        ignored when the HDC budget is zero.
 */
RunResult runTrace(const SystemConfig& cfg, const Trace& trace,
                   const RunOptions& opts = {},
                   const std::vector<LayoutBitmap>* bitmaps = nullptr,
                   const std::vector<ArrayBlock>* pinned = nullptr);

} // namespace dtsim

#endif // DTSIM_CORE_RUN_IMPL_HH
