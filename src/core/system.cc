#include "core/system.hh"

namespace dtsim {

const char*
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Segm: return "Segm";
      case SystemKind::Block: return "Block";
      case SystemKind::NoRA: return "No-RA";
      case SystemKind::FOR: return "FOR";
    }
    return "?";
}

std::string
SystemConfig::label() const
{
    std::string s = systemKindName(kind);
    if (hdcBytesPerDisk > 0)
        s += "+HDC";
    return s;
}

ControllerConfig
SystemConfig::controllerConfig() const
{
    ControllerConfig c;
    c.scheduler = scheduler;
    c.segmentPolicy = segmentPolicy;
    c.blockPolicy = blockPolicy;
    c.hdcBytes = hdcBytesPerDisk;
    c.seed = seed;
    switch (kind) {
      case SystemKind::Segm:
        c.org = CacheOrg::Segment;
        c.readAhead = ReadAheadMode::Blind;
        break;
      case SystemKind::Block:
        c.org = CacheOrg::Block;
        c.readAhead = ReadAheadMode::Blind;
        break;
      case SystemKind::NoRA:
        c.org = CacheOrg::Block;
        c.readAhead = ReadAheadMode::None;
        break;
      case SystemKind::FOR:
        c.org = CacheOrg::Block;
        c.readAhead = ReadAheadMode::FOR;
        break;
    }
    return c;
}

ArrayConfig
SystemConfig::arrayConfig() const
{
    ArrayConfig a;
    a.disks = disks;
    a.stripeUnitBytes = stripeUnitBytes;
    a.disk = disk;
    a.controller = controllerConfig();
    a.mirrored = mirrored;
    a.fault = fault;
    return a;
}

} // namespace dtsim
