/**
 * @file
 * The system variants compared throughout Section 6.
 *
 *  - Segm:  blind read-ahead, segment-based cache (the conventional
 *           controller, baseline for all normalized results).
 *  - Block: blind read-ahead, block-based cache.
 *  - NoRA:  read-ahead disabled, block-based cache.
 *  - FOR:   file-oriented read-ahead, block-based cache.
 *
 * Any of them can be combined with HDC by giving the pinned region a
 * nonzero byte budget.
 */

#ifndef DTSIM_CORE_SYSTEM_HH
#define DTSIM_CORE_SYSTEM_HH

#include <cstdint>
#include <string>

#include "array/disk_array.hh"
#include "controller/disk_controller.hh"
#include "fault/fault_config.hh"

namespace dtsim {

/** The compared controller designs. */
enum class SystemKind { Segm, Block, NoRA, FOR };

const char* systemKindName(SystemKind kind);

/** Host policy driving the HDC pinned region. */
enum class HdcPolicy
{
    /** Pin the most-missed blocks up front (the paper's policy). */
    Pinned,

    /** Array-wide victim cache for the host buffer cache (the other
     *  use Section 5 proposes). */
    VictimCache,
};

/** Full configuration of one simulated system. */
struct SystemConfig
{
    SystemKind kind = SystemKind::Segm;

    /** HDC pinned-region budget per controller (0 = HDC off). */
    std::uint64_t hdcBytesPerDisk = 0;

    /** How the host manages the HDC region. */
    HdcPolicy hdcPolicy = HdcPolicy::Pinned;

    /** Mirrored host-cache size for the VictimCache policy. */
    std::uint64_t victimGhostBlocks = 100000;

    unsigned disks = 8;
    std::uint64_t stripeUnitBytes = 128 * kKiB;
    DiskParams disk;

    /** RAID-10 mirroring (halves the logical capacity). */
    bool mirrored = false;

    /** Concurrent I/O streams (client connections) during replay. */
    unsigned streams = 128;

    /**
     * Server I/O thread-pool size: records in flight at once. A
     * stream waits (FIFO) for a worker between its sequential
     * records. 0 = one worker per stream.
     */
    unsigned workers = 0;

    SchedulerKind scheduler = SchedulerKind::LOOK;
    SegmentPolicy segmentPolicy = SegmentPolicy::LRU;
    BlockPolicy blockPolicy = BlockPolicy::MRU;

    /** Issue flush_hdc() after the trace drains. */
    bool flushHdcAtEnd = true;

    std::uint64_t seed = 1;

    /** Fault-injection knobs (defaults = off); see docs/FAULTS.md. */
    FaultConfig fault;

    /** Short human-readable description, e.g. "FOR+HDC". */
    std::string label() const;

    /** The controller configuration this system implies. */
    ControllerConfig controllerConfig() const;

    /** The array configuration this system implies. */
    ArrayConfig arrayConfig() const;
};

/**
 * Logical (striped) disk count: mirroring pairs the physical disks,
 * so the striped address space covers half of them.
 */
inline unsigned
logicalDisks(const SystemConfig& s)
{
    return s.mirrored ? s.disks / 2 : s.disks;
}

} // namespace dtsim

#endif // DTSIM_CORE_SYSTEM_HH
