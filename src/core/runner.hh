/**
 * @file
 * One-call experiment runner: build a system, optionally attach FOR
 * bitmaps and an HDC pin set, replay a trace, and report the metrics
 * the paper's figures use.
 */

#ifndef DTSIM_CORE_RUNNER_HH
#define DTSIM_CORE_RUNNER_HH

#include <cstdint>
#include <vector>

#include "controller/layout_bitmap.hh"
#include "core/replay.hh"
#include "core/system.hh"
#include "workload/trace.hh"

namespace dtsim {

/** Results of one simulated run. */
struct RunResult
{
    /** Total I/O time: completion of the last trace record. */
    Tick ioTime = 0;

    /** Extra time spent flushing dirty HDC blocks at the end. */
    Tick flushTime = 0;

    std::uint64_t requests = 0;
    std::uint64_t blocks = 0;

    /** Accesses fully served by the HDC store / total accesses. */
    double hdcHitRate = 0.0;

    /** Accesses served without a media access / total accesses. */
    double cacheHitRate = 0.0;

    /** Mean per-disk media utilization over the run. */
    double diskUtilization = 0.0;

    /** Delivered throughput in MB/s (blocks moved / ioTime). */
    double throughputMBps = 0.0;

    double meanLatencyMs = 0.0;

    /** Victim-cache policy activity (zero under Pinned). */
    std::uint64_t victimPins = 0;
    std::uint64_t victimUnpins = 0;

    /** Raw aggregate controller counters. */
    ControllerStats agg;
};

/**
 * Run one experiment.
 *
 * @param cfg System under test.
 * @param trace Disk trace to replay.
 * @param bitmaps Per-disk FOR bitmaps; required when cfg.kind is FOR,
 *        ignored otherwise. Must match cfg's disk count and striping.
 * @param pinned Logical blocks to pin before replay (HDC warm start);
 *        ignored when the HDC budget is zero.
 */
RunResult runTrace(const SystemConfig& cfg, const Trace& trace,
                   const std::vector<LayoutBitmap>* bitmaps = nullptr,
                   const std::vector<ArrayBlock>* pinned = nullptr);

/**
 * Convenience: the per-disk HDC capacity in blocks implied by a
 * config (0 when HDC is off).
 */
std::uint64_t hdcBlocksPerDisk(const SystemConfig& cfg);

} // namespace dtsim

#endif // DTSIM_CORE_RUNNER_HH
