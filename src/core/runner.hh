/**
 * @file
 * Run-level option and result types shared by every run path.
 *
 * The run engine itself is internal (core/run_impl.hh); all user code
 * goes through the Experiment facade (core/experiment.hh), which owns
 * workload building, bitmap/pin attachment, and output wiring, and is
 * the only run path used by the CLI, the sweep driver, the benches,
 * and the examples.
 */

#ifndef DTSIM_CORE_RUNNER_HH
#define DTSIM_CORE_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "controller/layout_bitmap.hh"
#include "core/replay.hh"
#include "core/system.hh"
#include "fault/fault_model.hh"
#include "fs/buffer_cache.hh"
#include "stats/stats_sink.hh"
#include "stats/trace.hh"
#include "workload/trace.hh"

namespace dtsim {

/** Observability options of one run (all off by default). */
struct RunOptions
{
    /**
     * Destination of the stats dump and periodic/fault snapshots: a
     * file, a borrowed ostream (tests), or disabled (the default).
     */
    StatsSink stats;

    /** Write one sampled record per completed request ("" = off). */
    std::string tracePath;

    /**
     * Sampling probability, RNG seed, on-disk format, and ring
     * capacity of the trace (stats/trace.hh). The defaults record
     * every request in the binary format.
     */
    TraceConfig trace;

    /**
     * Live stat streaming: periodically append a framed snapshot to
     * a file/FIFO for `tail -f`. Both kernels emit frames from the
     * same front-event chain at the same absolute ticks (sharded runs
     * sync the shards at each frame tick), so the frame sequence is
     * deterministic up to the volatile "# runtime:"-style trailers.
     */
    StatsStreamConfig statsStream;

    /**
     * Pre-rendered effective-config header (renderConfigHeader in
     * config/sim_config.hh) written at the top of every stats dump
     * and trace file so results are self-describing and reload via
     * `--config`. When empty, runTrace() synthesizes one covering
     * the system./disk. groups -- callers that know the full
     * workload configuration (the CLI and the sweep driver) set it.
     */
    std::string configHeader;

    /**
     * Emit a periodic stats snapshot every this many ticks of
     * simulated time (0 = final dump only). Snapshots go to the
     * stats file/stream and work identically under both kernels: the
     * snapshot events ride the simulation event queue as front events
     * at absolute ticks (sync ticks when sharded). The reported HDC
     * flush window can stretch by up to one interval; all other
     * results are unaffected.
     */
    Tick statsIntervalTicks = 0;

    /**
     * Buffer-cache statistics of the workload generator, included in
     * the dump under sim.fs when set (the cache itself ran during
     * trace generation, not during replay).
     */
    const BufferCacheStats* fsStats = nullptr;

    /**
     * Intra-run parallelism: shard the event kernel per disk and run
     * the shards on this many worker threads under a conservative
     * lookahead window (see DESIGN.md, "Parallel simulation").
     * 1 = the serial kernel (the default); 0 = DTSIM_JOBS_INTRA or,
     * failing that, the hardware thread count. Composes with the
     * sweep-level --jobs parallelism. Results are tick-identical to
     * the serial kernel -- including fault injection, mirroring, the
     * victim-cache HDC policy, and periodic snapshots, which all ride
     * the ShardLink message discipline; only a single-disk array
     * falls back to serial (with a warning listing every blocker).
     * Execution-only: never recorded in dumps or config headers.
     */
    unsigned jobsIntra = 1;

    /** True when any stats output destination is configured. */
    bool
    wantsStats() const
    {
        return stats.enabled();
    }
};

/** Results of one simulated run. */
struct RunResult
{
    /** Total I/O time: completion of the last trace record. */
    Tick ioTime = 0;

    /** Extra time spent flushing dirty HDC blocks at the end. */
    Tick flushTime = 0;

    /**
     * Full simulated run time, ioTime + flushTime. The elapsed-based
     * rates below use this denominator; when comparing systems whose
     * end-of-run flush work differs, compare the elapsed-based fields
     * against each other, not against the ioTime-based ones.
     */
    Tick elapsed = 0;

    std::uint64_t requests = 0;
    std::uint64_t blocks = 0;

    /** Accesses fully served by the HDC store / total accesses. */
    double hdcHitRate = 0.0;

    /** Accesses served without a media access / total accesses. */
    double cacheHitRate = 0.0;

    /**
     * Mean per-disk media utilization over `elapsed` (ioTime +
     * flushTime). The flush denominator is deliberate: media busy
     * time includes end-of-run HDC flush work, so dividing by ioTime
     * alone could report utilization > 1.
     */
    double diskUtilization = 0.0;

    /**
     * Delivered throughput in MB/s over ioTime only (blocks moved /
     * ioTime). This matches the paper's figures, which report I/O
     * time to the last trace completion and exclude the artificial
     * end-of-run flush. Use throughputElapsedMBps when the flush cost
     * should count.
     */
    double throughputMBps = 0.0;

    /** Delivered throughput in MB/s over `elapsed`. */
    double throughputElapsedMBps = 0.0;

    double meanLatencyMs = 0.0;

    /** Victim-cache policy activity (zero under Pinned). */
    std::uint64_t victimPins = 0;
    std::uint64_t victimUnpins = 0;

    /** Raw aggregate controller counters. */
    ControllerStats agg;

    /** Aggregate read-ahead accuracy counters. */
    RaCounters ra;

    /** Trace records written (0 when tracing was off). */
    std::uint64_t traceRecords = 0;

    /** Completions the trace.sample draw skipped (deterministic for
     * a given seed and configuration). */
    std::uint64_t traceSampledOut = 0;

    /**
     * Trace records lost because the writer thread fell behind and
     * the ring filled. Timing-dependent and therefore volatile: it
     * appears in reports and the "# trace:" dump comment, never in
     * deterministic output.
     */
    std::uint64_t traceDropped = 0;

    /** Stream frames emitted (0 when stats.stream was off). */
    std::uint64_t streamFrames = 0;

    /** Fault/recovery counters (all zero when faults are off). */
    FaultCounters faults;

    /**
     * Events fired across every timeline of the run. A measure of
     * kernel work, not a simulation result: the serial and sharded
     * kernels may book the same simulated work as slightly different
     * event counts, so it never enters deterministic output.
     */
    std::uint64_t eventsFired = 0;

    /**
     * Host wall-clock seconds of the simulation phase (replay +
     * flush), excluding system construction and workload building.
     * Volatile by nature; never part of deterministic output.
     */
    double wallSeconds = 0.0;

    /** Kernel worker threads the run actually used (1 = serial). */
    unsigned jobsIntra = 1;

    /** eventsFired / wallSeconds (0 when wall time was unmeasurably
     * small). */
    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(eventsFired) / wallSeconds
            : 0.0;
    }
};

/**
 * Convenience: the per-disk HDC capacity in blocks implied by a
 * config (0 when HDC is off).
 */
std::uint64_t hdcBlocksPerDisk(const SystemConfig& cfg);

} // namespace dtsim

#endif // DTSIM_CORE_RUNNER_HH
