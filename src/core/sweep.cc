#include "core/sweep.hh"

#include "core/run_impl.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

namespace dtsim {

unsigned
sweepJobs()
{
    if (const char* env = std::getenv("DTSIM_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<RunResult>
runSweep(const std::vector<SweepJob>& jobs, unsigned threads)
{
    std::vector<RunResult> results(jobs.size());
    if (jobs.empty())
        return results;

    if (threads == 0)
        threads = sweepJobs();
    if (threads > jobs.size())
        threads = static_cast<unsigned>(jobs.size());

    std::vector<std::exception_ptr> errors(jobs.size());

    // Workers claim jobs off a shared index; each job only reads its
    // shared inputs and writes its own result slot.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const SweepJob& job = jobs[i];
            try {
                results[i] = runTrace(job.cfg, *job.trace, job.opts,
                                      job.bitmaps, job.pinned);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }

    for (const std::exception_ptr& e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

ControllerStats
aggregateSweepStats(const std::vector<RunResult>& results)
{
    ControllerStats total;
    for (const RunResult& r : results) {
        const ControllerStats& s = r.agg;
        total.reads += s.reads;
        total.writes += s.writes;
        total.readBlocks += s.readBlocks;
        total.writeBlocks += s.writeBlocks;
        total.cacheHitRequests += s.cacheHitRequests;
        total.hdcHitRequests += s.hdcHitRequests;
        total.hdcHitBlocks += s.hdcHitBlocks;
        total.raHitBlocks += s.raHitBlocks;
        total.mediaAccesses += s.mediaAccesses;
        total.mediaBlocks += s.mediaBlocks;
        total.readAheadBlocks += s.readAheadBlocks;
        total.flushWrites += s.flushWrites;
        total.flushBlocks += s.flushBlocks;
        total.seekTime += s.seekTime;
        total.rotTime += s.rotTime;
        total.xferTime += s.xferTime;
        total.mediaBusy += s.mediaBusy;
        total.queueTime += s.queueTime;
        total.busTime += s.busTime;
        total.latencySum += s.latencySum;
        total.latencyMax = std::max(total.latencyMax, s.latencyMax);
    }
    return total;
}

RaCounters
aggregateSweepRa(const std::vector<RunResult>& results)
{
    RaCounters total;
    for (const RunResult& r : results) {
        total.specInserted += r.ra.specInserted;
        total.specUsed += r.ra.specUsed;
        total.specWasted += r.ra.specWasted;
    }
    return total;
}

} // namespace dtsim
