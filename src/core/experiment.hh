/**
 * @file
 * Experiment: the one front door for running a simulation.
 *
 * Every run used to be assembled by hand from the same parts --
 * applyModelStreams(), validateConfig(), buildWorkload(), FOR layout
 * bitmaps, the HDC pin plan, RunOptions -- and the CLI, the sweep
 * driver, the benches, and the examples each repeated the ritual with
 * slight variations. An Experiment owns the whole setup behind a
 * fluent interface and a single run():
 *
 *     RunResult r = Experiment(sim).run();
 *
 *     Experiment e(base);                    // bench-style replay
 *     e.kind(SystemKind::FOR)
 *      .hdcBytesPerDisk(2 * kMiB)
 *      .replay(trace)
 *      .bitmaps(bitmaps);
 *     RunResult r = e.run();
 *
 * Two input modes:
 *
 *  - **Built** (default): prepare() applies the server model's stream
 *    count, validates the full configuration (fatal on errors), and
 *    builds the workload the config asks for. FOR bitmaps and the
 *    Pinned-policy HDC pin plan are derived automatically.
 *
 *  - **Replay** (replay() called): the caller supplies the trace, and
 *    usually the bitmaps, directly; no workload build and no full
 *    config validation, matching the direct runTrace() path the
 *    benches always used.
 *
 * Output destinations default from config().output and can be
 * overridden fluently (statsTo / traceTo / statsEvery). Batches of
 * prepared Experiments run concurrently through runAll(), which feeds
 * the parallel sweep runner, so results are bit-identical to calling
 * run() on each in order.
 */

#ifndef DTSIM_CORE_EXPERIMENT_HH
#define DTSIM_CORE_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/sim_config.hh"
#include "core/runner.hh"
#include "core/sweep.hh"
#include "core/sweep_driver.hh"

namespace dtsim {

/** One configured, runnable simulation experiment. */
class Experiment
{
  public:
    /** An experiment over the workload and system `sim` describes. */
    explicit Experiment(SimulationConfig sim = SimulationConfig{});

    /**
     * A replay experiment over a bare SystemConfig (bench style):
     * equivalent to wrapping `sys` in a default SimulationConfig; a
     * trace must be supplied with replay() before running.
     */
    explicit Experiment(const SystemConfig& sys);

    /** Move-only: prepared state may be large (the built workload). */
    Experiment(Experiment&&) = default;
    Experiment& operator=(Experiment&&) = default;
    Experiment(const Experiment&) = delete;
    Experiment& operator=(const Experiment&) = delete;

    /** @name Fluent system knobs (call before prepare()/run()). */
    ///@{

    /** Set the system kind under test. */
    Experiment& kind(SystemKind k);

    /** Set the per-disk HDC budget in bytes (0 = off). */
    Experiment& hdcBytesPerDisk(std::uint64_t bytes);

    /** Enable/disable RAID-10 mirroring. */
    Experiment& mirrored(bool on);

    /** Attach a fault-injection scenario (fault/fault_config.hh). */
    Experiment& faults(const FaultConfig& f);

    ///@}
    /** @name Inputs. */
    ///@{

    /**
     * Replay `t` instead of building a workload; `t` must outlive the
     * Experiment. Disables workload building and full-config
     * validation (the caller vouches for the config, like direct
     * runTrace() callers always did).
     */
    Experiment& replay(const Trace& t);

    /**
     * Use these FOR layout bitmaps instead of deriving them from the
     * built workload's file-system image; must outlive the
     * Experiment. Required for FOR runs in replay mode.
     */
    Experiment& bitmaps(const std::vector<LayoutBitmap>& bm);

    /**
     * Use this HDC warm-start pin plan instead of deriving one from
     * the trace; must outlive the Experiment.
     */
    Experiment& pins(const std::vector<ArrayBlock>& p);

    /**
     * Include these workload-generation buffer-cache stats in the
     * stats dump (sim.fs); must outlive the run.
     */
    Experiment& fsStats(const BufferCacheStats& stats);

    ///@}
    /** @name Outputs (default from config().output). */
    ///@{

    /** Send the stats dump/snapshots to `sink`. */
    Experiment& statsTo(StatsSink sink);

    /** Write one sampled record per completed request to `path`. */
    Experiment& traceTo(std::string path);

    /** Full sampling/format control of the trace (trace.*). */
    Experiment& traceWith(TraceConfig cfg);

    /** Record each completed request with this probability, drawn
     * from the dedicated trace.seed RNG stream. */
    Experiment& traceSample(double probability);

    /**
     * Stream framed live stat snapshots to `path` every `interval`
     * simulated ticks (0 = inherit statsEvery / the config's
     * run.stats_interval_ticks). Works under both kernels; see
     * docs/OBSERVABILITY.md.
     */
    Experiment& streamTo(std::string path, Tick interval = 0);

    /** Snapshot stats every `interval` ticks (0 = final dump only). */
    Experiment& statsEvery(Tick interval);

    /**
     * Intra-run kernel parallelism: shard the simulation per disk
     * over `n` worker threads (1 = serial, the default; 0 =
     * DTSIM_JOBS_INTRA/hardware threads). Composes with the
     * sweep-level --jobs parallelism; see RunOptions::jobsIntra.
     */
    Experiment& jobsIntra(unsigned n);

    /**
     * Use this pre-rendered effective-config header; when unset,
     * prepare() renders one from the full configuration (built mode)
     * or leaves synthesis to the runner (replay mode).
     */
    Experiment& header(std::string text);

    /** Replace the run options wholesale (advanced callers). */
    Experiment& options(const RunOptions& opts);

    ///@}

    /** The underlying configuration (mutable until prepare()). */
    SimulationConfig& config() { return cfg_; }
    const SimulationConfig& config() const { return cfg_; }

    /** The effective run options; complete after prepare(). */
    const RunOptions& runOptions() const { return opts_; }

    /**
     * Resolve the experiment: validate and build the workload (built
     * mode), derive bitmaps/pins, and fill output options from
     * config().output. Idempotent; run() calls it automatically.
     * fatal()s on an invalid configuration.
     */
    void prepare();

    /** The trace this experiment replays (prepares if needed). */
    const Trace& trace();

    /**
     * The FOR layout bitmaps of this experiment's image and striping,
     * built on demand even for non-FOR systems so a prepared workload
     * can be shared with a FOR variant (prepares if needed; empty
     * when there is no file-system image).
     */
    const std::vector<LayoutBitmap>& layoutBitmaps();

    /** Execute the experiment (prepares if needed). */
    RunResult run();

    /**
     * Run a batch concurrently through the parallel sweep runner
     * (thread count 0 = DTSIM_JOBS, see core/sweep.hh). Results come
     * back in batch order, bit-identical to running each alone.
     */
    static std::vector<RunResult> runAll(std::vector<Experiment>& batch,
                                         unsigned threads = 0);

  private:
    const Trace& theTrace() const;
    StripingMap striping() const;
    SweepJob job();

    SimulationConfig cfg_;
    RunOptions opts_;

    const Trace* extTrace_ = nullptr;
    const std::vector<LayoutBitmap>* extBitmaps_ = nullptr;
    const std::vector<ArrayBlock>* extPins_ = nullptr;

    BuiltWorkload workload_;
    std::vector<LayoutBitmap> ownBitmaps_;
    std::vector<ArrayBlock> ownPins_;
    bool prepared_ = false;
};

} // namespace dtsim

#endif // DTSIM_CORE_EXPERIMENT_HH
