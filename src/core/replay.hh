/**
 * @file
 * Closed-loop trace replay (Section 6.1: "the logs are replayed in
 * the simulator as fast as possible to determine the maximum
 * throughput achievable by each system").
 *
 * The engine keeps up to S jobs in flight, one per server I/O stream.
 * A stream claims the next job (file access) from the trace, issues
 * its records sequentially -- each record is submitted when the
 * previous one completes, as a server thread reading through a file
 * would -- and then claims the next job.
 */

#ifndef DTSIM_CORE_REPLAY_HH
#define DTSIM_CORE_REPLAY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "array/disk_array.hh"
#include "sim/event_queue.hh"
#include "workload/trace.hh"

namespace dtsim {

/** Replay-level metrics. */
struct ReplayMetrics
{
    std::uint64_t requests = 0;       ///< Records issued.
    std::uint64_t jobs = 0;           ///< Jobs completed.
    std::uint64_t blocks = 0;         ///< Blocks transferred.
    Tick sumLatency = 0;              ///< Sum of record latencies.
    Tick maxLatency = 0;

    double
    meanLatencyMs() const
    {
        return requests ? toMillis(sumLatency) /
                              static_cast<double>(requests)
                        : 0.0;
    }
};

/** Closed-loop, stream-bounded trace replayer. */
class ReplayEngine
{
  public:
    /**
     * @param eq Event queue shared with the array.
     * @param array Target array.
     * @param trace Trace to replay (borrowed; must outlive replay).
     * @param streams Maximum concurrent jobs (client connections).
     * @param workers I/O thread-pool size: maximum records in flight.
     *        A job re-queues (FIFO) for a worker between its records,
     *        modeling an event-driven server multiplexing many
     *        connections over few helper threads (PRESS uses 16).
     *        0 means one worker per stream (no multiplexing delay).
     */
    ReplayEngine(EventQueue& eq, DiskArray& array, const Trace& trace,
                 unsigned streams, unsigned workers = 0);

    /**
     * Install a host-side observer invoked after each record
     * completes (e.g. the victim-cache HDC manager issuing pin/unpin
     * commands).
     */
    using Observer = std::function<void(const TraceRecord&, Tick)>;
    void setObserver(Observer obs) { observer_ = std::move(obs); }

    /**
     * Replay the whole trace; returns when every record has
     * completed. The event queue is run to completion.
     *
     * @return Completion time of the last record.
     */
    Tick run();

    /**
     * Seed the initial window of jobs without running the queue.
     * Used by the sharded path, where the kernel (not this engine)
     * drives the event loop.
     *
     * @return true when there is anything to replay.
     */
    bool start();

    /**
     * Verify the replay drained and report the last completion time.
     * Call after the caller-driven event loop finishes; panics on a
     * stalled replay exactly like run().
     */
    Tick finish() const;

    const ReplayMetrics& metrics() const { return metrics_; }

  private:
    /** [start, end) record range of one job. */
    struct JobRange
    {
        std::size_t begin;
        std::size_t end;
    };

    /** Give an idle stream its next job, if any. */
    void claimNext();

    /** Queue a job's next record for a worker. */
    void enqueueReady(std::size_t idx, std::size_t end);

    /** Let idle workers pull from the ready queue. */
    void dispatch();

    /** Issue record `idx` of job range [idx, end) on a worker. */
    void issue(std::size_t idx, std::size_t end);

    EventQueue& eq_;
    DiskArray& array_;
    const Trace& trace_;
    unsigned streams_;
    unsigned workers_;
    std::vector<JobRange> jobs_;
    std::deque<std::pair<std::size_t, std::size_t>> ready_;
    std::size_t nextJob_ = 0;
    unsigned active_ = 0;
    unsigned busyWorkers_ = 0;
    ReplayMetrics metrics_;
    Observer observer_;
    Tick lastDone_ = 0;
    std::uint64_t nextReqId_ = 1;
};

} // namespace dtsim

#endif // DTSIM_CORE_REPLAY_HH
