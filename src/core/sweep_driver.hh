/**
 * @file
 * Configuration-driven experiment driver: turn SimulationConfigs /
 * expanded SweepSpec grids into built workloads, FOR bitmaps, HDC pin
 * plans, and parallel runTrace() executions.
 *
 * This is the layer that makes sweeps data-driven: the CLI's --sweep
 * and --system all modes, the fig07-fig12 figure benches, and the
 * shipped sweep .conf files in examples/ all expand to SweepPoints and
 * run through runSweepPoints(). Workloads, bitmaps, and pin plans are
 * deduplicated across grid points (a striping sweep builds its server
 * workload once, like the hand-written benches did), and every run's
 * outputs begin with its own effective-config header.
 */

#ifndef DTSIM_CORE_SWEEP_DRIVER_HH
#define DTSIM_CORE_SWEEP_DRIVER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/sweep_spec.hh"
#include "core/sweep.hh"
#include "fs/buffer_cache.hh"
#include "fs/file_layout.hh"

namespace dtsim {

/** A generated workload: the trace plus its file-system context. */
struct BuiltWorkload
{
    Trace trace;
    std::unique_ptr<FileSystemImage> image;

    /** Buffer-cache stats of generation (server models only). */
    BufferCacheStats fsStats;
    bool hasFsStats = false;

    /** The server model's concurrency (0 for synthetic). */
    unsigned modelStreams = 0;
};

/**
 * Build the workload `sim` asks for: the Section 6.2 synthetic
 * workload or one of the Section 6.3 server models at workload.scale,
 * sized to the configured array capacity.
 */
BuiltWorkload buildWorkload(const SimulationConfig& sim);

/**
 * Server models fix their own concurrency: overwrite system.streams
 * with the model's stream count (no-op for synthetic workloads).
 * Applied before running so the effective-config dump records the
 * concurrency that actually ran.
 */
void applyModelStreams(SimulationConfig& sim);

/**
 * Workload/bitmap/pin-plan cache shared across the runs of a sweep.
 * Keyed on the workload- and layout-relevant parameter groups, so
 * grid points differing only in controller policy share one build.
 * Not thread-safe; build happens on the calling thread (generation
 * is deterministic, so results never depend on sharing).
 */
class SweepCache
{
  public:
    /** The built workload for `sim` (built on first use). */
    BuiltWorkload& workload(const SimulationConfig& sim);

    /** Per-disk FOR bitmaps for `sim`'s striping (may be empty when
     *  the workload has no file-system image). */
    const std::vector<LayoutBitmap>&
    bitmaps(const SimulationConfig& sim);

    /** The HDC warm-start pin plan for `sim`. */
    const std::vector<ArrayBlock>& pins(const SimulationConfig& sim);

  private:
    std::string workloadKey(const SimulationConfig& sim);

    std::map<std::string, std::unique_ptr<BuiltWorkload>> workloads_;
    std::map<std::string, std::unique_ptr<std::vector<LayoutBitmap>>>
        bitmaps_;
    std::map<std::string, std::unique_ptr<std::vector<ArrayBlock>>>
        pins_;
};

/**
 * Run every feasible point of an expanded sweep through the parallel
 * sweep runner (thread count: `jobs`, 0 = DTSIM_JOBS). Results come
 * back in point order; infeasible points get a default RunResult and
 * a warn(). Each point's cfg gets applyModelStreams() applied, its
 * output files are taken from cfg.output, and its stats/trace outputs
 * begin with the point's own effective-config header.
 *
 * Results are bit-identical to running each point alone: jobs only
 * share the immutable trace/bitmap/pin inputs.
 */
std::vector<RunResult> runSweepPoints(std::vector<SweepPoint>& points,
                                      SweepCache& cache,
                                      unsigned jobs = 0);

/** Convenience overload with a throwaway cache. */
std::vector<RunResult> runSweepPoints(std::vector<SweepPoint>& points,
                                      unsigned jobs = 0);

} // namespace dtsim

#endif // DTSIM_CORE_SWEEP_DRIVER_HH
