#include "array/disk_array.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/sharded_kernel.hh"

namespace dtsim {

DiskArray::DiskArray(EventQueue& eq, const ArrayConfig& cfg,
                     ShardedKernel* kernel)
    : eq_(eq), bus_(cfg.busBytesPerSec), mirrored_(cfg.mirrored),
      striping_(cfg.mirrored ? cfg.disks / 2 : cfg.disks,
                cfg.stripeUnitBytes / cfg.disk.blockSize,
                cfg.disk.totalBlocks())
{
    if (cfg.stripeUnitBytes % cfg.disk.blockSize != 0)
        fatal("DiskArray: stripe unit must be a block multiple");
    if (cfg.mirrored && (cfg.disks < 2 || cfg.disks % 2 != 0))
        fatal("DiskArray: mirroring needs an even disk count");
    if (kernel && kernel->shards() != cfg.disks)
        fatal("DiskArray: sharded kernel has %u shards for %u disks",
              kernel->shards(), cfg.disks);
    if (!kernel)
        serialLink_ = std::make_unique<SerialMergeLink>(eq_);
    link_ = kernel ? static_cast<ShardLink*>(kernel)
                   : static_cast<ShardLink*>(serialLink_.get());
    if (cfg.mirrored) {
        // Canonical merge order for replica pairs: (logical disk,
        // replica index), so same-tick emissions of a pair merge
        // primary-then-mirror regardless of physical numbering. Both
        // link implementations honour it, keeping mirrored serial
        // runs byte-identical to sharded ones. Unmirrored arrays keep
        // the identity order.
        const unsigned half = cfg.disks / 2;
        std::vector<unsigned> ranks(cfg.disks);
        for (unsigned d = 0; d < cfg.disks; ++d) {
            const unsigned logical = d < half ? d : d - half;
            const unsigned replica = d < half ? 0u : 1u;
            ranks[d] = logical * 2 + replica;
        }
        link_->setMergeRanks(std::move(ranks));
    }
    ctrls_.reserve(cfg.disks);
    for (unsigned d = 0; d < cfg.disks; ++d) {
        auto ctl = std::make_unique<DiskController>(
            kernel ? kernel->shardQueue(d) : eq_, bus_, cfg.disk,
            cfg.controller, d);
        ctl->setShardLink(link_);
        ctrls_.push_back(std::move(ctl));
    }

    if (cfg.fault.enabled()) {
        faults_ = std::make_unique<FaultModel>(cfg.fault, cfg.disks);
        rebuildEnd_.assign(cfg.disks, 0);
        for (unsigned d = 0; d < cfg.disks; ++d)
            ctrls_[d]->setFaults(&faults_->disk(d));

        const FaultConfig& fc = cfg.fault;
        if (fc.killAtTicks > 0) {
            if (fc.killDisk >= cfg.disks)
                fatal("DiskArray: fault.kill_disk %u out of range "
                      "(%u disks)",
                      fc.killDisk, cfg.disks);
            eq_.scheduleAt(fc.killAtTicks, [this, d = fc.killDisk]() {
                failDisk(d);
            });
            if (fc.repairAtTicks > 0) {
                if (fc.repairAtTicks <= fc.killAtTicks)
                    fatal("DiskArray: fault.repair_at_ticks must be "
                          "after fault.kill_at_ticks");
                eq_.scheduleAt(fc.repairAtTicks,
                               [this, d = fc.killDisk]() {
                                   repairDisk(d);
                               });
            }
        }
    }
}

void
DiskArray::setBitmaps(const std::vector<LayoutBitmap>* bitmaps)
{
    if (!bitmaps)
        fatal("DiskArray: null bitmap vector");
    const unsigned logical = striping_.disks();
    if (bitmaps->size() != logical)
        fatal("DiskArray: need one bitmap per (logical) disk");
    for (unsigned d = 0; d < logical; ++d) {
        ctrls_[d]->setBitmap(&(*bitmaps)[d]);
        if (mirrored_)
            ctrls_[d + logical]->setBitmap(&(*bitmaps)[d]);
    }
}

unsigned
DiskArray::pickReplica(unsigned disk) const
{
    if (!mirrored_)
        return disk;
    const unsigned half = striping_.disks();
    const unsigned mirror = disk + half;
    // Shorter queue wins; ties go to the primary.
    return ctrls_[mirror]->outstanding() <
                   ctrls_[disk]->outstanding()
        ? mirror
        : disk;
}

unsigned
DiskArray::pickReadTarget(unsigned disk, bool& degraded)
{
    if (!faults_)
        return pickReplica(disk);

    if (!mirrored_) {
        if (faults_->health(disk) != DiskHealth::Alive)
            fatal("DiskArray: I/O on failed disk %u with no mirror "
                  "to fall back on -- enable system.mirrored or "
                  "drop the fault.kill_at_ticks script",
                  disk);
        return disk;
    }

    const unsigned mirror = partnerOf(disk);
    // A rebuilding disk absorbs writes but cannot serve reads until
    // the copy-back completes.
    const bool primary_ok =
        faults_->health(disk) == DiskHealth::Alive;
    const bool mirror_ok =
        faults_->health(mirror) == DiskHealth::Alive;
    if (primary_ok && mirror_ok)
        return pickReplica(disk);
    if (!primary_ok && !mirror_ok)
        fatal("DiskArray: both replicas of disk %u are offline "
              "(mirror %u) -- the scripted faults leave no copy to "
              "read",
              disk, mirror);
    degraded = true;
    ++faults_->hostCounters().degradedReads;
    return primary_ok ? disk : mirror;
}

DiskArray::Pending*
DiskArray::acquirePending()
{
    if (pendingFree_.empty()) {
        pendingStore_.push_back(std::make_unique<Pending>());
        return pendingStore_.back().get();
    }
    Pending* p = pendingFree_.back();
    pendingFree_.pop_back();
    *p = Pending{};
    return p;
}

void
DiskArray::recyclePending(Pending* p)
{
    pendingFree_.push_back(p);
}

void
DiskArray::submitSub(unsigned disk, const SubRange& sr,
                     bool is_write, Pending* pending, bool degraded)
{
    IoRequest sub;
    sub.id = nextSubId_++;
    sub.diskId = disk;
    sub.start = sr.start;
    sub.count = sr.count;
    sub.isWrite = is_write;
    sub.degraded = degraded;
    sub.onComplete = [this, pending](const IoRequest& done,
                                     Tick when) {
        if (done.served == ServiceClass::Media)
            pending->anyMedia = true;
        if (done.served != ServiceClass::HdcHit)
            pending->anyNonHdc = true;
        pending->lastDone = std::max(pending->lastDone, when);
        if (--pending->remaining == 0) {
            ArrayRequest& r = pending->req;
            r.allCacheHits = !pending->anyMedia;
            r.allHdcHits = !pending->anyNonHdc;
            --outstanding_;
            if (r.onComplete)
                r.onComplete(r, pending->lastDone);
            recyclePending(pending);
        }
    };
    ctrls_[disk]->submit(std::move(sub));
}

void
DiskArray::submit(ArrayRequest req)
{
    if (req.count == 0)
        fatal("DiskArray: zero-length request");
    if (req.start + req.count > totalBlocks())
        fatal("DiskArray: request past end of array");

    req.issued = eq_.now();
    ++outstanding_;

    // Controller submit() only schedules events (no synchronous
    // completions), so no nested submit() can run while we iterate and
    // the scratch buffer is safe to reuse across requests.
    subsScratch_.clear();
    striping_.splitInto(req.start, req.count, subsScratch_);
    const std::vector<SubRange>& subs = subsScratch_;
    const bool is_write = req.isWrite;
    Pending* pending = acquirePending();
    pending->req = std::move(req);

    const unsigned half = striping_.disks();
    if (!faults_) {
        // Fast path, byte-identical to the pre-fault-model array.
        // A mirrored write lands on both replicas of each sub-range.
        pending->remaining =
            mirrored_ && is_write ? subs.size() * 2 : subs.size();
        for (const SubRange& sr : subs) {
            if (mirrored_ && is_write) {
                submitSub(sr.disk, sr, true, pending);
                submitSub(sr.disk + half, sr, true, pending);
            } else {
                submitSub(pickReplica(sr.disk), sr, is_write,
                          pending);
            }
        }
        return;
    }

    if (mirrored_ && is_write) {
        // Writes reach every replica that is not dead (a rebuilding
        // disk must absorb writes to stay consistent). Count the
        // live targets first: controller submit() never completes
        // synchronously, but `remaining` must be final before the
        // first sub-request is issued.
        std::size_t targets = 0;
        for (const SubRange& sr : subs) {
            const bool p_dead =
                faults_->health(sr.disk) == DiskHealth::Dead;
            const bool m_dead =
                faults_->health(sr.disk + half) == DiskHealth::Dead;
            if (p_dead && m_dead)
                fatal("DiskArray: both replicas of disk %u are "
                      "offline; a write has nowhere to land",
                      sr.disk);
            targets += (p_dead || m_dead) ? 1 : 2;
        }
        pending->remaining = targets;
        for (const SubRange& sr : subs) {
            const bool p_dead =
                faults_->health(sr.disk) == DiskHealth::Dead;
            const bool m_dead =
                faults_->health(sr.disk + half) == DiskHealth::Dead;
            if (p_dead || m_dead)
                ++faults_->hostCounters().degradedWrites;
            if (!p_dead)
                submitSub(sr.disk, sr, true, pending, m_dead);
            if (!m_dead)
                submitSub(sr.disk + half, sr, true, pending, p_dead);
        }
        return;
    }

    pending->remaining = subs.size();
    for (const SubRange& sr : subs) {
        bool degraded = false;
        const unsigned target = pickReadTarget(sr.disk, degraded);
        submitSub(target, sr, is_write, pending, degraded);
    }
}

bool
DiskArray::pinLogicalBlock(ArrayBlock lb)
{
    if (lb >= totalBlocks())
        fatal("DiskArray: pin past end of array");
    const PhysicalLoc loc = striping_.toPhysical(lb);
    bool ok = ctrls_[loc.disk]->pinBlock(loc.block);
    if (mirrored_) {
        // Pin on both replicas so either can serve reads and absorb
        // writes.
        ok = ctrls_[loc.disk + striping_.disks()]->pinBlock(
                 loc.block) &&
             ok;
    }
    return ok;
}

bool
DiskArray::unpinLogicalBlock(ArrayBlock lb)
{
    if (lb >= totalBlocks())
        fatal("DiskArray: unpin past end of array");
    const PhysicalLoc loc = striping_.toPhysical(lb);
    bool ok = ctrls_[loc.disk]->unpinBlock(loc.block);
    if (mirrored_) {
        ok = ctrls_[loc.disk + striping_.disks()]->unpinBlock(
                 loc.block) &&
             ok;
    }
    return ok;
}

void
DiskArray::pinOnDisk(unsigned d, BlockNum b)
{
    DiskController* c = ctrls_[d].get();
    link_->postToShard(d, link_->hostNow() + c->commandLatency(),
                       [c, b]() {
                           if (!c->pinBlock(b))
                               fatal("DiskArray: deferred pin_blk of "
                                     "block %llu failed on disk %u -- "
                                     "the host-side capacity model is "
                                     "out of sync",
                                     static_cast<unsigned long long>(b),
                                     c->diskId());
                       });
}

void
DiskArray::unpinOnDisk(unsigned d, BlockNum b)
{
    DiskController* c = ctrls_[d].get();
    link_->postToShard(d, link_->hostNow() + c->commandLatency(),
                       [c, b]() {
                           if (!c->unpinBlock(b))
                               fatal("DiskArray: deferred unpin_blk of "
                                     "block %llu failed on disk %u -- "
                                     "the host-side pin set is out of "
                                     "sync",
                                     static_cast<unsigned long long>(b),
                                     c->diskId());
                       });
}

void
DiskArray::pinLogicalBlockDeferred(ArrayBlock lb)
{
    if (lb >= totalBlocks())
        fatal("DiskArray: pin past end of array");
    const PhysicalLoc loc = striping_.toPhysical(lb);
    pinOnDisk(loc.disk, loc.block);
    if (mirrored_)
        pinOnDisk(loc.disk + striping_.disks(), loc.block);
}

void
DiskArray::unpinLogicalBlockDeferred(ArrayBlock lb)
{
    if (lb >= totalBlocks())
        fatal("DiskArray: unpin past end of array");
    const PhysicalLoc loc = striping_.toPhysical(lb);
    unpinOnDisk(loc.disk, loc.block);
    if (mirrored_)
        unpinOnDisk(loc.disk + striping_.disks(), loc.block);
}

void
DiskArray::failDisk(unsigned d)
{
    ++faults_->hostCounters().diskFailures;
    if (!mirrored_)
        fatal("DiskArray: disk %u failed at tick %llu but the array "
              "is unmirrored; no redundancy exists to serve its "
              "data -- enable system.mirrored (RAID-1/0) or drop "
              "the fault.kill_at_ticks script",
              d, static_cast<unsigned long long>(eq_.now()));
    const unsigned partner = partnerOf(d);
    if (faults_->health(partner) != DiskHealth::Alive)
        fatal("DiskArray: disk %u failed while its mirror partner "
              "%u is already offline; the mirrored pair has no "
              "readable copy left",
              d, partner);
    faults_->setHealth(d, DiskHealth::Dead);
    inform("fault: disk %u failed at tick %llu (mirror partner %u "
           "takes over reads)",
           d, static_cast<unsigned long long>(eq_.now()), partner);
    if (faultHook_)
        faultHook_("failure", d, eq_.now());
}

void
DiskArray::repairDisk(unsigned d)
{
    if (faults_->health(d) != DiskHealth::Dead)
        return;
    ++faults_->hostCounters().diskRepairs;
    faults_->setHealth(d, DiskHealth::Rebuilding);

    const FaultConfig& fc = faults_->config();
    std::uint64_t span = fc.rebuildBlocks == 0
                             ? ctrls_[d]->params().totalBlocks()
                             : fc.rebuildBlocks;
    span = std::min(span, ctrls_[d]->params().totalBlocks());
    inform("fault: disk %u repaired at tick %llu; rebuilding %llu "
           "blocks from mirror %u",
           d, static_cast<unsigned long long>(eq_.now()),
           static_cast<unsigned long long>(span), partnerOf(d));
    if (faultHook_)
        faultHook_("repair", d, eq_.now());
    rebuildEnd_[d] = span;
    issueRebuildChunk(d, 0);
}

void
DiskArray::issueRebuildChunk(unsigned d, std::uint64_t start)
{
    const std::uint64_t end = rebuildEnd_[d];
    if (start >= end) {
        faults_->setHealth(d, DiskHealth::Alive);
        inform("fault: disk %u rebuild complete at tick %llu",
               d, static_cast<unsigned long long>(eq_.now()));
        if (faultHook_)
            faultHook_("rebuilt", d, eq_.now());
        return;
    }
    const std::uint64_t chunk =
        std::max<std::uint64_t>(faults_->config().rebuildChunkBlocks,
                                1);
    const std::uint64_t n = std::min(chunk, end - start);
    const unsigned partner = partnerOf(d);
    // Read the chunk from the surviving replica, then write it back
    // to the repaired disk; both media jobs queue behind (and seek
    // against) foreground traffic.
    ctrls_[partner]->submitRebuild(
        start, n, false,
        [this, d, start, n](const IoRequest&, Tick) {
            ctrls_[d]->submitRebuild(
                start, n, true,
                [this, d, start, n](const IoRequest&, Tick) {
                    issueRebuildChunk(d, start + n);
                });
        });
}

std::uint64_t
DiskArray::flushAllHdc()
{
    std::uint64_t jobs = 0;
    for (auto& c : ctrls_)
        jobs += c->flushHdc();
    return jobs;
}

ControllerStats
DiskArray::aggregateStats() const
{
    ControllerStats total;
    for (const auto& c : ctrls_) {
        const ControllerStats& s = c->stats();
        total.reads += s.reads;
        total.writes += s.writes;
        total.readBlocks += s.readBlocks;
        total.writeBlocks += s.writeBlocks;
        total.cacheHitRequests += s.cacheHitRequests;
        total.hdcHitRequests += s.hdcHitRequests;
        total.hdcHitBlocks += s.hdcHitBlocks;
        total.raHitBlocks += s.raHitBlocks;
        total.mediaAccesses += s.mediaAccesses;
        total.mediaBlocks += s.mediaBlocks;
        total.readAheadBlocks += s.readAheadBlocks;
        total.flushWrites += s.flushWrites;
        total.flushBlocks += s.flushBlocks;
        total.seekTime += s.seekTime;
        total.rotTime += s.rotTime;
        total.xferTime += s.xferTime;
        total.mediaBusy += s.mediaBusy;
        total.queueTime += s.queueTime;
        total.busTime += s.busTime;
        total.latencySum += s.latencySum;
        total.latencyMax = std::max(total.latencyMax, s.latencyMax);
    }
    return total;
}

RaCounters
DiskArray::aggregateRaCounters() const
{
    RaCounters total;
    for (const auto& c : ctrls_) {
        const RaCounters& r = c->raCounters();
        total.specInserted += r.specInserted;
        total.specUsed += r.specUsed;
        total.specWasted += r.specWasted;
    }
    return total;
}

void
DiskArray::setServiceStats(stats::ServiceStats* svc)
{
    for (auto& c : ctrls_)
        c->setServiceStats(svc);
}

void
DiskArray::setTracer(RequestTracer* tracer)
{
    for (auto& c : ctrls_)
        c->setTracer(tracer);
}

void
DiskArray::exportStats(stats::StatGroup& parent, Tick asOf) const
{
    using stats::Scalar;
    stats::StatGroup& bg = parent.makeGroup("bus");
    bg.make<Scalar>("busy_ms", "total bus busy time")
        .set(toMillis(bus_.busyTime()));
    bg.make<Scalar>("tenures", "completed bus tenures")
        .set(static_cast<double>(bus_.tenures()));
    bg.make<Scalar>("bytes", "payload bytes moved across the bus")
        .set(static_cast<double>(bus_.bytesTransferred()));
    bg.make<Scalar>("utilization", "bus busy fraction of elapsed time")
        .set(bus_.utilization(asOf ? asOf : eq_.now()));

    if (faults_) {
        const FaultCounters f = faults_->totals();
        auto addU = [](stats::StatGroup& g, const char* name,
                       const char* desc, std::uint64_t v) {
            g.make<Scalar>(name, desc)
                .set(static_cast<double>(v));
        };
        stats::StatGroup& fg = parent.makeGroup("fault");
        addU(fg, "mediaErrors", "failed media access attempts",
             f.mediaErrors);
        addU(fg, "retries", "media attempts re-serviced after an error",
             f.retries);
        fg.make<Scalar>("retry_ms", "time spent re-servicing retries")
            .set(toMillis(f.retryTicks));
        addU(fg, "remapEvents",
             "retry budgets exhausted (sector remapped)",
             f.remapEvents);
        addU(fg, "remappedBlocks", "blocks moved to the spare region",
             f.remappedBlocks);
        addU(fg, "remappedAccesses",
             "accesses paying the permanent remap penalty",
             f.remappedAccesses);
        addU(fg, "stalls", "controller dispatch stalls and timeouts",
             f.stalls);
        fg.make<Scalar>("stall_ms", "dispatch time lost to stalls")
            .set(toMillis(f.stallTicks));
        addU(fg, "diskFailures", "scripted whole-disk failures",
             f.diskFailures);
        addU(fg, "diskRepairs", "scripted disk repairs", f.diskRepairs);
        addU(fg, "degradedReads",
             "reads re-routed off a dead mirror replica",
             f.degradedReads);
        addU(fg, "degradedWrites",
             "writes that reached only one replica",
             f.degradedWrites);
        addU(fg, "rebuildJobs", "rebuild media jobs issued",
             f.rebuildJobs);
        addU(fg, "rebuildBlocks", "blocks copied by mirror rebuild",
             f.rebuildBlocks);
    }

    for (const auto& c : ctrls_)
        c->exportStats(parent);
}

} // namespace dtsim
