#include "array/disk_array.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

DiskArray::DiskArray(EventQueue& eq, const ArrayConfig& cfg)
    : eq_(eq), bus_(cfg.busBytesPerSec), mirrored_(cfg.mirrored),
      striping_(cfg.mirrored ? cfg.disks / 2 : cfg.disks,
                cfg.stripeUnitBytes / cfg.disk.blockSize,
                cfg.disk.totalBlocks())
{
    if (cfg.stripeUnitBytes % cfg.disk.blockSize != 0)
        fatal("DiskArray: stripe unit must be a block multiple");
    if (cfg.mirrored && (cfg.disks < 2 || cfg.disks % 2 != 0))
        fatal("DiskArray: mirroring needs an even disk count");
    ctrls_.reserve(cfg.disks);
    for (unsigned d = 0; d < cfg.disks; ++d) {
        auto ctl = std::make_unique<DiskController>(
            eq_, bus_, cfg.disk, cfg.controller, d);
        ctrls_.push_back(std::move(ctl));
    }
}

void
DiskArray::setBitmaps(const std::vector<LayoutBitmap>* bitmaps)
{
    if (!bitmaps)
        fatal("DiskArray: null bitmap vector");
    const unsigned logical = striping_.disks();
    if (bitmaps->size() != logical)
        fatal("DiskArray: need one bitmap per (logical) disk");
    for (unsigned d = 0; d < logical; ++d) {
        ctrls_[d]->setBitmap(&(*bitmaps)[d]);
        if (mirrored_)
            ctrls_[d + logical]->setBitmap(&(*bitmaps)[d]);
    }
}

unsigned
DiskArray::pickReplica(unsigned disk) const
{
    if (!mirrored_)
        return disk;
    const unsigned half = striping_.disks();
    const unsigned mirror = disk + half;
    // Shorter queue wins; ties go to the primary.
    return ctrls_[mirror]->outstanding() <
                   ctrls_[disk]->outstanding()
        ? mirror
        : disk;
}

DiskArray::Pending*
DiskArray::acquirePending()
{
    if (pendingFree_.empty()) {
        pendingStore_.push_back(std::make_unique<Pending>());
        return pendingStore_.back().get();
    }
    Pending* p = pendingFree_.back();
    pendingFree_.pop_back();
    *p = Pending{};
    return p;
}

void
DiskArray::recyclePending(Pending* p)
{
    pendingFree_.push_back(p);
}

void
DiskArray::submitSub(unsigned disk, const SubRange& sr,
                     bool is_write, Pending* pending)
{
    IoRequest sub;
    sub.id = nextSubId_++;
    sub.diskId = disk;
    sub.start = sr.start;
    sub.count = sr.count;
    sub.isWrite = is_write;
    sub.onComplete = [this, pending](const IoRequest& done,
                                     Tick when) {
        if (done.served == ServiceClass::Media)
            pending->anyMedia = true;
        if (done.served != ServiceClass::HdcHit)
            pending->anyNonHdc = true;
        pending->lastDone = std::max(pending->lastDone, when);
        if (--pending->remaining == 0) {
            ArrayRequest& r = pending->req;
            r.allCacheHits = !pending->anyMedia;
            r.allHdcHits = !pending->anyNonHdc;
            --outstanding_;
            if (r.onComplete)
                r.onComplete(r, pending->lastDone);
            recyclePending(pending);
        }
    };
    ctrls_[disk]->submit(std::move(sub));
}

void
DiskArray::submit(ArrayRequest req)
{
    if (req.count == 0)
        fatal("DiskArray: zero-length request");
    if (req.start + req.count > totalBlocks())
        fatal("DiskArray: request past end of array");

    req.issued = eq_.now();
    ++outstanding_;

    // Controller submit() only schedules events (no synchronous
    // completions), so no nested submit() can run while we iterate and
    // the scratch buffer is safe to reuse across requests.
    subsScratch_.clear();
    striping_.splitInto(req.start, req.count, subsScratch_);
    const std::vector<SubRange>& subs = subsScratch_;
    const bool is_write = req.isWrite;
    Pending* pending = acquirePending();
    pending->req = std::move(req);
    // A mirrored write lands on both replicas of each sub-range.
    pending->remaining =
        mirrored_ && is_write ? subs.size() * 2 : subs.size();

    const unsigned half = striping_.disks();
    for (const SubRange& sr : subs) {
        if (mirrored_ && is_write) {
            submitSub(sr.disk, sr, true, pending);
            submitSub(sr.disk + half, sr, true, pending);
        } else {
            submitSub(pickReplica(sr.disk), sr, is_write, pending);
        }
    }
}

bool
DiskArray::pinLogicalBlock(ArrayBlock lb)
{
    if (lb >= totalBlocks())
        fatal("DiskArray: pin past end of array");
    const PhysicalLoc loc = striping_.toPhysical(lb);
    bool ok = ctrls_[loc.disk]->pinBlock(loc.block);
    if (mirrored_) {
        // Pin on both replicas so either can serve reads and absorb
        // writes.
        ok = ctrls_[loc.disk + striping_.disks()]->pinBlock(
                 loc.block) &&
             ok;
    }
    return ok;
}

bool
DiskArray::unpinLogicalBlock(ArrayBlock lb)
{
    if (lb >= totalBlocks())
        fatal("DiskArray: unpin past end of array");
    const PhysicalLoc loc = striping_.toPhysical(lb);
    bool ok = ctrls_[loc.disk]->unpinBlock(loc.block);
    if (mirrored_) {
        ok = ctrls_[loc.disk + striping_.disks()]->unpinBlock(
                 loc.block) &&
             ok;
    }
    return ok;
}

std::uint64_t
DiskArray::flushAllHdc()
{
    std::uint64_t jobs = 0;
    for (auto& c : ctrls_)
        jobs += c->flushHdc();
    return jobs;
}

ControllerStats
DiskArray::aggregateStats() const
{
    ControllerStats total;
    for (const auto& c : ctrls_) {
        const ControllerStats& s = c->stats();
        total.reads += s.reads;
        total.writes += s.writes;
        total.readBlocks += s.readBlocks;
        total.writeBlocks += s.writeBlocks;
        total.cacheHitRequests += s.cacheHitRequests;
        total.hdcHitRequests += s.hdcHitRequests;
        total.hdcHitBlocks += s.hdcHitBlocks;
        total.raHitBlocks += s.raHitBlocks;
        total.mediaAccesses += s.mediaAccesses;
        total.mediaBlocks += s.mediaBlocks;
        total.readAheadBlocks += s.readAheadBlocks;
        total.flushWrites += s.flushWrites;
        total.flushBlocks += s.flushBlocks;
        total.seekTime += s.seekTime;
        total.rotTime += s.rotTime;
        total.xferTime += s.xferTime;
        total.mediaBusy += s.mediaBusy;
        total.queueTime += s.queueTime;
        total.busTime += s.busTime;
        total.latencySum += s.latencySum;
        total.latencyMax = std::max(total.latencyMax, s.latencyMax);
    }
    return total;
}

RaCounters
DiskArray::aggregateRaCounters() const
{
    RaCounters total;
    for (const auto& c : ctrls_) {
        const RaCounters& r = c->raCounters();
        total.specInserted += r.specInserted;
        total.specUsed += r.specUsed;
        total.specWasted += r.specWasted;
    }
    return total;
}

void
DiskArray::setServiceStats(stats::ServiceStats* svc)
{
    for (auto& c : ctrls_)
        c->setServiceStats(svc);
}

void
DiskArray::setTracer(RequestTracer* tracer)
{
    for (auto& c : ctrls_)
        c->setTracer(tracer);
}

void
DiskArray::exportStats(stats::StatGroup& parent) const
{
    using stats::Scalar;
    stats::StatGroup& bg = parent.makeGroup("bus");
    bg.make<Scalar>("busy_ms", "total bus busy time")
        .set(toMillis(bus_.busyTime()));
    bg.make<Scalar>("tenures", "completed bus tenures")
        .set(static_cast<double>(bus_.tenures()));
    bg.make<Scalar>("bytes", "payload bytes moved across the bus")
        .set(static_cast<double>(bus_.bytesTransferred()));
    bg.make<Scalar>("utilization", "bus busy fraction of elapsed time")
        .set(bus_.utilization(eq_.now()));

    for (const auto& c : ctrls_)
        c->exportStats(parent);
}

} // namespace dtsim
