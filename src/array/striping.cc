#include "array/striping.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dtsim {

StripingMap::StripingMap(unsigned disks, std::uint64_t unit_blocks,
                         std::uint64_t per_disk_blocks)
    : disks_(disks), unit_(unit_blocks), perDisk_(per_disk_blocks)
{
    if (disks == 0 || unit_blocks == 0 || per_disk_blocks == 0)
        fatal("StripingMap: disks, unit, and capacity must be > 0");
    if (per_disk_blocks % unit_blocks != 0)
        inform("StripingMap: disk capacity is not a unit multiple; "
             "the trailing partial unit is unused");
}

PhysicalLoc
StripingMap::toPhysical(ArrayBlock lb) const
{
    const std::uint64_t stripe_unit = lb / unit_;
    const std::uint64_t in_unit = lb % unit_;
    PhysicalLoc loc;
    loc.disk = static_cast<unsigned>(stripe_unit % disks_);
    loc.block = (stripe_unit / disks_) * unit_ + in_unit;
    return loc;
}

ArrayBlock
StripingMap::toLogical(unsigned disk, BlockNum block) const
{
    const std::uint64_t local_unit = block / unit_;
    const std::uint64_t in_unit = block % unit_;
    const std::uint64_t stripe_unit =
        local_unit * disks_ + disk;
    return stripe_unit * unit_ + in_unit;
}

std::vector<SubRange>
StripingMap::split(ArrayBlock start, std::uint64_t count) const
{
    std::vector<SubRange> out;
    splitInto(start, count, out);
    return out;
}

void
StripingMap::splitInto(ArrayBlock start, std::uint64_t count,
                       std::vector<SubRange>& out) const
{
    const std::size_t base = out.size();
    std::uint64_t done = 0;
    while (done < count) {
        const ArrayBlock lb = start + done;
        const std::uint64_t left_in_unit = unit_ - (lb % unit_);
        const std::uint64_t n = std::min(count - done, left_in_unit);
        const PhysicalLoc loc = toPhysical(lb);

        // Merge with the previous sub-range when physically
        // contiguous on the same disk (always true when disks == 1).
        if (out.size() > base && out.back().disk == loc.disk &&
            out.back().start + out.back().count == loc.block) {
            out.back().count += n;
        } else {
            out.push_back(SubRange{loc.disk, loc.block, n, done});
        }
        done += n;
    }
}

} // namespace dtsim
