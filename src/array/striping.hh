/**
 * @file
 * RAID-0 striping across the disks of an array (Section 2.2).
 *
 * Logical array blocks are grouped into fixed-size striping units that
 * are laid out round-robin across the physical disks. The unit size is
 * the key tunable the paper sweeps in Figures 7, 9, and 11.
 */

#ifndef DTSIM_ARRAY_STRIPING_HH
#define DTSIM_ARRAY_STRIPING_HH

#include <cstdint>
#include <vector>

#include "disk/geometry.hh"

namespace dtsim {

/** Block number in the array's logical address space. */
using ArrayBlock = std::uint64_t;

/** A physical placement of one logical block. */
struct PhysicalLoc
{
    unsigned disk;
    BlockNum block;

    bool
    operator==(const PhysicalLoc& o) const
    {
        return disk == o.disk && block == o.block;
    }
};

/** A contiguous per-disk piece of a logical request. */
struct SubRange
{
    unsigned disk;
    BlockNum start;             ///< Local block on that disk.
    std::uint64_t count;
    std::uint64_t logicalOffset; ///< Offset within the logical run.
};

/** Round-robin striping map. */
class StripingMap
{
  public:
    /**
     * @param disks Number of disks (>= 1).
     * @param unit_blocks Striping unit in 4 KB blocks (>= 1).
     * @param per_disk_blocks Capacity of each disk in blocks.
     */
    StripingMap(unsigned disks, std::uint64_t unit_blocks,
                std::uint64_t per_disk_blocks);

    /** Physical placement of a logical block. */
    PhysicalLoc toPhysical(ArrayBlock lb) const;

    /** Logical block stored at a physical location. */
    ArrayBlock toLogical(unsigned disk, BlockNum block) const;

    /**
     * Split a contiguous logical run into per-disk contiguous
     * sub-ranges (one per striping unit touched).
     */
    std::vector<SubRange> split(ArrayBlock start,
                                std::uint64_t count) const;

    /**
     * split() into a caller-owned vector (appended to), so per-request
     * callers can reuse one buffer instead of allocating each time.
     */
    void splitInto(ArrayBlock start, std::uint64_t count,
                   std::vector<SubRange>& out) const;

    unsigned disks() const { return disks_; }
    std::uint64_t unitBlocks() const { return unit_; }

    /** Capacity of the whole array in logical blocks. */
    std::uint64_t
    totalBlocks() const
    {
        return static_cast<std::uint64_t>(disks_) * perDisk_;
    }

  private:
    unsigned disks_;
    std::uint64_t unit_;
    std::uint64_t perDisk_;
};

} // namespace dtsim

#endif // DTSIM_ARRAY_STRIPING_HH
