/**
 * @file
 * The disk array: a set of disk controllers behind one shared bus,
 * addressed through a striped logical block space.
 *
 * A logical request is split along striping-unit boundaries into
 * per-disk sub-requests; it completes when the last sub-request
 * completes (Section 2.2's gamma(D) fragmentation effect emerges from
 * this fan-out).
 */

#ifndef DTSIM_ARRAY_DISK_ARRAY_HH
#define DTSIM_ARRAY_DISK_ARRAY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "array/striping.hh"
#include "bus/scsi_bus.hh"
#include "controller/disk_controller.hh"
#include "controller/layout_bitmap.hh"
#include "fault/fault_model.hh"
#include "sim/event_queue.hh"
#include "sim/serial_merge.hh"

namespace dtsim {

/** One request in the array's logical block space. */
struct ArrayRequest
{
    using Callback = SmallFunction<void(const ArrayRequest&, Tick), 32>;

    std::uint64_t id = 0;
    ArrayBlock start = 0;
    std::uint64_t count = 1;
    bool isWrite = false;
    Tick issued = 0;

    /** True when every sub-request was a controller-cache hit. */
    bool allCacheHits = false;

    /** True when every sub-request was served by the HDC store. */
    bool allHdcHits = false;

    Callback onComplete;
};

/** Array-wide configuration. */
struct ArrayConfig
{
    unsigned disks = 8;
    std::uint64_t stripeUnitBytes = 128 * kKiB;
    DiskParams disk;
    ControllerConfig controller;
    double busBytesPerSec = 160.0e6;

    /**
     * RAID-1 over the stripes (RAID-10): the second half of the
     * disks mirrors the first. Reads go to the replica with the
     * shorter queue; writes go to both. Halves the logical capacity;
     * requires an even disk count.
     */
    bool mirrored = false;

    /**
     * Fault-injection knobs (defaults = everything off). When any
     * source is enabled the array owns a FaultModel, wires per-disk
     * fault state into every controller, and schedules the scripted
     * kill/repair events. See docs/FAULTS.md.
     */
    FaultConfig fault;
};

class ShardedKernel;

/** A striped array of simulated disks. */
class DiskArray
{
  public:
    /**
     * @param eq The event queue driving the array; with `kernel`
     *        attached this is the kernel's host (coordinator) queue.
     * @param cfg Array configuration.
     * @param kernel Optional sharded kernel (one shard per disk):
     *        each controller then schedules its disk-side events on
     *        its own shard queue and exchanges submissions and
     *        completions with the host timeline as messages.
     */
    DiskArray(EventQueue& eq, const ArrayConfig& cfg,
              ShardedKernel* kernel = nullptr);

    DiskArray(const DiskArray&) = delete;
    DiskArray& operator=(const DiskArray&) = delete;

    /**
     * Attach per-disk FOR bitmaps (index = disk). Required when the
     * controllers run FOR read-ahead. Bitmaps are owned by the caller
     * (normally the file-system model) and must outlive the array.
     */
    void setBitmaps(const std::vector<LayoutBitmap>* bitmaps);

    /** Submit a logical request. */
    void submit(ArrayRequest req);

    /** pin_blk() routed to the owning disk. @return success. */
    bool pinLogicalBlock(ArrayBlock lb);

    /** unpin_blk() routed to the owning disk. */
    bool unpinLogicalBlock(ArrayBlock lb);

    /**
     * Mid-run pin_blk(): the command crosses to the owning disk's
     * timeline (both replicas when mirrored) after that controller's
     * commandLatency(), like any other host->disk message, so it is
     * legal under the sharded kernel's lookahead contract. The caller
     * models HDC capacity host-side (see VictimHdcManager) — a
     * shard-side pin failure is therefore a model bug and fatal()s.
     */
    void pinLogicalBlockDeferred(ArrayBlock lb);

    /** Mid-run unpin_blk(); deferred like pinLogicalBlockDeferred(). */
    void unpinLogicalBlockDeferred(ArrayBlock lb);

    /**
     * Modeled host->controller command latency (uniform across the
     * array's identical controllers).
     */
    Tick commandLatency() const { return ctrls_[0]->commandLatency(); }

    /** flush_hdc() on every controller. @return media jobs queued. */
    std::uint64_t flushAllHdc();

    const StripingMap& striping() const { return striping_; }
    unsigned disks() const { return static_cast<unsigned>(ctrls_.size()); }
    DiskController& controller(unsigned d) { return *ctrls_.at(d); }
    const DiskController& controller(unsigned d) const
    {
        return *ctrls_.at(d);
    }
    ScsiBus& bus() { return bus_; }

    /** Logical capacity in blocks. */
    std::uint64_t totalBlocks() const { return striping_.totalBlocks(); }

    /** Sum of a statistic over all controllers. */
    ControllerStats aggregateStats() const;

    /** Summed read-ahead accuracy counters over all controllers. */
    RaCounters aggregateRaCounters() const;

    /** Attach the shared histogram bundle to every controller. */
    void setServiceStats(stats::ServiceStats* svc);

    /** Attach the request tracer to every controller. */
    void setTracer(RequestTracer* tracer);

    /**
     * Export a snapshot of bus and per-disk counters as owned child
     * groups of `parent` (see docs/METRICS.md). `asOf` pins the
     * elapsed-time denominator of clock-derived stats (bus
     * utilization); 0 reads the live event-queue clock. The final
     * dump passes the run's elapsed time so trailing housekeeping
     * events (snapshot / stream-frame chains) cannot skew ratios.
     */
    void exportStats(stats::StatGroup& parent, Tick asOf = 0) const;

    /** Requests still in flight. */
    std::uint64_t outstanding() const { return outstanding_; }

    /** True when the array mirrors its stripes (RAID-10). */
    bool mirrored() const { return mirrored_; }

    /** True when a fault model is attached (any fault.* enabled). */
    bool faultsEnabled() const { return faults_ != nullptr; }

    /**
     * Array-wide fault/recovery counters; all-zero when the fault
     * model is off.
     */
    FaultCounters faultCounters() const
    {
        return faults_ ? faults_->totals() : FaultCounters{};
    }

    /** Health of one physical disk (Alive when faults are off). */
    DiskHealth diskHealth(unsigned d) const
    {
        return faults_ ? faults_->health(d) : DiskHealth::Alive;
    }

    /**
     * Observer for scripted fault events ("failure", "repair",
     * "rebuilt"), called with the event name, the disk, and the
     * tick. Used by the runner to stamp snapshots into stats output;
     * tests use it to watch the health state machine.
     */
    using FaultEventHook =
        std::function<void(const char* event, unsigned disk, Tick)>;
    void setFaultEventHook(FaultEventHook hook)
    {
        faultHook_ = std::move(hook);
    }

  private:
    /**
     * Book-keeping for one in-flight logical request. Pool-allocated:
     * sub-request callbacks hold a raw pointer, and the callback that
     * drops `remaining` to zero recycles the object — every other
     * sub-callback has already run by then (each runs exactly once and
     * decrements), and an already-run callback never dereferences the
     * pointer again, so no reference counting is needed.
     */
    struct Pending
    {
        ArrayRequest req;
        std::size_t remaining = 0;
        bool anyMedia = false;
        bool anyNonHdc = false;
        Tick lastDone = 0;
    };

    /** Fresh (default-state) Pending from the pool. */
    Pending* acquirePending();

    /** Return a completed Pending to the pool. */
    void recyclePending(Pending* p);

    /** Replica choice for a mirrored read. */
    unsigned pickReplica(unsigned disk) const;

    /**
     * Replica choice honouring disk health: routes off dead
     * replicas, setting `degraded` when the preferred copy is gone.
     * fatal() when no live replica remains.
     */
    unsigned pickReadTarget(unsigned disk, bool& degraded);

    /** Issue one sub-request to one controller. */
    void submitSub(unsigned disk, const SubRange& sr, bool is_write,
                   Pending* pending, bool degraded = false);

    /** Post a deferred pin/unpin command to disk `d`'s timeline. */
    void pinOnDisk(unsigned d, BlockNum b);
    void unpinOnDisk(unsigned d, BlockNum b);

    /** The mirror partner of physical disk `d`. */
    unsigned partnerOf(unsigned d) const
    {
        const unsigned half = striping_.disks();
        return d < half ? d + half : d - half;
    }

    /** Scripted whole-disk failure at the configured tick. */
    void failDisk(unsigned d);

    /** Scripted repair: back online + sequential rebuild traffic. */
    void repairDisk(unsigned d);

    /** Issue the next rebuild chunk for disk `d` (ends at
     * rebuildEnd_[d]). */
    void issueRebuildChunk(unsigned d, std::uint64_t start);

    EventQueue& eq_;
    ScsiBus bus_;
    bool mirrored_;
    StripingMap striping_;

    /**
     * Serial cross-timeline link, owned when no sharded kernel is
     * attached. Serial runs route same-tick cross-disk completions
     * through it so their canonical (disk, FIFO) order matches the
     * sharded kernel's merge -- the prerequisite for sharded runs
     * being byte-identical to serial ones.
     */
    std::unique_ptr<SerialMergeLink> serialLink_;

    /** The active link: the sharded kernel or serialLink_. */
    ShardLink* link_ = nullptr;

    std::vector<std::unique_ptr<DiskController>> ctrls_;

    /** Reused split() output buffer (submit() is never re-entered). */
    std::vector<SubRange> subsScratch_;

    /** Owns every Pending ever allocated (callbacks see raw ptrs). */
    std::vector<std::unique_ptr<Pending>> pendingStore_;

    /** Free list over pendingStore_ entries. */
    std::vector<Pending*> pendingFree_;

    std::uint64_t nextSubId_ = 1;
    std::uint64_t outstanding_ = 0;

    /** Fault-injection state; null when every fault.* is off. */
    std::unique_ptr<FaultModel> faults_;
    FaultEventHook faultHook_;

    /** Per-disk rebuild end block (kept out of the chunk-completion
     * lambdas so they fit the SmallFunction buffer). */
    std::vector<std::uint64_t> rebuildEnd_;
};

} // namespace dtsim

#endif // DTSIM_ARRAY_DISK_ARRAY_HH
