/**
 * @file
 * The paper's closed-form models, usable independently of the
 * simulator (and tested against it).
 *
 * Includes: the request service-time formula T(r), the striped
 * response-time fragmentation factor gamma(D), the conventional and
 * FOR controller-cache hit-rate models (Section 4), the Zipf
 * accumulated-mass approximation of the HDC hit rate (Section 5), the
 * HDC/read-ahead memory trade-off bounds, and the Figure 1 average
 * sequential-run model.
 */

#ifndef DTSIM_ANALYTIC_MODELS_HH
#define DTSIM_ANALYTIC_MODELS_HH

#include <cstdint>

#include "disk/disk_params.hh"

namespace dtsim {
namespace analytic {

/**
 * Expected service time of a read of `r` blocks (Section 2.1):
 * T(r) = seek + rot_latency + r*S/xfer_rate, using the drive's
 * average seek and rotational latency.
 *
 * @return Time in milliseconds.
 */
double requestTimeMs(const DiskParams& p, std::uint64_t r_blocks);

/**
 * Average seek time of the modeled drive in milliseconds (expectation
 * of the three-piece curve over random cylinder pairs).
 */
double averageSeekMs(const DiskParams& p);

/** Average rotational latency (half a revolution) in milliseconds. */
double averageRotationMs(const DiskParams& p);

/**
 * Response-time fragmentation factor gamma(D) for a request split
 * into D sub-requests with uniform service times (Section 2.2):
 * gamma(D) = 2D / (D + 1).
 */
double gammaFactor(unsigned d);

/**
 * Response time of a striped request of `r` blocks split into `d`
 * sub-requests: gamma(d) * T(r/d), in milliseconds.
 */
double stripedResponseMs(const DiskParams& p, std::uint64_t r_blocks,
                         unsigned d);

/**
 * Conventional (blind read-ahead, segment cache) controller hit rate
 * for `t` sequential streams (Section 4):
 *   t <= s: (min(f, c/s) - 1) / min(f, c/s)
 *   t >  s: (p - 1) / p
 *
 * @param f Average file size in blocks.
 * @param c Cache size in blocks.
 * @param s Number of segments.
 * @param p Blocks per host request (>= 1).
 * @param t Concurrent streams.
 */
double conventionalHitRate(double f, double c, double s, double p,
                           double t);

/**
 * FOR (block cache) controller hit rate (Section 4):
 *   t <= c/f: (f - 1) / f
 *   t >  c/f: (p - 1) / p
 */
double forHitRate(double f, double c, double p, double t);

/**
 * Accumulated probability of the H most popular items of a Zipf(N,
 * alpha) distribution: z_alpha(H, N), the paper's HDC hit-rate model.
 * Computed exactly by summation.
 */
double zipfTopMass(std::uint64_t h, std::uint64_t n, double alpha);

/**
 * Maximum array-wide HDC allocation (Section 5):
 * Hmax = D*c - Rmin, in blocks.
 */
double hdcMaxBlocks(unsigned d, double c_blocks, double rmin_blocks);

/** Minimum read-ahead cache for blind read-ahead: t * (c/s). */
double rminBlind(double t, double c_blocks, double s);

/** Minimum read-ahead cache for FOR: t * f. */
double rminFor(double t, double f_blocks);

/**
 * Figure 1 model: expected average sequential run length of an
 * n-block file whose intra-file boundaries each break with
 * probability `frag`: n / (1 + (n-1)*frag).
 */
double averageSequentialRun(std::uint64_t n_blocks, double frag);

/**
 * Disk utilization reduction of FOR versus a blind read-ahead of
 * `ra_bytes` when files average `file_bytes` (Section 4's 29%
 * example): 1 - T(file)/T(ra).
 */
double utilizationReduction(const DiskParams& p,
                            std::uint64_t file_bytes,
                            std::uint64_t ra_bytes);

} // namespace analytic
} // namespace dtsim

#endif // DTSIM_ANALYTIC_MODELS_HH
