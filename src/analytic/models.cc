#include "analytic/models.hh"

#include <algorithm>
#include <cmath>

#include "disk/geometry.hh"
#include "disk/seek_model.hh"

namespace dtsim {
namespace analytic {

double
averageSeekMs(const DiskParams& p)
{
    const DiskGeometry geom(p);
    const SeekModel seek(p);
    return seek.averageSeekMs(geom.cylinders());
}

double
averageRotationMs(const DiskParams& p)
{
    return 0.5 * 60.0e3 / static_cast<double>(p.rpm);
}

double
requestTimeMs(const DiskParams& p, std::uint64_t r_blocks)
{
    const double xfer_ms =
        static_cast<double>(r_blocks) * p.blockSize /
        p.xferRateBytesPerSec * 1.0e3;
    return averageSeekMs(p) + averageRotationMs(p) + xfer_ms;
}

double
gammaFactor(unsigned d)
{
    return 2.0 * static_cast<double>(d) /
           (static_cast<double>(d) + 1.0);
}

double
stripedResponseMs(const DiskParams& p, std::uint64_t r_blocks,
                  unsigned d)
{
    if (d == 0)
        return 0.0;
    const std::uint64_t per =
        std::max<std::uint64_t>(1, r_blocks / d);
    return gammaFactor(d) * requestTimeMs(p, per);
}

double
conventionalHitRate(double f, double c, double s, double p, double t)
{
    if (t <= s) {
        const double m = std::min(f, c / s);
        return m <= 0.0 ? 0.0 : (m - 1.0) / m;
    }
    return p <= 0.0 ? 0.0 : (p - 1.0) / p;
}

double
forHitRate(double f, double c, double p, double t)
{
    if (f <= 0.0)
        return 0.0;
    if (t <= c / f)
        return (f - 1.0) / f;
    return p <= 0.0 ? 0.0 : (p - 1.0) / p;
}

double
zipfTopMass(std::uint64_t h, std::uint64_t n, double alpha)
{
    if (n == 0 || h == 0)
        return 0.0;
    h = std::min(h, n);
    double top = 0.0;
    double total = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
        const double w =
            1.0 / std::pow(static_cast<double>(i), alpha);
        total += w;
        if (i <= h)
            top += w;
    }
    return top / total;
}

double
hdcMaxBlocks(unsigned d, double c_blocks, double rmin_blocks)
{
    return static_cast<double>(d) * c_blocks - rmin_blocks;
}

double
rminBlind(double t, double c_blocks, double s)
{
    return s <= 0.0 ? 0.0 : t * (c_blocks / s);
}

double
rminFor(double t, double f_blocks)
{
    return t * f_blocks;
}

double
averageSequentialRun(std::uint64_t n_blocks, double frag)
{
    if (n_blocks == 0)
        return 0.0;
    const double n = static_cast<double>(n_blocks);
    return n / (1.0 + (n - 1.0) * frag);
}

double
utilizationReduction(const DiskParams& p, std::uint64_t file_bytes,
                     std::uint64_t ra_bytes)
{
    const std::uint64_t fb =
        std::max<std::uint64_t>(1, file_bytes / p.blockSize);
    const std::uint64_t rb =
        std::max<std::uint64_t>(1, ra_bytes / p.blockSize);
    const double t_for = requestTimeMs(p, fb);
    const double t_blind = requestTimeMs(p, rb);
    return t_blind <= 0.0 ? 0.0 : 1.0 - t_for / t_blind;
}

} // namespace analytic
} // namespace dtsim
