/**
 * @file
 * Configuration for the deterministic fault-injection layer.
 *
 * Everything here is plain data plus small inline parsers so that the
 * config subsystem (which binds and validates these fields) does not
 * need to link against the fault model itself. The semantics live in
 * fault/fault_model.{hh,cc}; the full narrative is docs/FAULTS.md.
 *
 * All defaults mean "off": a default-constructed FaultConfig leaves
 * every run byte-identical to a build without the fault layer.
 */

#ifndef DTSIM_FAULT_FAULT_CONFIG_HH
#define DTSIM_FAULT_FAULT_CONFIG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace dtsim {

/** One scripted bad block: media accesses touching it fail. */
struct BadBlockSpec
{
    unsigned disk = 0;         ///< Physical disk index.
    std::uint64_t block = 0;   ///< Disk-local block number.
};

/** One scripted controller stall window, in ticks. */
struct StallWindow
{
    Tick start = 0;     ///< First tick of the stall.
    Tick duration = 0;  ///< Length; dispatches resume at start+duration.
};

/**
 * Fault-injection knobs, bound as the `fault.*` parameter group.
 *
 * Media errors: `mediaErrorRate` draws a Bernoulli failure per media
 * access attempt from a dedicated per-disk RNG stream (seeded from
 * `seed`, independent of the workload and cache streams); `badBlocks`
 * scripts deterministic always-failing blocks. A failed attempt is
 * retried up to `maxRetries` times (each re-priced by the disk
 * mechanism, i.e. a realistic re-seek), then the failing block is
 * remapped to a spare region and every later access touching it pays
 * `remapPenaltyMs` of extra seek.
 *
 * Transient timeouts: `stallWindows` scripts controller stalls;
 * `timeoutRate` draws probabilistic dispatch timeouts which back off
 * exponentially from `backoffUs` capped at `backoffMaxUs`.
 *
 * Whole-disk failure: at `killAtTicks` disk `killDisk` dies. Reads
 * are redirected to the RAID-1/0 mirror partner (unmirrored arrays
 * abort with a diagnostic). At `repairAtTicks` the disk comes back
 * and a sequential rebuild of `rebuildBlocks` blocks (0 = the whole
 * disk) is injected in chunks of `rebuildChunkBlocks`, competing with
 * foreground I/O.
 */
struct FaultConfig
{
    double mediaErrorRate = 0.0;     ///< P(media attempt fails).
    std::string badBlocks;           ///< "disk:block,disk:block,...".
    unsigned maxRetries = 3;         ///< Retries before remapping.
    double remapPenaltyMs = 2.0;     ///< Extra seek on remapped blocks.
    double timeoutRate = 0.0;        ///< P(dispatch timeout).
    std::string stallWindows;        ///< "start:duration,..." (ticks).
    double backoffUs = 100.0;        ///< Initial timeout backoff.
    double backoffMaxUs = 10000.0;   ///< Backoff cap.
    Tick killAtTicks = 0;            ///< Disk-kill tick; 0 = never.
    unsigned killDisk = 0;           ///< Which disk dies.
    Tick repairAtTicks = 0;          ///< Repair tick; 0 = never.
    std::uint64_t rebuildBlocks = 32768;   ///< Rebuild span; 0 = all.
    std::uint64_t rebuildChunkBlocks = 256; ///< Blocks per rebuild job.
    std::uint64_t seed = 1;          ///< Fault RNG seed (own stream).

    /** True when any fault source is switched on. */
    bool
    enabled() const
    {
        return mediaErrorRate > 0.0 || !badBlocks.empty() ||
               timeoutRate > 0.0 || !stallWindows.empty() ||
               killAtTicks > 0;
    }
};

namespace fault {

/**
 * Parse a "disk:block[,disk:block...]" scripted bad-block list.
 * Whitespace around entries is not accepted; the format is the same
 * one renderConfigHeader round-trips. Returns false and sets `err`
 * on malformed input. An empty string parses to an empty list.
 */
inline bool
parseBadBlocks(const std::string& text,
               std::vector<BadBlockSpec>& out, std::string& err)
{
    out.clear();
    if (text.empty())
        return true;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string entry =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= entry.size()) {
            err = "bad_blocks entry '" + entry +
                  "' is not disk:block";
            return false;
        }
        BadBlockSpec spec;
        try {
            std::size_t used = 0;
            const unsigned long d =
                std::stoul(entry.substr(0, colon), &used);
            if (used != colon)
                throw std::invalid_argument(entry);
            spec.disk = static_cast<unsigned>(d);
            const std::string blk = entry.substr(colon + 1);
            spec.block = std::stoull(blk, &used);
            if (used != blk.size())
                throw std::invalid_argument(entry);
        } catch (...) {
            err = "bad_blocks entry '" + entry +
                  "' is not disk:block";
            return false;
        }
        out.push_back(spec);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

/**
 * Parse a "start:duration[,start:duration...]" stall-window script
 * (both fields in ticks). Returns false and sets `err` on malformed
 * input. An empty string parses to an empty list.
 */
inline bool
parseStallWindows(const std::string& text,
                  std::vector<StallWindow>& out, std::string& err)
{
    out.clear();
    if (text.empty())
        return true;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string entry =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= entry.size()) {
            err = "stall_windows entry '" + entry +
                  "' is not start:duration";
            return false;
        }
        StallWindow w;
        try {
            std::size_t used = 0;
            const std::string s = entry.substr(0, colon);
            w.start = std::stoull(s, &used);
            if (used != s.size())
                throw std::invalid_argument(entry);
            const std::string d = entry.substr(colon + 1);
            w.duration = std::stoull(d, &used);
            if (used != d.size())
                throw std::invalid_argument(entry);
        } catch (...) {
            err = "stall_windows entry '" + entry +
                  "' is not start:duration";
            return false;
        }
        out.push_back(w);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

} // namespace fault
} // namespace dtsim

#endif // DTSIM_FAULT_FAULT_CONFIG_HH
