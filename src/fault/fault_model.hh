/**
 * @file
 * Deterministic fault-injection model: per-disk media-error state,
 * transient timeout/backoff state, and whole-array health tracking.
 *
 * The model is passive: it never schedules events itself. The
 * DiskController consults its per-disk DiskFaults when it starts a
 * media access (media errors, retries, remaps) and when it tries to
 * dispatch (stalls); the DiskArray owns the FaultModel, schedules the
 * scripted kill/repair events, and uses the health map to route
 * degraded reads and rebuild traffic. All randomness comes from
 * per-disk xoshiro streams seeded from fault.seed only, so fault
 * decisions are seed-stable and independent of the workload, cache,
 * and scheduler RNG streams.
 *
 * See docs/FAULTS.md for the model narrative and docs/METRICS.md for
 * the sim.fault.* counter definitions.
 */

#ifndef DTSIM_FAULT_FAULT_MODEL_HH
#define DTSIM_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "fault/fault_config.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace dtsim {

/**
 * Every fault and recovery action, counted once array-wide. Exported
 * as the sim.fault.* StatGroup (names match the fields verbatim).
 *
 * Ownership is split along timeline lines so sharded runs need no
 * synchronisation: media/retry/remap/stall/rebuild-job counters are
 * written by a disk's own timeline (each DiskFaults gets a private
 * instance), while kill/repair/degraded-routing counters are written
 * by host-side code (FaultModel::hostCounters()). The array-wide view
 * is the sum, see FaultModel::totals().
 */
struct FaultCounters
{
    std::uint64_t mediaErrors = 0;      ///< Failed media attempts.
    std::uint64_t retries = 0;          ///< Re-serviced attempts.
    Tick retryTicks = 0;                ///< Time spent re-servicing.
    std::uint64_t remapEvents = 0;      ///< Retry budgets exhausted.
    std::uint64_t remappedBlocks = 0;   ///< Blocks moved to spares.
    std::uint64_t remappedAccesses = 0; ///< Accesses paying the
                                        ///< permanent remap penalty.
    std::uint64_t stalls = 0;           ///< Dispatch stalls/timeouts.
    Tick stallTicks = 0;                ///< Time lost to stalls.
    std::uint64_t diskFailures = 0;     ///< Whole-disk kill events.
    std::uint64_t diskRepairs = 0;      ///< Repair events.
    std::uint64_t degradedReads = 0;    ///< Reads re-routed off a
                                        ///< dead replica.
    std::uint64_t degradedWrites = 0;   ///< Writes that reached only
                                        ///< one replica.
    std::uint64_t rebuildJobs = 0;      ///< Rebuild media jobs issued.
    std::uint64_t rebuildBlocks = 0;    ///< Blocks copied by rebuild.

    /** True when anything at all happened. */
    bool
    any() const
    {
        return mediaErrors || retries || remapEvents ||
               remappedAccesses || stalls || diskFailures ||
               diskRepairs || degradedReads || degradedWrites ||
               rebuildJobs;
    }

    /** Accumulate another set of counters into this one. */
    void
    add(const FaultCounters& o)
    {
        mediaErrors += o.mediaErrors;
        retries += o.retries;
        retryTicks += o.retryTicks;
        remapEvents += o.remapEvents;
        remappedBlocks += o.remappedBlocks;
        remappedAccesses += o.remappedAccesses;
        stalls += o.stalls;
        stallTicks += o.stallTicks;
        diskFailures += o.diskFailures;
        diskRepairs += o.diskRepairs;
        degradedReads += o.degradedReads;
        degradedWrites += o.degradedWrites;
        rebuildJobs += o.rebuildJobs;
        rebuildBlocks += o.rebuildBlocks;
    }
};

/** Health of one physical disk. */
enum class DiskHealth
{
    Alive,      ///< Serving I/O normally.
    Dead,       ///< Killed; no reads, writes are dropped (lost).
    Rebuilding, ///< Back online, absorbing writes + rebuild traffic.
};

/**
 * Per-disk fault state consulted by that disk's controller. Writes
 * the caller-provided FaultCounters; the FaultModel hands every disk
 * a private instance so the disk's own timeline can update them with
 * no cross-shard synchronisation.
 */
class DiskFaults
{
  public:
    DiskFaults(const FaultConfig& cfg, unsigned disk,
               FaultCounters& counters);

    /**
     * Would a media access over [start, start+count) fail right now?
     * True when the range overlaps a scripted (un-remapped) bad block
     * or the probabilistic error draw fires. Each call is one
     * attempt: call again to model a retry.
     */
    bool attemptFails(std::uint64_t start, std::uint64_t count);

    /**
     * Give up on the failing range: move every scripted bad block in
     * it to the spare region (for a purely probabilistic failure the
     * first block of the range is remapped as the culprit). Returns
     * the number of blocks remapped (>= 1).
     */
    std::uint64_t remapRange(std::uint64_t start,
                             std::uint64_t count);

    /** Does the range touch an already-remapped block? */
    bool touchesRemapped(std::uint64_t start,
                         std::uint64_t count) const;

    /** Permanent extra seek charged per access to remapped blocks. */
    Tick
    remapPenalty() const
    {
        return fromMillis(cfg_.remapPenaltyMs);
    }

    /** Retry budget before a failing block is remapped. */
    unsigned
    maxRetries() const
    {
        return cfg_.maxRetries;
    }

    /**
     * Delay (0 = none) to impose before dispatching the next media
     * job at `now`. Scripted stall windows delay to the window's
     * end; probabilistic timeouts return the current exponential
     * backoff and double it (bounded); a clean dispatch resets the
     * backoff. Counters are updated for every nonzero delay.
     */
    Tick dispatchDelay(Tick now);

    /** This disk's counters (disk-timeline context). */
    FaultCounters&
    counters()
    {
        return *counters_;
    }

  private:
    const FaultConfig& cfg_;
    FaultCounters* counters_;
    Rng rng_;
    std::set<std::uint64_t> bad_;      ///< Scripted, not yet remapped.
    std::set<std::uint64_t> remapped_; ///< Moved to the spare region.
    std::vector<StallWindow> windows_;
    Tick backoff_ = 0;                 ///< Current timeout backoff.
};

/**
 * Array-wide fault state: one DiskFaults per physical disk (each with
 * its own counters), the disk health map, and the host-side counters.
 */
class FaultModel
{
  public:
    FaultModel(const FaultConfig& cfg, unsigned disks);

    const FaultConfig&
    config() const
    {
        return cfg_;
    }

    DiskFaults&
    disk(unsigned d)
    {
        return *disks_[d];
    }

    DiskHealth
    health(unsigned d) const
    {
        return health_[d];
    }

    void
    setHealth(unsigned d, DiskHealth h)
    {
        health_[d] = h;
    }

    /**
     * Host-context counters: kill/repair events and degraded read/
     * write routing. Never touched by disk timelines.
     */
    FaultCounters&
    hostCounters()
    {
        return hostCounters_;
    }

    /** Counters private to disk `d` (written by its timeline only). */
    const FaultCounters&
    diskCounters(unsigned d) const
    {
        return *diskCounters_[d];
    }

    /**
     * Array-wide totals: hostCounters() plus every disk's private
     * counters. Coherent only from host context with the disk
     * timelines settled — a sync-tick front event or post-run.
     */
    FaultCounters totals() const;

  private:
    FaultConfig cfg_;
    FaultCounters hostCounters_;
    std::vector<std::unique_ptr<FaultCounters>> diskCounters_;
    std::vector<std::unique_ptr<DiskFaults>> disks_;
    std::vector<DiskHealth> health_;
};

} // namespace dtsim

#endif // DTSIM_FAULT_FAULT_MODEL_HH
