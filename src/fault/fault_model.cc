#include "fault/fault_model.hh"

#include "sim/logging.hh"

namespace dtsim {

namespace {

/**
 * Mix the fault seed with the disk id so every disk gets its own
 * stream while staying a pure function of fault.seed.
 */
std::uint64_t
diskSeed(std::uint64_t seed, unsigned disk)
{
    return seed + 0x9e3779b97f4a7c15ULL * (disk + 1ULL);
}

} // namespace

DiskFaults::DiskFaults(const FaultConfig& cfg, unsigned disk,
                       FaultCounters& counters)
    : cfg_(cfg), counters_(&counters),
      rng_(diskSeed(cfg.seed, disk))
{
    std::vector<BadBlockSpec> specs;
    std::string err;
    if (!fault::parseBadBlocks(cfg.badBlocks, specs, err))
        fatal("fault: %s", err.c_str());
    for (const BadBlockSpec& s : specs)
        if (s.disk == disk)
            bad_.insert(s.block);
    if (!fault::parseStallWindows(cfg.stallWindows, windows_, err))
        fatal("fault: %s", err.c_str());
}

bool
DiskFaults::attemptFails(std::uint64_t start, std::uint64_t count)
{
    auto it = bad_.lower_bound(start);
    if (it != bad_.end() && *it < start + count)
        return true;
    if (cfg_.mediaErrorRate > 0.0 &&
        rng_.chance(cfg_.mediaErrorRate))
        return true;
    return false;
}

std::uint64_t
DiskFaults::remapRange(std::uint64_t start, std::uint64_t count)
{
    std::uint64_t moved = 0;
    auto it = bad_.lower_bound(start);
    while (it != bad_.end() && *it < start + count) {
        remapped_.insert(*it);
        it = bad_.erase(it);
        ++moved;
    }
    if (moved == 0) {
        // Purely probabilistic failure: pin the blame on the first
        // block of the range so the penalty is reproducible.
        remapped_.insert(start);
        moved = 1;
    }
    return moved;
}

bool
DiskFaults::touchesRemapped(std::uint64_t start,
                            std::uint64_t count) const
{
    auto it = remapped_.lower_bound(start);
    return it != remapped_.end() && *it < start + count;
}

Tick
DiskFaults::dispatchDelay(Tick now)
{
    for (const StallWindow& w : windows_) {
        if (now >= w.start && now < w.start + w.duration) {
            const Tick delay = w.start + w.duration - now;
            ++counters_->stalls;
            counters_->stallTicks += delay;
            return delay;
        }
    }
    if (cfg_.timeoutRate > 0.0 && rng_.chance(cfg_.timeoutRate)) {
        if (backoff_ == 0)
            backoff_ = fromMicros(cfg_.backoffUs);
        const Tick delay = backoff_;
        const Tick cap = fromMicros(cfg_.backoffMaxUs);
        backoff_ = backoff_ * 2 > cap ? cap : backoff_ * 2;
        ++counters_->stalls;
        counters_->stallTicks += delay;
        return delay;
    }
    backoff_ = 0;
    return 0;
}

FaultModel::FaultModel(const FaultConfig& cfg, unsigned disks)
    : cfg_(cfg), health_(disks, DiskHealth::Alive)
{
    diskCounters_.reserve(disks);
    disks_.reserve(disks);
    for (unsigned d = 0; d < disks; ++d) {
        diskCounters_.push_back(std::make_unique<FaultCounters>());
        disks_.push_back(
            std::make_unique<DiskFaults>(cfg_, d, *diskCounters_[d]));
    }
}

FaultCounters
FaultModel::totals() const
{
    FaultCounters t = hostCounters_;
    for (const std::unique_ptr<FaultCounters>& c : diskCounters_)
        t.add(*c);
    return t;
}

} // namespace dtsim
