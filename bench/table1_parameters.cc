/**
 * @file
 * Table 1: the main simulation parameters and their default values,
 * printed from the live configuration (so the reproduction always
 * reports what it actually simulates), plus the derived quantities
 * the paper quotes (average seek, segment counts, bitmap size).
 */

#include <cstdio>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "core/system.hh"
#include "disk/geometry.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader("Table 1: main parameters and default values");

    SystemConfig cfg;
    const DiskParams& d = cfg.disk;
    const DiskGeometry geom(d);

    std::printf("Number of disks              %u\n", cfg.disks);
    std::printf("Disk size                    %.0f GB\n",
                d.capacityBytes / 1.0e9);
    std::printf("Average disk seek time       %.2f ms (model: "
                "alpha=%.4f beta=%.4f gamma=%.4f delta=%.5f "
                "theta=%u)\n",
                analytic::averageSeekMs(d), d.seekAlphaMs,
                d.seekBetaMs, d.seekGammaMs, d.seekDeltaMs,
                d.seekThetaCyls);
    std::printf("Average rotational latency   %.2f ms (%u rpm)\n",
                analytic::averageRotationMs(d), d.rpm);
    std::printf("Raw disk transfer rate       %.0f MB/s\n",
                d.xferRateBytesPerSec / 1.0e6);
    std::printf("Disk controller interface    Ultra160 (160 MB/s)\n");
    std::printf("Disk controller cache size   %llu MB "
                "(%llu KB usable)\n",
                static_cast<unsigned long long>(d.cacheBytes / kMiB),
                static_cast<unsigned long long>(
                    d.usableCacheBytes() / kKiB));
    std::printf("Disk block size              %u KB\n",
                d.blockSize / 1024);

    for (std::uint64_t seg_kb : {128, 256, 512}) {
        DiskParams p = d;
        p.segmentBytes = seg_kb * kKiB;
        std::printf("Segments at %3llu KB           %llu\n",
                    static_cast<unsigned long long>(seg_kb),
                    static_cast<unsigned long long>(p.numSegments()));
    }

    std::printf("Disk-resident bitmap         %llu KB "
                "(%.4f%% of disk space)\n",
                static_cast<unsigned long long>(
                    d.bitmapBytes() / 1024),
                100.0 * static_cast<double>(d.bitmapBytes()) /
                    static_cast<double>(d.capacityBytes));
    std::printf("Geometry                     %u cylinders, %u heads, "
                "%u sectors/track\n",
                geom.cylinders(), geom.heads(),
                geom.sectorsPerTrack());
    std::printf("Default striping unit        %llu KB\n",
                static_cast<unsigned long long>(
                    cfg.stripeUnitBytes / kKiB));
    return 0;
}
