/**
 * @file
 * Ablation: RAID-0 striping vs RAID-10 mirroring (Section 2.2 notes
 * reliable servers often need replication). Same 8 physical disks;
 * mirroring halves the capacity but serves each read from the
 * less-loaded replica and pays double writes. FOR's gains persist
 * under mirroring.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: RAID-0 vs RAID-10 (8 physical disks)");

    const std::vector<int> widths{12, 12, 12, 12};
    bench::printRow({"writes", "layout", "Segm(s)", "FOR(s)"},
                    widths);

    // One workload per (write_prob, layout) case, shared by the Segm
    // and FOR runs of that case; all eight runs go into one batch.
    const double write_probs[] = {0.0, 0.3};
    const bool layouts[] = {false, true};
    std::vector<SyntheticWorkload> workloads;
    std::vector<std::vector<LayoutBitmap>> bitmaps(4);
    std::vector<bench::SystemSpec> specs;
    workloads.reserve(4);
    for (const double wp : write_probs) {
        for (const bool mirrored : layouts) {
            SystemConfig base;
            base.streams = 128;
            base.workers = 64;
            base.stripeUnitBytes = 128 * kKiB;
            base.mirrored = mirrored;

            SyntheticParams sp;
            sp.numFiles = 200000;
            sp.fileSizeBytes = 16 * kKiB;
            sp.numRequests = 8000;
            sp.writeProb = wp;

            const unsigned logical_disks =
                mirrored ? base.disks / 2 : base.disks;
            const std::uint64_t capacity =
                logical_disks * base.disk.totalBlocks();

            workloads.push_back(makeSynthetic(sp, capacity));
            StripingMap striping(
                logical_disks,
                base.stripeUnitBytes / base.disk.blockSize,
                base.disk.totalBlocks());
            const std::size_t i = workloads.size() - 1;
            bitmaps[i] = workloads[i].image->buildBitmaps(striping);

            for (SystemKind sys :
                 {SystemKind::Segm, SystemKind::FOR}) {
                bench::SystemSpec spec;
                spec.kind = sys;
                spec.base = base;
                spec.trace = &workloads[i].trace;
                spec.bitmaps = &bitmaps[i];
                specs.push_back(std::move(spec));
            }
        }
    }
    const std::vector<RunResult> results = bench::runSystems(specs);

    std::size_t idx = 0;
    for (const double wp : write_probs) {
        for (const bool mirrored : layouts) {
            const RunResult& segm = results[idx++];
            const RunResult& forr = results[idx++];
            bench::printRow({bench::fmtPct(wp, 0),
                             mirrored ? "RAID-10" : "RAID-0",
                             bench::fmt(toSeconds(segm.ioTime)),
                             bench::fmt(toSeconds(forr.ioTime))},
                            widths);
        }
    }
    return 0;
}
