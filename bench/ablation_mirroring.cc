/**
 * @file
 * Ablation: RAID-0 striping vs RAID-10 mirroring (Section 2.2 notes
 * reliable servers often need replication). Same 8 physical disks;
 * mirroring halves the capacity but serves each read from the
 * less-loaded replica and pays double writes. FOR's gains persist
 * under mirroring.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

namespace {

RunResult
runCase(bool mirrored, SystemKind kind, double write_prob)
{
    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;
    base.mirrored = mirrored;

    SyntheticParams sp;
    sp.numFiles = 200000;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 8000;
    sp.writeProb = write_prob;

    const unsigned logical_disks =
        mirrored ? base.disks / 2 : base.disks;
    const std::uint64_t capacity =
        logical_disks * base.disk.totalBlocks();

    SyntheticWorkload w = makeSynthetic(sp, capacity);
    StripingMap striping(logical_disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    SystemConfig cfg = base;
    cfg.kind = kind;
    return runTrace(cfg, w.trace, &bitmaps);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: RAID-0 vs RAID-10 (8 physical disks)");

    const std::vector<int> widths{12, 12, 12, 12};
    bench::printRow({"writes", "layout", "Segm(s)", "FOR(s)"},
                    widths);

    for (const double wp : {0.0, 0.3}) {
        for (const bool mirrored : {false, true}) {
            const RunResult segm =
                runCase(mirrored, SystemKind::Segm, wp);
            const RunResult forr =
                runCase(mirrored, SystemKind::FOR, wp);
            bench::printRow({bench::fmtPct(wp, 0),
                             mirrored ? "RAID-10" : "RAID-0",
                             bench::fmt(toSeconds(segm.ioTime)),
                             bench::fmt(toSeconds(forr.ioTime))},
                            widths);
        }
    }
    return 0;
}
