/**
 * @file
 * Figure 8: Web server I/O time and HDC hit rate as a function of the
 * per-disk HDC memory size (16 KB striping unit).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace dtsim;
    bench::hdcSweep(
        WorkloadKind::Web, bench::workloadScale(), 16 * kKiB,
        "Figure 8: Web server - I/O time vs HDC cache size");
    return 0;
}
