/**
 * @file
 * Ablation: media request scheduler (FCFS vs LOOK vs C-LOOK vs SSTF).
 * The paper's controllers use LOOK (Section 6.1); this bench shows
 * the FOR gains are orthogonal to the scheduling policy.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader("Ablation: media request scheduler");

    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 10000;

    SystemConfig base;
    base.streams = 256;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    SyntheticWorkload w =
        makeSynthetic(sp, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{12, 12, 12, 12};
    bench::printRow({"scheduler", "Segm(s)", "FOR(s)", "FOR gain"},
                    widths);

    const SchedulerKind kinds[] = {SchedulerKind::FCFS,
                                   SchedulerKind::LOOK,
                                   SchedulerKind::CLOOK,
                                   SchedulerKind::SSTF};
    std::vector<bench::SystemSpec> specs;
    for (SchedulerKind k : kinds) {
        for (SystemKind sys : {SystemKind::Segm, SystemKind::FOR}) {
            bench::SystemSpec spec;
            spec.kind = sys;
            spec.base = base;
            spec.base.scheduler = k;
            spec.trace = &w.trace;
            spec.bitmaps = &bitmaps;
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<RunResult> results = bench::runSystems(specs);
    for (std::size_t i = 0; i < std::size(kinds); ++i) {
        const RunResult& segm = results[i * 2];
        const RunResult& forr = results[i * 2 + 1];
        bench::printRow(
            {schedulerKindName(kinds[i]),
             bench::fmt(toSeconds(segm.ioTime)),
             bench::fmt(toSeconds(forr.ioTime)),
             bench::fmtPct(1.0 - static_cast<double>(forr.ioTime) /
                                     static_cast<double>(segm.ioTime))},
            widths);
    }
    return 0;
}
