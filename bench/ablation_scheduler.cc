/**
 * @file
 * Ablation: media request scheduler (FCFS vs LOOK vs C-LOOK vs SSTF).
 * The paper's controllers use LOOK (Section 6.1); this bench shows
 * the FOR gains are orthogonal to the scheduling policy.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader("Ablation: media request scheduler");

    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 10000;

    SystemConfig base;
    base.streams = 256;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    SyntheticWorkload w =
        makeSynthetic(sp, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{12, 12, 12, 12};
    bench::printRow({"scheduler", "Segm(s)", "FOR(s)", "FOR gain"},
                    widths);

    const SchedulerKind kinds[] = {SchedulerKind::FCFS,
                                   SchedulerKind::LOOK,
                                   SchedulerKind::CLOOK,
                                   SchedulerKind::SSTF};
    for (SchedulerKind k : kinds) {
        SystemConfig cfg = base;
        cfg.scheduler = k;
        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, cfg, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, cfg, w.trace, bitmaps);
        bench::printRow(
            {schedulerKindName(k), bench::fmt(toSeconds(segm.ioTime)),
             bench::fmt(toSeconds(forr.ioTime)),
             bench::fmtPct(1.0 - static_cast<double>(forr.ioTime) /
                                     static_cast<double>(segm.ioTime))},
            widths);
    }
    return 0;
}
