/**
 * @file
 * Micro-benchmarks (google-benchmark) of the simulator's hot paths:
 * event queue throughput, cache operations, Zipf sampling, and the
 * seek/mechanism model.
 */

#include <benchmark/benchmark.h>

#include "cache/block_cache.hh"
#include "cache/segment_cache.hh"
#include "disk/mechanism.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace dtsim;

namespace {

void
BM_EventQueueScheduleFire(benchmark::State& state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAfter(static_cast<Tick>(i), [&sum] { ++sum; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_ZipfSample(benchmark::State& state)
{
    ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.8);
    Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000)->Arg(1000000);

void
BM_BlockCacheInsertLookup(benchmark::State& state)
{
    BlockCache cache(1024, BlockPolicy::MRU);
    std::uint64_t pos = 0;
    for (auto _ : state) {
        cache.insertRun(pos, 8);
        benchmark::DoNotOptimize(cache.lookupPrefix(pos, 8));
        pos += 8;
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_BlockCacheInsertLookup);

void
BM_SegmentCacheInsertLookup(benchmark::State& state)
{
    SegmentCache cache(27, 32, SegmentPolicy::LRU);
    std::uint64_t pos = 0;
    for (auto _ : state) {
        cache.insertRun(pos, 32);
        benchmark::DoNotOptimize(cache.lookupPrefix(pos, 4));
        pos += 1024;
    }
}
BENCHMARK(BM_SegmentCacheInsertLookup);

void
BM_MechanismService(benchmark::State& state)
{
    DiskParams params;
    DiskGeometry geom(params);
    DiskMechanism mech(params, geom);
    Rng rng(11);
    Tick now = 0;
    for (auto _ : state) {
        MediaAccess acc;
        acc.startSector =
            rng.below(geom.totalSectors() - 256);
        acc.sectorCount = 256;
        const ServiceTiming t = mech.service(acc, now);
        now += t.total();
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_MechanismService);

} // namespace
