/**
 * @file
 * Ablation: request coalescing probability. Section 6.2 observes
 * that No-RA improves with coalescing but does not beat FOR even at
 * a perfect 100% coalescing probability; this bench checks that
 * claim.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: coalescing probability (16 KB files)");

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    const std::vector<int> widths{12, 10, 10, 10};
    bench::printRow({"coalesce", "Segm(s)", "No-RA", "FOR"}, widths);

    // Each probability needs its own workload and bitmaps; build them
    // all first so every run goes into one parallel batch.
    const double probs[] = {0.0, 0.25, 0.5, 0.75, 0.87, 1.0};
    const std::size_t n = std::size(probs);
    std::vector<SyntheticWorkload> workloads;
    std::vector<std::vector<LayoutBitmap>> bitmaps(n);
    workloads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        SyntheticParams sp;
        sp.fileSizeBytes = 16 * kKiB;
        sp.numRequests = 10000;
        sp.coalesceProb = probs[i];
        workloads.push_back(makeSynthetic(
            sp, base.disks * base.disk.totalBlocks()));

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        bitmaps[i] = workloads[i].image->buildBitmaps(striping);
    }

    std::vector<bench::SystemSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
        for (SystemKind sys : {SystemKind::Segm, SystemKind::NoRA,
                               SystemKind::FOR}) {
            bench::SystemSpec spec;
            spec.kind = sys;
            spec.base = base;
            spec.trace = &workloads[i].trace;
            spec.bitmaps = &bitmaps[i];
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<RunResult> results = bench::runSystems(specs);

    for (std::size_t i = 0; i < n; ++i) {
        const RunResult& segm = results[i * 3];
        const RunResult& nora = results[i * 3 + 1];
        const RunResult& forr = results[i * 3 + 2];
        const double t0 = static_cast<double>(segm.ioTime);
        bench::printRow({bench::fmt(probs[i], 2),
                         bench::fmt(toSeconds(segm.ioTime)),
                         bench::fmt(nora.ioTime / t0),
                         bench::fmt(forr.ioTime / t0)},
                        widths);
    }
    return 0;
}
