/**
 * @file
 * Ablation: request coalescing probability. Section 6.2 observes
 * that No-RA improves with coalescing but does not beat FOR even at
 * a perfect 100% coalescing probability; this bench checks that
 * claim.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: coalescing probability (16 KB files)");

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    const std::vector<int> widths{12, 10, 10, 10};
    bench::printRow({"coalesce", "Segm(s)", "No-RA", "FOR"}, widths);

    const double probs[] = {0.0, 0.25, 0.5, 0.75, 0.87, 1.0};
    for (double p : probs) {
        SyntheticParams sp;
        sp.fileSizeBytes = 16 * kKiB;
        sp.numRequests = 10000;
        sp.coalesceProb = p;
        SyntheticWorkload w = makeSynthetic(
            sp, base.disks * base.disk.totalBlocks());

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, base, w.trace, bitmaps);
        const RunResult nora = bench::runSystem(
            SystemKind::NoRA, 0, base, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, base, w.trace, bitmaps);

        const double t0 = static_cast<double>(segm.ioTime);
        bench::printRow({bench::fmt(p, 2),
                         bench::fmt(toSeconds(segm.ioTime)),
                         bench::fmt(nora.ioTime / t0),
                         bench::fmt(forr.ioTime / t0)},
                        widths);
    }
    return 0;
}
