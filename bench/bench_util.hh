/**
 * @file
 * Shared helpers for the figure/table reproduction benches: standard
 * workload scales, aligned table printing, and the Segm baseline
 * normalization the paper uses.
 *
 * The figure sweeps (stripingSweep / hdcSweep) are data-driven: they
 * build a config-layer SweepSpec (the same grids ship as .conf files
 * under examples/sweeps/ for dtsim_cli --sweep) and execute it through
 * the core sweep driver, so a figure bench and the equivalent config
 * file produce identical numbers.
 */

#ifndef DTSIM_BENCH_BENCH_UTIL_HH
#define DTSIM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "config/sweep_spec.hh"
#include "core/runner.hh"
#include "core/sweep.hh"
#include "core/sweep_driver.hh"
#include "hdc/hdc_planner.hh"
#include "workload/server_models.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace bench {

/**
 * Request-count scale for the real-workload models, overridable with
 * the DTSIM_BENCH_SCALE environment variable (checked parse; junk is
 * fatal). The default keeps the full bench suite within minutes;
 * EXPERIMENTS.md records the value used.
 */
double workloadScale();

/** Print a header line like "=== Figure 7: ... ===". */
void printHeader(const std::string& title);

/** Print one aligned row of a results table. */
void printRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);

/** Format helpers. */
std::string fmt(double v, int precision = 3);
std::string fmtPct(double v, int precision = 1);

/**
 * Run one system variant over a trace, wiring bitmaps and the HDC pin
 * plan automatically.
 */
RunResult runSystem(SystemKind kind, std::uint64_t hdc_bytes,
                    const SystemConfig& base, const Trace& trace,
                    const std::vector<LayoutBitmap>& bitmaps);

/**
 * One system variant in a runSystems() batch: `base` with `kind` and
 * `hdcBytes` applied on top, run over `trace`/`bitmaps` (both must
 * outlive the call).
 */
struct SystemSpec
{
    SystemKind kind = SystemKind::Segm;
    std::uint64_t hdcBytes = 0;
    SystemConfig base;
    const Trace* trace = nullptr;
    const std::vector<LayoutBitmap>* bitmaps = nullptr;

    /**
     * Observability options forwarded to the run (off by default).
     * Give each spec its own output paths; see core/sweep.hh for the
     * thread-safety expectations.
     */
    RunOptions opts;
};

/**
 * Run a batch of system variants as replay Experiments
 * (core/experiment.hh) through the parallel sweep runner, deriving
 * the Pinned-policy HDC pin plan per spec like runSystem(). Results
 * come back in spec order and are bit-identical to calling
 * runSystem() sequentially; thread count follows DTSIM_JOBS.
 */
std::vector<RunResult> runSystems(const std::vector<SystemSpec>& specs);

/**
 * The Figure 7/9/11 grid for one server workload: striping unit
 * {4..256} KB x {Segm, FOR} x HDC {0, 2 MiB}. examples/sweeps/
 * ships the same grids as .conf files.
 */
SweepSpec stripingSweepSpec(WorkloadKind workload, double scale);

/** The Figure 8/10/12 grid: HDC size {0..3072} KB x {Segm, FOR}. */
SweepSpec hdcSweepSpec(WorkloadKind workload, double scale,
                       std::uint64_t stripe_unit_bytes);

/**
 * A striping-unit sweep over one server workload: reproduces the
 * Figure 7/9/11 shape (I/O time vs unit size for Segm, Segm+HDC,
 * FOR, FOR+HDC).
 */
void stripingSweep(WorkloadKind workload, double scale,
                   const std::string& figure_title);

/**
 * An HDC-size sweep over one server workload at a fixed striping
 * unit: reproduces the Figure 8/10/12 shape. FOR points whose HDC +
 * bitmap budget exceeds the controller cache come back infeasible and
 * print "-" (the paper's FOR+HDC curves stop early too).
 */
void hdcSweep(WorkloadKind workload, double scale,
              std::uint64_t stripe_unit_bytes,
              const std::string& figure_title);

} // namespace bench
} // namespace dtsim

#endif // DTSIM_BENCH_BENCH_UTIL_HH
