/**
 * @file
 * Figure 9: proxy server I/O time as a function of the striping unit
 * size (Segm / Segm+HDC / FOR / FOR+HDC, 2 MB HDC caches).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace dtsim;
    bench::stripingSweep(
        WorkloadKind::Proxy, bench::workloadScale(),
        "Figure 9: Proxy server - I/O time vs striping unit");
    return 0;
}
