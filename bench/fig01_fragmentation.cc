/**
 * @file
 * Figure 1: average sequential read (blocks) as a function of the
 * layout fragmentation degree, for 2/4/8/16/32-block files.
 *
 * Measures the allocator's actual mean physical run length and prints
 * the paper's analytic model (n / (1 + (n-1)*frag)) alongside.
 */

#include <cstdio>
#include <vector>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "fs/file_layout.hh"

using namespace dtsim;

namespace {

double
measuredRun(std::uint64_t file_blocks, double frag)
{
    const std::uint64_t num_files = 20000;
    std::vector<std::uint64_t> sizes(num_files, file_blocks * 4096);

    LayoutParams lp;
    lp.fragmentation = frag;
    lp.seed = 99;
    // A single-disk identity striping isolates pure layout effects.
    const std::uint64_t capacity = 64ULL * 1024 * 1024;  // blocks
    FileSystemImage image(sizes, lp, capacity);
    StripingMap striping(1, capacity, capacity);
    return image.averageSequentialRun(striping);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 1: average sequential read vs fragmentation");

    const std::uint64_t file_blocks[] = {2, 4, 8, 16, 32};
    const std::vector<int> widths{10, 14, 14, 14, 14, 14};

    std::printf("measured (simulated allocator):\n");
    bench::printRow({"frag(%)", "2 blks", "4 blks", "8 blks",
                     "16 blks", "32 blks"},
                    widths);
    for (int frag_pct = 0; frag_pct <= 20; frag_pct += 2) {
        std::vector<std::string> row{std::to_string(frag_pct)};
        for (std::uint64_t n : file_blocks)
            row.push_back(
                bench::fmt(measuredRun(n, frag_pct / 100.0), 2));
        bench::printRow(row, widths);
    }

    std::printf("\nanalytic model n/(1+(n-1)p):\n");
    bench::printRow({"frag(%)", "2 blks", "4 blks", "8 blks",
                     "16 blks", "32 blks"},
                    widths);
    for (int frag_pct = 0; frag_pct <= 20; frag_pct += 2) {
        std::vector<std::string> row{std::to_string(frag_pct)};
        for (std::uint64_t n : file_blocks)
            row.push_back(bench::fmt(
                analytic::averageSequentialRun(n, frag_pct / 100.0),
                2));
        bench::printRow(row, widths);
    }
    return 0;
}
