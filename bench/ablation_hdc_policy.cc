/**
 * @file
 * Ablation: host policies for the HDC region (Section 5 proposes
 * both). The paper's evaluated policy pins the most-missed blocks up
 * front with perfect knowledge; the alternative it sketches is an
 * array-wide victim cache for the host buffer cache. Compared here
 * on the Web server workload.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: HDC host policy (Web server, unit 16 KB)");

    ServerModelParams params =
        webServerParams(bench::workloadScale());

    SystemConfig base;
    base.streams = params.streams;
    base.stripeUnitBytes = 16 * kKiB;

    ServerWorkload w = makeServerWorkload(
        params, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{26, 12, 12, 12};
    bench::printRow({"policy", "time(s)", "hdc-hit", "pins"},
                    widths);

    const std::uint64_t hdc = 2 * kMiB;

    const RunResult none =
        bench::runSystem(SystemKind::Segm, 0, base, w.trace, bitmaps);
    bench::printRow({"no HDC", bench::fmt(toSeconds(none.ioTime)),
                     "-", "-"},
                    widths);

    const RunResult top = bench::runSystem(SystemKind::Segm, hdc,
                                           base, w.trace, bitmaps);
    bench::printRow({"top-miss pinning (paper)",
                     bench::fmt(toSeconds(top.ioTime)),
                     bench::fmtPct(top.hdcHitRate), "-"},
                    widths);

    SystemConfig victim_cfg = base;
    victim_cfg.kind = SystemKind::Segm;
    victim_cfg.hdcBytesPerDisk = hdc;
    victim_cfg.hdcPolicy = HdcPolicy::VictimCache;
    victim_cfg.victimGhostBlocks = params.bufferCacheBlocks;
    const RunResult vic = runTrace(victim_cfg, w.trace, &bitmaps);
    bench::printRow({"victim cache",
                     bench::fmt(toSeconds(vic.ioTime)),
                     bench::fmtPct(vic.hdcHitRate),
                     std::to_string(vic.victimPins)},
                    widths);

    std::printf("\nnote: the victim policy mirrors the host cache "
                "from the disk-access stream only,\nso its victim "
                "choices are much weaker than the paper's "
                "perfect-knowledge pinning --\nconsistent with the "
                "paper evaluating the pinning policy.\n");
    return 0;
}
