/**
 * @file
 * Ablation: host policies for the HDC region (Section 5 proposes
 * both). The paper's evaluated policy pins the most-missed blocks up
 * front with perfect knowledge; the alternative it sketches is an
 * array-wide victim cache for the host buffer cache. Compared here
 * on the Web server workload.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: HDC host policy (Web server, unit 16 KB)");

    ServerModelParams params =
        webServerParams(bench::workloadScale());

    SystemConfig base;
    base.streams = params.streams;
    base.stripeUnitBytes = 16 * kKiB;

    ServerWorkload w = makeServerWorkload(
        params, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{26, 12, 12, 12};
    bench::printRow({"policy", "time(s)", "hdc-hit", "pins"},
                    widths);

    const std::uint64_t hdc = 2 * kMiB;

    // All three policies run as one parallel batch.
    std::vector<bench::SystemSpec> specs(3);
    specs[0].base = base;
    specs[1].base = base;
    specs[1].hdcBytes = hdc;
    specs[2].base = base;
    specs[2].base.hdcPolicy = HdcPolicy::VictimCache;
    specs[2].base.victimGhostBlocks = params.bufferCacheBlocks;
    specs[2].hdcBytes = hdc;
    for (bench::SystemSpec& spec : specs) {
        spec.kind = SystemKind::Segm;
        spec.trace = &w.trace;
        spec.bitmaps = &bitmaps;
    }
    const std::vector<RunResult> results = bench::runSystems(specs);

    const RunResult& none = results[0];
    bench::printRow({"no HDC", bench::fmt(toSeconds(none.ioTime)),
                     "-", "-"},
                    widths);

    const RunResult& top = results[1];
    bench::printRow({"top-miss pinning (paper)",
                     bench::fmt(toSeconds(top.ioTime)),
                     bench::fmtPct(top.hdcHitRate), "-"},
                    widths);

    const RunResult& vic = results[2];
    bench::printRow({"victim cache",
                     bench::fmt(toSeconds(vic.ioTime)),
                     bench::fmtPct(vic.hdcHitRate),
                     std::to_string(vic.victimPins)},
                    widths);

    std::printf("\nnote: the victim policy mirrors the host cache "
                "from the disk-access stream only,\nso its victim "
                "choices are much weaker than the paper's "
                "perfect-knowledge pinning --\nconsistent with the "
                "paper evaluating the pinning policy.\n");
    return 0;
}
