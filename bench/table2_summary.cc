/**
 * @file
 * Table 2: disk throughput improvements of FOR, Segm+HDC, and
 * FOR+HDC over the conventional controller (Segm), for each server at
 * its best striping unit size (Web 16 KB, proxy 64 KB, file 128 KB).
 *
 * Improvement is reported as the paper does: the reduction in total
 * I/O time, which translates directly into a throughput increase for
 * these I/O-bound servers.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

namespace {

void
summarize(const ServerModelParams& params,
          std::uint64_t stripe_unit_bytes)
{
    SystemConfig base;
    base.streams = params.streams;
    base.stripeUnitBytes = stripe_unit_bytes;

    ServerWorkload w = makeServerWorkload(
        params, base.disks * base.disk.totalBlocks());

    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::uint64_t hdc = 2 * kMiB;
    const RunResult segm = bench::runSystem(SystemKind::Segm, 0, base,
                                            w.trace, bitmaps);
    const RunResult forr = bench::runSystem(SystemKind::FOR, 0, base,
                                            w.trace, bitmaps);
    const RunResult segm_hdc = bench::runSystem(
        SystemKind::Segm, hdc, base, w.trace, bitmaps);
    const RunResult for_hdc = bench::runSystem(
        SystemKind::FOR, hdc, base, w.trace, bitmaps);

    auto improvement = [&](const RunResult& r) {
        return 1.0 - static_cast<double>(r.ioTime) /
                         static_cast<double>(segm.ioTime);
    };

    bench::printRow(
        {params.name,
         std::to_string(stripe_unit_bytes / kKiB) + " KB",
         bench::fmtPct(improvement(forr), 0),
         bench::fmtPct(improvement(segm_hdc), 0),
         bench::fmtPct(improvement(for_hdc), 0),
         bench::fmtPct(segm_hdc.hdcHitRate, 1),
         bench::fmtPct(segm.cacheHitRate, 1),
         bench::fmtPct(forr.cacheHitRate, 1)},
        {10, 12, 10, 12, 10, 10, 10, 10});
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 2: disk throughput improvements at best striping unit");
    std::printf("(paper: Web 34%%/24%%/47%%, proxy 17%%/18%%/33%%, "
                "file 12%%/10%%/21%%)\n\n");

    bench::printRow({"server", "unit", "FOR", "Segm+HDC", "FOR+HDC",
                     "hdcHit", "hitSegm", "hitFOR"},
                    {10, 12, 10, 12, 10, 10, 10, 10});

    const double scale = bench::workloadScale();
    summarize(webServerParams(scale), 16 * kKiB);
    summarize(proxyServerParams(scale), 64 * kKiB);
    summarize(fileServerParams(scale), 128 * kKiB);
    return 0;
}
