/**
 * @file
 * Ablation: explicit grouping vs FOR (Section 3's related-work
 * comparison). Ganger & Kaashoek's explicit grouping lays the small
 * files of a directory out contiguously so blind read-ahead crossing
 * a file boundary fetches useful data — but it requires finding and
 * maintaining a meaningful grouping. FOR needs no grouping.
 *
 * Workload: 8 KB files in 8-file directories; 60% of the requests
 * read a whole directory, the rest one file.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: explicit grouping vs FOR (8 KB files, 8-file "
        "directories)");

    const std::vector<int> widths{24, 12, 12, 12};
    bench::printRow({"layout", "dir-reads", "Segm(s)", "FOR(s)"},
                    widths);

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    // One workload per (dir_prob, layout) case, shared by the Segm
    // and FOR runs of that case; all eight runs go into one batch.
    const double probs[] = {0.0, 0.6};
    const bool layouts[] = {false, true};
    std::vector<SyntheticWorkload> workloads;
    std::vector<std::vector<LayoutBitmap>> bitmaps(4);
    std::vector<bench::SystemSpec> specs;
    workloads.reserve(4);
    for (const double p : probs) {
        for (const bool grouped : layouts) {
            SyntheticParams sp;
            sp.numFiles = 200000;
            sp.fileSizeBytes = 8 * kKiB;
            sp.numRequests = 6000;
            sp.dirFiles = 8;
            sp.dirAccessProb = p;
            sp.groupedLayout = grouped;

            workloads.push_back(makeSynthetic(
                sp, base.disks * base.disk.totalBlocks()));
            StripingMap striping(
                base.disks,
                base.stripeUnitBytes / base.disk.blockSize,
                base.disk.totalBlocks());
            const std::size_t i = workloads.size() - 1;
            bitmaps[i] = workloads[i].image->buildBitmaps(striping);

            for (SystemKind sys :
                 {SystemKind::Segm, SystemKind::FOR}) {
                bench::SystemSpec spec;
                spec.kind = sys;
                spec.base = base;
                spec.trace = &workloads[i].trace;
                spec.bitmaps = &bitmaps[i];
                specs.push_back(std::move(spec));
            }
        }
    }
    const std::vector<RunResult> results = bench::runSystems(specs);

    std::size_t idx = 0;
    for (const double p : probs) {
        for (const bool grouped : layouts) {
            const RunResult& segm = results[idx++];
            const RunResult& forr = results[idx++];
            bench::printRow({grouped ? "grouped (explicit)"
                                     : "scattered",
                             bench::fmtPct(p, 0),
                             bench::fmt(toSeconds(segm.ioTime)),
                             bench::fmt(toSeconds(forr.ioTime))},
                            widths);
        }
    }
    std::printf("\nexpect: grouping rescues blind read-ahead only "
                "when directory reads dominate\nand the grouping "
                "matches the access pattern; FOR needs neither.\n");
    return 0;
}
