/**
 * @file
 * Ablation: explicit grouping vs FOR (Section 3's related-work
 * comparison). Ganger & Kaashoek's explicit grouping lays the small
 * files of a directory out contiguously so blind read-ahead crossing
 * a file boundary fetches useful data — but it requires finding and
 * maintaining a meaningful grouping. FOR needs no grouping.
 *
 * Workload: 8 KB files in 8-file directories; 60% of the requests
 * read a whole directory, the rest one file.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

namespace {

RunResult
runCase(bool grouped, SystemKind kind, double dir_prob)
{
    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    SyntheticParams sp;
    sp.numFiles = 200000;
    sp.fileSizeBytes = 8 * kKiB;
    sp.numRequests = 6000;
    sp.dirFiles = 8;
    sp.dirAccessProb = dir_prob;
    sp.groupedLayout = grouped;

    SyntheticWorkload w =
        makeSynthetic(sp, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);
    return bench::runSystem(kind, 0, base, w.trace, bitmaps);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: explicit grouping vs FOR (8 KB files, 8-file "
        "directories)");

    const std::vector<int> widths{24, 12, 12, 12};
    bench::printRow({"layout", "dir-reads", "Segm(s)", "FOR(s)"},
                    widths);

    for (const double p : {0.0, 0.6}) {
        const RunResult seg_scatter =
            runCase(false, SystemKind::Segm, p);
        const RunResult for_scatter =
            runCase(false, SystemKind::FOR, p);
        bench::printRow({"scattered",
                         bench::fmtPct(p, 0),
                         bench::fmt(toSeconds(seg_scatter.ioTime)),
                         bench::fmt(toSeconds(for_scatter.ioTime))},
                        widths);
        const RunResult seg_group =
            runCase(true, SystemKind::Segm, p);
        const RunResult for_group =
            runCase(true, SystemKind::FOR, p);
        bench::printRow({"grouped (explicit)",
                         bench::fmtPct(p, 0),
                         bench::fmt(toSeconds(seg_group.ioTime)),
                         bench::fmt(toSeconds(for_group.ioTime))},
                        widths);
    }
    std::printf("\nexpect: grouping rescues blind read-ahead only "
                "when directory reads dominate\nand the grouping "
                "matches the access pattern; FOR needs neither.\n");
    return 0;
}
