/**
 * @file
 * Tracked end-to-end model throughput benchmark. Where
 * kernel_throughput tracks the event kernel in isolation, this bench
 * measures the full simulation stack the way experiments actually run
 * it:
 *
 *  1. replay throughput (simulated requests/sec and wall-clock) of the
 *     Web, Proxy, and File server workloads on the paper's headline
 *     FOR + 2 MiB HDC system, with workload generation excluded so the
 *     number isolates the model hot paths (caches, scheduler, HDC
 *     store, mechanism), and
 *  2. cold end-to-end wall-clock of the full fig07 web striping sweep
 *     (workload build + bitmaps + pin plans + all 32 grid points),
 *     which is the unit of work a figure reproduction costs.
 *
 * Results go to BENCH_model.json in the working directory (override
 * with DTSIM_BENCH_OUT). The *_seed fields are the numbers this bench
 * produced at the default scale immediately before the slab/flat-table
 * model optimization landed, so the tracked JSON carries its own
 * baseline; they are compared (and speedups emitted) only when the
 * bench runs at that reference scale. EXPERIMENTS.md documents every
 * field and how to reproduce the numbers.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/sweep.hh"
#include "core/sweep_driver.hh"
#include "sim/logging.hh"

using namespace dtsim;

namespace {

/** The scale the embedded seed baselines were recorded at. */
constexpr double kSeedScale = 0.2;

/**
 * Repeats per measurement (min taken): single-shot wall clock on a
 * shared box is noisy; the minimum over a few runs is the standard
 * noise-robust estimator for CPU-bound work. Override with
 * DTSIM_BENCH_REPEATS.
 */
unsigned
benchRepeats()
{
    if (const char* env = std::getenv("DTSIM_BENCH_REPEATS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return 3;
}

/**
 * Seed baselines: wall-clock seconds at kSeedScale on the commit
 * immediately before the model hot-path optimization landed, measured
 * with this same harness built in a worktree of that commit
 * (DTSIM_JOBS=1, Release). Seed and optimized binaries ran
 * interleaved on the same machine and each value is the minimum over
 * the interleaved rounds, so both sides see the same noise floor.
 */
struct SeedBaseline
{
    const char* workload;
    double replayWallS;
};

constexpr SeedBaseline kSeedReplay[] = {
    {"web", 0.161},
    {"proxy", 0.108},
    {"file", 1.943},
};

constexpr double kSeedFig07WallS = 9.488;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One timed replay of workload `kind` on FOR + 2 MiB HDC. */
struct ReplayResult
{
    std::uint64_t requests = 0;
    double wallS = 0.0;
};

ReplayResult
measureReplay(WorkloadKind kind, double scale)
{
    SweepSpec spec;
    spec.base.workload = kind;
    spec.base.scale = scale;
    spec.base.system.kind = SystemKind::FOR;
    spec.base.system.hdcBytesPerDisk = 2 * kMiB;

    std::string err;
    std::vector<SweepPoint> points = expandSweep(spec, err);
    if (points.size() != 1)
        fatal("replay expansion failed: %s", err.c_str());

    // Warm the cache so workload generation, bitmap construction, and
    // the pin plan stay outside the timed region: this row isolates
    // replay (the model hot paths), not trace synthesis.
    SweepCache cache;
    cache.workload(points[0].cfg);
    cache.bitmaps(points[0].cfg);
    cache.pins(points[0].cfg);

    ReplayResult r;
    for (unsigned rep = 0; rep < benchRepeats(); ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const std::vector<RunResult> results =
            runSweepPoints(points, cache, 1);
        const double s = secondsSince(start);
        if (rep == 0 || s < r.wallS)
            r.wallS = s;
        r.requests = results[0].requests;
    }
    return r;
}

/**
 * Cold end-to-end fig07 web sweep: build everything, run the grid.
 * Measures the tracing-off grid and, when `traced_s` is non-null,
 * the same grid with a trace.sample=0.01 binary trace per point (one
 * file per point, removed afterwards) — the always-on configuration
 * production runs pay for. The two variants run back-to-back within
 * each repeat, and `traced_over` reports the overhead as the minimum
 * of the per-repeat paired ratios: each ratio compares two runs that
 * shared the same host-noise environment, so slow drift on a shared
 * box cancels instead of being charged to (or credited against)
 * tracing. `traced_s` still reports the plain minimum wall clock.
 */
double
measureFig07Sweep(double scale, unsigned jobs, std::size_t* n_points,
                  double* traced_s = nullptr,
                  double* traced_over = nullptr, double sample = 0.01)
{
    const SweepSpec spec =
        bench::stripingSweepSpec(WorkloadKind::Web, scale);
    std::string err;
    std::vector<SweepPoint> points = expandSweep(spec, err);
    if (points.empty())
        fatal("fig07 expansion failed: %s", err.c_str());
    *n_points = points.size();

    std::vector<SweepPoint> traced_points;
    std::vector<std::string> trace_paths;
    if (traced_s) {
        traced_points = points;
        for (std::size_t i = 0; i < traced_points.size(); ++i) {
            trace_paths.push_back("bench_fig07_trace_p" +
                                  std::to_string(i) + ".bin");
            traced_points[i].cfg.output.trace = trace_paths.back();
            traced_points[i].cfg.output.traceCfg.sample = sample;
        }
    }

    double best = 0.0;
    double best_traced = 0.0;
    double best_ratio = 0.0;
    for (unsigned rep = 0; rep < benchRepeats(); ++rep) {
        double plain_s = 0.0;
        {
            const auto start = std::chrono::steady_clock::now();
            SweepCache cache;  // fresh: build work stays timed
            runSweepPoints(points, cache, jobs);
            plain_s = secondsSince(start);
            if (rep == 0 || plain_s < best)
                best = plain_s;
        }
        if (traced_s) {
            const auto start = std::chrono::steady_clock::now();
            SweepCache cache;
            runSweepPoints(traced_points, cache, jobs);
            const double s = secondsSince(start);
            if (rep == 0 || s < best_traced)
                best_traced = s;
            const double ratio = s / plain_s;
            if (rep == 0 || ratio < best_ratio)
                best_ratio = ratio;
        }
    }
    for (const std::string& p : trace_paths)
        std::remove(p.c_str());
    if (traced_s)
        *traced_s = best_traced;
    if (traced_over)
        *traced_over = (best_ratio - 1.0) * 100.0;
    return best;
}

} // namespace

int
main()
{
    bench::printHeader("Model throughput (end-to-end simulation)");

    const double scale = bench::workloadScale();
    const unsigned jobs = sweepJobs();
    const unsigned repeats = benchRepeats();
    const bool at_seed_scale = scale == kSeedScale;
    std::printf("min of %u repeat(s) per measurement\n", repeats);

    // --- 1. Replay throughput per server workload. ---
    const WorkloadKind kinds[] = {WorkloadKind::Web, WorkloadKind::Proxy,
                                  WorkloadKind::File};
    std::vector<ReplayResult> replays;
    for (std::size_t i = 0; i < 3; ++i) {
        const ReplayResult r = measureReplay(kinds[i], scale);
        replays.push_back(r);
        std::printf("%-6s FOR+HDC replay: %8llu requests  %7.3f s  "
                    "%10.0f req/s\n",
                    kSeedReplay[i].workload,
                    static_cast<unsigned long long>(r.requests),
                    r.wallS,
                    static_cast<double>(r.requests) / r.wallS);
    }

    // --- 2 & 3. Cold end-to-end fig07 web sweep, tracing off and
    // with a sampled trace (trace.sample=0.01, the "leave it on"
    // configuration docs/OBSERVABILITY.md recommends; the acceptance
    // bar for the pipeline is <2% overhead on this sweep). ---
    std::size_t n_points = 0;
    double fig07_traced_s = 0.0;
    double overhead_pct = 0.0;
    const double fig07_s = measureFig07Sweep(
        scale, jobs, &n_points, &fig07_traced_s, &overhead_pct);
    std::printf("fig07 web sweep: %zu points  %u job(s)  %.3f s\n",
                n_points, jobs, fig07_s);
    if (at_seed_scale && kSeedFig07WallS > 0.0)
        std::printf("fig07 speedup vs seed: %.2fx\n",
                    kSeedFig07WallS / fig07_s);
    std::printf("fig07 web sweep, trace.sample=0.01: %.3f s "
                "(overhead %+.2f%%, min paired ratio)\n",
                fig07_traced_s, overhead_pct);

    // --- Write the tracked trajectory point. ---
    const char* out_env = std::getenv("DTSIM_BENCH_OUT");
    const std::string out = out_env ? out_env : "BENCH_model.json";
    FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        warn("cannot write %s", out.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"scale\": %g,\n  \"jobs\": %u,\n"
                 "  \"repeats\": %u,\n",
                 scale, jobs, repeats);
    std::fprintf(f, "  \"systems\": [\n");
    for (std::size_t i = 0; i < replays.size(); ++i) {
        const ReplayResult& r = replays[i];
        std::fprintf(f,
                     "    {\"workload\": \"%s\", \"system\": "
                     "\"for+hdc\", \"requests\": %llu,\n"
                     "     \"replay_wall_s\": %.3f, "
                     "\"sim_requests_per_sec\": %.0f",
                     kSeedReplay[i].workload,
                     static_cast<unsigned long long>(r.requests),
                     r.wallS,
                     static_cast<double>(r.requests) / r.wallS);
        if (at_seed_scale && kSeedReplay[i].replayWallS > 0.0) {
            std::fprintf(f,
                         ",\n     \"replay_wall_s_seed\": %.3f, "
                         "\"speedup\": %.3f",
                         kSeedReplay[i].replayWallS,
                         kSeedReplay[i].replayWallS / r.wallS);
        }
        std::fprintf(f, "}%s\n", i + 1 < replays.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"fig07_web_sweep\": {\"points\": %zu, \"jobs\": "
                 "%u, \"wall_s\": %.3f",
                 n_points, jobs, fig07_s);
    if (at_seed_scale && kSeedFig07WallS > 0.0)
        std::fprintf(f, ", \"wall_s_seed\": %.3f, \"speedup\": %.3f",
                     kSeedFig07WallS, kSeedFig07WallS / fig07_s);
    std::fprintf(f, "},\n");
    std::fprintf(f,
                 "  \"fig07_traced\": {\"trace_sample\": 0.01, "
                 "\"wall_s\": %.3f, \"overhead_pct\": %.2f}\n}\n",
                 fig07_traced_s, overhead_pct);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
