/**
 * @file
 * Figure 12: file server I/O time and HDC hit rate as a function of
 * the per-disk HDC memory size (128 KB striping unit).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace dtsim;
    bench::hdcSweep(
        WorkloadKind::File, bench::workloadScale(), 128 * kKiB,
        "Figure 12: File server - I/O time vs HDC cache size");
    return 0;
}
