/**
 * @file
 * Figure 11: file server I/O time as a function of the striping unit
 * size (Segm / Segm+HDC / FOR / FOR+HDC, 2 MB HDC caches).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace dtsim;
    bench::stripingSweep(
        WorkloadKind::File, bench::workloadScale(),
        "Figure 11: File server - I/O time vs striping unit");
    return 0;
}
