/**
 * @file
 * Ablation: segment replacement policy (LRU vs FIFO vs Random vs
 * RoundRobin) for the conventional segment cache, on the synthetic
 * workload. Section 2.1 notes LRU is the usual choice but cites
 * proposals for the others.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: segment replacement policy (Segm, synthetic)");

    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 10000;

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    SyntheticWorkload w =
        makeSynthetic(sp, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{14, 12, 12};
    bench::printRow({"policy", "time(s)", "hit-rate"}, widths);

    const SegmentPolicy policies[] = {
        SegmentPolicy::LRU, SegmentPolicy::FIFO, SegmentPolicy::Random,
        SegmentPolicy::RoundRobin};
    const BlockPolicy block_policies[] = {BlockPolicy::MRU,
                                          BlockPolicy::LRU};

    // One parallel batch covering both sections of the table.
    std::vector<bench::SystemSpec> specs;
    for (SegmentPolicy p : policies) {
        bench::SystemSpec spec;
        spec.kind = SystemKind::Segm;
        spec.base = base;
        spec.base.segmentPolicy = p;
        spec.trace = &w.trace;
        spec.bitmaps = &bitmaps;
        specs.push_back(std::move(spec));
    }
    for (BlockPolicy p : block_policies) {
        bench::SystemSpec spec;
        spec.kind = SystemKind::FOR;
        spec.base = base;
        spec.base.blockPolicy = p;
        spec.trace = &w.trace;
        spec.bitmaps = &bitmaps;
        specs.push_back(std::move(spec));
    }
    const std::vector<RunResult> results = bench::runSystems(specs);

    for (std::size_t i = 0; i < std::size(policies); ++i) {
        const RunResult& r = results[i];
        bench::printRow({segmentPolicyName(policies[i]),
                         bench::fmt(toSeconds(r.ioTime)),
                         bench::fmtPct(r.cacheHitRate)},
                        widths);
    }

    // The block-based pool's MRU vs LRU, for comparison (Section 4
    // argues MRU fits the no-temporal-locality controller cache).
    std::printf("\nblock-pool policy (FOR):\n");
    for (std::size_t i = 0; i < std::size(block_policies); ++i) {
        const RunResult& r = results[std::size(policies) + i];
        bench::printRow({blockPolicyName(block_policies[i]),
                         bench::fmt(toSeconds(r.ioTime)),
                         bench::fmtPct(r.cacheHitRate)},
                        widths);
    }
    return 0;
}
