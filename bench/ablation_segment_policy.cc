/**
 * @file
 * Ablation: segment replacement policy (LRU vs FIFO vs Random vs
 * RoundRobin) for the conventional segment cache, on the synthetic
 * workload. Section 2.1 notes LRU is the usual choice but cites
 * proposals for the others.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: segment replacement policy (Segm, synthetic)");

    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 10000;

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    SyntheticWorkload w =
        makeSynthetic(sp, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{14, 12, 12};
    bench::printRow({"policy", "time(s)", "hit-rate"}, widths);

    const SegmentPolicy policies[] = {
        SegmentPolicy::LRU, SegmentPolicy::FIFO, SegmentPolicy::Random,
        SegmentPolicy::RoundRobin};
    for (SegmentPolicy p : policies) {
        SystemConfig cfg = base;
        cfg.segmentPolicy = p;
        const RunResult r = bench::runSystem(SystemKind::Segm, 0, cfg,
                                             w.trace, bitmaps);
        bench::printRow({segmentPolicyName(p),
                         bench::fmt(toSeconds(r.ioTime)),
                         bench::fmtPct(r.cacheHitRate)},
                        widths);
    }

    // The block-based pool's MRU vs LRU, for comparison (Section 4
    // argues MRU fits the no-temporal-locality controller cache).
    std::printf("\nblock-pool policy (FOR):\n");
    for (BlockPolicy p : {BlockPolicy::MRU, BlockPolicy::LRU}) {
        SystemConfig cfg = base;
        cfg.blockPolicy = p;
        const RunResult r = bench::runSystem(SystemKind::FOR, 0, cfg,
                                             w.trace, bitmaps);
        bench::printRow({blockPolicyName(p),
                         bench::fmt(toSeconds(r.ioTime)),
                         bench::fmtPct(r.cacheHitRate)},
                        widths);
    }
    return 0;
}
