/**
 * @file
 * Ablation: segment size (and with it the blind read-ahead size and
 * segment count: 128 KB/27, 256 KB/13, 512 KB/6 per Table 1), on the
 * synthetic workload.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: segment size / read-ahead size (16 KB files)");

    const std::vector<int> widths{12, 12, 10, 10, 10};
    bench::printRow({"seg(KB)", "segments", "Segm(s)", "FOR(s)",
                     "gain"},
                    widths);

    const std::uint64_t seg_kbs[] = {128, 256, 512};
    const std::size_t n = std::size(seg_kbs);
    std::vector<SystemConfig> bases(n);
    std::vector<SyntheticWorkload> workloads;
    std::vector<std::vector<LayoutBitmap>> bitmaps(n);
    workloads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        SystemConfig& base = bases[i];
        base.streams = 128;
        base.workers = 64;
        base.stripeUnitBytes = 128 * kKiB;
        base.disk.segmentBytes = seg_kbs[i] * kKiB;

        SyntheticParams sp;
        sp.fileSizeBytes = 16 * kKiB;
        sp.numRequests = 10000;
        workloads.push_back(makeSynthetic(
            sp, base.disks * base.disk.totalBlocks()));

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        bitmaps[i] = workloads[i].image->buildBitmaps(striping);
    }

    std::vector<bench::SystemSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
        for (SystemKind sys : {SystemKind::Segm, SystemKind::FOR}) {
            bench::SystemSpec spec;
            spec.kind = sys;
            spec.base = bases[i];
            spec.trace = &workloads[i].trace;
            spec.bitmaps = &bitmaps[i];
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<RunResult> results = bench::runSystems(specs);

    for (std::size_t i = 0; i < n; ++i) {
        const RunResult& segm = results[i * 2];
        const RunResult& forr = results[i * 2 + 1];
        bench::printRow(
            {std::to_string(seg_kbs[i]),
             std::to_string(bases[i].disk.numSegments()),
             bench::fmt(toSeconds(segm.ioTime)),
             bench::fmt(toSeconds(forr.ioTime)),
             bench::fmtPct(1.0 - static_cast<double>(forr.ioTime) /
                                     static_cast<double>(segm.ioTime))},
            widths);
    }
    return 0;
}
