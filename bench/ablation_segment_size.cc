/**
 * @file
 * Ablation: segment size (and with it the blind read-ahead size and
 * segment count: 128 KB/27, 256 KB/13, 512 KB/6 per Table 1), on the
 * synthetic workload.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Ablation: segment size / read-ahead size (16 KB files)");

    const std::vector<int> widths{12, 12, 10, 10, 10};
    bench::printRow({"seg(KB)", "segments", "Segm(s)", "FOR(s)",
                     "gain"},
                    widths);

    for (std::uint64_t seg_kb : {128, 256, 512}) {
        SystemConfig base;
        base.streams = 128;
        base.workers = 64;
        base.stripeUnitBytes = 128 * kKiB;
        base.disk.segmentBytes = seg_kb * kKiB;

        SyntheticParams sp;
        sp.fileSizeBytes = 16 * kKiB;
        sp.numRequests = 10000;
        SyntheticWorkload w = makeSynthetic(
            sp, base.disks * base.disk.totalBlocks());

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, base, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, base, w.trace, bitmaps);

        bench::printRow(
            {std::to_string(seg_kb),
             std::to_string(base.disk.numSegments()),
             bench::fmt(toSeconds(segm.ioTime)),
             bench::fmt(toSeconds(forr.ioTime)),
             bench::fmtPct(1.0 - static_cast<double>(forr.ioTime) /
                                     static_cast<double>(segm.ioTime))},
            widths);
    }
    return 0;
}
