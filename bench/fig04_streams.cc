/**
 * @file
 * Figure 4: normalized I/O time as a function of the number of
 * simultaneous I/O streams (Segm / Block / FOR; 16 KB files).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Figure 4: normalized I/O time vs simultaneous streams");

    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 10000;

    SystemConfig base;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    SyntheticWorkload w =
        makeSynthetic(sp, base.disks * base.disk.totalBlocks());
    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{10, 10, 10, 10, 12};
    bench::printRow({"streams", "Segm", "Block", "FOR", "Segm(s)"},
                    widths);

    const unsigned streams[] = {64, 128, 256, 384, 512, 768, 1024};
    for (unsigned s : streams) {
        SystemConfig cfg = base;
        cfg.streams = s;
        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, cfg, w.trace, bitmaps);
        const RunResult block = bench::runSystem(
            SystemKind::Block, 0, cfg, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, cfg, w.trace, bitmaps);

        const double t0 = static_cast<double>(segm.ioTime);
        bench::printRow({std::to_string(s), "1.000",
                         bench::fmt(block.ioTime / t0),
                         bench::fmt(forr.ioTime / t0),
                         bench::fmt(toSeconds(segm.ioTime))},
                        widths);
    }
    return 0;
}
