#include "bench/bench_util.hh"

#include <cstdio>
#include <cstdlib>

namespace dtsim {
namespace bench {

double
workloadScale()
{
    if (const char* env = std::getenv("DTSIM_BENCH_SCALE"))
        return std::atof(env);
    return 0.2;
}

void
printHeader(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printRow(const std::vector<std::string>& cells,
         const std::vector<int>& widths)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const int w = i < widths.size() ? widths[i] : 12;
        std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

RunResult
runSystem(SystemKind kind, std::uint64_t hdc_bytes,
          const SystemConfig& base, const Trace& trace,
          const std::vector<LayoutBitmap>& bitmaps)
{
    SystemConfig cfg = base;
    cfg.kind = kind;
    cfg.hdcBytesPerDisk = hdc_bytes;

    std::vector<ArrayBlock> pinned;
    const std::vector<ArrayBlock>* pinned_ptr = nullptr;
    if (hdc_bytes > 0) {
        StripingMap striping(cfg.disks,
                             cfg.stripeUnitBytes / cfg.disk.blockSize,
                             cfg.disk.totalBlocks());
        pinned = selectPinnedBlocks(trace, striping,
                                    hdcBlocksPerDisk(cfg));
        pinned_ptr = &pinned;
    }
    return runTrace(cfg, trace, &bitmaps, pinned_ptr);
}

void
stripingSweep(const ServerModelParams& params,
              const std::string& figure_title)
{
    printHeader(figure_title);

    SystemConfig base;
    base.streams = params.streams;

    // Build the workload once; bitmaps depend on the striping unit,
    // so they are rebuilt inside the sweep.
    ServerWorkload w =
        makeServerWorkload(params, base.disks *
                                       base.disk.totalBlocks());
    const TraceStats ts = computeStats(w.trace);
    std::printf("workload: %s  records=%llu  blocks=%llu  "
                "writes=%.1f%%  distinct=%llu  max-block-accesses=%llu\n",
                params.name.c_str(),
                static_cast<unsigned long long>(ts.records),
                static_cast<unsigned long long>(ts.blocks),
                ts.writeRecordFraction * 100.0,
                static_cast<unsigned long long>(ts.distinctBlocks),
                static_cast<unsigned long long>(ts.maxBlockAccesses));

    const std::vector<int> widths{12, 12, 12, 12, 12};
    printRow({"unit(KB)", "Segm", "Segm+HDC", "FOR", "FOR+HDC"},
             widths);

    const std::uint64_t units_kb[] = {4, 8, 16, 32, 64, 128, 192, 256};
    for (std::uint64_t u : units_kb) {
        SystemConfig cfg = base;
        cfg.stripeUnitBytes = u * kKiB;

        StripingMap striping(cfg.disks,
                             cfg.stripeUnitBytes / cfg.disk.blockSize,
                             cfg.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        const std::uint64_t hdc = 2 * kMiB;
        const RunResult segm =
            runSystem(SystemKind::Segm, 0, cfg, w.trace, bitmaps);
        const RunResult segm_hdc =
            runSystem(SystemKind::Segm, hdc, cfg, w.trace, bitmaps);
        const RunResult forr =
            runSystem(SystemKind::FOR, 0, cfg, w.trace, bitmaps);
        const RunResult for_hdc =
            runSystem(SystemKind::FOR, hdc, cfg, w.trace, bitmaps);

        printRow({std::to_string(u), fmt(toSeconds(segm.ioTime)),
                  fmt(toSeconds(segm_hdc.ioTime)),
                  fmt(toSeconds(forr.ioTime)),
                  fmt(toSeconds(for_hdc.ioTime))},
                 widths);
    }
}

void
hdcSweep(const ServerModelParams& params,
         std::uint64_t stripe_unit_bytes,
         const std::string& figure_title)
{
    printHeader(figure_title);

    SystemConfig base;
    base.streams = params.streams;
    base.stripeUnitBytes = stripe_unit_bytes;

    ServerWorkload w =
        makeServerWorkload(params, base.disks *
                                       base.disk.totalBlocks());

    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{12, 14, 14, 14, 14};
    printRow({"HDC(KB)", "Segm+HDC(s)", "FOR+HDC(s)", "hitSegm",
              "hitFOR"},
             widths);

    const std::uint64_t sizes_kb[] = {0,    256,  512,  1024,
                                      1536, 2048, 2560, 3072};
    for (std::uint64_t kb : sizes_kb) {
        const std::uint64_t hdc = kb * kKiB;

        // FOR additionally spends bitmap space; skip infeasible
        // points (the paper's FOR+HDC curve stops early too).
        const std::uint64_t bitmap = base.disk.bitmapBytes();
        const bool for_fits =
            hdc + bitmap + 256 * kKiB <= base.disk.usableCacheBytes();

        const RunResult segm =
            runSystem(SystemKind::Segm, hdc, base, w.trace, bitmaps);
        std::string for_time = "-";
        std::string for_hit = "-";
        if (for_fits) {
            const RunResult forr = runSystem(SystemKind::FOR, hdc,
                                             base, w.trace, bitmaps);
            for_time = fmt(toSeconds(forr.ioTime));
            for_hit = fmtPct(forr.hdcHitRate);
        }
        printRow({std::to_string(kb), fmt(toSeconds(segm.ioTime)),
                  for_time, fmtPct(segm.hdcHitRate), for_hit},
                 widths);
    }
}

} // namespace bench
} // namespace dtsim
