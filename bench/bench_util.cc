#include "bench/bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <utility>

namespace dtsim {
namespace bench {

double
workloadScale()
{
    if (const char* env = std::getenv("DTSIM_BENCH_SCALE"))
        return std::atof(env);
    return 0.2;
}

void
printHeader(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printRow(const std::vector<std::string>& cells,
         const std::vector<int>& widths)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const int w = i < widths.size() ? widths[i] : 12;
        std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

RunResult
runSystem(SystemKind kind, std::uint64_t hdc_bytes,
          const SystemConfig& base, const Trace& trace,
          const std::vector<LayoutBitmap>& bitmaps)
{
    SystemSpec spec;
    spec.kind = kind;
    spec.hdcBytes = hdc_bytes;
    spec.base = base;
    spec.trace = &trace;
    spec.bitmaps = &bitmaps;
    return runSystems({spec}).front();
}

std::vector<RunResult>
runSystems(const std::vector<SystemSpec>& specs)
{
    std::vector<SweepJob> jobs(specs.size());

    // Pin plans are deterministic, so they are computed up front on
    // the calling thread; the storage must outlive the sweep.
    std::vector<std::vector<ArrayBlock>> pin_store(specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const SystemSpec& s = specs[i];
        SweepJob& job = jobs[i];
        job.cfg = s.base;
        job.cfg.kind = s.kind;
        job.cfg.hdcBytesPerDisk = s.hdcBytes;
        job.trace = s.trace;
        job.bitmaps = s.bitmaps;
        job.opts = s.opts;
        if (s.hdcBytes > 0) {
            StripingMap striping(
                job.cfg.disks,
                job.cfg.stripeUnitBytes / job.cfg.disk.blockSize,
                job.cfg.disk.totalBlocks());
            pin_store[i] = selectPinnedBlocks(
                *s.trace, striping, hdcBlocksPerDisk(job.cfg));
            job.pinned = &pin_store[i];
        }
    }
    return runSweep(jobs);
}

void
stripingSweep(const ServerModelParams& params,
              const std::string& figure_title)
{
    printHeader(figure_title);

    SystemConfig base;
    base.streams = params.streams;

    // Build the workload once; bitmaps depend on the striping unit,
    // so they are rebuilt inside the sweep.
    ServerWorkload w =
        makeServerWorkload(params, base.disks *
                                       base.disk.totalBlocks());
    const TraceStats ts = computeStats(w.trace);
    std::printf("workload: %s  records=%llu  blocks=%llu  "
                "writes=%.1f%%  distinct=%llu  max-block-accesses=%llu\n",
                params.name.c_str(),
                static_cast<unsigned long long>(ts.records),
                static_cast<unsigned long long>(ts.blocks),
                ts.writeRecordFraction * 100.0,
                static_cast<unsigned long long>(ts.distinctBlocks),
                static_cast<unsigned long long>(ts.maxBlockAccesses));

    const std::vector<int> widths{12, 12, 12, 12, 12};
    printRow({"unit(KB)", "Segm", "Segm+HDC", "FOR", "FOR+HDC"},
             widths);

    // Build every (unit, system) job up front, then run the whole
    // figure through the parallel sweep runner in one batch.
    const std::uint64_t units_kb[] = {4, 8, 16, 32, 64, 128, 192, 256};
    const std::size_t n_units = std::size(units_kb);
    const std::uint64_t hdc = 2 * kMiB;

    std::vector<std::vector<LayoutBitmap>> unit_bitmaps(n_units);
    std::vector<SystemSpec> specs;
    specs.reserve(n_units * 4);
    for (std::size_t i = 0; i < n_units; ++i) {
        SystemConfig cfg = base;
        cfg.stripeUnitBytes = units_kb[i] * kKiB;

        StripingMap striping(cfg.disks,
                             cfg.stripeUnitBytes / cfg.disk.blockSize,
                             cfg.disk.totalBlocks());
        unit_bitmaps[i] = w.image->buildBitmaps(striping);

        const std::pair<SystemKind, std::uint64_t> systems[] = {
            {SystemKind::Segm, 0}, {SystemKind::Segm, hdc},
            {SystemKind::FOR, 0}, {SystemKind::FOR, hdc}};
        for (const auto& [kind, budget] : systems) {
            SystemSpec spec;
            spec.kind = kind;
            spec.hdcBytes = budget;
            spec.base = cfg;
            spec.trace = &w.trace;
            spec.bitmaps = &unit_bitmaps[i];
            specs.push_back(std::move(spec));
        }
    }

    const std::vector<RunResult> results = runSystems(specs);
    for (std::size_t i = 0; i < n_units; ++i) {
        const RunResult* row = &results[i * 4];
        printRow({std::to_string(units_kb[i]),
                  fmt(toSeconds(row[0].ioTime)),
                  fmt(toSeconds(row[1].ioTime)),
                  fmt(toSeconds(row[2].ioTime)),
                  fmt(toSeconds(row[3].ioTime))},
                 widths);
    }
}

void
hdcSweep(const ServerModelParams& params,
         std::uint64_t stripe_unit_bytes,
         const std::string& figure_title)
{
    printHeader(figure_title);

    SystemConfig base;
    base.streams = params.streams;
    base.stripeUnitBytes = stripe_unit_bytes;

    ServerWorkload w =
        makeServerWorkload(params, base.disks *
                                       base.disk.totalBlocks());

    StripingMap striping(base.disks,
                         base.stripeUnitBytes / base.disk.blockSize,
                         base.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const std::vector<int> widths{12, 14, 14, 14, 14};
    printRow({"HDC(KB)", "Segm+HDC(s)", "FOR+HDC(s)", "hitSegm",
              "hitFOR"},
             widths);

    // Batch every feasible (size, system) job into one parallel
    // sweep, then print the rows in size order.
    const std::uint64_t sizes_kb[] = {0,    256,  512,  1024,
                                      1536, 2048, 2560, 3072};
    std::vector<SystemSpec> specs;
    std::vector<int> for_index(std::size(sizes_kb), -1);
    for (std::size_t i = 0; i < std::size(sizes_kb); ++i) {
        const std::uint64_t hdc = sizes_kb[i] * kKiB;

        SystemSpec segm;
        segm.kind = SystemKind::Segm;
        segm.hdcBytes = hdc;
        segm.base = base;
        segm.trace = &w.trace;
        segm.bitmaps = &bitmaps;
        specs.push_back(std::move(segm));

        // FOR additionally spends bitmap space; skip infeasible
        // points (the paper's FOR+HDC curve stops early too).
        const std::uint64_t bitmap = base.disk.bitmapBytes();
        const bool for_fits =
            hdc + bitmap + 256 * kKiB <= base.disk.usableCacheBytes();
        if (for_fits) {
            SystemSpec forr = specs.back();
            forr.kind = SystemKind::FOR;
            for_index[i] = static_cast<int>(specs.size());
            specs.push_back(std::move(forr));
        }
    }

    const std::vector<RunResult> results = runSystems(specs);
    std::size_t next = 0;
    for (std::size_t i = 0; i < std::size(sizes_kb); ++i) {
        const RunResult& segm = results[next++];
        std::string for_time = "-";
        std::string for_hit = "-";
        if (for_index[i] >= 0) {
            const RunResult& forr =
                results[static_cast<std::size_t>(for_index[i])];
            for_time = fmt(toSeconds(forr.ioTime));
            for_hit = fmtPct(forr.hdcHitRate);
            ++next;
        }
        printRow({std::to_string(sizes_kb[i]),
                  fmt(toSeconds(segm.ioTime)), for_time,
                  fmtPct(segm.hdcHitRate), for_hit},
                 widths);
    }
}

} // namespace bench
} // namespace dtsim
