#include "bench/bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <utility>

#include "core/experiment.hh"
#include "sim/logging.hh"

namespace dtsim {
namespace bench {

double
workloadScale()
{
    if (const char* env = std::getenv("DTSIM_BENCH_SCALE")) {
        double scale = 0.0;
        std::string err;
        if (!config::parseValue(env, scale, err))
            fatal("DTSIM_BENCH_SCALE: %s", err.c_str());
        return scale;
    }
    return 0.2;
}

void
printHeader(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

void
printRow(const std::vector<std::string>& cells,
         const std::vector<int>& widths)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const int w = i < widths.size() ? widths[i] : 12;
        std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

RunResult
runSystem(SystemKind kind, std::uint64_t hdc_bytes,
          const SystemConfig& base, const Trace& trace,
          const std::vector<LayoutBitmap>& bitmaps)
{
    SystemSpec spec;
    spec.kind = kind;
    spec.hdcBytes = hdc_bytes;
    spec.base = base;
    spec.trace = &trace;
    spec.bitmaps = &bitmaps;
    return runSystems({spec}).front();
}

std::vector<RunResult>
runSystems(const std::vector<SystemSpec>& specs)
{
    std::vector<Experiment> batch;
    batch.reserve(specs.size());

    for (const SystemSpec& s : specs) {
        Experiment e(s.base);
        e.kind(s.kind)
            .hdcBytesPerDisk(s.hdcBytes)
            .replay(*s.trace)
            .options(s.opts);
        if (s.bitmaps)
            e.bitmaps(*s.bitmaps);
        batch.push_back(std::move(e));
    }
    // Pinned-policy pin plans are derived per Experiment during
    // prepare(); runAll() executes the batch through the parallel
    // sweep runner.
    return Experiment::runAll(batch);
}

namespace {

/** Print the workload line that opens every figure table. */
void
printWorkloadLine(WorkloadKind workload, const Trace& trace)
{
    const TraceStats ts = computeStats(trace);
    std::printf("workload: %s  records=%llu  blocks=%llu  "
                "writes=%.1f%%  distinct=%llu  max-block-accesses=%llu\n",
                workloadKindTokens().format(workload).c_str(),
                static_cast<unsigned long long>(ts.records),
                static_cast<unsigned long long>(ts.blocks),
                ts.writeRecordFraction * 100.0,
                static_cast<unsigned long long>(ts.distinctBlocks),
                static_cast<unsigned long long>(ts.maxBlockAccesses));
}

std::vector<SweepPoint>
expandOrDie(const SweepSpec& spec)
{
    std::string err;
    std::vector<SweepPoint> points = expandSweep(spec, err);
    if (points.empty())
        fatal("sweep expansion failed: %s", err.c_str());
    return points;
}

} // namespace

SweepSpec
stripingSweepSpec(WorkloadKind workload, double scale)
{
    SweepSpec spec;
    spec.base.workload = workload;
    spec.base.scale = scale;

    // Row-major figure layout: unit rows (slowest axis), then the
    // Segm / Segm+HDC / FOR / FOR+HDC columns.
    const std::uint64_t units_kb[] = {4, 8, 16, 32, 64, 128, 192, 256};
    SweepAxis units{"system.stripe_unit_bytes", {}};
    for (std::uint64_t kb : units_kb)
        units.values.push_back(std::to_string(kb * kKiB));
    spec.axes.push_back(std::move(units));
    spec.axes.push_back({"system.kind", {"segm", "for"}});
    spec.axes.push_back({"system.hdc_bytes_per_disk",
                         {"0", std::to_string(2 * kMiB)}});
    return spec;
}

SweepSpec
hdcSweepSpec(WorkloadKind workload, double scale,
             std::uint64_t stripe_unit_bytes)
{
    SweepSpec spec;
    spec.base.workload = workload;
    spec.base.scale = scale;
    spec.base.system.stripeUnitBytes = stripe_unit_bytes;

    const std::uint64_t sizes_kb[] = {0,    256,  512,  1024,
                                      1536, 2048, 2560, 3072};
    SweepAxis sizes{"system.hdc_bytes_per_disk", {}};
    for (std::uint64_t kb : sizes_kb)
        sizes.values.push_back(std::to_string(kb * kKiB));
    spec.axes.push_back(std::move(sizes));
    spec.axes.push_back({"system.kind", {"segm", "for"}});
    return spec;
}

void
stripingSweep(WorkloadKind workload, double scale,
              const std::string& figure_title)
{
    printHeader(figure_title);

    const SweepSpec spec = stripingSweepSpec(workload, scale);
    std::vector<SweepPoint> points = expandOrDie(spec);

    // The cache builds the (shared) workload once for the whole grid;
    // warm it first so the workload line prints before the runs.
    SweepCache cache;
    printWorkloadLine(workload, cache.workload(spec.base).trace);

    const std::vector<RunResult> results =
        runSweepPoints(points, cache);

    const std::vector<int> widths{12, 12, 12, 12, 12};
    printRow({"unit(KB)", "Segm", "Segm+HDC", "FOR", "FOR+HDC"},
             widths);
    for (std::size_t i = 0; i + 3 < results.size(); i += 4) {
        const std::uint64_t unit =
            points[i].cfg.system.stripeUnitBytes;
        printRow({std::to_string(unit / kKiB),
                  fmt(toSeconds(results[i + 0].ioTime)),
                  fmt(toSeconds(results[i + 1].ioTime)),
                  fmt(toSeconds(results[i + 2].ioTime)),
                  fmt(toSeconds(results[i + 3].ioTime))},
                 widths);
    }
}

void
hdcSweep(WorkloadKind workload, double scale,
         std::uint64_t stripe_unit_bytes,
         const std::string& figure_title)
{
    printHeader(figure_title);

    const SweepSpec spec =
        hdcSweepSpec(workload, scale, stripe_unit_bytes);
    std::vector<SweepPoint> points = expandOrDie(spec);

    SweepCache cache;
    const std::vector<RunResult> results =
        runSweepPoints(points, cache);

    const std::vector<int> widths{12, 14, 14, 14, 14};
    printRow({"HDC(KB)", "Segm+HDC(s)", "FOR+HDC(s)", "hitSegm",
              "hitFOR"},
             widths);
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
        const RunResult& segm = results[i];
        std::string for_time = "-";
        std::string for_hit = "-";
        if (points[i + 1].feasible) {
            for_time = fmt(toSeconds(results[i + 1].ioTime));
            for_hit = fmtPct(results[i + 1].hdcHitRate);
        }
        printRow({std::to_string(
                      points[i].cfg.system.hdcBytesPerDisk / kKiB),
                  fmt(toSeconds(segm.ioTime)), for_time,
                  fmtPct(segm.hdcHitRate), for_hit},
                 widths);
    }
}

} // namespace bench
} // namespace dtsim
