/**
 * @file
 * Tracked kernel/harness performance benchmark. Measures
 *
 *  1. event-kernel throughput (events/sec) of the current EventQueue
 *     against an embedded copy of the seed kernel (std::priority_queue
 *     of std::function entries plus two unordered_sets), and
 *  2. wall-clock time of a striping sweep run serially vs through the
 *     parallel sweep runner,
 *
 * and writes both trajectories to BENCH_kernel.json in the working
 * directory (override with DTSIM_BENCH_OUT). EXPERIMENTS.md explains
 * how the numbers are produced and tracked across PRs.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workload/synthetic.hh"

using namespace dtsim;

namespace {

/**
 * The seed event kernel, verbatim: heap of callback-carrying entries
 * ordered by (tick, id), with pending/cancelled hash sets. Kept here
 * as the fixed baseline the events/sec trajectory is measured
 * against.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    Tick now() const { return now_; }

    EventId
    scheduleAt(Tick when, Callback cb)
    {
        const EventId id = nextId_++;
        heap_.push(Entry{when, id, std::move(cb)});
        pending_.insert(id);
        return id;
    }

    EventId
    scheduleAfter(Tick delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    bool
    cancel(EventId id)
    {
        auto it = pending_.find(id);
        if (it == pending_.end())
            return false;
        pending_.erase(it);
        cancelled_.insert(id);
        return true;
    }

    bool
    step()
    {
        while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
            cancelled_.erase(heap_.top().id);
            heap_.pop();
        }
        if (heap_.empty())
            return false;
        Entry& top = const_cast<Entry&>(heap_.top());
        now_ = top.when;
        Callback cb = std::move(top.cb);
        pending_.erase(top.id);
        heap_.pop();
        cb();
        return true;
    }

    void
    run()
    {
        while (step()) {
        }
    }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;
    std::unordered_set<EventId> cancelled_;
    Tick now_ = 0;
    EventId nextId_ = 1;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Event-loop workload shared by both kernels: a steady population of
 * self-rescheduling events with staggered delays, plus a
 * schedule-then-cancel on every fourth firing to exercise the
 * cancellation path the controllers use for timeouts.
 */
template <typename Queue>
double
measureEventsPerSec(std::uint64_t total_events)
{
    Queue q;
    std::uint64_t fired = 0;
    constexpr int kPopulation = 1024;

    std::function<void(int)> tick = [&](int lane) {
        ++fired;
        if (fired + kPopulation > total_events)
            return;
        q.scheduleAfter(
            static_cast<Tick>(1 + (lane * 7919 + fired) % 1000),
            [&tick, lane] { tick(lane); });
        if (fired % 4 == 0) {
            const auto id = q.scheduleAfter(
                2000 + fired % 128, [] {});
            q.cancel(id);
        }
    };

    const auto start = std::chrono::steady_clock::now();
    for (int lane = 0; lane < kPopulation; ++lane)
        q.scheduleAfter(static_cast<Tick>(lane % 97),
                        [&tick, lane] { tick(lane); });
    q.run();
    const double secs = secondsSince(start);
    return static_cast<double>(fired) / secs;
}

/** The striping sweep timed serially and in parallel. */
std::vector<bench::SystemSpec>
buildSweepSpecs(const SyntheticWorkload& w,
                std::vector<std::vector<LayoutBitmap>>& bitmaps)
{
    const std::uint64_t units_kb[] = {4, 16, 64, 128, 192, 256};
    const std::size_t n_units = std::size(units_kb);

    bitmaps.resize(n_units);
    std::vector<bench::SystemSpec> specs;
    for (std::size_t i = 0; i < n_units; ++i) {
        SystemConfig cfg;
        cfg.streams = 128;
        cfg.workers = 64;
        cfg.stripeUnitBytes = units_kb[i] * kKiB;

        StripingMap striping(cfg.disks,
                             cfg.stripeUnitBytes / cfg.disk.blockSize,
                             cfg.disk.totalBlocks());
        bitmaps[i] = w.image->buildBitmaps(striping);

        for (SystemKind kind : {SystemKind::Segm, SystemKind::FOR}) {
            bench::SystemSpec spec;
            spec.kind = kind;
            spec.base = cfg;
            spec.trace = &w.trace;
            spec.bitmaps = &bitmaps[i];
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

std::vector<SweepJob>
specsToJobs(const std::vector<bench::SystemSpec>& specs)
{
    std::vector<SweepJob> jobs(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        jobs[i].cfg = specs[i].base;
        jobs[i].cfg.kind = specs[i].kind;
        jobs[i].trace = specs[i].trace;
        jobs[i].bitmaps = specs[i].bitmaps;
    }
    return jobs;
}

} // namespace

int
main()
{
    bench::printHeader("Kernel & sweep throughput");

    // --- 1. Event-kernel events/sec, new vs seed baseline. ---
    const std::uint64_t total_events = 4'000'000;
    // Warm up allocators/caches so both kernels are measured steady.
    measureEventsPerSec<EventQueue>(total_events / 8);
    measureEventsPerSec<LegacyEventQueue>(total_events / 8);

    const double eps = measureEventsPerSec<EventQueue>(total_events);
    const double eps_seed =
        measureEventsPerSec<LegacyEventQueue>(total_events);
    const double kernel_speedup = eps / eps_seed;

    std::printf("events/sec (current kernel): %.3e\n", eps);
    std::printf("events/sec (seed kernel):    %.3e\n", eps_seed);
    std::printf("kernel speedup:              %.2fx\n",
                kernel_speedup);

    // --- 2. Striping sweep, serial vs parallel wall time. ---
    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 20000;
    sp.zipfAlpha = 0.6;

    SystemConfig proto;
    const SyntheticWorkload w =
        makeSynthetic(sp, proto.disks * proto.disk.totalBlocks());

    std::vector<std::vector<LayoutBitmap>> bitmaps;
    const std::vector<bench::SystemSpec> specs =
        buildSweepSpecs(w, bitmaps);
    const std::vector<SweepJob> jobs = specsToJobs(specs);

    // DTSIM_JOBS if set, hardware concurrency otherwise — and
    // recorded in the tracked JSON, so a reader can tell what the
    // speedup was measured with.
    const unsigned n_jobs = sweepJobs();
    const unsigned hw = std::thread::hardware_concurrency();

    auto start = std::chrono::steady_clock::now();
    const std::vector<RunResult> serial = runSweep(jobs, 1);
    const double sweep_serial_s = secondsSince(start);

    std::printf("sweep serial:   %.3f s (%zu jobs)\n", sweep_serial_s,
                jobs.size());

    // With one worker the "parallel" run would execute the identical
    // serial path again and report ~1.0x as if it were a measurement.
    // Skip it and record null instead of publishing a meaningless
    // number (a single-core box lands here unless DTSIM_JOBS forces
    // oversubscription).
    double sweep_parallel_s = -1.0;
    double speedup = -1.0;
    if (n_jobs > 1) {
        start = std::chrono::steady_clock::now();
        const std::vector<RunResult> parallel = runSweep(jobs, n_jobs);
        sweep_parallel_s = secondsSince(start);

        // Parallel execution must not change a single result.
        for (std::size_t i = 0; i < serial.size(); ++i) {
            if (serial[i].ioTime != parallel[i].ioTime ||
                serial[i].agg.reads != parallel[i].agg.reads) {
                warn("job %zu differs between serial and parallel"
                     " execution", i);
                return 1;
            }
        }

        speedup = sweep_serial_s / sweep_parallel_s;
        std::printf("sweep parallel: %.3f s (%u threads)\n",
                    sweep_parallel_s, n_jobs);
        std::printf("sweep speedup:  %.2fx\n", speedup);
    } else {
        std::printf("sweep parallel: skipped (1 worker thread; "
                    "set DTSIM_JOBS>1 to measure)\n");
    }

    // --- 3. Single-run kernel: events/sec and sharded speedup. ---
    // One full simulation (not the synthetic event loop above): the
    // events/sec a real replay achieves end to end, and how much the
    // sharded kernel (--jobs-intra) buys on a 4-disk array. The
    // speedup needs real parallel hardware; with fewer than 4
    // threads it is recorded as null rather than a fake ~1.0x.
    SystemConfig run_cfg;
    run_cfg.disks = 4;
    run_cfg.streams = 128;
    run_cfg.workers = 64;

    SyntheticParams rp;
    rp.fileSizeBytes = 16 * kKiB;
    rp.numRequests = 30000;
    rp.zipfAlpha = 0.6;
    const SyntheticWorkload rw = makeSynthetic(
        rp, run_cfg.disks * run_cfg.disk.totalBlocks());

    auto run_once = [&](unsigned jobs_intra) {
        Experiment e(run_cfg);
        e.replay(rw.trace).jobsIntra(jobs_intra);
        return e.run();
    };
    run_once(1);   // Warm-up.
    const RunResult run_serial = run_once(1);
    const double run_eps = run_serial.eventsPerSec();
    std::printf("single-run events/sec (serial): %.3e\n", run_eps);

    double sharded_speedup = -1.0;
    unsigned jobs_intra_used = 1;
    if (hw >= 4) {
        const RunResult run_sharded = run_once(4);
        if (run_sharded.ioTime != run_serial.ioTime ||
            run_sharded.agg.reads != run_serial.agg.reads) {
            warn("sharded run differs from serial run");
            return 1;
        }
        jobs_intra_used = run_sharded.jobsIntra;
        if (run_sharded.wallSeconds > 0.0)
            sharded_speedup =
                run_serial.wallSeconds / run_sharded.wallSeconds;
        std::printf("sharded speedup (jobs-intra %u): %.2fx\n",
                    jobs_intra_used, sharded_speedup);
    } else {
        std::printf("sharded speedup: skipped (%u hw threads; "
                    "needs >= 4)\n", hw);
    }

    // --- 4. Mirrored-degraded sharded speedup. ---
    // The hardest configuration the sharded kernel now covers: a
    // RAID-10 array losing one disk mid-run (degraded reads + a
    // rebuild competing with foreground I/O). Wall time is min-of-N
    // to shave scheduler noise; like section 3, the speedup is null
    // below 4 hardware threads instead of a fake ~1.0x.
    SystemConfig mir_cfg;
    mir_cfg.disks = 4;
    mir_cfg.streams = 128;
    mir_cfg.workers = 64;
    mir_cfg.mirrored = true;
    mir_cfg.fault.killAtTicks = 1 * kMsec;
    mir_cfg.fault.killDisk = 1;
    mir_cfg.fault.repairAtTicks = 500 * kMsec;
    mir_cfg.fault.rebuildBlocks = 4096;

    SyntheticParams mp;
    mp.fileSizeBytes = 16 * kKiB;
    mp.numRequests = 30000;
    mp.zipfAlpha = 0.6;
    const SyntheticWorkload mw = makeSynthetic(
        mp, mir_cfg.disks * mir_cfg.disk.totalBlocks() / 2);

    auto mir_once = [&](unsigned jobs_intra) {
        Experiment e(mir_cfg);
        e.replay(mw.trace).jobsIntra(jobs_intra);
        return e.run();
    };
    auto mir_best = [&](unsigned jobs_intra) {
        constexpr int kReps = 3;
        RunResult best = mir_once(jobs_intra);
        for (int i = 1; i < kReps; ++i) {
            RunResult r = mir_once(jobs_intra);
            if (r.wallSeconds < best.wallSeconds)
                best = r;
        }
        return best;
    };

    double mirrored_degraded_speedup = -1.0;
    if (hw >= 4) {
        const RunResult mir_serial = mir_best(1);
        const RunResult mir_sharded = mir_best(4);
        if (mir_sharded.ioTime != mir_serial.ioTime ||
            mir_sharded.agg.reads != mir_serial.agg.reads ||
            mir_sharded.faults.degradedReads !=
                mir_serial.faults.degradedReads) {
            warn("mirrored-degraded sharded run differs from serial");
            return 1;
        }
        if (mir_serial.faults.degradedReads == 0) {
            warn("mirrored-degraded bench saw no degraded reads");
            return 1;
        }
        if (mir_sharded.wallSeconds > 0.0)
            mirrored_degraded_speedup =
                mir_serial.wallSeconds / mir_sharded.wallSeconds;
        std::printf("mirrored-degraded sharded speedup: %.2fx\n",
                    mirrored_degraded_speedup);
    } else {
        std::printf("mirrored-degraded speedup: skipped (%u hw "
                    "threads; needs >= 4)\n", hw);
    }

    // --- Write the tracked trajectory point. ---
    const char* out_env = std::getenv("DTSIM_BENCH_OUT");
    const std::string out =
        out_env ? out_env : "BENCH_kernel.json";
    FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        warn("cannot write %s", out.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"events_per_sec\": %.0f,\n"
                 "  \"events_per_sec_seed\": %.0f,\n"
                 "  \"kernel_speedup\": %.3f,\n"
                 "  \"sweep_serial_s\": %.3f,\n",
                 eps, eps_seed, kernel_speedup, sweep_serial_s);
    if (speedup > 0.0)
        std::fprintf(f,
                     "  \"sweep_parallel_s\": %.3f,\n"
                     "  \"speedup\": %.3f,\n",
                     sweep_parallel_s, speedup);
    else
        std::fprintf(f,
                     "  \"sweep_parallel_s\": null,\n"
                     "  \"speedup\": null,\n");
    std::fprintf(f, "  \"run_events_per_sec\": %.0f,\n", run_eps);
    if (sharded_speedup > 0.0)
        std::fprintf(f, "  \"sharded_speedup\": %.3f,\n",
                     sharded_speedup);
    else
        std::fprintf(f, "  \"sharded_speedup\": null,\n");
    if (mirrored_degraded_speedup > 0.0)
        std::fprintf(f, "  \"mirrored_degraded_speedup\": %.3f,\n",
                     mirrored_degraded_speedup);
    else
        std::fprintf(f, "  \"mirrored_degraded_speedup\": null,\n");
    std::fprintf(f,
                 "  \"jobs_intra\": %u,\n"
                 "  \"jobs\": %u,\n"
                 "  \"hw_threads\": %u\n"
                 "}\n",
                 jobs_intra_used, n_jobs, hw);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
