/**
 * @file
 * Figure 6: normalized I/O time as a function of the percentage of
 * writes in the workload. 16 KB files, 2 MB HDC caches, Zipf
 * alpha = 0.4.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Figure 6: normalized I/O time vs write percentage");

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    const std::vector<int> widths{10, 10, 12, 10, 12};
    bench::printRow({"writes(%)", "Segm", "Segm+HDC", "FOR",
                     "FOR+HDC"},
                    widths);

    for (int wpct = 0; wpct <= 60; wpct += 10) {
        SyntheticParams sp;
        sp.fileSizeBytes = 16 * kKiB;
        sp.numRequests = 10000;
        sp.zipfAlpha = 0.4;
        sp.writeProb = wpct / 100.0;
        SyntheticWorkload w = makeSynthetic(
            sp, base.disks * base.disk.totalBlocks());

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        const std::uint64_t hdc = 2 * kMiB;
        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, base, w.trace, bitmaps);
        const RunResult segm_hdc = bench::runSystem(
            SystemKind::Segm, hdc, base, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, base, w.trace, bitmaps);
        const RunResult for_hdc = bench::runSystem(
            SystemKind::FOR, hdc, base, w.trace, bitmaps);

        const double t0 = static_cast<double>(segm.ioTime);
        bench::printRow({std::to_string(wpct), "1.000",
                         bench::fmt(segm_hdc.ioTime / t0),
                         bench::fmt(forr.ioTime / t0),
                         bench::fmt(for_hdc.ioTime / t0)},
                        widths);
    }
    return 0;
}
