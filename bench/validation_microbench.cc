/**
 * @file
 * Simulator validation in the spirit of Section 6.1: the paper ran
 * read-only and write-only micro-benchmarks (small files at random
 * disk locations) on the real IBM drive and found the simulator
 * within 8% (reads) and 3% (writes). We have no hardware, so the
 * same micro-benchmarks are validated against the analytic
 * service-time model T(r) = seek + rotation + r*S/xfer_rate with the
 * drive's average seek and rotational latency.
 */

#include <cstdio>

#include "analytic/models.hh"
#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "sim/rng.hh"
#include "workload/trace.hh"

using namespace dtsim;

namespace {

/** Random small accesses on a single disk, no read-ahead benefit. */
double
measuredMsPerAccess(bool writes, std::uint64_t blocks_per_access)
{
    SystemConfig cfg;
    cfg.disks = 1;
    cfg.streams = 1;              // Serial accesses, like the real
    cfg.kind = SystemKind::NoRA;  // micro-benchmark loop.
    cfg.stripeUnitBytes = 128 * kKiB;

    Rng rng(12345);
    Trace trace;
    const std::uint64_t n = 2000;
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.start = rng.below(cfg.disk.totalBlocks() -
                              blocks_per_access);
        rec.count = static_cast<std::uint32_t>(blocks_per_access);
        rec.isWrite = writes;
        rec.job = static_cast<std::uint32_t>(i);
        trace.push_back(rec);
    }

    std::vector<LayoutBitmap> bitmaps;
    bitmaps.emplace_back(cfg.disk.totalBlocks());
    Experiment e(cfg);
    e.replay(trace).bitmaps(bitmaps);
    const RunResult r = e.run();
    return toMillis(r.ioTime) / static_cast<double>(n);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Validation: micro-benchmarks vs the analytic model "
        "(Section 6.1)");

    DiskParams p;
    const std::vector<int> widths{10, 10, 14, 14, 10};
    bench::printRow({"op", "size", "simulated", "analytic",
                     "error"},
                    widths);

    for (const bool writes : {false, true}) {
        for (const std::uint64_t blocks : {1ull, 4ull, 16ull}) {
            const double sim = measuredMsPerAccess(writes, blocks);
            // The model: average seek + average rotation + transfer
            // (+ settle for writes), plus controller/bus overheads.
            double model = analytic::requestTimeMs(p, blocks);
            if (writes)
                model += toMillis(p.writeSettle);
            model += toMillis(p.requestOverhead);
            model += blocks * 4096.0 / 160.0e6 * 1e3;   // Bus.

            const double err = (sim - model) / model;
            bench::printRow(
                {writes ? "write" : "read",
                 std::to_string(blocks * 4) + "KB",
                 bench::fmt(sim, 3) + " ms",
                 bench::fmt(model, 3) + " ms",
                 bench::fmtPct(err)},
                widths);
        }
    }
    std::printf("\npaper: simulation within 8%% (reads) and 3%% "
                "(writes) of the real drive.\n");
    return 0;
}
