/**
 * @file
 * Figure 5: normalized I/O time and HDC hit rate as a function of the
 * access-frequency (Zipf) coefficient. 16 KB files, 2 MB HDC caches,
 * no writes.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Figure 5: normalized I/O time vs Zipf coefficient");

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    const std::vector<int> widths{8, 10, 12, 10, 12, 10};
    bench::printRow({"alpha", "Segm", "Segm+HDC", "FOR", "FOR+HDC",
                     "hitRate"},
                    widths);

    const double alphas[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
    for (double a : alphas) {
        SyntheticParams sp;
        sp.fileSizeBytes = 16 * kKiB;
        sp.numRequests = 10000;
        sp.zipfAlpha = a;
        SyntheticWorkload w = makeSynthetic(
            sp, base.disks * base.disk.totalBlocks());

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        const std::uint64_t hdc = 2 * kMiB;
        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, base, w.trace, bitmaps);
        const RunResult segm_hdc = bench::runSystem(
            SystemKind::Segm, hdc, base, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, base, w.trace, bitmaps);
        const RunResult for_hdc = bench::runSystem(
            SystemKind::FOR, hdc, base, w.trace, bitmaps);

        const double t0 = static_cast<double>(segm.ioTime);
        bench::printRow({bench::fmt(a, 1), "1.000",
                         bench::fmt(segm_hdc.ioTime / t0),
                         bench::fmt(forr.ioTime / t0),
                         bench::fmt(for_hdc.ioTime / t0),
                         bench::fmtPct(segm_hdc.hdcHitRate)},
                        widths);
    }
    return 0;
}
