/**
 * @file
 * Ablation: flat vs zoned recording. Table 1 models a single 54 MB/s
 * raw rate; the real drive is zoned (340-440 sectors/track). This
 * bench checks that the headline FOR comparison is insensitive to
 * that simplification.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader("Ablation: flat vs zoned recording");

    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 10000;

    const std::vector<int> widths{10, 10, 10, 10};
    bench::printRow({"zones", "Segm(s)", "FOR(s)", "gain"}, widths);

    const unsigned zone_counts[] = {0u, 4u, 8u, 16u};
    const std::size_t n = std::size(zone_counts);
    std::vector<SystemConfig> bases(n);
    std::vector<SyntheticWorkload> workloads;
    std::vector<std::vector<LayoutBitmap>> bitmaps(n);
    workloads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        SystemConfig& base = bases[i];
        base.streams = 128;
        base.workers = 64;
        base.stripeUnitBytes = 128 * kKiB;
        base.disk.recordingZones = zone_counts[i];

        workloads.push_back(makeSynthetic(
            sp, base.disks * base.disk.totalBlocks()));
        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        bitmaps[i] = workloads[i].image->buildBitmaps(striping);
    }

    std::vector<bench::SystemSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
        for (SystemKind sys : {SystemKind::Segm, SystemKind::FOR}) {
            bench::SystemSpec spec;
            spec.kind = sys;
            spec.base = bases[i];
            spec.trace = &workloads[i].trace;
            spec.bitmaps = &bitmaps[i];
            specs.push_back(std::move(spec));
        }
    }
    const std::vector<RunResult> results = bench::runSystems(specs);

    for (std::size_t i = 0; i < n; ++i) {
        const RunResult& segm = results[i * 2];
        const RunResult& forr = results[i * 2 + 1];
        bench::printRow(
            {zone_counts[i] == 0 ? "flat"
                                 : std::to_string(zone_counts[i]),
             bench::fmt(toSeconds(segm.ioTime)),
             bench::fmt(toSeconds(forr.ioTime)),
             bench::fmtPct(1.0 - static_cast<double>(forr.ioTime) /
                                     static_cast<double>(segm.ioTime))},
            widths);
    }
    return 0;
}
