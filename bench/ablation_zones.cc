/**
 * @file
 * Ablation: flat vs zoned recording. Table 1 models a single 54 MB/s
 * raw rate; the real drive is zoned (340-440 sectors/track). This
 * bench checks that the headline FOR comparison is insensitive to
 * that simplification.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader("Ablation: flat vs zoned recording");

    SyntheticParams sp;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 10000;

    const std::vector<int> widths{10, 10, 10, 10};
    bench::printRow({"zones", "Segm(s)", "FOR(s)", "gain"}, widths);

    for (unsigned zones : {0u, 4u, 8u, 16u}) {
        SystemConfig base;
        base.streams = 128;
        base.workers = 64;
        base.stripeUnitBytes = 128 * kKiB;
        base.disk.recordingZones = zones;

        SyntheticWorkload w = makeSynthetic(
            sp, base.disks * base.disk.totalBlocks());
        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, base, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, base, w.trace, bitmaps);

        bench::printRow(
            {zones == 0 ? "flat" : std::to_string(zones),
             bench::fmt(toSeconds(segm.ioTime)),
             bench::fmt(toSeconds(forr.ioTime)),
             bench::fmtPct(1.0 - static_cast<double>(forr.ioTime) /
                                     static_cast<double>(segm.ioTime))},
            widths);
    }
    return 0;
}
