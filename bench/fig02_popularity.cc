/**
 * @file
 * Figure 2: number of accesses to the most-accessed disk blocks in
 * the three server workloads (post buffer-cache miss streams), with a
 * Zipf alpha = 0.43 reference curve.
 *
 * The paper plots the top 300000 blocks on a log-scale Y axis; we
 * print the access counts at sampled ranks.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/rng.hh"
#include "workload/server_models.hh"
#include "workload/trace.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Figure 2: distribution of disk block accesses");

    const double scale = bench::workloadScale();
    std::printf("workload scale: %.3f of the paper's request counts\n",
                scale);

    const std::uint64_t capacity =
        8ULL * (18ULL * 1000 * 1000 * 1000 / 4096);

    const ServerWorkload web =
        makeServerWorkload(webServerParams(scale), capacity);
    const ServerWorkload proxy =
        makeServerWorkload(proxyServerParams(scale), capacity);
    const ServerWorkload file =
        makeServerWorkload(fileServerParams(scale), capacity);

    const auto web_counts = accessCountsSorted(web.trace);
    const auto proxy_counts = accessCountsSorted(proxy.trace);
    const auto file_counts = accessCountsSorted(file.trace);

    // Zipf(alpha = 0.43) reference over 300 K blocks, scaled to the
    // web trace's total accesses.
    const std::size_t n_ref = 300000;
    ZipfSampler zipf(n_ref, 0.43);
    std::uint64_t web_total = 0;
    for (auto c : web_counts)
        web_total += c;

    const std::vector<int> widths{12, 12, 12, 12, 12};
    bench::printRow({"rank", "web", "proxy", "file", "zipf0.43"},
                    widths);

    const std::size_t ranks[] = {1,    10,    100,   1000,
                                 5000, 20000, 50000, 100000,
                                 200000, 300000};
    auto at = [](const std::vector<std::uint64_t>& v,
                 std::size_t rank) -> std::string {
        if (rank == 0 || rank > v.size())
            return "-";
        return std::to_string(v[rank - 1]);
    };

    for (std::size_t r : ranks) {
        const double zc =
            zipf.pmf(r - 1) * static_cast<double>(web_total);
        bench::printRow({std::to_string(r), at(web_counts, r),
                         at(proxy_counts, r), at(file_counts, r),
                         bench::fmt(zc, 2)},
                        widths);
    }

    std::printf("\ndistinct blocks: web=%zu proxy=%zu file=%zu\n",
                web_counts.size(), proxy_counts.size(),
                file_counts.size());
    return 0;
}
