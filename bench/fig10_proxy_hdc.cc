/**
 * @file
 * Figure 10: proxy server I/O time and HDC hit rate as a function of
 * the per-disk HDC memory size (64 KB striping unit).
 */

#include "bench/bench_util.hh"

int
main()
{
    using namespace dtsim;
    bench::hdcSweep(
        WorkloadKind::Proxy, bench::workloadScale(), 64 * kKiB,
        "Figure 10: Proxy server - I/O time vs HDC cache size");
    return 0;
}
