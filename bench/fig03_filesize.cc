/**
 * @file
 * Figure 3: normalized I/O time as a function of the average file
 * size (Segm / Block / No-RA / FOR; 128 simultaneous streams;
 * 128 KB striping unit; 10000 complete-file requests).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dtsim;

int
main()
{
    bench::printHeader(
        "Figure 3: normalized I/O time vs average file size");

    SystemConfig base;
    base.streams = 128;
    base.workers = 64;
    base.stripeUnitBytes = 128 * kKiB;

    const std::vector<int> widths{12, 10, 10, 10, 10, 12};
    bench::printRow({"file(KB)", "Segm", "Block", "No-RA", "FOR",
                     "Segm(s)"},
                    widths);

    const std::uint64_t sizes_kb[] = {4,  8,  16, 24, 32, 48,
                                      64, 96, 128};
    for (std::uint64_t kb : sizes_kb) {
        SyntheticParams sp;
        sp.fileSizeBytes = kb * kKiB;
        sp.numRequests = 10000;
        SyntheticWorkload w = makeSynthetic(
            sp, base.disks * base.disk.totalBlocks());

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        const RunResult segm = bench::runSystem(
            SystemKind::Segm, 0, base, w.trace, bitmaps);
        const RunResult block = bench::runSystem(
            SystemKind::Block, 0, base, w.trace, bitmaps);
        const RunResult nora = bench::runSystem(
            SystemKind::NoRA, 0, base, w.trace, bitmaps);
        const RunResult forr = bench::runSystem(
            SystemKind::FOR, 0, base, w.trace, bitmaps);

        const double t0 = static_cast<double>(segm.ioTime);
        bench::printRow(
            {std::to_string(kb), "1.000",
             bench::fmt(block.ioTime / t0),
             bench::fmt(nora.ioTime / t0),
             bench::fmt(forr.ioTime / t0),
             bench::fmt(toSeconds(segm.ioTime))},
            widths);
    }
    return 0;
}
