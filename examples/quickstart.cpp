/**
 * @file
 * Quickstart: simulate a small server workload on a conventional
 * disk array and on one using File-Oriented Read-ahead (FOR), and
 * compare total I/O time.
 *
 * Walks through the full public API surface:
 *   1. describe a workload (files + accesses),
 *   2. build the on-disk layout and its FOR bitmaps,
 *   3. configure a system variant,
 *   4. replay and read the results.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "workload/synthetic.hh"

using namespace dtsim;

int
main()
{
    // 1. A workload: 10000 accesses to complete 16 KB files chosen
    //    by a Zipf distribution -- the paper's Section 6.2 setup.
    SyntheticParams wp;
    wp.numFiles = 50000;
    wp.fileSizeBytes = 16 * kKiB;
    wp.numRequests = 10000;
    wp.zipfAlpha = 0.4;

    // 2. The system: 8 IBM Ultrastar 36Z15 drives behind one
    //    Ultra160 bus, 128 KB striping unit, 128 server streams.
    SystemConfig cfg;
    cfg.disks = 8;
    cfg.stripeUnitBytes = 128 * kKiB;
    cfg.streams = 128;

    // Build the files on the array and the per-disk FOR bitmaps.
    SyntheticWorkload w =
        makeSynthetic(wp, cfg.disks * cfg.disk.totalBlocks());
    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    // 3./4. Run the conventional controller and FOR as Experiments
    //       over the shared trace, then compare.
    const RunResult segm = Experiment(cfg)
                               .kind(SystemKind::Segm)
                               .replay(w.trace)
                               .run();

    const RunResult forr = Experiment(cfg)
                               .kind(SystemKind::FOR)
                               .replay(w.trace)
                               .bitmaps(bitmaps)
                               .run();

    std::printf("conventional (Segm): %8.3f s  (%.1f MB/s, "
                "hit rate %.1f%%)\n",
                toSeconds(segm.ioTime), segm.throughputMBps,
                segm.cacheHitRate * 100.0);
    std::printf("FOR:                 %8.3f s  (%.1f MB/s, "
                "hit rate %.1f%%)\n",
                toSeconds(forr.ioTime), forr.throughputMBps,
                forr.cacheHitRate * 100.0);
    std::printf("FOR improves disk throughput by %.1f%%\n",
                (1.0 - static_cast<double>(forr.ioTime) /
                           static_cast<double>(segm.ioTime)) *
                    100.0);
    return 0;
}
