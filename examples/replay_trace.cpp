/**
 * @file
 * Trace persistence round trip: generate a workload, save its disk
 * trace to a file, reload it, and replay it on two systems. This is
 * the workflow for comparing controller designs on a fixed captured
 * workload (e.g. a trace converted from a real kernel log).
 *
 * Usage: replay_trace [trace-path]
 */

#include <cstdio>

#include "core/experiment.hh"
#include "workload/synthetic.hh"

using namespace dtsim;

int
main(int argc, char** argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/dtsim_example_trace.txt";

    SystemConfig cfg;
    cfg.streams = 64;

    // 1. Generate and save.
    SyntheticParams wp;
    wp.fileSizeBytes = 16 * kKiB;
    wp.numRequests = 5000;
    wp.writeProb = 0.1;
    SyntheticWorkload w =
        makeSynthetic(wp, cfg.disks * cfg.disk.totalBlocks());
    saveTrace(w.trace, path);
    std::printf("saved %zu records to %s\n", w.trace.size(),
                path.c_str());

    // 2. Reload -- as a downstream consumer with only the file
    //    would.
    const Trace trace = loadTrace(path);
    const TraceStats ts = computeStats(trace);
    std::printf("reloaded: %llu records, %llu blocks, %.1f%% "
                "writes\n",
                static_cast<unsigned long long>(ts.records),
                static_cast<unsigned long long>(ts.blocks),
                ts.writeRecordFraction * 100.0);

    // 3. Replay on the conventional controller and on FOR. The FOR
    //    bitmaps come from the image; a captured trace would carry a
    //    bitmap dump instead.
    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const RunResult segm = Experiment(cfg)
                               .kind(SystemKind::Segm)
                               .replay(trace)
                               .run();
    const RunResult forr = Experiment(cfg)
                               .kind(SystemKind::FOR)
                               .replay(trace)
                               .bitmaps(bitmaps)
                               .run();

    std::printf("Segm: %.3f s   FOR: %.3f s   (%.1f%% better)\n",
                toSeconds(segm.ioTime), toSeconds(forr.ioTime),
                (1.0 - static_cast<double>(forr.ioTime) /
                           static_cast<double>(segm.ioTime)) *
                    100.0);
    return 0;
}
