/**
 * @file
 * Simulate the paper's Web server scenario end to end: generate a
 * Web-like file population and request stream, run it through the
 * host cache hierarchy to get the disk trace, then compare all four
 * controller designs (Segm, Segm+HDC, FOR, FOR+HDC) at the Web
 * server's best striping unit (16 KB).
 */

#include <cstdio>

#include "core/experiment.hh"
#include "hdc/hdc_planner.hh"
#include "workload/server_models.hh"

using namespace dtsim;

namespace {

RunResult
runKind(SystemKind kind, std::uint64_t hdc_bytes,
        const SystemConfig& base, const Trace& trace,
        const std::vector<LayoutBitmap>& bitmaps,
        const std::vector<ArrayBlock>& pinned)
{
    Experiment e(base);
    e.kind(kind)
        .hdcBytesPerDisk(hdc_bytes)
        .replay(trace)
        .bitmaps(bitmaps);
    if (hdc_bytes > 0)
        e.pins(pinned);
    return e.run();
}

} // namespace

int
main()
{
    // A scaled-down Web workload (see workload/server_models.hh for
    // the calibration against the paper's Rutgers trace).
    ServerModelParams params = webServerParams(0.02);

    SystemConfig cfg;
    cfg.streams = params.streams;
    cfg.stripeUnitBytes = 16 * kKiB;   // Best unit per Figure 7.

    std::printf("generating web workload (%llu requests)...\n",
                static_cast<unsigned long long>(params.numRequests));
    ServerWorkload w = makeServerWorkload(
        params, cfg.disks * cfg.disk.totalBlocks());

    const TraceStats ts = computeStats(w.trace);
    std::printf("disk trace: %llu records, %.1f%% writes, "
                "%.2f blocks/record\n",
                static_cast<unsigned long long>(ts.records),
                ts.writeRecordFraction * 100.0, ts.meanRecordBlocks);

    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    // HDC pin plan: the blocks causing the most host-cache misses.
    const std::uint64_t hdc_bytes = 2 * kMiB;
    const std::vector<ArrayBlock> pinned = selectPinnedBlocks(
        w.trace, striping, hdc_bytes / cfg.disk.blockSize);

    const RunResult segm =
        runKind(SystemKind::Segm, 0, cfg, w.trace, bitmaps, pinned);
    const RunResult segm_hdc = runKind(SystemKind::Segm, hdc_bytes,
                                       cfg, w.trace, bitmaps, pinned);
    const RunResult forr =
        runKind(SystemKind::FOR, 0, cfg, w.trace, bitmaps, pinned);
    const RunResult for_hdc = runKind(SystemKind::FOR, hdc_bytes, cfg,
                                      w.trace, bitmaps, pinned);

    auto report = [&](const char* name, const RunResult& r) {
        std::printf("%-10s %8.3f s   gain %5.1f%%   hdc-hit %5.1f%%  "
                    "util %4.1f%%\n",
                    name, toSeconds(r.ioTime),
                    (1.0 - static_cast<double>(r.ioTime) /
                               static_cast<double>(segm.ioTime)) *
                        100.0,
                    r.hdcHitRate * 100.0,
                    r.diskUtilization * 100.0);
    };
    report("Segm", segm);
    report("Segm+HDC", segm_hdc);
    report("FOR", forr);
    report("FOR+HDC", for_hdc);
    return 0;
}
