/**
 * @file
 * Capacity-planning example: find the best striping unit for a given
 * workload mix, the decision Figures 7/9/11 inform. Demonstrates
 * sweeping array parameters with the public API.
 *
 * Usage: striping_tuner [avg_file_kb] [streams]
 */

#include <cstdio>
#include <cstdlib>

#include "core/runner.hh"
#include "workload/synthetic.hh"

using namespace dtsim;

int
main(int argc, char** argv)
{
    const std::uint64_t file_kb =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
    const unsigned streams =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 64;

    SyntheticParams wp;
    wp.fileSizeBytes = file_kb * kKiB;
    wp.numRequests = 8000;
    wp.zipfAlpha = 0.6;

    std::printf("tuning striping unit for %llu KB files, %u streams\n",
                static_cast<unsigned long long>(file_kb), streams);
    std::printf("%-10s %-12s %-12s\n", "unit(KB)", "Segm(s)",
                "FOR(s)");

    std::uint64_t best_unit = 0;
    double best_time = 1e300;

    for (std::uint64_t unit_kb : {4, 8, 16, 32, 64, 128, 256}) {
        SystemConfig cfg;
        cfg.streams = streams;
        cfg.stripeUnitBytes = unit_kb * kKiB;

        SyntheticWorkload w = makeSynthetic(
            wp, cfg.disks * cfg.disk.totalBlocks());
        StripingMap striping(cfg.disks,
                             cfg.stripeUnitBytes / cfg.disk.blockSize,
                             cfg.disk.totalBlocks());
        std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        cfg.kind = SystemKind::Segm;
        const RunResult segm = runTrace(cfg, w.trace);
        cfg.kind = SystemKind::FOR;
        const RunResult forr = runTrace(cfg, w.trace, &bitmaps);

        std::printf("%-10llu %-12.3f %-12.3f\n",
                    static_cast<unsigned long long>(unit_kb),
                    toSeconds(segm.ioTime), toSeconds(forr.ioTime));

        if (toSeconds(forr.ioTime) < best_time) {
            best_time = toSeconds(forr.ioTime);
            best_unit = unit_kb;
        }
    }

    std::printf("\nbest striping unit with FOR: %llu KB (%.3f s)\n",
                static_cast<unsigned long long>(best_unit),
                best_time);
    return 0;
}
