/**
 * @file
 * Capacity-planning example: find the best striping unit for a given
 * workload mix, the decision Figures 7/9/11 inform. Demonstrates
 * sweeping array parameters with the public API — the candidate
 * Experiments all run concurrently through Experiment::runAll()
 * (thread count from DTSIM_JOBS).
 *
 * Usage: striping_tuner [avg_file_kb] [streams]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/experiment.hh"
#include "workload/synthetic.hh"

using namespace dtsim;

int
main(int argc, char** argv)
{
    const std::uint64_t file_kb =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
    const unsigned streams =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 64;

    SyntheticParams wp;
    wp.fileSizeBytes = file_kb * kKiB;
    wp.numRequests = 8000;
    wp.zipfAlpha = 0.6;

    std::printf("tuning striping unit for %llu KB files, %u streams\n",
                static_cast<unsigned long long>(file_kb), streams);
    std::printf("%-10s %-12s %-12s\n", "unit(KB)", "Segm(s)",
                "FOR(s)");

    // Build every candidate (unit, system) run, then execute the
    // whole sweep in parallel.
    const std::uint64_t units_kb[] = {4, 8, 16, 32, 64, 128, 256};
    const std::size_t n_units =
        sizeof(units_kb) / sizeof(units_kb[0]);

    // The workload is independent of the striping unit, so one trace
    // serves every candidate; only the FOR bitmaps vary per unit.
    SystemConfig proto;
    proto.streams = streams;
    SyntheticWorkload w = makeSynthetic(
        wp, proto.disks * proto.disk.totalBlocks());

    std::vector<std::vector<LayoutBitmap>> bitmaps(n_units);
    std::vector<Experiment> batch;
    for (std::size_t i = 0; i < n_units; ++i) {
        SystemConfig cfg = proto;
        cfg.stripeUnitBytes = units_kb[i] * kKiB;

        StripingMap striping(cfg.disks,
                             cfg.stripeUnitBytes / cfg.disk.blockSize,
                             cfg.disk.totalBlocks());
        bitmaps[i] = w.image->buildBitmaps(striping);

        Experiment segm(cfg);
        segm.kind(SystemKind::Segm).replay(w.trace);
        batch.push_back(std::move(segm));

        Experiment forr(cfg);
        forr.kind(SystemKind::FOR)
            .replay(w.trace)
            .bitmaps(bitmaps[i]);
        batch.push_back(std::move(forr));
    }

    const std::vector<RunResult> results =
        Experiment::runAll(batch);

    std::uint64_t best_unit = 0;
    double best_time = 1e300;
    for (std::size_t i = 0; i < n_units; ++i) {
        const RunResult& segm = results[i * 2];
        const RunResult& forr = results[i * 2 + 1];

        std::printf("%-10llu %-12.3f %-12.3f\n",
                    static_cast<unsigned long long>(units_kb[i]),
                    toSeconds(segm.ioTime), toSeconds(forr.ioTime));

        if (toSeconds(forr.ioTime) < best_time) {
            best_time = toSeconds(forr.ioTime);
            best_unit = units_kb[i];
        }
    }

    std::printf("\nbest striping unit with FOR: %llu KB (%.3f s)\n",
                static_cast<unsigned long long>(best_unit),
                best_time);
    return 0;
}
