/**
 * @file
 * Host-guided device caching in detail: drives the pin_blk /
 * unpin_blk / flush_hdc command interface directly and compares two
 * host policies for the pinned region:
 *
 *   a) the paper's policy -- pin the blocks causing the most buffer
 *      cache misses (perfect knowledge), and
 *   b) a naive policy -- pin the first blocks of the hottest files.
 *
 * Also shows the write-absorption behavior: dirty pinned blocks stay
 * in the controller until flush_hdc().
 */

#include <cstdio>

#include "core/experiment.hh"
#include "hdc/hdc_planner.hh"
#include "workload/synthetic.hh"

using namespace dtsim;

int
main()
{
    SyntheticParams wp;
    wp.fileSizeBytes = 16 * kKiB;
    wp.numRequests = 10000;
    wp.zipfAlpha = 0.8;         // Strong skew: HDC-friendly.
    wp.writeProb = 0.2;

    SystemConfig cfg;
    cfg.streams = 128;
    cfg.stripeUnitBytes = 128 * kKiB;
    cfg.kind = SystemKind::FOR;
    cfg.hdcBytesPerDisk = 2 * kMiB;

    SyntheticWorkload w =
        makeSynthetic(wp, cfg.disks * cfg.disk.totalBlocks());
    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    // Policy (a): miss-count planner (the paper's).
    const std::vector<ArrayBlock> top_misses = selectPinnedBlocks(
        w.trace, striping, hdcBlocksPerDisk(cfg));

    // Policy (b): naive -- first blocks of the most popular files
    // (rank order), same budget.
    std::vector<ArrayBlock> naive;
    const std::uint64_t budget =
        hdcBlocksPerDisk(cfg) * cfg.disks;
    for (FileId f = 0; naive.size() < budget &&
                       f < w.image->fileCount();
         ++f) {
        const FileLayout& fl = w.image->file(f);
        for (std::uint64_t b = 0;
             b < fl.blocks() && naive.size() < budget; ++b)
            naive.push_back(fl.blockAt(b));
    }

    const RunResult none = Experiment(cfg)
                               .hdcBytesPerDisk(0)
                               .replay(w.trace)
                               .bitmaps(bitmaps)
                               .run();
    const RunResult planned = Experiment(cfg)
                                  .replay(w.trace)
                                  .bitmaps(bitmaps)
                                  .pins(top_misses)
                                  .run();
    const RunResult naive_run = Experiment(cfg)
                                    .replay(w.trace)
                                    .bitmaps(bitmaps)
                                    .pins(naive)
                                    .run();

    auto report = [&](const char* name, const RunResult& r) {
        std::printf("%-22s %8.3f s   hdc-hit %5.1f%%   "
                    "flush %6.1f ms\n",
                    name, toSeconds(r.ioTime), r.hdcHitRate * 100.0,
                    toMillis(r.flushTime));
    };
    report("no HDC", none);
    report("HDC: top-miss blocks", planned);
    report("HDC: naive hot files", naive_run);

    // Direct use of the command interface on a single controller.
    std::printf("\ncommand interface demo:\n");
    EventQueue eq;
    SystemConfig c1 = cfg;
    c1.kind = SystemKind::Segm;
    c1.disks = 1;
    DiskArray array(eq, c1.arrayConfig());
    DiskController& ctl = array.controller(0);

    const bool pinned_ok = ctl.pinBlock(1234);
    std::printf("pin_blk(1234)   -> %s (pinned %llu / %llu blocks)\n",
                pinned_ok ? "ok" : "failed",
                static_cast<unsigned long long>(
                    ctl.hdcPinnedBlocks()),
                static_cast<unsigned long long>(
                    ctl.hdcCapacityBlocks()));

    // A write to a pinned block is absorbed (no media access).
    IoRequest wr;
    wr.start = 1234;
    wr.count = 1;
    wr.isWrite = true;
    bool absorbed = false;
    wr.onComplete = [&](const IoRequest& r, Tick) {
        absorbed = r.served == ServiceClass::HdcHit;
    };
    ctl.submit(std::move(wr));
    eq.run();
    std::printf("write to pinned -> %s\n",
                absorbed ? "absorbed by HDC" : "went to media");

    const std::uint64_t flush_jobs = ctl.flushHdc();
    eq.run();
    std::printf("flush_hdc()     -> %llu media write(s)\n",
                static_cast<unsigned long long>(flush_jobs));

    const bool unpinned = ctl.unpinBlock(1234);
    std::printf("unpin_blk(1234) -> %s\n",
                unpinned ? "ok" : "failed");
    return 0;
}
