/** @file Tests for the shared SCSI bus model. */

#include <gtest/gtest.h>

#include "bus/scsi_bus.hh"

namespace dtsim {
namespace {

TEST(ScsiBus, TransferTimeMatchesRate)
{
    ScsiBus bus(160.0e6, 0);
    // 160 KB at 160 MB/s = 1 ms.
    EXPECT_EQ(bus.transferTime(160000), fromMillis(1.0));
}

TEST(ScsiBus, ArbitrationAddsFixedCost)
{
    ScsiBus bus(160.0e6, fromMicros(2));
    EXPECT_EQ(bus.transferTime(0), fromMicros(2));
}

TEST(ScsiBus, SerializesOverlappingTransfers)
{
    ScsiBus bus(160.0e6, 0);
    const Tick a = bus.transfer(0, 160000);       // Ends at 1 ms.
    EXPECT_EQ(a, fromMillis(1.0));
    const Tick b = bus.transfer(0, 160000);       // Queues behind a.
    EXPECT_EQ(b, fromMillis(2.0));
    EXPECT_EQ(bus.freeAt(), b);
}

TEST(ScsiBus, IdleGapNotCharged)
{
    ScsiBus bus(160.0e6, 0);
    bus.transfer(0, 160000);
    // Next transfer starts later than the bus becomes free.
    const Tick c = bus.transfer(fromMillis(10.0), 160000);
    EXPECT_EQ(c, fromMillis(11.0));
    EXPECT_EQ(bus.busyTime(), fromMillis(2.0));
}

TEST(ScsiBus, UtilizationTracksBusyFraction)
{
    ScsiBus bus(160.0e6, 0);
    bus.transfer(0, 160000);   // 1 ms busy.
    EXPECT_NEAR(bus.utilization(fromMillis(4.0)), 0.25, 1e-9);
    EXPECT_DOUBLE_EQ(bus.utilization(0), 0.0);
}

TEST(ScsiBus, CountsTenures)
{
    ScsiBus bus;
    bus.transfer(0, 100);
    bus.transfer(0, 100);
    EXPECT_EQ(bus.tenures(), 2u);
}

TEST(ScsiBus, ManySmallTransfersAccumulate)
{
    ScsiBus bus(100.0e6, 0);
    Tick end = 0;
    for (int i = 0; i < 1000; ++i)
        end = bus.transfer(0, 100000);   // 1 ms each.
    EXPECT_EQ(end, fromSeconds(1.0));
}

} // namespace
} // namespace dtsim
