/**
 * @file
 * Cross-validation: the paper's closed-form models (Section 4/5)
 * against the simulator, in the regimes where the models hold.
 */

#include <gtest/gtest.h>

#include "analytic/models.hh"
#include "core/runner.hh"
#include "experiment_replay.hh"
#include "hdc/hdc_planner.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace {

/**
 * Single-file sequential streams with one block per record, few
 * streams: the conventional hit-rate model (f-1)/f per block applies
 * to both FOR and (surviving) segment caches.
 */
TEST(CrossValidation, ForHitRateMatchesModelSmallFiles)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::FOR;
    cfg.disks = 4;
    cfg.streams = 8;           // Few streams: no replacement.
    cfg.stripeUnitBytes = 128 * kKiB;

    SyntheticParams sp;
    sp.numFiles = 50000;
    sp.fileSizeBytes = 16 * kKiB;   // f = 4 blocks.
    sp.numRequests = 2000;
    sp.coalesceProb = 0.0;          // One block per record.
    sp.zipfAlpha = 0.0;             // No re-use.
    SyntheticWorkload w =
        makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks());

    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    const RunResult r = test::replayTrace(cfg, w.trace, &bitmaps);

    // Model: hit rate (f-1)/f = 0.75 while streams fit the pool.
    const double model = analytic::forHitRate(
        4.0, static_cast<double>(cfg.disk.cacheBlocks()), 1.0,
        cfg.streams / cfg.disks);
    EXPECT_DOUBLE_EQ(model, 0.75);
    EXPECT_NEAR(r.cacheHitRate, model, 0.03);
}

TEST(CrossValidation, UtilizationReductionMatchesSimulation)
{
    // Section 4's formula-level claim: FOR reduces utilization for
    // small files by cutting r in T(r). Compare media busy time of
    // FOR vs blind for 4 KB files.
    SystemConfig cfg;
    cfg.disks = 4;
    cfg.streams = 16;
    cfg.stripeUnitBytes = 128 * kKiB;

    SyntheticParams sp;
    sp.numFiles = 50000;
    sp.fileSizeBytes = 4 * kKiB;
    sp.numRequests = 2000;
    sp.zipfAlpha = 0.0;
    SyntheticWorkload w =
        makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks());
    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    cfg.kind = SystemKind::Segm;
    const RunResult segm =
        test::replayTrace(cfg, w.trace, &bitmaps);
    cfg.kind = SystemKind::FOR;
    const RunResult forr =
        test::replayTrace(cfg, w.trace, &bitmaps);

    const double measured =
        1.0 - static_cast<double>(forr.agg.mediaBusy) /
                  static_cast<double>(segm.agg.mediaBusy);
    const double model = analytic::utilizationReduction(
        cfg.disk, 4 * kKiB, 128 * kKiB);
    // Section 4 quotes 29% for these parameters. The simulated
    // reduction is larger because LOOK shortens the seeks the model
    // takes at their random-access average, which inflates the
    // share of the (eliminated) transfer time; the model is a lower
    // bound.
    EXPECT_NEAR(model, 0.29, 0.03);
    EXPECT_GE(measured, model - 0.02);
    EXPECT_LE(measured, model + 0.20);
}

TEST(CrossValidation, HdcHitRateTracksZipfMass)
{
    // Section 5's model: array-wide HDC of H blocks yields hit rate
    // ~ z_alpha(H, N). With single-block files (so request-level and
    // block-level rates coincide) and an oracle-warmed trace, the
    // simulated HDC hit rate should land near the Zipf mass.
    SystemConfig cfg;
    cfg.kind = SystemKind::Segm;
    cfg.disks = 4;
    cfg.streams = 16;
    cfg.stripeUnitBytes = 4 * kKiB;
    cfg.hdcBytesPerDisk = 2 * kMiB;

    SyntheticParams sp;
    sp.numFiles = 100000;           // N single-block files.
    sp.fileSizeBytes = 4 * kKiB;
    sp.numRequests = 40000;
    sp.zipfAlpha = 0.8;
    SyntheticWorkload w =
        makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks());

    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);
    const std::vector<ArrayBlock> pinned = selectPinnedBlocks(
        w.trace, striping, hdcBlocksPerDisk(cfg));

    const RunResult r =
        test::replayTrace(cfg, w.trace, &bitmaps, &pinned);

    const std::uint64_t h = hdcBlocksPerDisk(cfg) * cfg.disks;
    const double model =
        analytic::zipfTopMass(h, sp.numFiles, sp.zipfAlpha);
    // The oracle planner beats the pure-popularity model slightly;
    // allow a generous band.
    EXPECT_NEAR(r.hdcHitRate, model, 0.10);
    EXPECT_GT(r.hdcHitRate, model * 0.8);
}

TEST(CrossValidation, AverageSeekAgreesWithMechanism)
{
    // averageSeekMs (analytic) vs the mechanism measured over random
    // accesses: both should give the drive's ~3.4 ms.
    DiskParams p;
    DiskGeometry geom(p);
    DiskMechanism mech(p, geom);
    Rng rng(61);
    double total = 0.0;
    const int n = 20000;
    Tick now = 0;
    for (int i = 0; i < n; ++i) {
        MediaAccess acc;
        acc.startSector = rng.below(geom.totalSectors() - 8);
        acc.sectorCount = 8;
        const ServiceTiming t = mech.service(acc, now);
        total += toMillis(t.seek);
        now += t.total();
    }
    EXPECT_NEAR(total / n, analytic::averageSeekMs(p), 0.15);
}

} // namespace
} // namespace dtsim
