/** @file Tests for RAID-0 striping address translation and splitting. */

#include <gtest/gtest.h>

#include "array/striping.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

TEST(StripingMap, RoundRobinPlacement)
{
    StripingMap m(4, 8, 1024);
    // First unit on disk 0, second on disk 1, ...
    EXPECT_EQ(m.toPhysical(0), (PhysicalLoc{0, 0}));
    EXPECT_EQ(m.toPhysical(7), (PhysicalLoc{0, 7}));
    EXPECT_EQ(m.toPhysical(8), (PhysicalLoc{1, 0}));
    EXPECT_EQ(m.toPhysical(31), (PhysicalLoc{3, 7}));
    // Fifth unit wraps to disk 0's second unit.
    EXPECT_EQ(m.toPhysical(32), (PhysicalLoc{0, 8}));
}

TEST(StripingMap, RoundTripRandomBlocks)
{
    StripingMap m(8, 32, 1 << 20);
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
        const ArrayBlock lb = rng.below(m.totalBlocks());
        const PhysicalLoc loc = m.toPhysical(lb);
        ASSERT_LT(loc.disk, 8u);
        ASSERT_EQ(m.toLogical(loc.disk, loc.block), lb);
    }
}

TEST(StripingMap, SingleDiskIsIdentity)
{
    StripingMap m(1, 32, 1000000);
    for (ArrayBlock lb = 0; lb < 1000; lb += 13) {
        EXPECT_EQ(m.toPhysical(lb).disk, 0u);
        EXPECT_EQ(m.toPhysical(lb).block, lb);
    }
}

TEST(StripingMap, SplitWithinOneUnit)
{
    StripingMap m(4, 8, 1024);
    const auto subs = m.split(2, 4);
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0].disk, 0u);
    EXPECT_EQ(subs[0].start, 2u);
    EXPECT_EQ(subs[0].count, 4u);
    EXPECT_EQ(subs[0].logicalOffset, 0u);
}

TEST(StripingMap, SplitAcrossUnits)
{
    StripingMap m(4, 8, 1024);
    const auto subs = m.split(6, 8);   // Blocks 6..13.
    ASSERT_EQ(subs.size(), 2u);
    EXPECT_EQ(subs[0].disk, 0u);
    EXPECT_EQ(subs[0].start, 6u);
    EXPECT_EQ(subs[0].count, 2u);
    EXPECT_EQ(subs[1].disk, 1u);
    EXPECT_EQ(subs[1].start, 0u);
    EXPECT_EQ(subs[1].count, 6u);
    EXPECT_EQ(subs[1].logicalOffset, 2u);
}

TEST(StripingMap, SplitLargeRequestTouchesAllDisks)
{
    StripingMap m(4, 8, 1024);
    const auto subs = m.split(0, 64);   // 8 units over 4 disks.
    // Units 0..7; disks 0,1,2,3,0,1,2,3 -- adjacent same-disk units
    // are NOT physically contiguous, so 8 sub-ranges.
    EXPECT_EQ(subs.size(), 8u);
    std::uint64_t total = 0;
    for (const auto& s : subs)
        total += s.count;
    EXPECT_EQ(total, 64u);
}

TEST(StripingMap, SplitMergesContiguousOnSingleDisk)
{
    StripingMap m(1, 8, 1024);
    const auto subs = m.split(0, 64);
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0].count, 64u);
}

TEST(StripingMap, SplitCoversExactlyOnce)
{
    StripingMap m(8, 32, 1 << 20);
    Rng rng(43);
    for (int i = 0; i < 1000; ++i) {
        const ArrayBlock start = rng.below((1 << 20) - 600);
        const std::uint64_t count = 1 + rng.below(512);
        std::uint64_t covered = 0;
        for (const auto& s : m.split(start, count)) {
            for (std::uint64_t k = 0; k < s.count; ++k) {
                const ArrayBlock lb =
                    m.toLogical(s.disk, s.start + k);
                ASSERT_EQ(lb, start + s.logicalOffset + k);
            }
            covered += s.count;
        }
        ASSERT_EQ(covered, count);
    }
}

/** The paper's Section 2.2: unit size vs. sub-request count. */
class SplitSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SplitSweep, SubRequestCountMatchesUnits)
{
    const std::uint64_t unit = GetParam();
    StripingMap m(8, unit, 1 << 20);
    const std::uint64_t req = 64;   // 256 KB.
    const auto subs = m.split(0, req);
    const std::uint64_t expect = (req + unit - 1) / unit;
    EXPECT_EQ(subs.size(), std::min<std::uint64_t>(expect, expect));
    EXPECT_EQ(subs.size(), expect);
}

INSTANTIATE_TEST_SUITE_P(Units, SplitSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64,
                                           128));

} // namespace
} // namespace dtsim
