/** @file Integration tests for the disk controller. */

#include <gtest/gtest.h>

#include <memory>

#include "bus/scsi_bus.hh"
#include "controller/disk_controller.hh"
#include "sim/event_queue.hh"

namespace dtsim {
namespace {

/** A controller on a small test drive with convenient helpers. */
struct Rig
{
    EventQueue eq;
    ScsiBus bus;
    DiskParams params;
    ControllerConfig cfg;
    std::unique_ptr<DiskController> ctl;
    std::unique_ptr<LayoutBitmap> bitmap;

    explicit Rig(ControllerConfig c = {}, std::uint64_t hdc = 0)
        : cfg(c)
    {
        cfg.hdcBytes = hdc;
        ctl = std::make_unique<DiskController>(eq, bus, params, cfg,
                                               0);
        bitmap = std::make_unique<LayoutBitmap>(params.totalBlocks());
        ctl->setBitmap(bitmap.get());
    }

    /** Submit a request and run to completion; returns its class. */
    ServiceClass
    doRequest(BlockNum start, std::uint64_t count, bool write = false)
    {
        ServiceClass served = ServiceClass::Media;
        Tick done = 0;
        IoRequest req;
        req.start = start;
        req.count = count;
        req.isWrite = write;
        req.onComplete = [&](const IoRequest& r, Tick when) {
            served = r.served;
            done = when;
        };
        ctl->submit(std::move(req));
        eq.run();
        EXPECT_GT(done, 0u);
        return served;
    }
};

TEST(DiskController, ColdReadGoesToMedia)
{
    Rig r;
    EXPECT_EQ(r.doRequest(1000, 4), ServiceClass::Media);
    EXPECT_EQ(r.ctl->stats().reads, 1u);
    EXPECT_EQ(r.ctl->stats().mediaAccesses, 1u);
    EXPECT_GT(r.ctl->stats().mediaBusy, 0u);
}

TEST(DiskController, BlindReadAheadFillsSegment)
{
    Rig r;   // Default: Segment org, blind RA, 128 KB segments.
    r.doRequest(1000, 4);
    // 4 demanded + 28 read-ahead = 32 blocks (128 KB).
    EXPECT_EQ(r.ctl->stats().mediaBlocks, 4u);
    EXPECT_EQ(r.ctl->stats().readAheadBlocks, 28u);
    // The read-ahead data serves the sequential continuation.
    EXPECT_EQ(r.doRequest(1004, 4), ServiceClass::CacheHit);
    EXPECT_EQ(r.ctl->stats().mediaAccesses, 1u);
}

TEST(DiskController, NoReadAheadReadsExactly)
{
    ControllerConfig c;
    c.org = CacheOrg::Block;
    c.readAhead = ReadAheadMode::None;
    Rig r(c);
    r.doRequest(1000, 4);
    EXPECT_EQ(r.ctl->stats().readAheadBlocks, 0u);
    // The next sequential blocks were never fetched.
    EXPECT_EQ(r.doRequest(1004, 4), ServiceClass::Media);
}

TEST(DiskController, ForReadsToEndOfFileOnly)
{
    ControllerConfig c;
    c.org = CacheOrg::Block;
    c.readAhead = ReadAheadMode::FOR;
    Rig r(c);
    // A 8-block file at 1000: continuation bits 1001..1007.
    for (BlockNum b = 1001; b < 1008; ++b)
        r.bitmap->set(b, true);

    r.doRequest(1000, 2);
    // Demanded 2, read ahead to the end of the file: 6 more.
    EXPECT_EQ(r.ctl->stats().readAheadBlocks, 6u);
    EXPECT_EQ(r.doRequest(1002, 6), ServiceClass::CacheHit);
    // Beyond the file: media again.
    EXPECT_EQ(r.doRequest(1008, 2), ServiceClass::Media);
}

TEST(DiskController, ForReadAheadCappedAtSegmentSize)
{
    ControllerConfig c;
    c.org = CacheOrg::Block;
    c.readAhead = ReadAheadMode::FOR;
    Rig r(c);
    for (BlockNum b = 1001; b < 1200; ++b)
        r.bitmap->set(b, true);
    r.doRequest(1000, 2);
    // Budget = 32-block max read minus the 2 demanded.
    EXPECT_EQ(r.ctl->stats().readAheadBlocks, 30u);
}

TEST(DiskController, PartialPrefixHitShortensMediaAccess)
{
    Rig r;
    r.doRequest(1000, 4);   // Caches 1000..1031.
    r.doRequest(1030, 4);   // 1030,1031 cached; 1032,1033 missing.
    EXPECT_EQ(r.ctl->stats().mediaAccesses, 2u);
    EXPECT_EQ(r.ctl->stats().mediaBlocks, 4u + 2u);
    EXPECT_EQ(r.ctl->stats().raHitBlocks, 2u);
}

TEST(DiskController, WriteGoesToMediaAndInvalidates)
{
    Rig r;
    r.doRequest(1000, 4);
    EXPECT_EQ(r.doRequest(1004, 2, true), ServiceClass::Media);
    EXPECT_EQ(r.ctl->stats().writes, 1u);
    // The overwritten blocks are no longer served from cache.
    EXPECT_EQ(r.doRequest(1004, 2), ServiceClass::Media);
}

TEST(DiskController, WritesDoNotReadAhead)
{
    Rig r;
    r.doRequest(1000, 4, true);
    EXPECT_EQ(r.ctl->stats().readAheadBlocks, 0u);
}

TEST(DiskController, HdcPinServesReads)
{
    Rig r({}, 256 * kKiB);
    for (BlockNum b = 500; b < 504; ++b)
        EXPECT_TRUE(r.ctl->pinBlock(b));
    EXPECT_EQ(r.doRequest(500, 4), ServiceClass::HdcHit);
    EXPECT_EQ(r.ctl->stats().mediaAccesses, 0u);
    EXPECT_EQ(r.ctl->stats().hdcHitRequests, 1u);
    EXPECT_EQ(r.ctl->stats().hdcHitBlocks, 4u);
}

TEST(DiskController, HdcAbsorbsFullyPinnedWrites)
{
    Rig r({}, 256 * kKiB);
    r.ctl->pinBlock(500);
    r.ctl->pinBlock(501);
    EXPECT_EQ(r.doRequest(500, 2, true), ServiceClass::HdcHit);
    EXPECT_EQ(r.ctl->stats().mediaAccesses, 0u);
    // flush_hdc() pushes the dirty data out as one coalesced write.
    EXPECT_EQ(r.ctl->flushHdc(), 1u);
    r.eq.run();
    EXPECT_EQ(r.ctl->stats().flushWrites, 1u);
    EXPECT_EQ(r.ctl->stats().mediaAccesses, 1u);
}

TEST(DiskController, PartiallyPinnedWriteGoesToMedia)
{
    Rig r({}, 256 * kKiB);
    r.ctl->pinBlock(500);
    EXPECT_EQ(r.doRequest(500, 2, true), ServiceClass::Media);
}

TEST(DiskController, UnpinDirtyBlockWritesBack)
{
    Rig r({}, 256 * kKiB);
    r.ctl->pinBlock(500);
    r.doRequest(500, 1, true);   // Absorbed, dirty.
    EXPECT_TRUE(r.ctl->unpinBlock(500));
    r.eq.run();
    EXPECT_EQ(r.ctl->stats().flushWrites, 1u);
}

TEST(DiskController, HdcCarvesCacheBudget)
{
    Rig plain;
    Rig with_hdc({}, 2 * kMiB);
    EXPECT_LT(with_hdc.ctl->raCacheBlocks(),
              plain.ctl->raCacheBlocks());
    EXPECT_EQ(with_hdc.ctl->hdcCapacityBlocks(), 512u);
}

TEST(DiskController, ForBitmapCarvesCacheBudget)
{
    ControllerConfig seg;
    seg.org = CacheOrg::Block;
    seg.readAhead = ReadAheadMode::Blind;
    Rig blind(seg);
    ControllerConfig forr;
    forr.org = CacheOrg::Block;
    forr.readAhead = ReadAheadMode::FOR;
    Rig with_for(forr);
    EXPECT_LT(with_for.ctl->raCacheBlocks(),
              blind.ctl->raCacheBlocks());
}

TEST(DiskController, SegmentCountMatchesTable1)
{
    Rig r;
    // 4 MB cache minus the firmware reservation: 27 segments.
    EXPECT_EQ(r.ctl->raCacheBlocks(), 27u * 32u);
}

TEST(DiskController, QueuedRequestsAllComplete)
{
    Rig r;
    int completed = 0;
    for (int i = 0; i < 50; ++i) {
        IoRequest req;
        req.start = static_cast<BlockNum>(i) * 10000;
        req.count = 4;
        req.onComplete = [&](const IoRequest&, Tick) { ++completed; };
        r.ctl->submit(std::move(req));
    }
    r.eq.run();
    EXPECT_EQ(completed, 50);
    EXPECT_EQ(r.ctl->outstanding(), 0u);
}

TEST(DiskController, RejectsInvalidRequests)
{
    Rig r;
    IoRequest past_end;
    past_end.start = r.params.totalBlocks();
    past_end.count = 1;
    EXPECT_DEATH(
        {
            Rig r2;
            IoRequest bad;
            bad.start = r2.params.totalBlocks();
            bad.count = 1;
            r2.ctl->submit(std::move(bad));
        },
        "past end");
}

} // namespace
} // namespace dtsim
