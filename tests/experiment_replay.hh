/**
 * @file
 * Test helper: replay a prepared trace through the Experiment facade.
 *
 * The deprecated direct runTrace() overloads that tests used to call
 * are gone (core/run_impl.hh is internal to the facade and the sweep
 * pool); this wrapper reproduces their exact semantics on top of
 * Experiment. In particular, passing no pin plan means *no pins*: an
 * explicit empty plan suppresses the facade's automatic pin-plan
 * derivation, matching what the direct calls did.
 */

#ifndef DTSIM_TESTS_EXPERIMENT_REPLAY_HH
#define DTSIM_TESTS_EXPERIMENT_REPLAY_HH

#include <vector>

#include "core/experiment.hh"

namespace dtsim {
namespace test {

inline RunResult
replayTrace(const SystemConfig& cfg, const Trace& trace,
            const std::vector<LayoutBitmap>* bitmaps = nullptr,
            const std::vector<ArrayBlock>* pinned = nullptr,
            const RunOptions& opts = RunOptions{})
{
    static const std::vector<ArrayBlock> no_pins;
    Experiment e(cfg);
    e.replay(trace).options(opts);
    if (bitmaps)
        e.bitmaps(*bitmaps);
    e.pins(pinned ? *pinned : no_pins);
    return e.run();
}

} // namespace test
} // namespace dtsim

#endif // DTSIM_TESTS_EXPERIMENT_REPLAY_HH
