/** @file Tests for zoned (multi-rate) recording. */

#include <gtest/gtest.h>

#include "disk/mechanism.hh"
#include "disk/zones.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

DiskParams
smallDisk()
{
    DiskParams p;
    p.capacityBytes = 256ULL * kMiB;
    p.heads = 4;
    return p;
}

TEST(ZonedGeometry, ExplicitTableTiles)
{
    DiskParams p = smallDisk();
    std::vector<Zone> zones{
        {0, 100, 440, 0},
        {100, 100, 380, 0},
        {200, 100, 340, 0},
    };
    ZonedGeometry g(p, zones);
    EXPECT_EQ(g.cylinders(), 300u);
    EXPECT_EQ(g.totalSectors(),
              100ull * 4 * 440 + 100ull * 4 * 380 +
                  100ull * 4 * 340);
    EXPECT_EQ(g.zones()[1].firstSector, 100ull * 4 * 440);
}

TEST(ZonedGeometry, GapInTableIsFatal)
{
    DiskParams p = smallDisk();
    std::vector<Zone> zones{
        {0, 100, 440, 0},
        {150, 100, 380, 0},   // Gap at cylinder 100.
    };
    EXPECT_DEATH({ ZonedGeometry g(p, zones); }, "tile");
}

TEST(ZonedGeometry, ZoneLookupsByBoundary)
{
    DiskParams p = smallDisk();
    std::vector<Zone> zones{
        {0, 10, 100, 0},
        {10, 10, 50, 0},
    };
    ZonedGeometry g(p, zones);
    const SectorNum z0 = 10ull * 4 * 100;
    EXPECT_EQ(g.sectorToZone(0), 0u);
    EXPECT_EQ(g.sectorToZone(z0 - 1), 0u);
    EXPECT_EQ(g.sectorToZone(z0), 1u);
    EXPECT_EQ(g.cylinderToZone(9), 0u);
    EXPECT_EQ(g.cylinderToZone(10), 1u);
}

TEST(ZonedGeometry, RoundTripAcrossZones)
{
    DiskParams p = smallDisk();
    ZonedGeometry g = ZonedGeometry::makeDefault(p, 6, 440, 340);
    Rng rng(51);
    for (int i = 0; i < 10000; ++i) {
        const SectorNum s = rng.below(g.totalSectors());
        const Chs chs = g.sectorToChs(s);
        ASSERT_EQ(g.chsToSector(chs), s);
        ASSERT_LT(chs.cylinder, g.cylinders());
        ASSERT_LT(chs.sector, g.sectorsPerTrackAt(s));
    }
}

TEST(ZonedGeometry, DefaultCoversCapacity)
{
    DiskParams p;   // The real drive.
    ZonedGeometry g = ZonedGeometry::makeDefault(p, 8);
    EXPECT_GE(g.totalSectors(), p.totalSectors());
    EXPECT_EQ(g.zones().size(), 8u);
    EXPECT_EQ(g.zones().front().sectorsPerTrack, 440u);
    EXPECT_EQ(g.zones().back().sectorsPerTrack, 340u);
}

TEST(ZonedGeometry, OuterZoneTransfersFaster)
{
    DiskParams p;
    ZonedGeometry g = ZonedGeometry::makeDefault(p, 8);
    const Tick rev = p.revolutionTime();
    const Tick outer = g.transferTime(0, 880, rev);
    const Tick inner = g.transferTime(
        g.totalSectors() - 1000, 880, rev);
    EXPECT_LT(outer, inner);
    // Rates differ by the 440:340 track-capacity ratio.
    EXPECT_NEAR(static_cast<double>(inner) /
                    static_cast<double>(outer),
                440.0 / 340.0, 0.02);
}

TEST(ZonedGeometry, TransferSpanningZonesSumsRates)
{
    DiskParams p = smallDisk();
    std::vector<Zone> zones{
        {0, 10, 100, 0},
        {10, 10, 50, 0},
    };
    ZonedGeometry g(p, zones);
    const Tick rev = fromMillis(4.0);
    const SectorNum boundary = 10ull * 4 * 100;
    // 100 sectors before + 50 after: exactly 1 + 1 revolutions.
    const Tick t =
        g.transferTime(boundary - 100, 150, rev);
    EXPECT_NEAR(static_cast<double>(t),
                static_cast<double>(2 * rev), 2.0);
}

TEST(ZonedMechanism, ZonedTransferUsedWhenAttached)
{
    DiskParams p;
    DiskGeometry flat(p);
    ZonedGeometry zoned = ZonedGeometry::makeDefault(p, 8);

    DiskMechanism plain(p, flat);
    DiskMechanism with_zones(p, flat);
    with_zones.setZonedGeometry(&zoned);

    // An outer-zone access is faster than the flat average rate.
    MediaAccess acc{0, 880, false};
    const Tick t_flat = plain.service(acc, 0).transfer;
    const Tick t_zoned = with_zones.service(acc, 0).transfer;
    EXPECT_LT(t_zoned, t_flat);
}

TEST(ZonedMechanism, ControllerParamsEnableZones)
{
    // End-to-end: a controller with recordingZones reads the outer
    // zone faster than the flat one.
    // (Covered more cheaply at the mechanism level above; here we
    // only check construction does not blow up.)
    DiskParams p;
    p.recordingZones = 8;
    EXPECT_GT(ZonedGeometry::makeDefault(p, p.recordingZones)
                  .totalSectors(),
              0u);
}

} // namespace
} // namespace dtsim
