/** @file Tests for derived drive parameters (Table 1 consistency). */

#include <gtest/gtest.h>

#include "disk/disk_params.hh"

namespace dtsim {
namespace {

TEST(DiskParams, Table1Defaults)
{
    DiskParams p;
    EXPECT_EQ(p.capacityBytes, 18ULL * 1000 * 1000 * 1000);
    EXPECT_EQ(p.rpm, 15000u);
    EXPECT_EQ(p.blockSize, 4096u);
    EXPECT_EQ(p.cacheBytes, 4 * kMiB);
    EXPECT_EQ(p.segmentBytes, 128 * kKiB);
    EXPECT_DOUBLE_EQ(p.xferRateBytesPerSec, 54.0e6);
}

TEST(DiskParams, DerivedBlockCounts)
{
    DiskParams p;
    EXPECT_EQ(p.totalBlocks(), 4394531u);
    EXPECT_EQ(p.sectorsPerBlock(), 8u);
    EXPECT_EQ(p.totalSectors(), 4394531ull * 8);
}

TEST(DiskParams, SegmentCountsMatchTable1)
{
    DiskParams p;
    p.segmentBytes = 128 * kKiB;
    EXPECT_EQ(p.numSegments(), 27u);
    p.segmentBytes = 256 * kKiB;
    EXPECT_EQ(p.numSegments(), 13u);
    p.segmentBytes = 512 * kKiB;
    EXPECT_EQ(p.numSegments(), 6u);
}

TEST(DiskParams, UsableCacheSubtractsReservation)
{
    DiskParams p;
    EXPECT_EQ(p.usableCacheBytes(),
              4 * kMiB - 576 * kKiB);
    EXPECT_EQ(p.cacheBlocks(), p.usableCacheBytes() / 4096);
    p.cacheReservedBytes = p.cacheBytes + 1;
    EXPECT_EQ(p.usableCacheBytes(), 0u);
}

TEST(DiskParams, RevolutionTimeFromRpm)
{
    DiskParams p;
    EXPECT_EQ(p.revolutionTime(), fromMillis(4.0));
    p.rpm = 10000;
    EXPECT_EQ(p.revolutionTime(), fromMillis(6.0));
}

TEST(DiskParams, BitmapBytesOneBitPerBlock)
{
    DiskParams p;
    EXPECT_EQ(p.bitmapBytes(), (p.totalBlocks() + 7) / 8);
}

TEST(DiskParams, MediaRateMatchesRawRate)
{
    // 422 sectors/track at 250 rev/s of 512 B sectors = 54 MB/s.
    DiskParams p;
    const double rate = p.sectorsPerTrack * 512.0 *
                        (p.rpm / 60.0);
    EXPECT_NEAR(rate, p.xferRateBytesPerSec, 0.05e6);
}

} // namespace
} // namespace dtsim
