/**
 * @file
 * Tests for the fault-injection subsystem: the script parsers, the
 * per-disk DiskFaults state machine (media errors, remaps, stalls,
 * backoff, seed stability), the retry/remap accounting observed
 * through a whole array, and the all-faults-off guarantees (no
 * fault.* header lines, no sim.fault group, identical timings).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "array/disk_array.hh"
#include "core/experiment.hh"
#include "stats_text.hh"
#include "fault/fault_config.hh"
#include "fault/fault_model.hh"
#include "sim/event_queue.hh"

namespace dtsim {
namespace {

// ---------------------------------------------------------------------
// Script parsers.
// ---------------------------------------------------------------------

TEST(FaultParsers, BadBlocksGood)
{
    std::vector<BadBlockSpec> specs;
    std::string err;
    ASSERT_TRUE(fault::parseBadBlocks("0:5,2:100", specs, err));
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].disk, 0u);
    EXPECT_EQ(specs[0].block, 5u);
    EXPECT_EQ(specs[1].disk, 2u);
    EXPECT_EQ(specs[1].block, 100u);

    ASSERT_TRUE(fault::parseBadBlocks("", specs, err));
    EXPECT_TRUE(specs.empty());
}

TEST(FaultParsers, BadBlocksMalformed)
{
    std::vector<BadBlockSpec> specs;
    std::string err;
    for (const char* bad :
         {"5", "0:", ":5", "0:5x", "a:5", "0:5,,1:2", "0:5,"}) {
        err.clear();
        EXPECT_FALSE(fault::parseBadBlocks(bad, specs, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(FaultParsers, StallWindowsGood)
{
    std::vector<StallWindow> windows;
    std::string err;
    ASSERT_TRUE(
        fault::parseStallWindows("1000:500,2000:1", windows, err));
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0].start, 1000u);
    EXPECT_EQ(windows[0].duration, 500u);
    EXPECT_EQ(windows[1].start, 2000u);
    EXPECT_EQ(windows[1].duration, 1u);

    ASSERT_TRUE(fault::parseStallWindows("", windows, err));
    EXPECT_TRUE(windows.empty());
}

TEST(FaultParsers, StallWindowsMalformed)
{
    std::vector<StallWindow> windows;
    std::string err;
    for (const char* bad : {"1000", "x:5", "5:", ":5", "1:2,bad"}) {
        err.clear();
        EXPECT_FALSE(fault::parseStallWindows(bad, windows, err))
            << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

// ---------------------------------------------------------------------
// DiskFaults: the per-disk state machine.
// ---------------------------------------------------------------------

TEST(DiskFaults, ScriptedBadBlockFailsUntilRemapped)
{
    FaultConfig cfg;
    cfg.badBlocks = "0:10";
    FaultCounters c;
    DiskFaults df(cfg, 0, c);

    // Any attempt overlapping the bad block fails, every time.
    EXPECT_TRUE(df.attemptFails(10, 1));
    EXPECT_TRUE(df.attemptFails(8, 4));
    EXPECT_FALSE(df.attemptFails(11, 2));
    EXPECT_FALSE(df.attemptFails(0, 10));

    // Remapping moves it to the spare region: attempts succeed but
    // the range now pays the permanent penalty.
    EXPECT_FALSE(df.touchesRemapped(10, 1));
    EXPECT_EQ(df.remapRange(8, 4), 1u);
    EXPECT_FALSE(df.attemptFails(10, 1));
    EXPECT_TRUE(df.touchesRemapped(10, 1));
    EXPECT_TRUE(df.touchesRemapped(8, 4));
    EXPECT_FALSE(df.touchesRemapped(11, 1));
}

TEST(DiskFaults, BadBlocksApplyOnlyToTheirDisk)
{
    FaultConfig cfg;
    cfg.badBlocks = "1:10";
    FaultCounters c;
    DiskFaults d0(cfg, 0, c);
    DiskFaults d1(cfg, 1, c);
    EXPECT_FALSE(d0.attemptFails(10, 1));
    EXPECT_TRUE(d1.attemptFails(10, 1));
}

TEST(DiskFaults, ProbabilisticRemapBlamesFirstBlock)
{
    FaultConfig cfg;          // No scripted bad blocks.
    FaultCounters c;
    DiskFaults df(cfg, 0, c);
    EXPECT_EQ(df.remapRange(40, 8), 1u);
    EXPECT_TRUE(df.touchesRemapped(40, 1));
    EXPECT_FALSE(df.touchesRemapped(41, 7));
}

TEST(DiskFaults, MediaErrorStreamIsSeedStable)
{
    FaultConfig cfg;
    cfg.mediaErrorRate = 0.3;
    cfg.seed = 42;

    auto sequence = [](const FaultConfig& fc, unsigned disk) {
        FaultCounters c;
        DiskFaults df(fc, disk, c);
        std::string s;
        for (int i = 0; i < 200; ++i)
            s += df.attemptFails(0, 1) ? '1' : '0';
        return s;
    };

    // Same seed + disk: identical decisions. Different disk or seed:
    // an independent stream.
    EXPECT_EQ(sequence(cfg, 0), sequence(cfg, 0));
    EXPECT_NE(sequence(cfg, 0), sequence(cfg, 1));
    FaultConfig other = cfg;
    other.seed = 43;
    EXPECT_NE(sequence(cfg, 0), sequence(other, 0));
}

TEST(DiskFaults, ScriptedStallDelaysToWindowEnd)
{
    FaultConfig cfg;
    cfg.stallWindows = "1000:500";
    FaultCounters c;
    DiskFaults df(cfg, 0, c);

    EXPECT_EQ(df.dispatchDelay(999), 0u);   // Before the window.
    EXPECT_EQ(df.dispatchDelay(1000), 500u);
    EXPECT_EQ(df.dispatchDelay(1200), 300u);
    EXPECT_EQ(df.dispatchDelay(1500), 0u);  // Window already over.

    EXPECT_EQ(c.stalls, 2u);
    EXPECT_EQ(c.stallTicks, 800u);
}

TEST(DiskFaults, TimeoutBackoffDoublesUpToCap)
{
    FaultConfig cfg;
    cfg.timeoutRate = 1.0;     // Every dispatch times out.
    cfg.backoffUs = 100.0;
    cfg.backoffMaxUs = 400.0;
    FaultCounters c;
    DiskFaults df(cfg, 0, c);

    EXPECT_EQ(df.dispatchDelay(0), fromMicros(100.0));
    EXPECT_EQ(df.dispatchDelay(0), fromMicros(200.0));
    EXPECT_EQ(df.dispatchDelay(0), fromMicros(400.0));
    EXPECT_EQ(df.dispatchDelay(0), fromMicros(400.0));
    EXPECT_EQ(c.stalls, 4u);
    EXPECT_EQ(c.stallTicks, fromMicros(1100.0));
}

TEST(DiskFaults, CleanDispatchResetsBackoff)
{
    // With no probabilistic timeouts the backoff path is never
    // entered and the delay is always zero -- the faults-off fast
    // path a controller relies on.
    FaultConfig cfg;
    FaultCounters c;
    DiskFaults df(cfg, 0, c);
    for (Tick t = 0; t < 10; ++t)
        EXPECT_EQ(df.dispatchDelay(t * 1000), 0u);
    EXPECT_EQ(c.stalls, 0u);
}

// ---------------------------------------------------------------------
// Array-level accounting: retries, remaps, stalls.
// ---------------------------------------------------------------------

struct FaultRig
{
    EventQueue eq;
    ArrayConfig cfg;
    std::unique_ptr<DiskArray> array;

    explicit FaultRig(const FaultConfig& fault)
    {
        cfg.disks = 1;
        cfg.fault = fault;
        array = std::make_unique<DiskArray>(eq, cfg);
    }

    void
    doRequest(ArrayBlock start, std::uint64_t count, bool write)
    {
        ArrayRequest req;
        req.start = start;
        req.count = count;
        req.isWrite = write;
        array->submit(std::move(req));
        eq.run();
    }
};

TEST(FaultArray, RetryThenRemapAccounting)
{
    FaultConfig fault;
    fault.badBlocks = "0:0";   // Logical block 0 -> disk 0, block 0.
    fault.maxRetries = 2;
    FaultRig r(fault);

    // A persistent bad block burns the whole retry budget: the
    // initial attempt plus maxRetries retries all fail, then the
    // block is remapped.
    r.doRequest(0, 1, true);
    FaultCounters c = r.array->faultCounters();
    EXPECT_EQ(c.mediaErrors, 3u);
    EXPECT_EQ(c.retries, 2u);
    EXPECT_GT(c.retryTicks, 0u);
    EXPECT_EQ(c.remapEvents, 1u);
    EXPECT_EQ(c.remappedBlocks, 1u);
    EXPECT_EQ(c.remappedAccesses, 0u);

    // Later accesses succeed but pay the permanent remap penalty.
    r.doRequest(0, 1, true);
    c = r.array->faultCounters();
    EXPECT_EQ(c.mediaErrors, 3u);
    EXPECT_EQ(c.retries, 2u);
    EXPECT_EQ(c.remapEvents, 1u);
    EXPECT_EQ(c.remappedAccesses, 1u);
}

TEST(FaultArray, ScriptedStallChargesDispatch)
{
    FaultConfig fault;
    fault.stallWindows = "0:100000";   // Stalled from tick 0.
    FaultRig r(fault);

    r.doRequest(0, 1, false);
    const FaultCounters c = r.array->faultCounters();
    EXPECT_GE(c.stalls, 1u);
    EXPECT_GT(c.stallTicks, 0u);
    EXPECT_EQ(c.mediaErrors, 0u);
}

TEST(FaultArray, FaultsOffKeepsCountersZero)
{
    FaultConfig fault;   // Default: everything off.
    FaultRig r(fault);
    EXPECT_FALSE(r.array->faultsEnabled());
    r.doRequest(0, 8, false);
    EXPECT_FALSE(r.array->faultCounters().any());
}

// ---------------------------------------------------------------------
// End-to-end: headers, stats dumps, and the faults-off fast path.
// ---------------------------------------------------------------------

SimulationConfig
smallSim()
{
    SimulationConfig sim;
    sim.synthetic.numRequests = 300;
    sim.synthetic.numFiles = 2000;
    sim.synthetic.seed = 7;
    sim.system.seed = 7;
    return sim;
}

std::pair<std::string, RunResult>
runToString(const SimulationConfig& sim)
{
    Experiment exp(sim);
    std::ostringstream stats;
    exp.statsTo(StatsSink::stream(stats));
    const RunResult r = exp.run();
    return {stats.str(), r};
}

TEST(FaultEndToEnd, FaultsOffLeavesNoTraceInDump)
{
    const auto [dump, r] = runToString(smallSim());
    EXPECT_EQ(dump.find("#conf fault."), std::string::npos);
    EXPECT_EQ(dump.find("sim.fault."), std::string::npos);
    EXPECT_FALSE(r.faults.any());
}

TEST(FaultEndToEnd, FaultsOnStampHeaderAndStats)
{
    SimulationConfig sim = smallSim();
    sim.system.fault.mediaErrorRate = 0.02;
    const auto [dump, r] = runToString(sim);
    EXPECT_NE(dump.find("#conf fault.media_error_rate"),
              std::string::npos);
    EXPECT_NE(dump.find("sim.fault.mediaErrors"), std::string::npos);
    EXPECT_GT(r.faults.mediaErrors, 0u);
    EXPECT_GT(r.faults.retries, 0u);
}

TEST(FaultEndToEnd, InertFaultConfigDoesNotPerturbTiming)
{
    // A fault scenario that never fires (a stall window far past the
    // end of the run) must yield the exact timings of a faults-off
    // run: enabling the subsystem costs nothing but the bookkeeping.
    const auto [dump_off, off] = runToString(smallSim());

    SimulationConfig sim = smallSim();
    sim.system.fault.stallWindows = "99000000000000:1";
    const auto [dump_on, on] = runToString(sim);

    EXPECT_EQ(on.ioTime, off.ioTime);
    EXPECT_EQ(on.flushTime, off.flushTime);
    EXPECT_EQ(on.requests, off.requests);
    EXPECT_EQ(on.blocks, off.blocks);
    EXPECT_EQ(on.agg.reads, off.agg.reads);
    EXPECT_EQ(on.agg.writes, off.agg.writes);
    EXPECT_FALSE(on.faults.any());

    // The enabled run documents the scenario in its header.
    EXPECT_NE(dump_on.find("#conf fault.stall_windows"),
              std::string::npos);
    EXPECT_EQ(dump_off.find("#conf fault."), std::string::npos);
}

TEST(FaultEndToEnd, FaultRunsAreSeedReproducible)
{
    SimulationConfig sim = smallSim();
    sim.system.fault.mediaErrorRate = 0.02;
    sim.system.fault.timeoutRate = 0.01;
    const auto [dump1, r1] = runToString(sim);
    const auto [dump2, r2] = runToString(sim);
    EXPECT_EQ(test::stripRuntime(dump1), test::stripRuntime(dump2));
    EXPECT_EQ(r1.ioTime, r2.ioTime);
    EXPECT_EQ(r1.faults.mediaErrors, r2.faults.mediaErrors);
    EXPECT_EQ(r1.faults.stalls, r2.faults.stalls);
}

} // namespace
} // namespace dtsim
