/**
 * @file
 * Sweep-spec tests: sweep-file parsing (axis lines over a base
 * config), cartesian expansion order, coordinate labeling, and
 * infeasible-point marking.
 */

#include <gtest/gtest.h>

#include "config/sweep_spec.hh"

using namespace dtsim;

namespace {

TEST(SweepSpec, ParsesBaseAndAxes)
{
    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(loadSweepText("workload.kind = web\n"
                              "workload.scale = 0.01\n"
                              "sweep system.stripe_unit_bytes = "
                              "4096, 8192, 16384\n"
                              "sweep system.kind = segm, for\n",
                              "fig.conf", spec, err))
        << err;
    EXPECT_EQ(spec.base.workload, WorkloadKind::Web);
    EXPECT_DOUBLE_EQ(spec.base.scale, 0.01);
    ASSERT_EQ(spec.axes.size(), 2u);
    EXPECT_EQ(spec.axes[0].key, "system.stripe_unit_bytes");
    EXPECT_EQ(spec.axes[0].values,
              (std::vector<std::string>{"4096", "8192", "16384"}));
    EXPECT_EQ(spec.axes[1].key, "system.kind");
    EXPECT_EQ(spec.points(), 6u);

    // Axis assignments must not disturb the base config.
    EXPECT_EQ(spec.base.system.kind, SystemKind::Segm);
    EXPECT_EQ(spec.base.system.stripeUnitBytes, 131072u);
}

TEST(SweepSpec, RejectsBadAxes)
{
    const struct
    {
        const char* text;
        const char* expect;
    } cases[] = {
        {"sweep system.kind = segm, for\n"
         "sweep system.kind = nora\n",
         "duplicate sweep axis"},
        {"sweep system.kind =\n", "has no values"},
        {"sweep system.kind = segm, warp\n", "unknown value"},
        {"sweep system.bogus = 1, 2\n", "unknown parameter"},
        {"sweep system.disks = 2, abc\n", "system.disks"},
    };
    for (const auto& c : cases) {
        SweepSpec spec;
        std::string err;
        EXPECT_FALSE(loadSweepText(c.text, "bad.conf", spec, err))
            << c.text;
        EXPECT_NE(err.find("bad.conf:"), std::string::npos) << err;
        EXPECT_NE(err.find(c.expect), std::string::npos) << err;
    }
}

TEST(SweepSpec, ExpandsFirstAxisSlowest)
{
    SweepSpec spec;
    spec.axes.push_back({"system.stripe_unit_bytes",
                         {"4096", "8192"}});
    spec.axes.push_back({"system.kind", {"segm", "for"}});

    std::string err;
    const std::vector<SweepPoint> points = expandSweep(spec, err);
    ASSERT_EQ(points.size(), 4u) << err;

    const std::pair<std::uint64_t, SystemKind> want[] = {
        {4096, SystemKind::Segm},
        {4096, SystemKind::FOR},
        {8192, SystemKind::Segm},
        {8192, SystemKind::FOR},
    };
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(points[i].cfg.system.stripeUnitBytes,
                  want[i].first);
        EXPECT_EQ(points[i].cfg.system.kind, want[i].second);
        // Coordinates record the axis values in axis order.
        ASSERT_EQ(points[i].coords.size(), 2u);
        EXPECT_EQ(points[i].coords[0].first,
                  "system.stripe_unit_bytes");
        EXPECT_EQ(points[i].coords[1].first, "system.kind");
        EXPECT_TRUE(points[i].feasible);
    }
    EXPECT_EQ(points[1].coords[1].second, "for");
}

TEST(SweepSpec, NoAxesYieldsTheBasePoint)
{
    SweepSpec spec;
    spec.base.system.disks = 4;
    std::string err;
    const std::vector<SweepPoint> points = expandSweep(spec, err);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].cfg.system.disks, 4u);
    EXPECT_TRUE(points[0].coords.empty());
}

TEST(SweepSpec, MarksInfeasiblePoints)
{
    // The fig08 grid shape: under FOR, an HDC budget that still fits
    // under Segm exceeds the controller cache once the layout bitmap
    // is charged. The point must be marked, not dropped or fatal.
    SweepSpec spec;
    const std::uint64_t usable =
        spec.base.system.disk.usableCacheBytes();
    const std::uint64_t bitmap = spec.base.system.disk.bitmapBytes();
    const std::uint64_t too_big_for_for =
        ((usable - bitmap) / 4096) * 4096 + 4096;
    spec.axes.push_back({"system.kind", {"segm", "for"}});
    spec.axes.push_back({"system.hdc_bytes_per_disk",
                         {"0", std::to_string(too_big_for_for)}});

    std::string err;
    std::vector<SweepPoint> points = expandSweep(spec, err);
    ASSERT_EQ(points.size(), 4u) << err;
    EXPECT_TRUE(points[0].feasible);  // segm, 0
    EXPECT_TRUE(points[1].feasible);  // segm, big
    EXPECT_TRUE(points[2].feasible);  // for, 0
    EXPECT_FALSE(points[3].feasible); // for, big
    EXPECT_NE(points[3].whyNot.find("FOR layout bitmap"),
              std::string::npos)
        << points[3].whyNot;
}

TEST(SweepSpec, ExpansionErrorsOnHandBuiltBadAxis)
{
    SweepSpec spec;
    spec.axes.push_back({"system.no_such", {"1"}});
    std::string err;
    EXPECT_TRUE(expandSweep(spec, err).empty());
    EXPECT_NE(err.find("unknown parameter"), std::string::npos);
}

} // namespace
