/** @file Tests for the block-pool controller cache (FOR's organization). */

#include <gtest/gtest.h>

#include "cache/block_cache.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

TEST(BlockCache, InsertAndLookup)
{
    BlockCache c(64);
    c.insertRun(10, 8);
    EXPECT_EQ(c.usedBlocks(), 8u);
    EXPECT_TRUE(c.contains(10));
    EXPECT_TRUE(c.contains(17));
    EXPECT_FALSE(c.contains(18));
    EXPECT_EQ(c.lookupPrefix(10, 8), 8u);
    EXPECT_EQ(c.lookupPrefix(14, 8), 4u);
    EXPECT_EQ(c.lookupPrefix(18, 8), 0u);
}

TEST(BlockCache, NeverExceedsCapacity)
{
    BlockCache c(32);
    for (BlockNum b = 0; b < 100; b += 8)
        c.insertRun(b * 100, 8);
    EXPECT_LE(c.usedBlocks(), 32u);
}

TEST(BlockCache, MruEvictsConsumedFirst)
{
    BlockCache c(16, BlockPolicy::MRU);
    c.insertRun(0, 8);       // Unconsumed read-ahead.
    c.lookupPrefix(0, 4);    // Blocks 0..3 consumed.
    c.insertRun(100, 12);    // Needs 4 evictions.
    // The consumed blocks (MRU first: 3,2,1,0) go first; the
    // unconsumed read-ahead 4..7 is protected.
    EXPECT_FALSE(c.contains(3));
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(4));
    EXPECT_TRUE(c.contains(7));
    EXPECT_TRUE(c.contains(100));
    EXPECT_EQ(c.evictions(), 4u);
}

TEST(BlockCache, MruFallsBackToOldestUnconsumed)
{
    BlockCache c(16, BlockPolicy::MRU);
    c.insertRun(0, 16);      // All unconsumed.
    c.insertRun(100, 4);     // Evicts the oldest read-ahead (0..3).
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.contains(3));
    EXPECT_TRUE(c.contains(4));
    EXPECT_TRUE(c.contains(100));
}

TEST(BlockCache, LruEvictsLeastRecentlyConsumed)
{
    BlockCache c(8, BlockPolicy::LRU);
    c.insertRun(0, 8);
    c.lookupPrefix(0, 8);    // Consume 0..7 (7 most recent).
    c.lookupPrefix(0, 1);    // Re-consume 0 (now most recent).
    c.insertRun(100, 1);     // Evicts LRU consumed: block 1.
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1));
    EXPECT_TRUE(c.contains(7));
}

TEST(BlockCache, ReinsertKeepsState)
{
    BlockCache c(8);
    c.insertRun(0, 4);
    c.lookupPrefix(0, 4);
    c.insertRun(0, 4);   // Already present: no change.
    EXPECT_EQ(c.usedBlocks(), 4u);
}

TEST(BlockCache, InvalidateRemovesBlocks)
{
    BlockCache c(16);
    c.insertRun(0, 8);
    c.lookupPrefix(0, 2);
    c.invalidateRange(1, 4);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1));
    EXPECT_FALSE(c.contains(4));
    EXPECT_TRUE(c.contains(5));
    EXPECT_EQ(c.usedBlocks(), 4u);
}

TEST(BlockCache, InvalidateMissingIsNoop)
{
    BlockCache c(16);
    c.insertRun(0, 4);
    c.invalidateRange(100, 50);
    EXPECT_EQ(c.usedBlocks(), 4u);
}

TEST(BlockCache, VariableSizeStreamsCoexist)
{
    // The point of the block organization: many streams with
    // different footprints share the pool without fixed partitions.
    BlockCache c(64);
    c.insertRun(0, 4);       // 16 KB stream.
    c.insertRun(1000, 32);   // 128 KB stream.
    c.insertRun(2000, 2);    // 8 KB stream.
    c.insertRun(3000, 26);
    EXPECT_EQ(c.usedBlocks(), 64u);
    EXPECT_EQ(c.lookupPrefix(0, 4), 4u);
    EXPECT_EQ(c.lookupPrefix(1000, 32), 32u);
    EXPECT_EQ(c.lookupPrefix(2000, 2), 2u);
}

TEST(BlockCache, StressRandomizedInvariant)
{
    BlockCache c(128, BlockPolicy::MRU);
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
        const BlockNum b = rng.below(4096);
        switch (rng.below(3)) {
          case 0:
            c.insertRun(b, 1 + rng.below(16));
            break;
          case 1:
            c.lookupPrefix(b, 1 + rng.below(16));
            break;
          case 2:
            c.invalidateRange(b, 1 + rng.below(16));
            break;
        }
        ASSERT_LE(c.usedBlocks(), 128u);
    }
}

TEST(BlockCache, LookupConsumesForMru)
{
    BlockCache c(4, BlockPolicy::MRU);
    c.insertRun(0, 4);
    c.lookupPrefix(2, 1);    // Consume only block 2.
    c.insertRun(100, 1);     // Should evict block 2 (only consumed).
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(1));
    EXPECT_TRUE(c.contains(3));
}

} // namespace
} // namespace dtsim
