/** @file Tests for the OS prefetch model and the request coalescer. */

#include <gtest/gtest.h>

#include "fs/coalescer.hh"
#include "fs/prefetcher.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

TEST(Prefetcher, NoneNeverPrefetches)
{
    Prefetcher p(PrefetchMode::None);
    EXPECT_EQ(p.plan(1, 0, 1, 100), 0u);
    EXPECT_EQ(p.plan(1, 1, 1, 100), 0u);
}

TEST(Prefetcher, PerfectReadsToEndOfFile)
{
    Prefetcher p(PrefetchMode::Perfect);
    EXPECT_EQ(p.plan(1, 0, 1, 10), 9u);
    EXPECT_EQ(p.plan(1, 4, 2, 10), 4u);
    EXPECT_EQ(p.plan(1, 9, 1, 10), 0u);
}

TEST(Prefetcher, SequentialWindowDoubles)
{
    // Each miss covers one block; the next miss lands right after
    // the previous access plus its prefetch. Window doubles: 1, 2,
    // 4, 8, 16, 16, ...
    Prefetcher p(PrefetchMode::Sequential, 16);
    EXPECT_EQ(p.plan(1, 0, 1, 1000), 1u);    // Covers 0..1.
    EXPECT_EQ(p.plan(1, 2, 1, 1000), 2u);    // Covers 2..4.
    EXPECT_EQ(p.plan(1, 5, 1, 1000), 4u);    // Covers 5..9.
    EXPECT_EQ(p.plan(1, 10, 1, 1000), 8u);   // Covers 10..18.
    EXPECT_EQ(p.plan(1, 19, 1, 1000), 16u);  // Covers 19..35.
    EXPECT_EQ(p.plan(1, 36, 1, 1000), 16u);  // Capped.
}

TEST(Prefetcher, RandomAccessCollapsesWindow)
{
    Prefetcher p(PrefetchMode::Sequential, 16);
    p.plan(1, 0, 1, 1000);    // Covers 0..1.
    p.plan(1, 2, 1, 1000);    // Covers 2..4.
    EXPECT_EQ(p.plan(1, 500, 1, 1000), 0u);   // Jump: collapse.
    // Next sequential access rebuilds from one block.
    EXPECT_EQ(p.plan(1, 501, 1, 1000), 1u);
}

TEST(Prefetcher, WindowClippedAtFileEnd)
{
    Prefetcher p(PrefetchMode::Sequential, 16);
    EXPECT_EQ(p.plan(1, 0, 1, 4), 1u);   // Covers 0..1.
    EXPECT_EQ(p.plan(1, 2, 1, 4), 1u);   // Window 2, clipped to 1.
    EXPECT_EQ(p.plan(1, 3, 1, 4), 0u);   // Nothing left past block 3.
}

TEST(Prefetcher, FilesTrackedIndependently)
{
    Prefetcher p(PrefetchMode::Sequential, 16);
    p.plan(1, 0, 1, 100);     // File 1: covers 0..1.
    p.plan(1, 2, 1, 100);     // File 1: covers 2..4.
    p.plan(2, 0, 1, 100);     // File 2: covers 0..1.
    EXPECT_EQ(p.plan(2, 2, 1, 100), 2u);
    EXPECT_EQ(p.plan(1, 5, 1, 100), 4u);
}

TEST(Prefetcher, ResetDropsHistory)
{
    Prefetcher p(PrefetchMode::Sequential, 16);
    p.plan(1, 0, 1, 100);
    p.plan(1, 1, 1, 100);
    p.reset();
    EXPECT_EQ(p.plan(1, 3, 1, 100), 0u);   // Looks random now.
}

TEST(Coalescer, ZeroProbabilitySplitsEveryBlock)
{
    Rng rng(3);
    const auto sizes = coalesceRun(10, 0.0, rng);
    EXPECT_EQ(sizes.size(), 10u);
    for (auto s : sizes)
        EXPECT_EQ(s, 1u);
}

TEST(Coalescer, FullProbabilityKeepsOneRequest)
{
    Rng rng(5);
    const auto sizes = coalesceRun(10, 1.0, rng);
    ASSERT_EQ(sizes.size(), 1u);
    EXPECT_EQ(sizes[0], 10u);
}

TEST(Coalescer, SizesAlwaysSumToCount)
{
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t n = 1 + rng.below(64);
        const double p = rng.uniform();
        const auto sizes = coalesceRun(n, p, rng);
        std::uint64_t total = 0;
        for (auto s : sizes)
            total += s;
        ASSERT_EQ(total, n);
        ASSERT_FALSE(sizes.empty());
    }
}

TEST(Coalescer, EmptyRun)
{
    Rng rng(9);
    EXPECT_TRUE(coalesceRun(0, 0.5, rng).empty());
}

TEST(Coalescer, MeanRequestCountMatchesProbability)
{
    // E[requests] = 1 + (n-1)(1-p).
    Rng rng(11);
    const std::uint64_t n = 4;
    const double p = 0.87;
    double total = 0.0;
    const int iters = 20000;
    for (int i = 0; i < iters; ++i)
        total += static_cast<double>(coalesceRun(n, p, rng).size());
    EXPECT_NEAR(total / iters, 1.0 + 3.0 * 0.13, 0.02);
}

} // namespace
} // namespace dtsim
