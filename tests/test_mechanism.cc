/** @file Tests for the disk mechanism (seek + rotation + transfer). */

#include <gtest/gtest.h>

#include "disk/mechanism.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

struct Rig
{
    DiskParams params;
    DiskGeometry geom{params};
    DiskMechanism mech{params, geom};
};

TEST(DiskMechanism, RevolutionTimeMatchesRpm)
{
    DiskParams p;
    // 15000 rpm -> 4 ms per revolution.
    EXPECT_EQ(p.revolutionTime(), fromMillis(4.0));
}

TEST(DiskMechanism, AngleIsPeriodic)
{
    Rig r;
    const Tick rev = r.params.revolutionTime();
    EXPECT_DOUBLE_EQ(r.mech.angleAt(0), 0.0);
    EXPECT_NEAR(r.mech.angleAt(rev / 2), 0.5, 1e-9);
    EXPECT_NEAR(r.mech.angleAt(rev + rev / 4), 0.25, 1e-9);
}

TEST(DiskMechanism, TransferTimeMatchesRawRate)
{
    Rig r;
    // 8 sectors = 4 KB; the rotation-locked media rate equals the
    // 54 MB/s raw transfer rate of Table 1 within 1%.
    const Tick t = r.mech.transferTime(8);
    EXPECT_NEAR(static_cast<double>(t),
                static_cast<double>(fromSeconds(4096.0 / 54.0e6)),
                static_cast<double>(t) * 0.01);
}

TEST(DiskMechanism, FirstAccessFromRestHasNoSeek)
{
    Rig r;
    const ServiceTiming t =
        r.mech.service(MediaAccess{0, 8, false}, 0);
    EXPECT_EQ(t.seek, 0u);
    // Rotation starts aligned with sector 0 at time 0.
    EXPECT_EQ(t.rotational, 0u);
    EXPECT_GT(t.transfer, 0u);
}

TEST(DiskMechanism, SeekChargedForCylinderMove)
{
    Rig r;
    const SectorNum far =
        static_cast<SectorNum>(5000) * r.geom.sectorsPerCylinder();
    const ServiceTiming t =
        r.mech.service(MediaAccess{far, 8, false}, 0);
    EXPECT_GT(t.seek, fromMillis(1.0));
    EXPECT_EQ(r.mech.currentCylinder(), 5000u);
}

TEST(DiskMechanism, RotationalWaitBoundedByRevolution)
{
    Rig r;
    Rng rng(7);
    Tick now = 0;
    const Tick rev = r.params.revolutionTime();
    for (int i = 0; i < 2000; ++i) {
        MediaAccess acc;
        acc.startSector = rng.below(r.geom.totalSectors() - 8);
        acc.sectorCount = 8;
        const ServiceTiming t = r.mech.service(acc, now);
        ASSERT_LT(t.rotational, rev);
        now += t.total();
    }
}

TEST(DiskMechanism, AverageRotationalDelayIsHalfRevolution)
{
    Rig r;
    Rng rng(13);
    Tick now = 0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        MediaAccess acc;
        acc.startSector = rng.below(r.geom.totalSectors() - 8);
        acc.sectorCount = 8;
        const ServiceTiming t = r.mech.service(acc, now);
        sum += toMillis(t.rotational);
        // Advance by a pseudo-random amount to decorrelate angles.
        now += t.total() + rng.below(1000000);
    }
    EXPECT_NEAR(sum / n, 2.0, 0.1);   // 2.0 ms average latency.
}

TEST(DiskMechanism, SequentialAccessAvoidsSeekAndRotation)
{
    Rig r;
    Tick now = 0;
    ServiceTiming t = r.mech.service(MediaAccess{0, 80, false}, now);
    now += t.total();
    // The head sits right after sector 79; continuing is free of
    // seek, and the rotational wait is (nearly) zero.
    t = r.mech.service(MediaAccess{80, 80, false}, now);
    EXPECT_EQ(t.seek, 0u);
    EXPECT_LT(t.rotational, fromMillis(0.5));
}

TEST(DiskMechanism, TrackCrossingChargesHeadSwitch)
{
    Rig r;
    // Read two full tracks: one boundary crossing.
    const std::uint64_t spt = r.geom.sectorsPerTrack();
    const ServiceTiming t =
        r.mech.service(MediaAccess{0, spt * 2, false}, 0);
    EXPECT_GE(t.transfer,
              r.mech.transferTime(spt * 2) + r.params.headSwitch);
}

TEST(DiskMechanism, WriteSettleOnlyAfterSeek)
{
    Rig r;
    const SectorNum far =
        static_cast<SectorNum>(2000) * r.geom.sectorsPerCylinder();
    ServiceTiming t = r.mech.service(MediaAccess{far, 8, true}, 0);
    EXPECT_EQ(t.settle, r.params.writeSettle);

    // Same-cylinder write: no settle charge.
    t = r.mech.service(MediaAccess{far + 8, 8, true}, t.total());
    EXPECT_EQ(t.settle, 0u);
}

TEST(DiskMechanism, RejectsInvalidAccesses)
{
    Rig r;
    EXPECT_DEATH(r.mech.service(MediaAccess{0, 0, false}, 0), "");
    EXPECT_DEATH(r.mech.service(
                     MediaAccess{r.geom.totalSectors(), 8, false}, 0),
                 "");
}

TEST(DiskMechanism, ServiceTimeInRealisticRange)
{
    Rig r;
    Rng rng(17);
    Tick now = 0;
    for (int i = 0; i < 2000; ++i) {
        MediaAccess acc;
        acc.startSector = rng.below(r.geom.totalSectors() - 8);
        acc.sectorCount = 8;
        const ServiceTiming t = r.mech.service(acc, now);
        // A random 4 KB access: between 0 and ~12 ms.
        ASSERT_LT(t.total(), fromMillis(12.0));
        now += t.total();
    }
}

} // namespace
} // namespace dtsim
