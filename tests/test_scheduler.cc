/** @file Tests for the media request schedulers. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "controller/scheduler.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

std::unique_ptr<MediaJob>
job(std::uint32_t cylinder, std::uint64_t seq = 0)
{
    auto j = std::make_unique<MediaJob>();
    j->cylinder = cylinder;
    j->seq = seq;
    return j;
}

std::vector<std::uint32_t>
drain(Scheduler& s, std::uint32_t start_cyl)
{
    std::vector<std::uint32_t> order;
    std::uint32_t cur = start_cyl;
    while (auto j = s.pop(cur)) {
        order.push_back(j->cylinder);
        cur = j->cylinder;
    }
    return order;
}

TEST(FcfsScheduler, PreservesArrivalOrder)
{
    FcfsScheduler s;
    s.push(job(50, 0));
    s.push(job(10, 1));
    s.push(job(90, 2));
    EXPECT_EQ(drain(s, 0),
              (std::vector<std::uint32_t>{50, 10, 90}));
}

TEST(LookScheduler, SweepsUpThenDown)
{
    SweepScheduler s(SweepScheduler::Kind::LOOK);
    for (std::uint32_t c : {80, 20, 60, 40, 10})
        s.push(job(c));
    // From cylinder 30 going up: 40, 60, 80; then down: 20, 10.
    EXPECT_EQ(drain(s, 30),
              (std::vector<std::uint32_t>{40, 60, 80, 20, 10}));
}

TEST(LookScheduler, ServesCurrentCylinderFirst)
{
    SweepScheduler s(SweepScheduler::Kind::LOOK);
    s.push(job(30));
    s.push(job(50));
    EXPECT_EQ(drain(s, 30),
              (std::vector<std::uint32_t>{30, 50}));
}

TEST(ClookScheduler, WrapsToLowest)
{
    SweepScheduler s(SweepScheduler::Kind::CLOOK);
    for (std::uint32_t c : {80, 20, 60, 10})
        s.push(job(c));
    // From 50 going up: 60, 80; wrap: 10, 20.
    EXPECT_EQ(drain(s, 50),
              (std::vector<std::uint32_t>{60, 80, 10, 20}));
}

TEST(SstfScheduler, PicksNearest)
{
    SweepScheduler s(SweepScheduler::Kind::SSTF);
    for (std::uint32_t c : {100, 45, 55, 10})
        s.push(job(c));
    // From 50: 45 (d=5 vs 5, ties break down); from 45: 55 (d=10 vs
    // 35); from 55: 10 and 100 tie at d=45, break down: 10; then
    // 100.
    EXPECT_EQ(drain(s, 50),
              (std::vector<std::uint32_t>{45, 55, 10, 100}));
}

TEST(SstfScheduler, ExactMatchWins)
{
    SweepScheduler s(SweepScheduler::Kind::SSTF);
    s.push(job(70));
    s.push(job(71));
    EXPECT_EQ(drain(s, 71),
              (std::vector<std::uint32_t>{71, 70}));
}

TEST(Scheduler, SizeTracking)
{
    SweepScheduler s(SweepScheduler::Kind::LOOK);
    EXPECT_TRUE(s.empty());
    s.push(job(1));
    s.push(job(2));
    EXPECT_EQ(s.size(), 2u);
    s.pop(0);
    EXPECT_EQ(s.size(), 1u);
    s.pop(0);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.pop(0), nullptr);
}

TEST(Scheduler, DuplicateCylindersAllServed)
{
    SweepScheduler s(SweepScheduler::Kind::LOOK);
    for (int i = 0; i < 5; ++i)
        s.push(job(42, static_cast<std::uint64_t>(i)));
    EXPECT_EQ(drain(s, 0).size(), 5u);
}

TEST(Scheduler, FactoryProducesAllKinds)
{
    for (SchedulerKind k :
         {SchedulerKind::FCFS, SchedulerKind::LOOK,
          SchedulerKind::CLOOK, SchedulerKind::SSTF}) {
        auto s = makeScheduler(k);
        ASSERT_NE(s, nullptr);
        s->push(job(5));
        EXPECT_EQ(s->size(), 1u);
        EXPECT_STREQ(s->name(), schedulerKindName(k));
    }
}

/**
 * Property: every scheduler serves every job exactly once, and LOOK's
 * total head travel never exceeds FCFS's on the same input.
 */
class SchedulerSweep
    : public ::testing::TestWithParam<SchedulerKind>
{
};

TEST_P(SchedulerSweep, ServesAllExactlyOnce)
{
    auto s = makeScheduler(GetParam());
    Rng rng(31);
    const int n = 500;
    std::vector<std::uint32_t> cyls;
    for (int i = 0; i < n; ++i) {
        const auto c = static_cast<std::uint32_t>(rng.below(10000));
        cyls.push_back(c);
        s->push(job(c, static_cast<std::uint64_t>(i)));
    }
    auto order = drain(*s, 5000);
    ASSERT_EQ(order.size(), cyls.size());
    std::sort(order.begin(), order.end());
    std::sort(cyls.begin(), cyls.end());
    EXPECT_EQ(order, cyls);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SchedulerSweep,
                         ::testing::Values(SchedulerKind::FCFS,
                                           SchedulerKind::LOOK,
                                           SchedulerKind::CLOOK,
                                           SchedulerKind::SSTF));

TEST(Scheduler, LookTravelsLessThanFcfs)
{
    Rng rng(37);
    std::vector<std::uint32_t> cyls;
    for (int i = 0; i < 1000; ++i)
        cyls.push_back(static_cast<std::uint32_t>(rng.below(10000)));

    auto travel = [&](SchedulerKind k) {
        auto s = makeScheduler(k);
        for (std::size_t i = 0; i < cyls.size(); ++i)
            s->push(job(cyls[i], i));
        std::uint64_t total = 0;
        std::uint32_t cur = 5000;
        while (auto j = s->pop(cur)) {
            total += j->cylinder > cur ? j->cylinder - cur
                                       : cur - j->cylinder;
            cur = j->cylinder;
        }
        return total;
    };

    EXPECT_LT(travel(SchedulerKind::LOOK),
              travel(SchedulerKind::FCFS) / 10);
}

} // namespace
} // namespace dtsim
