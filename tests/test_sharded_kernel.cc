/**
 * @file
 * Unit tests for the sharded event kernel and its conservative
 * lookahead contract.
 *
 * The lookahead window the runner derives (submit overheads, see
 * core/runner.cc) is only safe when the drive's minimum media service
 * floor covers it -- then no media completion can tie with a later
 * arrival and the sharded merge order equals the serial order. The
 * first tests pin that bound; the rest exercise the kernel's
 * message-passing protocol directly and check that its merge order is
 * independent of the worker count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "disk/geometry.hh"
#include "disk/mechanism.hh"
#include "sim/sharded_kernel.hh"

namespace dtsim {
namespace {

TEST(LookaheadBound, FloorCoversSubmitOverheadOnDefaultDrive)
{
    // The runner's window: request overhead plus (with HDC on) the
    // HDC lookup overhead. The Ultrastar 36Z15 defaults must keep the
    // minimum service floor at or above it, or sharded merge order
    // could diverge from serial order on same-tick collisions.
    const DiskParams p;
    const DiskGeometry geom(p);
    DiskMechanism mech(p, geom);

    const Tick lookahead = p.requestOverhead + p.hdcLookupOverhead;
    EXPECT_GE(mech.minServiceFloor(geom.sectorsPerBlock()), lookahead);
}

TEST(LookaheadBound, FloorCoversSubmitOverheadWithZones)
{
    // Zoned recording transfers faster in the outer zones, lowering
    // the floor; the bound must hold at the fastest zone too.
    const DiskParams p;
    const DiskGeometry geom(p);
    DiskMechanism flat(p, geom);
    DiskMechanism zoned_mech(p, geom);
    const ZonedGeometry zoned = ZonedGeometry::makeDefault(p, 8);
    zoned_mech.setZonedGeometry(&zoned);

    const Tick flat_floor = flat.minServiceFloor(geom.sectorsPerBlock());
    const Tick zoned_floor =
        zoned_mech.minServiceFloor(geom.sectorsPerBlock());
    EXPECT_LE(zoned_floor, flat_floor);
    EXPECT_GE(zoned_floor, p.requestOverhead + p.hdcLookupOverhead);
}

TEST(LookaheadBound, FloorIsALowerBoundOnServiceTimes)
{
    // Every actual media access costs at least the floor: seek,
    // settle, and rotational wait only add to the transfer time.
    const DiskParams p;
    const DiskGeometry geom(p);
    DiskMechanism mech(p, geom);
    const ZonedGeometry zoned = ZonedGeometry::makeDefault(p, 8);
    mech.setZonedGeometry(&zoned);

    const std::uint64_t spb = geom.sectorsPerBlock();
    const Tick floor = mech.minServiceFloor(spb);
    Tick now = 0;
    for (SectorNum start :
         {SectorNum(0), SectorNum(12345), SectorNum(7777777),
          SectorNum(geom.totalSectors() - spb)}) {
        const ServiceTiming t = mech.service({start, spb, false}, now);
        EXPECT_GE(t.total(), floor) << "start " << start;
        now += t.total();
    }
    EXPECT_GE(mech.minServiceFloor(4 * spb), 4 * floor);
}

/**
 * A two-shard harness logging, from host context only, the order in
 * which cross-timeline messages execute. Shard-side callbacks never
 * touch shared state directly (they run on worker threads); they
 * report by emitting host actions, exactly like DiskController does.
 */
struct Harness
{
    EventQueue host;
    ShardedKernel k;
    std::vector<std::string> log;

    explicit Harness(unsigned jobs, Tick lookahead = 100)
        : k(host, 2, jobs, lookahead)
    {
    }

    /** Emit a log entry for shard `s` at the shard's current time. */
    void
    report(unsigned s, const std::string& what)
    {
        EventQueue& q = k.shardQueue(s);
        const Tick when = q.now();
        k.emitToHost(s, when,
                     [this, s, what, when]() {
                         log.push_back(what + std::to_string(s) +
                                       "@" + std::to_string(when));
                     });
    }
};

/** The canonical scenario; returns the host-observed execution log. */
std::vector<std::string>
runScenario(unsigned jobs, Tick lookahead)
{
    Harness h(jobs, lookahead);
    h.host.scheduleAt(0, [&h]() {
        h.log.push_back("host@0");
        for (unsigned s = 0; s < 2; ++s) {
            h.k.postToShard(s, 100, [&h, s]() {
                h.report(s, "arrival");
                h.k.shardQueue(s).scheduleAfter(
                    50, [&h, s]() { h.report(s, "work"); });
            });
        }
    });
    h.k.run();
    EXPECT_TRUE(h.k.quiesced());
    return h.log;
}

TEST(ShardedKernel, MergeOrderIsTickThenShardThenFifo)
{
    const std::vector<std::string> expected{
        "host@0", "arrival0@100", "arrival1@100", "work0@150",
        "work1@150"};
    EXPECT_EQ(runScenario(1, 100), expected);
}

TEST(ShardedKernel, WorkerCountDoesNotChangeTheMerge)
{
    const std::vector<std::string> one = runScenario(1, 100);
    EXPECT_EQ(runScenario(2, 100), one);
    EXPECT_EQ(runScenario(4, 100), one);   // Clamped to 2 shards.
}

TEST(ShardedKernel, ZeroLookaheadDegradesButStaysDeterministic)
{
    // With no lookahead the kernel falls back to forced single steps;
    // the observable order must not change.
    EXPECT_EQ(runScenario(2, 0), runScenario(1, 100));
}

TEST(ShardedKernel, SameTickArrivalsFireInPostOrder)
{
    Harness h(2);
    h.host.scheduleAt(0, [&h]() {
        h.k.postToShard(0, 100, [&h]() { h.report(0, "first"); });
        h.k.postToShard(0, 100, [&h]() { h.report(0, "second"); });
    });
    h.k.run();
    const std::vector<std::string> expected{"first0@100",
                                            "second0@100"};
    EXPECT_EQ(h.log, expected);
}

TEST(ShardedKernel, QuiescedMessagingIsDirect)
{
    Harness h(2);
    h.k.run();   // Nothing scheduled: quiesce immediately.
    ASSERT_TRUE(h.k.quiesced());

    // Emissions execute inline; posts land on the shard queue and a
    // serial drain runs them.
    h.k.emitToHost(1, 0, [&h]() { h.log.push_back("direct"); });
    EXPECT_EQ(h.log, std::vector<std::string>{"direct"});

    h.k.postToShard(0, 25, [&h]() { h.report(0, "drained"); });
    h.k.drainSerial();
    const std::vector<std::string> expected{"direct", "drained0@25"};
    EXPECT_EQ(h.log, expected);
    EXPECT_EQ(h.k.shardQueue(0).now(), 25u);
}

TEST(ShardedKernel, AccountingAndAlignment)
{
    Harness h(2);
    h.host.scheduleAt(0, [&h]() {
        h.k.postToShard(0, 100, [&h]() { h.report(0, "a"); });
    });
    h.k.run();
    EXPECT_GE(h.k.rounds(), 1u);
    // Host event + shard arrival (emission consumption is not an
    // event).
    EXPECT_EQ(h.k.totalFired(), 2u);

    h.k.alignNow(500);
    EXPECT_EQ(h.k.maxNow(), 500u);
    EXPECT_EQ(h.k.shardQueue(0).now(), 500u);
    EXPECT_EQ(h.k.shardQueue(1).now(), 500u);
    EXPECT_EQ(h.host.now(), 500u);
}

} // namespace
} // namespace dtsim
