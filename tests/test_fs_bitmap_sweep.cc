/**
 * @file
 * Property sweep: for any (striping unit, disk count, fragmentation)
 * combination, the FOR bitmap must agree with the image layout --
 * a bit is set iff the block continues its file on the same disk --
 * and FOR read-ahead runs must never cross into another file's data.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "fs/file_layout.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

using SweepParam = std::tuple<unsigned, std::uint64_t, double>;

class BitmapSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(BitmapSweep, BitmapAgreesWithLayout)
{
    const auto [disks, unit_blocks, frag] = GetParam();

    LayoutParams lp;
    lp.fragmentation = frag;
    lp.seed = 1234;
    Rng rng(99);
    std::vector<std::uint64_t> sizes;
    for (int i = 0; i < 3000; ++i)
        sizes.push_back((1 + rng.below(16)) * 4096);

    const std::uint64_t per_disk = 1 << 20;
    FileSystemImage img(sizes, lp, disks * per_disk);
    StripingMap striping(disks, unit_blocks, per_disk);
    const auto maps = img.buildBitmaps(striping);
    ASSERT_EQ(maps.size(), disks);

    // Reconstruct ground truth: for every file block, is it the
    // same-disk physical successor of its file predecessor?
    std::vector<std::vector<bool>> truth(
        disks, std::vector<bool>(per_disk, false));
    for (FileId f = 0; f < img.fileCount(); ++f) {
        const FileLayout& fl = img.file(f);
        const std::uint64_t n = fl.blocks();
        PhysicalLoc prev{};
        for (std::uint64_t i = 0; i < n; ++i) {
            const PhysicalLoc loc =
                striping.toPhysical(fl.blockAt(i));
            if (i > 0 && loc.disk == prev.disk &&
                loc.block == prev.block + 1)
                truth[loc.disk][loc.block] = true;
            prev = loc;
        }
    }

    for (unsigned d = 0; d < disks; ++d) {
        // popcount equality first (cheap), then spot-check bits.
        std::uint64_t expected = 0;
        for (std::uint64_t b = 0; b < per_disk; ++b)
            expected += truth[d][b];
        ASSERT_EQ(maps[d].popcount(), expected) << "disk " << d;
        for (std::uint64_t b = 0; b < per_disk; b += 97)
            ASSERT_EQ(maps[d].get(b), truth[d][b])
                << "disk " << d << " block " << b;
    }

    // FOR runs never cross file boundaries: starting right after any
    // file's first block, the run ends at or before the file's
    // physically-contiguous prefix on that disk.
    for (FileId f = 0; f < img.fileCount(); f += 37) {
        const FileLayout& fl = img.file(f);
        const PhysicalLoc first = striping.toPhysical(fl.blockAt(0));
        const std::uint64_t run =
            maps[first.disk].countRun(first.block + 1, 1 << 20);
        // The run's blocks must all belong to this file's
        // contiguous prefix.
        for (std::uint64_t k = 0; k < run; ++k) {
            const std::uint64_t idx = k + 1;
            ASSERT_LT(idx, fl.blocks());
            ASSERT_EQ(striping.toPhysical(fl.blockAt(idx)),
                      (PhysicalLoc{first.disk,
                                   first.block + 1 + k}));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, BitmapSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(1ull, 4ull, 32ull),
                       ::testing::Values(0.0, 0.05, 0.3)));

} // namespace
} // namespace dtsim
