/**
 * @file
 * Differential tests proving the slab/flat-table container
 * replacements behave identically to the node-based implementations
 * they replaced.
 *
 * Each test keeps a reference implementation built from std::list,
 * std::unordered_map, or std::multimap — the containers the model used
 * before the hot-path optimization — and drives it and the production
 * container with the same randomized, seeded operation stream,
 * asserting every observable output matches: return values, eviction
 * and writeback sequences, pop order, counters, and final contents.
 * The streams are seeded with dtsim::Rng so a failure replays exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/block_cache.hh"
#include "cache/hdc_store.hh"
#include "controller/scheduler.hh"
#include "fs/buffer_cache.hh"
#include "sim/flat_table.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

// ---------------------------------------------------------------------
// BlockCache vs. std::list + std::unordered_map reference.
// ---------------------------------------------------------------------

/**
 * The block-pool cache as it was before the slab rewrite: two
 * std::lists (used front = most recently consumed, unused front =
 * oldest insertion) indexed by an unordered_map of list iterators.
 */
class RefBlockCache
{
  public:
    RefBlockCache(std::uint64_t capacity, BlockPolicy policy)
        : capacity_(capacity), policy_(policy)
    {
    }

    std::uint64_t
    lookupPrefix(BlockNum start, std::uint64_t count)
    {
        std::uint64_t hits = 0;
        while (hits < count) {
            auto it = map_.find(start + hits);
            if (it == map_.end())
                break;
            Node& node = it->second;
            if (node.it->spec) {
                node.it->spec = false;
                ++ra_.specUsed;
            }
            if (node.used) {
                used_.splice(used_.begin(), used_, node.it);
            } else {
                used_.splice(used_.begin(), unused_, node.it);
                node.used = true;
            }
            ++hits;
        }
        return hits;
    }

    void
    insertRun(BlockNum start, std::uint64_t count,
              std::uint64_t spec_offset)
    {
        for (std::uint64_t i = 0; i < count; ++i) {
            const BlockNum b = start + i;
            if (map_.count(b))
                continue;
            if (map_.size() >= capacity_)
                evictOne();
            const bool spec = i >= spec_offset;
            if (spec)
                ++ra_.specInserted;
            unused_.push_back(Entry{b, spec});
            map_[b] = Node{std::prev(unused_.end()), false};
        }
    }

    void
    invalidateRange(BlockNum start, std::uint64_t count)
    {
        for (std::uint64_t i = 0; i < count; ++i) {
            auto it = map_.find(start + i);
            if (it == map_.end())
                continue;
            Node& node = it->second;
            if (node.it->spec)
                ++ra_.specWasted;
            (node.used ? used_ : unused_).erase(node.it);
            map_.erase(it);
        }
    }

    bool contains(BlockNum b) const { return map_.count(b) != 0; }
    std::uint64_t usedBlocks() const { return map_.size(); }
    std::uint64_t evictions() const { return evictions_; }
    const RaCounters& raCounters() const { return ra_; }

  private:
    struct Entry
    {
        BlockNum block;
        bool spec;
    };

    struct Node
    {
        std::list<Entry>::iterator it;
        bool used;
    };

    void
    evictOne()
    {
        ++evictions_;
        if (!used_.empty()) {
            // MRU evicts the most recently consumed (front); LRU the
            // least recently consumed (back).
            auto it = policy_ == BlockPolicy::MRU ? used_.begin()
                                                  : std::prev(used_.end());
            map_.erase(it->block);
            used_.erase(it);
            return;
        }
        // Nothing consumed yet: both policies drop the oldest
        // unconsumed read-ahead block.
        if (unused_.front().spec)
            ++ra_.specWasted;
        map_.erase(unused_.front().block);
        unused_.pop_front();
    }

    std::uint64_t capacity_;
    BlockPolicy policy_;
    std::list<Entry> used_;
    std::list<Entry> unused_;
    std::unordered_map<BlockNum, Node> map_;
    std::uint64_t evictions_ = 0;
    RaCounters ra_;
};

void
driveBlockCaches(BlockPolicy policy, std::uint64_t seed)
{
    constexpr std::uint64_t kCapacity = 48;
    constexpr BlockNum kSpace = 256;  // small → heavy alias pressure

    BlockCache real(kCapacity, policy);
    RefBlockCache ref(kCapacity, policy);
    Rng rng(seed);

    for (int op = 0; op < 20000; ++op) {
        const BlockNum start = rng.below(kSpace);
        const std::uint64_t count = 1 + rng.below(12);
        switch (rng.below(4)) {
          case 0:
          case 1: {
            const std::uint64_t spec = rng.below(count + 1);
            real.insertRun(start, count, spec);
            ref.insertRun(start, count, spec);
            break;
          }
          case 2:
            ASSERT_EQ(real.lookupPrefix(start, count),
                      ref.lookupPrefix(start, count))
                << "op " << op << " seed " << seed;
            break;
          case 3:
            real.invalidateRange(start, count);
            ref.invalidateRange(start, count);
            break;
        }
        ASSERT_EQ(real.usedBlocks(), ref.usedBlocks())
            << "op " << op << " seed " << seed;
    }

    EXPECT_EQ(real.evictions(), ref.evictions());
    EXPECT_EQ(real.raCounters().specInserted,
              ref.raCounters().specInserted);
    EXPECT_EQ(real.raCounters().specUsed, ref.raCounters().specUsed);
    EXPECT_EQ(real.raCounters().specWasted,
              ref.raCounters().specWasted);
    for (BlockNum b = 0; b < kSpace; ++b)
        ASSERT_EQ(real.contains(b), ref.contains(b)) << "block " << b;
}

TEST(ContainerEquiv, BlockCacheMru)
{
    for (std::uint64_t seed : {1u, 2u, 3u})
        driveBlockCaches(BlockPolicy::MRU, seed);
}

TEST(ContainerEquiv, BlockCacheLru)
{
    for (std::uint64_t seed : {4u, 5u, 6u})
        driveBlockCaches(BlockPolicy::LRU, seed);
}

// ---------------------------------------------------------------------
// BufferCache vs. std::list + std::unordered_map reference.
// ---------------------------------------------------------------------

/** The host buffer cache as a plain LRU list (front = MRU). */
class RefBufferCache
{
  public:
    explicit RefBufferCache(std::uint64_t capacity)
        : capacity_(capacity)
    {
    }

    bool
    readHit(ArrayBlock block)
    {
        ++stats_.readLookups;
        auto it = map_.find(block);
        if (it == map_.end()) {
            ++stats_.readMisses;
            return false;
        }
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }

    void
    install(ArrayBlock block, std::vector<ArrayBlock>& writebacks)
    {
        auto it = map_.find(block);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            return;
        }
        if (map_.size() >= capacity_)
            evictOne(writebacks);
        lru_.push_front(Entry{block, false});
        map_[block] = lru_.begin();
    }

    bool
    write(ArrayBlock block, std::vector<ArrayBlock>& writebacks)
    {
        ++stats_.writeLookups;
        auto it = map_.find(block);
        if (it != map_.end()) {
            if (it->second->dirty)
                ++stats_.writeMerges;
            it->second->dirty = true;
            lru_.splice(lru_.begin(), lru_, it->second);
            return true;
        }
        if (map_.size() >= capacity_)
            evictOne(writebacks);
        lru_.push_front(Entry{block, true});
        map_[block] = lru_.begin();
        return false;
    }

    std::vector<ArrayBlock>
    sync()
    {
        std::vector<ArrayBlock> dirty;
        for (Entry& e : lru_) {
            if (e.dirty) {
                dirty.push_back(e.block);
                e.dirty = false;
            }
        }
        return dirty;
    }

    std::vector<ArrayBlock>
    dropAll()
    {
        std::vector<ArrayBlock> dirty = sync();
        lru_.clear();
        map_.clear();
        return dirty;
    }

    bool contains(ArrayBlock b) const { return map_.count(b) != 0; }
    std::uint64_t size() const { return map_.size(); }
    const BufferCacheStats& stats() const { return stats_; }

  private:
    struct Entry
    {
        ArrayBlock block;
        bool dirty;
    };

    void
    evictOne(std::vector<ArrayBlock>& writebacks)
    {
        const Entry victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim.block);
        ++stats_.evictions;
        if (victim.dirty) {
            writebacks.push_back(victim.block);
            ++stats_.dirtyWritebacks;
        }
    }

    std::uint64_t capacity_;
    std::list<Entry> lru_;
    std::unordered_map<ArrayBlock, std::list<Entry>::iterator> map_;
    BufferCacheStats stats_;
};

TEST(ContainerEquiv, BufferCache)
{
    constexpr std::uint64_t kCapacity = 64;
    constexpr ArrayBlock kSpace = 512;

    for (std::uint64_t seed : {11u, 12u, 13u}) {
        BufferCache real(kCapacity);
        RefBufferCache ref(kCapacity);
        Rng rng(seed);

        for (int op = 0; op < 20000; ++op) {
            const ArrayBlock b = rng.below(kSpace);
            std::vector<ArrayBlock> wb_real, wb_ref;
            switch (rng.below(8)) {
              case 0:
              case 1:
              case 2:
                ASSERT_EQ(real.readHit(b), ref.readHit(b))
                    << "op " << op << " seed " << seed;
                break;
              case 3:
              case 4:
                real.install(b, wb_real);
                ref.install(b, wb_ref);
                break;
              case 5:
              case 6:
                ASSERT_EQ(real.write(b, wb_real), ref.write(b, wb_ref))
                    << "op " << op << " seed " << seed;
                break;
              case 7:
                if (rng.chance(0.1)) {
                    // Rare full drop / sync, exact order compared.
                    if (rng.chance(0.5))
                        ASSERT_EQ(real.sync(), ref.sync())
                            << "op " << op << " seed " << seed;
                    else
                        ASSERT_EQ(real.dropAll(), ref.dropAll())
                            << "op " << op << " seed " << seed;
                }
                break;
            }
            // Dirty evictions must happen at the same ops with the
            // same victims.
            ASSERT_EQ(wb_real, wb_ref) << "op " << op << " seed "
                                       << seed;
            ASSERT_EQ(real.size(), ref.size());
        }

        EXPECT_EQ(real.stats().readLookups, ref.stats().readLookups);
        EXPECT_EQ(real.stats().readMisses, ref.stats().readMisses);
        EXPECT_EQ(real.stats().writeLookups, ref.stats().writeLookups);
        EXPECT_EQ(real.stats().writeMerges, ref.stats().writeMerges);
        EXPECT_EQ(real.stats().evictions, ref.stats().evictions);
        EXPECT_EQ(real.stats().dirtyWritebacks,
                  ref.stats().dirtyWritebacks);
        EXPECT_EQ(real.sync(), ref.sync());
        for (ArrayBlock b = 0; b < kSpace; ++b)
            ASSERT_EQ(real.contains(b), ref.contains(b));
    }
}

// ---------------------------------------------------------------------
// SweepScheduler vs. std::multimap reference.
// ---------------------------------------------------------------------

/**
 * The cylinder-keyed job queue the sweep schedulers used before the
 * bucket/bitmap rewrite: a multimap, where equal-key entries keep
 * insertion order, a lower_bound pick is the oldest job of its
 * cylinder and a prev(upper_bound) pick the newest.
 */
class RefSweepScheduler
{
  public:
    explicit RefSweepScheduler(SweepScheduler::Kind kind) : kind_(kind)
    {
    }

    void
    push(std::uint32_t cylinder, std::uint64_t seq)
    {
        jobs_.emplace(cylinder, seq);
    }

    /** Returns the seq of the popped job; jobs_ must be non-empty. */
    std::uint64_t
    pop(std::uint32_t cylinder)
    {
        using Kind = SweepScheduler::Kind;
        switch (kind_) {
          case Kind::LOOK: {
            if (goingUp_) {
                auto it = jobs_.lower_bound(cylinder);
                if (it != jobs_.end())
                    return take(it);
                goingUp_ = false;
                return take(std::prev(jobs_.end()));
            }
            auto it = jobs_.upper_bound(cylinder);
            if (it != jobs_.begin())
                return take(std::prev(it));
            goingUp_ = true;
            return take(jobs_.begin());
          }
          case Kind::CLOOK: {
            auto it = jobs_.lower_bound(cylinder);
            if (it == jobs_.end())
                it = jobs_.begin();    // Wrap to the lowest.
            return take(it);
          }
          case Kind::SSTF: {
            auto up = jobs_.lower_bound(cylinder);
            auto down_end = jobs_.lower_bound(cylinder);
            const bool has_up = up != jobs_.end();
            const bool has_down = down_end != jobs_.begin();
            if (!has_up)
                return take(std::prev(down_end));
            if (!has_down)
                return take(up);
            auto down = std::prev(down_end);
            const std::uint32_t d_up = up->first - cylinder;
            const std::uint32_t d_down = cylinder - down->first;
            return d_down <= d_up ? take(down) : take(up);
          }
        }
        return 0;
    }

    std::size_t size() const { return jobs_.size(); }

  private:
    std::uint64_t
    take(std::multimap<std::uint32_t, std::uint64_t>::iterator it)
    {
        const std::uint64_t seq = it->second;
        jobs_.erase(it);
        return seq;
    }

    SweepScheduler::Kind kind_;
    std::multimap<std::uint32_t, std::uint64_t> jobs_;
    bool goingUp_ = true;
};

void
driveSchedulers(SweepScheduler::Kind kind, SchedulerKind factory_kind,
                std::uint64_t seed)
{
    constexpr std::uint32_t kCylinders = 600;

    std::unique_ptr<Scheduler> real = makeScheduler(factory_kind);
    RefSweepScheduler ref(kind);
    Rng rng(seed);
    std::uint64_t next_seq = 1;
    std::uint32_t arm = 0;

    for (int op = 0; op < 20000; ++op) {
        if (real->empty() || rng.chance(0.55)) {
            // Bursty pushes, often several to the same cylinder so
            // equal-key FIFO order inside a bucket is exercised.
            const std::uint32_t cyl = rng.below(kCylinders);
            const std::uint64_t burst = 1 + rng.below(3);
            for (std::uint64_t i = 0; i < burst; ++i) {
                auto job = std::make_unique<MediaJob>();
                job->cylinder = cyl;
                job->seq = next_seq;
                real->push(std::move(job));
                ref.push(cyl, next_seq);
                ++next_seq;
            }
        } else {
            std::unique_ptr<MediaJob> job = real->pop(arm);
            ASSERT_NE(job, nullptr);
            ASSERT_EQ(job->seq, ref.pop(arm))
                << "op " << op << " seed " << seed << " arm " << arm;
            // The arm follows the serviced job, as in the controller.
            arm = job->cylinder;
        }
        ASSERT_EQ(real->size(), ref.size());
    }

    // Drain completely: the tail of the sweep (direction reversals,
    // wrap-around) must match too.
    while (!real->empty()) {
        std::unique_ptr<MediaJob> job = real->pop(arm);
        ASSERT_EQ(job->seq, ref.pop(arm)) << "drain, seed " << seed;
        arm = job->cylinder;
    }
    EXPECT_EQ(ref.size(), 0u);
}

TEST(ContainerEquiv, SweepSchedulerLook)
{
    for (std::uint64_t seed : {21u, 22u, 23u})
        driveSchedulers(SweepScheduler::Kind::LOOK, SchedulerKind::LOOK,
                        seed);
}

TEST(ContainerEquiv, SweepSchedulerClook)
{
    for (std::uint64_t seed : {24u, 25u, 26u})
        driveSchedulers(SweepScheduler::Kind::CLOOK,
                        SchedulerKind::CLOOK, seed);
}

TEST(ContainerEquiv, SweepSchedulerSstf)
{
    for (std::uint64_t seed : {27u, 28u, 29u})
        driveSchedulers(SweepScheduler::Kind::SSTF, SchedulerKind::SSTF,
                        seed);
}

// ---------------------------------------------------------------------
// HdcStore vs. std::unordered_map reference.
// ---------------------------------------------------------------------

TEST(ContainerEquiv, HdcStore)
{
    constexpr std::uint64_t kCapacity = 40;
    constexpr BlockNum kSpace = 160;

    for (std::uint64_t seed : {31u, 32u, 33u}) {
        HdcStore real(kCapacity);
        std::unordered_map<BlockNum, bool> ref;  // block -> dirty
        Rng rng(seed);

        for (int op = 0; op < 20000; ++op) {
            const BlockNum b = rng.below(kSpace);
            switch (rng.below(8)) {
              case 0:
              case 1:
              case 2: {
                const bool want =
                    ref.size() < kCapacity && !ref.count(b);
                ASSERT_EQ(real.pin(b), want)
                    << "op " << op << " seed " << seed;
                if (want)
                    ref[b] = false;
                break;
              }
              case 3: {
                bool was_dirty = false;
                auto it = ref.find(b);
                ASSERT_EQ(real.unpin(b, &was_dirty), it != ref.end());
                if (it != ref.end()) {
                    ASSERT_EQ(was_dirty, it->second);
                    ref.erase(it);
                }
                break;
              }
              case 4:
              case 5: {
                auto it = ref.find(b);
                ASSERT_EQ(real.absorbWrite(b), it != ref.end());
                if (it != ref.end())
                    it->second = true;
                break;
              }
              case 6: {
                std::uint64_t want = 0;
                while (ref.count(b + want))
                    ++want;
                ASSERT_EQ(real.prefixPinned(b, 8),
                          std::min<std::uint64_t>(want, 8));
                break;
              }
              case 7:
                if (rng.chance(0.05)) {
                    // Flush order is unspecified for both
                    // implementations; compare as sets.
                    std::vector<BlockNum> got = real.flush();
                    std::sort(got.begin(), got.end());
                    std::vector<BlockNum> want;
                    for (auto& [blk, dirty] : ref) {
                        if (dirty) {
                            want.push_back(blk);
                            dirty = false;
                        }
                    }
                    std::sort(want.begin(), want.end());
                    ASSERT_EQ(got, want)
                        << "op " << op << " seed " << seed;
                }
                break;
            }
            ASSERT_EQ(real.pinnedBlocks(), ref.size());
        }

        std::uint64_t dirty = 0;
        for (const auto& [blk, is_dirty] : ref) {
            ASSERT_TRUE(real.contains(blk));
            dirty += is_dirty ? 1 : 0;
        }
        EXPECT_EQ(real.dirtyBlocks(), dirty);
        for (BlockNum b = 0; b < kSpace; ++b)
            ASSERT_EQ(real.contains(b), ref.count(b) != 0);
    }
}

// ---------------------------------------------------------------------
// FlatTable vs. std::unordered_map reference.
// ---------------------------------------------------------------------

TEST(ContainerEquiv, FlatTable)
{
    // Heavy insert/erase churn with a small key space stresses the
    // backward-shift deletion and rehashing; clustered keys (runs of
    // consecutive block numbers) stress linear probing.
    for (std::uint64_t seed : {41u, 42u, 43u}) {
        FlatTable<std::uint64_t> real(8);
        std::unordered_map<std::uint64_t, std::uint64_t> ref;
        Rng rng(seed);

        for (int op = 0; op < 30000; ++op) {
            const std::uint64_t key =
                rng.below(64) * 64 + rng.below(24);  // clustered
            switch (rng.below(4)) {
              case 0:
              case 1: {
                const std::uint64_t val = rng.next64();
                const auto [slot, inserted] = real.insert(key, val);
                const auto [it, ref_inserted] = ref.emplace(key, val);
                ASSERT_EQ(inserted, ref_inserted)
                    << "op " << op << " seed " << seed;
                ASSERT_EQ(*slot, it->second);
                break;
              }
              case 2:
                ASSERT_EQ(real.erase(key), ref.erase(key) != 0)
                    << "op " << op << " seed " << seed;
                break;
              case 3: {
                const std::uint64_t* v = real.find(key);
                auto it = ref.find(key);
                ASSERT_EQ(v != nullptr, it != ref.end());
                if (v) {
                    ASSERT_EQ(*v, it->second);
                }
                break;
              }
            }
            ASSERT_EQ(real.size(), ref.size());
        }

        // Final contents, via iteration (order-insensitive).
        std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
        real.forEach([&](std::uint64_t k, std::uint64_t& v) {
            got.emplace_back(k, v);
        });
        std::sort(got.begin(), got.end());
        std::vector<std::pair<std::uint64_t, std::uint64_t>> want(
            ref.begin(), ref.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want);
    }
}

} // namespace
} // namespace dtsim
