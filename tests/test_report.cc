/** @file Tests for the statistics report printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"
#include "experiment_replay.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace {

TEST(Report, ContainsKeyLines)
{
    SystemConfig cfg;
    cfg.disks = 2;
    cfg.streams = 8;
    cfg.kind = SystemKind::Segm;

    SyntheticParams sp;
    sp.numFiles = 1000;
    sp.numRequests = 100;
    const SyntheticWorkload w =
        makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks());
    const RunResult r = test::replayTrace(cfg, w.trace);

    std::ostringstream os;
    printReport(os, cfg, r);
    const std::string out = os.str();

    EXPECT_NE(out.find("system: Segm"), std::string::npos);
    EXPECT_NE(out.find("sim.io_time_ms"), std::string::npos);
    EXPECT_NE(out.find("sim.cache.hit_rate"), std::string::npos);
    EXPECT_NE(out.find("sim.media.accesses"), std::string::npos);
    EXPECT_NE(out.find("# total I/O time"), std::string::npos);
}

TEST(Report, ValuesMatchResult)
{
    SystemConfig cfg;
    cfg.disks = 2;
    cfg.streams = 4;

    SyntheticParams sp;
    sp.numFiles = 500;
    sp.numRequests = 50;
    const SyntheticWorkload w =
        makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks());
    const RunResult r = test::replayTrace(cfg, w.trace);

    std::ostringstream os;
    printReport(os, cfg, r);
    const std::string out = os.str();

    // The requests line carries the exact count.
    const std::string needle =
        "sim.requests " + std::to_string(r.requests);
    EXPECT_NE(out.find(needle), std::string::npos) << out;
}

} // namespace
} // namespace dtsim
