/**
 * @file
 * Tests for the parallel sweep runner: runSweep() must return results
 * bit-identical to sequential runTrace() calls, at any thread count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <vector>

#include "core/sweep.hh"
#include "experiment_replay.hh"
#include "hdc/hdc_planner.hh"
#include "workload/server_models.hh"

namespace dtsim {
namespace {

/** Every counter in RunResult must match exactly. */
void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.ioTime, b.ioTime);
    EXPECT_EQ(a.flushTime, b.flushTime);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.hdcHitRate, b.hdcHitRate);
    EXPECT_EQ(a.cacheHitRate, b.cacheHitRate);
    EXPECT_EQ(a.diskUtilization, b.diskUtilization);
    EXPECT_EQ(a.throughputMBps, b.throughputMBps);
    EXPECT_EQ(a.throughputElapsedMBps, b.throughputElapsedMBps);
    EXPECT_EQ(a.meanLatencyMs, b.meanLatencyMs);
    EXPECT_EQ(a.victimPins, b.victimPins);
    EXPECT_EQ(a.victimUnpins, b.victimUnpins);

    EXPECT_EQ(a.agg.reads, b.agg.reads);
    EXPECT_EQ(a.agg.writes, b.agg.writes);
    EXPECT_EQ(a.agg.readBlocks, b.agg.readBlocks);
    EXPECT_EQ(a.agg.writeBlocks, b.agg.writeBlocks);
    EXPECT_EQ(a.agg.cacheHitRequests, b.agg.cacheHitRequests);
    EXPECT_EQ(a.agg.hdcHitRequests, b.agg.hdcHitRequests);
    EXPECT_EQ(a.agg.hdcHitBlocks, b.agg.hdcHitBlocks);
    EXPECT_EQ(a.agg.raHitBlocks, b.agg.raHitBlocks);
    EXPECT_EQ(a.agg.mediaAccesses, b.agg.mediaAccesses);
    EXPECT_EQ(a.agg.mediaBlocks, b.agg.mediaBlocks);
    EXPECT_EQ(a.agg.readAheadBlocks, b.agg.readAheadBlocks);
    EXPECT_EQ(a.agg.flushWrites, b.agg.flushWrites);
    EXPECT_EQ(a.agg.flushBlocks, b.agg.flushBlocks);
    EXPECT_EQ(a.agg.seekTime, b.agg.seekTime);
    EXPECT_EQ(a.agg.rotTime, b.agg.rotTime);
    EXPECT_EQ(a.agg.xferTime, b.agg.xferTime);
    EXPECT_EQ(a.agg.mediaBusy, b.agg.mediaBusy);
}

/** A small Web-server workload plus jobs across striping/HDC/kind. */
class SweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SystemConfig proto;
        ServerModelParams params = webServerParams(0.01);
        params.streams = 32;
        workload_ = makeServerWorkload(
            params, proto.disks * proto.disk.totalBlocks());

        const std::uint64_t units_kb[] = {16, 64, 128};
        bitmaps_.resize(std::size(units_kb));
        for (std::size_t i = 0; i < std::size(units_kb); ++i) {
            SystemConfig cfg = proto;
            cfg.streams = params.streams;
            cfg.stripeUnitBytes = units_kb[i] * kKiB;

            StripingMap striping(
                cfg.disks, cfg.stripeUnitBytes / cfg.disk.blockSize,
                cfg.disk.totalBlocks());
            bitmaps_[i] =
                workload_.image->buildBitmaps(striping);

            SweepJob segm;
            segm.cfg = cfg;
            segm.cfg.kind = SystemKind::Segm;
            segm.trace = &workload_.trace;
            jobs_.push_back(std::move(segm));

            SweepJob forr;
            forr.cfg = cfg;
            forr.cfg.kind = SystemKind::FOR;
            forr.trace = &workload_.trace;
            forr.bitmaps = &bitmaps_[i];
            jobs_.push_back(std::move(forr));
        }

        // One HDC job so pin-plan wiring is covered too.
        StripingMap striping(
            proto.disks,
            proto.stripeUnitBytes / proto.disk.blockSize,
            proto.disk.totalBlocks());
        SweepJob hdc;
        hdc.cfg = proto;
        hdc.cfg.streams = params.streams;
        hdc.cfg.hdcBytesPerDisk = 1 * kMiB;
        hdc.trace = &workload_.trace;
        pinned_ = selectPinnedBlocks(
            workload_.trace, striping,
            hdcBlocksPerDisk(hdc.cfg));
        hdc.pinned = &pinned_;
        jobs_.push_back(std::move(hdc));
    }

    ServerWorkload workload_;
    std::vector<std::vector<LayoutBitmap>> bitmaps_;
    std::vector<ArrayBlock> pinned_;
    std::vector<SweepJob> jobs_;
};

TEST_F(SweepTest, SingleThreadMatchesSequentialRunTrace)
{
    std::vector<RunResult> sequential;
    for (const SweepJob& job : jobs_) {
        sequential.push_back(test::replayTrace(
            job.cfg, *job.trace, job.bitmaps, job.pinned));
    }

    const std::vector<RunResult> swept = runSweep(jobs_, 1);
    ASSERT_EQ(swept.size(), sequential.size());
    for (std::size_t i = 0; i < swept.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(swept[i], sequential[i]);
    }
}

TEST_F(SweepTest, MultiThreadIsBitIdenticalToSequential)
{
    std::vector<RunResult> sequential;
    for (const SweepJob& job : jobs_) {
        sequential.push_back(test::replayTrace(
            job.cfg, *job.trace, job.bitmaps, job.pinned));
    }

    for (unsigned threads : {2u, 4u, 7u}) {
        const std::vector<RunResult> swept =
            runSweep(jobs_, threads);
        ASSERT_EQ(swept.size(), sequential.size());
        for (std::size_t i = 0; i < swept.size(); ++i) {
            SCOPED_TRACE(::testing::Message()
                         << "threads=" << threads << " job=" << i);
            expectIdentical(swept[i], sequential[i]);
        }
    }
}

TEST(Sweep, EmptyAndThreadCountEdgeCases)
{
    EXPECT_TRUE(runSweep({}, 0).empty());
    EXPECT_TRUE(runSweep({}, 16).empty());
}

TEST(Sweep, JobsEnvOverridesThreadCount)
{
    setenv("DTSIM_JOBS", "3", 1);
    EXPECT_EQ(sweepJobs(), 3u);
    setenv("DTSIM_JOBS", "0", 1);
    EXPECT_GE(sweepJobs(), 1u);
    unsetenv("DTSIM_JOBS");
    EXPECT_GE(sweepJobs(), 1u);
}

} // namespace
} // namespace dtsim
