/** @file Tests for the paper's closed-form models. */

#include <gtest/gtest.h>

#include "analytic/models.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace analytic {
namespace {

TEST(Analytic, AverageSeekMatchesDrive)
{
    DiskParams p;
    EXPECT_NEAR(averageSeekMs(p), 3.4, 0.3);
}

TEST(Analytic, AverageRotationIsHalfRevolution)
{
    DiskParams p;
    EXPECT_DOUBLE_EQ(averageRotationMs(p), 2.0);
}

TEST(Analytic, RequestTimeGrowsLinearlyInBlocks)
{
    DiskParams p;
    const double t1 = requestTimeMs(p, 1);
    const double t33 = requestTimeMs(p, 33);
    // Adding 32 blocks (128 KB) at 54 MB/s adds ~2.43 ms.
    EXPECT_NEAR(t33 - t1, 32 * 4096.0 / 54.0e6 * 1e3, 1e-9);
}

TEST(Analytic, UtilizationReductionMatchesPaperExample)
{
    // Section 4: 4 KB files vs 128 KB blind read-ahead reduces disk
    // utilization by 29% on the modeled drive.
    DiskParams p;
    const double red = utilizationReduction(p, 4 * kKiB, 128 * kKiB);
    EXPECT_NEAR(red, 0.29, 0.03);
}

TEST(Analytic, GammaFactorMatchesUniformModel)
{
    EXPECT_DOUBLE_EQ(gammaFactor(1), 1.0);
    EXPECT_DOUBLE_EQ(gammaFactor(3), 1.5);
    EXPECT_NEAR(gammaFactor(8), 16.0 / 9.0, 1e-12);
}

TEST(Analytic, StripedResponseTradeoff)
{
    // Splitting a large request reduces per-disk transfer but adds
    // the gamma(D) factor; for a 128-block request over 8 disks the
    // response should still beat one disk doing all of it.
    DiskParams p;
    EXPECT_LT(stripedResponseMs(p, 512, 8), requestTimeMs(p, 512));
}

TEST(Analytic, ConventionalHitRateRegimes)
{
    // f = 4-block files, c = 864-block cache, s = 27 segments,
    // p = 1 block/request.
    // Few streams: min(f, c/s) = 4 -> 3/4.
    EXPECT_DOUBLE_EQ(conventionalHitRate(4, 864, 27, 1, 10), 0.75);
    // Many streams: (p-1)/p = 0.
    EXPECT_DOUBLE_EQ(conventionalHitRate(4, 864, 27, 1, 100), 0.0);
    // Large files clip at the segment size c/s = 32.
    EXPECT_DOUBLE_EQ(conventionalHitRate(64, 864, 27, 1, 10),
                     31.0 / 32.0);
}

TEST(Analytic, ForHitRateRegimes)
{
    // FOR holds whole small files: hit rate (f-1)/f while streams
    // fit in the pool (t <= c/f).
    EXPECT_DOUBLE_EQ(forHitRate(4, 864, 1, 100), 0.75);
    EXPECT_DOUBLE_EQ(forHitRate(4, 864, 1, 300), 0.0);
}

TEST(Analytic, ForBeatsConventionalForSmallFilesManyStreams)
{
    // Section 4's claim: for files < 128 KB and t > 27 (per disk),
    // FOR's hit rate exceeds the conventional one.
    const double c = 864;   // blocks
    const double s = 27;
    for (double f : {2.0, 4.0, 8.0, 16.0}) {
        for (double t : {28.0, 64.0, 128.0}) {
            if (t <= c / f) {
                EXPECT_GT(forHitRate(f, c, 1, t),
                          conventionalHitRate(f, c, s, 1, t))
                    << "f=" << f << " t=" << t;
            }
        }
    }
}

TEST(Analytic, ZipfTopMassBasics)
{
    EXPECT_DOUBLE_EQ(zipfTopMass(0, 100, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(zipfTopMass(100, 100, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(zipfTopMass(200, 100, 0.5), 1.0);
    // Uniform: top-k mass is k/n.
    EXPECT_NEAR(zipfTopMass(25, 100, 0.0), 0.25, 1e-12);
}

TEST(Analytic, ZipfTopMassMatchesSampler)
{
    ZipfSampler z(1000, 0.43);
    EXPECT_NEAR(zipfTopMass(100, 1000, 0.43), z.topMass(100), 1e-9);
}

TEST(Analytic, HdcMemoryTradeoff)
{
    // Section 5: Hmax = D*c - Rmin; FOR's Rmin = t*f is smaller than
    // blind's t*(c/s) for small files, leaving more room for HDC.
    const double c = 864, s = 27, t = 128, f = 4;
    EXPECT_LT(rminFor(t, f), rminBlind(t, c, s));
    EXPECT_GT(hdcMaxBlocks(8, c, rminFor(t, f)),
              hdcMaxBlocks(8, c, rminBlind(t, c, s)));
}

TEST(Analytic, AverageSequentialRunShape)
{
    // Figure 1's quoted numbers: 32-block files at 5% fragmentation
    // drop to ~12.5 sequential blocks; 8-block files to ~5.9.
    EXPECT_NEAR(averageSequentialRun(32, 0.05), 12.5, 0.1);
    EXPECT_NEAR(averageSequentialRun(8, 0.05), 5.9, 0.1);
    EXPECT_DOUBLE_EQ(averageSequentialRun(32, 0.0), 32.0);
    EXPECT_DOUBLE_EQ(averageSequentialRun(1, 0.5), 1.0);
}

} // namespace
} // namespace analytic
} // namespace dtsim
