/** @file Integration tests for the striped disk array. */

#include <gtest/gtest.h>

#include "array/disk_array.hh"
#include "sim/event_queue.hh"

namespace dtsim {
namespace {

struct Rig
{
    EventQueue eq;
    ArrayConfig cfg;
    std::unique_ptr<DiskArray> array;

    explicit Rig(unsigned disks = 4,
                 std::uint64_t unit_bytes = 32 * kKiB)
    {
        cfg.disks = disks;
        cfg.stripeUnitBytes = unit_bytes;
        array = std::make_unique<DiskArray>(eq, cfg);
    }

    Tick
    doRequest(ArrayBlock start, std::uint64_t count,
              bool write = false)
    {
        Tick done = 0;
        ArrayRequest req;
        req.start = start;
        req.count = count;
        req.isWrite = write;
        req.onComplete = [&](const ArrayRequest&, Tick when) {
            done = when;
        };
        array->submit(std::move(req));
        eq.run();
        EXPECT_GT(done, 0u);
        return done;
    }
};

TEST(DiskArray, SmallRequestHitsOneDisk)
{
    Rig r;
    r.doRequest(0, 4);
    EXPECT_EQ(r.array->controller(0).stats().reads, 1u);
    for (unsigned d = 1; d < 4; ++d)
        EXPECT_EQ(r.array->controller(d).stats().reads, 0u);
}

TEST(DiskArray, LargeRequestFansOut)
{
    Rig r;   // 8-block units.
    r.doRequest(0, 32);   // 4 units -> all 4 disks.
    for (unsigned d = 0; d < 4; ++d) {
        EXPECT_EQ(r.array->controller(d).stats().reads, 1u);
        EXPECT_EQ(r.array->controller(d).stats().readBlocks, 8u);
    }
}

TEST(DiskArray, CompletionWaitsForAllSubRequests)
{
    Rig r;
    const Tick fanout = r.doRequest(0, 32);
    Rig r2;
    const Tick single = r2.doRequest(0, 8);
    // The fan-out completes no earlier than a single sub-request of
    // the same per-disk size (gamma(D) >= 1).
    EXPECT_GE(fanout, single);
}

TEST(DiskArray, OutstandingTracksInFlight)
{
    Rig r;
    ArrayRequest req;
    req.start = 0;
    req.count = 32;
    req.onComplete = [](const ArrayRequest&, Tick) {};
    r.array->submit(std::move(req));
    EXPECT_EQ(r.array->outstanding(), 1u);
    r.eq.run();
    EXPECT_EQ(r.array->outstanding(), 0u);
}

TEST(DiskArray, AllCacheHitsFlagPropagates)
{
    Rig r;
    {
        ArrayRequest req;
        req.start = 0;
        req.count = 4;
        r.array->submit(std::move(req));
        r.eq.run();
    }
    bool all_hits = false;
    ArrayRequest again;
    again.start = 0;
    again.count = 4;
    again.onComplete = [&](const ArrayRequest& done, Tick) {
        all_hits = done.allCacheHits;
    };
    r.array->submit(std::move(again));
    r.eq.run();
    EXPECT_TRUE(all_hits);
}

TEST(DiskArray, PinRoutesToOwningDisk)
{
    ArrayConfig cfg;
    cfg.disks = 4;
    cfg.stripeUnitBytes = 32 * kKiB;
    cfg.controller.hdcBytes = 256 * kKiB;
    EventQueue eq;
    DiskArray array(eq, cfg);

    // Logical block 8 sits on disk 1 (unit 8 blocks).
    EXPECT_TRUE(array.pinLogicalBlock(8));
    EXPECT_EQ(array.controller(1).hdcPinnedBlocks(), 1u);
    EXPECT_EQ(array.controller(0).hdcPinnedBlocks(), 0u);
    EXPECT_TRUE(array.unpinLogicalBlock(8));
    EXPECT_EQ(array.controller(1).hdcPinnedBlocks(), 0u);
}

TEST(DiskArray, FlushAllHdcCoversEveryDisk)
{
    ArrayConfig cfg;
    cfg.disks = 2;
    cfg.stripeUnitBytes = 4 * kKiB;   // 1-block units.
    cfg.controller.hdcBytes = 256 * kKiB;
    EventQueue eq;
    DiskArray array(eq, cfg);
    array.pinLogicalBlock(0);   // Disk 0.
    array.pinLogicalBlock(1);   // Disk 1.

    // Write both pinned blocks (absorbed, dirty).
    for (ArrayBlock b : {0u, 1u}) {
        ArrayRequest req;
        req.start = b;
        req.count = 1;
        req.isWrite = true;
        array.submit(std::move(req));
    }
    eq.run();
    EXPECT_EQ(array.flushAllHdc(), 2u);
    eq.run();
    EXPECT_EQ(array.aggregateStats().flushWrites, 2u);
}

TEST(DiskArray, AggregateStatsSumAcrossDisks)
{
    Rig r;
    r.doRequest(0, 32);
    const ControllerStats agg = r.array->aggregateStats();
    EXPECT_EQ(agg.reads, 4u);
    EXPECT_EQ(agg.readBlocks, 32u);
    EXPECT_EQ(agg.mediaAccesses, 4u);
}

TEST(DiskArray, RejectsOutOfRange)
{
    EXPECT_DEATH(
        {
            Rig r;
            ArrayRequest req;
            req.start = r.array->totalBlocks();
            req.count = 1;
            r.array->submit(std::move(req));
        },
        "past end");
}

TEST(DiskArray, ManyConcurrentRequestsBalanceLoad)
{
    Rig r(4, 4 * kKiB);   // 1-block units spread everything.
    int done = 0;
    for (int i = 0; i < 400; ++i) {
        ArrayRequest req;
        req.start = static_cast<ArrayBlock>(i * 997 % 100000);
        req.count = 1;
        req.onComplete = [&](const ArrayRequest&, Tick) { ++done; };
        r.array->submit(std::move(req));
    }
    r.eq.run();
    EXPECT_EQ(done, 400);
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_GT(r.array->controller(d).stats().reads, 50u);
}

} // namespace
} // namespace dtsim
