/** @file Tests for the Section 6.2 synthetic workload generator. */

#include <gtest/gtest.h>

#include <unordered_map>

#include "workload/synthetic.hh"

namespace dtsim {
namespace {

constexpr std::uint64_t kCapacity = 16ULL << 20;   // Blocks.

TEST(Synthetic, GeneratesRequestedJobCount)
{
    SyntheticParams p;
    p.numFiles = 1000;
    p.fileSizeBytes = 16 * kKiB;
    p.numRequests = 500;
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    const TraceStats s = computeStats(w.trace);
    EXPECT_EQ(s.jobs, 500u);
    EXPECT_GE(s.records, 500u);
}

TEST(Synthetic, WholeFilesAreRead)
{
    SyntheticParams p;
    p.numFiles = 100;
    p.fileSizeBytes = 16 * kKiB;   // 4 blocks.
    p.numRequests = 200;
    p.coalesceProb = 1.0;          // One record per file access.
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    for (const TraceRecord& r : w.trace)
        EXPECT_EQ(r.count, 4u);
}

TEST(Synthetic, CoalescingControlsRecordSizes)
{
    SyntheticParams p;
    p.numFiles = 100;
    p.fileSizeBytes = 16 * kKiB;
    p.numRequests = 2000;
    p.coalesceProb = 0.0;
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    const TraceStats s = computeStats(w.trace);
    EXPECT_DOUBLE_EQ(s.meanRecordBlocks, 1.0);
    EXPECT_EQ(s.records, 8000u);
}

TEST(Synthetic, MeanRecordsPerJobMatchesCoalescingModel)
{
    SyntheticParams p;
    p.numFiles = 500;
    p.fileSizeBytes = 16 * kKiB;   // 4 blocks, 3 boundaries.
    p.numRequests = 20000;
    p.coalesceProb = 0.87;
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    const TraceStats s = computeStats(w.trace);
    const double per_job =
        static_cast<double>(s.records) / static_cast<double>(s.jobs);
    EXPECT_NEAR(per_job, 1.0 + 3.0 * 0.13, 0.02);
}

TEST(Synthetic, WriteProbabilityRespected)
{
    SyntheticParams p;
    p.numFiles = 1000;
    p.numRequests = 20000;
    p.writeProb = 0.3;
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    const TraceStats s = computeStats(w.trace);
    EXPECT_NEAR(s.writeRecordFraction, 0.3, 0.02);
}

TEST(Synthetic, ZipfSkewsFilePopularity)
{
    SyntheticParams p;
    p.numFiles = 1000;
    p.numRequests = 20000;
    p.zipfAlpha = 1.0;
    p.coalesceProb = 1.0;
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    // The most popular file's start block should appear far more
    // often than a uniform share.
    std::unordered_map<ArrayBlock, int> starts;
    for (const TraceRecord& r : w.trace)
        ++starts[r.start / 4 * 4];
    int max_count = 0;
    for (const auto& [b, n] : starts)
        max_count = std::max(max_count, n);
    EXPECT_GT(max_count, 20000 / 1000 * 10);
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticParams p;
    p.numFiles = 200;
    p.numRequests = 300;
    const SyntheticWorkload a = makeSynthetic(p, kCapacity);
    const SyntheticWorkload b = makeSynthetic(p, kCapacity);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i)
        EXPECT_EQ(a.trace[i].start, b.trace[i].start);
}

TEST(Synthetic, FragmentationSplitsRecords)
{
    SyntheticParams p;
    p.numFiles = 500;
    p.fileSizeBytes = 32 * kKiB;
    p.numRequests = 2000;
    p.coalesceProb = 1.0;
    p.fragmentation = 0.5;
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    const TraceStats s = computeStats(w.trace);
    // With heavy fragmentation, whole-file reads split into several
    // extent-sized records even at 100% coalescing.
    EXPECT_GT(static_cast<double>(s.records) /
                  static_cast<double>(s.jobs),
              2.0);
}

TEST(Synthetic, JobsAreContiguousInTrace)
{
    SyntheticParams p;
    p.numFiles = 100;
    p.numRequests = 500;
    p.coalesceProb = 0.5;
    const SyntheticWorkload w = makeSynthetic(p, kCapacity);
    std::uint32_t prev = 0;
    bool first = true;
    for (const TraceRecord& r : w.trace) {
        if (!first) {
            EXPECT_TRUE(r.job == prev || r.job == prev + 1);
        }
        prev = r.job;
        first = false;
    }
}

} // namespace
} // namespace dtsim
