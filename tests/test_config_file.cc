/**
 * @file
 * Config-file loader tests: plain key=value mode, comment and blank
 * handling, precise file:line errors, and the embedded "#conf" mode
 * that makes stats dumps and traces reloadable.
 */

#include <gtest/gtest.h>

#include "config/config_file.hh"
#include "config/sim_config.hh"

using namespace dtsim;
using namespace dtsim::config;

namespace {

struct Bound
{
    SimulationConfig sim;
    ParamRegistry reg;
    Bound() { bindParams(reg, sim); }
};

TEST(SplitAssignment, SplitsAndTrims)
{
    std::string key, value, err;
    ASSERT_TRUE(splitAssignment("  system.disks =  4 ", key, value,
                                err));
    EXPECT_EQ(key, "system.disks");
    EXPECT_EQ(value, "4");

    ASSERT_TRUE(splitAssignment("a=b", key, value, err));
    EXPECT_EQ(key, "a");
    EXPECT_EQ(value, "b");

    EXPECT_FALSE(splitAssignment("no equals here", key, value, err));
    EXPECT_FALSE(splitAssignment("= value", key, value, err));
}

TEST(ConfigFile, PlainModeAppliesAssignments)
{
    Bound b;
    std::string err;
    ASSERT_TRUE(loadConfigText("# a figure config\n"
                               "\n"
                               "workload.kind = web\n"
                               "system.kind = for\n"
                               "system.stripe_unit_bytes = 16384\n"
                               "   system.disks = 4   \n",
                               "test.conf", b.reg, err))
        << err;
    EXPECT_EQ(b.sim.workload, WorkloadKind::Web);
    EXPECT_EQ(b.sim.system.kind, SystemKind::FOR);
    EXPECT_EQ(b.sim.system.stripeUnitBytes, 16384u);
    EXPECT_EQ(b.sim.system.disks, 4u);
}

TEST(ConfigFile, ErrorsCarryFileAndLine)
{
    Bound b;
    std::string err;
    EXPECT_FALSE(loadConfigText("workload.kind = web\n"
                                "system.disks = four\n",
                                "bad.conf", b.reg, err));
    EXPECT_NE(err.find("bad.conf:2:"), std::string::npos) << err;
    EXPECT_NE(err.find("system.disks"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(loadConfigText("nonsense line\n", "bad.conf", b.reg,
                                err));
    EXPECT_NE(err.find("bad.conf:1:"), std::string::npos) << err;

    err.clear();
    EXPECT_FALSE(loadConfigText("no.such.key = 1\n", "bad.conf",
                                b.reg, err));
    EXPECT_NE(err.find("unknown parameter"), std::string::npos)
        << err;
}

TEST(ConfigFile, EmbeddedModeParsesOnlyConfLines)
{
    // A stats-dump-shaped file: header lines, stats lines, and JSONL
    // records. Only the "#conf" lines must be interpreted.
    Bound b;
    std::string err;
    ASSERT_TRUE(loadConfigText(
                    "# dtsim effective config\n"
                    "#conf system.kind = nora\n"
                    "#conf system.disks = 2\n"
                    "# end of effective config\n"
                    "sim.media.reads 1234 # stats line, not config\n"
                    "{\"t\":5,\"disk\":0}\n"
                    "would be = a parse error in plain mode\n",
                    "dump.txt", b.reg, err))
        << err;
    EXPECT_EQ(b.sim.system.kind, SystemKind::NoRA);
    EXPECT_EQ(b.sim.system.disks, 2u);
    // Untouched keys keep their defaults.
    EXPECT_EQ(b.sim.system.streams, 128u);
}

TEST(ConfigFile, RenderedHeaderReloadsIdentically)
{
    // The round trip at the registry level: render a header from a
    // customized config, load it into a fresh one, and compare every
    // parameter's canonical value.
    Bound src;
    std::string err;
    ASSERT_TRUE(src.reg.set("workload.kind", "proxy", err)) << err;
    ASSERT_TRUE(src.reg.set("workload.scale", "0.013", err)) << err;
    ASSERT_TRUE(src.reg.set("system.kind", "for", err)) << err;
    ASSERT_TRUE(src.reg.set("system.hdc_bytes_per_disk", "2097152",
                            err))
        << err;
    ASSERT_TRUE(src.reg.set("disk.seek_alpha_ms", "1.55", err)) << err;
    ASSERT_TRUE(src.reg.set("run.stats_out", "/tmp/x.txt", err))
        << err;

    const std::string header = renderConfigHeader(src.sim);

    Bound dst;
    ASSERT_TRUE(
        loadConfigText(header, "header", dst.reg, err))
        << err;
    for (const ParamEntry& e : src.reg.entries())
        EXPECT_EQ(dst.reg.get(e.name), e.get()) << e.name;
}

TEST(ConfigFile, MissingFileFails)
{
    Bound b;
    std::string err;
    EXPECT_FALSE(loadConfigFile("/nonexistent/dtsim.conf", b.reg,
                                err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

} // namespace
