/** @file Tests for the logging/status helpers. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace dtsim {
namespace {

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Logging, StrfmtLongStrings)
{
    const std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(old);
}

TEST(LoggingDeath, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("boom %d", 7),
                ::testing::ExitedWithCode(1), "fatal: boom 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("bug %s", "here"), "panic: bug here");
}

} // namespace
} // namespace dtsim
