/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace dtsim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, TimeAdvancesToFiredEvent)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(123, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, SchedulingInPastThrows)
{
    EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.run();
    EXPECT_THROW(eq.scheduleAt(50, [] {}), std::logic_error);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.scheduleAt(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    bool fired = false;
    const auto id = eq.scheduleAt(10, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    const auto id = eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails)
{
    EventQueue eq;
    const auto id = eq.scheduleAt(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelUpdatesPendingCount)
{
    EventQueue eq;
    const auto a = eq.scheduleAt(10, [] {});
    eq.scheduleAt(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(static_cast<Tick>(i), [&] { ++count; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10u, 20u, 30u, 40u})
        eq.scheduleAt(t, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.runUntil(25);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.now(), 25u);
    eq.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, FiredCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleAt(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.fired(), 7u);
}

TEST(EventQueue, IdsNotReusedAcrossGenerations)
{
    // A fired (or cancelled) event's slot is recycled for later
    // events, but the generation tag must keep the old handle dead:
    // cancelling a stale id can never hit the slot's new occupant.
    EventQueue eq;
    const auto first = eq.scheduleAt(10, [] {});
    eq.run();

    bool fired = false;
    const auto second = eq.scheduleAt(20, [&] { fired = true; });
    EXPECT_NE(first, second);
    EXPECT_FALSE(eq.cancel(first));
    eq.run();
    EXPECT_TRUE(fired);

    // Same via the cancel path: a cancelled id stays dead after its
    // slot is reused.
    const auto third = eq.scheduleAt(30, [] {});
    EXPECT_TRUE(eq.cancel(third));
    eq.run();
    bool fourth_fired = false;
    const auto fourth = eq.scheduleAt(40, [&] {
        fourth_fired = true;
    });
    EXPECT_NE(third, fourth);
    EXPECT_FALSE(eq.cancel(third));
    eq.run();
    EXPECT_TRUE(fourth_fired);
}

TEST(EventQueue, InterleavedScheduleCancelChurn)
{
    // Heavy schedule/cancel interleaving: every third event is
    // cancelled, some before and some after intervening fires, and
    // the survivors must fire exactly once in order.
    EventQueue eq;
    std::vector<int> fired;
    std::vector<EventQueue::EventId> ids;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 20; ++i) {
            const int tag = round * 20 + i;
            ids.push_back(eq.scheduleAfter(
                static_cast<Tick>(1 + (tag * 31) % 97),
                [&fired, tag] { fired.push_back(tag); }));
        }
        for (std::size_t k = ids.size() - 20; k < ids.size();
             k += 3) {
            EXPECT_TRUE(eq.cancel(ids[k]));
            EXPECT_FALSE(eq.cancel(ids[k]));
        }
        eq.run(5);
    }
    eq.run();
    EXPECT_TRUE(eq.empty());

    // 7 of every 20 scheduled events are cancelled (indices 0,3,..18
    // within each round's batch)...
    EXPECT_EQ(fired.size(), 50u * 20u - 50u * 7u);
    // ...and no event fires twice.
    std::vector<int> sorted = fired;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
}

TEST(EventQueue, DeterministicFireOrderUnderChurn)
{
    // The kernel contract: identical schedule/cancel sequences give
    // identical fire order, including (tick, insertion-order) ties.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        std::vector<EventQueue::EventId> ids;
        for (int i = 0; i < 500; ++i) {
            const Tick when = static_cast<Tick>((i * 7919) % 50);
            ids.push_back(eq.scheduleAt(
                when, [&order, i] { order.push_back(i); }));
            if (i % 5 == 2)
                eq.cancel(ids[static_cast<std::size_t>(i) / 2]);
        }
        eq.run();
        return order;
    };
    const std::vector<int> a = run_once();
    const std::vector<int> b = run_once();
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(EventQueue, CancelFromInsideCallback)
{
    // A callback cancelling a later event already in the heap.
    EventQueue eq;
    bool late_fired = false;
    const auto late = eq.scheduleAt(100, [&] { late_fired = true; });
    eq.scheduleAt(50, [&] { EXPECT_TRUE(eq.cancel(late)); });
    eq.run();
    EXPECT_FALSE(late_fired);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, FrontEventsRunBeforeNormalSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(10, [&] { order.push_back(2); });
    // Scheduled last, but the front class beats every normal event
    // at the same tick.
    eq.scheduleAtFront(10, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, FrontEventsAreFifoWithinTheirClass)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.scheduleAtFront(7, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, FrontEventsDoNotPerturbNormalOrder)
{
    // The front class must not disturb the relative order of normal
    // events -- existing goldens depend on schedule-order FIFO.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(5, [&] { order.push_back(10); });
    eq.scheduleAtFront(5, [&] { order.push_back(0); });
    eq.scheduleAt(5, [&] { order.push_back(11); });
    eq.scheduleAtFront(5, [&] { order.push_back(1); });
    eq.scheduleAt(5, [&] { order.push_back(12); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 12}));
}

TEST(EventQueue, FrontEventsOrderedAcrossTicks)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAtFront(20, [&] { order.push_back(2); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAtFront(5, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, FrontEventCanScheduleMoreFrontEvents)
{
    // The snapshot/stream chains re-arm themselves from inside their
    // own front event.
    EventQueue eq;
    std::vector<Tick> fired;
    std::function<void()> chain = [&] {
        fired.push_back(eq.now());
        if (eq.pending() > 0)
            eq.scheduleAtFront(eq.now() + 10, chain);
    };
    eq.scheduleAt(35, [] {});
    eq.scheduleAtFront(10, chain);
    eq.run();
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.scheduleAt(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace dtsim
