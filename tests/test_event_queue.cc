/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace dtsim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, TimeAdvancesToFiredEvent)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(123, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, SchedulingInPastThrows)
{
    EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.run();
    EXPECT_THROW(eq.scheduleAt(50, [] {}), std::logic_error);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleAfter(25, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.scheduleAt(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    bool fired = false;
    const auto id = eq.scheduleAt(10, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    const auto id = eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterFireFails)
{
    EventQueue eq;
    const auto id = eq.scheduleAt(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelUpdatesPendingCount)
{
    EventQueue eq;
    const auto a = eq.scheduleAt(10, [] {});
    eq.scheduleAt(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(static_cast<Tick>(i), [&] { ++count; });
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t : {10u, 20u, 30u, 40u})
        eq.scheduleAt(t, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.runUntil(25);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(eq.now(), 25u);
    eq.run();
    EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, FiredCounterAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleAt(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.fired(), 7u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        const Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.scheduleAt(when, [&, when] {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace dtsim
