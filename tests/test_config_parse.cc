/**
 * @file
 * Checked-parser tests: every malformed value class the registry must
 * reject (trailing junk, overflow, signs on unsigned fields, unknown
 * enum tokens) and the formatValue/parseValue round-trip guarantees.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "config/parse.hh"
#include "config/sim_config.hh"

using namespace dtsim;
using namespace dtsim::config;

namespace {

template <typename T>
testing::AssertionResult
rejects(const std::string& text)
{
    T out{};
    std::string err;
    if (parseValue(text, out, err))
        return testing::AssertionFailure()
               << "'" << text << "' parsed to " << formatValue(out);
    if (err.empty())
        return testing::AssertionFailure()
               << "'" << text << "' rejected without a reason";
    return testing::AssertionSuccess() << err;
}

template <typename T>
T
accepts(const std::string& text)
{
    T out{};
    std::string err;
    EXPECT_TRUE(parseValue(text, out, err)) << text << ": " << err;
    return out;
}

TEST(ConfigParse, U64Accepts)
{
    EXPECT_EQ(accepts<std::uint64_t>("0"), 0u);
    EXPECT_EQ(accepts<std::uint64_t>("131072"), 131072u);
    EXPECT_EQ(accepts<std::uint64_t>("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
    // Base prefixes are accepted (strtoull base 0).
    EXPECT_EQ(accepts<std::uint64_t>("0x20000"), 131072u);
}

TEST(ConfigParse, U64Rejects)
{
    EXPECT_TRUE(rejects<std::uint64_t>(""));
    EXPECT_TRUE(rejects<std::uint64_t>("abc"));
    EXPECT_TRUE(rejects<std::uint64_t>("12abc"));
    EXPECT_TRUE(rejects<std::uint64_t>("12 34"));
    EXPECT_TRUE(rejects<std::uint64_t>("-1"));
    EXPECT_TRUE(rejects<std::uint64_t>("12.5"));
    // One past uint64 max.
    EXPECT_TRUE(rejects<std::uint64_t>("18446744073709551616"));
    EXPECT_TRUE(rejects<std::uint64_t>(" 12"));
}

TEST(ConfigParse, U32Rejects)
{
    EXPECT_EQ(accepts<unsigned>("4294967295"), 4294967295u);
    // Fits in u64 but not u32: must be a range error, not silent
    // truncation.
    EXPECT_TRUE(rejects<unsigned>("4294967296"));
    EXPECT_TRUE(rejects<unsigned>("-1"));
    EXPECT_TRUE(rejects<unsigned>("8x"));
}

TEST(ConfigParse, DoubleAcceptsAndRejects)
{
    EXPECT_DOUBLE_EQ(accepts<double>("0.05"), 0.05);
    EXPECT_DOUBLE_EQ(accepts<double>("-2.5e-3"), -2.5e-3);
    EXPECT_TRUE(rejects<double>(""));
    EXPECT_TRUE(rejects<double>("0.05x"));
    EXPECT_TRUE(rejects<double>("zero"));
    EXPECT_TRUE(rejects<double>("1e999"));
    EXPECT_TRUE(rejects<double>("nan"));
    EXPECT_TRUE(rejects<double>("inf"));
}

TEST(ConfigParse, BoolTokens)
{
    EXPECT_TRUE(accepts<bool>("true"));
    EXPECT_TRUE(accepts<bool>("1"));
    EXPECT_TRUE(accepts<bool>("on"));
    EXPECT_TRUE(accepts<bool>("yes"));
    EXPECT_FALSE(accepts<bool>("false"));
    EXPECT_FALSE(accepts<bool>("0"));
    EXPECT_FALSE(accepts<bool>("off"));
    EXPECT_FALSE(accepts<bool>("no"));
    EXPECT_TRUE(rejects<bool>("maybe"));
    EXPECT_TRUE(rejects<bool>("TRUE"));
    EXPECT_TRUE(rejects<bool>(""));
}

TEST(ConfigParse, DoubleFormatRoundTrips)
{
    // Shortest round-trip formatting: parse(format(v)) == v exactly,
    // and common values stay human-readable.
    const double values[] = {0.0,  0.05, 0.87, 1.0 / 3.0,
                             21.5, 1e-9, 123456789.123456789};
    for (double v : values) {
        double back = 0.0;
        std::string err;
        ASSERT_TRUE(parseValue(formatValue(v), back, err))
            << formatValue(v);
        EXPECT_EQ(back, v) << formatValue(v);
    }
    EXPECT_EQ(formatValue(0.05), "0.05");
    EXPECT_EQ(formatValue(1.0), "1");
}

TEST(ConfigParse, EnumTableParseAndFormat)
{
    const EnumTable<SystemKind>& t = systemKindTokens();
    SystemKind k = SystemKind::Segm;
    std::string err;
    ASSERT_TRUE(t.parse("for", k, err));
    EXPECT_EQ(k, SystemKind::FOR);
    EXPECT_EQ(t.format(SystemKind::NoRA), "nora");
    EXPECT_FALSE(t.parse("FOR", k, err));
    EXPECT_NE(err.find("segm|block|nora|for"), std::string::npos);
}

TEST(ConfigParse, RegistryUnknownKeyAndBadValue)
{
    SimulationConfig sim;
    ParamRegistry reg;
    bindParams(reg, sim);

    std::string err;
    EXPECT_FALSE(reg.set("system.no_such_param", "1", err));
    EXPECT_NE(err.find("unknown parameter"), std::string::npos);
    EXPECT_NE(err.find("system.no_such_param"), std::string::npos);

    err.clear();
    EXPECT_FALSE(reg.set("system.disks", "eight", err));
    EXPECT_NE(err.find("system.disks"), std::string::npos);

    // A failed set leaves the bound field untouched.
    EXPECT_EQ(sim.system.disks, 8u);

    ASSERT_TRUE(reg.set("system.disks", "4", err)) << err;
    EXPECT_EQ(sim.system.disks, 4u);
    EXPECT_EQ(reg.get("system.disks"), "4");
}

TEST(ConfigParse, RegistryCoversEveryGroup)
{
    SimulationConfig sim;
    ParamRegistry reg;
    bindParams(reg, sim);

    const char* expected[] = {
        "workload.kind",      "workload.scale",
        "system.kind",        "system.stripe_unit_bytes",
        "disk.cache_bytes",   "disk.rpm",
        "synthetic.requests", "run.stats_out",
    };
    for (const char* name : expected)
        EXPECT_TRUE(reg.has(name)) << name;
    EXPECT_GE(reg.entries().size(), 40u);
}

} // namespace
