/** @file Tests for the file-system layout model and bitmap builder. */

#include <gtest/gtest.h>

#include "fs/file_layout.hh"

namespace dtsim {
namespace {

std::vector<std::uint64_t>
uniformSizes(std::size_t n, std::uint64_t bytes)
{
    return std::vector<std::uint64_t>(n, bytes);
}

TEST(FileLayout, SequentialAllocationWithoutFragmentation)
{
    LayoutParams lp;
    FileSystemImage img(uniformSizes(10, 16384), lp, 1000);
    EXPECT_EQ(img.fileCount(), 10u);
    EXPECT_EQ(img.dataBlocks(), 40u);
    EXPECT_EQ(img.allocatedBlocks(), 40u);   // No holes.
    for (FileId f = 0; f < 10; ++f) {
        const FileLayout& fl = img.file(f);
        EXPECT_EQ(fl.blocks(), 4u);
        ASSERT_EQ(fl.extents.size(), 1u);
        EXPECT_EQ(fl.extents[0].start, static_cast<ArrayBlock>(f * 4));
    }
}

TEST(FileLayout, SizesRoundUpToBlocks)
{
    LayoutParams lp;
    FileSystemImage img({1, 4096, 4097, 0}, lp, 1000);
    EXPECT_EQ(img.file(0).blocks(), 1u);
    EXPECT_EQ(img.file(1).blocks(), 1u);
    EXPECT_EQ(img.file(2).blocks(), 2u);
    EXPECT_EQ(img.file(3).blocks(), 1u);   // Empty file: one block.
}

TEST(FileLayout, BlockAtWalksExtents)
{
    LayoutParams lp;
    lp.fragmentation = 0.5;
    lp.seed = 5;
    FileSystemImage img(uniformSizes(1, 16 * 4096), lp, 1000);
    const FileLayout& f = img.file(0);
    EXPECT_GT(f.extents.size(), 1u);
    // blockAt must enumerate exactly the extents in order.
    std::uint64_t idx = 0;
    for (const FileExtent& e : f.extents) {
        for (std::uint64_t k = 0; k < e.count; ++k)
            EXPECT_EQ(f.blockAt(idx++), e.start + k);
    }
    EXPECT_EQ(idx, 16u);
}

TEST(FileLayout, FragmentationCreatesHoles)
{
    LayoutParams lp;
    lp.fragmentation = 0.3;
    lp.seed = 7;
    FileSystemImage img(uniformSizes(100, 32 * 4096), lp, 100000);
    EXPECT_GT(img.allocatedBlocks(), img.dataBlocks());
}

TEST(FileLayout, OverflowIsFatal)
{
    LayoutParams lp;
    EXPECT_DEATH(
        { FileSystemImage img(uniformSizes(10, 16384), lp, 30); },
        "exceed capacity");
}

TEST(FileLayout, AverageRunMatchesAnalyticModel)
{
    // Figure 1's model: avg run = n / (1 + (n-1) p).
    LayoutParams lp;
    lp.fragmentation = 0.05;
    lp.seed = 11;
    const std::uint64_t n = 32;
    FileSystemImage img(uniformSizes(20000, n * 4096), lp,
                        64ULL << 20);
    StripingMap identity(1, 64ULL << 20, 64ULL << 20);
    const double run = img.averageSequentialRun(identity);
    const double model =
        static_cast<double>(n) / (1.0 + (n - 1) * 0.05);
    EXPECT_NEAR(run, model, model * 0.05);
}

TEST(FileLayout, ZeroFragmentationYieldsWholeFileRuns)
{
    LayoutParams lp;
    FileSystemImage img(uniformSizes(100, 8 * 4096), lp, 10000);
    StripingMap identity(1, 10000, 10000);
    EXPECT_DOUBLE_EQ(img.averageSequentialRun(identity), 8.0);
}

TEST(FileLayout, BitmapMarksIntraFileContinuations)
{
    LayoutParams lp;
    FileSystemImage img(uniformSizes(3, 4 * 4096), lp, 1000);
    StripingMap identity(1, 1000, 1000);
    const auto maps = img.buildBitmaps(identity);
    ASSERT_EQ(maps.size(), 1u);
    const LayoutBitmap& bm = maps[0];
    // Files at blocks [0,4), [4,8), [8,12). Bits: file starts are 0,
    // intra-file blocks are 1.
    for (BlockNum b : {0u, 4u, 8u})
        EXPECT_FALSE(bm.get(b)) << b;
    for (BlockNum b : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 10u, 11u})
        EXPECT_TRUE(bm.get(b)) << b;
    // FOR read-ahead from a file start covers exactly the file.
    EXPECT_EQ(bm.countRun(1, 100), 3u);
}

TEST(FileLayout, BitmapStopsAtStripeUnitBoundaries)
{
    // A 16-block file striped at 4-block units over 2 disks: on each
    // disk, consecutive local blocks from different units hold
    // non-consecutive file data, so the continuation bit is 0 there.
    LayoutParams lp;
    FileSystemImage img(uniformSizes(1, 16 * 4096), lp, 1000);
    StripingMap striping(2, 4, 500);
    const auto maps = img.buildBitmaps(striping);
    for (unsigned d = 0; d < 2; ++d) {
        const LayoutBitmap& bm = maps[d];
        // Local blocks 0..7 on each disk hold units (d, d+2).
        EXPECT_FALSE(bm.get(0));
        EXPECT_TRUE(bm.get(1));
        EXPECT_TRUE(bm.get(2));
        EXPECT_TRUE(bm.get(3));
        EXPECT_FALSE(bm.get(4)) << "unit boundary on disk " << d;
        EXPECT_TRUE(bm.get(5));
    }
}

TEST(FileLayout, BitmapFragmentedFileBreaksRuns)
{
    LayoutParams lp;
    lp.fragmentation = 1.0;   // Break at every boundary.
    lp.seed = 13;
    FileSystemImage img(uniformSizes(1, 8 * 4096), lp, 1000);
    StripingMap identity(1, 1000, 1000);
    const auto maps = img.buildBitmaps(identity);
    // Every block is separated by a hole: no continuations at all.
    EXPECT_EQ(maps[0].popcount(), 0u);
}

TEST(FileLayout, StripedAverageRunCappedByUnit)
{
    LayoutParams lp;
    FileSystemImage img(uniformSizes(50, 32 * 4096), lp, 10000);
    StripingMap striping(4, 8, 2048);
    // Unbroken 32-block files, but each 8-block unit lands on a
    // different disk: runs are exactly 8.
    EXPECT_DOUBLE_EQ(img.averageSequentialRun(striping), 8.0);
}

} // namespace
} // namespace dtsim
