/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/stats.hh"

namespace dtsim {
namespace stats {
namespace {

TEST(Scalar, StartsAtZeroAndAccumulates)
{
    StatGroup root("root");
    Scalar s(root, "count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s -= 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Distribution, TracksMoments)
{
    StatGroup root("root");
    Distribution d(root, "lat", "latency");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 9.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(d.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(d.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Distribution, EmptyIsSafe)
{
    StatGroup root("root");
    Distribution d(root, "x", "");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
}

TEST(Distribution, ResetClears)
{
    StatGroup root("root");
    Distribution d(root, "x", "");
    d.sample(10.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(2.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Histogram, BucketsValues)
{
    StatGroup root("root");
    Histogram h(root, "h", "", 0.0, 10.0, 5);
    h.sample(0.5);   // bucket 0
    h.sample(3.0);   // bucket 1
    h.sample(9.99);  // bucket 4
    h.sample(-1.0);  // underflow
    h.sample(10.0);  // overflow (hi is exclusive)
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, WeightedSamples)
{
    StatGroup root("root");
    Histogram h(root, "h", "", 0.0, 4.0, 4);
    h.sample(1.5, 10);
    EXPECT_EQ(h.bucket(1), 10u);
    EXPECT_EQ(h.count(), 10u);
}

TEST(StatGroup, PrintsHierarchy)
{
    StatGroup root("sim");
    StatGroup child(root, "disk0");
    Scalar a(root, "events", "total events");
    Scalar b(child, "seeks", "seek count");
    ++a;
    b += 3;

    std::ostringstream os;
    root.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sim.events 1"), std::string::npos);
    EXPECT_NE(out.find("sim.disk0.seeks 3"), std::string::npos);
    EXPECT_NE(out.find("# total events"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup root("sim");
    StatGroup child(root, "c");
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a += 5;
    b += 7;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Distribution, WelfordMatchesNaiveOnRandomData)
{
    StatGroup root("root");
    Distribution d(root, "x", "");
    double sum = 0.0, sq = 0.0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        const double v = std::sin(i * 0.7) * 100.0;
        d.sample(v);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = (sq - n * mean * mean) / (n - 1);
    EXPECT_NEAR(d.mean(), mean, 1e-9);
    EXPECT_NEAR(d.variance(), var, 1e-6);
}

TEST(StatGroup, MakeOwnsStatsAndGroups)
{
    StatGroup root("sim");
    Scalar& a = root.make<Scalar>("a", "an owned counter");
    a += 3;
    StatGroup& child = root.makeGroup("disk0");
    Scalar& b = child.make<Scalar>("b", "");
    b += 7;
    child.make<Histogram>("h", "", 0.0, 10.0, 5).sample(4.0);

    std::ostringstream os;
    root.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sim.a 3"), std::string::npos);
    EXPECT_NE(out.find("sim.disk0.b 7"), std::string::npos);
    EXPECT_NE(out.find("sim.disk0.h.count 1"), std::string::npos);
    EXPECT_NE(out.find("# an owned counter"), std::string::npos);

    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

} // namespace
} // namespace stats
} // namespace dtsim
