/**
 * @file
 * Interaction tests between FOR read-ahead and the HDC pinned store
 * inside one controller: pinned blocks must not be duplicated into
 * the read-ahead pool, suffix/prefix trimming must combine with FOR,
 * and budgets must compose.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bus/scsi_bus.hh"
#include "controller/disk_controller.hh"
#include "sim/event_queue.hh"

namespace dtsim {
namespace {

struct Rig
{
    EventQueue eq;
    ScsiBus bus;
    DiskParams params;
    std::unique_ptr<DiskController> ctl;
    std::unique_ptr<LayoutBitmap> bitmap;

    explicit Rig(std::uint64_t hdc_bytes)
    {
        ControllerConfig cfg;
        cfg.org = CacheOrg::Block;
        cfg.readAhead = ReadAheadMode::FOR;
        cfg.hdcBytes = hdc_bytes;
        ctl = std::make_unique<DiskController>(eq, bus, params, cfg,
                                               0);
        bitmap = std::make_unique<LayoutBitmap>(params.totalBlocks());
        ctl->setBitmap(bitmap.get());
    }

    ServiceClass
    doRequest(BlockNum start, std::uint64_t count,
              bool write = false)
    {
        ServiceClass served = ServiceClass::Media;
        IoRequest req;
        req.start = start;
        req.count = count;
        req.isWrite = write;
        req.onComplete = [&](const IoRequest& r, Tick) {
            served = r.served;
        };
        ctl->submit(std::move(req));
        eq.run();
        return served;
    }

    /** Mark an n-block file starting at `start`. */
    void
    file(BlockNum start, std::uint64_t n)
    {
        for (BlockNum b = start + 1; b < start + n; ++b)
            bitmap->set(b, true);
    }
};

TEST(ForHdc, PinnedPrefixShortensForMiss)
{
    Rig r(256 * kKiB);
    r.file(1000, 8);
    r.ctl->pinBlock(1000);
    r.ctl->pinBlock(1001);

    // Request the whole file: 2 pinned + 6 media (plus no blind
    // overshoot thanks to FOR).
    EXPECT_EQ(r.doRequest(1000, 8), ServiceClass::Media);
    EXPECT_EQ(r.ctl->stats().hdcHitBlocks, 2u);
    EXPECT_EQ(r.ctl->stats().mediaBlocks, 6u);
    // FOR read-ahead beyond the file end: none (bit 1008 is 0).
    EXPECT_EQ(r.ctl->stats().readAheadBlocks, 0u);
}

TEST(ForHdc, PinnedSuffixTrimmed)
{
    Rig r(256 * kKiB);
    r.file(2000, 8);
    r.ctl->pinBlock(2006);
    r.ctl->pinBlock(2007);
    EXPECT_EQ(r.doRequest(2000, 8), ServiceClass::Media);
    EXPECT_EQ(r.ctl->stats().mediaBlocks, 6u);
    EXPECT_EQ(r.ctl->stats().hdcHitBlocks, 2u);
}

TEST(ForHdc, ReadAheadSkipsNothingButCacheInsertSkipsPinned)
{
    Rig r(256 * kKiB);
    r.file(3000, 8);
    r.ctl->pinBlock(3004);   // Pinned block inside the file.

    // Miss on the file head; FOR reads ahead to the file end (the
    // bitmap does not care about pins), but the pinned block is not
    // duplicated into the read-ahead pool.
    r.doRequest(3000, 2);
    EXPECT_EQ(r.doRequest(3004, 1), ServiceClass::HdcHit);
    // All other read-ahead blocks serve from the pool.
    EXPECT_EQ(r.doRequest(3002, 2), ServiceClass::CacheHit);
    EXPECT_EQ(r.doRequest(3005, 3), ServiceClass::CacheHit);
}

TEST(ForHdc, FullFilePinnedServesEntirelyFromHdc)
{
    Rig r(256 * kKiB);
    r.file(4000, 4);
    for (BlockNum b = 4000; b < 4004; ++b)
        r.ctl->pinBlock(b);
    EXPECT_EQ(r.doRequest(4000, 4), ServiceClass::HdcHit);
    EXPECT_EQ(r.ctl->stats().mediaAccesses, 0u);
}

TEST(ForHdc, BudgetsCompose)
{
    // FOR bitmap + HDC region both carve the same memory; the
    // remaining pool must be exactly usable - hdc - bitmap.
    Rig with_hdc(1 * kMiB);
    const std::uint64_t expect =
        (with_hdc.params.usableCacheBytes() - 1 * kMiB -
         with_hdc.params.bitmapBytes()) /
        with_hdc.params.blockSize;
    EXPECT_EQ(with_hdc.ctl->raCacheBlocks(), expect);
}

TEST(ForHdc, WriteToPinnedInsideFileAbsorbed)
{
    Rig r(256 * kKiB);
    r.file(5000, 4);
    r.ctl->pinBlock(5001);
    // Single-block write to the pinned block: absorbed.
    EXPECT_EQ(r.doRequest(5001, 1, true), ServiceClass::HdcHit);
    // Spanning write including unpinned blocks: media.
    EXPECT_EQ(r.doRequest(5000, 4, true), ServiceClass::Media);
}

} // namespace
} // namespace dtsim
