/**
 * @file
 * Cross-parameter validation tests: every rule in validateConfig()
 * fires with the offending keys named, defaults validate cleanly, and
 * multiple violations are reported together.
 */

#include <gtest/gtest.h>

#include "config/sim_config.hh"

using namespace dtsim;

namespace {

/** First validation error, or "" when the config is valid. */
std::string
firstError(const SimulationConfig& sim)
{
    const std::vector<std::string> errs = validateConfig(sim);
    return errs.empty() ? std::string() : errs.front();
}

TEST(ConfigValidate, DefaultsAreValid)
{
    SimulationConfig sim;
    EXPECT_EQ(firstError(sim), "");

    sim.workload = WorkloadKind::Web;
    EXPECT_EQ(firstError(sim), "");
}

TEST(ConfigValidate, StripeUnitMustBeBlockMultiple)
{
    SimulationConfig sim;
    sim.system.stripeUnitBytes = 4096 + 512;
    const std::string err = firstError(sim);
    EXPECT_NE(err.find("system.stripe_unit_bytes"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("disk.block_bytes"), std::string::npos) << err;

    sim.system.stripeUnitBytes = 0;
    EXPECT_NE(firstError(sim), "");

    sim.system.stripeUnitBytes = 8 * 4096;
    EXPECT_EQ(firstError(sim), "");
}

TEST(ConfigValidate, HdcMustLeaveCacheMemory)
{
    SimulationConfig sim;

    // Segm: the HDC region alone must stay under the usable cache.
    sim.system.hdcBytesPerDisk = sim.system.disk.usableCacheBytes();
    EXPECT_NE(firstError(sim).find("system.hdc_bytes_per_disk"),
              std::string::npos);

    // FOR additionally charges the layout bitmap, so a budget that
    // fits under Segm can be infeasible under FOR.
    const std::uint64_t usable = sim.system.disk.usableCacheBytes();
    const std::uint64_t bitmap = sim.system.disk.bitmapBytes();
    ASSERT_GT(usable, bitmap);
    sim.system.hdcBytesPerDisk = usable - bitmap;
    sim.system.kind = SystemKind::Segm;
    EXPECT_EQ(firstError(sim), "");
    sim.system.kind = SystemKind::FOR;
    const std::string err = firstError(sim);
    EXPECT_NE(err.find("FOR layout bitmap"), std::string::npos) << err;
}

TEST(ConfigValidate, MirroringNeedsEvenDisks)
{
    SimulationConfig sim;
    sim.system.mirrored = true;
    sim.system.disks = 7;
    EXPECT_NE(firstError(sim).find("system.mirrored"),
              std::string::npos);
    sim.system.disks = 8;
    EXPECT_EQ(firstError(sim), "");
}

TEST(ConfigValidate, SyntheticRanges)
{
    SimulationConfig sim;
    sim.synthetic.writeProb = 1.5;
    EXPECT_NE(firstError(sim).find("synthetic.write_prob"),
              std::string::npos);

    sim.synthetic.writeProb = 0.5;
    sim.synthetic.blockSize = 8192;
    EXPECT_NE(firstError(sim).find("synthetic.block_bytes"),
              std::string::npos);

    // Server workloads skip the synthetic checks entirely.
    sim.workload = WorkloadKind::File;
    EXPECT_EQ(firstError(sim), "");

    sim.scale = 0.0;
    EXPECT_NE(firstError(sim).find("workload.scale"),
              std::string::npos);
}

TEST(ConfigValidate, ReportsEveryViolationAtOnce)
{
    SimulationConfig sim;
    sim.system.disks = 0;
    sim.system.streams = 0;
    sim.system.stripeUnitBytes = 3;
    const std::vector<std::string> errs = validateConfig(sim);
    EXPECT_GE(errs.size(), 3u);
}

TEST(ConfigValidate, DegenerateDiskGeometry)
{
    SimulationConfig sim;
    sim.system.disk.rpm = 0;
    sim.system.disk.cacheBytes = sim.system.disk.cacheReservedBytes;
    const std::vector<std::string> errs = validateConfig(sim);
    bool saw_rpm = false, saw_cache = false;
    for (const std::string& e : errs) {
        saw_rpm = saw_rpm || e.find("disk.rpm") != std::string::npos;
        saw_cache =
            saw_cache || e.find("disk.cache_bytes") != std::string::npos;
    }
    EXPECT_TRUE(saw_rpm);
    EXPECT_TRUE(saw_cache);
}

} // namespace
