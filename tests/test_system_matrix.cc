/**
 * @file
 * Property sweep across the full system configuration matrix: every
 * (system kind, scheduler, HDC budget, striping unit) combination
 * must complete a mixed read/write trace with consistent accounting.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/runner.hh"
#include "experiment_replay.hh"
#include "hdc/hdc_planner.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace {

using MatrixParam =
    std::tuple<SystemKind, SchedulerKind, std::uint64_t,
               std::uint64_t>;

class SystemMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

TEST_P(SystemMatrix, CompletesWithConsistentAccounting)
{
    const auto [kind, sched, hdc_kb, unit_kb] = GetParam();

    SystemConfig cfg;
    cfg.kind = kind;
    cfg.scheduler = sched;
    cfg.hdcBytesPerDisk = hdc_kb * kKiB;
    cfg.stripeUnitBytes = unit_kb * kKiB;
    cfg.disks = 4;
    cfg.streams = 24;
    cfg.workers = 8;

    SyntheticParams sp;
    sp.numFiles = 20000;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 300;
    sp.writeProb = 0.2;
    sp.zipfAlpha = 0.6;
    const SyntheticWorkload w =
        makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks());
    const TraceStats ts = computeStats(w.trace);

    StripingMap striping(cfg.disks,
                         cfg.stripeUnitBytes / cfg.disk.blockSize,
                         cfg.disk.totalBlocks());
    const std::vector<LayoutBitmap> bitmaps =
        w.image->buildBitmaps(striping);

    std::vector<ArrayBlock> pinned;
    const std::vector<ArrayBlock>* pp = nullptr;
    if (cfg.hdcBytesPerDisk > 0) {
        pinned = selectPinnedBlocks(w.trace, striping,
                                    hdcBlocksPerDisk(cfg));
        pp = &pinned;
    }

    const RunResult r = test::replayTrace(cfg, w.trace, &bitmaps, pp);

    // Everything completed.
    EXPECT_EQ(r.requests, ts.records);
    EXPECT_EQ(r.blocks, ts.blocks);
    EXPECT_GT(r.ioTime, 0u);

    // Controller accounting is self-consistent. Array splitting may
    // create more controller accesses than trace records.
    EXPECT_GE(r.agg.reads + r.agg.writes, ts.records);
    EXPECT_EQ(r.agg.readBlocks + r.agg.writeBlocks, ts.blocks);
    EXPECT_LE(r.agg.cacheHitRequests, r.agg.reads + r.agg.writes);
    EXPECT_LE(r.agg.hdcHitRequests, r.agg.cacheHitRequests);

    // Media work never exceeds what was demanded plus read-ahead,
    // and every serviced block was either a hit or a media block.
    EXPECT_LE(r.agg.mediaBlocks,
              r.agg.readBlocks + r.agg.writeBlocks);
    EXPECT_EQ(r.agg.mediaBlocks + r.agg.raHitBlocks +
                  r.agg.hdcHitBlocks,
              r.agg.readBlocks + r.agg.writeBlocks);

    // Timing components sum to the media busy time.
    EXPECT_EQ(r.agg.seekTime + r.agg.rotTime + r.agg.xferTime,
              r.agg.mediaBusy);

    // Rates are valid.
    EXPECT_GE(r.hdcHitRate, 0.0);
    EXPECT_LE(r.hdcHitRate, 1.0);
    EXPECT_GE(r.cacheHitRate, 0.0);
    EXPECT_LE(r.cacheHitRate, 1.0);
    EXPECT_GT(r.diskUtilization, 0.0);
    EXPECT_LE(r.diskUtilization, 1.0);

    // With no HDC budget there can be no HDC hits.
    if (cfg.hdcBytesPerDisk == 0) {
        EXPECT_EQ(r.agg.hdcHitRequests, 0u);
        EXPECT_EQ(r.agg.hdcHitBlocks, 0u);
    }

    // No-RA must not fetch speculative blocks.
    if (kind == SystemKind::NoRA) {
        EXPECT_EQ(r.agg.readAheadBlocks, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SystemMatrix,
    ::testing::Combine(
        ::testing::Values(SystemKind::Segm, SystemKind::Block,
                          SystemKind::NoRA, SystemKind::FOR),
        ::testing::Values(SchedulerKind::FCFS, SchedulerKind::LOOK,
                          SchedulerKind::CLOOK, SchedulerKind::SSTF),
        ::testing::Values(0, 1024),
        ::testing::Values(32, 128)));

} // namespace
} // namespace dtsim
