/** @file Tests for trace records, statistics, and persistence. */

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/trace.hh"

namespace dtsim {
namespace {

Trace
sampleTrace()
{
    Trace t;
    t.push_back({100, 4, false, 0});
    t.push_back({104, 2, false, 0});
    t.push_back({100, 4, true, 1});
    t.push_back({500, 1, false, 2});
    return t;
}

TEST(TraceStats, CountsRecordsAndBlocks)
{
    const TraceStats s = computeStats(sampleTrace());
    EXPECT_EQ(s.records, 4u);
    EXPECT_EQ(s.writeRecords, 1u);
    EXPECT_EQ(s.blocks, 11u);
    EXPECT_EQ(s.writeBlocks, 4u);
    EXPECT_EQ(s.jobs, 3u);
    EXPECT_DOUBLE_EQ(s.writeRecordFraction, 0.25);
    EXPECT_DOUBLE_EQ(s.meanRecordBlocks, 11.0 / 4.0);
}

TEST(TraceStats, DistinctAndMax)
{
    const TraceStats s = computeStats(sampleTrace());
    // Blocks 100..105 and 500: 7 distinct; 100..103 accessed twice.
    EXPECT_EQ(s.distinctBlocks, 7u);
    EXPECT_EQ(s.maxBlockAccesses, 2u);
}

TEST(TraceStats, EmptyTrace)
{
    const TraceStats s = computeStats({});
    EXPECT_EQ(s.records, 0u);
    EXPECT_DOUBLE_EQ(s.meanRecordBlocks, 0.0);
}

TEST(AccessCounts, SortedDescending)
{
    const auto counts = accessCountsSorted(sampleTrace());
    ASSERT_EQ(counts.size(), 7u);
    for (std::size_t i = 1; i < counts.size(); ++i)
        EXPECT_LE(counts[i], counts[i - 1]);
    EXPECT_EQ(counts[0], 2u);
}

TEST(AccessCounts, TopTruncation)
{
    const auto counts = accessCountsSorted(sampleTrace(), 3);
    EXPECT_EQ(counts.size(), 3u);
}

TEST(TracePersistence, SaveLoadRoundTrip)
{
    const Trace t = sampleTrace();
    const std::string path = "/tmp/dtsim_trace_test.txt";
    saveTrace(t, path);
    const Trace loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(loaded[i].start, t[i].start);
        EXPECT_EQ(loaded[i].count, t[i].count);
        EXPECT_EQ(loaded[i].isWrite, t[i].isWrite);
        EXPECT_EQ(loaded[i].job, t[i].job);
    }
    std::remove(path.c_str());
}

TEST(TracePersistence, LoadMissingFileThrows)
{
    EXPECT_THROW(loadTrace("/nonexistent/nope.txt"),
                 std::runtime_error);
}

TEST(TracePersistence, LoadMalformedThrows)
{
    const std::string path = "/tmp/dtsim_trace_bad.txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# header\nnot a record\n", f);
    std::fclose(f);
    EXPECT_THROW(loadTrace(path), std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace dtsim
