/** @file End-to-end tests of request tracing and the stats wiring. */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/sweep.hh"
#include "experiment_replay.hh"
#include "stats_text.hh"
#include "stats/trace.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace {

SystemConfig
testConfig(SystemKind kind = SystemKind::Segm)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.disks = 4;
    cfg.streams = 16;
    cfg.workers = 8;
    cfg.stripeUnitBytes = 128 * kKiB;
    return cfg;
}

Trace
testTrace(std::uint64_t requests = 300, double writes = 0.1)
{
    SyntheticParams sp;
    sp.numFiles = 20000;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = requests;
    sp.zipfAlpha = 0.4;
    sp.writeProb = writes;
    const SystemConfig cfg = testConfig();
    return makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks())
        .trace;
}

/** Compare every RunResult field that tracing must not perturb. */
void
expectSameResults(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.ioTime, b.ioTime);
    EXPECT_EQ(a.flushTime, b.flushTime);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.agg.reads, b.agg.reads);
    EXPECT_EQ(a.agg.writes, b.agg.writes);
    EXPECT_EQ(a.agg.cacheHitRequests, b.agg.cacheHitRequests);
    EXPECT_EQ(a.agg.mediaAccesses, b.agg.mediaAccesses);
    EXPECT_EQ(a.agg.seekTime, b.agg.seekTime);
    EXPECT_EQ(a.agg.queueTime, b.agg.queueTime);
    EXPECT_EQ(a.agg.busTime, b.agg.busTime);
    EXPECT_EQ(a.agg.latencySum, b.agg.latencySum);
    EXPECT_EQ(a.ra.specInserted, b.ra.specInserted);
    EXPECT_EQ(a.ra.specUsed, b.ra.specUsed);
    EXPECT_EQ(a.ra.specWasted, b.ra.specWasted);
    EXPECT_DOUBLE_EQ(a.meanLatencyMs, b.meanLatencyMs);
}

TEST(RequestTrace, RecordsMatchSimulatedRequests)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    const std::string path = "/tmp/dtsim_reqtrace_match.jsonl";
    const Trace trace = testTrace();
    RunOptions opts;
    opts.tracePath = path;
    const RunResult r =
        test::replayTrace(testConfig(), trace, nullptr, nullptr, opts);

    std::vector<RequestTraceEvent> events;
    ASSERT_TRUE(readTraceFile(path, events));
    std::remove(path.c_str());

    // One record per host request, none lost or duplicated.
    EXPECT_EQ(r.traceRecords, events.size());
    EXPECT_EQ(events.size(), r.agg.reads + r.agg.writes);

    std::uint64_t media = 0, cache_served = 0, hdc = 0;
    std::uint64_t blocks = 0, writes = 0;
    Tick queue = 0, seek = 0, rot = 0, xfer = 0, bus = 0, lat = 0;
    for (const RequestTraceEvent& ev : events) {
        switch (ev.outcome) {
          case TraceOutcome::Media: ++media; break;
          case TraceOutcome::Cache: ++cache_served; break;
          case TraceOutcome::Hdc: ++hdc; break;
        }
        blocks += ev.blocks;
        writes += ev.isWrite ? 1 : 0;
        queue += ev.queue;
        seek += ev.seek;
        rot += ev.rotation;
        xfer += ev.transfer;
        bus += ev.bus;
        lat += ev.latency;
        EXPECT_LT(ev.disk, 4u);
        EXPECT_GE(ev.latency,
                  ev.queue + ev.seek + ev.rotation + ev.transfer);
    }

    // Outcome attribution reconciles with the controller counters.
    EXPECT_EQ(cache_served + hdc, r.agg.cacheHitRequests);
    EXPECT_EQ(hdc, r.agg.hdcHitRequests);
    EXPECT_EQ(media,
              r.agg.reads + r.agg.writes - r.agg.cacheHitRequests);

    // Per-record breakdowns sum to the aggregate counters. Without
    // HDC there are no background flush jobs, so media time is fully
    // attributed to traced (host) requests.
    EXPECT_EQ(blocks, r.agg.readBlocks + r.agg.writeBlocks);
    EXPECT_EQ(writes, r.agg.writes);
    EXPECT_EQ(queue, r.agg.queueTime);
    EXPECT_EQ(bus, r.agg.busTime);
    EXPECT_EQ(lat, r.agg.latencySum);
    EXPECT_EQ(seek, r.agg.seekTime);
    EXPECT_EQ(rot, r.agg.rotTime);
    EXPECT_EQ(xfer, r.agg.xferTime);
}

TEST(RequestTrace, DisabledTracerChangesNothingAndWritesNothing)
{
    const std::string path = "/tmp/dtsim_reqtrace_off.jsonl";
    std::remove(path.c_str());
    const Trace trace = testTrace();

    const RunResult plain = test::replayTrace(testConfig(), trace);
    const RunResult with_opts = test::replayTrace(
        testConfig(), trace, nullptr, nullptr, RunOptions{});
    expectSameResults(plain, with_opts);
    EXPECT_EQ(with_opts.traceRecords, 0u);

    // No tracePath given: no file appears.
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_EQ(f, nullptr);
    if (f)
        std::fclose(f);
}

TEST(RequestTrace, TracingDoesNotPerturbResults)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    const std::string path = "/tmp/dtsim_reqtrace_perturb.jsonl";
    const Trace trace = testTrace();

    const RunResult plain = test::replayTrace(testConfig(), trace);
    RunOptions opts;
    opts.tracePath = path;
    std::ostringstream stats;
    opts.stats = StatsSink::stream(stats);
    const RunResult traced =
        test::replayTrace(testConfig(), trace, nullptr, nullptr, opts);
    std::remove(path.c_str());

    expectSameResults(plain, traced);
    EXPECT_GT(traced.traceRecords, 0u);
}

TEST(RequestTrace, BackToBackRunsAreIdentical)
{
    const Trace trace = testTrace();
    RunOptions opts;
    std::ostringstream s1, s2;

    opts.stats = StatsSink::stream(s1);
    const RunResult r1 =
        test::replayTrace(testConfig(), trace, nullptr, nullptr, opts);
    opts.stats = StatsSink::stream(s2);
    const RunResult r2 =
        test::replayTrace(testConfig(), trace, nullptr, nullptr, opts);

    // Stat registration is per-run: the second run starts from fresh
    // groups and produces a byte-identical dump (modulo the volatile
    // wall-clock line).
    expectSameResults(r1, r2);
    EXPECT_EQ(test::stripRuntime(s1.str()),
              test::stripRuntime(s2.str()));
}

TEST(RequestTrace, StatsDumpContainsDocumentedNames)
{
    const Trace trace = testTrace();
    RunOptions opts;
    std::ostringstream stats;
    opts.stats = StatsSink::stream(stats);
    const RunResult r =
        test::replayTrace(testConfig(), trace, nullptr, nullptr, opts);
    const std::string out = stats.str();

    // Spot-check one name from each section of docs/METRICS.md.
    for (const char* name :
         {"sim.io_time_ms", "sim.requests", "sim.cache.hit_rate",
          "sim.read_ahead.accuracy", "sim.media.queue_ms",
          "sim.config.disks", "sim.bus.utilization",
          "sim.disk0.reads", "sim.disk0.sched.depth_max",
          "sim.disk0.mech.seeks", "sim.service.latency_ms.count",
          "sim.service.queue_depth.count"}) {
        EXPECT_NE(out.find(name), std::string::npos)
            << "missing " << name;
    }

    // The dump's request count is the run's.
    const std::string needle =
        "sim.requests " + std::to_string(r.requests);
    EXPECT_NE(out.find(needle), std::string::npos);
}

TEST(RequestTrace, SweepAggregationMatchesSerial)
{
    const Trace trace = testTrace(200);
    std::vector<SweepJob> jobs;
    for (SystemKind k : {SystemKind::Segm, SystemKind::Block,
                         SystemKind::NoRA, SystemKind::Segm}) {
        SweepJob job;
        job.cfg = testConfig(k);
        job.trace = &trace;
        jobs.push_back(job);
    }

    const std::vector<RunResult> serial = runSweep(jobs, 1);
    const std::vector<RunResult> parallel = runSweep(jobs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResults(serial[i], parallel[i]);

    const ControllerStats a = aggregateSweepStats(serial);
    const ControllerStats b = aggregateSweepStats(parallel);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.mediaAccesses, b.mediaAccesses);
    EXPECT_EQ(a.queueTime, b.queueTime);
    EXPECT_EQ(a.latencySum, b.latencySum);
    EXPECT_EQ(a.latencyMax, b.latencyMax);

    const RaCounters ra = aggregateSweepRa(serial);
    const RaCounters rb = aggregateSweepRa(parallel);
    EXPECT_EQ(ra.specInserted, rb.specInserted);
    EXPECT_EQ(ra.specUsed, rb.specUsed);
    EXPECT_EQ(ra.specWasted, rb.specWasted);
}

TEST(TraceParse, RoundTripsAndRejectsGarbage)
{
    RequestTraceEvent ev;
    const std::string good =
        "{\"t\":123,\"disk\":2,\"lba\":4096,\"n\":8,\"w\":1,"
        "\"how\":\"hdc\",\"q\":10,\"seek\":20,\"rot\":30,"
        "\"xfer\":40,\"bus\":50,\"lat\":150}";
    ASSERT_TRUE(parseTraceLine(good, ev));
    EXPECT_EQ(ev.completed, 123u);
    EXPECT_EQ(ev.disk, 2u);
    EXPECT_EQ(ev.lba, 4096u);
    EXPECT_EQ(ev.blocks, 8u);
    EXPECT_TRUE(ev.isWrite);
    EXPECT_EQ(ev.outcome, TraceOutcome::Hdc);
    EXPECT_EQ(ev.queue, 10u);
    EXPECT_EQ(ev.rotation, 30u);
    EXPECT_EQ(ev.latency, 150u);

    EXPECT_FALSE(parseTraceLine("", ev));
    EXPECT_FALSE(parseTraceLine("not json", ev));
    EXPECT_FALSE(parseTraceLine("{\"t\":1}", ev));
    // Bad direction and unknown outcome.
    std::string bad = good;
    bad.replace(bad.find("\"w\":1"), 5, "\"w\":7");
    EXPECT_FALSE(parseTraceLine(bad, ev));
    bad = good;
    bad.replace(bad.find("hdc"), 3, "dvd");
    EXPECT_FALSE(parseTraceLine(bad, ev));
}

TEST(RequestTrace, PeriodicSnapshotsLeaveResultsIntact)
{
    const Trace trace = testTrace(150);

    const RunResult plain = test::replayTrace(testConfig(), trace);

    RunOptions opts;
    std::ostringstream stats;
    opts.stats = StatsSink::stream(stats);
    opts.statsIntervalTicks = fromMicros(2000);
    const RunResult snap =
        test::replayTrace(testConfig(), trace, nullptr, nullptr, opts);

    expectSameResults(plain, snap);

    // At least one mid-run snapshot plus the final dump appeared.
    const std::string out = stats.str();
    EXPECT_NE(out.find("# snapshot @"), std::string::npos);
    EXPECT_NE(out.find("sim.io_time_ms"), std::string::npos);
}

} // namespace
} // namespace dtsim
