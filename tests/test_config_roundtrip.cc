/**
 * @file
 * The config round-trip property: every stats dump begins with an
 * effective-config header, and loading that dump back through the
 * config layer reproduces the run bit for bit -- same stats text,
 * same results. Exercised for a Segm baseline and a FOR+HDC system,
 * the two extremes of the paper's comparison.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "config/config_file.hh"
#include "core/experiment.hh"
#include "stats_text.hh"

using namespace dtsim;

namespace {

/** A small, fast synthetic workload configuration. */
SimulationConfig
smallBase()
{
    SimulationConfig sim;
    sim.synthetic.numRequests = 400;
    sim.synthetic.numFiles = 5000;
    sim.synthetic.seed = 99;
    sim.system.seed = 99;
    return sim;
}

/** Run `sim` and return (stats dump text, result). */
std::pair<std::string, RunResult>
runToString(const SimulationConfig& sim)
{
    Experiment exp(sim);
    std::ostringstream stats;
    exp.statsTo(StatsSink::stream(stats));
    const RunResult r = exp.run();
    return {stats.str(), r};
}

/** Dump -> reload -> rerun must reproduce the dump byte for byte. */
void
expectRoundTrip(const SimulationConfig& sim)
{
    const auto [dump, result] = runToString(sim);

    // The dump is self-describing: it opens with #conf lines.
    ASSERT_NE(dump.find("#conf workload.kind = "), std::string::npos);

    // Reload the dump itself (embedded mode) into a fresh config.
    SimulationConfig reloaded;
    config::ParamRegistry reg;
    bindParams(reg, reloaded);
    std::string err;
    ASSERT_TRUE(config::loadConfigText(dump, "dump", reg, err))
        << err;

    const auto [dump2, result2] = runToString(reloaded);
    EXPECT_EQ(test::stripRuntime(dump), test::stripRuntime(dump2));
    EXPECT_EQ(result.ioTime, result2.ioTime);
    EXPECT_EQ(result.flushTime, result2.flushTime);
    EXPECT_EQ(result.requests, result2.requests);
    EXPECT_EQ(result.blocks, result2.blocks);
    EXPECT_EQ(result.agg.reads, result2.agg.reads);
    EXPECT_EQ(result.agg.writes, result2.agg.writes);
}

TEST(ConfigRoundTrip, SegmBaseline)
{
    expectRoundTrip(smallBase());
}

TEST(ConfigRoundTrip, ForWithHdc)
{
    SimulationConfig sim = smallBase();
    sim.system.kind = SystemKind::FOR;
    sim.system.hdcBytesPerDisk = 512 * kKiB;
    sim.synthetic.writeProb = 0.1;
    expectRoundTrip(sim);
}

TEST(ConfigRoundTrip, NonDefaultEverything)
{
    // Push non-default values through several groups at once so any
    // parameter missing from the registry dump breaks the trip.
    SimulationConfig sim = smallBase();
    sim.system.kind = SystemKind::Block;
    sim.system.disks = 4;
    sim.system.stripeUnitBytes = 32 * kKiB;
    sim.system.scheduler = SchedulerKind::SSTF;
    sim.system.streams = 16;
    sim.system.hdcBytesPerDisk = 256 * kKiB;
    sim.system.hdcPolicy = HdcPolicy::VictimCache;
    sim.system.victimGhostBlocks = 5000;
    sim.synthetic.zipfAlpha = 0.7;
    sim.synthetic.writeProb = 0.25;
    sim.synthetic.fragmentation = 0.3;
    expectRoundTrip(sim);
}

TEST(ConfigRoundTrip, HeaderMatchesEffectiveStreams)
{
    // Server models override system.streams; the dumped header must
    // record the concurrency that actually ran so a reload does not
    // depend on the override being reapplied.
    SimulationConfig sim;
    sim.workload = WorkloadKind::Web;
    sim.scale = 0.005;
    Experiment exp(sim);
    std::ostringstream stats;
    exp.statsTo(StatsSink::stream(stats));
    exp.prepare();
    EXPECT_NE(exp.config().system.streams, 128u);
    EXPECT_NE(
        exp.runOptions().configHeader.find(
            "#conf system.streams = " +
            config::formatValue(exp.config().system.streams)),
        std::string::npos);
}

} // namespace
