/**
 * @file
 * Sharded-vs-serial determinism: running the same configuration on
 * the sharded kernel (--jobs-intra 2 and 4) must produce stats dumps
 * and request traces byte-identical to the serial kernel, across the
 * figure-7..12 system shapes and the ablation-style variants.
 *
 * The only line allowed to differ is the volatile "# runtime:" header
 * (wall clock and events/sec), which is stripped before comparing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "stats/trace.hh"
#include "stats_text.hh"
#include "workload/server_models.hh"

namespace dtsim {
namespace {

using test::stripRuntime;

constexpr double kScale = 0.01;

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * One figure/ablation-shaped configuration under test. The workload
 * is built once (trace, FOR bitmaps); each kernel setting replays it
 * through the facade, so every run sees identical inputs.
 */
struct DeterminismCase
{
    SimulationConfig sim;
    Experiment built;

    explicit DeterminismCase(SimulationConfig s)
        : sim(std::move(s)), built(sim)
    {
    }

    /** Stats dump (runtime-stripped) at a given worker setting. */
    std::string
    dump(unsigned jobs_intra, const std::string& trace_path = "")
    {
        std::ostringstream os;
        Experiment e(sim.system);
        e.replay(built.trace());
        if (sim.system.kind == SystemKind::FOR)
            e.bitmaps(built.layoutBitmaps());
        e.statsTo(StatsSink::stream(os)).jobsIntra(jobs_intra);
        if (!trace_path.empty())
            e.traceTo(trace_path);
        e.run();
        return stripRuntime(os.str());
    }

    void
    expectShardedMatchesSerial()
    {
        const std::string serial = dump(1);
        ASSERT_NE(serial.find("sim.io_time_ms"), std::string::npos);
        EXPECT_EQ(dump(2), serial) << "jobs-intra 2 diverged";
        EXPECT_EQ(dump(4), serial) << "jobs-intra 4 diverged";
    }
};

SimulationConfig
webConfig(SystemKind kind, std::uint64_t unit_bytes,
          std::uint64_t hdc_bytes)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Web;
    sim.scale = kScale;
    sim.system.kind = kind;
    sim.system.disks = 4;
    sim.system.stripeUnitBytes = unit_bytes;
    sim.system.hdcBytesPerDisk = hdc_bytes;
    return sim;
}

TEST(ShardedDeterminism, Fig07WebStriping)
{
    DeterminismCase c(webConfig(SystemKind::Segm, 16 * kKiB, 0));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, Fig08WebForHdc)
{
    DeterminismCase c(
        webConfig(SystemKind::FOR, 64 * kKiB, 2 * kMiB));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, Fig10ProxyHdc)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Proxy;
    sim.scale = kScale;
    sim.system.kind = SystemKind::Segm;
    sim.system.disks = 4;
    sim.system.hdcBytesPerDisk = 2 * kMiB;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, Fig11FileServerStriping)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::File;
    sim.scale = kScale;
    sim.system.kind = SystemKind::FOR;
    sim.system.disks = 4;
    sim.system.stripeUnitBytes = 16 * kKiB;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, AblationSchedulerAndZones)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Synthetic;
    sim.system.kind = SystemKind::Block;
    sim.system.disks = 4;
    sim.system.scheduler = SchedulerKind::SSTF;
    sim.system.disk.recordingZones = 8;
    sim.synthetic.numFiles = 20000;
    sim.synthetic.fileSizeBytes = 16 * kKiB;
    sim.synthetic.numRequests = 400;
    sim.synthetic.writeProb = 0.2;
    sim.synthetic.zipfAlpha = 0.6;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, AblationNoReadAheadClook)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Synthetic;
    sim.system.kind = SystemKind::NoRA;
    sim.system.disks = 4;
    sim.system.scheduler = SchedulerKind::CLOOK;
    sim.system.stripeUnitBytes = 32 * kKiB;
    sim.synthetic.numFiles = 20000;
    sim.synthetic.fileSizeBytes = 8 * kKiB;
    sim.synthetic.numRequests = 400;
    sim.synthetic.zipfAlpha = 0.4;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, RequestTracesAreByteIdentical)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    DeterminismCase c(webConfig(SystemKind::Segm, 64 * kKiB, 0));
    const std::string p1 = "/tmp/dtsim_sharded_det_1.jsonl";
    const std::string p4 = "/tmp/dtsim_sharded_det_4.jsonl";
    const std::string serial = c.dump(1, p1);
    const std::string sharded = c.dump(4, p4);
    EXPECT_EQ(sharded, serial);

    const std::string t1 = slurp(p1);
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(slurp(p4), t1);
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

TEST(ShardedDeterminism, MirroredFallsBackToSerial)
{
    // Mirrored fan-out is one of the documented serial fallbacks: a
    // jobs-intra request must warn, run serial, and match exactly.
    SimulationConfig sim = webConfig(SystemKind::Segm, 16 * kKiB, 0);
    sim.system.mirrored = true;
    DeterminismCase c(std::move(sim));
    EXPECT_EQ(c.dump(2), c.dump(1));
}

} // namespace
} // namespace dtsim
