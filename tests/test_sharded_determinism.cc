/**
 * @file
 * Sharded-vs-serial determinism: running the same configuration on
 * the sharded kernel (--jobs-intra 2 and 4) must produce stats dumps
 * and request traces byte-identical to the serial kernel, across the
 * figure-7..12 system shapes, the ablation-style variants, and every
 * coupling that used to force the serial fallback: fault injection
 * (kill/repair/rebuild and media errors), mirroring, the victim-cache
 * HDC policy, and periodic snapshots / stream frames.
 *
 * The only line allowed to differ is the volatile "# runtime:" header
 * (wall clock and events/sec), which is stripped before comparing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "stats/trace.hh"
#include "stats_text.hh"
#include "workload/server_models.hh"

namespace dtsim {
namespace {

using test::stripRuntime;

constexpr double kScale = 0.01;

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * One figure/ablation-shaped configuration under test. The workload
 * is built once (trace, FOR bitmaps); each kernel setting replays it
 * through the facade, so every run sees identical inputs.
 */
struct DeterminismCase
{
    SimulationConfig sim;
    Experiment built;

    /** Extra per-run options (snapshots, streaming, ...). */
    std::function<void(Experiment&)> tweak;

    explicit DeterminismCase(SimulationConfig s)
        : sim(std::move(s)), built(sim)
    {
    }

    /** Stats dump (runtime-stripped) at a given worker setting. */
    std::string
    dump(unsigned jobs_intra, const std::string& trace_path = "")
    {
        std::ostringstream os;
        Experiment e(sim.system);
        e.replay(built.trace());
        if (sim.system.kind == SystemKind::FOR)
            e.bitmaps(built.layoutBitmaps());
        e.statsTo(StatsSink::stream(os)).jobsIntra(jobs_intra);
        if (!trace_path.empty())
            e.traceTo(trace_path);
        if (tweak)
            tweak(e);
        e.run();
        return stripRuntime(os.str());
    }

    void
    expectShardedMatchesSerial()
    {
        const std::string serial = dump(1);
        ASSERT_NE(serial.find("sim.io_time_ms"), std::string::npos);
        EXPECT_EQ(dump(2), serial) << "jobs-intra 2 diverged";
        EXPECT_EQ(dump(4), serial) << "jobs-intra 4 diverged";
    }
};

SimulationConfig
webConfig(SystemKind kind, std::uint64_t unit_bytes,
          std::uint64_t hdc_bytes)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Web;
    sim.scale = kScale;
    sim.system.kind = kind;
    sim.system.disks = 4;
    sim.system.stripeUnitBytes = unit_bytes;
    sim.system.hdcBytesPerDisk = hdc_bytes;
    return sim;
}

TEST(ShardedDeterminism, Fig07WebStriping)
{
    DeterminismCase c(webConfig(SystemKind::Segm, 16 * kKiB, 0));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, Fig08WebForHdc)
{
    DeterminismCase c(
        webConfig(SystemKind::FOR, 64 * kKiB, 2 * kMiB));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, Fig10ProxyHdc)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Proxy;
    sim.scale = kScale;
    sim.system.kind = SystemKind::Segm;
    sim.system.disks = 4;
    sim.system.hdcBytesPerDisk = 2 * kMiB;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, Fig11FileServerStriping)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::File;
    sim.scale = kScale;
    sim.system.kind = SystemKind::FOR;
    sim.system.disks = 4;
    sim.system.stripeUnitBytes = 16 * kKiB;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, AblationSchedulerAndZones)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Synthetic;
    sim.system.kind = SystemKind::Block;
    sim.system.disks = 4;
    sim.system.scheduler = SchedulerKind::SSTF;
    sim.system.disk.recordingZones = 8;
    sim.synthetic.numFiles = 20000;
    sim.synthetic.fileSizeBytes = 16 * kKiB;
    sim.synthetic.numRequests = 400;
    sim.synthetic.writeProb = 0.2;
    sim.synthetic.zipfAlpha = 0.6;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, AblationNoReadAheadClook)
{
    SimulationConfig sim;
    sim.workload = WorkloadKind::Synthetic;
    sim.system.kind = SystemKind::NoRA;
    sim.system.disks = 4;
    sim.system.scheduler = SchedulerKind::CLOOK;
    sim.system.stripeUnitBytes = 32 * kKiB;
    sim.synthetic.numFiles = 20000;
    sim.synthetic.fileSizeBytes = 8 * kKiB;
    sim.synthetic.numRequests = 400;
    sim.synthetic.zipfAlpha = 0.4;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, RequestTracesAreByteIdentical)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    DeterminismCase c(webConfig(SystemKind::Segm, 64 * kKiB, 0));
    const std::string p1 = "/tmp/dtsim_sharded_det_1.jsonl";
    const std::string p4 = "/tmp/dtsim_sharded_det_4.jsonl";
    const std::string serial = c.dump(1, p1);
    const std::string sharded = c.dump(4, p4);
    EXPECT_EQ(sharded, serial);

    const std::string t1 = slurp(p1);
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(slurp(p4), t1);
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

// --- Former serial fallbacks, now sharded via the ShardLink message
// --- discipline (PR "full-coverage sharded kernel"). Each suite
// --- byte-compares the serial dump against jobs-intra 2 and 4.

TEST(ShardedDeterminism, MirroredWebStriping)
{
    // Mirrored fan-out used to fall back to serial; the canonical
    // (tick, logical disk, replica) merge rank order now makes the
    // replica-pair completion order kernel-independent.
    SimulationConfig sim = webConfig(SystemKind::Segm, 16 * kKiB, 0);
    sim.system.mirrored = true;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, MirroredForHdc)
{
    SimulationConfig sim =
        webConfig(SystemKind::FOR, 64 * kKiB, 2 * kMiB);
    sim.system.mirrored = true;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, FaultKillRepairRebuild)
{
    // Scripted kill -> degraded reads -> repair -> rebuild traffic,
    // with fault-event snapshots stamped into the dump. Exercises the
    // per-disk fault counters, the host-side health routing, and the
    // deferred rebuild submissions.
    SimulationConfig sim = webConfig(SystemKind::Segm, 16 * kKiB, 0);
    sim.system.mirrored = true;
    sim.system.fault.killAtTicks = 1 * kMsec;
    sim.system.fault.killDisk = 1;
    sim.system.fault.repairAtTicks = 500 * kMsec;
    sim.system.fault.rebuildBlocks = 512;
    DeterminismCase c(std::move(sim));
    const std::string serial = c.dump(1);
    ASSERT_NE(serial.find("# fault event @"), std::string::npos);
    ASSERT_NE(serial.find("sim.io_time_ms"), std::string::npos);
    EXPECT_EQ(c.dump(2), serial) << "jobs-intra 2 diverged";
    EXPECT_EQ(c.dump(4), serial) << "jobs-intra 4 diverged";
}

TEST(ShardedDeterminism, FaultMediaErrors)
{
    // Probabilistic media errors + scripted bad blocks: retries,
    // remaps, and penalties all live shard-side in per-disk counters
    // and per-disk RNG streams.
    SimulationConfig sim =
        webConfig(SystemKind::FOR, 64 * kKiB, 2 * kMiB);
    sim.system.fault.mediaErrorRate = 0.02;
    sim.system.fault.badBlocks = "0:7,2:21";
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, VictimCacheHdc)
{
    // The victim-cache HDC policy issues mid-run pin/unpin commands
    // from host context; they now cross to the disk timelines as
    // deferred messages under both kernels.
    SimulationConfig sim =
        webConfig(SystemKind::Segm, 32 * kKiB, 2 * kMiB);
    sim.system.hdcPolicy = HdcPolicy::VictimCache;
    sim.system.victimGhostBlocks = 256;
    DeterminismCase c(std::move(sim));
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, PeriodicSnapshots)
{
    // --stats-interval snapshots: front events at absolute ticks,
    // sync ticks under the sharded kernel. The snapshot bodies (which
    // read every disk-side counter mid-run) must byte-compare.
    DeterminismCase c(webConfig(SystemKind::Segm, 16 * kKiB, 0));
    c.tweak = [](Experiment& e) { e.statsEvery(200 * kMsec); };
    const std::string serial = c.dump(1);
    ASSERT_NE(serial.find("# snapshot @"), std::string::npos);
    EXPECT_EQ(c.dump(2), serial) << "jobs-intra 2 diverged";
    EXPECT_EQ(c.dump(4), serial) << "jobs-intra 4 diverged";
}

TEST(ShardedDeterminism, SnapshotsDuringFaultsAndMirroring)
{
    // Everything at once: a degraded mirrored run with periodic
    // snapshots layered over the fault-event snapshots.
    SimulationConfig sim = webConfig(SystemKind::Segm, 16 * kKiB, 0);
    sim.system.mirrored = true;
    sim.system.fault.killAtTicks = 1 * kMsec;
    sim.system.fault.killDisk = 1;
    sim.system.fault.repairAtTicks = 500 * kMsec;
    sim.system.fault.rebuildBlocks = 256;
    DeterminismCase c(std::move(sim));
    c.tweak = [](Experiment& e) { e.statsEvery(250 * kMsec); };
    c.expectShardedMatchesSerial();
}

TEST(ShardedDeterminism, StreamFramesAreByteIdentical)
{
    // Stream frames ride the same front-event chain as snapshots, so
    // the whole stream file (frames and final frame included) is now
    // deterministic across kernels.
    DeterminismCase c(webConfig(SystemKind::Segm, 64 * kKiB, 0));
    const std::string p1 = "/tmp/dtsim_sharded_stream_1.txt";
    const std::string p4 = "/tmp/dtsim_sharded_stream_4.txt";

    c.tweak = [&](Experiment& e) { e.streamTo(p1, 250 * kMsec); };
    const std::string d1 = c.dump(1);
    c.tweak = [&](Experiment& e) { e.streamTo(p4, 250 * kMsec); };
    const std::string d4 = c.dump(4);
    EXPECT_EQ(d4, d1);

    const std::string s1 = slurp(p1);
    ASSERT_NE(s1.find("==> dtsim stats seq=0 "), std::string::npos);
    EXPECT_EQ(slurp(p4), s1);
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

} // namespace
} // namespace dtsim
