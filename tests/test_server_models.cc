/** @file Tests for the server workload models (Section 6.3). */

#include <gtest/gtest.h>

#include "workload/server_models.hh"

namespace dtsim {
namespace {

constexpr std::uint64_t kCapacity = 64ULL << 20;   // Blocks.

ServerModelParams
tinyModel()
{
    ServerModelParams p;
    p.name = "tiny";
    p.numFiles = 2000;
    p.avgFileBytes = 16 * 1024;
    p.fileSizeSigma = 0.8;
    p.numRequests = 5000;
    p.warmupRequests = 1000;
    p.zipfAlpha = 0.8;
    p.writeRequestProb = 0.1;
    p.bufferCacheBlocks = 500;
    p.syncEveryRequests = 1000;
    p.dayEveryRequests = 0;
    p.fragmentation = 0.02;
    p.seed = 77;
    return p;
}

TEST(ServerModel, ProducesNonEmptyTrace)
{
    const ServerWorkload w = makeServerWorkload(tinyModel(),
                                                kCapacity);
    EXPECT_FALSE(w.trace.empty());
    EXPECT_EQ(w.image->fileCount(), 2000u);
}

TEST(ServerModel, TraceBlocksWithinImage)
{
    const ServerWorkload w = makeServerWorkload(tinyModel(),
                                                kCapacity);
    const std::uint64_t limit = w.image->allocatedBlocks();
    for (const TraceRecord& r : w.trace)
        ASSERT_LE(r.start + r.count, limit);
}

TEST(ServerModel, CacheFiltersRepeatedReads)
{
    // With a big cache and no writes, the hottest files should be
    // absorbed: disk accesses far fewer than logical reads.
    ServerModelParams p = tinyModel();
    p.writeRequestProb = 0.0;
    p.bufferCacheBlocks = 50000;   // Larger than the footprint.
    p.warmupRequests = 20000;      // Touch (nearly) every file.
    const ServerWorkload w = makeServerWorkload(p, kCapacity);
    // Post-warmup, (nearly) everything is cached: disk traffic is a
    // tiny fraction of the 5000 recorded requests.
    const TraceStats s = computeStats(w.trace);
    EXPECT_LT(s.records, 250u);
}

TEST(ServerModel, WriteMergingShrinksDiskWrites)
{
    // The paper's 34% -> 20% effect: repeated writes to the same
    // blocks merge in the buffer cache before reaching the disk.
    ServerModelParams p = tinyModel();
    p.writeRequestProb = 1.0;
    p.zipfAlpha = 1.0;
    p.syncEveryRequests = 1000;
    const ServerWorkload w = makeServerWorkload(p, kCapacity);
    const TraceStats s = computeStats(w.trace);
    EXPECT_GT(s.writeBlocks, 0u);
    // 5000 recorded all-write requests of ~4-block files dirty
    // ~20000 blocks logically; merging must absorb a large share.
    EXPECT_LT(s.writeBlocks, 15000u);
}

TEST(ServerModel, DayCycleCausesRepeatMisses)
{
    ServerModelParams with = tinyModel();
    with.writeRequestProb = 0.0;
    with.bufferCacheBlocks = 20000;
    with.dayEveryRequests = 500;
    ServerModelParams without = with;
    without.dayEveryRequests = 0;

    const TraceStats s_with =
        computeStats(makeServerWorkload(with, kCapacity).trace);
    const TraceStats s_without =
        computeStats(makeServerWorkload(without, kCapacity).trace);
    EXPECT_GT(s_with.maxBlockAccesses, s_without.maxBlockAccesses);
}

TEST(ServerModel, PartialAccessProducesSmallRecords)
{
    ServerModelParams p = tinyModel();
    p.partialAccess = true;
    p.avgAccessBytes = 3.1 * 1024;
    p.avgFileBytes = 256 * 1024;
    p.numFiles = 500;
    const ServerWorkload w = makeServerWorkload(p, kCapacity);
    const TraceStats s = computeStats(w.trace);
    EXPECT_LT(s.meanRecordBlocks, 4.0);
}

TEST(ServerModel, DeterministicForSeed)
{
    const ServerWorkload a = makeServerWorkload(tinyModel(),
                                                kCapacity);
    const ServerWorkload b = makeServerWorkload(tinyModel(),
                                                kCapacity);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); i += 17)
        EXPECT_EQ(a.trace[i].start, b.trace[i].start);
}

TEST(ServerModel, PresetsMatchPaperHeadlines)
{
    const ServerModelParams web = webServerParams(1.0);
    EXPECT_EQ(web.numFiles, 70000u);
    EXPECT_EQ(web.numRequests, 1700000u);
    EXPECT_NEAR(web.avgFileBytes, 21.5 * 1024, 1.0);
    EXPECT_EQ(web.streams, 16u);

    const ServerModelParams proxy = proxyServerParams(1.0);
    EXPECT_EQ(proxy.numFiles, 440000u);
    EXPECT_EQ(proxy.numRequests, 750000u);
    EXPECT_NEAR(proxy.writeRequestProb, 0.43, 1e-9);
    EXPECT_EQ(proxy.streams, 128u);

    const ServerModelParams file = fileServerParams(1.0);
    EXPECT_EQ(file.numFiles, 30000u);
    EXPECT_EQ(file.numRequests, 9500000u);
    EXPECT_TRUE(file.partialAccess);
    EXPECT_NEAR(file.avgAccessBytes, 3.1 * 1024, 1.0);
}

TEST(ServerModel, ScaleAppliesToRequestsOnly)
{
    const ServerModelParams half = webServerParams(0.5);
    EXPECT_EQ(half.numRequests, 850000u);
    EXPECT_EQ(half.numFiles, 70000u);
}

TEST(ServerModel, AdjacentRecordsOfJobCoalesced)
{
    const ServerWorkload w = makeServerWorkload(tinyModel(),
                                                kCapacity);
    for (std::size_t i = 1; i < w.trace.size(); ++i) {
        const TraceRecord& a = w.trace[i - 1];
        const TraceRecord& b = w.trace[i];
        if (a.job == b.job && a.isWrite == b.isWrite) {
            ASSERT_NE(a.start + a.count, b.start)
                << "uncoalesced adjacent records at " << i;
        }
    }
}

} // namespace
} // namespace dtsim
