/** @file Tests for the victim-cache HDC host policy. */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "experiment_replay.hh"
#include "hdc/victim_cache.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace {

struct Rig
{
    EventQueue eq;
    ArrayConfig cfg;
    std::unique_ptr<DiskArray> array;

    explicit Rig(std::uint64_t hdc_bytes = 256 * kKiB)
    {
        cfg.disks = 2;
        cfg.stripeUnitBytes = 4 * kKiB;   // 1-block units.
        cfg.controller.hdcBytes = hdc_bytes;
        array = std::make_unique<DiskArray>(eq, cfg);
    }

    std::uint64_t
    pinnedTotal() const
    {
        std::uint64_t n = 0;
        for (unsigned d = 0; d < array->disks(); ++d)
            n += array->controller(d).hdcPinnedBlocks();
        return n;
    }
};

TEST(VictimHdc, PinsOnGhostEviction)
{
    Rig r;
    VictimHdcManager mgr(*r.array, 4);
    // Fill the ghost (4 blocks); nothing pinned yet.
    mgr.onAccess(0, 4);
    EXPECT_EQ(mgr.pins(), 0u);
    // A fifth block evicts block 0 from the ghost -> pinned. The pin
    // command crosses to the disk timeline after commandLatency();
    // drain the queue to apply it.
    mgr.onAccess(10, 1);
    EXPECT_EQ(mgr.pins(), 1u);
    r.eq.run();
    EXPECT_EQ(r.pinnedTotal(), 1u);
    EXPECT_TRUE(r.array->controller(0).hdcPinnedBlocks() == 1 ||
                r.array->controller(1).hdcPinnedBlocks() == 1);
}

TEST(VictimHdc, ReaccessUnpins)
{
    Rig r;
    VictimHdcManager mgr(*r.array, 2);
    mgr.onAccess(0, 2);    // Ghost: {0,1}.
    mgr.onAccess(5, 1);    // Evicts 0 -> pinned.
    EXPECT_EQ(mgr.pinnedNow(), 1u);
    mgr.onAccess(0, 1);    // Victim hit: back to host, unpinned.
    EXPECT_EQ(mgr.unpins(), 1u);
    EXPECT_EQ(mgr.pinnedNow(), 1u);   // 1 (the newly evicted 1).
}

TEST(VictimHdc, FifoRetirementWhenRegionFull)
{
    Rig r(4 * 4096);   // 4 pinned blocks per disk, 8 total.
    VictimHdcManager mgr(*r.array, 2);
    // Stream 30 distinct blocks through a 2-block ghost: 28 pin
    // attempts; the per-disk regions (4+4) stay within capacity via
    // FIFO retirement.
    for (ArrayBlock b = 0; b < 30; ++b)
        mgr.onAccess(b, 1);
    // Apply the deferred pin/unpin command stream; the commands land
    // in issue order, so the regions never transiently overflow.
    r.eq.run();
    EXPECT_LE(r.pinnedTotal(), 8u);
    EXPECT_GT(mgr.unpins(), 0u);
    EXPECT_GT(mgr.pins(), 8u);
}

TEST(VictimHdc, RunnerIntegration)
{
    SystemConfig cfg;
    cfg.disks = 2;
    cfg.streams = 8;
    cfg.stripeUnitBytes = 32 * kKiB;
    cfg.kind = SystemKind::Segm;
    cfg.hdcBytesPerDisk = kMiB;
    cfg.hdcPolicy = HdcPolicy::VictimCache;
    cfg.victimGhostBlocks = 64;   // Tiny host cache: many victims.

    SyntheticParams sp;
    sp.numFiles = 200;            // Small, reuse-heavy workload.
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = 2000;
    sp.zipfAlpha = 0.9;
    const SyntheticWorkload w =
        makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks());

    const RunResult r = test::replayTrace(cfg, w.trace);
    EXPECT_GT(r.victimPins, 0u);
    // Re-read victims are served by the controllers.
    EXPECT_GT(r.agg.hdcHitBlocks, 0u);
}

TEST(VictimHdc, NoHdcBudgetNeverPins)
{
    Rig r(0);
    VictimHdcManager mgr(*r.array, 2);
    for (ArrayBlock b = 0; b < 20; ++b)
        mgr.onAccess(b, 1);
    r.eq.run();
    EXPECT_EQ(r.pinnedTotal(), 0u);
    EXPECT_EQ(mgr.pinnedNow(), 0u);
}

} // namespace
} // namespace dtsim
