/**
 * @file
 * Test helper: normalize stats-dump text for byte comparisons.
 *
 * Stats dumps open with a "# runtime:" line (wall clock, events/sec)
 * and, when tracing ran, a "# trace:" line (whose dropped count
 * depends on writer-thread timing); both are volatile by design --
 * documented in docs/METRICS.md as excluded from determinism
 * comparisons. Tests asserting that two dumps are byte-identical
 * strip them first.
 */

#ifndef DTSIM_TESTS_STATS_TEXT_HH
#define DTSIM_TESTS_STATS_TEXT_HH

#include <sstream>
#include <string>

namespace dtsim {
namespace test {

inline std::string
stripRuntime(const std::string& dump)
{
    std::istringstream in(dump);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.compare(0, 10, "# runtime:") == 0 ||
            line.compare(0, 8, "# trace:") == 0)
            continue;
        out << line << "\n";
    }
    return out.str();
}

} // namespace test
} // namespace dtsim

#endif // DTSIM_TESTS_STATS_TEXT_HH
