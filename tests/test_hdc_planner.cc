/** @file Tests for the host-side HDC planning policy. */

#include <gtest/gtest.h>

#include "hdc/hdc_planner.hh"

namespace dtsim {
namespace {

TEST(MissCounter, CountsBlocksOfRecords)
{
    Trace t;
    t.push_back({10, 4, false, 0});
    t.push_back({12, 2, true, 1});
    MissCounter c;
    c.addTrace(t);
    EXPECT_EQ(c.count(10), 1u);
    EXPECT_EQ(c.count(12), 2u);
    EXPECT_EQ(c.count(13), 2u);
    EXPECT_EQ(c.count(14), 0u);
    EXPECT_EQ(c.distinctBlocks(), 4u);
}

TEST(MissCounter, TopBlocksOrderedByCount)
{
    MissCounter c;
    c.add(1, 5);
    c.add(2, 9);
    c.add(3, 1);
    const auto top = c.topBlocks(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 2u);
    EXPECT_EQ(top[1], 1u);
}

TEST(MissCounter, TiesBreakTowardLowerBlock)
{
    MissCounter c;
    c.add(9, 3);
    c.add(4, 3);
    c.add(7, 3);
    const auto top = c.topBlocks(3);
    EXPECT_EQ(top, (std::vector<ArrayBlock>{4, 7, 9}));
}

TEST(SelectPinned, RespectsPerDiskBudget)
{
    // 2 disks, unit 2 blocks. Blocks 0,1 on disk 0; 2,3 on disk 1;
    // 4,5 on disk 0; ...
    StripingMap m(2, 2, 1000);
    Trace t;
    // Make disk-0 blocks extremely hot.
    for (int i = 0; i < 10; ++i)
        t.push_back({0, 2, false, static_cast<std::uint32_t>(i)});
    t.push_back({2, 2, false, 100});   // Disk 1, cooler.
    const auto pinned = selectPinnedBlocks(t, m, 1);
    // One block per disk: the hottest of each.
    ASSERT_EQ(pinned.size(), 2u);
    EXPECT_EQ(m.toPhysical(pinned[0]).disk, 0u);
    EXPECT_EQ(m.toPhysical(pinned[1]).disk, 1u);
}

TEST(SelectPinned, SkipsDisksWithoutTraffic)
{
    StripingMap m(4, 1, 1000);
    Trace t;
    t.push_back({0, 1, false, 0});   // Disk 0 only.
    const auto pinned = selectPinnedBlocks(t, m, 8);
    EXPECT_EQ(pinned.size(), 1u);
}

TEST(SelectPinned, HottestBlocksChosenFirst)
{
    StripingMap m(1, 32, 100000);
    Trace t;
    for (int i = 0; i < 50; ++i)
        t.push_back({7, 1, false, static_cast<std::uint32_t>(i)});
    for (int i = 0; i < 20; ++i)
        t.push_back({13, 1, false, static_cast<std::uint32_t>(i)});
    t.push_back({20, 1, false, 999});
    const auto pinned = selectPinnedBlocks(t, m, 2);
    ASSERT_EQ(pinned.size(), 2u);
    EXPECT_EQ(pinned[0], 7u);
    EXPECT_EQ(pinned[1], 13u);
}

TEST(SelectPinned, ZeroBudgetPinsNothing)
{
    StripingMap m(2, 2, 1000);
    Trace t;
    t.push_back({0, 4, false, 0});
    EXPECT_TRUE(selectPinnedBlocks(t, m, 0).empty());
}

} // namespace
} // namespace dtsim
