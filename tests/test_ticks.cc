/** @file Unit tests for the tick/time helpers. */

#include <gtest/gtest.h>

#include "sim/ticks.hh"

namespace dtsim {
namespace {

TEST(Ticks, UnitRelations)
{
    EXPECT_EQ(kUsec, 1000u * kNsec);
    EXPECT_EQ(kMsec, 1000u * kUsec);
    EXPECT_EQ(kSec, 1000u * kMsec);
}

TEST(Ticks, RoundTripSeconds)
{
    EXPECT_DOUBLE_EQ(toSeconds(fromSeconds(1.5)), 1.5);
    EXPECT_DOUBLE_EQ(toMillis(fromMillis(3.4)), 3.4);
    EXPECT_DOUBLE_EQ(toMicros(fromMicros(250.0)), 250.0);
}

TEST(Ticks, NegativeClampsToZero)
{
    EXPECT_EQ(fromSeconds(-1.0), 0u);
    EXPECT_EQ(fromMillis(-0.1), 0u);
    EXPECT_EQ(fromMicros(-5.0), 0u);
}

TEST(Ticks, RoundsToNearest)
{
    // 1.4 ns rounds down, 1.6 ns rounds up.
    EXPECT_EQ(fromMicros(0.0014), 1u);
    EXPECT_EQ(fromMicros(0.0016), 2u);
}

TEST(Ticks, FormatPicksUnit)
{
    EXPECT_EQ(formatTicks(2 * kSec), "2.000 s");
    EXPECT_EQ(formatTicks(fromMillis(3.4)), "3.400 ms");
    EXPECT_EQ(formatTicks(fromMicros(12.0)), "12.000 us");
    EXPECT_EQ(formatTicks(7), "7 ns");
}

} // namespace
} // namespace dtsim
