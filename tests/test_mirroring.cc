/** @file Tests for RAID-10 mirroring in the disk array. */

#include <gtest/gtest.h>

#include "array/disk_array.hh"
#include "sim/event_queue.hh"

namespace dtsim {
namespace {

struct Rig
{
    EventQueue eq;
    ArrayConfig cfg;
    std::unique_ptr<DiskArray> array;

    Rig()
    {
        cfg.disks = 4;
        cfg.stripeUnitBytes = 32 * kKiB;
        cfg.mirrored = true;
        array = std::make_unique<DiskArray>(eq, cfg);
    }

    void
    doRequest(ArrayBlock start, std::uint64_t count, bool write)
    {
        ArrayRequest req;
        req.start = start;
        req.count = count;
        req.isWrite = write;
        array->submit(std::move(req));
        eq.run();
    }
};

TEST(Mirroring, HalvesLogicalCapacity)
{
    Rig r;
    ArrayConfig plain = r.cfg;
    plain.mirrored = false;
    EventQueue eq2;
    DiskArray flat(eq2, plain);
    EXPECT_EQ(r.array->totalBlocks() * 2, flat.totalBlocks());
}

TEST(Mirroring, OddDiskCountIsFatal)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            ArrayConfig cfg;
            cfg.disks = 3;
            cfg.mirrored = true;
            DiskArray a(eq, cfg);
        },
        "even disk count");
}

TEST(Mirroring, WritesLandOnBothReplicas)
{
    Rig r;
    r.doRequest(0, 4, true);   // Logical disk 0 -> disks 0 and 2.
    EXPECT_EQ(r.array->controller(0).stats().writes, 1u);
    EXPECT_EQ(r.array->controller(2).stats().writes, 1u);
    EXPECT_EQ(r.array->controller(1).stats().writes, 0u);
    EXPECT_EQ(r.array->controller(3).stats().writes, 0u);
}

TEST(Mirroring, ReadGoesToOneReplica)
{
    Rig r;
    r.doRequest(0, 4, false);
    const auto reads0 = r.array->controller(0).stats().reads;
    const auto reads2 = r.array->controller(2).stats().reads;
    EXPECT_EQ(reads0 + reads2, 1u);
}

TEST(Mirroring, ConcurrentReadsSpreadAcrossReplicas)
{
    Rig r;
    // Issue many reads of the same logical disk without running the
    // queue: replica choice balances the outstanding counts.
    for (int i = 0; i < 10; ++i) {
        ArrayRequest req;
        req.start = 0;
        req.count = 4;
        r.array->submit(std::move(req));
    }
    EXPECT_GT(r.array->controller(0).outstanding(), 0u);
    EXPECT_GT(r.array->controller(2).outstanding(), 0u);
    r.eq.run();
}

TEST(Mirroring, PinCoversBothReplicas)
{
    EventQueue eq;
    ArrayConfig cfg;
    cfg.disks = 2;
    cfg.stripeUnitBytes = 4 * kKiB;
    cfg.mirrored = true;
    cfg.controller.hdcBytes = 256 * kKiB;
    DiskArray array(eq, cfg);

    EXPECT_TRUE(array.pinLogicalBlock(5));
    EXPECT_EQ(array.controller(0).hdcPinnedBlocks(), 1u);
    EXPECT_EQ(array.controller(1).hdcPinnedBlocks(), 1u);
    EXPECT_TRUE(array.unpinLogicalBlock(5));
    EXPECT_EQ(array.controller(0).hdcPinnedBlocks(), 0u);
    EXPECT_EQ(array.controller(1).hdcPinnedBlocks(), 0u);
}

TEST(Mirroring, BitmapsSharedBetweenReplicas)
{
    EventQueue eq;
    ArrayConfig cfg;
    cfg.disks = 2;
    cfg.mirrored = true;
    cfg.controller.org = CacheOrg::Block;
    cfg.controller.readAhead = ReadAheadMode::FOR;
    DiskArray array(eq, cfg);

    // One bitmap per LOGICAL disk suffices.
    std::vector<LayoutBitmap> maps;
    maps.emplace_back(cfg.disk.totalBlocks());
    array.setBitmaps(&maps);

    ArrayRequest req;
    req.start = 0;
    req.count = 2;
    array.submit(std::move(req));
    eq.run();   // Would fatal without a bitmap on the serving disk.
    SUCCEED();
}

} // namespace
} // namespace dtsim
