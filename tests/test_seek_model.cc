/** @file Tests for the three-piece seek-time model. */

#include <gtest/gtest.h>

#include "disk/seek_model.hh"

namespace dtsim {
namespace {

TEST(SeekModel, ZeroDistanceIsFree)
{
    SeekModel m{DiskParams{}};
    EXPECT_EQ(m.seekTime(0), 0u);
    EXPECT_DOUBLE_EQ(m.seekTimeMs(0), 0.0);
}

TEST(SeekModel, ShortSeekUsesSqrtPiece)
{
    DiskParams p;
    SeekModel m(p);
    // n = 100 <= theta = 1150: alpha + beta*sqrt(100).
    EXPECT_NEAR(m.seekTimeMs(100), 0.9336 + 0.0364 * 10.0, 1e-9);
}

TEST(SeekModel, LongSeekUsesLinearPiece)
{
    DiskParams p;
    SeekModel m(p);
    // n = 5000 > theta: gamma + delta*n.
    EXPECT_NEAR(m.seekTimeMs(5000), 1.5503 + 0.00054 * 5000, 1e-9);
}

TEST(SeekModel, BoundaryPiecesAreClose)
{
    // The two pieces should roughly agree at theta (the regression
    // fits the same drive).
    DiskParams p;
    SeekModel m(p);
    const double below = m.seekTimeMs(p.seekThetaCyls);
    const double above = m.seekTimeMs(p.seekThetaCyls + 1);
    EXPECT_NEAR(below, above, 0.1);
}

TEST(SeekModel, MonotoneNonDecreasing)
{
    SeekModel m{DiskParams{}};
    double prev = 0.0;
    for (std::uint32_t n = 0; n < 10000; n += 13) {
        const double t = m.seekTimeMs(n);
        EXPECT_GE(t, prev - 1e-12);
        prev = t;
    }
}

TEST(SeekModel, AverageSeekMatchesDriveSpec)
{
    // The published coefficients should reproduce the drive's 3.4 ms
    // average seek over its ~10k cylinders.
    DiskParams p;
    SeekModel m(p);
    const double avg = m.averageSeekMs(9987);
    EXPECT_NEAR(avg, 3.4, 0.3);
}

TEST(SeekModel, TicksMatchMilliseconds)
{
    SeekModel m{DiskParams{}};
    EXPECT_EQ(m.seekTime(100), fromMillis(m.seekTimeMs(100)));
}

} // namespace
} // namespace dtsim
