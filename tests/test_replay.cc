/** @file Integration tests for the closed-loop replay engine. */

#include <gtest/gtest.h>

#include "core/replay.hh"
#include "core/system.hh"

namespace dtsim {
namespace {

Trace
simpleTrace(std::size_t jobs, std::uint32_t records_per_job)
{
    Trace t;
    for (std::uint32_t j = 0; j < jobs; ++j) {
        for (std::uint32_t r = 0; r < records_per_job; ++r) {
            TraceRecord rec;
            rec.start = (j * 1000 + r * 4) % 100000;
            rec.count = 4;
            rec.job = j;
            t.push_back(rec);
        }
    }
    return t;
}

TEST(ReplayEngine, CompletesWholeTrace)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.disks = 2;
    DiskArray array(eq, cfg.arrayConfig());
    const Trace trace = simpleTrace(20, 3);
    ReplayEngine engine(eq, array, trace, 4);
    const Tick end = engine.run();
    EXPECT_GT(end, 0u);
    EXPECT_EQ(engine.metrics().requests, 60u);
    EXPECT_EQ(engine.metrics().jobs, 20u);
    EXPECT_EQ(engine.metrics().blocks, 240u);
    EXPECT_EQ(array.outstanding(), 0u);
}

TEST(ReplayEngine, EmptyTraceReturnsImmediately)
{
    EventQueue eq;
    SystemConfig cfg;
    DiskArray array(eq, cfg.arrayConfig());
    Trace empty;
    ReplayEngine engine(eq, array, empty, 8);
    EXPECT_EQ(engine.run(), 0u);
}

TEST(ReplayEngine, SingleStreamSerializesJobs)
{
    // With one stream the makespan is the sum of request latencies,
    // so more streams must strictly help on a multi-disk array.
    const Trace trace = simpleTrace(40, 1);

    auto run_with = [&](unsigned streams) {
        EventQueue eq;
        SystemConfig cfg;
        cfg.disks = 4;
        cfg.stripeUnitBytes = 16 * kKiB;
        DiskArray array(eq, cfg.arrayConfig());
        ReplayEngine engine(eq, array, trace, streams);
        return engine.run();
    };

    EXPECT_LT(run_with(16), run_with(1));
}

TEST(ReplayEngine, WorkerPoolLimitsInFlight)
{
    // 1 worker and 8 streams must behave like serialized issue: the
    // result equals the 1-stream makespan.
    const Trace trace = simpleTrace(30, 1);
    auto run_with = [&](unsigned streams, unsigned workers) {
        EventQueue eq;
        SystemConfig cfg;
        cfg.disks = 4;
        DiskArray array(eq, cfg.arrayConfig());
        ReplayEngine engine(eq, array, trace, streams, workers);
        return engine.run();
    };
    EXPECT_EQ(run_with(8, 1), run_with(1, 1));
}

TEST(ReplayEngine, LatencyMetricsPopulated)
{
    EventQueue eq;
    SystemConfig cfg;
    DiskArray array(eq, cfg.arrayConfig());
    const Trace trace = simpleTrace(10, 2);
    ReplayEngine engine(eq, array, trace, 4);
    engine.run();
    EXPECT_GT(engine.metrics().meanLatencyMs(), 0.0);
    EXPECT_GE(engine.metrics().maxLatency,
              engine.metrics().sumLatency /
                  engine.metrics().requests);
}

} // namespace
} // namespace dtsim
