/** @file Tests for the host buffer cache model. */

#include <gtest/gtest.h>

#include "fs/buffer_cache.hh"

namespace dtsim {
namespace {

TEST(BufferCache, MissThenHit)
{
    BufferCache c(4);
    std::vector<ArrayBlock> wb;
    EXPECT_FALSE(c.readHit(1));
    c.install(1, wb);
    EXPECT_TRUE(c.readHit(1));
    EXPECT_EQ(c.stats().readLookups, 2u);
    EXPECT_EQ(c.stats().readMisses, 1u);
}

TEST(BufferCache, LruEviction)
{
    BufferCache c(3);
    std::vector<ArrayBlock> wb;
    c.install(1, wb);
    c.install(2, wb);
    c.install(3, wb);
    c.readHit(1);          // 2 is now LRU.
    c.install(4, wb);      // Evicts 2.
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
    EXPECT_TRUE(c.contains(3));
    EXPECT_TRUE(c.contains(4));
    EXPECT_TRUE(wb.empty());   // Clean eviction: no write-back.
}

TEST(BufferCache, DirtyEvictionWritesBack)
{
    BufferCache c(2);
    std::vector<ArrayBlock> wb;
    c.write(10, wb);
    c.install(11, wb);
    c.install(12, wb);     // Evicts dirty 10.
    ASSERT_EQ(wb.size(), 1u);
    EXPECT_EQ(wb[0], 10u);
    EXPECT_EQ(c.stats().dirtyWritebacks, 1u);
}

TEST(BufferCache, WriteMergesIntoDirtyBlock)
{
    BufferCache c(4);
    std::vector<ArrayBlock> wb;
    EXPECT_FALSE(c.write(5, wb));   // Cold write.
    EXPECT_TRUE(c.write(5, wb));    // Merged.
    EXPECT_TRUE(c.write(5, wb));
    EXPECT_EQ(c.stats().writeMerges, 2u);
    // One dirty block despite three writes: the merge effect the
    // paper notes (34% write requests -> 20% write accesses).
    EXPECT_EQ(c.sync().size(), 1u);
}

TEST(BufferCache, SyncCleansWithoutEvicting)
{
    BufferCache c(4);
    std::vector<ArrayBlock> wb;
    c.write(1, wb);
    c.write(2, wb);
    auto dirty = c.sync();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_TRUE(c.contains(1));
    EXPECT_TRUE(c.contains(2));
    EXPECT_TRUE(c.sync().empty());
    // Clean now: eviction does not write back.
    c.install(3, wb);
    c.install(4, wb);
    c.install(5, wb);
    EXPECT_TRUE(wb.empty());
}

TEST(BufferCache, DropAllFlushesAndEmpties)
{
    BufferCache c(4);
    std::vector<ArrayBlock> wb;
    c.write(1, wb);
    c.install(2, wb);
    auto dirty = c.dropAll();
    EXPECT_EQ(dirty.size(), 1u);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_FALSE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
}

TEST(BufferCache, WriteToCleanCachedBlockDirties)
{
    BufferCache c(4);
    std::vector<ArrayBlock> wb;
    c.install(7, wb);
    EXPECT_TRUE(c.write(7, wb));   // Present (clean) -> true.
    EXPECT_EQ(c.sync().size(), 1u);
}

TEST(BufferCache, CapacityNeverExceeded)
{
    BufferCache c(16);
    std::vector<ArrayBlock> wb;
    for (ArrayBlock b = 0; b < 1000; ++b) {
        if (b % 3 == 0)
            c.write(b, wb);
        else
            c.install(b, wb);
        ASSERT_LE(c.size(), 16u);
    }
    EXPECT_EQ(c.stats().evictions, 1000u - 16u);
}

} // namespace
} // namespace dtsim
