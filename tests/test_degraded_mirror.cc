/**
 * @file
 * Tests for degraded-mode mirroring: scripted whole-disk failure on a
 * RAID-10 array redirects reads to the mirror partner, repair drives
 * the Dead -> Rebuilding -> Alive state machine with sequential
 * rebuild traffic, and an unmirrored kill aborts with a diagnostic.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "array/disk_array.hh"
#include "core/experiment.hh"
#include "sim/event_queue.hh"

namespace dtsim {
namespace {

struct MirrorRig
{
    EventQueue eq;
    ArrayConfig cfg;
    std::unique_ptr<DiskArray> array;

    explicit MirrorRig(const FaultConfig& fault)
    {
        cfg.disks = 4;           // Logical disks 0,1; mirrors 2,3.
        cfg.stripeUnitBytes = 32 * kKiB;
        cfg.mirrored = true;
        cfg.fault = fault;
        array = std::make_unique<DiskArray>(eq, cfg);
    }

    void
    doRequest(ArrayBlock start, std::uint64_t count, bool write)
    {
        ArrayRequest req;
        req.start = start;
        req.count = count;
        req.isWrite = write;
        array->submit(std::move(req));
        eq.run();
    }
};

TEST(DegradedMirror, ReadsRedirectToMirrorPartner)
{
    FaultConfig fault;
    fault.killAtTicks = 1;      // Kill disk 0 before any I/O.
    fault.killDisk = 0;
    MirrorRig r(fault);
    r.eq.run();                 // Fire the scripted kill.
    ASSERT_EQ(r.array->diskHealth(0), DiskHealth::Dead);

    // Logical disk 0 data is now served exclusively by its mirror
    // (physical disk 2), and every such read counts as degraded.
    for (int i = 0; i < 5; ++i)
        r.doRequest(0, 4, false);

    EXPECT_EQ(r.array->controller(0).stats().reads, 0u);
    EXPECT_EQ(r.array->controller(2).stats().reads, 5u);
    const FaultCounters c = r.array->faultCounters();
    EXPECT_EQ(c.diskFailures, 1u);
    EXPECT_EQ(c.degradedReads, 5u);
}

TEST(DegradedMirror, WritesToDegradedPairReachSurvivor)
{
    FaultConfig fault;
    fault.killAtTicks = 1;
    fault.killDisk = 0;
    MirrorRig r(fault);
    r.eq.run();

    // A write of logical disk 0 lands only on the surviving replica
    // and is counted as degraded.
    r.doRequest(0, 4, true);
    EXPECT_EQ(r.array->controller(0).stats().writes, 0u);
    EXPECT_EQ(r.array->controller(2).stats().writes, 1u);
    EXPECT_EQ(r.array->faultCounters().degradedWrites, 1u);

    // Logical disk 1 is untouched: both replicas still written.
    const std::uint64_t unit_blocks =
        r.cfg.stripeUnitBytes / r.cfg.disk.blockSize;
    r.doRequest(unit_blocks, 4, true);
    EXPECT_EQ(r.array->controller(1).stats().writes, 1u);
    EXPECT_EQ(r.array->controller(3).stats().writes, 1u);
    EXPECT_EQ(r.array->faultCounters().degradedWrites, 1u);
}

TEST(DegradedMirror, RepairRunsRebuildToCompletion)
{
    FaultConfig fault;
    fault.killAtTicks = 1;
    fault.killDisk = 0;
    fault.repairAtTicks = 1000;
    fault.rebuildBlocks = 64;
    fault.rebuildChunkBlocks = 16;
    MirrorRig r(fault);

    std::vector<std::string> events;
    r.array->setFaultEventHook(
        [&](const char* event, unsigned disk, Tick) {
            events.push_back(std::string(event) + ":" +
                             std::to_string(disk));
        });

    // Draining the queue runs kill, repair, and the whole rebuild.
    r.eq.run();

    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0], "failure:0");
    EXPECT_EQ(events[1], "repair:0");
    EXPECT_EQ(events[2], "rebuilt:0");
    EXPECT_EQ(r.array->diskHealth(0), DiskHealth::Alive);

    const FaultCounters c = r.array->faultCounters();
    EXPECT_EQ(c.diskFailures, 1u);
    EXPECT_EQ(c.diskRepairs, 1u);
    EXPECT_EQ(c.rebuildBlocks, 64u);
    // 4 chunks, each a mirror read plus a write to the rebuilt disk.
    EXPECT_EQ(c.rebuildJobs, 8u);
}

TEST(DegradedMirror, RebuildingDiskDoesNotServeReads)
{
    FaultConfig fault;
    fault.killAtTicks = 1;
    fault.killDisk = 0;
    fault.repairAtTicks = 1000;
    fault.rebuildBlocks = 16;
    fault.rebuildChunkBlocks = 16;
    MirrorRig r(fault);

    bool saw_rebuilding = false;
    r.array->setFaultEventHook(
        [&](const char* event, unsigned disk, Tick) {
            if (std::string(event) != "repair")
                return;
            // At the instant of repair the disk is Rebuilding: reads
            // keep going to the up-to-date mirror.
            saw_rebuilding = r.array->diskHealth(disk) ==
                             DiskHealth::Rebuilding;
            ArrayRequest req;
            req.start = 0;
            req.count = 4;
            r.array->submit(std::move(req));
        });
    r.eq.run();

    EXPECT_TRUE(saw_rebuilding);
    EXPECT_EQ(r.array->controller(0).stats().reads, 0u);
    EXPECT_EQ(r.array->controller(2).stats().reads, 1u);
    EXPECT_GE(r.array->faultCounters().degradedReads, 1u);
}

TEST(DegradedMirror, UnmirroredKillIsFatal)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            ArrayConfig cfg;
            cfg.disks = 4;
            cfg.mirrored = false;
            cfg.fault.killAtTicks = 1;
            DiskArray a(eq, cfg);
            eq.run();
        },
        "unmirrored");
}

TEST(DegradedMirror, RepairBeforeKillIsFatal)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            ArrayConfig cfg;
            cfg.disks = 4;
            cfg.mirrored = true;
            cfg.fault.killAtTicks = 100;
            cfg.fault.repairAtTicks = 50;
            DiskArray a(eq, cfg);
        },
        "after fault.kill_at_ticks");
}

TEST(DegradedMirror, KilledRunCompletesAgainstReference)
{
    // The acceptance scenario: a mirrored run that loses a disk
    // mid-stream must still complete every request, matching the
    // un-failed reference replay request for request.
    SimulationConfig sim;
    sim.synthetic.numRequests = 400;
    sim.synthetic.numFiles = 3000;
    sim.synthetic.seed = 11;
    sim.system.seed = 11;
    sim.system.mirrored = true;

    const RunResult ref = Experiment(sim).run();

    SimulationConfig faulty = sim;
    faulty.system.fault.killAtTicks = 1000000;   // 1 ms in.
    faulty.system.fault.killDisk = 1;
    faulty.system.fault.repairAtTicks = 2000000000;
    faulty.system.fault.rebuildBlocks = 256;
    const RunResult hurt = Experiment(faulty).run();

    EXPECT_EQ(hurt.requests, ref.requests);
    EXPECT_EQ(hurt.blocks, ref.blocks);
    EXPECT_EQ(hurt.faults.diskFailures, 1u);
    EXPECT_EQ(hurt.faults.diskRepairs, 1u);
    EXPECT_GT(hurt.faults.degradedReads, 0u);
    EXPECT_EQ(hurt.faults.rebuildBlocks, 256u);
    // Redirection costs time: the degraded run is never faster.
    EXPECT_GE(hurt.ioTime, ref.ioTime);
}

} // namespace
} // namespace dtsim
