/** @file Tests for the FOR layout bitmap. */

#include <gtest/gtest.h>

#include "controller/layout_bitmap.hh"
#include "disk/disk_params.hh"

namespace dtsim {
namespace {

TEST(LayoutBitmap, StartsAllZero)
{
    LayoutBitmap bm(1000);
    for (BlockNum b = 0; b < 1000; b += 7)
        EXPECT_FALSE(bm.get(b));
    EXPECT_EQ(bm.popcount(), 0u);
}

TEST(LayoutBitmap, SetAndClear)
{
    LayoutBitmap bm(128);
    bm.set(0, true);
    bm.set(63, true);
    bm.set(64, true);
    bm.set(127, true);
    EXPECT_TRUE(bm.get(0));
    EXPECT_TRUE(bm.get(63));
    EXPECT_TRUE(bm.get(64));
    EXPECT_TRUE(bm.get(127));
    EXPECT_EQ(bm.popcount(), 4u);
    bm.set(64, false);
    EXPECT_FALSE(bm.get(64));
    EXPECT_EQ(bm.popcount(), 3u);
}

TEST(LayoutBitmap, OutOfRangeReadsZeroWritesIgnored)
{
    LayoutBitmap bm(10);
    EXPECT_FALSE(bm.get(10));
    EXPECT_FALSE(bm.get(1000000));
    bm.set(10, true);   // Ignored.
    EXPECT_EQ(bm.popcount(), 0u);
}

TEST(LayoutBitmap, CountRunMeasuresContiguity)
{
    LayoutBitmap bm(100);
    // File occupying blocks 10..17: bits 11..17 are continuations.
    for (BlockNum b = 11; b <= 17; ++b)
        bm.set(b, true);
    // A read ending at block 10 may read ahead 7 more blocks.
    EXPECT_EQ(bm.countRun(11, 100), 7u);
    EXPECT_EQ(bm.countRun(11, 3), 3u);     // Capped.
    EXPECT_EQ(bm.countRun(18, 100), 0u);   // Next file boundary.
    EXPECT_EQ(bm.countRun(10, 100), 0u);   // Block 10 starts a file.
}

TEST(LayoutBitmap, CountRunStopsAtEndOfDisk)
{
    LayoutBitmap bm(16);
    for (BlockNum b = 0; b < 16; ++b)
        bm.set(b, true);
    EXPECT_EQ(bm.countRun(10, 100), 6u);
}

TEST(LayoutBitmap, RunAcrossWordBoundary)
{
    LayoutBitmap bm(256);
    for (BlockNum b = 60; b < 70; ++b)
        bm.set(b, true);
    EXPECT_EQ(bm.countRun(60, 256), 10u);
}

TEST(LayoutBitmap, SizeMatchesPaperOverhead)
{
    // One bit per 4 KB block of the 18 GB drive: 546 KB (0.003% of
    // the disk), as quoted in Section 4.
    DiskParams p;
    LayoutBitmap bm(p.totalBlocks());
    // 549316 bytes: the paper quotes "546 KBytes" for the same
    // drive (the small difference is KB vs KiB rounding).
    EXPECT_NEAR(static_cast<double>(bm.sizeBytes()) / 1000.0, 546.0,
                6.0);
    const double overhead = static_cast<double>(bm.sizeBytes()) /
                            static_cast<double>(p.capacityBytes);
    EXPECT_NEAR(overhead, 0.00003, 0.000002);
}

} // namespace
} // namespace dtsim
