/** @file End-to-end tests of the experiment runner (system variants). */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "experiment_replay.hh"
#include "hdc/hdc_planner.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace {

struct Workbench
{
    SystemConfig base;
    SyntheticWorkload w;
    std::vector<LayoutBitmap> bitmaps;

    explicit Workbench(std::uint64_t file_kb = 16,
                       std::uint64_t requests = 400,
                       double zipf = 0.4, double writes = 0.0)
    {
        base.disks = 4;
        base.streams = 32;
        base.workers = 8;
        base.stripeUnitBytes = 128 * kKiB;

        // Keep the footprint far above the aggregate controller
        // cache so accidental read-ahead coverage stays realistic.
        SyntheticParams sp;
        sp.numFiles = 50000;
        sp.fileSizeBytes = file_kb * kKiB;
        sp.numRequests = requests;
        sp.zipfAlpha = zipf;
        sp.writeProb = writes;
        w = makeSynthetic(sp,
                          base.disks * base.disk.totalBlocks());

        StripingMap striping(base.disks,
                             base.stripeUnitBytes /
                                 base.disk.blockSize,
                             base.disk.totalBlocks());
        bitmaps = w.image->buildBitmaps(striping);
    }

    RunResult
    run(SystemKind kind, std::uint64_t hdc_bytes = 0)
    {
        SystemConfig cfg = base;
        cfg.kind = kind;
        cfg.hdcBytesPerDisk = hdc_bytes;
        std::vector<ArrayBlock> pinned;
        const std::vector<ArrayBlock>* pp = nullptr;
        if (hdc_bytes > 0) {
            StripingMap striping(cfg.disks,
                                 cfg.stripeUnitBytes /
                                     cfg.disk.blockSize,
                                 cfg.disk.totalBlocks());
            pinned = selectPinnedBlocks(w.trace, striping,
                                        hdcBlocksPerDisk(cfg));
            pp = &pinned;
        }
        return test::replayTrace(cfg, w.trace, &bitmaps, pp);
    }
};

TEST(Runner, AllSystemsCompleteTheTrace)
{
    Workbench wb;
    for (SystemKind k : {SystemKind::Segm, SystemKind::Block,
                         SystemKind::NoRA, SystemKind::FOR}) {
        const RunResult r = wb.run(k);
        EXPECT_GT(r.ioTime, 0u) << systemKindName(k);
        EXPECT_EQ(r.requests, computeStats(wb.w.trace).records);
        EXPECT_GT(r.throughputMBps, 0.0);
    }
}

TEST(Runner, ForBeatsSegmOnSmallFiles)
{
    Workbench wb(16, 800);
    const RunResult segm = wb.run(SystemKind::Segm);
    const RunResult forr = wb.run(SystemKind::FOR);
    // The paper's headline: ~40% I/O time reduction for 16 KB files.
    EXPECT_LT(forr.ioTime, segm.ioTime * 80 / 100);
}

TEST(Runner, ForMatchesSegmOnSegmentSizedFiles)
{
    Workbench wb(128, 300);
    const RunResult segm = wb.run(SystemKind::Segm);
    const RunResult forr = wb.run(SystemKind::FOR);
    const double ratio = static_cast<double>(forr.ioTime) /
                         static_cast<double>(segm.ioTime);
    EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Runner, NoRaBeatsBlindOnTinyFiles)
{
    Workbench wb(4, 800);
    const RunResult segm = wb.run(SystemKind::Segm);
    const RunResult nora = wb.run(SystemKind::NoRA);
    EXPECT_LT(nora.ioTime, segm.ioTime);
}

TEST(Runner, HdcImprovesSkewedWorkload)
{
    Workbench wb(16, 1500, 1.0);
    const RunResult segm = wb.run(SystemKind::Segm);
    const RunResult hdc = wb.run(SystemKind::Segm, 2 * kMiB);
    EXPECT_GT(hdc.hdcHitRate, 0.05);
    EXPECT_LT(hdc.ioTime, segm.ioTime);
}

TEST(Runner, HdcHitRateZeroWithoutPins)
{
    Workbench wb;
    const RunResult r = wb.run(SystemKind::FOR);
    EXPECT_DOUBLE_EQ(r.hdcHitRate, 0.0);
}

TEST(Runner, FlushTimeReportedForDirtyHdc)
{
    Workbench wb(16, 1500, 1.0, 0.5);
    const RunResult r = wb.run(SystemKind::Segm, 2 * kMiB);
    // Writes hit pinned blocks; the end-of-run flush takes time.
    EXPECT_GT(r.agg.hdcHitBlocks, 0u);
    EXPECT_GT(r.flushTime, 0u);
}

TEST(Runner, DeterministicAcrossRuns)
{
    Workbench wb;
    const RunResult a = wb.run(SystemKind::FOR);
    const RunResult b = wb.run(SystemKind::FOR);
    EXPECT_EQ(a.ioTime, b.ioTime);
    EXPECT_EQ(a.agg.mediaAccesses, b.agg.mediaAccesses);
}

TEST(Runner, UtilizationWithinBounds)
{
    Workbench wb;
    const RunResult r = wb.run(SystemKind::Segm);
    EXPECT_GT(r.diskUtilization, 0.0);
    EXPECT_LE(r.diskUtilization, 1.0);
}

TEST(SystemConfig, LabelsAndPresets)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::FOR;
    EXPECT_EQ(cfg.label(), "FOR");
    cfg.hdcBytesPerDisk = kMiB;
    EXPECT_EQ(cfg.label(), "FOR+HDC");

    EXPECT_EQ(cfg.controllerConfig().org, CacheOrg::Block);
    EXPECT_EQ(cfg.controllerConfig().readAhead, ReadAheadMode::FOR);

    cfg.kind = SystemKind::Segm;
    EXPECT_EQ(cfg.controllerConfig().org, CacheOrg::Segment);
    EXPECT_EQ(cfg.controllerConfig().readAhead,
              ReadAheadMode::Blind);

    cfg.kind = SystemKind::NoRA;
    EXPECT_EQ(cfg.controllerConfig().readAhead,
              ReadAheadMode::None);

    cfg.kind = SystemKind::Block;
    EXPECT_EQ(cfg.controllerConfig().org, CacheOrg::Block);
    EXPECT_EQ(cfg.controllerConfig().readAhead,
              ReadAheadMode::Blind);
}

} // namespace
} // namespace dtsim
