/** @file Unit and property tests for the RNG and Zipf sampler. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hh"

namespace dtsim {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(7), 7u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(11);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++seen[r.below(5)];
    for (int count : seen)
        EXPECT_GT(count, 800);
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(19);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng r(23);
    double sum = 0.0;
    for (int i = 0; i < 50000; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / 50000.0, 4.0, 0.1);
}

TEST(Rng, GaussianMoments)
{
    Rng r(29);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LogNormalMeanMatches)
{
    Rng r(31);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.logNormalMean(100.0, 1.0);
    EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(ZipfSampler, RejectsBadArguments)
{
    EXPECT_THROW(ZipfSampler(0, 0.5), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfSampler, PmfSumsToOne)
{
    ZipfSampler z(1000, 0.7);
    double sum = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i)
        sum += z.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, AlphaZeroIsUniform)
{
    ZipfSampler z(100, 0.0);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_NEAR(z.pmf(i), 0.01, 1e-12);
}

TEST(ZipfSampler, MassDecreasesWithRank)
{
    ZipfSampler z(50, 0.9);
    for (std::size_t i = 1; i < 50; ++i)
        EXPECT_LE(z.pmf(i), z.pmf(i - 1) + 1e-15);
}

TEST(ZipfSampler, TopMassMonotone)
{
    ZipfSampler z(1000, 0.43);
    double prev = 0.0;
    for (std::size_t k = 1; k <= 1000; k += 37) {
        const double m = z.topMass(k);
        EXPECT_GE(m, prev);
        prev = m;
    }
    EXPECT_DOUBLE_EQ(z.topMass(1000), 1.0);
    EXPECT_DOUBLE_EQ(z.topMass(0), 0.0);
}

TEST(ZipfSampler, SampleFrequenciesFollowPmf)
{
    ZipfSampler z(10, 1.0);
    Rng r(37);
    std::vector<int> hist(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++hist[z.sample(r)];
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_NEAR(hist[i] / static_cast<double>(n), z.pmf(i),
                    0.01);
    }
}

/** Property sweep: sampling is always in range for many alphas. */
class ZipfAlphaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfAlphaSweep, SamplesInRange)
{
    ZipfSampler z(123, GetParam());
    Rng r(41);
    for (int i = 0; i < 5000; ++i)
        ASSERT_LT(z.sample(r), 123u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.43, 0.6,
                                           0.8, 1.0, 1.5));

} // namespace
} // namespace dtsim
