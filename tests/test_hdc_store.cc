/** @file Tests for the HDC pinned store and its command semantics. */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/hdc_store.hh"

namespace dtsim {
namespace {

TEST(HdcStore, PinAndLookup)
{
    HdcStore h(4);
    EXPECT_TRUE(h.pin(10));
    EXPECT_TRUE(h.contains(10));
    EXPECT_FALSE(h.contains(11));
    EXPECT_EQ(h.pinnedBlocks(), 1u);
}

TEST(HdcStore, PinRespectsCapacity)
{
    HdcStore h(2);
    EXPECT_TRUE(h.pin(1));
    EXPECT_TRUE(h.pin(2));
    EXPECT_FALSE(h.pin(3));
    EXPECT_EQ(h.pinnedBlocks(), 2u);
}

TEST(HdcStore, DoublePinFails)
{
    HdcStore h(4);
    EXPECT_TRUE(h.pin(5));
    EXPECT_FALSE(h.pin(5));
    EXPECT_EQ(h.pinnedBlocks(), 1u);
}

TEST(HdcStore, UnpinReleasesSpace)
{
    HdcStore h(1);
    EXPECT_TRUE(h.pin(1));
    EXPECT_FALSE(h.pin(2));
    EXPECT_TRUE(h.unpin(1));
    EXPECT_TRUE(h.pin(2));
}

TEST(HdcStore, UnpinReportsDirty)
{
    HdcStore h(4);
    h.pin(1);
    h.pin(2);
    h.absorbWrite(1);
    bool dirty = false;
    EXPECT_TRUE(h.unpin(1, &dirty));
    EXPECT_TRUE(dirty);
    EXPECT_TRUE(h.unpin(2, &dirty));
    EXPECT_FALSE(dirty);
    EXPECT_FALSE(h.unpin(3, &dirty));
}

TEST(HdcStore, AbsorbWriteOnlyWhenPinned)
{
    HdcStore h(4);
    h.pin(1);
    EXPECT_TRUE(h.absorbWrite(1));
    EXPECT_FALSE(h.absorbWrite(2));
    EXPECT_EQ(h.dirtyBlocks(), 1u);
}

TEST(HdcStore, RepeatedWritesStayOneDirtyBlock)
{
    HdcStore h(4);
    h.pin(1);
    h.absorbWrite(1);
    h.absorbWrite(1);
    h.absorbWrite(1);
    EXPECT_EQ(h.dirtyBlocks(), 1u);
}

TEST(HdcStore, FlushReturnsAndCleansDirty)
{
    HdcStore h(8);
    for (BlockNum b : {1, 3, 5, 7})
        h.pin(b);
    h.absorbWrite(3);
    h.absorbWrite(7);
    auto dirty = h.flush();
    std::sort(dirty.begin(), dirty.end());
    EXPECT_EQ(dirty, (std::vector<BlockNum>{3, 7}));
    EXPECT_EQ(h.dirtyBlocks(), 0u);
    EXPECT_TRUE(h.flush().empty());
    // Still pinned after flush.
    EXPECT_TRUE(h.contains(3));
}

TEST(HdcStore, PrefixPinned)
{
    HdcStore h(8);
    h.pin(10);
    h.pin(11);
    h.pin(12);
    h.pin(14);
    EXPECT_EQ(h.prefixPinned(10, 5), 3u);
    EXPECT_EQ(h.prefixPinned(13, 2), 0u);
    EXPECT_TRUE(h.allPinned(10, 3));
    EXPECT_FALSE(h.allPinned(10, 4));
}

TEST(HdcStore, ZeroCapacityPinsNothing)
{
    HdcStore h(0);
    EXPECT_FALSE(h.pin(1));
    EXPECT_EQ(h.capacityBlocks(), 0u);
}

} // namespace
} // namespace dtsim
