/** @file Tests for the segment-based controller cache. */

#include <gtest/gtest.h>

#include "cache/segment_cache.hh"

namespace dtsim {
namespace {

TEST(SegmentCache, StartsEmpty)
{
    SegmentCache c(4, 32);
    EXPECT_EQ(c.usedBlocks(), 0u);
    EXPECT_EQ(c.activeSegments(), 0u);
    EXPECT_FALSE(c.contains(0));
    EXPECT_EQ(c.lookupPrefix(0, 8), 0u);
}

TEST(SegmentCache, InsertThenHit)
{
    SegmentCache c(4, 32);
    c.insertRun(100, 32);
    EXPECT_TRUE(c.contains(100));
    EXPECT_TRUE(c.contains(131));
    EXPECT_FALSE(c.contains(132));
    EXPECT_EQ(c.lookupPrefix(100, 16), 16u);
    EXPECT_EQ(c.lookupPrefix(120, 32), 12u);   // Clipped at run end.
}

TEST(SegmentCache, StreamContinuationExtendsSegment)
{
    SegmentCache c(4, 32);
    c.insertRun(0, 16);
    c.insertRun(16, 16);   // Appends to the same segment.
    EXPECT_EQ(c.activeSegments(), 1u);
    EXPECT_EQ(c.lookupPrefix(0, 32), 32u);
}

TEST(SegmentCache, SegmentActsAsRing)
{
    SegmentCache c(4, 32);
    c.insertRun(0, 32);
    c.insertRun(32, 16);   // Pushes the oldest 16 blocks out.
    EXPECT_EQ(c.activeSegments(), 1u);
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.contains(15));
    EXPECT_TRUE(c.contains(16));
    EXPECT_TRUE(c.contains(47));
}

TEST(SegmentCache, OversizedRunKeepsTail)
{
    SegmentCache c(4, 32);
    c.insertRun(0, 100);
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(99));
    EXPECT_EQ(c.usedBlocks(), 32u);
}

TEST(SegmentCache, WholeSegmentReplacement)
{
    SegmentCache c(2, 32, SegmentPolicy::LRU);
    c.insertRun(0, 32);      // Stream A.
    c.insertRun(100, 32);    // Stream B.
    c.lookupPrefix(0, 1);    // Touch A: B is now LRU.
    c.insertRun(200, 32);    // Stream C evicts B entirely.
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(100));
    EXPECT_FALSE(c.contains(131));
    EXPECT_TRUE(c.contains(200));
    EXPECT_EQ(c.replacements(), 1u);
}

TEST(SegmentCache, FifoIgnoresTouches)
{
    SegmentCache c(2, 32, SegmentPolicy::FIFO);
    c.insertRun(0, 32);
    c.insertRun(100, 32);
    c.lookupPrefix(0, 1);    // Touch A; FIFO does not care.
    c.insertRun(200, 32);    // Evicts A (oldest created).
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(100));
}

TEST(SegmentCache, RoundRobinCyclesVictims)
{
    SegmentCache c(2, 8, SegmentPolicy::RoundRobin);
    c.insertRun(0, 8);
    c.insertRun(100, 8);
    c.insertRun(200, 8);   // Evicts slot 0.
    c.insertRun(300, 8);   // Evicts slot 1.
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.contains(100));
    EXPECT_TRUE(c.contains(200));
    EXPECT_TRUE(c.contains(300));
}

TEST(SegmentCache, RandomPolicyStaysWithinCapacity)
{
    SegmentCache c(4, 8, SegmentPolicy::Random, 99);
    for (BlockNum b = 0; b < 1000; b += 10)
        c.insertRun(b * 100, 8);
    EXPECT_LE(c.activeSegments(), 4u);
    EXPECT_LE(c.usedBlocks(), 32u);
}

TEST(SegmentCache, InvalidateFullCover)
{
    SegmentCache c(4, 32);
    c.insertRun(0, 32);
    c.invalidateRange(0, 32);
    EXPECT_EQ(c.activeSegments(), 0u);
}

TEST(SegmentCache, InvalidateHeadAndTail)
{
    SegmentCache c(4, 32);
    c.insertRun(0, 32);
    c.invalidateRange(0, 8);      // Head overlap.
    EXPECT_FALSE(c.contains(7));
    EXPECT_TRUE(c.contains(8));

    c.invalidateRange(24, 100);   // Tail overlap.
    EXPECT_TRUE(c.contains(23));
    EXPECT_FALSE(c.contains(24));
}

TEST(SegmentCache, InvalidateMiddleDropsFromThereOn)
{
    SegmentCache c(4, 32);
    c.insertRun(0, 32);
    c.invalidateRange(16, 4);
    EXPECT_TRUE(c.contains(15));
    EXPECT_FALSE(c.contains(16));
    // Conservative: everything after the hole is dropped too (a
    // segment holds one contiguous run).
    EXPECT_FALSE(c.contains(25));
}

TEST(SegmentCache, PrefixFollowsAcrossAdjacentSegments)
{
    SegmentCache c(4, 32);
    // Two independent streams that happen to be adjacent on disk
    // (insert the higher one first so it is not treated as a
    // continuation of the lower one).
    c.insertRun(32, 32);
    c.insertRun(0, 32);
    EXPECT_EQ(c.activeSegments(), 2u);
    EXPECT_EQ(c.lookupPrefix(0, 64), 64u);
}

TEST(SegmentCache, AppendBeyondCapacityDropsOldest)
{
    SegmentCache c(4, 32);
    c.insertRun(0, 32);
    c.insertRun(32, 32);   // Continuation: ring keeps the tail.
    EXPECT_EQ(c.activeSegments(), 1u);
    EXPECT_EQ(c.lookupPrefix(0, 64), 0u);
    EXPECT_EQ(c.lookupPrefix(32, 32), 32u);
}

TEST(SegmentCache, CapacityAccounting)
{
    SegmentCache c(3, 16);
    EXPECT_EQ(c.capacityBlocks(), 48u);
    c.insertRun(0, 10);
    c.insertRun(100, 16);
    EXPECT_EQ(c.usedBlocks(), 26u);
}

} // namespace
} // namespace dtsim
