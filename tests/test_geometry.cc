/** @file Unit and property tests for disk geometry translation. */

#include <gtest/gtest.h>

#include "disk/geometry.hh"
#include "sim/rng.hh"

namespace dtsim {
namespace {

DiskParams
smallDisk()
{
    DiskParams p;
    p.capacityBytes = 64ULL * kMiB;
    p.sectorsPerTrack = 100;
    p.heads = 4;
    return p;
}

TEST(DiskGeometry, DerivedQuantities)
{
    DiskParams p;   // Default Ultrastar 36Z15.
    DiskGeometry g(p);
    EXPECT_EQ(g.sectorsPerTrack(), 422u);
    EXPECT_EQ(g.heads(), 8u);
    EXPECT_EQ(g.sectorsPerCylinder(), 3376u);
    EXPECT_EQ(g.sectorsPerBlock(), 8u);
    // 18 GB / 4 KB = 4394531 blocks; x8 sectors.
    EXPECT_EQ(g.totalSectors(), 4394531ull * 8);
    // ~10k cylinders for this drive.
    EXPECT_NEAR(g.cylinders(), 10414, 3);
}

TEST(DiskGeometry, FirstAndLastSector)
{
    DiskGeometry g(smallDisk());
    const Chs first = g.sectorToChs(0);
    EXPECT_EQ(first.cylinder, 0u);
    EXPECT_EQ(first.head, 0u);
    EXPECT_EQ(first.sector, 0u);

    const Chs second_track = g.sectorToChs(100);
    EXPECT_EQ(second_track.cylinder, 0u);
    EXPECT_EQ(second_track.head, 1u);
    EXPECT_EQ(second_track.sector, 0u);

    const Chs second_cyl = g.sectorToChs(400);
    EXPECT_EQ(second_cyl.cylinder, 1u);
    EXPECT_EQ(second_cyl.head, 0u);
}

TEST(DiskGeometry, RoundTripRandomSectors)
{
    DiskGeometry g(smallDisk());
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const SectorNum s = rng.below(g.totalSectors());
        const Chs chs = g.sectorToChs(s);
        EXPECT_EQ(g.chsToSector(chs), s);
        EXPECT_LT(chs.sector, g.sectorsPerTrack());
        EXPECT_LT(chs.head, g.heads());
        EXPECT_LT(chs.cylinder, g.cylinders());
    }
}

TEST(DiskGeometry, BlockMappingConsistent)
{
    DiskGeometry g(smallDisk());
    for (BlockNum b = 0; b < 1000; ++b) {
        EXPECT_EQ(g.blockToSector(b), b * 8);
        EXPECT_EQ(g.blockToCylinder(b),
                  g.sectorToChs(b * 8).cylinder);
    }
}

TEST(DiskGeometry, CylinderMonotoneInSector)
{
    DiskGeometry g(smallDisk());
    std::uint32_t prev = 0;
    for (SectorNum s = 0; s < g.totalSectors(); s += 997) {
        const std::uint32_t c = g.sectorToCylinder(s);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

/** Property sweep over geometry variants. */
struct GeomCase
{
    std::uint32_t spt;
    std::uint32_t heads;
};

class GeometrySweep : public ::testing::TestWithParam<GeomCase>
{
};

TEST_P(GeometrySweep, RoundTripAndBounds)
{
    DiskParams p;
    p.capacityBytes = 256ULL * kMiB;
    p.sectorsPerTrack = GetParam().spt;
    p.heads = GetParam().heads;
    DiskGeometry g(p);
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const SectorNum s = rng.below(g.totalSectors());
        ASSERT_EQ(g.chsToSector(g.sectorToChs(s)), s);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GeometrySweep,
    ::testing::Values(GeomCase{63, 2}, GeomCase{100, 1},
                      GeomCase{440, 8}, GeomCase{1000, 16},
                      GeomCase{17, 5}));

} // namespace
} // namespace dtsim
