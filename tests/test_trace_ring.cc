/**
 * @file
 * Tests of the sampled-tracing pipeline and live stat streaming:
 * the SPSC TraceRing, binary record pack/unpack, the RequestTracer
 * writer thread, sampling determinism, sample=0 purity, serial vs
 * sharded equivalence of sampled traces, and streamed stat frames.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hh"
#include "experiment_replay.hh"
#include "stats_text.hh"
#include "stats/trace.hh"
#include "stats/trace_ring.hh"
#include "workload/synthetic.hh"

namespace dtsim {
namespace {

SystemConfig
testConfig(SystemKind kind = SystemKind::Segm)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.disks = 4;
    cfg.streams = 16;
    cfg.workers = 8;
    cfg.stripeUnitBytes = 128 * kKiB;
    return cfg;
}

Trace
testTrace(std::uint64_t requests = 300, double writes = 0.1)
{
    SyntheticParams sp;
    sp.numFiles = 20000;
    sp.fileSizeBytes = 16 * kKiB;
    sp.numRequests = requests;
    sp.zipfAlpha = 0.4;
    sp.writeProb = writes;
    const SystemConfig cfg = testConfig();
    return makeSynthetic(sp, cfg.disks * cfg.disk.totalBlocks())
        .trace;
}

BinaryTraceRecord
sampleRecord(std::uint64_t n)
{
    RequestTraceEvent ev;
    ev.completed = 1000 * n;
    ev.disk = static_cast<std::uint32_t>(n % 7);
    ev.lba = 64 * n;
    ev.blocks = 8;
    ev.isWrite = (n % 3) == 0;
    ev.outcome = TraceOutcome::Media;
    ev.queue = 11 * n;
    ev.seek = 5;
    ev.rotation = 6;
    ev.transfer = 7;
    ev.bus = 8;
    ev.latency = 12 * n;
    return packTraceRecord(ev);
}

/**
 * Drop the "#conf trace.*" header lines: a run with non-default
 * sampling records it in the self-describing header (by design), but
 * everything below the header must match a run without tracing.
 */
std::string
stripTraceConf(const std::string& dump)
{
    std::istringstream in(dump);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("#conf trace.", 0) == 0)
            continue;
        out << line << "\n";
    }
    return out.str();
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Compare every RunResult field that observability must not perturb. */
void
expectSameResults(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.ioTime, b.ioTime);
    EXPECT_EQ(a.flushTime, b.flushTime);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.agg.reads, b.agg.reads);
    EXPECT_EQ(a.agg.writes, b.agg.writes);
    EXPECT_EQ(a.agg.cacheHitRequests, b.agg.cacheHitRequests);
    EXPECT_EQ(a.agg.mediaAccesses, b.agg.mediaAccesses);
    EXPECT_EQ(a.agg.seekTime, b.agg.seekTime);
    EXPECT_EQ(a.agg.queueTime, b.agg.queueTime);
    EXPECT_EQ(a.agg.busTime, b.agg.busTime);
    EXPECT_EQ(a.agg.latencySum, b.agg.latencySum);
    EXPECT_DOUBLE_EQ(a.meanLatencyMs, b.meanLatencyMs);
}

void
expectSameEvents(const std::vector<RequestTraceEvent>& a,
                 const std::vector<RequestTraceEvent>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(traceRecordToJsonl(packTraceRecord(a[i])),
                  traceRecordToJsonl(packTraceRecord(b[i])))
            << "record " << i;
    }
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(TraceRing(1).capacity(), 1u);
    EXPECT_EQ(TraceRing(2).capacity(), 2u);
    EXPECT_EQ(TraceRing(3).capacity(), 4u);
    EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRing, PushPopRoundTripAcrossWraparound)
{
    TraceRing ring(8);
    BinaryTraceRecord out[8];
    std::uint64_t next = 0, read = 0;
    // Cycle through the ring several times its capacity so the
    // free-running cursors wrap the slot array repeatedly.
    for (int cycle = 0; cycle < 10; ++cycle) {
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(ring.push(sampleRecord(next++)));
        std::size_t n = ring.pop(out, 8);
        ASSERT_EQ(n, 5u);
        for (std::size_t i = 0; i < n; ++i) {
            const BinaryTraceRecord want = sampleRecord(read++);
            EXPECT_EQ(out[i].completed, want.completed);
            EXPECT_EQ(out[i].lba, want.lba);
        }
    }
    EXPECT_EQ(ring.pop(out, 8), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, OverflowCountsDropsAndNeverBlocks)
{
    TraceRing ring(8);
    for (std::uint64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.push(sampleRecord(i)));
    // Full ring: pushes return immediately with false and count.
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_FALSE(ring.push(sampleRecord(100 + i)));
    EXPECT_EQ(ring.dropped(), 3u);

    // Draining restores capacity; the dropped records stay dropped.
    BinaryTraceRecord out[8];
    EXPECT_EQ(ring.pop(out, 8), 8u);
    EXPECT_EQ(out[0].completed, sampleRecord(0).completed);
    EXPECT_TRUE(ring.push(sampleRecord(200)));
    EXPECT_EQ(ring.pop(out, 8), 1u);
    EXPECT_EQ(out[0].completed, sampleRecord(200).completed);
    EXPECT_EQ(ring.dropped(), 3u);
}

TEST(TraceRing, ConcurrentProducerConsumerLosesNothing)
{
    // One producer, one consumer, tiny ring: every pushed record is
    // either popped or counted dropped, in FIFO order. Run this under
    // tsan to vet the acquire/release protocol.
    TraceRing ring(64);
    constexpr std::uint64_t kTotal = 200000;
    std::uint64_t accepted = 0;
    std::uint64_t consumed = 0;
    std::uint64_t next_expected = 0;
    bool in_order = true;

    std::thread consumer([&] {
        BinaryTraceRecord batch[32];
        for (;;) {
            const std::size_t n = ring.pop(batch, 32);
            if (n == 0) {
                if (accepted != 0 && consumed == accepted)
                    break;  // producer joined below sets accepted last
                std::this_thread::yield();
                continue;
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (batch[i].completed < 1000 * next_expected)
                    in_order = false;
                next_expected = batch[i].completed / 1000 + 1;
            }
            consumed += n;
        }
    });

    std::uint64_t ok = 0;
    for (std::uint64_t i = 0; i < kTotal; ++i)
        if (ring.push(sampleRecord(i)))
            ++ok;
    accepted = ok;  // benign: consumer only reads it once drained
    consumer.join();

    EXPECT_EQ(consumed, ok);
    EXPECT_EQ(ok + ring.dropped(), kTotal);
    EXPECT_TRUE(in_order);
}

TEST(SampledTrace, PackUnpackRoundTripAndSaturation)
{
    RequestTraceEvent ev;
    ev.completed = 123456789012345ull;
    ev.disk = 11;
    ev.lba = (1ull << 40) + 17;
    ev.blocks = 96;
    ev.isWrite = true;
    ev.outcome = TraceOutcome::Hdc;
    ev.queue = 98765432109ull;
    ev.seek = 4000000;
    ev.rotation = 5000000;
    ev.transfer = 6000000;
    ev.bus = 7000000;
    ev.latency = 123456789ull;
    ev.faults = 3;
    ev.retries = 2;
    ev.degraded = true;

    const RequestTraceEvent back =
        unpackTraceRecord(packTraceRecord(ev));
    EXPECT_EQ(back.completed, ev.completed);
    EXPECT_EQ(back.disk, ev.disk);
    EXPECT_EQ(back.lba, ev.lba);
    EXPECT_EQ(back.blocks, ev.blocks);
    EXPECT_EQ(back.isWrite, ev.isWrite);
    EXPECT_EQ(back.outcome, ev.outcome);
    EXPECT_EQ(back.queue, ev.queue);
    EXPECT_EQ(back.seek, ev.seek);
    EXPECT_EQ(back.rotation, ev.rotation);
    EXPECT_EQ(back.transfer, ev.transfer);
    EXPECT_EQ(back.bus, ev.bus);
    EXPECT_EQ(back.latency, ev.latency);
    EXPECT_EQ(back.faults, ev.faults);
    EXPECT_EQ(back.retries, ev.retries);
    EXPECT_EQ(back.degraded, ev.degraded);

    // Narrow component fields saturate instead of wrapping.
    RequestTraceEvent wide;
    wide.seek = Tick(1) << 40;
    wide.faults = 1u << 20;
    const BinaryTraceRecord rec = packTraceRecord(wide);
    EXPECT_EQ(rec.seek, 0xffffffffu);
    EXPECT_EQ(rec.faults, 0xffffu);
}

TEST(SampledTrace, WriterThreadAccountingReconciles)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    // Hammer a tracer with a deliberately tiny ring. Whatever the
    // writer-thread timing, accepted + dropped must equal the pushes
    // and exactly the accepted records must reach the file.
    const std::string path = "/tmp/dtsim_trace_tiny_ring.bin";
    constexpr std::uint64_t kTotal = 50000;
    RequestTracer tracer;
    TraceConfig cfg;
    cfg.bufferRecords = 16;
    tracer.open(path, cfg);
    tracer.writePreamble("# tiny-ring accounting test\n");
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        ASSERT_TRUE(tracer.shouldRecord());
        RequestTraceEvent ev;
        ev.completed = i;
        ev.lba = 64 * i;
        tracer.record(ev);
    }
    tracer.close();

    EXPECT_EQ(tracer.records() + tracer.dropped(), kTotal);
    EXPECT_EQ(tracer.sampledOut(), 0u);
    std::vector<RequestTraceEvent> events;
    ASSERT_TRUE(readTraceFile(path, events));
    EXPECT_EQ(events.size(), tracer.records());
    std::remove(path.c_str());
}

TEST(SampledTrace, BinaryAndJsonlAgreeAndRoundTrip)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    const Trace trace = testTrace();
    const SystemConfig cfg = testConfig();

    RunOptions bin_opts;
    bin_opts.tracePath = "/tmp/dtsim_trace_fmt.bin";
    const RunResult rb =
        test::replayTrace(cfg, trace, nullptr, nullptr, bin_opts);

    RunOptions js_opts;
    js_opts.tracePath = "/tmp/dtsim_trace_fmt.jsonl";
    js_opts.trace.format = TraceFormat::Jsonl;
    const RunResult rj =
        test::replayTrace(cfg, trace, nullptr, nullptr, js_opts);

    expectSameResults(rb, rj);
    EXPECT_EQ(rb.traceRecords, rj.traceRecords);

    std::vector<RequestTraceEvent> bin_ev, js_ev;
    ASSERT_TRUE(readTraceFile(bin_opts.tracePath, bin_ev));
    ASSERT_TRUE(readTraceFile(js_opts.tracePath, js_ev));
    EXPECT_GT(bin_ev.size(), 0u);
    expectSameEvents(bin_ev, js_ev);

    std::remove(bin_opts.tracePath.c_str());
    std::remove(js_opts.tracePath.c_str());
}

TEST(SampledTrace, SamplingIsDeterministicPerSeed)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    const Trace trace = testTrace();
    const SystemConfig cfg = testConfig();

    RunOptions opts;
    opts.tracePath = "/tmp/dtsim_trace_sample_a.bin";
    opts.trace.sample = 0.5;
    opts.trace.seed = 7;
    const RunResult ra =
        test::replayTrace(cfg, trace, nullptr, nullptr, opts);
    opts.tracePath = "/tmp/dtsim_trace_sample_b.bin";
    const RunResult rbb =
        test::replayTrace(cfg, trace, nullptr, nullptr, opts);

    // Same seed: the sampled set is reproducible, the whole file
    // byte-identical (headers only differ in run.trace, which the
    // synthesized replay header does not include).
    EXPECT_EQ(ra.traceRecords, rbb.traceRecords);
    EXPECT_EQ(ra.traceSampledOut, rbb.traceSampledOut);
    EXPECT_EQ(slurp("/tmp/dtsim_trace_sample_a.bin"),
              slurp("/tmp/dtsim_trace_sample_b.bin"));

    // Every completion candidate was either recorded or sampled out.
    EXPECT_EQ(ra.traceRecords + ra.traceSampledOut + ra.traceDropped,
              ra.requests);
    EXPECT_GT(ra.traceRecords, 0u);
    EXPECT_GT(ra.traceSampledOut, 0u);

    // A different seed draws a different set.
    opts.tracePath = "/tmp/dtsim_trace_sample_c.bin";
    opts.trace.seed = 8;
    test::replayTrace(cfg, trace, nullptr, nullptr, opts);
    EXPECT_NE(slurp("/tmp/dtsim_trace_sample_a.bin"),
              slurp("/tmp/dtsim_trace_sample_c.bin"));

    // Sampling must not perturb the simulation itself.
    expectSameResults(ra, rbb);
    std::remove("/tmp/dtsim_trace_sample_a.bin");
    std::remove("/tmp/dtsim_trace_sample_b.bin");
    std::remove("/tmp/dtsim_trace_sample_c.bin");
}

TEST(SampledTrace, SampleZeroIsPure)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    const Trace trace = testTrace();
    const SystemConfig cfg = testConfig();

    std::ostringstream plain_stats;
    RunOptions plain;
    plain.stats = StatsSink::stream(plain_stats);
    const RunResult rp =
        test::replayTrace(cfg, trace, nullptr, nullptr, plain);

    std::ostringstream traced_stats;
    RunOptions traced;
    traced.stats = StatsSink::stream(traced_stats);
    traced.tracePath = "/tmp/dtsim_trace_sample0.bin";
    traced.trace.sample = 0.0;
    const RunResult rt =
        test::replayTrace(cfg, trace, nullptr, nullptr, traced);

    // trace.sample=0 arms the tracer but records nothing and leaves
    // results and the stats dump byte-identical to not tracing.
    expectSameResults(rp, rt);
    EXPECT_EQ(rt.traceRecords, 0u);
    EXPECT_EQ(rt.traceSampledOut, rt.requests);
    EXPECT_EQ(test::stripRuntime(plain_stats.str()),
              stripTraceConf(test::stripRuntime(traced_stats.str())));

    std::vector<RequestTraceEvent> events;
    ASSERT_TRUE(readTraceFile("/tmp/dtsim_trace_sample0.bin", events));
    EXPECT_TRUE(events.empty());
    std::remove("/tmp/dtsim_trace_sample0.bin");
}

TEST(SampledTrace, ShardedMatchesSerialAtAnySampleRate)
{
    if (!RequestTracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out (DTSIM_TRACE=OFF)";

    const Trace trace = testTrace(600);
    const SystemConfig cfg = testConfig();

    for (const double sample : {1.0, 0.3}) {
        RunOptions serial;
        serial.tracePath = "/tmp/dtsim_trace_serial.bin";
        serial.trace.sample = sample;
        serial.trace.seed = 5;
        const RunResult rs =
            test::replayTrace(cfg, trace, nullptr, nullptr, serial);

        RunOptions sharded = serial;
        sharded.tracePath = "/tmp/dtsim_trace_sharded.bin";
        sharded.jobsIntra = 4;
        const RunResult rh =
            test::replayTrace(cfg, trace, nullptr, nullptr, sharded);

        // Records are drawn and written in the canonical host-context
        // completion order, so the sharded kernel produces the exact
        // bytes the serial one does — at full trace and sampled.
        expectSameResults(rs, rh);
        EXPECT_EQ(rs.traceRecords, rh.traceRecords);
        EXPECT_EQ(slurp(serial.tracePath), slurp(sharded.tracePath))
            << "sample=" << sample;
        std::remove(serial.tracePath.c_str());
        std::remove(sharded.tracePath.c_str());
    }
}

/** Parse "==> dtsim stats seq=..." / "==> end seq=..." frames. */
struct FrameScan
{
    std::uint64_t frames = 0;
    std::uint64_t ends = 0;
    bool sawFinal = false;
    bool seqsMonotonic = true;
    bool bodiesNonEmpty = true;
};

FrameScan
scanFrames(const std::string& path)
{
    FrameScan s;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::string line;
    long expect_seq = 0;
    std::uint64_t body_lines = 0;
    bool in_frame = false;
    while (std::getline(in, line)) {
        if (line.rfind("==> dtsim stats seq=", 0) == 0) {
            const long seq = std::atol(line.c_str() + 20);
            if (seq != expect_seq)
                s.seqsMonotonic = false;
            ++expect_seq;
            ++s.frames;
            if (line.find(" final <==") != std::string::npos)
                s.sawFinal = true;
            in_frame = true;
            body_lines = 0;
        } else if (line.rfind("==> end seq=", 0) == 0) {
            ++s.ends;
            if (body_lines == 0)
                s.bodiesNonEmpty = false;
            in_frame = false;
        } else if (in_frame) {
            ++body_lines;
        }
    }
    return s;
}

TEST(StatsStream, SerialRunEmitsWellFormedFrames)
{
    const Trace trace = testTrace();
    const SystemConfig cfg = testConfig();

    const std::string path = "/tmp/dtsim_stream_serial.txt";
    RunOptions opts;
    opts.statsStream.path = path;
    opts.statsStream.intervalTicks = 20 * kMsec;
    const RunResult r =
        test::replayTrace(cfg, trace, nullptr, nullptr, opts);

    const FrameScan s = scanFrames(path);
    EXPECT_EQ(s.frames, r.streamFrames);
    EXPECT_EQ(s.ends, s.frames);
    EXPECT_GE(s.frames, 2u);  // at least one mid-run + the final one
    EXPECT_TRUE(s.sawFinal);
    EXPECT_TRUE(s.seqsMonotonic);
    EXPECT_TRUE(s.bodiesNonEmpty);
    std::remove(path.c_str());
}

TEST(StatsStream, StreamingDoesNotPerturbResults)
{
    const Trace trace = testTrace();
    const SystemConfig cfg = testConfig();

    std::ostringstream plain_stats;
    RunOptions plain;
    plain.stats = StatsSink::stream(plain_stats);
    const RunResult rp =
        test::replayTrace(cfg, trace, nullptr, nullptr, plain);

    std::ostringstream streamed_stats;
    RunOptions streamed;
    streamed.stats = StatsSink::stream(streamed_stats);
    streamed.statsStream.path = "/tmp/dtsim_stream_purity.txt";
    streamed.statsStream.intervalTicks = 20 * kMsec;
    const RunResult rs =
        test::replayTrace(cfg, trace, nullptr, nullptr, streamed);

    expectSameResults(rp, rs);
    EXPECT_EQ(test::stripRuntime(plain_stats.str()),
              test::stripRuntime(streamed_stats.str()));
    std::remove("/tmp/dtsim_stream_purity.txt");
}

TEST(StatsStream, ShardedRunStreamsAtWindowBarriers)
{
    const Trace trace = testTrace(600);
    const SystemConfig cfg = testConfig();

    RunOptions serial;
    const RunResult rs =
        test::replayTrace(cfg, trace, nullptr, nullptr, serial);

    const std::string path = "/tmp/dtsim_stream_sharded.txt";
    RunOptions sharded;
    sharded.jobsIntra = 4;
    sharded.statsStream.path = path;
    sharded.statsStream.intervalTicks = 20 * kMsec;
    const RunResult rh =
        test::replayTrace(cfg, trace, nullptr, nullptr, sharded);

    // Streaming must not force the serial fallback or perturb the
    // simulation: sharded-with-streaming matches serial-without.
    expectSameResults(rs, rh);
    const FrameScan s = scanFrames(path);
    EXPECT_EQ(s.frames, rh.streamFrames);
    EXPECT_EQ(s.ends, s.frames);
    EXPECT_GE(s.frames, 2u);
    EXPECT_TRUE(s.sawFinal);
    EXPECT_TRUE(s.seqsMonotonic);
    EXPECT_TRUE(s.bodiesNonEmpty);
    std::remove(path.c_str());
}

TEST(StatsStream, InheritsSnapshotIntervalWhenUnset)
{
    const Trace trace = testTrace();
    const SystemConfig cfg = testConfig();

    const std::string path = "/tmp/dtsim_stream_inherit.txt";
    std::ostringstream sink;
    RunOptions opts;
    opts.stats = StatsSink::stream(sink);
    opts.statsIntervalTicks = 20 * kMsec;  // snapshot cadence
    opts.statsStream.path = path;             // interval unset: inherit
    const RunResult r =
        test::replayTrace(cfg, trace, nullptr, nullptr, opts);

    const FrameScan s = scanFrames(path);
    EXPECT_EQ(s.frames, r.streamFrames);
    EXPECT_GE(s.frames, 2u);
    EXPECT_TRUE(s.sawFinal);
    std::remove(path.c_str());
}

} // namespace
} // namespace dtsim
