/**
 * @file
 * Figure-7 equivalence: a striping sweep expressed as a sweep config
 * file and run through the config-driven sweep driver must produce
 * results identical (to the tick) to the hand-wired run sequence the
 * figure benches used -- same workload build, same bitmaps, same HDC
 * pin plan, same replay.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/sweep_spec.hh"
#include "core/sweep_driver.hh"
#include "experiment_replay.hh"
#include "hdc/hdc_planner.hh"
#include "workload/server_models.hh"

using namespace dtsim;

namespace {

constexpr double kScale = 0.01;

TEST(Fig07Equivalence, SweepFileMatchesHandWiredRuns)
{
    // The fig07 grid shape at test scale: striping unit rows, the
    // figure's Segm / Segm+HDC / FOR / FOR+HDC columns.
    const std::string sweep_text =
        "workload.kind = web\n"
        "workload.scale = " + std::to_string(kScale) + "\n"
        "sweep system.stripe_unit_bytes = 16384, 65536\n"
        "sweep system.kind = segm, for\n"
        "sweep system.hdc_bytes_per_disk = 0, 2097152\n";

    SweepSpec spec;
    std::string err;
    ASSERT_TRUE(loadSweepText(sweep_text, "fig07.conf", spec, err))
        << err;
    std::vector<SweepPoint> points = expandSweep(spec, err);
    ASSERT_EQ(points.size(), 8u) << err;

    const std::vector<RunResult> driver = runSweepPoints(points);
    ASSERT_EQ(driver.size(), 8u);

    // The hand-wired equivalent, exactly as the pre-config figure
    // benches did it: build the workload once, bitmaps per unit, a
    // pin plan per (unit, budget), then one replay per cell.
    const ServerModelParams params = webServerParams(kScale);
    SystemConfig base;
    base.streams = params.streams;
    ServerWorkload w = makeServerWorkload(
        params, base.disks * base.disk.totalBlocks());

    std::size_t i = 0;
    for (std::uint64_t unit_bytes : {16384u, 65536u}) {
        SystemConfig cfg = base;
        cfg.stripeUnitBytes = unit_bytes;
        StripingMap striping(cfg.disks,
                             cfg.stripeUnitBytes / cfg.disk.blockSize,
                             cfg.disk.totalBlocks());
        const std::vector<LayoutBitmap> bitmaps =
            w.image->buildBitmaps(striping);

        for (SystemKind kind : {SystemKind::Segm, SystemKind::FOR}) {
            for (std::uint64_t hdc : {0ull, 2097152ull}) {
                cfg.kind = kind;
                cfg.hdcBytesPerDisk = hdc;

                std::vector<ArrayBlock> pinned;
                const std::vector<ArrayBlock>* pp = nullptr;
                if (hdc > 0) {
                    pinned = selectPinnedBlocks(
                        w.trace, striping, hdcBlocksPerDisk(cfg));
                    pp = &pinned;
                }
                const RunResult ref = dtsim::test::replayTrace(
                    cfg, w.trace, &bitmaps, pp);

                ASSERT_TRUE(points[i].feasible)
                    << i << ": " << points[i].whyNot;
                EXPECT_EQ(driver[i].ioTime, ref.ioTime) << "cell " << i;
                EXPECT_EQ(driver[i].flushTime, ref.flushTime)
                    << "cell " << i;
                EXPECT_EQ(driver[i].blocks, ref.blocks) << "cell " << i;
                EXPECT_EQ(driver[i].agg.reads, ref.agg.reads)
                    << "cell " << i;
                EXPECT_EQ(driver[i].agg.hdcHitRequests,
                          ref.agg.hdcHitRequests)
                    << "cell " << i;
                ++i;
            }
        }
    }
    EXPECT_EQ(i, 8u);
}

TEST(Fig07Equivalence, CacheSharingDoesNotChangeResults)
{
    // Running the same grid point through a shared SweepCache and
    // through a throwaway cache must be bit-identical.
    SweepSpec spec;
    spec.base.workload = WorkloadKind::Web;
    spec.base.scale = kScale;
    spec.axes.push_back({"system.kind", {"segm", "for"}});

    std::string err;
    std::vector<SweepPoint> a = expandSweep(spec, err);
    std::vector<SweepPoint> b = expandSweep(spec, err);
    ASSERT_EQ(a.size(), 2u);

    SweepCache shared;
    const std::vector<RunResult> ra = runSweepPoints(a, shared);
    const std::vector<RunResult> rb = runSweepPoints(b);
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].ioTime, rb[i].ioTime);
        EXPECT_EQ(ra[i].blocks, rb[i].blocks);
    }
}

} // namespace
