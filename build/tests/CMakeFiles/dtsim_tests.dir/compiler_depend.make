# Empty compiler generated dependencies file for dtsim_tests.
# This may be replaced when dependencies are built.
